// Structured event/trace layer: a process-wide Recorder that buffers
// JSON-lines events, plus RAII Spans that time scopes on the injectable
// clock and aggregate per-name self-time.
//
// Event model: every event is one JSON object per line with at least
// {"type": ..., "t": <seconds>}. The instrumented sites emit typed events
// ("span", "decision", "rung", "health_transition", "fault", "stop_eval");
// tools/obs_report.py knows how to validate and render them.
//
// Determinism contract: the recorder is strictly write-only from the
// instrumented code's point of view — it never draws randomness, and the
// clock it reads (util::monotonic_seconds by default) feeds only the trace
// file, never a result. With the recorder disabled (the default) every
// entry point is one relaxed atomic load; with IDLERED_OBS=off at compile
// time the instrumentation macros in obs/obs.h vanish entirely.
//
// The clock is injectable (set_clock) so span timing is exactly testable:
// tests install a fake that advances a fixed step per call and assert the
// resulting durations bit-for-bit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/json.h"

namespace idlered::obs {

/// Replaceable time source. Must be callable from any thread; nullptr
/// restores the default (util::monotonic_seconds).
using ClockFn = double (*)();

class Recorder {
 public:
  /// Per-span-name aggregate maintained as spans close.
  struct SpanStat {
    std::uint64_t count = 0;
    double total = 0.0;  ///< inclusive wall time
    double self = 0.0;   ///< total minus time spent in child spans
  };

  Recorder();
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Enable recording. `sink_path` is where flush() will write the
  /// JSON-lines file; empty keeps the buffer memory-only (tests). Clears
  /// any previously buffered events and span aggregates.
  void start(std::string sink_path);

  /// Disable recording (buffered events are kept for flush()/lines()).
  void stop();

  bool enabled() const;

  /// Append one event. The "t" timestamp is stamped here from the clock;
  /// `fields` must be an object carrying at least "type". No-op while
  /// disabled.
  void emit(util::JsonValue fields);

  /// Write all buffered events to the sink path given at start() and
  /// return how many were written. Throws std::runtime_error on I/O
  /// failure, std::logic_error if start() gave no path.
  std::size_t flush();

  /// Copy of the sink path given at start() (value, taken under the
  /// recorder lock — safe against a concurrent start()).
  std::string sink_path() const;

  /// Copy of the buffered event lines (tests and exporters).
  std::vector<std::string> lines() const;
  std::size_t event_count() const;

  /// Per-name span aggregates since start().
  std::map<std::string, SpanStat> span_stats() const;

  /// Current time on the recorder's clock.
  double now() const;

  /// Inject a clock (nullptr restores util::monotonic_seconds). Takes
  /// effect immediately; intended for single-threaded test setup.
  void set_clock(ClockFn clock);

  /// The process-wide recorder all instrumentation macros target.
  static Recorder& global();

 private:
  friend class Span;
  void close_span(const char* name, double t0, double dur, double self);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience accessors for the global recorder (what the macros expand
/// to). enabled() is the one-load fast path every instrumented site pays
/// when observability is compiled in but not recording.
bool enabled();
Recorder& recorder();

/// Small ordinal identifying the calling thread in trace events (assigned
/// on first use, stable for the thread's lifetime). Not the OS thread id:
/// deterministic numbering keeps traces diffable run-to-run when the
/// thread creation order is stable.
int thread_ordinal();

/// RAII scope timer. Opens on the recorder's clock at construction; at
/// destruction emits a "span" event, folds itself into the per-name
/// aggregates, and credits its inclusive time to the enclosing span's
/// child total (per-thread span stack), so self-time is well defined.
/// Inactive (and free of clock reads) when the recorder is disabled at
/// construction. `name` must outlive the span — pass a string literal.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  double t0_ = 0.0;
  double child_total_ = 0.0;
  Span* parent_ = nullptr;
  bool active_ = false;
};

}  // namespace idlered::obs
