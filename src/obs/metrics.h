// Metrics registry: counters, gauges, and fixed-bucket histograms with
// per-thread shards merged on snapshot.
//
// Write path: every thread that touches a registry gets its own shard — a
// fixed-capacity array of relaxed atomics — located through a thread-local
// cache, so an increment is one pointer scan plus one uncontended
// fetch_add. No locks are taken after the first touch, which is what lets
// the work-stealing ThreadPool count chunks and steals without perturbing
// the schedule it is measuring.
//
// Read path: snapshot() sums the shards under the registration mutex. A
// snapshot taken while writers are running is per-slot consistent (each
// slot is an atomic) but not cross-slot consistent — e.g. a histogram's
// sum may briefly lag its counts. The intended use is quiescent points:
// end of a bench, end of a session.
//
// Determinism contract: nothing here reads a clock, draws randomness, or
// feeds back into evaluation. Observation must never change results — the
// registry is write-only from the instrumented code's point of view.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/log_histogram.h"
#include "util/json.h"

namespace idlered::obs {

/// Merged view of one registry, ready for reporting.
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    double value = 0.0;
  };
  struct Histogram {
    std::string name;
    std::vector<double> edges;            ///< strictly increasing bucket edges
    std::vector<std::uint64_t> counts;    ///< edges.size() + 1 buckets
    double sum = 0.0;                     ///< sum of observed values
    std::uint64_t total() const;          ///< sum of counts
  };

  struct LogHist {
    std::string name;
    LogHistogramSnapshot hist;
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Histogram> histograms;
  std::vector<LogHist> log_histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  ///  "log_histograms": {...}} for the BENCH_<name>.json obs block.
  util::JsonValue to_json() const;
};

class MetricsRegistry {
 public:
  /// Stable identifier of a registered metric (index into the meta table).
  using Id = std::size_t;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-register by name. Re-registering an existing name of the same
  /// kind returns the original Id; a kind mismatch (or, for histograms,
  /// different edges) throws std::invalid_argument. Thread-safe.
  Id counter(const std::string& name);
  Id gauge(const std::string& name);
  /// `edges` must be non-empty, finite, strictly increasing. Bucket i
  /// counts values in [edges[i-1], edges[i]); the last bucket is the
  /// overflow [edges.back(), +inf). Values below edges[0] land in bucket 0.
  Id histogram(const std::string& name, std::vector<double> edges);
  /// Log-bucketed quantile histogram (see obs/log_histogram.h).
  /// Re-registering the same name with a different layout throws.
  Id log_histogram(const std::string& name,
                   const LogHistogramConfig& config = {});

  /// Hot-path writes. Ids must come from the matching register call on
  /// this registry (checked via IDLERED_EXPECTS).
  void add(Id counter_id, std::uint64_t delta = 1);
  void set(Id gauge_id, double value);
  void observe(Id histogram_id, double value);
  void observe_log(Id log_histogram_id, double value);

  /// Merge all shards. See the header comment for consistency caveats.
  MetricsSnapshot snapshot() const;

  /// Zero every shard and gauge (metric registrations survive). Only safe
  /// when no other thread is writing.
  void reset();

  /// Number of threads that have touched this registry so far.
  std::size_t shard_count() const;

  /// The process-wide registry the IDLERED_COUNT/IDLERED_HIST macros and
  /// the bench obs block use.
  static MetricsRegistry& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace idlered::obs
