#include "obs/log_histogram.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/contracts.h"
#include "util/thread_annotations.h"

namespace idlered::obs {

namespace {

// Same CAS-based floating add as MetricsRegistry (libstdc++'s floating
// fetch_add is uneven across targeted GCC versions; this path is cold
// relative to the bucket fetch_add).
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double value) {
  double cur = a.load(std::memory_order_relaxed);
  while (value < cur && !a.compare_exchange_weak(cur, value,
                                                 std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double value) {
  double cur = a.load(std::memory_order_relaxed);
  while (value > cur && !a.compare_exchange_weak(cur, value,
                                                 std::memory_order_relaxed)) {
  }
}

struct Shard {
  std::vector<std::atomic<std::uint64_t>> counts;
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  explicit Shard(std::size_t buckets) : counts(buckets) {}
};

// Histograms are identified by a process-unique serial rather than their
// address, so a stale thread-local cache entry for a destroyed histogram
// can never be mistaken for a new one allocated at the same address.
std::atomic<std::uint64_t> g_histogram_serial{1};

struct TlsEntry {
  std::uint64_t serial = 0;
  Shard* shard = nullptr;
};

thread_local std::vector<TlsEntry> t_shards;

}  // namespace

void LogHistogramConfig::validate() const {
  if (!std::isfinite(min_value) || !(min_value > 0.0))
    throw std::invalid_argument(
        "LogHistogramConfig: min_value must be finite and > 0");
  if (!std::isfinite(max_value) || !(max_value > min_value))
    throw std::invalid_argument(
        "LogHistogramConfig: max_value must be finite and > min_value");
  if (!std::isfinite(rel_error) || !(rel_error > 0.0) || !(rel_error < 1.0))
    throw std::invalid_argument(
        "LogHistogramConfig: rel_error must be in (0, 1)");
}

double LogHistogramConfig::gamma() const {
  return (1.0 + rel_error) * (1.0 + rel_error);
}

std::size_t LogHistogramConfig::interior_buckets() const {
  const double n =
      std::ceil(std::log(max_value / min_value) / std::log(gamma()));
  return std::max<std::size_t>(1, static_cast<std::size_t>(n));
}

std::size_t LogHistogramConfig::total_buckets() const {
  return interior_buckets() + 2;
}

std::size_t LogHistogramConfig::bucket_index(double value) const {
  // NaN fails the comparison and lands in underflow alongside v < min.
  if (!(value >= min_value)) return 0;
  const std::size_t n = interior_buckets();
  // Checked before the log so +inf never reaches the float->int cast.
  if (value >= bucket_lower(n + 1)) return n + 1;
  const double r = std::log(value / min_value) / std::log(gamma());
  const auto b = static_cast<std::size_t>(r) + 1;  // floor(r) + 1, r >= 0
  return std::min(b, n);  // guard the boundary against log() rounding
}

double LogHistogramConfig::bucket_lower(std::size_t bucket) const {
  if (bucket == 0) return 0.0;
  // exp-form rather than repeated multiplication: one call, and exact
  // enough that bucket_index and bucket_lower agree at the overflow edge.
  return min_value *
         std::exp(static_cast<double>(bucket - 1) * std::log(gamma()));
}

double LogHistogramConfig::bucket_estimate(std::size_t bucket) const {
  const std::size_t n = interior_buckets();
  if (bucket == 0) return min_value;
  if (bucket >= n + 1) return bucket_lower(n + 1);
  // Geometric midpoint lower * sqrt(gamma) = lower * (1 + rel_error):
  // every value in [lower, lower * gamma) is within a relative rel_error
  // of this point.
  return bucket_lower(bucket) * (1.0 + rel_error);
}

bool LogHistogramConfig::same_layout(const LogHistogramConfig& other) const {
  // lint: allow(float-compare): layout identity is exact by design
  return min_value == other.min_value && max_value == other.max_value &&
         rel_error == other.rel_error;
}

struct LogHistogram::Impl {
  const LogHistogramConfig config;
  const std::size_t buckets;
  const std::uint64_t serial = g_histogram_serial.fetch_add(1);
  mutable util::Mutex m;  // guards the shard list
  std::vector<std::unique_ptr<Shard>> shards IDLERED_GUARDED_BY(m);

  explicit Impl(const LogHistogramConfig& cfg)
      : config(cfg), buckets(cfg.total_buckets()) {}

  Shard& local_shard() IDLERED_EXCLUDES(m) {
    for (const TlsEntry& e : t_shards)
      if (e.serial == serial) return *e.shard;
    util::LockGuard lock(m);
    shards.push_back(std::make_unique<Shard>(buckets));
    Shard* s = shards.back().get();
    t_shards.push_back(TlsEntry{serial, s});
    return *s;
  }
};

LogHistogram::LogHistogram(const LogHistogramConfig& config) {
  config.validate();
  impl_ = std::make_unique<Impl>(config);
}

LogHistogram::~LogHistogram() = default;

void LogHistogram::observe(double value) {
  const std::size_t b = impl_->config.bucket_index(value);
  Shard& shard = impl_->local_shard();
  shard.counts[b].fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) {
    atomic_add(shard.sum, value);
    atomic_min(shard.min, value);
    atomic_max(shard.max, value);
  }
}

LogHistogramSnapshot LogHistogram::snapshot() const {
  util::LockGuard lock(impl_->m);
  LogHistogramSnapshot snap;
  snap.config = impl_->config;
  snap.counts.assign(impl_->buckets, 0);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : impl_->shards) {
    for (std::size_t b = 0; b < snap.counts.size(); ++b)
      snap.counts[b] += s->counts[b].load(std::memory_order_relaxed);
    snap.sum += s->sum.load(std::memory_order_relaxed);
    lo = std::min(lo, s->min.load(std::memory_order_relaxed));
    hi = std::max(hi, s->max.load(std::memory_order_relaxed));
  }
  for (std::uint64_t c : snap.counts) snap.count += c;
  // Empty (or NaN-only) histograms report 0/0 extremes, not infinities.
  snap.min = std::isfinite(lo) ? lo : 0.0;
  snap.max = std::isfinite(hi) ? hi : 0.0;
  return snap;
}

void LogHistogram::reset() {
  util::LockGuard lock(impl_->m);
  for (const auto& s : impl_->shards) {
    for (auto& c : s->counts) c.store(0, std::memory_order_relaxed);
    s->sum.store(0.0, std::memory_order_relaxed);
    s->min.store(std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
    s->max.store(-std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
  }
}

const LogHistogramConfig& LogHistogram::config() const {
  return impl_->config;
}

std::size_t LogHistogram::shard_count() const {
  util::LockGuard lock(impl_->m);
  return impl_->shards.size();
}

double LogHistogramSnapshot::quantile(double p) const {
  IDLERED_EXPECTS(p >= 0.0 && p <= 1.0,
                  "LogHistogramSnapshot::quantile: p must be in [0, 1]");
  if (count == 0) return 0.0;
  // Same rank convention as an exact offline sort's
  // sorted[llround(p * (n - 1))], so the two can be compared directly.
  const auto rank = static_cast<std::uint64_t>(
      std::llround(p * static_cast<double>(count - 1)));
  // The extreme ranks are tracked exactly — no bucket estimate needed.
  if (rank == 0) return min;
  if (rank == count - 1) return max;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cum += counts[b];
    if (cum > rank) {
      // Clamping to the exact extremes only tightens the estimate: the
      // true order statistic is >= min and <= max, and if the midpoint
      // lies outside [min, max] the clamped value is strictly closer.
      return std::clamp(config.bucket_estimate(b), min, max);
    }
  }
  return max;  // counts/count raced mid-snapshot; max is the safe answer
}

util::JsonValue LogHistogramSnapshot::to_json() const {
  using util::JsonValue;
  JsonValue j = JsonValue::object();
  j.set("count", count);
  j.set("sum", sum);
  j.set("min", min);
  j.set("max", max);
  j.set("min_value", config.min_value);
  j.set("max_value", config.max_value);
  j.set("rel_error", config.rel_error);
  j.set("p50", quantile(0.50));
  j.set("p90", quantile(0.90));
  j.set("p99", quantile(0.99));
  j.set("p999", quantile(0.999));
  JsonValue buckets = JsonValue::object();
  for (std::size_t b = 0; b < counts.size(); ++b)
    if (counts[b] != 0) buckets.set(std::to_string(b), counts[b]);
  j.set("buckets", std::move(buckets));
  return j;
}

ScopedLogTimer::ScopedLogTimer(IdFn id_fn) {
  if (!enabled()) return;
  id_ = id_fn();
  t0_ = util::monotonic_seconds();
  active_ = true;
}

ScopedLogTimer::~ScopedLogTimer() {
  if (!active_) return;
  const double elapsed = util::monotonic_seconds() - t0_;
  MetricsRegistry::global().observe_log(id_, elapsed);
}

}  // namespace idlered::obs
