// Per-decision causal tracing ("dspan" events).
//
// A decision's trace identity is not carried on the wire: StopEvent and
// Decision are frozen formats, and the id is a pure function of
// (service seed, vehicle, seq) — the same mix64 composition the serve
// shard uses as its per-decision RNG seed. Every pipeline stage computes
// the id locally from data it already has, so tracing changes no
// serialized byte and the Decision stream stays bit-identical traced vs
// untraced.
//
// Event model: one "dspan" JSON line per pipeline hop,
//
//   {"type":"dspan","trace":"<16 hex digits>","stage":"ingest",
//    "parent":"<upstream stage>",          // absent on the root stage
//    "thread":N,"t0":...,"dur":...,"t":...,
//    ...stage-specific fields (shard, vehicle, seq, rung, outcome,
//    replay, durable)}
//
// The serve pipeline emits stages ingest -> [wal] -> solve -> decision
// (wal only on durable shards; solve only for events that reach the
// pricing core). tools/obs_report.py groups dspans by the trace id and
// reconstructs the per-decision timeline (--trace-tree) or checks chain
// completeness over a whole run (--chains).
//
// The id is serialized as a 16-digit hex string, not a JSON number:
// 64-bit ids do not survive the double round-trip most JSON parsers
// apply.
#pragma once

#include <cstdint>
#include <string>

#include "util/json.h"

namespace idlered::obs {

/// Trace id of one decision: mix64(mix64(seed ^ vehicle) ^ seq). This is
/// deliberately the serve shard's decision_seed so a trace id can be
/// cross-referenced against the RNG stream that priced the decision.
std::uint64_t decision_trace_id(std::uint64_t seed, std::uint64_t vehicle,
                                std::uint64_t seq);

/// Lower-case, zero-padded 16-digit hex rendering of a trace id.
std::string trace_id_hex(std::uint64_t trace_id);

/// Build a "dspan" event skeleton (type/trace/stage/parent/thread/t0/dur).
/// `parent` nullptr marks the root stage and omits the field. The caller
/// adds stage-specific fields and hands the event to recorder().emit(),
/// which stamps "t".
util::JsonValue make_dspan(std::uint64_t trace_id, const char* stage,
                           const char* parent, double t0, double dur);

}  // namespace idlered::obs
