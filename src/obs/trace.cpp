#include "obs/trace.h"

#include <atomic>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/clock.h"
#include "util/contracts.h"
#include "util/thread_annotations.h"

namespace idlered::obs {

namespace {

std::atomic<int> g_next_thread_ordinal{0};

thread_local int t_thread_ordinal = -1;
thread_local Span* t_current_span = nullptr;

}  // namespace

int thread_ordinal() {
  if (t_thread_ordinal < 0)
    t_thread_ordinal = g_next_thread_ordinal.fetch_add(1);
  return t_thread_ordinal;
}

struct Recorder::Impl {
  std::atomic<bool> enabled{false};
  std::atomic<ClockFn> clock{nullptr};  // nullptr = util::monotonic_seconds

  mutable util::Mutex m;  // guards everything below
  std::string sink_path IDLERED_GUARDED_BY(m);
  std::vector<std::string> lines IDLERED_GUARDED_BY(m);
  std::map<std::string, SpanStat> span_stats IDLERED_GUARDED_BY(m);
};

Recorder::Recorder() : impl_(std::make_unique<Impl>()) {}
Recorder::~Recorder() = default;

void Recorder::start(std::string sink_path) {
  util::LockGuard lock(impl_->m);
  impl_->sink_path = std::move(sink_path);
  impl_->lines.clear();
  impl_->span_stats.clear();
  impl_->enabled.store(true, std::memory_order_release);
}

void Recorder::stop() {
  impl_->enabled.store(false, std::memory_order_release);
}

bool Recorder::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

double Recorder::now() const {
  const ClockFn clock = impl_->clock.load(std::memory_order_relaxed);
  return clock != nullptr ? clock() : util::monotonic_seconds();
}

void Recorder::set_clock(ClockFn clock) {
  impl_->clock.store(clock, std::memory_order_relaxed);
}

void Recorder::emit(util::JsonValue fields) {
  if (!enabled()) return;
  fields.set("t", now());
  std::string line = fields.dump(0);
  util::LockGuard lock(impl_->m);
  impl_->lines.push_back(std::move(line));
}

std::size_t Recorder::flush() {
  util::LockGuard lock(impl_->m);
  if (impl_->sink_path.empty())
    throw std::logic_error("Recorder::flush: no sink path was configured");
  std::ofstream f(impl_->sink_path);
  if (!f)
    throw std::runtime_error("Recorder::flush: cannot open " +
                             impl_->sink_path);
  for (const std::string& line : impl_->lines) f << line << '\n';
  if (!f)
    throw std::runtime_error("Recorder::flush: write failed: " +
                             impl_->sink_path);
  return impl_->lines.size();
}

std::string Recorder::sink_path() const {
  // Returned by value under the lock: the copy costs one allocation on a
  // cold path and lets the annotation hold with no analysis opt-out.
  util::LockGuard lock(impl_->m);
  return impl_->sink_path;
}

std::vector<std::string> Recorder::lines() const {
  util::LockGuard lock(impl_->m);
  return impl_->lines;
}

std::size_t Recorder::event_count() const {
  util::LockGuard lock(impl_->m);
  return impl_->lines.size();
}

std::map<std::string, Recorder::SpanStat> Recorder::span_stats() const {
  util::LockGuard lock(impl_->m);
  return impl_->span_stats;
}

void Recorder::close_span(const char* name, double t0, double dur,
                          double self) {
  util::JsonValue ev = util::JsonValue::object();
  ev.set("type", "span");
  ev.set("name", name);
  ev.set("thread", thread_ordinal());
  ev.set("t0", t0);
  ev.set("dur", dur);
  ev.set("self", self);
  ev.set("t", now());
  std::string line = ev.dump(0);
  util::LockGuard lock(impl_->m);
  impl_->lines.push_back(std::move(line));
  SpanStat& stat = impl_->span_stats[name];
  ++stat.count;
  stat.total += dur;
  stat.self += self;
}

Recorder& Recorder::global() {
  static Recorder instance;
  return instance;
}

bool enabled() { return Recorder::global().enabled(); }

Recorder& recorder() { return Recorder::global(); }

Span::Span(const char* name) : name_(name) {
  IDLERED_EXPECTS(name != nullptr, "Span: name must be non-null");
  Recorder& rec = Recorder::global();
  if (!rec.enabled()) return;
  active_ = true;
  parent_ = t_current_span;
  t_current_span = this;
  t0_ = rec.now();
}

Span::~Span() {
  if (!active_) return;
  Recorder& rec = Recorder::global();
  const double dur = rec.now() - t0_;
  const double self = dur - child_total_;
  t_current_span = parent_;
  if (parent_ != nullptr) parent_->child_total_ += dur;
  rec.close_span(name_, t0_, dur, self);
}

}  // namespace idlered::obs
