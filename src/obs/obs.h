// Instrumentation macros — the only obs surface the instrumented modules
// (engine, sim, robust) are expected to touch.
//
// Compile gate: defining IDLERED_OBS_DISABLED (CMake: -DIDLERED_OBS=OFF)
// expands every macro here to nothing, so instrumented hot paths carry
// zero observability cost — no atomic load, no branch, no static handle.
// With the gate open (the default), each site costs one relaxed atomic
// load while the recorder is disabled; actual recording is opt-in per run
// (bench --trace flag / IDLERED_TRACE env / Recorder::start in tests).
//
//   IDLERED_SPAN("name")            RAII scope timer (obs::Span)
//   IDLERED_COUNT("name")           global-registry counter += 1
//   IDLERED_COUNT_ADD("name", n)    global-registry counter += n
//   IDLERED_HIST("name", {e...}, v) observe v in a fixed-bucket histogram
//   IDLERED_LOG_HIST("name", v)     observe v in a log-bucketed quantile
//                                   histogram (obs::LogHistogram)
//   IDLERED_LOG_TIMER("name")       RAII timer feeding a log-histogram of
//                                   elapsed seconds ("name" should end in
//                                   ".seconds")
//   IDLERED_OBS_ONLY(code)          arbitrary code compiled out with obs;
//                                   sites still guard it with
//                                   obs::enabled() for the runtime gate
//
// Metric names are registered lazily via a function-local static handle,
// so the registry lookup happens once per site, not per call.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

#if !defined(IDLERED_OBS_DISABLED)
#define IDLERED_OBS_ENABLED 1
#else
#define IDLERED_OBS_ENABLED 0
#endif

#define IDLERED_OBS_CAT2(a, b) a##b
#define IDLERED_OBS_CAT(a, b) IDLERED_OBS_CAT2(a, b)

#if IDLERED_OBS_ENABLED

#define IDLERED_SPAN(name) \
  ::idlered::obs::Span IDLERED_OBS_CAT(idlered_obs_span_, __LINE__)(name)

#define IDLERED_COUNT_ADD(name, delta)                                     \
  do {                                                                     \
    if (::idlered::obs::enabled()) {                                       \
      static const ::idlered::obs::MetricsRegistry::Id idlered_obs_id =    \
          ::idlered::obs::MetricsRegistry::global().counter(name);         \
      ::idlered::obs::MetricsRegistry::global().add(idlered_obs_id,        \
                                                    (delta));              \
    }                                                                      \
  } while (0)

#define IDLERED_COUNT(name) IDLERED_COUNT_ADD(name, 1)

#define IDLERED_HIST(name, edges, value)                                   \
  do {                                                                     \
    if (::idlered::obs::enabled()) {                                       \
      static const ::idlered::obs::MetricsRegistry::Id idlered_obs_id =    \
          ::idlered::obs::MetricsRegistry::global().histogram(             \
              name, std::vector<double> edges);                            \
      ::idlered::obs::MetricsRegistry::global().observe(idlered_obs_id,    \
                                                        (value));          \
    }                                                                      \
  } while (0)

#define IDLERED_LOG_HIST(name, value)                                       \
  do {                                                                      \
    if (::idlered::obs::enabled()) {                                        \
      static const ::idlered::obs::MetricsRegistry::Id idlered_obs_id =     \
          ::idlered::obs::MetricsRegistry::global().log_histogram(name);    \
      ::idlered::obs::MetricsRegistry::global().observe_log(idlered_obs_id, \
                                                            (value));       \
    }                                                                       \
  } while (0)

// The stateless lambda registers once per site (function-local static)
// and decays to ScopedLogTimer::IdFn; registration only runs when the
// runtime gate is open at scope entry.
#define IDLERED_LOG_TIMER(name)                                          \
  ::idlered::obs::ScopedLogTimer IDLERED_OBS_CAT(idlered_obs_timer_,     \
                                                 __LINE__)(+[]() {       \
    static const ::idlered::obs::MetricsRegistry::Id idlered_obs_id =    \
        ::idlered::obs::MetricsRegistry::global().log_histogram(name);   \
    return static_cast<std::size_t>(idlered_obs_id);                     \
  })

#define IDLERED_OBS_ONLY(...) __VA_ARGS__

#else  // IDLERED_OBS_DISABLED

#define IDLERED_SPAN(name) \
  do {                     \
  } while (0)
#define IDLERED_COUNT_ADD(name, delta) \
  do {                                 \
  } while (0)
#define IDLERED_COUNT(name) \
  do {                      \
  } while (0)
#define IDLERED_HIST(name, edges, value) \
  do {                                   \
  } while (0)
#define IDLERED_LOG_HIST(name, value) \
  do {                                \
  } while (0)
#define IDLERED_LOG_TIMER(name) \
  do {                          \
  } while (0)
#define IDLERED_OBS_ONLY(...)

#endif  // IDLERED_OBS_ENABLED
