#include "obs/decision_trace.h"

#include "obs/trace.h"
#include "util/random.h"

namespace idlered::obs {

std::uint64_t decision_trace_id(std::uint64_t seed, std::uint64_t vehicle,
                                std::uint64_t seq) {
  return util::mix64(util::mix64(seed ^ vehicle) ^ seq);
}

std::string trace_id_hex(std::uint64_t trace_id) {
  static const char kDigits[] = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[trace_id & 0xF];
    trace_id >>= 4;
  }
  return s;
}

util::JsonValue make_dspan(std::uint64_t trace_id, const char* stage,
                           const char* parent, double t0, double dur) {
  util::JsonValue ev = util::JsonValue::object();
  ev.set("type", "dspan");
  ev.set("trace", trace_id_hex(trace_id));
  ev.set("stage", stage);
  if (parent != nullptr) ev.set("parent", parent);
  ev.set("thread", thread_ordinal());
  ev.set("t0", t0);
  ev.set("dur", dur);
  return ev;
}

}  // namespace idlered::obs
