#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/contracts.h"
#include "util/thread_annotations.h"

namespace idlered::obs {

namespace {

// Fixed capacities: registration may happen concurrently with writes from
// other threads (a pool worker's first pass through an instrumented site),
// so neither the slot arrays nor the meta table may ever reallocate.
// ~10 KiB of slots per thread and 256 metric definitions is far more than
// the instrumentation uses; exceeding either throws at registration.
constexpr std::size_t kIntSlots = 1024;
constexpr std::size_t kDoubleSlots = 256;
constexpr std::size_t kMaxMetrics = 256;

// fetch_add for atomic<double> via CAS: libstdc++'s floating fetch_add is
// uneven across the GCC versions we target, and this path is not hot.
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

struct Shard {
  std::vector<std::atomic<std::uint64_t>> ints;
  std::vector<std::atomic<double>> doubles;
  Shard() : ints(kIntSlots), doubles(kDoubleSlots) {}
};

enum class Kind { kCounter, kGauge, kHistogram, kLogHistogram };

struct Meta {
  Kind kind = Kind::kCounter;
  std::string name;
  std::size_t int_slot = 0;     ///< first integer slot (counter / buckets)
  std::size_t double_slot = 0;  ///< gauge value or histogram sum
  std::vector<double> edges;    ///< fixed-bucket histogram only
  // A log-histogram manages its own per-thread shards (its bucket count
  // would exhaust kIntSlots); the meta entry owns the instance. The
  // pointer is set before meta_count is released, so the lock-free write
  // path may dereference it for any published id.
  std::unique_ptr<LogHistogram> log;
};

// Registries are identified by a process-unique serial rather than their
// address, so a thread-local cache entry for a destroyed registry can
// never be mistaken for a new registry allocated at the same address.
std::atomic<std::uint64_t> g_registry_serial{1};

struct TlsEntry {
  std::uint64_t serial = 0;
  Shard* shard = nullptr;
};

thread_local std::vector<TlsEntry> t_shards;

}  // namespace

struct MetricsRegistry::Impl {
  const std::uint64_t serial = g_registry_serial.fetch_add(1);
  mutable util::Mutex m;  // guards registration, the shard list, snapshots

  // Publication protocol for the lock-free read path: meta[i] is fully
  // constructed under the mutex, then meta_count is released to i+1.
  // Entries are immutable once published, so add()/observe() may read
  // meta[id] for any id < meta_count.load(acquire) without the mutex.
  std::unique_ptr<Meta[]> meta{new Meta[kMaxMetrics]};
  std::atomic<std::size_t> meta_count{0};

  std::map<std::string, Id> index IDLERED_GUARDED_BY(m);
  std::vector<std::unique_ptr<Shard>> shards IDLERED_GUARDED_BY(m);
  std::size_t next_int_slot IDLERED_GUARDED_BY(m) = 0;
  std::size_t next_double_slot IDLERED_GUARDED_BY(m) = 0;

  Shard& local_shard() IDLERED_EXCLUDES(m) {
    for (const TlsEntry& e : t_shards)
      if (e.serial == serial) return *e.shard;
    util::LockGuard lock(m);
    shards.push_back(std::make_unique<Shard>());
    Shard* s = shards.back().get();
    t_shards.push_back(TlsEntry{serial, s});
    return *s;
  }

  const Meta& published(Id id, Kind kind, const char* what) const {
    IDLERED_EXPECTS(id < meta_count.load(std::memory_order_acquire),
                    "MetricsRegistry: id was never registered here");
    const Meta& mm = meta[id];
    IDLERED_EXPECTS(mm.kind == kind, what);
    return mm;
  }

  Id register_metric(Kind kind, const std::string& name,
                     std::vector<double> edges,
                     const LogHistogramConfig* log_config = nullptr)
      IDLERED_EXCLUDES(m) {
    util::LockGuard lock(m);
    const auto it = index.find(name);
    if (it != index.end()) {
      const Meta& existing = meta[it->second];
      if (existing.kind != kind)
        throw std::invalid_argument(
            "MetricsRegistry: '" + name + "' already registered as a "
            "different metric kind");
      if (kind == Kind::kHistogram && existing.edges != edges)
        throw std::invalid_argument(
            "MetricsRegistry: histogram '" + name +
            "' re-registered with different bucket edges");
      if (kind == Kind::kLogHistogram &&
          !existing.log->config().same_layout(*log_config))
        throw std::invalid_argument(
            "MetricsRegistry: log_histogram '" + name +
            "' re-registered with a different layout");
      return it->second;
    }
    const std::size_t n = meta_count.load(std::memory_order_relaxed);
    if (n >= kMaxMetrics)
      throw std::length_error(
          "MetricsRegistry: metric capacity exhausted (raise kMaxMetrics)");
    Meta& mm = meta[n];
    mm.kind = kind;
    mm.name = name;
    switch (kind) {
      case Kind::kCounter:
        mm.int_slot = take_int_slots(1);
        break;
      case Kind::kGauge:
        mm.double_slot = take_double_slots(1);
        break;
      case Kind::kHistogram:
        mm.int_slot = take_int_slots(edges.size() + 1);
        mm.double_slot = take_double_slots(1);
        mm.edges = std::move(edges);
        break;
      case Kind::kLogHistogram:
        mm.log = std::make_unique<LogHistogram>(*log_config);
        break;
    }
    index.emplace(name, n);
    meta_count.store(n + 1, std::memory_order_release);
    return n;
  }

  std::size_t take_int_slots(std::size_t n) IDLERED_REQUIRES(m) {
    if (next_int_slot + n > kIntSlots)
      throw std::length_error("MetricsRegistry: integer slot capacity "
                              "exhausted (raise kIntSlots)");
    const std::size_t at = next_int_slot;
    next_int_slot += n;
    return at;
  }

  std::size_t take_double_slots(std::size_t n) IDLERED_REQUIRES(m) {
    if (next_double_slot + n > kDoubleSlots)
      throw std::length_error("MetricsRegistry: double slot capacity "
                              "exhausted (raise kDoubleSlots)");
    const std::size_t at = next_double_slot;
    next_double_slot += n;
    return at;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Id MetricsRegistry::counter(const std::string& name) {
  return impl_->register_metric(Kind::kCounter, name, {});
}

MetricsRegistry::Id MetricsRegistry::gauge(const std::string& name) {
  return impl_->register_metric(Kind::kGauge, name, {});
}

MetricsRegistry::Id MetricsRegistry::histogram(const std::string& name,
                                               std::vector<double> edges) {
  IDLERED_EXPECTS(!edges.empty(),
                  "MetricsRegistry: histogram needs at least one edge");
  for (std::size_t i = 0; i < edges.size(); ++i) {
    IDLERED_EXPECTS(std::isfinite(edges[i]),
                    "MetricsRegistry: histogram edges must be finite");
    IDLERED_EXPECTS(i == 0 || edges[i - 1] < edges[i],
                    "MetricsRegistry: histogram edges must be strictly "
                    "increasing");
  }
  return impl_->register_metric(Kind::kHistogram, name, std::move(edges));
}

MetricsRegistry::Id MetricsRegistry::log_histogram(
    const std::string& name, const LogHistogramConfig& config) {
  config.validate();
  return impl_->register_metric(Kind::kLogHistogram, name, {}, &config);
}

void MetricsRegistry::add(Id counter_id, std::uint64_t delta) {
  const Meta& mm = impl_->published(
      counter_id, Kind::kCounter,
      "MetricsRegistry::add: id is not a registered counter");
  impl_->local_shard().ints[mm.int_slot].fetch_add(delta,
                                                   std::memory_order_relaxed);
}

void MetricsRegistry::set(Id gauge_id, double value) {
  const Meta& mm = impl_->published(
      gauge_id, Kind::kGauge,
      "MetricsRegistry::set: id is not a registered gauge");
  impl_->local_shard().doubles[mm.double_slot].store(
      value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(Id histogram_id, double value) {
  const Meta& mm = impl_->published(
      histogram_id, Kind::kHistogram,
      "MetricsRegistry::observe: id is not a registered histogram");
  // upper_bound makes buckets half-open [edges[i-1], edges[i]) as
  // documented; sub-range values fold into bucket 0.
  const auto bucket = static_cast<std::size_t>(
      std::upper_bound(mm.edges.begin(), mm.edges.end(), value) -
      mm.edges.begin());
  const std::size_t b =
      value < mm.edges.front() ? 0 : std::min(bucket, mm.edges.size());
  Shard& shard = impl_->local_shard();
  shard.ints[mm.int_slot + b].fetch_add(1, std::memory_order_relaxed);
  atomic_add(shard.doubles[mm.double_slot], value);
}

void MetricsRegistry::observe_log(Id log_histogram_id, double value) {
  const Meta& mm = impl_->published(
      log_histogram_id, Kind::kLogHistogram,
      "MetricsRegistry::observe_log: id is not a registered log_histogram");
  mm.log->observe(value);
}

std::uint64_t MetricsSnapshot::Histogram::total() const {
  std::uint64_t t = 0;
  for (std::uint64_t c : counts) t += c;
  return t;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  util::LockGuard lock(impl_->m);
  MetricsSnapshot snap;
  const std::size_t n = impl_->meta_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const Meta& mm = impl_->meta[i];
    switch (mm.kind) {
      case Kind::kCounter: {
        std::uint64_t v = 0;
        for (const auto& s : impl_->shards)
          v += s->ints[mm.int_slot].load(std::memory_order_relaxed);
        snap.counters.push_back({mm.name, v});
        break;
      }
      case Kind::kGauge: {
        // A gauge is last-write-wins and expected to be set from one
        // thread; shards cannot be summed, so report the last non-zero
        // shard value.
        double v = 0.0;
        for (const auto& s : impl_->shards) {
          const double sv =
              s->doubles[mm.double_slot].load(std::memory_order_relaxed);
          if (sv != 0.0) v = sv;  // lint: allow(float-compare): exact sentinel — an unset gauge slot is bit-zero
        }
        snap.gauges.push_back({mm.name, v});
        break;
      }
      case Kind::kHistogram: {
        MetricsSnapshot::Histogram h;
        h.name = mm.name;
        h.edges = mm.edges;
        h.counts.assign(mm.edges.size() + 1, 0);
        for (const auto& s : impl_->shards) {
          for (std::size_t b = 0; b < h.counts.size(); ++b)
            h.counts[b] +=
                s->ints[mm.int_slot + b].load(std::memory_order_relaxed);
          h.sum += s->doubles[mm.double_slot].load(std::memory_order_relaxed);
        }
        snap.histograms.push_back(std::move(h));
        break;
      }
      case Kind::kLogHistogram:
        snap.log_histograms.push_back({mm.name, mm.log->snapshot()});
        break;
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  util::LockGuard lock(impl_->m);
  for (const auto& s : impl_->shards) {
    for (auto& v : s->ints) v.store(0, std::memory_order_relaxed);
    for (auto& v : s->doubles) v.store(0.0, std::memory_order_relaxed);
  }
  const std::size_t n = impl_->meta_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i)
    if (impl_->meta[i].kind == Kind::kLogHistogram) impl_->meta[i].log->reset();
}

std::size_t MetricsRegistry::shard_count() const {
  util::LockGuard lock(impl_->m);
  return impl_->shards.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

util::JsonValue MetricsSnapshot::to_json() const {
  using util::JsonValue;
  JsonValue counters_json = JsonValue::object();
  for (const Counter& c : counters) counters_json.set(c.name, c.value);
  JsonValue gauges_json = JsonValue::object();
  for (const Gauge& g : gauges) gauges_json.set(g.name, g.value);
  JsonValue hists_json = JsonValue::object();
  for (const Histogram& h : histograms) {
    JsonValue hj = JsonValue::object();
    JsonValue edges = JsonValue::array();
    for (double e : h.edges) edges.push_back(e);
    JsonValue counts = JsonValue::array();
    for (std::uint64_t c : h.counts) counts.push_back(static_cast<double>(c));
    hj.set("edges", std::move(edges));
    hj.set("counts", std::move(counts));
    hj.set("sum", h.sum);
    hj.set("total", static_cast<double>(h.total()));
    hists_json.set(h.name, std::move(hj));
  }
  JsonValue log_hists_json = JsonValue::object();
  for (const LogHist& lh : log_histograms)
    log_hists_json.set(lh.name, lh.hist.to_json());
  JsonValue out = JsonValue::object();
  out.set("counters", std::move(counters_json));
  out.set("gauges", std::move(gauges_json));
  out.set("histograms", std::move(hists_json));
  out.set("log_histograms", std::move(log_hists_json));
  return out;
}

}  // namespace idlered::obs
