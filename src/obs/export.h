// Periodic metrics export: MetricsRegistry snapshots rendered to
// Prometheus text exposition format and/or a JSON document, written
// atomically (tmp + rename) so a scraper or tools/obs_top.py never reads
// a torn file.
//
// No clock lives here: the caller passes the current time into tick(), so
// the export cadence is exactly testable and the obs determinism contract
// (no ambient time outside util/) holds by construction. A bench passes
// util::monotonic_seconds(); tests pass a counter.
//
// Formats:
//   Prometheus text — counters as `counter`, gauges as `gauge`,
//     fixed-bucket histograms as `histogram` (cumulative le-buckets,
//     _sum, _count), log-histograms as `summary` (quantile labels 0.5 /
//     0.9 / 0.99 / 0.999, _sum, _count). Metric names are sanitized to
//     [a-zA-Z0-9_:] with '.' -> '_'.
//   JSON — {"schema":"idlered-metrics-v1","t":...,"writes":N,
//     "metrics":<MetricsSnapshot::to_json()>}.
#pragma once

#include <cstddef>
#include <string>

#include "obs/metrics.h"
#include "util/json.h"

namespace idlered::obs {

struct ExporterConfig {
  std::string prometheus_path;  ///< empty = skip the Prometheus file
  std::string json_path;        ///< empty = skip the JSON file
  double period_s = 1.0;        ///< min seconds between periodic writes

  /// Throws std::invalid_argument if period_s is not finite > 0 or both
  /// paths are empty.
  void validate() const;
};

/// Render a snapshot in Prometheus text exposition format.
std::string to_prometheus_text(const MetricsSnapshot& snapshot);

/// Sanitize a metric name for Prometheus ([a-zA-Z0-9_:], '.' -> '_').
std::string prometheus_name(const std::string& name);

class Exporter {
 public:
  /// Validates the config. The registry must outlive the exporter.
  Exporter(MetricsRegistry& registry, ExporterConfig config);

  /// Flush-on-shutdown: best-effort final write (I/O errors swallowed —
  /// destructors must not throw).
  ~Exporter();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Write the configured files if at least period_s elapsed since the
  /// last write (the first tick always writes). Returns true if it wrote.
  /// Throws std::runtime_error on I/O failure.
  bool tick(double now_s);

  /// Unconditional write, stamped with the most recent tick time.
  void flush();

  /// Completed write rounds.
  std::size_t writes() const { return writes_; }

  const ExporterConfig& config() const { return config_; }

 private:
  void write_files();

  MetricsRegistry& registry_;
  ExporterConfig config_;
  double last_write_s_ = 0.0;
  bool wrote_once_ = false;
  std::size_t writes_ = 0;
};

}  // namespace idlered::obs
