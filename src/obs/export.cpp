#include "obs/export.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace idlered::obs {

namespace {

// Shortest-round-trip double rendering, matching the JSON emitter's
// behaviour closely enough for scrape values (Prometheus parses floats).
std::string render_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void write_atomically(const std::string& path, const std::string& content) {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("Exporter: cannot open " + tmp);
    out << content;
    out.flush();
    if (!out) throw std::runtime_error("Exporter: write failed on " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("Exporter: rename " + tmp + " -> " + path +
                             " failed: " + ec.message());
}

void append_quantile(std::string& out, const std::string& name,
                     const char* q, double value) {
  out += name;
  out += "{quantile=\"";
  out += q;
  out += "\"} ";
  out += render_number(value);
  out += '\n';
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  // A leading digit is not a valid Prometheus name start.
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricsSnapshot::Counter& c : snapshot.counters) {
    const std::string n = prometheus_name(c.name);
    out += "# TYPE " + n + " counter\n";
    out += n + ' ' + render_number(static_cast<double>(c.value)) + '\n';
  }
  for (const MetricsSnapshot::Gauge& g : snapshot.gauges) {
    const std::string n = prometheus_name(g.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + ' ' + render_number(g.value) + '\n';
  }
  for (const MetricsSnapshot::Histogram& h : snapshot.histograms) {
    const std::string n = prometheus_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      cum += h.counts[i];
      out += n + "_bucket{le=\"" + render_number(h.edges[i]) + "\"} " +
             render_number(static_cast<double>(cum)) + '\n';
    }
    out += n + "_bucket{le=\"+Inf\"} " +
           render_number(static_cast<double>(h.total())) + '\n';
    out += n + "_sum " + render_number(h.sum) + '\n';
    out += n + "_count " + render_number(static_cast<double>(h.total())) +
           '\n';
  }
  for (const MetricsSnapshot::LogHist& lh : snapshot.log_histograms) {
    const std::string n = prometheus_name(lh.name);
    out += "# TYPE " + n + " summary\n";
    append_quantile(out, n, "0.5", lh.hist.quantile(0.50));
    append_quantile(out, n, "0.9", lh.hist.quantile(0.90));
    append_quantile(out, n, "0.99", lh.hist.quantile(0.99));
    append_quantile(out, n, "0.999", lh.hist.quantile(0.999));
    out += n + "_sum " + render_number(lh.hist.sum) + '\n';
    out += n + "_count " +
           render_number(static_cast<double>(lh.hist.count)) + '\n';
  }
  return out;
}

void ExporterConfig::validate() const {
  if (!std::isfinite(period_s) || !(period_s > 0.0))
    throw std::invalid_argument(
        "ExporterConfig: period_s must be finite and > 0");
  if (prometheus_path.empty() && json_path.empty())
    throw std::invalid_argument(
        "ExporterConfig: at least one output path is required");
}

Exporter::Exporter(MetricsRegistry& registry, ExporterConfig config)
    : registry_(registry), config_(std::move(config)) {
  config_.validate();
}

Exporter::~Exporter() {
  try {
    flush();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // Best-effort shutdown flush; a throwing destructor would turn an
    // export I/O failure into std::terminate.
  }
}

bool Exporter::tick(double now_s) {
  if (wrote_once_ && now_s - last_write_s_ < config_.period_s) return false;
  last_write_s_ = now_s;
  wrote_once_ = true;
  write_files();
  return true;
}

void Exporter::flush() { write_files(); }

void Exporter::write_files() {
  const MetricsSnapshot snap = registry_.snapshot();
  ++writes_;
  if (!config_.prometheus_path.empty())
    write_atomically(config_.prometheus_path, to_prometheus_text(snap));
  if (!config_.json_path.empty()) {
    util::JsonValue doc = util::JsonValue::object();
    doc.set("schema", "idlered-metrics-v1");
    doc.set("t", last_write_s_);
    doc.set("writes", writes_);
    doc.set("metrics", snap.to_json());
    write_atomically(config_.json_path, doc.dump(2) + "\n");
  }
}

}  // namespace idlered::obs
