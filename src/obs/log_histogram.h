// Log-bucketed (HDR-style) latency histogram with bounded relative error.
//
// Fixed-bucket histograms (MetricsRegistry::histogram) force every site to
// guess its value range up front and give no quantiles. A LogHistogram
// covers [min_value, max_value) with geometrically spaced buckets of ratio
// gamma = (1 + rel_error)^2, so any quantile estimated from a bucket's
// geometric midpoint is within a factor (1 + rel_error) of the true order
// statistic of the recorded stream — ~5% by default, over 18 decades,
// in ~430 buckets.
//
// Write path mirrors MetricsRegistry: each writing thread gets a private
// shard of relaxed atomics found through a serial-keyed thread-local
// cache, so observe() after first touch is a handful of uncontended
// atomic ops plus one log() — no locks, safe under the work-stealing
// ThreadPool. snapshot() merges shards under the registration mutex and
// is meant for quiescent points (end of bench / session).
//
// Determinism contract: nothing here reads a clock or feeds back into
// evaluation; ScopedLogTimer reads util::monotonic_seconds but only
// writes the result into the registry (write-only from the instrumented
// code's point of view).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/json.h"

namespace idlered::obs {

/// Bucket layout of a LogHistogram. Value v maps to:
///   bucket 0                     v < min_value  (underflow; also NaN)
///   bucket 1 + floor(log(v/min_value) / log(gamma))   otherwise, capped
///   bucket interior_buckets()+1  v >= min_value * gamma^interior_buckets()
struct LogHistogramConfig {
  double min_value = 1e-9;  ///< lower tracking bound (1 ns as seconds)
  double max_value = 1e9;   ///< upper tracking bound
  double rel_error = 0.05;  ///< quantile relative-error bound

  /// Throws std::invalid_argument unless 0 < min_value < max_value (both
  /// finite) and 0 < rel_error < 1.
  void validate() const;

  /// Bucket width ratio (1 + rel_error)^2: a geometric-midpoint estimate
  /// of any value inside a bucket is off by at most sqrt(gamma) - 1 =
  /// rel_error, relatively.
  double gamma() const;

  /// Number of interior buckets: ceil(log(max_value / min_value) /
  /// log(gamma)). ~427 for the defaults.
  std::size_t interior_buckets() const;

  /// interior_buckets() + 2 (underflow + overflow).
  std::size_t total_buckets() const;

  /// Bucket index of a value, in [0, total_buckets()).
  std::size_t bucket_index(double value) const;

  /// Lower edge of interior bucket b in [1, interior_buckets()]; the
  /// underflow bucket (b = 0) returns 0 and the overflow bucket returns
  /// min_value * gamma^interior_buckets().
  double bucket_lower(std::size_t bucket) const;

  /// Quantile representative of a bucket: the geometric midpoint
  /// lower * sqrt(gamma) for interior buckets, min_value for underflow,
  /// and the overflow lower edge for overflow. Callers clamp against the
  /// exact observed min/max.
  double bucket_estimate(std::size_t bucket) const;

  /// Exact same layout (bitwise-equal fields) — used to reject
  /// re-registration under one name with a different shape.
  bool same_layout(const LogHistogramConfig& other) const;
};

/// Merged view of one histogram, ready for reporting.
struct LogHistogramSnapshot {
  LogHistogramConfig config;
  std::vector<std::uint64_t> counts;  ///< config.total_buckets() entries
  std::uint64_t count = 0;            ///< total observations
  double sum = 0.0;                   ///< sum of finite observed values
  double min = 0.0;                   ///< exact observed extremes
  double max = 0.0;                   ///< (both 0 while count == 0)

  /// Order-statistic estimate at rank round(p * (count - 1)), clamped to
  /// [min, max]. Within a factor (1 + rel_error) of the true sorted value
  /// whenever that value lies in [min_value, max_value); exact at the
  /// extremes. Returns 0.0 on an empty histogram. p must be in [0, 1].
  double quantile(double p) const;

  /// {"count":..,"sum":..,"min":..,"max":..,"min_value":..,"max_value":..,
  ///  "rel_error":..,"p50":..,"p90":..,"p99":..,"p999":..,
  ///  "buckets":{"<index>":count,...}}  (sparse: zero buckets omitted)
  util::JsonValue to_json() const;
};

/// The histogram itself. Thread-safe for concurrent observe(); snapshot()
/// and reset() are safe concurrently with writers (per-slot consistent,
/// like MetricsRegistry::snapshot).
class LogHistogram {
 public:
  /// Validates the config (throws std::invalid_argument).
  explicit LogHistogram(const LogHistogramConfig& config = {});
  ~LogHistogram();

  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Record one value. NaN counts in the underflow bucket but does not
  /// touch sum/min/max; +-inf and out-of-range finite values land in the
  /// overflow/underflow buckets (finite ones still update sum/min/max).
  void observe(double value);

  /// Merge all shards (see header comment for consistency caveats).
  LogHistogramSnapshot snapshot() const;

  /// Zero every shard. Only safe when no other thread is writing.
  void reset();

  const LogHistogramConfig& config() const;

  /// Number of threads that have written so far.
  std::size_t shard_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// RAII timer feeding a registry log-histogram in seconds. Constructed by
/// IDLERED_LOG_TIMER with a stateless lambda that registers the metric
/// once per site; does nothing when obs::enabled() is false at entry.
class ScopedLogTimer {
 public:
  /// Returns the MetricsRegistry::Id of the target log-histogram.
  using IdFn = std::size_t (*)();

  explicit ScopedLogTimer(IdFn id_fn);
  ~ScopedLogTimer();

  ScopedLogTimer(const ScopedLogTimer&) = delete;
  ScopedLogTimer& operator=(const ScopedLogTimer&) = delete;

 private:
  std::size_t id_ = 0;
  double t0_ = 0.0;
  bool active_ = false;
};

}  // namespace idlered::obs
