#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace idlered::stats {

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::inverse(double p) const {
  if (p <= 0.0 || p > 1.0)
    throw std::invalid_argument("Ecdf::inverse: p must be in (0, 1]");
  // Smallest k with k/n >= p, i.e. k = ceil(p * n), clamped to [1, n].
  const std::size_t n = sorted_.size();
  auto k = static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
  k = std::max<std::size_t>(1, std::min(k, n));
  return sorted_[k - 1];
}

}  // namespace idlered::stats
