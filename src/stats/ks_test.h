// Kolmogorov-Smirnov goodness-of-fit tests.
//
// The paper remarks (Section 5) that the measured stop-length distributions
// differ from an exponential law "according to the Kolmogorov-Smirnov test,
// mostly due to their heavy tails". bench_fig3 reproduces that check against
// our synthetic fleets with the one-sample test below.
#pragma once

#include <functional>
#include <vector>

namespace idlered::stats {

struct KsResult {
  double statistic = 0.0;  ///< sup |F_n(x) - F(x)| (or |F_n - G_m|)
  double p_value = 1.0;    ///< asymptotic Kolmogorov p-value
  bool reject_at(double alpha) const { return p_value < alpha; }
};

/// One-sample KS test of `sample` against the continuous CDF `cdf`.
KsResult ks_test(const std::vector<double>& sample,
                 const std::function<double(double)>& cdf);

/// One-sample KS test against an exponential law with the sample's own mean
/// (the comparison the paper makes). Note: estimating the rate from the data
/// makes the classic p-value conservative (Lilliefors effect); we report the
/// classic value, which is what matters for "clearly not exponential".
KsResult ks_test_exponential(const std::vector<double>& sample);

/// Two-sample KS test (used to compare areas / synthetic vs model).
KsResult ks_test_two_sample(const std::vector<double>& a,
                            const std::vector<double>& b);

/// Asymptotic Kolmogorov distribution complement: P(K > x).
double kolmogorov_p_value(double statistic, double effective_n);

}  // namespace idlered::stats
