#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace idlered::stats {

namespace {
void require_nonempty(const std::vector<double>& xs, const char* what) {
  if (xs.empty()) throw std::invalid_argument(std::string(what) + ": empty sample");
}
}  // namespace

double mean(const std::vector<double>& xs) {
  require_nonempty(xs, "mean");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) throw std::invalid_argument("variance: need >= 2 samples");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double min(const std::vector<double>& xs) {
  require_nonempty(xs, "min");
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  require_nonempty(xs, "max");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::vector<double> xs, double p) {
  require_nonempty(xs, "quantile");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("quantile: p must be in [0, 1]");
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double median(const std::vector<double>& xs) { return quantile(xs, 0.5); }

double fraction_at_most(const std::vector<double>& xs, double threshold) {
  require_nonempty(xs, "fraction_at_most");
  std::size_t k = 0;
  for (double x : xs) {
    if (x <= threshold) ++k;
  }
  return static_cast<double>(k) / static_cast<double>(xs.size());
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::mean: empty");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) throw std::logic_error("RunningStats::variance: need >= 2");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min: empty");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max: empty");
  return max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) *
             static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  s.min = min(xs);
  s.max = max(xs);
  s.median = median(xs);
  return s;
}

}  // namespace idlered::stats
