// Kaplan-Meier survival estimation for right-censored stop lengths.
//
// A deployed controller does not always observe a stop's full length: when
// the driver parks and keys off, the "stop" ends the observation window —
// the true waiting time (had the vehicle stayed) is only known to exceed
// the observed duration. Treating such censored stops as exact observations
// biases q_B+ (and hence the strategy choice). The Kaplan-Meier
// product-limit estimator handles censoring properly:
//
//   S(t) = prod_{t_i <= t} (1 - d_i / n_i)
//
// with d_i events and n_i at-risk at each distinct observed time, and the
// ski-rental statistics follow from the survival curve:
//
//   q_B+  = S(B-)                (probability a stop survives past B)
//   mu_B- = integral_0^B S(t) dt - B S(B-)     (since E[min(y, B)] =
//                                               integral_0^B S)
#pragma once

#include <vector>

#include "dist/distribution.h"

namespace idlered::stats {

struct CensoredObservation {
  double time = 0.0;   ///< observed duration, >= 0
  bool event = true;   ///< true: stop ended (exact); false: censored (>=)
};

class KaplanMeier {
 public:
  /// Builds the product-limit estimator. Throws on empty input or negative
  /// times.
  explicit KaplanMeier(std::vector<CensoredObservation> observations);

  /// S(t) = P{ Y > t }; right-continuous step function. Beyond the largest
  /// observed time the curve holds its last value (undefined region;
  /// conventional for KM).
  double survival(double t) const;

  /// The paper's side statistics from the survival curve.
  dist::ShortStopStats short_stop_stats(double break_even) const;

  std::size_t num_observations() const { return n_; }
  std::size_t num_events() const { return events_; }
  std::size_t num_censored() const { return n_ - events_; }

  /// Step points of the curve: (time, survival-after-time).
  struct Step {
    double time = 0.0;
    double survival = 0.0;
  };
  const std::vector<Step>& steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
  std::size_t n_ = 0;
  std::size_t events_ = 0;
};

/// Convenience: side statistics from censored data in one call.
dist::ShortStopStats censored_short_stop_stats(
    const std::vector<CensoredObservation>& observations, double break_even);

}  // namespace idlered::stats
