// Nonparametric bootstrap confidence intervals (percentile method).
//
// The Figure-4 reproduction reports fleet-mean CRs from a finite synthetic
// cohort; bootstrap CIs over vehicles state how much of the COA-vs-baseline
// gap is resolution and how much is signal.
#pragma once

#include <functional>
#include <vector>

#include "util/random.h"

namespace idlered::stats {

struct BootstrapCi {
  double estimate = 0.0;  ///< statistic on the original sample
  double lo = 0.0;        ///< lower percentile bound
  double hi = 0.0;        ///< upper percentile bound
  double confidence = 0.0;

  bool contains(double value) const { return value >= lo && value <= hi; }
  double width() const { return hi - lo; }
};

/// Generic percentile bootstrap: resample with replacement, evaluate
/// `statistic` on each resample, report the (1-c)/2 and (1+c)/2 quantiles.
BootstrapCi bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    int resamples, double confidence, util::Rng& rng);

/// Convenience: CI on the sample mean.
BootstrapCi bootstrap_mean_ci(const std::vector<double>& sample,
                              int resamples, double confidence,
                              util::Rng& rng);

/// Convenience: CI on a quantile (e.g. the p90 per-vehicle CR).
BootstrapCi bootstrap_quantile_ci(const std::vector<double>& sample, double p,
                                  int resamples, double confidence,
                                  util::Rng& rng);

}  // namespace idlered::stats
