// Empirical cumulative distribution function. Backs the empirical
// stop-length distribution model and the Kolmogorov-Smirnov tests.
#pragma once

#include <cstddef>
#include <vector>

namespace idlered::stats {

class Ecdf {
 public:
  /// Builds from a sample (copied and sorted). Throws on empty input.
  explicit Ecdf(std::vector<double> sample);

  /// F(x) = fraction of samples <= x (right-continuous step function).
  double operator()(double x) const;

  /// Generalized inverse: smallest sample value v with F(v) >= p, p in (0,1].
  double inverse(double p) const;

  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_sample() const { return sorted_; }

  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace idlered::stats
