#include "stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.h"

namespace idlered::stats {

BootstrapCi bootstrap_ci(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    int resamples, double confidence, util::Rng& rng) {
  if (sample.empty())
    throw std::invalid_argument("bootstrap_ci: empty sample");
  if (resamples < 2)
    throw std::invalid_argument("bootstrap_ci: need >= 2 resamples");
  if (!(confidence > 0.0) || !(confidence < 1.0))
    throw std::invalid_argument("bootstrap_ci: confidence must be in (0, 1)");

  BootstrapCi ci;
  ci.confidence = confidence;
  ci.estimate = statistic(sample);

  const auto n = static_cast<std::int64_t>(sample.size());
  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < sample.size(); ++i) {
      resample[i] = sample[static_cast<std::size_t>(
          rng.uniform_int(0, n - 1))];
    }
    stats.push_back(statistic(resample));
  }
  const double alpha = 0.5 * (1.0 - confidence);
  ci.lo = quantile(stats, alpha);
  ci.hi = quantile(std::move(stats), 1.0 - alpha);
  return ci;
}

BootstrapCi bootstrap_mean_ci(const std::vector<double>& sample,
                              int resamples, double confidence,
                              util::Rng& rng) {
  return bootstrap_ci(
      sample, [](const std::vector<double>& xs) { return mean(xs); },
      resamples, confidence, rng);
}

BootstrapCi bootstrap_quantile_ci(const std::vector<double>& sample, double p,
                                  int resamples, double confidence,
                                  util::Rng& rng) {
  return bootstrap_ci(
      sample,
      [p](const std::vector<double>& xs) { return quantile(xs, p); },
      resamples, confidence, rng);
}

}  // namespace idlered::stats
