#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace idlered::stats {

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / num_bins) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (num_bins < 1) throw std::invalid_argument("Histogram: need >= 1 bin");
  counts_.assign(static_cast<std::size_t>(num_bins), 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // guard rounding at hi_
  ++counts_[bin];
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lower(int i) const { return lo_ + width_ * i; }
double Histogram::bin_upper(int i) const { return lo_ + width_ * (i + 1); }
double Histogram::bin_center(int i) const { return lo_ + width_ * (i + 0.5); }

std::size_t Histogram::count(int i) const {
  return counts_.at(static_cast<std::size_t>(i));
}

double Histogram::probability(int i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(i)) / static_cast<double>(total_);
}

double Histogram::density(int i) const { return probability(i) / width_; }

std::string Histogram::ascii(int max_bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (int i = 0; i < num_bins(); ++i) {
    const int bar = static_cast<int>(std::lround(
        static_cast<double>(count(i)) / static_cast<double>(peak) *
        max_bar_width));
    out << std::setw(8) << std::fixed << std::setprecision(1) << bin_lower(i)
        << " - " << std::setw(8) << bin_upper(i) << " | " << std::setw(7)
        << std::setprecision(4) << probability(i) << " | "
        << std::string(static_cast<std::size_t>(bar), '#') << '\n';
  }
  if (overflow_ > 0) {
    out << "    >= " << std::setw(8) << hi_ << "   | " << std::setw(7)
        << std::setprecision(4)
        << static_cast<double>(overflow_) / static_cast<double>(total_)
        << " | (tail)\n";
  }
  return out.str();
}

}  // namespace idlered::stats
