#include "stats/rolling.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/contracts.h"

namespace idlered::stats {

namespace {

void require_valid_stop(double stop_length, const char* who) {
  if (!std::isfinite(stop_length) || stop_length < 0.0)
    throw std::invalid_argument(std::string(who) +
                                ": stop length must be finite and >= 0");
}

}  // namespace

ShortStopAccumulator::ShortStopAccumulator(double break_even)
    : break_even_(break_even) {
  if (!(break_even > 0.0) || !std::isfinite(break_even))
    throw std::invalid_argument(
        "ShortStopAccumulator: break-even must be finite and > 0");
}

void ShortStopAccumulator::insert(double stop_length) {
  require_valid_stop(stop_length, "ShortStopAccumulator::insert");
  ++n_;
  if (stop_length >= break_even_) {
    ++long_count_;
  } else {
    short_sum_ += stop_length;
  }
}

void ShortStopAccumulator::evict(double stop_length) {
  require_valid_stop(stop_length, "ShortStopAccumulator::evict");
  IDLERED_EXPECTS(n_ > 0, "ShortStopAccumulator::evict: empty accumulator");
  if (stop_length >= break_even_) {
    IDLERED_EXPECTS(long_count_ > 0,
                    "ShortStopAccumulator::evict: no long stop to evict");
    --long_count_;
  } else {
    short_sum_ -= stop_length;
    // Exact cancellation of the inserted values keeps the sum >= 0 up to
    // rounding; a large negative residual means the caller evicted a value
    // it never inserted.
    IDLERED_ASSERT_INVARIANT(
        short_sum_ >= -1e-9 * break_even_ * static_cast<double>(n_),
        "ShortStopAccumulator::evict: short-stop sum went negative");
    if (short_sum_ < 0.0) short_sum_ = 0.0;  // scrub rounding residue
  }
  --n_;
  if (n_ == 0) short_sum_ = 0.0;  // exact reset at the empty state
}

ShortStopAccumulator ShortStopAccumulator::restore(double break_even,
                                                   std::size_t count,
                                                   double short_sum,
                                                   std::size_t long_count) {
  ShortStopAccumulator acc(break_even);
  if (long_count > count)
    throw std::invalid_argument(
        "ShortStopAccumulator::restore: long_count exceeds count");
  if (!std::isfinite(short_sum) || short_sum < 0.0)
    throw std::invalid_argument(
        "ShortStopAccumulator::restore: short_sum must be finite and >= 0");
  acc.n_ = count;
  acc.short_sum_ = short_sum;
  acc.long_count_ = long_count;
  return acc;
}

dist::ShortStopStats ShortStopAccumulator::stats() const {
  IDLERED_EXPECTS(n_ > 0, "ShortStopAccumulator::stats: no observations");
  dist::ShortStopStats s;
  s.mu_b_minus = short_sum_ / static_cast<double>(n_);
  s.q_b_plus = static_cast<double>(long_count_) / static_cast<double>(n_);
  IDLERED_ENSURES(s.q_b_plus >= 0.0 && s.q_b_plus <= 1.0,
                  "ShortStopAccumulator: q_B_plus must lie in [0, 1]");
  IDLERED_ENSURES(s.mu_b_minus >= 0.0 && s.mu_b_minus <= break_even_,
                  "ShortStopAccumulator: mu_B_minus must lie in [0, B]");
  return s;
}

SlidingShortStopWindow::SlidingShortStopWindow(double break_even,
                                               std::size_t capacity)
    : acc_(break_even) {
  if (capacity == 0)
    throw std::invalid_argument(
        "SlidingShortStopWindow: capacity must be >= 1");
  ring_.resize(capacity);
}

void SlidingShortStopWindow::push(double stop_length) {
  require_valid_stop(stop_length, "SlidingShortStopWindow::push");
  if (full()) acc_.evict(ring_[head_]);
  acc_.insert(stop_length);
  ring_[head_] = stop_length;
  head_ = (head_ + 1) % ring_.size();
}

}  // namespace idlered::stats
