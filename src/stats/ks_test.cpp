#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace idlered::stats {

KsResult ks_test(const std::vector<double>& sample,
                 const std::function<double(double)>& cdf) {
  if (sample.empty()) throw std::invalid_argument("ks_test: empty sample");
  std::vector<double> xs = sample;
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  double d = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(f - lo), std::abs(hi - f)));
  }
  KsResult result;
  result.statistic = d;
  result.p_value = kolmogorov_p_value(d, n);
  return result;
}

KsResult ks_test_exponential(const std::vector<double>& sample) {
  const double m = std::accumulate(sample.begin(), sample.end(), 0.0) /
                   static_cast<double>(sample.size());
  if (m <= 0.0)
    throw std::invalid_argument("ks_test_exponential: non-positive mean");
  return ks_test(sample, [m](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / m);
  });
}

KsResult ks_test_two_sample(const std::vector<double>& a,
                            const std::vector<double>& b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("ks_test_two_sample: empty sample");
  std::vector<double> xs = a;
  std::vector<double> ys = b;
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());
  const auto na = static_cast<double>(xs.size());
  const auto nb = static_cast<double>(ys.size());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < xs.size() && j < ys.size()) {
    const double v = std::min(xs[i], ys[j]);
    while (i < xs.size() && xs[i] <= v) ++i;
    while (j < ys.size() && ys[j] <= v) ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / na -
                             static_cast<double>(j) / nb));
  }
  KsResult result;
  result.statistic = d;
  result.p_value = kolmogorov_p_value(d, na * nb / (na + nb));
  return result;
}

double kolmogorov_p_value(double statistic, double effective_n) {
  if (statistic <= 0.0) return 1.0;
  const double sqrt_n = std::sqrt(effective_n);
  // Stephens' small-sample correction for the asymptotic series.
  const double lambda =
      (sqrt_n + 0.12 + 0.11 / sqrt_n) * statistic;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term =
        2.0 * std::pow(-1.0, k - 1) * std::exp(-2.0 * k * k * lambda * lambda);
    sum += term;
    if (std::abs(term) < 1e-12) break;
  }
  return std::min(1.0, std::max(0.0, sum));
}

}  // namespace idlered::stats
