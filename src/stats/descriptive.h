// Descriptive statistics over samples: the building blocks for Table 1
// (stops/day mean, std, tail probability) and for the per-vehicle CR
// summaries in Figure 4.
#pragma once

#include <cstddef>
#include <vector>

namespace idlered::stats {

/// Arithmetic mean; throws std::invalid_argument on an empty sample.
double mean(const std::vector<double>& xs);

/// Unbiased (n-1) sample variance; requires at least two samples.
double variance(const std::vector<double>& xs);

/// Unbiased sample standard deviation.
double stddev(const std::vector<double>& xs);

double min(const std::vector<double>& xs);
double max(const std::vector<double>& xs);

/// Linear-interpolation quantile (type 7, the numpy/R default), p in [0,1].
double quantile(std::vector<double> xs, double p);

double median(const std::vector<double>& xs);

/// Fraction of samples <= threshold — e.g. Table 1's P{X <= mu + 2 sigma}.
double fraction_at_most(const std::vector<double>& xs, double threshold);

/// One-pass accumulator for mean/variance (Welford) with min/max tracking.
/// Used by the simulators where samples are produced incrementally.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< unbiased; requires count() >= 2
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merge another accumulator (parallel reduction of fleet shards).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Summary of a sample in one struct (convenience for tables).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

Summary summarize(const std::vector<double>& xs);

}  // namespace idlered::stats
