// Fixed-bin histogram used to reproduce Figure 3 (stop-length probability
// distributions) and to build empirical stop-length models from traces.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace idlered::stats {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); samples outside the range are counted in
  /// the underflow/overflow tallies, not dropped silently.
  Histogram(double lo, double hi, int num_bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }

  /// Inclusive-lower / exclusive-upper edges of bin i.
  double bin_lower(int i) const;
  double bin_upper(int i) const;
  double bin_center(int i) const;

  std::size_t count(int i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// Fraction of all samples (including under/overflow) in bin i.
  double probability(int i) const;

  /// Probability density estimate at bin i (probability / bin width).
  double density(int i) const;

  /// ASCII rendering with proportional bars — how bench_fig3 prints the
  /// per-area stop-length distributions.
  std::string ascii(int max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace idlered::stats
