#include "stats/kaplan_meier.h"

#include <algorithm>
#include <stdexcept>

namespace idlered::stats {

KaplanMeier::KaplanMeier(std::vector<CensoredObservation> observations)
    : n_(observations.size()) {
  if (observations.empty())
    throw std::invalid_argument("KaplanMeier: empty sample");
  for (const auto& o : observations) {
    if (o.time < 0.0)
      throw std::invalid_argument("KaplanMeier: negative time");
    if (o.event) ++events_;
  }
  if (events_ == 0)
    throw std::invalid_argument(
        "KaplanMeier: need at least one uncensored event");

  std::sort(observations.begin(), observations.end(),
            [](const CensoredObservation& a, const CensoredObservation& b) {
              // Ties: events before censorings (the censored subject was
              // still at risk at the event time).
              if (a.time != b.time) return a.time < b.time;
              return a.event && !b.event;
            });

  double survival = 1.0;
  std::size_t at_risk = n_;
  std::size_t i = 0;
  while (i < observations.size()) {
    const double t = observations[i].time;
    std::size_t deaths = 0;
    std::size_t leaving = 0;
    while (i < observations.size() && observations[i].time == t) {
      if (observations[i].event) ++deaths;
      ++leaving;
      ++i;
    }
    if (deaths > 0) {
      survival *= 1.0 - static_cast<double>(deaths) /
                            static_cast<double>(at_risk);
      steps_.push_back({t, survival});
    }
    at_risk -= leaving;
  }
}

double KaplanMeier::survival(double t) const {
  double s = 1.0;
  for (const Step& step : steps_) {
    if (step.time <= t) {
      s = step.survival;
    } else {
      break;
    }
  }
  return s;
}

dist::ShortStopStats KaplanMeier::short_stop_stats(double break_even) const {
  if (break_even <= 0.0)
    throw std::invalid_argument("short_stop_stats: break_even must be > 0");
  // integral_0^B S(t) dt over the step function, and S just below B.
  double integral = 0.0;
  double prev_time = 0.0;
  double prev_survival = 1.0;
  for (const Step& step : steps_) {
    if (step.time >= break_even) break;
    integral += prev_survival * (step.time - prev_time);
    prev_time = step.time;
    prev_survival = step.survival;
  }
  integral += prev_survival * (break_even - prev_time);
  const double s_at_b = prev_survival;  // S(B-)

  dist::ShortStopStats out;
  out.q_b_plus = s_at_b;
  out.mu_b_minus = integral - break_even * s_at_b;
  // Numerical guard: clamp into the feasible wedge.
  out.mu_b_minus = std::max(0.0, out.mu_b_minus);
  return out;
}

dist::ShortStopStats censored_short_stop_stats(
    const std::vector<CensoredObservation>& observations, double break_even) {
  return KaplanMeier(observations).short_stop_stats(break_even);
}

}  // namespace idlered::stats
