// Incremental and sliding-window accumulators for the constrained
// ski-rental side statistics (mu_B_minus, q_B_plus).
//
// dist::ShortStopStats::from_sample recomputes the pair from scratch in
// O(n); a controller that re-estimates after every stop, or a fleet sweep
// that maintains per-vehicle statistics across cells, pays that n again and
// again. The accumulators here maintain the three sufficient statistics
// (count, sum of short-stop lengths, long-stop count) under O(1) insert and
// evict, so any window discipline — full history, fixed-size sliding
// window, or arbitrary insert/evict sequences — stays O(1) per stop.
//
// Numerics: the long-stop count and total count are integers, hence exact.
// The short-stop sum is a running double; an evict subtracts the exact
// value that was inserted, so the sum matches a from-scratch recomputation
// up to summation-order rounding (a few ulps per operation; the property
// suite tests/property/test_incremental_stats.cpp pins the tolerance).
#pragma once

#include <cstddef>
#include <vector>

// Included for the dist::ShortStopStats aggregate only (header-level use;
// the stats library does not link against idlered_dist).
#include "dist/distribution.h"

namespace idlered::stats {

/// O(1) insert/evict accumulator of (mu_B_minus, q_B_plus) at a fixed
/// break-even. The caller owns the multiset discipline: evict(y) must only
/// be called with a value previously inserted and not yet evicted.
class ShortStopAccumulator {
 public:
  /// Throws std::invalid_argument unless break_even is finite and > 0.
  explicit ShortStopAccumulator(double break_even);

  /// Folds one stop in; throws std::invalid_argument unless stop_length is
  /// finite and >= 0.
  void insert(double stop_length);

  /// Removes one previously inserted stop. Contract (IDLERED_EXPECTS):
  /// the accumulator must be non-empty, and when the evicted value is a
  /// long stop the long-stop count must be non-zero — evicting a value
  /// that was never inserted corrupts the statistics silently otherwise.
  void evict(double stop_length);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double break_even() const { return break_even_; }

  /// Sufficient statistics, exposed for exact persistence: together with
  /// count() they are the accumulator's entire mutable state, so a
  /// snapshot that stores them bit-for-bit (the serve layer encodes the
  /// sum's raw bit pattern) restores identical future behaviour.
  double short_sum() const { return short_sum_; }
  std::size_t long_count() const { return long_count_; }

  /// Rebuild an accumulator from previously captured sufficient
  /// statistics. Throws std::invalid_argument on an invalid break-even or
  /// inconsistent state (long_count > count, non-finite/negative sum).
  static ShortStopAccumulator restore(double break_even, std::size_t count,
                                      double short_sum,
                                      std::size_t long_count);

  /// Current (mu_B_minus, q_B_plus); contract-checked non-empty, and the
  /// result is clamped-checked into the feasible ranges q in [0, 1],
  /// mu in [0, B] like the estimators in core/.
  dist::ShortStopStats stats() const;

 private:
  double break_even_;
  std::size_t n_ = 0;
  double short_sum_ = 0.0;
  std::size_t long_count_ = 0;
};

/// Fixed-capacity sliding window over the most recent stops: push(y)
/// inserts y and, once the window is full, evicts the oldest stop — the
/// windowed analogue of core::DecayingStatsEstimator with a hard cutoff
/// instead of exponential forgetting. O(1) per push via a ring buffer.
class SlidingShortStopWindow {
 public:
  /// Throws std::invalid_argument unless capacity >= 1 and break_even is
  /// finite and > 0.
  SlidingShortStopWindow(double break_even, std::size_t capacity);

  /// Insert one stop, evicting the oldest if the window is at capacity.
  void push(double stop_length);

  std::size_t size() const { return acc_.count(); }
  std::size_t capacity() const { return ring_.size(); }
  bool full() const { return acc_.count() == ring_.size(); }
  double break_even() const { return acc_.break_even(); }

  /// Statistics over the current window contents (contract: non-empty).
  dist::ShortStopStats stats() const { return acc_.stats(); }

 private:
  ShortStopAccumulator acc_;
  std::vector<double> ring_;
  std::size_t head_ = 0;  ///< next write position
};

}  // namespace idlered::stats
