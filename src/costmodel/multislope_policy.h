// Online policies for the k-slope engine-state machine, as core::Policy
// implementations — the multislope strategy family ("MS-*"):
//
//   MS-NEV   never leave the base state: cost r_0 y.
//   MS-DET   deterministic envelope follower (enter state i+1 at
//            breakpoint t_i); <= 2-competitive.
//   MS-Rand  the randomized multislope algorithm of Lotker et al.: one
//            shared scale s = ln(1 + u(e-1)) applied to every breakpoint;
//            e/(e-1)-competitive in expectation, pointwise in y.
//   MS-COA   the generalized COA: the additive decomposition
//            (multislope.h) splits the instance into one classic two-slope
//            component per transition, and the paper's eq. (32)-(33)
//            vertex selection runs independently on each component with
//            its own side statistics (mu_{t_i}-, q_{t_i}+) measured at the
//            component's break-even t_i. Worst-case CR is bounded by the
//            worst component guarantee. Cohort-scale construction solves
//            all (vehicle, transition) vertex LPs in ONE lp::solve_batch
//            pass (core::solve_constrained_lp_batch, per-entry break-even
//            overload); the closed-form choose_strategy path here is
//            bit-identical to it (differential-tested).
//
// Every policy reports break_even() = the profile's deepest switch cost,
// so evaluator CR denominators stay the two-slope offline cost min(y, B)
// and multislope CRs are directly comparable with the paper lineup. On
// SlopeProfile::two_slope(B) each policy is bit-identical (costs AND
// sampled RNG stream) to its two-slope counterpart: MS-NEV = NEV,
// MS-DET = DET, MS-Rand = N-Rand, MS-COA = COA (property-tested).
//
// Sampling contract: a single drawn threshold cannot encode a k > 2
// switching schedule, so sample_threshold() on a non-classic profile is a
// contract violation (IDLERED_EXPECTS) for MS-DET / MS-Rand / MS-COA;
// expected mode is the supported evaluation path for k > 2 (MS-NEV, whose
// schedule never switches, samples at any k with base rate 1). Trace-level
// simulation of the randomized schedule goes through sample_scale() +
// scaled_schedule_cost() instead.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/analytic.h"
#include "core/policy.h"
#include "costmodel/multislope.h"
#include "dist/distribution.h"

namespace idlered::costmodel {

/// Never leave the base state. Bit-identical to NEV on the classic
/// profile; sample_threshold() (+inf, never shut off) is valid at every k
/// with base rate 1.
class MultislopeNevPolicy final : public core::Policy {
 public:
  explicit MultislopeNevPolicy(SlopeProfile profile);

  std::string name() const override { return "MS-NEV"; }
  double expected_cost(double y) const override;
  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override { return true; }

  const SlopeProfile& profile() const { return profile_; }

 private:
  SlopeProfile profile_;
};

/// Deterministic envelope follower — the DET generalization.
class MultislopeEnvelopePolicy final : public core::Policy {
 public:
  explicit MultislopeEnvelopePolicy(SlopeProfile profile);

  std::string name() const override { return "MS-DET"; }
  double expected_cost(double y) const override;
  /// Classic profile only (contract): returns the single breakpoint B,
  /// matching DET's fixed threshold.
  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override { return true; }

  const SlopeProfile& profile() const { return profile_; }

 private:
  SlopeProfile profile_;
};

/// The randomized multislope algorithm (shared-scale breakpoint law).
class MultislopeRandPolicy final : public core::Policy {
 public:
  explicit MultislopeRandPolicy(SlopeProfile profile);

  std::string name() const override { return "MS-Rand"; }
  double expected_cost(double y) const override;
  /// Classic profile only (contract): B * ln(1 + u(e-1)), the exact
  /// N-Rand inverse-CDF draw (one uniform consumed, same RNG position).
  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override { return false; }

  /// Draw the shared schedule scale s = ln(1 + u(e-1)) in [0, 1]; the
  /// realized schedule enters state i+1 at s * t_i. Valid at every k.
  double sample_scale(util::Rng& rng) const;

  const SlopeProfile& profile() const { return profile_; }

 private:
  SlopeProfile profile_;
};

/// Realized (not expected) cost of the scaled schedule x_i = scale * t_i
/// for a stop of length y — the trace-level simulation path for MS-Rand
/// (scale from sample_scale) and MS-DET (scale = 1).
double scaled_schedule_cost(const SlopeProfile& profile, double scale,
                            double y);

/// The generalized COA: per-transition vertex selection on the additive
/// decomposition.
class MultislopeCoaPolicy final : public core::Policy {
 public:
  /// `transition_stats[i]` is the (mu_b-, q_b+) pair measured at
  /// break-even t_i = profile.breakpoint(i); one entry per transition
  /// (contract). Vertex selection runs the closed-form choose_strategy on
  /// each component.
  MultislopeCoaPolicy(SlopeProfile profile,
                      std::vector<dist::ShortStopStats> transition_stats);

  /// Precomputed-selection overload: `choices[i]` is the component-i
  /// vertex, e.g. out of the batched arena-LP pass
  /// (core::solve_constrained_lp_batch). Must agree in shape with the
  /// profile (contract).
  MultislopeCoaPolicy(SlopeProfile profile,
                      std::vector<dist::ShortStopStats> transition_stats,
                      std::span<const core::StrategyChoice> choices);

  std::string name() const override { return "MS-COA"; }
  double expected_cost(double y) const override;
  /// Classic profile only (contract): delegates to the selected vertex,
  /// bit-matching ProposedPolicy's draw.
  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override;

  const SlopeProfile& profile() const { return profile_; }
  /// Per-transition vertex selections, component order.
  std::span<const core::StrategyChoice> choices() const { return choices_; }
  std::span<const dist::ShortStopStats> transition_stats() const {
    return stats_;
  }
  /// Upper bound on the worst-case CR: the worst component guarantee
  /// (rent paid at the terminal rate is 1-competitive against itself).
  double worst_case_cr() const;

 private:
  SlopeProfile profile_;
  std::vector<dist::ShortStopStats> stats_;
  std::vector<core::StrategyChoice> choices_;
  std::vector<core::PolicyPtr> components_;  ///< vertex policy per transition
};

/// Per-transition side statistics out of a raw stop sample: entry i is
/// dist::ShortStopStats::from_sample at break-even t_i.
std::vector<dist::ShortStopStats> transition_stats_from_sample(
    const SlopeProfile& profile, const std::vector<double>& sample);

/// Factories matching the core make_* family.
core::PolicyPtr make_ms_nev(const SlopeProfile& profile);
core::PolicyPtr make_ms_det(const SlopeProfile& profile);
core::PolicyPtr make_ms_rand(const SlopeProfile& profile);
core::PolicyPtr make_ms_coa(const SlopeProfile& profile,
                            std::vector<dist::ShortStopStats> transition_stats);

}  // namespace idlered::costmodel
