// Break-even interval computation, Appendix C of the paper.
//
// Every restart-side cost is normalized by the per-second idling cost, so
// the break-even interval decomposes as
//     B = B_fuel + B_starter + B_battery + B_emissions   (seconds).
// The paper's headline values are B ~= 28 s for stop-start vehicles (SSV)
// and B ~= 47 s for conventional vehicles; `ssv_vehicle()` and
// `conventional_vehicle()` reproduce those operating points from the
// published parameter ranges (see EXPERIMENTS.md for the exact arithmetic).
#pragma once

#include <string>

#include "costmodel/emissions.h"
#include "costmodel/fuel.h"
#include "costmodel/wear.h"

namespace idlered::costmodel {

struct VehicleConfig {
  EngineSpec engine;
  FuelPricing fuel;
  StarterSpec starter;
  BatterySpec battery;
  EmissionRates emissions;
  EmissionPricing emission_pricing;
};

/// Itemized break-even computation. All *_s fields are idle-second
/// equivalents; cents fields are absolute monetary values.
struct BreakEvenBreakdown {
  double idling_cost_cents_per_s = 0.0;

  double fuel_s = 0.0;       ///< restart fuel, fixed at 10 s equivalent
  double starter_s = 0.0;    ///< amortized starter wear
  double battery_s = 0.0;    ///< amortized battery wear
  double emissions_s = 0.0;  ///< priced THC/NOx/CO restart emissions

  double restart_cost_cents = 0.0;  ///< total one-time restart cost
  double break_even_s = 0.0;        ///< B = restart / idling-per-second

  std::string describe() const;  ///< multi-line itemized report
};

/// Compute the full breakdown for a vehicle configuration.
BreakEvenBreakdown compute_break_even(const VehicleConfig& vehicle);

/// Stop-start vehicle at the paper's operating point (strengthened starter,
/// 4-year stop-start battery): B ~= 28 s.
VehicleConfig ssv_vehicle();

/// Conventional vehicle (amortized starter wear included): B ~= 47 s.
VehicleConfig conventional_vehicle();

/// The break-even values the paper's experiments use directly.
inline constexpr double kPaperBreakEvenSsv = 28.0;
inline constexpr double kPaperBreakEvenConventional = 47.0;

}  // namespace idlered::costmodel
