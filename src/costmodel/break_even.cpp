#include "costmodel/break_even.h"

#include <iomanip>
#include <sstream>

namespace idlered::costmodel {

std::string BreakEvenBreakdown::describe() const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(4);
  out << "idling cost        : " << idling_cost_cents_per_s << " cents/s\n"
      << "restart fuel       : " << fuel_s << " s equivalent\n"
      << "starter wear       : " << starter_s << " s equivalent\n"
      << "battery wear       : " << battery_s << " s equivalent\n"
      << "priced emissions   : " << emissions_s << " s equivalent\n"
      << "restart cost       : " << restart_cost_cents << " cents\n"
      << std::setprecision(2)
      << "break-even interval: " << break_even_s << " s\n";
  return out.str();
}

BreakEvenBreakdown compute_break_even(const VehicleConfig& vehicle) {
  BreakEvenBreakdown b;

  // Per-second idling cost: fuel plus any priced idling emissions.
  const double fuel_cents_per_s =
      idling_cost_cents_per_s(vehicle.engine, vehicle.fuel);
  const double emis_cents_per_s = emission_cost_cents_per_idle_s(
      vehicle.emissions, vehicle.emission_pricing);
  b.idling_cost_cents_per_s = fuel_cents_per_s + emis_cents_per_s;

  // One-time restart cost, itemized.
  const double fuel_cents = kRestartFuelIdleSeconds * fuel_cents_per_s;
  const double starter_cents = starter_cost_cents_per_start(vehicle.starter);
  const double battery_cents = battery_cost_cents_per_start(vehicle.battery);
  const double emis_cents = emission_cost_cents_per_restart(
      vehicle.emissions, vehicle.emission_pricing);

  b.fuel_s = fuel_cents / b.idling_cost_cents_per_s;
  b.starter_s = starter_cents / b.idling_cost_cents_per_s;
  b.battery_s = battery_cents / b.idling_cost_cents_per_s;
  b.emissions_s = emis_cents / b.idling_cost_cents_per_s;

  b.restart_cost_cents =
      fuel_cents + starter_cents + battery_cents + emis_cents;
  b.break_even_s = b.restart_cost_cents / b.idling_cost_cents_per_s;
  return b;
}

VehicleConfig ssv_vehicle() {
  VehicleConfig v;            // engine/fuel defaults: Fusion 2.5 L, $3.50/gal
  v.starter.strengthened = true;  // 1.2M-start SSS starter: no amortized wear
  v.battery.cost_usd = 230.0;
  v.battery.warranty_years = 4.0;  // most favourable published warranty
  return v;
}

VehicleConfig conventional_vehicle() {
  VehicleConfig v;
  v.starter.strengthened = false;
  // Low end of the published wear ranges, matching the paper's "minimum
  // break-even interval" framing: 0.5 cents/start amortized starter wear.
  v.starter.replacement_usd = 85.0;
  v.starter.labor_usd = 115.0;
  v.starter.starts_per_replacement = 40000.0;
  v.battery.cost_usd = 230.0;
  v.battery.warranty_years = 4.0;
  return v;
}

}  // namespace idlered::costmodel
