// Mechanical-wear restart costs, Appendix C.2.2 of the paper: amortized
// starter and battery replacement per engine start. ICE wear itself is
// negligible per the paper and carries no model here.
#pragma once

namespace idlered::costmodel {

struct StarterSpec {
  /// SSV starters are rated for ~1.2 million starts — effectively a
  /// lifetime part, so their amortized cost is taken as zero.
  bool strengthened = false;
  double replacement_usd = 55.0;     ///< paper range: $55 - $400
  double labor_usd = 115.0;          ///< paper range: $115 - $225
  double starts_per_replacement = 40000.0;  ///< paper range: 20k - 40k
};

/// Amortized starter cost in US cents per start (0 for strengthened units).
/// The paper's reported range is 0.5 - 4 cents/start.
double starter_cost_cents_per_start(const StarterSpec& starter);

struct BatterySpec {
  double cost_usd = 230.0;      ///< stop-start AGM battery, no labor
  double warranty_years = 4.0;  ///< paper range: 2 - 4 years
  /// Stops per day used for amortization. The paper takes mu + 2 sigma over
  /// its three-area fleet = 32.43 so that 95% of vehicles are covered.
  double stops_per_day = 32.43;
};

/// Amortized battery cost in US cents per start.
/// The paper's reported range is 0.4841 - 0.9713 cents/start.
double battery_cost_cents_per_start(const BatterySpec& battery);

}  // namespace idlered::costmodel
