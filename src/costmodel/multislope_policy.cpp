#include "costmodel/multislope_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/policies.h"
#include "util/contracts.h"
#include "util/math.h"

namespace idlered::costmodel {

namespace {

// Multislope policies report break_even() = b_{k-1} so evaluator CR
// denominators stay the two-slope offline cost; a profile with no
// transitions has nothing to switch to and no positive break-even.
double policy_break_even(const SlopeProfile& profile) {
  IDLERED_EXPECTS(profile.num_transitions() >= 1,
                  "multislope policy: profile must have at least two "
                  "states");
  return profile.deepest_switch_cost();
}

void require_stop(double y) {
  IDLERED_EXPECTS(std::isfinite(y) && y >= 0.0,
                  "multislope policy: stop length must be finite and >= 0");
}

// The same vertex -> policy mapping as ProposedPolicy's delegate builder,
// applied at the component's own break-even t_i.
core::PolicyPtr build_component(double break_even,
                                const core::StrategyChoice& choice) {
  switch (choice.strategy) {
    case core::Strategy::kToi: return core::make_toi(break_even);
    case core::Strategy::kDet: return core::make_det(break_even);
    case core::Strategy::kBDet: return core::make_b_det(break_even, choice.b);
    case core::Strategy::kNRand: return core::make_n_rand(break_even);
  }
  throw std::logic_error("MultislopeCoaPolicy: unknown strategy");
}

}  // namespace

// --------------------------------------------------------- MultislopeNevPolicy

MultislopeNevPolicy::MultislopeNevPolicy(SlopeProfile profile)
    : Policy(policy_break_even(profile)), profile_(std::move(profile)) {}

double MultislopeNevPolicy::expected_cost(double y) const {
  require_stop(y);
  return profile_.base_rate() * y;
}

double MultislopeNevPolicy::sample_threshold(util::Rng& /*rng*/) const {
  // lint: allow(float-compare): exact sampled-mode precondition
  IDLERED_EXPECTS(profile_.base_rate() == 1.0,
                  "MS-NEV: sampled mode requires base rate 1 (the "
                  "evaluator's never-shut-off cost is y)");
  return std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------- MultislopeEnvelopePolicy

MultislopeEnvelopePolicy::MultislopeEnvelopePolicy(SlopeProfile profile)
    : Policy(policy_break_even(profile)), profile_(std::move(profile)) {}

double MultislopeEnvelopePolicy::expected_cost(double y) const {
  return envelope_follower_cost(profile_, y);
}

double MultislopeEnvelopePolicy::sample_threshold(util::Rng& /*rng*/) const {
  IDLERED_EXPECTS(profile_.classic(),
                  "MS-DET: a single threshold cannot encode a k > 2 "
                  "schedule; sampled mode is classic-profile only");
  return profile_.breakpoint(0);
}

// -------------------------------------------------------- MultislopeRandPolicy

MultislopeRandPolicy::MultislopeRandPolicy(SlopeProfile profile)
    : Policy(policy_break_even(profile)), profile_(std::move(profile)) {}

double MultislopeRandPolicy::expected_cost(double y) const {
  return randomized_envelope_cost(profile_, y);
}

double MultislopeRandPolicy::sample_scale(util::Rng& rng) const {
  // Inverse CDF of the N-Rand scale law: u = (e^s - 1)/(e - 1).
  const double u = rng.uniform();
  return std::log(1.0 + u * (util::kE - 1.0));
}

double MultislopeRandPolicy::sample_threshold(util::Rng& rng) const {
  IDLERED_EXPECTS(profile_.classic(),
                  "MS-Rand: a single threshold cannot encode a k > 2 "
                  "schedule; sampled mode is classic-profile only (use "
                  "sample_scale + scaled_schedule_cost)");
  // t_0 * ln(1 + u(e-1)) — for the classic profile t_0 == B exactly, so
  // this is N-Rand's inverse-CDF draw, same single uniform consumed.
  return profile_.breakpoint(0) * sample_scale(rng);
}

double scaled_schedule_cost(const SlopeProfile& profile, double scale,
                            double y) {
  IDLERED_EXPECTS(std::isfinite(scale) && scale >= 0.0,
                  "scaled_schedule_cost: scale must be finite and >= 0");
  IDLERED_EXPECTS(std::isfinite(y) && y >= 0.0,
                  "scaled_schedule_cost: y must be finite and >= 0");
  double total = profile.terminal_rate() * y;
  for (std::size_t i = 0; i < profile.num_transitions(); ++i) {
    const double x = scale * profile.breakpoint(i);
    const double dr = profile.delta_rate(i);
    total += y < x ? dr * y : dr * x + profile.delta_cost(i);
  }
  return total;
}

// --------------------------------------------------------- MultislopeCoaPolicy

MultislopeCoaPolicy::MultislopeCoaPolicy(
    SlopeProfile profile, std::vector<dist::ShortStopStats> transition_stats)
    : Policy(policy_break_even(profile)),
      profile_(std::move(profile)),
      stats_(std::move(transition_stats)) {
  IDLERED_EXPECTS(stats_.size() == profile_.num_transitions(),
                  "MS-COA: one ShortStopStats (at break-even t_i) per "
                  "transition required");
  choices_.reserve(stats_.size());
  components_.reserve(stats_.size());
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const double t = profile_.breakpoint(i);
    choices_.push_back(core::choose_strategy(stats_[i], t));
    components_.push_back(build_component(t, choices_.back()));
    IDLERED_ENSURES(std::isfinite(choices_.back().expected_cost) &&
                        choices_.back().expected_cost >= 0.0 &&
                        std::isfinite(choices_.back().cr),
                    "MS-COA: component vertex guarantee invalid");
  }
}

MultislopeCoaPolicy::MultislopeCoaPolicy(
    SlopeProfile profile, std::vector<dist::ShortStopStats> transition_stats,
    std::span<const core::StrategyChoice> choices)
    : Policy(policy_break_even(profile)),
      profile_(std::move(profile)),
      stats_(std::move(transition_stats)),
      choices_(choices.begin(), choices.end()) {
  IDLERED_EXPECTS(stats_.size() == profile_.num_transitions() &&
                      choices_.size() == profile_.num_transitions(),
                  "MS-COA: one stats entry and one vertex choice per "
                  "transition required");
  components_.reserve(choices_.size());
  for (std::size_t i = 0; i < choices_.size(); ++i) {
    components_.push_back(
        build_component(profile_.breakpoint(i), choices_[i]));
  }
}

double MultislopeCoaPolicy::expected_cost(double y) const {
  require_stop(y);
  double total = profile_.terminal_rate() * y;
  for (std::size_t i = 0; i < components_.size(); ++i)
    total += profile_.delta_rate(i) * components_[i]->expected_cost(y);
  return total;
}

double MultislopeCoaPolicy::sample_threshold(util::Rng& rng) const {
  IDLERED_EXPECTS(profile_.classic(),
                  "MS-COA: a single threshold cannot encode a k > 2 "
                  "schedule; sampled mode is classic-profile only");
  return components_[0]->sample_threshold(rng);
}

bool MultislopeCoaPolicy::deterministic() const {
  return std::all_of(components_.begin(), components_.end(),
                     [](const core::PolicyPtr& p) {
                       return p->deterministic();
                     });
}

double MultislopeCoaPolicy::worst_case_cr() const {
  double worst = 1.0;  // the terminal-rate rent is paid by OPT too
  for (const core::StrategyChoice& c : choices_)
    worst = std::max(worst, c.cr);
  return worst;
}

std::vector<dist::ShortStopStats> transition_stats_from_sample(
    const SlopeProfile& profile, const std::vector<double>& sample) {
  std::vector<dist::ShortStopStats> out;
  out.reserve(profile.num_transitions());
  for (double t : profile.breakpoints())
    out.push_back(dist::ShortStopStats::from_sample(sample, t));
  return out;
}

core::PolicyPtr make_ms_nev(const SlopeProfile& profile) {
  return std::make_shared<MultislopeNevPolicy>(profile);
}

core::PolicyPtr make_ms_det(const SlopeProfile& profile) {
  return std::make_shared<MultislopeEnvelopePolicy>(profile);
}

core::PolicyPtr make_ms_rand(const SlopeProfile& profile) {
  return std::make_shared<MultislopeRandPolicy>(profile);
}

core::PolicyPtr make_ms_coa(
    const SlopeProfile& profile,
    std::vector<dist::ShortStopStats> transition_stats) {
  return std::make_shared<MultislopeCoaPolicy>(profile,
                                               std::move(transition_stats));
}

}  // namespace idlered::costmodel
