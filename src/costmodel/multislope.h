// The k-slope engine-state machine (multislope ski rental).
//
// The paper's two-slope model — idle at rate 1 vs. off at restart cost B —
// is the k = 2 case of the multislope ski-rental problem of Lotker,
// Patt-Shamir & Rawitz (PAPERS.md): a vehicle exposes k engine states, each
// a (running rate r_i, cumulative switch-in cost b_i) pair. Stop-start
// accessory mode, partial shutdown, and HEV modes are intermediate slopes
// between "idling" and "deep off". The offline optimum is the lower
// envelope
//
//     OPT(y) = min_i (b_i + r_i y),
//
// and `SlopeProfile` is that envelope in canonical form: slopes sorted by
// switch cost, dominated slopes pruned, non-convex slopes removed, so that
// the retained rates are strictly decreasing, the costs strictly
// increasing, and the envelope breakpoints
//
//     t_i = (b_{i+1} - b_i) / (r_i - r_{i+1})        (transition i)
//
// strictly increasing. Every retained slope carries a segment of the
// envelope.
//
// The load-bearing identity behind every cost function in this module is
// the additive decomposition into independent classic two-slope components:
// for transition i let dr_i = r_i - r_{i+1} and db_i = b_{i+1} - b_i; then
// for any schedule that enters state i+1 at time x_i,
//
//     cost(y) = r_{k-1} y + sum_i comp_i(y),
//     comp_i(y) = dr_i y            if y < x_i        (still renting)
//               = dr_i x_i + db_i   if y >= x_i       (bought transition i)
//
// i.e. component i is a classic ski-rental instance with rent rate dr_i,
// buy cost db_i and break-even t_i = db_i / dr_i. Likewise
// OPT(y) = r_{k-1} y + sum_i min(dr_i y, db_i). The closed forms below
// (envelope follower, randomized envelope) and the generalized COA
// (multislope_policy.h) are all per-component two-slope results composed
// through this identity; at k = 2 each reduces bit-for-bit to the paper's
// two-slope formulas (property-tested).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace idlered::costmodel {

/// One engine state: running cost per idle-second-equivalent and the
/// cumulative cost of switching into it from the base state.
struct Slope {
  double rate = 1.0;         ///< r_i, running cost per second
  double switch_cost = 0.0;  ///< b_i, cumulative switch-in cost
};

/// A validated, dominance-pruned, convexified multislope instance.
///
/// Construction contract (IDLERED_EXPECTS): at least one slope; every rate
/// finite and >= 0; every switch cost finite and >= 0; the cheapest slope
/// must have switch cost 0 (the vehicle starts in a free state). Dominated
/// slopes (another slope no more expensive and no faster) and slopes that
/// never touch the lower envelope (convexity violations) are *pruned*, not
/// rejected — `pruned()` reports how many inputs were dropped.
class SlopeProfile {
 public:
  explicit SlopeProfile(std::vector<Slope> slopes);

  /// The paper's two-slope instance: idle at rate 1, off at rate 0 for a
  /// restart cost of `break_even`. The k = 2 degeneracy anchor: every
  /// multislope policy on this profile is bit-identical to its two-slope
  /// counterpart.
  static SlopeProfile two_slope(double break_even);

  /// Vehicle-flavoured three-state builder: idle (rate 1) / engine off
  /// with accessories on battery (rate `mid_rate`, cost `mid_cost`) / deep
  /// off (rate 0, cost `deep_cost`). Inputs must satisfy
  /// 0 < mid_rate < 1 and 0 < mid_cost < deep_cost; the result is
  /// guaranteed k = 3 (the mid state survives pruning) only when
  /// mid_cost / (1 - mid_rate) < (deep_cost - mid_cost) / mid_rate.
  static SlopeProfile three_state(double mid_rate, double mid_cost,
                                  double deep_cost);

  std::size_t num_states() const { return states_.size(); }
  std::size_t num_transitions() const { return states_.size() - 1; }
  const Slope& state(std::size_t i) const { return states_[i]; }
  std::span<const Slope> states() const { return states_; }

  /// Inputs dropped by dominance pruning / convexification.
  std::size_t pruned() const { return pruned_; }

  /// Envelope breakpoints, one per transition, strictly increasing.
  /// breakpoint(i) is where state i+1 overtakes state i on the envelope.
  std::span<const double> breakpoints() const { return breakpoints_; }
  double breakpoint(std::size_t transition) const {
    return breakpoints_[transition];
  }

  /// Rent rate dr_i = r_i - r_{i+1} (> 0) of transition i's component.
  double delta_rate(std::size_t transition) const;
  /// Buy cost db_i = b_{i+1} - b_i (> 0) of transition i's component.
  double delta_cost(std::size_t transition) const;

  double base_rate() const { return states_.front().rate; }
  double terminal_rate() const { return states_.back().rate; }
  double deepest_switch_cost() const { return states_.back().switch_cost; }

  /// OPT(y) = min_i (b_i + r_i y). Requires a finite y >= 0.
  double offline_cost(double y) const;

  /// The state the offline optimum runs in for a stop of length y: the
  /// deepest state whose envelope segment contains y (ties at a breakpoint
  /// resolve to the deeper state).
  std::size_t offline_state(double y) const;

  /// True when this is exactly the paper's two-slope instance (k = 2,
  /// rates {1, 0}, base switch cost 0) — the profile on which every
  /// multislope policy collapses bit-for-bit onto its two-slope
  /// counterpart.
  bool classic() const;

  /// One-line summary ("3 slopes: (1, 0) -> (0.3, 15) -> (0, 35)").
  std::string describe() const;

 private:
  std::vector<Slope> states_;
  std::vector<double> breakpoints_;
  std::size_t pruned_ = 0;
};

/// Cost of the deterministic envelope follower (the DET generalization:
/// enter state i+1 at breakpoint t_i) for a stop of length y:
///     cost(y) = OPT(y) + b_{j(y)},   j(y) = #{ i : t_i <= y }.
/// At most 2-competitive; equals the two-slope DET cost at k = 2.
double envelope_follower_cost(const SlopeProfile& profile, double y);

/// Exact expected cost of the randomized envelope strategy (Lotker et
/// al.): all transition times scale by a shared factor s = ln(1 + u(e-1)),
/// u uniform on [0, 1] — each component's marginal threshold law is the
/// two-slope N-Rand equalizer at break-even t_i, so
///     E[cost(y)] = r_{k-1} y + e/(e-1) sum_i min(dr_i y, db_i)
///                <= e/(e-1) OPT(y)    for every y (pointwise).
/// Closed form, no quadrature; equals the two-slope N-Rand cost at k = 2.
double randomized_envelope_cost(const SlopeProfile& profile, double y);

}  // namespace idlered::costmodel
