#include "costmodel/wear.h"

#include <stdexcept>

namespace idlered::costmodel {

double starter_cost_cents_per_start(const StarterSpec& starter) {
  if (starter.strengthened) return 0.0;
  if (starter.starts_per_replacement <= 0.0)
    throw std::invalid_argument("starter: starts_per_replacement must be > 0");
  if (starter.replacement_usd < 0.0 || starter.labor_usd < 0.0)
    throw std::invalid_argument("starter: costs must be >= 0");
  const double usd = starter.replacement_usd + starter.labor_usd;
  return usd * 100.0 / starter.starts_per_replacement;
}

double battery_cost_cents_per_start(const BatterySpec& battery) {
  if (battery.warranty_years <= 0.0 || battery.stops_per_day <= 0.0)
    throw std::invalid_argument("battery: warranty and stops/day must be > 0");
  if (battery.cost_usd < 0.0)
    throw std::invalid_argument("battery: cost must be >= 0");
  const double starts = battery.warranty_years * 365.0 * battery.stops_per_day;
  return battery.cost_usd * 100.0 / starts;
}

}  // namespace idlered::costmodel
