// Exhaust-emission costs, Appendix C.2.3 of the paper.
//
// CO2 scales with fuel and is already inside the 10 s restart-fuel figure.
// THC / NOx / CO are priced separately; the paper's worked example prices
// only NOx (Swedish NOx charge, ~4.3 EUR/kg) and finds the restart penalty
// equivalent to ~0.14 s of idling — small but modeled for completeness.
#pragma once

namespace idlered::costmodel {

/// Pollutants emitted per restart and per second of idling (milligrams),
/// defaults from Argonne National Laboratory measurements cited in the paper.
struct EmissionRates {
  double thc_mg_per_restart = 44.0;
  double nox_mg_per_restart = 6.0;
  double co_mg_per_restart = 1253.0;

  double thc_mg_per_idle_s = 0.266;
  double nox_mg_per_idle_s = 0.0097;
  double co_mg_per_idle_s = 0.108;
};

/// Per-kilogram pollutant prices in US cents. Default: only NOx priced, at
/// the Swedish charge of ~4.3 EUR/kg ~= 580 US cents/kg (2014 exchange rate),
/// matching the paper's $0.0035-cents-per-restart example within rounding.
struct EmissionPricing {
  double thc_cents_per_kg = 0.0;
  double nox_cents_per_kg = 580.0;
  double co_cents_per_kg = 0.0;
};

/// Priced emission cost of one restart, US cents.
double emission_cost_cents_per_restart(const EmissionRates& rates,
                                       const EmissionPricing& pricing);

/// Priced emission cost of one second of idling, US cents.
double emission_cost_cents_per_idle_s(const EmissionRates& rates,
                                      const EmissionPricing& pricing);

}  // namespace idlered::costmodel
