#include "costmodel/fuel.h"

#include <stdexcept>

namespace idlered::costmodel {

double idle_fuel_l_per_h(double displacement_liters) {
  if (displacement_liters <= 0.0)
    throw std::invalid_argument("idle_fuel_l_per_h: displacement must be > 0");
  return 0.3644 * displacement_liters + 0.5188;
}

double idle_fuel_cc_per_s(const EngineSpec& engine) {
  if (engine.measured_idle_fuel_cc_per_s > 0.0)
    return engine.measured_idle_fuel_cc_per_s;
  // L/h -> cc/s: * 1000 cc/L / 3600 s/h
  return idle_fuel_l_per_h(engine.displacement_liters) * 1000.0 / 3600.0;
}

double idling_cost_cents_per_s(const EngineSpec& engine,
                               const FuelPricing& pricing) {
  if (pricing.usd_per_gallon <= 0.0)
    throw std::invalid_argument("idling_cost: fuel price must be > 0");
  const double cents_per_gallon = pricing.usd_per_gallon * 100.0;
  return idle_fuel_cc_per_s(engine) * cents_per_gallon / kCcPerGallon;
}

}  // namespace idlered::costmodel
