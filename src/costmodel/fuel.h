// Idling fuel-cost model, Appendix C.1 of the paper.
//
//   fuel_{L/h} = 0.3644 * D + 0.5188                  (eq. 45, from the CMEM
//                                                      modal emission model)
//   cost_{idling/s} = fuel_{cc/s} * p_gallon / 3785   (eq. 46)
//
// The paper's reference vehicle is Argonne's 2011 Ford Fusion (2.5 L) with a
// *measured* idle consumption of 0.279 cc/s, which it uses in preference to
// the regression; both paths are supported here.
#pragma once

namespace idlered::costmodel {

/// Cubic centimetres per US gallon, the paper's conversion constant.
inline constexpr double kCcPerGallon = 3785.0;

struct EngineSpec {
  double displacement_liters = 2.5;
  /// Measured idle fuel burn in cc/s. When > 0 this overrides the
  /// displacement regression (the paper uses Argonne's 0.279 cc/s).
  double measured_idle_fuel_cc_per_s = 0.279;
};

struct FuelPricing {
  double usd_per_gallon = 3.50;  ///< the paper's worked example
};

/// Eq. (45): idle fuel consumption in litres/hour from engine displacement.
double idle_fuel_l_per_h(double displacement_liters);

/// Idle fuel burn in cc/s: the measurement if available, else eq. (45).
double idle_fuel_cc_per_s(const EngineSpec& engine);

/// Eq. (46): idling cost in US cents per second.
double idling_cost_cents_per_s(const EngineSpec& engine,
                               const FuelPricing& pricing);

/// Fuel consumed by one restart, expressed in seconds of idling. The paper
/// cites several independent measurements converging on 10 s.
inline constexpr double kRestartFuelIdleSeconds = 10.0;

}  // namespace idlered::costmodel
