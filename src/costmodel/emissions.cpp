#include "costmodel/emissions.h"

namespace idlered::costmodel {

namespace {
constexpr double kMgPerKg = 1.0e6;
}

double emission_cost_cents_per_restart(const EmissionRates& rates,
                                       const EmissionPricing& pricing) {
  return (rates.thc_mg_per_restart * pricing.thc_cents_per_kg +
          rates.nox_mg_per_restart * pricing.nox_cents_per_kg +
          rates.co_mg_per_restart * pricing.co_cents_per_kg) /
         kMgPerKg;
}

double emission_cost_cents_per_idle_s(const EmissionRates& rates,
                                      const EmissionPricing& pricing) {
  return (rates.thc_mg_per_idle_s * pricing.thc_cents_per_kg +
          rates.nox_mg_per_idle_s * pricing.nox_cents_per_kg +
          rates.co_mg_per_idle_s * pricing.co_cents_per_kg) /
         kMgPerKg;
}

}  // namespace idlered::costmodel
