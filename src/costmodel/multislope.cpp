#include "costmodel/multislope.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/contracts.h"
#include "util/math.h"

namespace idlered::costmodel {

namespace {

// Envelope crossing of two slopes a (shallower, cheaper) and b: the stop
// length at which line b_b + r_b y drops below b_a + r_a y.
double crossing(const Slope& a, const Slope& b) {
  return (b.switch_cost - a.switch_cost) / (a.rate - b.rate);
}

}  // namespace

SlopeProfile::SlopeProfile(std::vector<Slope> slopes) {
  IDLERED_EXPECTS(!slopes.empty(),
                  "SlopeProfile: at least one slope required");
  for (const Slope& s : slopes) {
    IDLERED_EXPECTS(std::isfinite(s.rate) && s.rate >= 0.0,
                    "SlopeProfile: every rate must be finite and >= 0");
    IDLERED_EXPECTS(std::isfinite(s.switch_cost) && s.switch_cost >= 0.0,
                    "SlopeProfile: every switch cost must be finite and "
                    ">= 0");
  }

  // Canonical order: by switch cost, ties broken toward the lower rate so
  // the dominance pass below keeps the useful one.
  std::sort(slopes.begin(), slopes.end(),
            [](const Slope& a, const Slope& b) {
              return a.switch_cost != b.switch_cost
                         ? a.switch_cost < b.switch_cost
                         : a.rate < b.rate;
            });
  // lint: allow(float-compare): contract on an exact sentinel zero
  IDLERED_EXPECTS(slopes.front().switch_cost == 0.0,
                  "SlopeProfile: the cheapest slope must have switch cost 0 "
                  "(the vehicle starts in a free state)");

  // Lower-envelope construction in one stack pass. A candidate is
  // dominated when it is no faster than the last kept slope (it pays more
  // to run no cheaper); a kept slope is popped when the candidate
  // overtakes the envelope at or before the point where the kept slope
  // did (the kept slope never owns an envelope segment).
  states_.reserve(slopes.size());
  for (const Slope& s : slopes) {
    if (!states_.empty() && s.rate >= states_.back().rate) {
      ++pruned_;
      continue;
    }
    while (states_.size() >= 2 &&
           crossing(states_[states_.size() - 2], s) <=
               crossing(states_[states_.size() - 2], states_.back())) {
      states_.pop_back();
      ++pruned_;
    }
    states_.push_back(s);
  }

  breakpoints_.reserve(states_.size() - 1);
  for (std::size_t i = 0; i + 1 < states_.size(); ++i)
    breakpoints_.push_back(crossing(states_[i], states_[i + 1]));

  for (std::size_t i = 0; i + 1 < breakpoints_.size(); ++i) {
    IDLERED_ASSERT_INVARIANT(breakpoints_[i] < breakpoints_[i + 1],
                             "SlopeProfile: breakpoints must be strictly "
                             "increasing after convexification");
  }
  for (std::size_t i = 0; i + 1 < states_.size(); ++i) {
    IDLERED_ASSERT_INVARIANT(
        states_[i].rate > states_[i + 1].rate &&
            states_[i].switch_cost < states_[i + 1].switch_cost,
        "SlopeProfile: retained slopes must have strictly decreasing rates "
        "and strictly increasing switch costs");
  }
}

SlopeProfile SlopeProfile::two_slope(double break_even) {
  IDLERED_EXPECTS(std::isfinite(break_even) && break_even > 0.0,
                  "SlopeProfile::two_slope: break-even must be finite and "
                  "> 0");
  return SlopeProfile({{1.0, 0.0}, {0.0, break_even}});
}

SlopeProfile SlopeProfile::three_state(double mid_rate, double mid_cost,
                                       double deep_cost) {
  IDLERED_EXPECTS(std::isfinite(mid_rate) && mid_rate > 0.0 && mid_rate < 1.0,
                  "SlopeProfile::three_state: mid rate must be in (0, 1)");
  IDLERED_EXPECTS(std::isfinite(mid_cost) && mid_cost > 0.0 &&
                      std::isfinite(deep_cost) && deep_cost > mid_cost,
                  "SlopeProfile::three_state: need 0 < mid_cost < deep_cost");
  return SlopeProfile({{1.0, 0.0}, {mid_rate, mid_cost}, {0.0, deep_cost}});
}

double SlopeProfile::delta_rate(std::size_t transition) const {
  return states_[transition].rate - states_[transition + 1].rate;
}

double SlopeProfile::delta_cost(std::size_t transition) const {
  return states_[transition + 1].switch_cost - states_[transition].switch_cost;
}

double SlopeProfile::offline_cost(double y) const {
  IDLERED_EXPECTS(std::isfinite(y) && y >= 0.0,
                  "SlopeProfile::offline_cost: y must be finite and >= 0");
  double best = states_[0].switch_cost + states_[0].rate * y;
  for (std::size_t i = 1; i < states_.size(); ++i) {
    const double c = states_[i].switch_cost + states_[i].rate * y;
    if (c < best) best = c;
  }
  return best;
}

std::size_t SlopeProfile::offline_state(double y) const {
  IDLERED_EXPECTS(std::isfinite(y) && y >= 0.0,
                  "SlopeProfile::offline_state: y must be finite and >= 0");
  std::size_t j = 0;
  while (j < breakpoints_.size() && breakpoints_[j] <= y) ++j;
  return j;
}

bool SlopeProfile::classic() const {
  // lint: allow(float-compare): classic() is an exact-shape test by design
  return states_.size() == 2 && states_[0].rate == 1.0 &&
         // lint: allow(float-compare): classic() is an exact-shape test
         states_[0].switch_cost == 0.0 && states_[1].rate == 0.0;
}

std::string SlopeProfile::describe() const {
  std::ostringstream os;
  os << states_.size() << " slopes:";
  for (const Slope& s : states_)
    os << " (" << s.rate << ", " << s.switch_cost << ")";
  if (pruned_ > 0) os << " [" << pruned_ << " pruned]";
  return os.str();
}

double envelope_follower_cost(const SlopeProfile& profile, double y) {
  // The follower rents along the envelope, so its rent equals OPT(y); the
  // unrecovered part is the switch cost of the deepest state entered.
  const double opt = profile.offline_cost(y);
  return opt + profile.state(profile.offline_state(y)).switch_cost;
}

double randomized_envelope_cost(const SlopeProfile& profile, double y) {
  IDLERED_EXPECTS(std::isfinite(y) && y >= 0.0,
                  "randomized_envelope_cost: y must be finite and >= 0");
  // Per the decomposition, scaling every transition time by the shared
  // factor s = ln(1 + u(e-1)) gives each component exactly the two-slope
  // N-Rand threshold law at its own break-even, and N-Rand equalizes:
  // E[comp_i(y)] = e/(e-1) min(dr_i y, db_i), independent of how the
  // component draws correlate.
  double sum = 0.0;
  for (std::size_t i = 0; i < profile.num_transitions(); ++i) {
    const double rent = profile.delta_rate(i) * y;
    const double buy = profile.delta_cost(i);
    sum += rent < buy ? rent : buy;
  }
  return profile.terminal_rate() * y + util::kEOverEMinus1 * sum;
}

}  // namespace idlered::costmodel
