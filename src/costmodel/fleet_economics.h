// National-fleet idling economics — the paper's Introduction claims.
//
// "The average amount of idling has been measured at 13% to 23% of the
//  total vehicle operating time ... In US alone, idling vehicles uses more
//  than 6 billion gallons of fuel at a cost of more than $20 billion each
//  year."
//
// This module rebuilds those headline numbers from first principles
// (vehicle count x driving time x idle fraction x idle burn rate) and then
// asks the question the paper motivates: how much of that waste would each
// online strategy recover? The arithmetic is deliberately transparent —
// every factor is a named parameter with the cited defaults.
#pragma once

#include "costmodel/fuel.h"

namespace idlered::costmodel {

struct NationalFleetModel {
  double vehicles = 250.0e6;            ///< US light-duty fleet, ~2014
  /// Average time behind the wheel: ~3e12 vehicle-miles/yr at ~30 mph
  /// average over 250M vehicles ~ 1.2 h/day.
  double driving_hours_per_day = 1.2;
  double idle_fraction = 0.18;          ///< paper's 13%-23% band, midpoint
  EngineSpec engine;                    ///< average vehicle (defaults OK)
  FuelPricing fuel;                     ///< $/gallon
};

struct NationalIdlingBill {
  double idle_hours_per_year = 0.0;     ///< fleet total
  double fuel_gallons_per_year = 0.0;
  double usd_per_year = 0.0;
  double co2_tonnes_per_year = 0.0;
};

/// The fleet's total idling bill under the model (paper: ~6e9 gallons,
/// ~$20e9 with slightly different inputs).
NationalIdlingBill national_idling_bill(const NationalFleetModel& fleet);

/// Fraction of the idling bill a strategy can recover, given the fleet's
/// aggregate (mu_B-, q_B+) statistics and per-stop accounting:
/// recoverable = 1 - E[cost_strategy] / E[cost_NEV], where NEV (never
/// turning off) pays the full stop time. `strategy_cost_per_stop` and
/// `nev_cost_per_stop` are expected idle-second-equivalents per stop.
double recoverable_fraction(double strategy_cost_per_stop,
                            double nev_cost_per_stop);

/// Scale the national bill by a recoverable fraction.
NationalIdlingBill scale_bill(const NationalIdlingBill& bill,
                              double fraction);

}  // namespace idlered::costmodel
