#include "costmodel/fleet_economics.h"

#include <stdexcept>

namespace idlered::costmodel {

namespace {
constexpr double kCo2KgPerGallon = 8.74;  // EPA gasoline combustion factor
}

NationalIdlingBill national_idling_bill(const NationalFleetModel& fleet) {
  if (fleet.vehicles <= 0.0 || fleet.driving_hours_per_day <= 0.0)
    throw std::invalid_argument(
        "national_idling_bill: fleet size and driving time must be > 0");
  if (fleet.idle_fraction < 0.0 || fleet.idle_fraction > 1.0)
    throw std::invalid_argument(
        "national_idling_bill: idle fraction must be in [0, 1]");

  NationalIdlingBill bill;
  bill.idle_hours_per_year = fleet.vehicles * fleet.driving_hours_per_day *
                             365.0 * fleet.idle_fraction;
  const double cc_per_s = idle_fuel_cc_per_s(fleet.engine);
  const double gallons_per_hour = cc_per_s * 3600.0 / kCcPerGallon;
  bill.fuel_gallons_per_year = bill.idle_hours_per_year * gallons_per_hour;
  bill.usd_per_year = bill.fuel_gallons_per_year * fleet.fuel.usd_per_gallon;
  bill.co2_tonnes_per_year =
      bill.fuel_gallons_per_year * kCo2KgPerGallon / 1000.0;
  return bill;
}

double recoverable_fraction(double strategy_cost_per_stop,
                            double nev_cost_per_stop) {
  if (nev_cost_per_stop <= 0.0)
    throw std::invalid_argument(
        "recoverable_fraction: NEV cost must be > 0");
  if (strategy_cost_per_stop < 0.0)
    throw std::invalid_argument(
        "recoverable_fraction: strategy cost must be >= 0");
  const double f = 1.0 - strategy_cost_per_stop / nev_cost_per_stop;
  return f;  // may be negative if the strategy idles *more* than NEV
}

NationalIdlingBill scale_bill(const NationalIdlingBill& bill,
                              double fraction) {
  NationalIdlingBill scaled = bill;
  scaled.idle_hours_per_year *= fraction;
  scaled.fuel_gallons_per_year *= fraction;
  scaled.usd_per_year *= fraction;
  scaled.co2_tonnes_per_year *= fraction;
  return scaled;
}

}  // namespace idlered::costmodel
