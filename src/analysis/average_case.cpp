#include "analysis/average_case.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/costs.h"
#include "util/math.h"

namespace idlered::analysis {

double expected_cost_at_threshold(const dist::StopLengthDistribution& law,
                                  double threshold, double break_even) {
  core::require_valid_break_even(break_even);
  if (std::isinf(threshold)) {
    // NEV: idle through every stop.
    const double m = law.mean();
    return m;  // may be +inf for very heavy tails
  }
  if (threshold < 0.0)
    throw std::invalid_argument("expected_cost_at_threshold: x must be >= 0");
  return law.partial_expectation(threshold) +
         law.tail_probability(threshold) * (threshold + break_even);
}

double expected_offline_cost(const dist::StopLengthDistribution& law,
                             double break_even) {
  const auto stats = dist::ShortStopStats::from_distribution(law, break_even);
  return stats.expected_offline_cost(break_even);
}

AverageCaseOptimum optimal_threshold(const dist::StopLengthDistribution& law,
                                     double break_even, double search_horizon,
                                     int grid) {
  core::require_valid_break_even(break_even);
  if (grid < 8)
    throw std::invalid_argument("optimal_threshold: grid too small");

  const double hi = search_horizon * break_even;
  auto g = [&](double x) {
    return expected_cost_at_threshold(law, x, break_even);
  };

  // Coarse scan.
  double best_x = 0.0;
  double best_g = g(0.0);
  const auto xs = util::linspace(0.0, hi, grid);
  for (double x : xs) {
    const double v = g(x);
    if (v < best_g) {
      best_g = v;
      best_x = x;
    }
  }
  // Golden polish around the best grid point.
  const double step = hi / static_cast<double>(grid - 1);
  const double lo_b = std::max(0.0, best_x - step);
  const double hi_b = std::min(hi, best_x + step);
  const double polished = util::minimize_golden(g, lo_b, hi_b, 1e-9 * hi);
  if (g(polished) < best_g) {
    best_x = polished;
    best_g = g(polished);
  }

  // NEV endpoint (threshold = +inf).
  // Prefer NEV on (floating-point) ties: a finite threshold that equals the
  // mean in double precision is the same strategy, and +inf states the
  // intent (memoryless laws tie exactly).
  const double nev = law.mean();
  AverageCaseOptimum out;
  if (std::isfinite(nev) && nev <= best_g) {
    out.threshold = std::numeric_limits<double>::infinity();
    out.expected_cost = nev;
  } else {
    out.threshold = best_x;
    out.expected_cost = best_g;
  }
  const double offline = expected_offline_cost(law, break_even);
  out.expected_cr = offline > 0.0 ? out.expected_cost / offline : 1.0;
  return out;
}

}  // namespace idlered::analysis
