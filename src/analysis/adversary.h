// Numerical worst-case adversary construction.
//
// Section 3 of the paper defines the distribution class Q(mu_B-, q_B+); the
// worst-case expected cost of a policy is a *linear program* over q(y):
//
//   max_q  sum_i  E_x[cost_online(x, y_i)] q_i          (linear in q)
//   s.t.   sum_{y_i < B} y_i q_i        = mu_B-          (eq. 10)
//          sum_{y_i >= B} q_i           = q_B+           (eq. 11)
//          sum_i q_i                    = 1,   q_i >= 0
//
// after discretizing the stop length onto a grid. Solving it with the
// simplex of src/lp mechanically reconstructs the paper's adversaries (the
// optimal q concentrates on at most three atoms — one LP vertex) and
// cross-validates every closed-form worst-case bound in core/analytic.
#pragma once

#include <vector>

#include "core/policy.h"
#include "dist/distribution.h"

namespace idlered::analysis {

struct AdversaryResult {
  double expected_cost = 0.0;  ///< the worst-case expected online cost
  double cr = 0.0;             ///< divided by the expected offline cost
  /// The adversarial distribution: stop lengths with positive probability.
  struct Atom {
    double stop_length = 0.0;
    double probability = 0.0;
  };
  std::vector<Atom> atoms;

  /// Shadow prices of the three constraints — the Lagrange multipliers of
  /// the paper's Section 4.1 Lagrangian, recovered from the LP duals:
  ///   d(worst cost)/d(mu_B-), d(worst cost)/d(q_B+), and the value of the
  ///   normalization constraint. For DET these are (1, 2B, .); for N-Rand
  ///   (e/(e-1), e/(e-1) B, .), matching the closed-form cost gradients.
  double lambda_mu = 0.0;
  double lambda_q = 0.0;
  double lambda_norm = 0.0;
};

struct AdversaryOptions {
  int grid_short = 200;       ///< grid points in [0, B)
  int grid_long = 40;         ///< grid points in [B, long_horizon * B]
  double long_horizon = 10.0; ///< longest considered stop, in units of B
  /// Additional short-stop grid points (< B). Policies with threshold atoms
  /// have cost discontinuities exactly at those thresholds; aligning the
  /// adversary grid with them is required for a tight worst case (the
  /// minimax solver passes the designer's support here).
  std::vector<double> extra_short_points;
};

/// Solve the discretized worst-case LP for `policy` under the statistics
/// constraints. Throws std::invalid_argument on infeasible statistics and
/// std::runtime_error if the LP fails (cannot happen for feasible stats).
AdversaryResult worst_case_adversary(const core::Policy& policy,
                                     const dist::ShortStopStats& stats,
                                     const AdversaryOptions& options = {});

}  // namespace idlered::analysis
