#include "analysis/metrics.h"

#include <stdexcept>

#include "core/costs.h"
#include "util/math.h"

namespace idlered::analysis {

double expected_ratio_cr(const core::Policy& policy,
                         const std::vector<double>& stops) {
  const double b = policy.break_even();
  double sum = 0.0;
  std::size_t used = 0;
  for (double y : stops) {
    if (y <= 0.0) continue;
    sum += policy.expected_cost(y) / core::offline_cost(y, b);
    ++used;
  }
  if (used == 0)
    throw std::invalid_argument("expected_ratio_cr: no positive stops");
  return sum / static_cast<double>(used);
}

double expected_ratio_cr(const core::Policy& policy,
                         const dist::StopLengthDistribution& law,
                         double quadrature_tol) {
  const double b = policy.break_even();
  // Short range: integrate the per-stop ratio against the density. The
  // integrand can blow up as y -> 0 for policies with an atom at 0 (TOI);
  // the paper's 0+ limit excludes that point, and for laws with q(0) -> 0
  // the integral converges; start just above 0.
  const double lo = 1e-6 * b;
  const double short_part = util::integrate(
      [&](double y) {
        return policy.expected_cost(y) / core::offline_cost(y, b) *
               law.pdf(y);
      },
      lo, b, quadrature_tol);
  // Long stops: for y >= B the offline cost is B and every policy supported
  // on [0, B] has a constant expected cost there.
  const double long_part =
      law.tail_probability(b) * policy.expected_cost(2.0 * b) / b;
  return short_part + long_part;
}

double mom_rand_cr_prime_bound(double mu, double break_even) {
  core::require_valid_break_even(break_even);
  if (mu < 0.0)
    throw std::invalid_argument("mom_rand_cr_prime_bound: mu must be >= 0");
  return 1.0 + mu / (2.0 * break_even * (util::kE - 2.0));
}

}  // namespace idlered::analysis
