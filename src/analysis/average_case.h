// Average-case analysis with a fully known stop-length distribution —
// the Fujiwara & Iwama setting the paper contrasts itself against.
//
// When q(y) is known exactly (not just two moments of it), the best
// deterministic threshold minimizes
//
//   g(x) = E[cost_online(x, y)]
//        = integral_0^x y q(y) dy + P{y >= x} (x + B)
//        = partial_expectation(x) + tail_probability(x) * (x + B)
//
// over x in [0, +inf]; x = +inf is NEV (never turn off). This module
// computes g, finds the optimum, and provides the classic closed-form
// answers for the exponential law (all-or-nothing by memorylessness) that
// tests validate against.
#pragma once

#include "dist/distribution.h"

namespace idlered::analysis {

/// g(x): exact expected online cost of the fixed threshold x against `law`.
double expected_cost_at_threshold(const dist::StopLengthDistribution& law,
                                  double threshold, double break_even);

struct AverageCaseOptimum {
  double threshold = 0.0;      ///< best x; +inf means "never turn off"
  double expected_cost = 0.0;  ///< g at the optimum
  double expected_cr = 0.0;    ///< vs E[cost_offline] under the same law
};

/// Global search over [0, search_horizon * B] plus the NEV endpoint.
/// g is piecewise-smooth but not unimodal in general, so the search scans a
/// grid and polishes the best bracket with golden-section.
AverageCaseOptimum optimal_threshold(const dist::StopLengthDistribution& law,
                                     double break_even,
                                     double search_horizon = 20.0,
                                     int grid = 400);

/// Expected offline cost under a known law: mu_B- + q_B+ B.
double expected_offline_cost(const dist::StopLengthDistribution& law,
                             double break_even);

}  // namespace idlered::analysis
