// Numeric solution of the constrained ski-rental minimax problem (eq. 16)
// by a double-oracle / cutting-plane loop — deriving the optimal online
// strategy *without* the paper's closed-form analysis, as an independent
// check of Section 4.
//
// The game: the designer picks a distribution P over thresholds x in [0, B]
// (discretized); the adversary picks a stop-length distribution q in
// Q(mu_B-, q_B+). Payoff: expected online cost (eq. 15).
//
//   repeat:
//     1. designer LP: given the finite adversary support Y_hat, minimize t
//        s.t. sum_x cost(x, y) P(x) <= t for every y in Y_hat,
//             sum_x P(x) q-weights consistent — handled by the adversary's
//             mixture, see .cpp — P a probability vector;
//     2. adversary oracle: solve the full worst-case LP (analysis/adversary)
//        against the current P; if its value exceeds t, add the new
//        adversary atoms to Y_hat and repeat.
//
// At convergence the designer's value equals the paper's closed-form
// optimum min over {TOI, DET, b-DET, N-Rand} (tests assert this across the
// statistics plane), and the recovered P(x) concentrates the way eq. (18)
// predicts (atoms at 0 / b* / B or the exponential continuous shape).
#pragma once

#include <vector>

#include "dist/distribution.h"

namespace idlered::analysis {

struct MinimaxOptions {
  int threshold_grid = 120;   ///< designer grid points over [0, B]
  int max_iterations = 60;    ///< double-oracle rounds
  double tolerance = 1e-5;    ///< relative convergence gap
  int adversary_grid_short = 400;
  int adversary_grid_long = 40;
};

struct MinimaxResult {
  double value = 0.0;  ///< worst-case expected online cost of the optimum
  double cr = 0.0;     ///< divided by the expected offline cost
  bool converged = false;
  int iterations = 0;
  /// The designer's mixed strategy over thresholds (grid points with
  /// positive probability).
  struct ThresholdMass {
    double threshold = 0.0;
    double probability = 0.0;
  };
  std::vector<ThresholdMass> strategy;
};

/// Solve the minimax game for the given statistics. Throws on infeasible
/// statistics.
MinimaxResult solve_minimax(const dist::ShortStopStats& stats,
                            double break_even,
                            const MinimaxOptions& options = {});

}  // namespace idlered::analysis
