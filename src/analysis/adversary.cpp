#include "analysis/adversary.h"

#include <algorithm>
#include <stdexcept>

#include "lp/arena.h"

namespace idlered::analysis {

AdversaryResult worst_case_adversary(const core::Policy& policy,
                                     const dist::ShortStopStats& stats,
                                     const AdversaryOptions& options) {
  const double b = policy.break_even();
  if (!stats.feasible(b))
    throw std::invalid_argument("worst_case_adversary: infeasible stats");
  if (options.grid_short < 2 || options.grid_long < 1)
    throw std::invalid_argument("worst_case_adversary: grid too small");

  // Stop-length grid: [0, B) densely (including a point just below B so the
  // boundary statistics stay representable), then [B, horizon * B].
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(options.grid_short) +
               static_cast<std::size_t>(options.grid_long) + 1);
  for (int i = 0; i < options.grid_short; ++i) {
    grid.push_back(b * static_cast<double>(i) /
                   static_cast<double>(options.grid_short));
  }
  grid.push_back(b * (1.0 - 1e-9));  // just below the break-even boundary
  for (double extra : options.extra_short_points) {
    if (extra >= 0.0 && extra < b) grid.push_back(extra);
  }
  const std::size_t num_short = grid.size();
  for (int i = 0; i < options.grid_long; ++i) {
    const double frac = static_cast<double>(i) /
                        static_cast<double>(std::max(1, options.grid_long - 1));
    grid.push_back(b * (1.0 + (options.long_horizon - 1.0) * frac));
  }

  // LP: maximize sum_i cost_i q_i subject to the moment constraints. Staged
  // in a per-call workspace (cold path; the workspace API keeps the solve
  // itself allocation-free and on the same kernel as every other caller).
  const std::size_t num_points = grid.size();
  lp::Workspace workspace(3, num_points);
  lp::ProblemStage stage = workspace.stage(3, num_points, /*maximize=*/true);
  for (std::size_t i = 0; i < num_points; ++i)
    stage.objective[i] = policy.expected_cost(grid[i]);

  // Row 0: short-stop mean; row 1: long-stop mass; row 2: normalization.
  for (std::size_t i = 0; i < num_points; ++i) {
    if (i < num_short) {
      stage.coeffs[i] = grid[i];
    } else {
      stage.coeffs[num_points + i] = 1.0;
    }
    stage.coeffs[2 * num_points + i] = 1.0;
  }
  stage.senses[0] = lp::Sense::kEqual;
  stage.senses[1] = lp::Sense::kEqual;
  stage.senses[2] = lp::Sense::kEqual;
  stage.rhs[0] = stats.mu_b_minus;
  stage.rhs[1] = stats.q_b_plus;
  stage.rhs[2] = 1.0;

  const lp::SolutionView sol = lp::solve(workspace, stage.view());
  if (!sol.optimal())
    throw std::runtime_error("worst_case_adversary: LP " +
                             lp::to_string(sol.status));

  AdversaryResult result;
  result.expected_cost = sol.objective_value;
  result.lambda_mu = sol.duals[0];
  result.lambda_q = sol.duals[1];
  result.lambda_norm = sol.duals[2];
  const double offline = stats.expected_offline_cost(b);
  result.cr = offline > 0.0 ? sol.objective_value / offline : 1.0;
  for (std::size_t i = 0; i < num_points; ++i) {
    if (sol.x[i] > 1e-9) {
      result.atoms.push_back({grid[i], sol.x[i]});
    }
  }
  std::sort(result.atoms.begin(), result.atoms.end(),
            [](const AdversaryResult::Atom& a, const AdversaryResult::Atom& o) {
              return a.stop_length < o.stop_length;
            });
  return result;
}

}  // namespace idlered::analysis
