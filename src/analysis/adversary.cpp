#include "analysis/adversary.h"

#include <algorithm>
#include <stdexcept>

#include "lp/simplex.h"

namespace idlered::analysis {

AdversaryResult worst_case_adversary(const core::Policy& policy,
                                     const dist::ShortStopStats& stats,
                                     const AdversaryOptions& options) {
  const double b = policy.break_even();
  if (!stats.feasible(b))
    throw std::invalid_argument("worst_case_adversary: infeasible stats");
  if (options.grid_short < 2 || options.grid_long < 1)
    throw std::invalid_argument("worst_case_adversary: grid too small");

  // Stop-length grid: [0, B) densely (including a point just below B so the
  // boundary statistics stay representable), then [B, horizon * B].
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(options.grid_short) +
               static_cast<std::size_t>(options.grid_long) + 1);
  for (int i = 0; i < options.grid_short; ++i) {
    grid.push_back(b * static_cast<double>(i) /
                   static_cast<double>(options.grid_short));
  }
  grid.push_back(b * (1.0 - 1e-9));  // just below the break-even boundary
  for (double extra : options.extra_short_points) {
    if (extra >= 0.0 && extra < b) grid.push_back(extra);
  }
  const std::size_t num_short = grid.size();
  for (int i = 0; i < options.grid_long; ++i) {
    const double frac = static_cast<double>(i) /
                        static_cast<double>(std::max(1, options.grid_long - 1));
    grid.push_back(b * (1.0 + (options.long_horizon - 1.0) * frac));
  }

  // LP: maximize sum_i cost_i q_i subject to the moment constraints.
  lp::Problem problem;
  problem.maximize = true;
  problem.objective.reserve(grid.size());
  for (double y : grid) problem.objective.push_back(policy.expected_cost(y));

  std::vector<double> mu_row(grid.size(), 0.0);
  std::vector<double> q_row(grid.size(), 0.0);
  std::vector<double> one_row(grid.size(), 1.0);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i < num_short) {
      mu_row[i] = grid[i];
    } else {
      q_row[i] = 1.0;
    }
  }
  problem.add_constraint(mu_row, lp::Sense::kEqual, stats.mu_b_minus);
  problem.add_constraint(q_row, lp::Sense::kEqual, stats.q_b_plus);
  problem.add_constraint(one_row, lp::Sense::kEqual, 1.0);

  const lp::Solution sol = lp::solve(problem);
  if (!sol.optimal())
    throw std::runtime_error("worst_case_adversary: LP " +
                             lp::to_string(sol.status));

  AdversaryResult result;
  result.expected_cost = sol.objective_value;
  result.lambda_mu = sol.duals[0];
  result.lambda_q = sol.duals[1];
  result.lambda_norm = sol.duals[2];
  const double offline = stats.expected_offline_cost(b);
  result.cr = offline > 0.0 ? sol.objective_value / offline : 1.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (sol.x[i] > 1e-9) {
      result.atoms.push_back({grid[i], sol.x[i]});
    }
  }
  std::sort(result.atoms.begin(), result.atoms.end(),
            [](const AdversaryResult::Atom& a, const AdversaryResult::Atom& o) {
              return a.stop_length < o.stop_length;
            });
  return result;
}

}  // namespace idlered::analysis
