#include "analysis/minimax.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/adversary.h"
#include "core/analytic.h"
#include "core/costs.h"
#include "core/decision_distribution.h"
#include "lp/arena.h"
#include "util/math.h"

namespace idlered::analysis {

namespace {

/// Build the designer's policy object from grid masses (drops zero-mass
/// thresholds to keep the atom list short).
core::DecisionDistribution make_policy(double break_even,
                                       const std::vector<double>& grid,
                                       const std::vector<double>& masses) {
  std::vector<core::DecisionDistribution::Atom> atoms;
  double total = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (masses[i] > 1e-12) {
      atoms.push_back({grid[i], masses[i]});
      total += masses[i];
    }
  }
  // Renormalize away LP round-off.
  for (auto& a : atoms) a.mass /= total;
  return core::DecisionDistribution(break_even, std::move(atoms), 0.0);
}

}  // namespace

MinimaxResult solve_minimax(const dist::ShortStopStats& stats,
                            double break_even,
                            const MinimaxOptions& options) {
  if (!stats.feasible(break_even))
    throw std::invalid_argument("solve_minimax: infeasible statistics");
  if (options.threshold_grid < 4)
    throw std::invalid_argument("solve_minimax: threshold grid too small");

  // Designer grid over [0, B]; include b* so the known optimum is exactly
  // representable.
  std::vector<double> grid =
      util::linspace(0.0, break_even, options.threshold_grid);
  if (core::b_det_feasible(stats, break_even)) {
    grid.push_back(core::b_det_optimal_threshold(stats, break_even));
    std::sort(grid.begin(), grid.end());
  }
  const std::size_t n = grid.size();

  AdversaryOptions adv_opt;
  adv_opt.grid_short = options.adversary_grid_short;
  adv_opt.grid_long = options.adversary_grid_long;
  // Align the adversary with the designer's threshold grid: the cost
  // function jumps exactly at each threshold, and the worst case places
  // mass right on those jumps.
  adv_opt.extra_short_points = grid;

  // Adversary support pool: each entry is a finite distribution in Q.
  std::vector<std::vector<AdversaryResult::Atom>> pool;
  {
    // Seed with the best response to the uniform designer mix.
    std::vector<double> uniform(n, 1.0 / static_cast<double>(n));
    const auto seed = worst_case_adversary(
        make_policy(break_even, grid, uniform), stats, adv_opt);
    pool.push_back(seed.atoms);
  }

  MinimaxResult result;
  std::vector<double> masses(n, 1.0 / static_cast<double>(n));
  double designer_value = 0.0;

  // One workspace reused across iterations: the pool grows by one
  // distribution per iteration, so the capacity is max_iterations pool rows
  // plus the seed and the normalization row.
  lp::Workspace workspace(
      static_cast<std::size_t>(std::max(0, options.max_iterations)) + 2,
      n + 1);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Designer LP: variables P_1..P_n, t; minimize t subject to
    //   sum_i E_{q_hat}[cost(x_i, y)] P_i - t <= 0 for each pooled q_hat,
    //   sum_i P_i = 1.
    const std::size_t rows = pool.size() + 1;
    lp::ProblemStage stage = workspace.stage(rows, n + 1);
    stage.objective[n] = 1.0;
    for (std::size_t r = 0; r < pool.size(); ++r) {
      double* row = stage.coeffs.data() + r * (n + 1);
      for (std::size_t i = 0; i < n; ++i) {
        double coeff = 0.0;
        for (const auto& atom : pool[r]) {
          coeff += atom.probability *
                   core::online_cost(grid[i], atom.stop_length, break_even);
        }
        row[i] = coeff;
      }
      row[n] = -1.0;
      stage.rhs[r] = 0.0;
    }
    double* ones = stage.coeffs.data() + pool.size() * (n + 1);
    for (std::size_t i = 0; i < n; ++i) ones[i] = 1.0;
    stage.senses[pool.size()] = lp::Sense::kEqual;
    stage.rhs[pool.size()] = 1.0;

    const lp::SolutionView sol = lp::solve(workspace, stage.view());
    if (!sol.optimal())
      throw std::runtime_error("solve_minimax: designer LP " +
                               lp::to_string(sol.status));
    masses.assign(sol.x.begin(), sol.x.begin() + static_cast<long>(n));
    designer_value = sol.x[n];

    // Adversary oracle against the current designer mix.
    const auto policy = make_policy(break_even, grid, masses);
    const auto response = worst_case_adversary(policy, stats, adv_opt);
    result.value = response.expected_cost;

    if (response.expected_cost <=
        designer_value * (1.0 + options.tolerance) + 1e-12) {
      result.converged = true;
      break;
    }
    pool.push_back(response.atoms);
  }

  const double offline = stats.expected_offline_cost(break_even);
  result.cr = offline > 0.0 ? result.value / offline : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (masses[i] > 1e-6) {
      result.strategy.push_back({grid[i], masses[i]});
    }
  }
  return result;
}

}  // namespace idlered::analysis
