// Alternative competitive metrics.
//
// The paper evaluates with the expected competitive ratio CR (eq. 5,
// ratio-of-expectations); the related MOM-Rand work of Khanafer et al.
// optimizes CR' (eq. 8, expectation-of-ratios). The two orderings can
// disagree; this module computes CR' for traces and distributions so the
// ablation benches can compare both, and provides the published MOM-Rand
// CR' bound for validation.
#pragma once

#include <vector>

#include "core/policy.h"
#include "dist/distribution.h"

namespace idlered::analysis {

/// Trace-level CR' (eq. 8): mean over stops of
/// E_x[cost_online(x, y_i)] / cost_offline(y_i). Stops of length 0 are
/// skipped (the ratio is undefined there, matching the 0+ lower limits of
/// the paper's integrals). Throws if no usable stop exists.
double expected_ratio_cr(const core::Policy& policy,
                         const std::vector<double>& stops);

/// Distribution-level CR' by adaptive quadrature over the short range plus
/// the analytic long-stop lump (every policy's expected cost is constant in
/// y for y >= B, and offline cost is B there).
double expected_ratio_cr(const core::Policy& policy,
                         const dist::StopLengthDistribution& law,
                         double quadrature_tol = 1e-8);

/// Khanafer et al.'s bound for the revised MOM-Rand density:
/// CR' <= 1 + mu / (2 B (e - 2)), valid when mu <= 2(e-2)/(e-1) B.
double mom_rand_cr_prime_bound(double mu, double break_even);

}  // namespace idlered::analysis
