// Fleet-level strategy comparison — the machinery behind Figure 4 and the
// Figure 5/6 sweeps.
//
// For every vehicle, each strategy is instantiated with whatever side
// information it is entitled to (MOM-Rand sees the vehicle's first moment,
// COA sees the vehicle's (mu_B_minus, q_B_plus); NEV/TOI/DET/N-Rand need
// nothing), evaluated in expected mode over the vehicle's stops, and the
// per-vehicle CRs are aggregated into worst case (max over vehicles),
// average, and best-strategy counts.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/policy.h"
#include "sim/evaluator.h"
#include "sim/trace.h"

namespace idlered::sim {

/// Builds a policy for one vehicle given its trace and the break-even B.
///
/// Deprecated: the bare std::function carries no declaration of what side
/// information the strategy reads, so the engine cannot validate or cache
/// for it. New code should implement engine::StrategyBuilder (or call
/// engine::make_strategy); legacy specs keep working through
/// engine::wrap_legacy.
using PolicyFactory =
    std::function<core::PolicyPtr(const StopTrace&, double break_even)>;

struct StrategySpec {
  std::string name;
  PolicyFactory factory;
};

/// The paper's Figure-4 lineup: TOI, NEV, DET, N-Rand, MOM-Rand, COA
/// (COA last, as "Proposed").
///
/// Deprecated: this lineup has migrated to engine::standard_strategy_set(),
/// which returns StrategyBuilders with declared side-info needs; this
/// legacy form remains for the serial reference path only.
std::vector<StrategySpec> standard_strategy_set();

struct VehicleResult {
  std::string vehicle_id;
  std::string area;
  std::vector<double> cr;  ///< one CR per strategy, strategy order preserved
};

struct FleetComparison {
  std::vector<std::string> strategy_names;
  std::vector<VehicleResult> vehicles;

  std::size_t num_strategies() const { return strategy_names.size(); }

  /// Mean CR per strategy over all vehicles.
  std::vector<double> mean_cr() const;

  /// Worst (max) CR per strategy over all vehicles.
  std::vector<double> worst_cr() const;

  /// Number of vehicles on which each strategy achieves the (possibly tied)
  /// minimum CR, within `tie_tol` of the vehicle's best.
  std::vector<std::size_t> best_counts(double tie_tol = 1e-9) const;

  /// Restrict to one area (for the per-area panels of Figure 4).
  FleetComparison filter_area(const std::string& area) const;
};

/// Evaluate every strategy on every vehicle (expected mode). Vehicles with
/// no stops are skipped.
///
/// This is the *serial reference path*: single-threaded, trace-order
/// arithmetic, kept as the ground truth the parallel engine is tested
/// against. Anything performance-sensitive should go through
/// engine::EvalSession (or engine::compare_strategies_parallel), which
/// returns the same FleetComparison shape.
FleetComparison compare_strategies(const Fleet& fleet, double break_even,
                                   const std::vector<StrategySpec>& specs);

}  // namespace idlered::sim
