#include "sim/batch_kernels.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/policies.h"
#include "core/proposed.h"
#include "costmodel/multislope_policy.h"
#include "util/math.h"

// Vectorization hint for the lane loops: the bodies are dependence-free by
// construction (kLanes independent accumulator chains), so the compiler
// may use whatever vector width it has without reassociating any sum.
#if defined(__clang__)
#define IDLERED_SIMD_LOOP \
  _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define IDLERED_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define IDLERED_SIMD_LOOP
#endif

namespace idlered::sim::batch {

namespace {

// The one reduction-order implementation every kernel shares: lane l of
// the accumulator array carries the elements with index ≡ l (mod kLanes);
// the pairwise combine at the end is the documented fixed order. `f` must
// be a pure per-element cost function.
template <typename F>
double lane_reduce(std::span<const double> y, F f) {
  double acc[kLanes] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const std::size_t n = y.size();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    IDLERED_SIMD_LOOP
    for (std::size_t l = 0; l < kLanes; ++l) acc[l] += f(y[i + l]);
  }
  for (; i < n; ++i) acc[i % kLanes] += f(y[i]);
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

}  // namespace

void validate_stops(std::span<const double> y, const char* where) {
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (!std::isfinite(y[i]) || y[i] < 0.0)
      throw std::invalid_argument(
          std::string(where) + ": stop length at index " + std::to_string(i) +
          " must be finite and >= 0");
  }
}

double offline_sum(std::span<const double> y, double break_even) {
  const double b = break_even;
  return lane_reduce(y, [b](double v) { return v < b ? v : b; });
}

double threshold_online_sum(std::span<const double> y, double threshold,
                            double break_even) {
  const double x = threshold;
  const double restart = x + break_even;  // +inf for NEV: never selected
  return lane_reduce(y, [x, restart](double v) { return v < x ? v : restart; });
}

double nrand_online_sum(std::span<const double> y, double break_even) {
  // Equalizer: per-element cost is exactly e/(e-1) * offline_cost(y, B),
  // the same expression NRandPolicy::expected_cost evaluates.
  const double b = break_even;
  return lane_reduce(y, [b](double v) {
    return util::kEOverEMinus1 * (v < b ? v : b);
  });
}

double momrand_online_sum(std::span<const double> y, double break_even) {
  // Mirrors MomRandPolicy::expected_cost term-for-term so each element is
  // bit-identical to the scalar path; only the reduction order differs.
  const double b = break_even;
  const double tail = b * (util::kE - 1.5) / (util::kE - 2.0);
  const double denom = b * (util::kE - 2.0);
  return lane_reduce(y, [b, tail, denom](double v) {
    return v <= b ? v * (0.5 * v - 2.0 * b + b * util::kE) / denom : tail;
  });
}

double generic_online_sum(const core::Policy& policy,
                          std::span<const double> y) {
  return lane_reduce(y, [&policy](double v) { return policy.expected_cost(v); });
}

double multislope_envelope_online_sum(const costmodel::SlopeProfile& profile,
                                      std::span<const double> y) {
  return lane_reduce(y, [&profile](double v) {
    return costmodel::envelope_follower_cost(profile, v);
  });
}

double multislope_rand_online_sum(const costmodel::SlopeProfile& profile,
                                  std::span<const double> y) {
  return lane_reduce(y, [&profile](double v) {
    return costmodel::randomized_envelope_cost(profile, v);
  });
}

double multislope_nev_online_sum(const costmodel::SlopeProfile& profile,
                                 std::span<const double> y) {
  const double rate = profile.base_rate();
  return lane_reduce(y, [rate](double v) { return rate * v; });
}

bool expected_online_sum(const core::Policy& policy,
                         std::span<const double> y, double* online) {
  const double b = policy.break_even();
  if (const auto* t = dynamic_cast<const core::ThresholdPolicy*>(&policy)) {
    *online = threshold_online_sum(y, t->threshold(), b);
    return true;
  }
  if (dynamic_cast<const core::NRandPolicy*>(&policy) != nullptr) {
    *online = nrand_online_sum(y, b);
    return true;
  }
  if (const auto* m = dynamic_cast<const core::MomRandPolicy*>(&policy)) {
    *online = m->revised() ? momrand_online_sum(y, b) : nrand_online_sum(y, b);
    return true;
  }
  if (const auto* p = dynamic_cast<const core::ProposedPolicy*>(&policy)) {
    // COA behaves as its selected vertex; route to that vertex's kernel
    // (the delegate policy's expected_cost is what the scalar path calls).
    switch (p->choice().strategy) {
      case core::Strategy::kToi:
        *online = threshold_online_sum(y, 0.0, b);
        return true;
      case core::Strategy::kDet:
        *online = threshold_online_sum(y, b, b);
        return true;
      case core::Strategy::kBDet:
        *online = threshold_online_sum(y, p->choice().b, b);
        return true;
      case core::Strategy::kNRand:
        *online = nrand_online_sum(y, b);
        return true;
    }
  }
  if (const auto* e =
          dynamic_cast<const costmodel::MultislopeEnvelopePolicy*>(&policy)) {
    *online = multislope_envelope_online_sum(e->profile(), y);
    return true;
  }
  if (const auto* r =
          dynamic_cast<const costmodel::MultislopeRandPolicy*>(&policy)) {
    *online = multislope_rand_online_sum(r->profile(), y);
    return true;
  }
  if (const auto* nv =
          dynamic_cast<const costmodel::MultislopeNevPolicy*>(&policy)) {
    *online = multislope_nev_online_sum(nv->profile(), y);
    return true;
  }
  // MultislopeCoaPolicy: intentionally unhandled — generic fallback.
  return false;
}

double sampled_online_sum(const core::Policy& policy,
                          std::span<const double> y, double break_even,
                          util::Rng& rng) {
  // Threshold draws are inherently sequential (one RNG stream), so the
  // kernel runs in blocks: fill a threshold buffer serially — the exact
  // draw order of the scalar evaluator — then accumulate the costs in a
  // vector loop. kBlock is a multiple of kLanes so the lane assignment
  // i mod kLanes survives the blocking.
  constexpr std::size_t kBlock = 1024;
  static_assert(kBlock % kLanes == 0);
  double xs[kBlock];
  double acc[kLanes] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  const double b = break_even;
  const std::size_t n = y.size();
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t m = n - base < kBlock ? n - base : kBlock;
    for (std::size_t j = 0; j < m; ++j)
      xs[j] = policy.sample_threshold(rng);
    std::size_t j = 0;
    for (; j + kLanes <= m; j += kLanes) {
      IDLERED_SIMD_LOOP
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double v = y[base + j + l];
        const double x = xs[j + l];
        acc[l] += v < x ? v : x + b;
      }
    }
    for (; j < m; ++j) {
      const double v = y[base + j];
      const double x = xs[j];
      acc[j % kLanes] += v < x ? v : x + b;
    }
  }
  return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
         ((acc[4] + acc[5]) + (acc[6] + acc[7]));
}

}  // namespace idlered::sim::batch
