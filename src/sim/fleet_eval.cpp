#include "sim/fleet_eval.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/policies.h"
#include "core/proposed.h"

namespace idlered::sim {

std::vector<StrategySpec> standard_strategy_set() {
  std::vector<StrategySpec> specs;
  specs.push_back({"TOI", [](const StopTrace&, double b) {
                     return core::make_toi(b);
                   }});
  specs.push_back({"NEV", [](const StopTrace&, double b) {
                     return core::make_nev(b);
                   }});
  specs.push_back({"DET", [](const StopTrace&, double b) {
                     return core::make_det(b);
                   }});
  specs.push_back({"N-Rand", [](const StopTrace&, double b) {
                     return core::make_n_rand(b);
                   }});
  specs.push_back({"MOM-Rand", [](const StopTrace& t, double b) {
                     return core::make_mom_rand(b, t.mean_stop_length());
                   }});
  specs.push_back({"COA", [](const StopTrace& t, double b) {
                     return std::make_shared<core::ProposedPolicy>(b, t.stops);
                   }});
  return specs;
}

std::vector<double> FleetComparison::mean_cr() const {
  std::vector<double> out(num_strategies(), 0.0);
  if (vehicles.empty()) return out;
  for (const VehicleResult& v : vehicles) {
    for (std::size_t s = 0; s < out.size(); ++s) out[s] += v.cr[s];
  }
  for (double& x : out) x /= static_cast<double>(vehicles.size());
  return out;
}

std::vector<double> FleetComparison::worst_cr() const {
  std::vector<double> out(num_strategies(),
                          -std::numeric_limits<double>::infinity());
  for (const VehicleResult& v : vehicles) {
    for (std::size_t s = 0; s < out.size(); ++s)
      out[s] = std::max(out[s], v.cr[s]);
  }
  return out;
}

std::vector<std::size_t> FleetComparison::best_counts(double tie_tol) const {
  std::vector<std::size_t> out(num_strategies(), 0);
  for (const VehicleResult& v : vehicles) {
    const double best = *std::min_element(v.cr.begin(), v.cr.end());
    for (std::size_t s = 0; s < out.size(); ++s) {
      if (v.cr[s] <= best + tie_tol) ++out[s];
    }
  }
  return out;
}

FleetComparison FleetComparison::filter_area(const std::string& area) const {
  FleetComparison out;
  out.strategy_names = strategy_names;
  for (const VehicleResult& v : vehicles) {
    if (v.area == area) out.vehicles.push_back(v);
  }
  return out;
}

FleetComparison compare_strategies(const Fleet& fleet, double break_even,
                                   const std::vector<StrategySpec>& specs) {
  if (specs.empty())
    throw std::invalid_argument("compare_strategies: no strategies given");
  FleetComparison result;
  result.strategy_names.reserve(specs.size());
  for (const StrategySpec& s : specs) result.strategy_names.push_back(s.name);

  for (const StopTrace& trace : fleet) {
    if (trace.stops.empty()) continue;
    VehicleResult vr;
    vr.vehicle_id = trace.vehicle_id;
    vr.area = trace.area;
    vr.cr.reserve(specs.size());
    for (const StrategySpec& spec : specs) {
      const core::PolicyPtr policy = spec.factory(trace, break_even);
      vr.cr.push_back(evaluate(*policy, trace.stops).cr());
    }
    result.vehicles.push_back(std::move(vr));
  }
  return result;
}

}  // namespace idlered::sim
