#include "sim/controller.h"

#include <cmath>

#include "core/costs.h"
#include "core/policies.h"
#include "core/proposed.h"

namespace idlered::sim {

AdaptiveController::AdaptiveController(const Config& config)
    : config_(config),
      estimator_(config.break_even, config.decay_lambda),
      policy_(core::make_n_rand(config.break_even)) {}

double AdaptiveController::process_stop_expected(double stop_length) {
  const double cost = policy_->expected_cost(stop_length);
  totals_.online += cost;
  totals_.offline += core::offline_cost(stop_length, config_.break_even);
  ++totals_.num_stops;
  observe(stop_length);
  return cost;
}

double AdaptiveController::process_stop_sampled(double stop_length,
                                                util::Rng& rng) {
  const double x = policy_->sample_threshold(rng);
  const double cost = std::isinf(x)
                          ? stop_length
                          : core::online_cost(x, stop_length,
                                              config_.break_even);
  totals_.online += cost;
  totals_.offline += core::offline_cost(stop_length, config_.break_even);
  ++totals_.num_stops;
  observe(stop_length);
  return cost;
}

void AdaptiveController::observe(double stop_length) {
  estimator_.observe(stop_length);
  ++stops_seen_;
  if (stops_seen_ >= config_.warmup_stops) {
    policy_ = std::make_shared<core::ProposedPolicy>(config_.break_even,
                                                     estimator_.stats());
  }
}

}  // namespace idlered::sim
