#include "sim/controller.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/costs.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "costmodel/multislope_policy.h"
#include "obs/obs.h"

namespace idlered::sim {

namespace {

// Fault events record what the degraded sensing/actuation path actually
// saw — kind, drop, cranking retries, delay — keyed by the stop ordinal so
// a timeline can line them up with rung transitions.
[[maybe_unused]] void trace_fault(
    [[maybe_unused]] std::size_t stop,
    [[maybe_unused]] const robust::SensorReading& reading) {
  IDLERED_OBS_ONLY({
    if (!obs::recorder().enabled()) return;
    util::JsonValue ev = util::JsonValue::object();
    ev.set("type", "fault");
    ev.set("stop", stop);
    ev.set("kind", robust::to_string(reading.fault));
    ev.set("dropped", reading.dropped);
    ev.set("restart_attempts", reading.restart_attempts);
    ev.set("delay_s", reading.actuation_delay_s);
    obs::recorder().emit(std::move(ev));
  })
}

// Per-stop controller decision: which rung/policy priced this stop, the
// threshold it drew, and the realized cost against the offline optimum.
[[maybe_unused]] void trace_stop_decision(
    [[maybe_unused]] std::size_t stop,
    [[maybe_unused]] robust::ControllerMode mode,
    [[maybe_unused]] const core::Policy& policy,
    [[maybe_unused]] double threshold,
    [[maybe_unused]] double cost,
    [[maybe_unused]] double offline,
    [[maybe_unused]] double soc) {
  IDLERED_OBS_ONLY({
    if (!obs::recorder().enabled()) return;
    util::JsonValue ev = util::JsonValue::object();
    ev.set("type", "decision");
    ev.set("stop", stop);
    ev.set("mode", robust::to_string(mode));
    ev.set("policy", policy.name());
    ev.set("threshold", threshold);
    ev.set("cost", cost);
    ev.set("offline", offline);
    ev.set("soc", soc);
    obs::recorder().emit(std::move(ev));
  })
}

// Rung transitions are the fallback ladder in action; the event carries
// the health/SOC context that drove the move.
[[maybe_unused]] void trace_rung([[maybe_unused]] std::size_t stop,
                                 [[maybe_unused]] robust::ControllerMode from,
                                 [[maybe_unused]] robust::ControllerMode to,
                                 [[maybe_unused]] robust::HealthState health,
                                 [[maybe_unused]] double soc) {
  IDLERED_OBS_ONLY({
    if (!obs::recorder().enabled()) return;
    util::JsonValue ev = util::JsonValue::object();
    ev.set("type", "rung");
    ev.set("stop", stop);
    ev.set("from", robust::to_string(from));
    ev.set("to", robust::to_string(to));
    ev.set("health", robust::to_string(health));
    ev.set("soc", soc);
    obs::recorder().emit(std::move(ev));
  })
}

// Legacy mode keeps the original contract: every finite nonnegative stop
// length is learned from, however implausible. The guard then only exists
// to give the controller a never-throwing observation path.
robust::GuardConfig effective_guard(const AdaptiveController::Config& config) {
  if (config.robust.enabled) return config.robust.guard;
  robust::GuardConfig open;
  open.max_stop_s = std::numeric_limits<double>::infinity();
  open.stuck_run_limit = 0;
  return open;
}

}  // namespace

AdaptiveController::AdaptiveController(const Config& config)
    : config_(config),
      estimator_(config.break_even, config.decay_lambda,
                 effective_guard(config)),
      health_(config.robust.health),
      policy_(core::make_n_rand(config.break_even)) {
  core::require_valid_break_even(config.break_even);
  if (config.warmup_stops < 1)
    throw std::invalid_argument(
        "AdaptiveController: warmup_stops must be >= 1 (the fallback policy "
        "must price at least the first stop)");
  if (!(config.decay_lambda > 0.0) || config.decay_lambda > 1.0)
    throw std::invalid_argument(
        "AdaptiveController: decay_lambda must be in (0, 1]");
  config_.robust.validate();
  if (config_.profile) {
    if (config_.profile->deepest_switch_cost() != config_.break_even)
      throw std::invalid_argument(
          "AdaptiveController: profile's deepest switch cost must equal "
          "break_even (the offline accounting stays min(y, B))");
    transition_estimators_.reserve(config_.profile->num_transitions());
    for (double t : config_.profile->breakpoints())
      transition_estimators_.emplace_back(t, config_.decay_lambda);
    // The statistics-free warm-up rung of the multislope family; equal to
    // N-Rand bit-for-bit on the classic k = 2 profile.
    policy_ = costmodel::make_ms_rand(*config_.profile);
  }
  if (config_.battery) {
    // Reuse SocConstrainedController's parameter validation.
    SocConstrainedController(core::make_nev(config.break_even),
                             *config_.battery);
    soc_ = config_.battery->initial_soc;
    soc_low_ = soc_ < config_.battery->min_soc;
  }
}

double AdaptiveController::process_stop_expected(double stop_length) {
  if (!std::isfinite(stop_length) || stop_length < 0.0) {
    if (!config_.robust.enabled)
      throw std::invalid_argument(
          "AdaptiveController: stop length must be finite and >= 0");
    observe_reading(stop_length);  // absorbed by the guard, no cost known
    return 0.0;
  }
  const double cost = policy_->expected_cost(stop_length);
  totals_.online += cost;
  totals_.offline += core::offline_cost(stop_length, config_.break_even);
  ++totals_.num_stops;
  IDLERED_COUNT("sim.controller.stops");
  observe_reading(stop_length);
  return cost;
}

double AdaptiveController::process_stop_sampled(double stop_length,
                                                util::Rng& rng) {
  if (config_.robust.enabled &&
      (!std::isfinite(stop_length) || stop_length < 0.0)) {
    observe_reading(stop_length);  // absorbed by the guard, no cost known
    return 0.0;
  }
  robust::SensorReading clean;
  clean.value = stop_length;
  return process_stop_faulted(stop_length, clean, rng);
}

double AdaptiveController::process_stop_faulted(
    double true_length, const robust::SensorReading& reading, util::Rng& rng) {
  // The *reading* may be arbitrary garbage, but true_length comes from the
  // harness, which knows the truth; garbage there is a harness bug, never a
  // sensor fault, so it throws even in robust mode.
  if (!std::isfinite(true_length) || true_length < 0.0)
    throw std::invalid_argument(
        "AdaptiveController: stop length must be finite and >= 0");

  const double x = policy_->sample_threshold(rng);
  double cost;
  if (std::isinf(x)) {
    cost = true_length;  // NEV: the engine never shuts off
  } else {
    // A delayed actuator keeps idling past the commanded threshold; the
    // stop may end before the shut-off ever happens.
    const double x_eff = x + reading.actuation_delay_s;
    if (true_length < x_eff) {
      cost = true_length;
    } else {
      cost = x_eff + reading.restart_attempts * config_.break_even;
      account_engine_off(true_length - x_eff, reading.restart_attempts);
    }
  }
  const double offline = core::offline_cost(true_length, config_.break_even);
  totals_.online += cost;
  totals_.offline += offline;
  ++totals_.num_stops;
  IDLERED_COUNT("sim.controller.stops");

  if (reading.dropped || reading.fault != robust::FaultKind::kNone) {
    IDLERED_COUNT("sim.controller.faults");
    trace_fault(totals_.num_stops, reading);
  }
  // mode_/policy_ are still the pair that priced this stop: the estimator
  // refresh only happens below, after the reading is folded in.
  trace_stop_decision(totals_.num_stops, mode_, *policy_, x, cost, offline,
                      soc_);

  if (reading.dropped) {
    if (config_.robust.enabled) {
      estimator_.note_drop();
      health_.record_observation(true);
    }
    ++stops_seen_;
    refresh_policy();
  } else {
    observe_reading(reading.value);
  }
  return cost;
}

void AdaptiveController::observe_reading(double reading) {
  if (config_.robust.enabled) {
    const robust::Verdict v = estimator_.observe(reading);
    health_.record_observation(v != robust::Verdict::kAccept);
    if (v == robust::Verdict::kAccept) observe_transitions(reading);
  } else {
    if (!std::isfinite(reading) || reading < 0.0)
      throw std::invalid_argument(
          "AdaptiveController: stop length must be finite and >= 0");
    estimator_.observe(reading);
    observe_transitions(reading);
  }
  ++stops_seen_;
  refresh_policy();
}

void AdaptiveController::observe_transitions(double accepted_reading) {
  // Mirrors the guarded stream exactly: callers only pass readings the
  // main estimator accepted, so each per-breakpoint estimate is over the
  // same sample, just thresholded at its own t_i.
  for (core::DecayingStatsEstimator& est : transition_estimators_)
    est.observe(accepted_reading);
}

std::vector<dist::ShortStopStats> AdaptiveController::transition_stats()
    const {
  std::vector<dist::ShortStopStats> stats;
  stats.reserve(transition_estimators_.size());
  for (const core::DecayingStatsEstimator& est : transition_estimators_)
    stats.push_back(est.stats());
  return stats;
}

void AdaptiveController::note_drive(double drive_s) {
  if (!config_.battery) return;
  if (!(drive_s >= 0.0) || !std::isfinite(drive_s))
    throw std::invalid_argument(
        "AdaptiveController: drive time must be finite and >= 0");
  const double gained_wh = config_.battery->recharge_w * drive_s / 3600.0;
  soc_ = std::min(1.0, soc_ + gained_wh / config_.battery->capacity_wh);
  if (soc_low_ &&
      soc_ >= config_.battery->min_soc + config_.robust.soc_resume_margin)
    soc_low_ = false;
  refresh_policy();
}

void AdaptiveController::account_engine_off(double off_s,
                                            int restart_attempts) {
  if (config_.robust.enabled) health_.record_restart(restart_attempts <= 1);
  if (!config_.battery) return;
  const double drained_wh =
      config_.battery->accessory_draw_w * off_s / 3600.0 +
      restart_attempts * config_.battery->restart_pulse_wh;
  soc_ = std::max(0.0, soc_ - drained_wh / config_.battery->capacity_wh);
  if (soc_ < config_.battery->min_soc) soc_low_ = true;
}

void AdaptiveController::refresh_policy() {
  const robust::ControllerMode before = mode_;
  if (!config_.robust.enabled) {
    // Original behaviour: N-Rand during warm-up, COA from then on (the
    // multislope pair MS-Rand / MS-COA when a profile is configured).
    if (stops_seen_ >= config_.warmup_stops && estimator_.ready()) {
      if (config_.profile) {
        policy_ = std::make_shared<costmodel::MultislopeCoaPolicy>(
            *config_.profile, transition_stats());
      } else {
        policy_ = std::make_shared<core::ProposedPolicy>(config_.break_even,
                                                         estimator_.stats());
      }
      mode_ = robust::ControllerMode::kProposed;
    }
  } else {
    robust::LadderInputs in;
    in.health = health_.state();
    in.actuator_suspect = health_.actuator_suspect();
    in.soc_low = soc_low_;
    in.warmed_up =
        estimator_.ready() && estimator_.accepted() >= config_.warmup_stops;
    robust::ControllerMode mode = robust::select_mode(in);

    if (mode == robust::ControllerMode::kProposed) {
      // Only trust the b-DET vertex when eq. (36) holds with a safety
      // margin; near the boundary, estimation error flips the LP vertex and
      // b-DET's guarantee evaporates. DET keeps 2-competitiveness per stop.
      // For a k-slope profile the check runs per transition at that
      // transition's own (stats_i, t_i): one untrusted b-DET component
      // demotes the whole rung, exactly as one untrusted vertex does at
      // k = 2.
      if (config_.profile) {
        const std::vector<dist::ShortStopStats> stats = transition_stats();
        auto coa = std::make_shared<costmodel::MultislopeCoaPolicy>(
            *config_.profile, stats);
        bool trusted = true;
        for (std::size_t i = 0; i < stats.size(); ++i) {
          if (coa->choices()[i].strategy == core::Strategy::kBDet &&
              !robust::trust_b_det(stats[i], config_.profile->breakpoint(i),
                                   config_.robust.health.b_det_margin)) {
            trusted = false;
            break;
          }
        }
        if (!trusted) {
          mode = robust::ControllerMode::kDet;
        } else {
          policy_ = std::move(coa);
        }
      } else {
        const auto stats = estimator_.stats();
        auto proposed =
            std::make_shared<core::ProposedPolicy>(config_.break_even, stats);
        if (proposed->choice().strategy == core::Strategy::kBDet &&
            !robust::trust_b_det(stats, config_.break_even,
                                 config_.robust.health.b_det_margin)) {
          mode = robust::ControllerMode::kDet;
        } else {
          policy_ = std::move(proposed);
        }
      }
    }
    switch (mode) {
      case robust::ControllerMode::kProposed:
        break;  // set above
      case robust::ControllerMode::kDet:
      case robust::ControllerMode::kNRand:
      case robust::ControllerMode::kNev:
        if (mode_ != mode) {
          policy_ = config_.profile
                        ? robust::multislope_policy_for_mode(
                              mode, *config_.profile, {})
                        : (mode == robust::ControllerMode::kDet
                               ? core::make_det(config_.break_even)
                           : mode == robust::ControllerMode::kNRand
                               ? core::make_n_rand(config_.break_even)
                               : core::make_nev(config_.break_even));
        }
        break;
    }
    mode_ = mode;
  }
  if (mode_ != before) {
    IDLERED_COUNT("sim.controller.rung_transitions");
    trace_rung(stops_seen_, before, mode_, health_.state(), soc_);
  }
}

}  // namespace idlered::sim
