#include "sim/stop_batch.h"

#include <cmath>
#include <stdexcept>

#include "sim/batch_kernels.h"

namespace idlered::sim {

StopBatch::StopBatch(std::span<const double> stops)
    : y_(stops.begin(), stops.end()) {
  batch::validate_stops(y_, "StopBatch");
}

double StopBatch::offline_total(double break_even) const {
  if (!(break_even > 0.0) || !std::isfinite(break_even))
    throw std::invalid_argument(
        "StopBatch::offline_total: break_even must be finite and > 0");
  {
    util::LockGuard lock(memo_m_);
    const auto it = memo_.find(break_even);
    if (it != memo_.end()) return it->second;
  }
  const double total = batch::offline_sum(y_, break_even);
  util::LockGuard lock(memo_m_);
  memo_.emplace(break_even, total);
  return total;
}

}  // namespace idlered::sim
