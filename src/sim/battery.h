// State-of-charge constrained stop-start control.
//
// Appendix C of the paper prices battery *wear*; a deployed SSS also faces
// a battery *energy* constraint: during engine-off stops the accessories
// (HVAC, electronics) draw from the battery, and below a state-of-charge
// floor the controller must keep the engine running regardless of what the
// ski-rental policy says. This module models that interaction: an energy
// bucket charged while driving and drained during engine-off phases, a
// wrapped base policy, and per-stop override accounting — quantifying how
// much of the theoretical saving survives the electrical constraint.
#pragma once

#include "core/policy.h"
#include "sim/evaluator.h"

namespace idlered::sim {

struct BatteryModel {
  double capacity_wh = 600.0;      ///< usable energy window of the AGM pack
  double accessory_draw_w = 400.0; ///< engine-off house load (HVAC on)
  double recharge_w = 1200.0;      ///< alternator surplus while driving
  double restart_pulse_wh = 5.0;   ///< cranking energy per restart
  double min_soc = 0.30;           ///< engine-off forbidden below this
  double initial_soc = 0.80;
};

class SocConstrainedController {
 public:
  SocConstrainedController(core::PolicyPtr policy, const BatteryModel& battery);

  /// One stop followed by `drive_s` seconds of driving (recharge window).
  /// Decision logic per stop:
  ///   - if SOC < min_soc: forced idle (engine stays on; cost = y);
  ///   - else: draw a threshold x from the base policy; if the stop reaches
  ///     x, shut off, drain accessories for (y - x), pay the restart.
  /// Shut-off is also abandoned early (engine restarts) if the battery
  /// floor is hit mid-stop, paying the idling remainder.
  /// Returns the cost charged for this stop.
  double process_stop(double stop_length, double drive_s, util::Rng& rng);

  double soc() const { return soc_; }
  const CostTotals& totals() const { return totals_; }
  std::size_t forced_idle_stops() const { return forced_idle_stops_; }
  std::size_t aborted_shutoffs() const { return aborted_shutoffs_; }
  std::size_t stops_seen() const { return stops_seen_; }

  const core::Policy& policy() const { return *policy_; }
  const BatteryModel& battery() const { return battery_; }

 private:
  void recharge(double drive_s);

  core::PolicyPtr policy_;
  BatteryModel battery_;
  double soc_;
  CostTotals totals_;
  std::size_t forced_idle_stops_ = 0;
  std::size_t aborted_shutoffs_ = 0;
  std::size_t stops_seen_ = 0;
};

}  // namespace idlered::sim
