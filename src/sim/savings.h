// Real-unit accounting: converts the dimensionless idle-second-equivalent
// costs the algorithms work in back into fuel, money, and CO2, and
// projects per-vehicle savings to fleets and years — the bridge from the
// competitive-ratio results to the paper's motivating "6 billion gallons
// each year" framing.
#pragma once

#include "costmodel/break_even.h"
#include "sim/evaluator.h"

namespace idlered::sim {

/// One cost expressed in physical units.
struct RealCost {
  double idle_second_equivalents = 0.0;
  double fuel_liters = 0.0;
  double usd = 0.0;
  double co2_kg = 0.0;
};

/// Kilograms of CO2 per litre of gasoline burned (combustion stoichiometry).
inline constexpr double kCo2KgPerLiterGasoline = 2.31;

/// Litres per US gallon.
inline constexpr double kLitersPerGallon = 3.785;

/// Convert idle-second equivalents into physical units for a vehicle.
RealCost to_real_cost(double idle_second_equivalents,
                      const costmodel::VehicleConfig& vehicle);

/// Savings of `policy` relative to `baseline` on the same stop sequence,
/// in physical units. Negative values mean the policy cost *more*.
RealCost savings(const CostTotals& policy, const CostTotals& baseline,
                 const costmodel::VehicleConfig& vehicle);

/// Scale a per-sample cost to a yearly, fleet-level figure:
/// the sample covered `sample_days` days of one vehicle; the projection
/// covers `fleet_size` vehicles for 365 days.
RealCost project_fleet_year(const RealCost& per_vehicle_sample,
                            double sample_days, double fleet_size);

}  // namespace idlered::sim
