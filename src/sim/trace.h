// Stop traces: the per-vehicle sequences of stop lengths that every
// trace-driven experiment consumes. Mirrors the structure of the NREL
// driving-data release the paper uses (per-vehicle, one week of stops,
// grouped by metropolitan area).
#pragma once

#include <string>
#include <vector>

namespace idlered::sim {

struct StopTrace {
  std::string vehicle_id;
  std::string area;                ///< "California", "Chicago", "Atlanta", ...
  std::vector<double> stops;       ///< stop lengths in seconds, all > 0

  std::size_t num_stops() const { return stops.size(); }
  double total_stop_time() const;
  double mean_stop_length() const;  ///< throws on an empty trace
};

using Fleet = std::vector<StopTrace>;

/// All stop lengths of a fleet flattened into one sample (Figure 3 input).
std::vector<double> pooled_stops(const Fleet& fleet);

/// CSV round-trip: columns vehicle_id, area, stop_s (one row per stop).
std::string fleet_to_csv(const Fleet& fleet);
Fleet fleet_from_csv(const std::string& csv_text);

/// File variants; throw std::runtime_error on I/O failure.
void write_fleet_csv(const Fleet& fleet, const std::string& path);
Fleet read_fleet_csv(const std::string& path);

}  // namespace idlered::sim
