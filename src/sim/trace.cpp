#include "sim/trace.h"

#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace idlered::sim {

double StopTrace::total_stop_time() const {
  return std::accumulate(stops.begin(), stops.end(), 0.0);
}

double StopTrace::mean_stop_length() const {
  if (stops.empty())
    throw std::logic_error("StopTrace::mean_stop_length: empty trace");
  return total_stop_time() / static_cast<double>(stops.size());
}

std::vector<double> pooled_stops(const Fleet& fleet) {
  std::vector<double> all;
  std::size_t total = 0;
  for (const StopTrace& t : fleet) total += t.stops.size();
  all.reserve(total);
  for (const StopTrace& t : fleet)
    all.insert(all.end(), t.stops.begin(), t.stops.end());
  return all;
}

std::string fleet_to_csv(const Fleet& fleet) {
  util::CsvWriter w;
  w.add_row(util::CsvRow{"vehicle_id", "area", "stop_s"});
  for (const StopTrace& t : fleet) {
    for (double y : t.stops) {
      std::ostringstream val;
      val.precision(17);
      val << y;
      w.add_row(util::CsvRow{t.vehicle_id, t.area, val.str()});
    }
  }
  return w.str();
}

Fleet fleet_from_csv(const std::string& csv_text) {
  const util::CsvDocument doc = util::parse_csv(csv_text, /*has_header=*/true);
  const int id_col = doc.column("vehicle_id");
  const int area_col = doc.column("area");
  const int stop_col = doc.column("stop_s");
  if (id_col < 0 || area_col < 0 || stop_col < 0)
    throw std::runtime_error(
        "fleet_from_csv: need vehicle_id, area, stop_s columns");

  Fleet fleet;
  for (const util::CsvRow& row : doc.rows) {
    const std::string& id = row.at(static_cast<std::size_t>(id_col));
    const std::string& area = row.at(static_cast<std::size_t>(area_col));
    const double stop = std::stod(row.at(static_cast<std::size_t>(stop_col)));
    if (fleet.empty() || fleet.back().vehicle_id != id ||
        fleet.back().area != area) {
      fleet.push_back(StopTrace{id, area, {}});
    }
    fleet.back().stops.push_back(stop);
  }
  return fleet;
}

void write_fleet_csv(const Fleet& fleet, const std::string& path) {
  // Serialize through fleet_to_csv to keep one serialization path.
  const std::string text = fleet_to_csv(fleet);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write fleet CSV: " + path);
  out << text;
  if (!out) throw std::runtime_error("short write to fleet CSV: " + path);
}

Fleet read_fleet_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open fleet CSV: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return fleet_from_csv(buf.str());
}

}  // namespace idlered::sim
