#include "sim/evaluator.h"

#include <cmath>
#include <limits>

#include "core/costs.h"

namespace idlered::sim {

double CostTotals::cr() const {
  if (num_stops == 0) return 1.0;
  if (offline <= 0.0) {
    return online <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return online / offline;
}

CostTotals evaluate_expected(const core::Policy& policy,
                             const std::vector<double>& stops) {
  CostTotals totals;
  const double b = policy.break_even();
  for (double y : stops) {
    totals.online += policy.expected_cost(y);
    totals.offline += core::offline_cost(y, b);
    ++totals.num_stops;
  }
  return totals;
}

CostTotals evaluate_sampled(const core::Policy& policy,
                            const std::vector<double>& stops,
                            util::Rng& rng) {
  CostTotals totals;
  const double b = policy.break_even();
  for (double y : stops) {
    const double x = policy.sample_threshold(rng);
    totals.online += std::isinf(x) ? y : core::online_cost(x, y, b);
    totals.offline += core::offline_cost(y, b);
    ++totals.num_stops;
  }
  return totals;
}

double offline_cost_total(const std::vector<double>& stops,
                          double break_even) {
  double total = 0.0;
  for (double y : stops) total += core::offline_cost(y, break_even);
  return total;
}

}  // namespace idlered::sim
