#include "sim/evaluator.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/costs.h"
#include "util/contracts.h"

namespace idlered::sim {

namespace {

// Hostile-input gate: a NaN/Inf stop length would silently poison every
// accumulated total downstream, so the evaluator rejects it up front
// (negative lengths already throw inside core::offline_cost).
void require_finite_stop(double y, const char* where) {
  if (!std::isfinite(y))
    throw std::invalid_argument(std::string(where) +
                                ": stop length must be finite");
}

}  // namespace

double CostTotals::cr() const {
  if (num_stops == 0) return 1.0;
  if (offline <= 0.0) {
    return online <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return online / offline;
}

CostTotals evaluate(const core::Policy& policy, std::span<const double> stops,
                    const EvalOptions& options) {
  IDLERED_EXPECTS(options.mode != EvalMode::kSampled ||
                      options.rng != nullptr,
                  "evaluate: sampled mode needs an rng");

  CostTotals totals;
  const double b = policy.break_even();
  if (options.mode == EvalMode::kExpected) {
    for (double y : stops) {
      require_finite_stop(y, "evaluate");
      totals.online += policy.expected_cost(y);
      totals.offline += core::offline_cost(y, b);
      ++totals.num_stops;
    }
  } else {
    util::Rng& rng = *options.rng;
    for (double y : stops) {
      require_finite_stop(y, "evaluate");
      const double x = policy.sample_threshold(rng);
      totals.online += std::isinf(x) ? y : core::online_cost(x, y, b);
      totals.offline += core::offline_cost(y, b);
      ++totals.num_stops;
    }
  }
  return totals;
}

CostTotals evaluate_expected(const core::Policy& policy,
                             const std::vector<double>& stops) {
  return evaluate(policy, stops);
}

CostTotals evaluate_sampled(const core::Policy& policy,
                            const std::vector<double>& stops,
                            util::Rng& rng) {
  return evaluate(policy, stops, {EvalMode::kSampled, &rng});
}

double offline_cost_total(const std::vector<double>& stops,
                          double break_even) {
  double total = 0.0;
  for (double y : stops) {
    require_finite_stop(y, "offline_cost_total");
    total += core::offline_cost(y, break_even);
  }
  return total;
}

}  // namespace idlered::sim
