#include "sim/evaluator.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/costs.h"
#include "obs/obs.h"
#include "sim/batch_kernels.h"
#include "util/contracts.h"

namespace idlered::sim {

namespace {

// Per-stop trace record for EvalOptions::trace_stops. `threshold` is the
// drawn threshold in sampled mode; NaN (emitted as null) in expected mode,
// where no draw happens.
void trace_stop_eval([[maybe_unused]] const core::Policy& policy,
                     [[maybe_unused]] std::size_t index,
                     [[maybe_unused]] double y,
                     [[maybe_unused]] double threshold,
                     [[maybe_unused]] double online,
                     [[maybe_unused]] double offline) {
  IDLERED_OBS_ONLY({
    util::JsonValue ev = util::JsonValue::object();
    ev.set("type", "stop_eval");
    ev.set("policy", policy.name());
    ev.set("index", index);
    ev.set("y", y);
    ev.set("threshold", threshold);
    ev.set("online", online);
    ev.set("offline", offline);
    obs::recorder().emit(std::move(ev));
  })
}

// Hostile-input gate: a NaN/Inf stop length would silently poison every
// accumulated total downstream, so the evaluator rejects it up front
// (negative lengths already throw inside core::offline_cost).
void require_finite_stop(double y, const char* where) {
  if (!std::isfinite(y))
    throw std::invalid_argument(std::string(where) +
                                ": stop length must be finite");
}

}  // namespace

namespace {

// Shared batch-kernel body: the span overload hands in a freshly computed
// offline total, the StopBatch overload a memoized one. Stops are already
// validated on both routes.
CostTotals evaluate_batch(const core::Policy& policy,
                          std::span<const double> y, double offline,
                          const EvalOptions& options) {
  IDLERED_SPAN("sim.evaluate.batch");
  CostTotals totals;
  totals.num_stops = y.size();
  totals.offline = offline;
  if (options.mode == EvalMode::kExpected) {
    if (!batch::expected_online_sum(policy, y, &totals.online)) {
      IDLERED_COUNT("sim.evaluate.batch_generic_fallback");
      totals.online = batch::generic_online_sum(policy, y);
    }
  } else {
    totals.online = batch::sampled_online_sum(policy, y,
                                              policy.break_even(),
                                              *options.rng);
  }
  return totals;
}

// Shared option contracts of every evaluate() overload.
void require_valid_options(const EvalOptions& options) {
  IDLERED_EXPECTS(options.mode != EvalMode::kSampled ||
                      options.rng != nullptr,
                  "evaluate: sampled mode needs an rng");
  IDLERED_EXPECTS(options.kernel != EvalKernel::kBatch ||
                      !options.trace_stops,
                  "evaluate: per-stop tracing requires the scalar kernel");
}

}  // namespace

double CostTotals::cr() const {
  if (num_stops == 0) return 1.0;
  if (offline <= 0.0) {
    return online <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return online / offline;
}

CostTotals evaluate(const core::Policy& policy, std::span<const double> stops,
                    const EvalOptions& options) {
  require_valid_options(options);

  // Two separate macro sites: the static handle inside IDLERED_COUNT binds
  // to one name forever, so a ternary name would mis-count.
  if (options.mode == EvalMode::kExpected) {
    IDLERED_COUNT("sim.evaluate.expected_calls");
  } else {
    IDLERED_COUNT("sim.evaluate.sampled_calls");
  }
  IDLERED_COUNT_ADD("sim.evaluate.stops", stops.size());
  IDLERED_LOG_HIST("sim.evaluate.stops_per_call",
                   static_cast<double>(stops.size()));

  if (options.kernel == EvalKernel::kBatch) {
    IDLERED_COUNT("sim.evaluate.batch_calls");
    batch::validate_stops(stops, "evaluate");
    return evaluate_batch(policy, stops,
                          batch::offline_sum(stops, policy.break_even()),
                          options);
  }

  const bool trace_stops = options.trace_stops && obs::enabled();

  CostTotals totals;
  const double b = policy.break_even();
  if (options.mode == EvalMode::kExpected) {
    for (double y : stops) {
      require_finite_stop(y, "evaluate");
      const double online = policy.expected_cost(y);
      const double offline = core::offline_cost(y, b);
      totals.online += online;
      totals.offline += offline;
      if (trace_stops)
        trace_stop_eval(policy, totals.num_stops, y,
                        std::numeric_limits<double>::quiet_NaN(), online,
                        offline);
      ++totals.num_stops;
    }
  } else {
    util::Rng& rng = *options.rng;
    for (double y : stops) {
      require_finite_stop(y, "evaluate");
      const double x = policy.sample_threshold(rng);
      const double online = std::isinf(x) ? y : core::online_cost(x, y, b);
      const double offline = core::offline_cost(y, b);
      totals.online += online;
      totals.offline += offline;
      if (trace_stops)
        trace_stop_eval(policy, totals.num_stops, y, x, online, offline);
      ++totals.num_stops;
    }
  }
  return totals;
}

CostTotals evaluate(const core::Policy& policy, const StopBatch& stops,
                    const EvalOptions& options) {
  IDLERED_EXPECTS(options.mode != EvalMode::kSampled ||
                      options.rng != nullptr,
                  "evaluate: sampled mode needs an rng");
  IDLERED_EXPECTS(!options.trace_stops,
                  "evaluate: per-stop tracing requires the scalar kernel");
  IDLERED_COUNT("sim.evaluate.batch_calls");
  IDLERED_COUNT_ADD("sim.evaluate.stops", stops.size());
  return evaluate_batch(policy, stops.lengths(),
                        stops.offline_total(policy.break_even()), options);
}

CostTotals evaluate_expected(const core::Policy& policy,
                             const std::vector<double>& stops) {
  return evaluate(policy, stops);
}

CostTotals evaluate_sampled(const core::Policy& policy,
                            const std::vector<double>& stops,
                            util::Rng& rng) {
  return evaluate(policy, stops, {EvalMode::kSampled, &rng});
}

double offline_cost_total(const std::vector<double>& stops,
                          double break_even) {
  double total = 0.0;
  for (double y : stops) {
    require_finite_stop(y, "offline_cost_total");
    total += core::offline_cost(y, break_even);
  }
  return total;
}

}  // namespace idlered::sim
