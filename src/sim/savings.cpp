#include "sim/savings.h"

#include <stdexcept>

namespace idlered::sim {

RealCost to_real_cost(double idle_second_equivalents,
                      const costmodel::VehicleConfig& vehicle) {
  RealCost r;
  r.idle_second_equivalents = idle_second_equivalents;
  const double cc_per_s = costmodel::idle_fuel_cc_per_s(vehicle.engine);
  r.fuel_liters = idle_second_equivalents * cc_per_s / 1000.0;
  const double cents_per_s =
      costmodel::idling_cost_cents_per_s(vehicle.engine, vehicle.fuel);
  r.usd = idle_second_equivalents * cents_per_s / 100.0;
  r.co2_kg = r.fuel_liters * kCo2KgPerLiterGasoline;
  return r;
}

RealCost savings(const CostTotals& policy, const CostTotals& baseline,
                 const costmodel::VehicleConfig& vehicle) {
  return to_real_cost(baseline.online - policy.online, vehicle);
}

RealCost project_fleet_year(const RealCost& per_vehicle_sample,
                            double sample_days, double fleet_size) {
  if (sample_days <= 0.0 || fleet_size <= 0.0)
    throw std::invalid_argument(
        "project_fleet_year: days and fleet size must be > 0");
  const double factor = 365.0 / sample_days * fleet_size;
  RealCost r = per_vehicle_sample;
  r.idle_second_equivalents *= factor;
  r.fuel_liters *= factor;
  r.usd *= factor;
  r.co2_kg *= factor;
  return r;
}

}  // namespace idlered::sim
