// Structure-of-arrays batch of stop lengths — the input format of the
// batched evaluation kernels (sim/batch_kernels.h).
//
// A StopBatch is a validated, contiguous copy of a vehicle's stop lengths:
// construction rejects NaN/Inf/negative values once, so the kernels can run
// branch-light vector loops with no per-element hostile-input checks (the
// scalar evaluator re-validates every stop on every call). On top of the
// lengths it memoizes the per-break-even *offline* cost total — the
// denominator of eq. 5, shared by every strategy evaluated on the same
// (vehicle, B) cell — in the batch reduction order, so a six-strategy
// lineup pays for it once instead of six times.
//
// Thread-safety: the memo is mutex-guarded like engine::VehicleCache's
// statistics memo; a StopBatch is immutable after construction and safe to
// share across evaluation threads.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "util/thread_annotations.h"

namespace idlered::sim {

class StopBatch {
 public:
  StopBatch() = default;

  /// Copies and validates: throws std::invalid_argument on any stop length
  /// that is not finite and >= 0.
  explicit StopBatch(std::span<const double> stops);

  std::span<const double> lengths() const { return y_; }
  std::size_t size() const { return y_.size(); }
  bool empty() const { return y_.empty(); }

  /// sum_i offline_cost(y_i, B) = sum_i min(y_i, B) in the batch reduction
  /// order (batch_kernels.h documents it). Memoized per distinct B;
  /// thread-safe. Throws std::invalid_argument unless break_even is finite
  /// and > 0.
  double offline_total(double break_even) const IDLERED_EXCLUDES(memo_m_);

 private:
  std::vector<double> y_;
  mutable util::Mutex memo_m_;
  mutable std::map<double, double> memo_ IDLERED_GUARDED_BY(memo_m_);
};

}  // namespace idlered::sim
