// A stateful stop-start controller, simulating deployment.
//
// The paper assumes the side statistics (mu_B_minus, q_B_plus) are known;
// a real controller learns them from the stops it has already seen. The
// AdaptiveController processes a stop stream strictly online: the policy
// used for stop i depends only on stops 1..i-1. During warm-up (too little
// history) it falls back to N-Rand, whose e/(e-1) guarantee needs no
// statistics. Optional exponential forgetting tracks drifting traffic.
//
// With Config::robust.enabled the controller additionally survives a
// hostile deployment: every reading passes a robust::InputGuard before the
// estimator, a robust::HealthMonitor smooths the anomaly and restart-
// failure rates, and the acting policy walks the degraded-mode fallback
// ladder COA -> DET -> N-Rand -> NEV (robust/fallback.h) as health, the
// battery state of charge, or the starter degrade — with hysteresis, so
// the mode never flaps. The b-DET vertex is only trusted when its
// feasibility condition (eq. 36) holds with a safety margin. Corrupted
// readings are absorbed (counted, never learned from, never turned into
// NaN costs); without the robust path they throw as before.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "core/estimator.h"
#include "core/policy.h"
#include "costmodel/multislope.h"
#include "robust/fallback.h"
#include "robust/fault_model.h"
#include "robust/guarded_estimator.h"
#include "robust/health_monitor.h"
#include "sim/battery.h"
#include "sim/evaluator.h"

namespace idlered::sim {

class AdaptiveController {
 public:
  struct Config {
    double break_even = 28.0;
    std::size_t warmup_stops = 10;  ///< use fallback until this many stops
    double decay_lambda = 1.0;      ///< 1 = full history, <1 = forgetting
    robust::RobustConfig robust;    ///< guard + fallback ladder (off => legacy)
    /// Battery whose SOC gates the ladder (robust mode, sampled/faulted
    /// processing only — expected mode has no per-stop engine-off time).
    std::optional<BatteryModel> battery;
    /// Optional k-slope engine-state profile. When set, every rung of the
    /// controller acts through the multislope family instead of the
    /// two-slope lineup: warm-up / kNRand -> MS-Rand, kDet -> MS-DET,
    /// kNev -> MS-NEV, and kProposed -> MS-COA over per-transition
    /// statistics learned online (one estimator per breakpoint t_i, fed
    /// exactly the accepted readings, same decay_lambda). The profile's
    /// deepest switch cost must equal break_even, so the offline
    /// accounting stays min(y, B) and CRs remain comparable with the
    /// two-slope controller; on SlopeProfile::two_slope(break_even) every
    /// rung is bit-identical to the two-slope controller. Sampled/faulted
    /// processing needs a single drawn threshold per stop, which only the
    /// classic() k = 2 profile (and MS-NEV, which never shuts off) can
    /// provide — a non-classic profile there trips the policy's
    /// sample_threshold contract.
    std::optional<costmodel::SlopeProfile> profile;
  };

  /// Validates the configuration; throws std::invalid_argument on
  /// break_even <= 0, warmup_stops == 0 or decay_lambda outside (0, 1].
  explicit AdaptiveController(const Config& config);

  /// Process one stop in expected-cost mode: pay the current policy's
  /// expected cost, then fold the observed length into the estimator.
  /// Returns the cost paid for this stop. Robust mode absorbs an invalid
  /// stop_length (no cost charged, anomaly recorded, returns 0); legacy
  /// mode throws std::invalid_argument without touching the totals.
  double process_stop_expected(double stop_length);

  /// Process one stop in sampled mode (draws a threshold).
  double process_stop_sampled(double stop_length, util::Rng& rng);

  /// Process one stop through a faulted sensing/actuation path: the cost
  /// is computed from `true_length` (with the reading's actuation delay
  /// and repeated cranking applied), while the *estimator* only ever sees
  /// `reading.value` — exactly the separation a real vehicle lives with.
  /// Requires a finite true_length >= 0 (the harness knows the truth);
  /// garbage there throws std::invalid_argument even in robust mode.
  double process_stop_faulted(double true_length,
                              const robust::SensorReading& reading,
                              util::Rng& rng);

  /// Feed one raw reading without charging any cost (telemetry-only path).
  /// Robust mode guards it; legacy mode forwards to the strict estimator.
  void observe_reading(double reading);

  /// Battery recharge from `drive_s` seconds of driving (no-op without a
  /// configured battery).
  void note_drive(double drive_s);

  /// The policy that will act on the *next* stop.
  const core::Policy& current_policy() const { return *policy_; }

  /// The fallback-ladder rung the controller currently stands on. Legacy
  /// mode reports kNRand during warm-up and kProposed afterwards.
  robust::ControllerMode mode() const { return mode_; }

  /// Sensor health (kHealthy when the robust path is disabled).
  robust::HealthState health() const { return health_.state(); }
  const robust::HealthMonitor& health_monitor() const { return health_; }

  /// Guard verdict counters (all-accepted when robust is disabled).
  const robust::GuardCounts& guard_counts() const {
    return estimator_.guard().counts();
  }

  /// Battery state of charge; 1.0 when no battery is configured.
  double soc() const { return soc_; }

  /// Accumulated totals so far (online cost, offline cost, stop count).
  const CostTotals& totals() const { return totals_; }

  std::size_t stops_seen() const { return stops_seen_; }
  const Config& config() const { return config_; }

 private:
  void account_engine_off(double off_s, int restart_attempts);
  void refresh_policy();
  void observe_transitions(double accepted_reading);
  std::vector<dist::ShortStopStats> transition_stats() const;

  Config config_;
  robust::GuardedEstimator estimator_;
  /// One estimator per profile transition (empty without a profile), at
  /// break-even t_i; fed exactly the readings the guard accepts.
  std::vector<core::DecayingStatsEstimator> transition_estimators_;
  robust::HealthMonitor health_;
  core::PolicyPtr policy_;  ///< current acting policy
  robust::ControllerMode mode_ = robust::ControllerMode::kNRand;
  CostTotals totals_;
  std::size_t stops_seen_ = 0;
  double soc_ = 1.0;
  bool soc_low_ = false;  ///< latched until SOC recovers past the margin
};

}  // namespace idlered::sim
