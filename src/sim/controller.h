// A stateful stop-start controller, simulating deployment.
//
// The paper assumes the side statistics (mu_B_minus, q_B_plus) are known;
// a real controller learns them from the stops it has already seen. The
// AdaptiveController processes a stop stream strictly online: the policy
// used for stop i depends only on stops 1..i-1. During warm-up (too little
// history) it falls back to N-Rand, whose e/(e-1) guarantee needs no
// statistics. Optional exponential forgetting tracks drifting traffic.
#pragma once

#include <cstddef>
#include <memory>

#include "core/estimator.h"
#include "core/policy.h"
#include "sim/evaluator.h"

namespace idlered::sim {

class AdaptiveController {
 public:
  struct Config {
    double break_even = 28.0;
    std::size_t warmup_stops = 10;  ///< use fallback until this many stops
    double decay_lambda = 1.0;      ///< 1 = full history, <1 = forgetting
  };

  explicit AdaptiveController(const Config& config);

  /// Process one stop in expected-cost mode: pay the current policy's
  /// expected cost, then fold the observed length into the estimator.
  /// Returns the cost paid for this stop.
  double process_stop_expected(double stop_length);

  /// Process one stop in sampled mode (draws a threshold).
  double process_stop_sampled(double stop_length, util::Rng& rng);

  /// The policy that will act on the *next* stop.
  const core::Policy& current_policy() const { return *policy_; }

  /// Accumulated totals so far (online cost, offline cost, stop count).
  const CostTotals& totals() const { return totals_; }

  std::size_t stops_seen() const { return stops_seen_; }
  const Config& config() const { return config_; }

 private:
  void observe(double stop_length);

  Config config_;
  core::DecayingStatsEstimator estimator_;
  core::PolicyPtr policy_;  ///< current acting policy
  CostTotals totals_;
  std::size_t stops_seen_ = 0;
};

}  // namespace idlered::sim
