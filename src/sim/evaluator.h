// Trace-level evaluation of online policies.
//
// The empirical competitive ratio of a policy on a vehicle is the ratio of
// accumulated costs over the vehicle's stops (the empirical form of eq. 5):
//
//   CR = sum_i E_x[cost_online(x, y_i)] / sum_i cost_offline(y_i)
//
// Two modes:
//  * expected — randomized policies contribute their exact expected cost per
//    stop (no Monte-Carlo noise); this is the mode the figure reproductions
//    use, matching the paper's definition of CR directly.
//  * sampled  — one threshold is drawn per stop, simulating a deployed
//    controller; by the law of large numbers this converges to expected
//    mode (ablation A4 quantifies the gap).
//
// The single entry point is evaluate(policy, stops, EvalOptions); the
// legacy evaluate_expected / evaluate_sampled / offline_cost_total trio is
// kept as thin deprecated wrappers (see the deprecation notes below and in
// README.md) so existing call sites keep compiling.
#pragma once

#include <span>
#include <vector>

#include "core/policy.h"

namespace idlered::sim {

struct CostTotals {
  double online = 0.0;
  double offline = 0.0;
  std::size_t num_stops = 0;

  /// Empirical competitive ratio; 1 when there were no stops (vacuous).
  double cr() const;

  friend bool operator==(const CostTotals&, const CostTotals&) = default;
};

enum class EvalMode {
  kExpected,  ///< exact expected online cost per stop
  kSampled,   ///< one threshold draw per stop (needs EvalOptions::rng)
};

struct EvalOptions {
  EvalMode mode = EvalMode::kExpected;
  /// RNG for sampled mode; not owned, must be non-null iff mode == kSampled
  /// (evaluate throws otherwise). Ignored in expected mode.
  util::Rng* rng = nullptr;
  /// Emit one obs "stop_eval" trace event per stop (policy name, stop
  /// length, drawn threshold, online/offline cost). Only takes effect while
  /// the obs recorder is enabled — and even then it is opt-in per call
  /// because a fleet sweep evaluates millions of stops. Never perturbs the
  /// RNG stream or the returned totals.
  bool trace_stops = false;
};

/// Accumulate online and offline costs of `policy` over a stop sequence.
/// The one evaluator entry point: expected or sampled is an option, and the
/// offline totals (the denominator of eq. 5) always ride along.
CostTotals evaluate(const core::Policy& policy, std::span<const double> stops,
                    const EvalOptions& options = {});

/// Deprecated: use evaluate(policy, stops) — expected is the default mode.
CostTotals evaluate_expected(const core::Policy& policy,
                             const std::vector<double>& stops);

/// Deprecated: use evaluate(policy, stops, {EvalMode::kSampled, &rng}).
CostTotals evaluate_sampled(const core::Policy& policy,
                            const std::vector<double>& stops,
                            util::Rng& rng);

/// Deprecated: read `.offline` off any evaluate() result for the same
/// stops and break-even instead of recomputing it separately.
double offline_cost_total(const std::vector<double>& stops,
                          double break_even);

}  // namespace idlered::sim
