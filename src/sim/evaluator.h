// Trace-level evaluation of online policies.
//
// The empirical competitive ratio of a policy on a vehicle is the ratio of
// accumulated costs over the vehicle's stops (the empirical form of eq. 5):
//
//   CR = sum_i E_x[cost_online(x, y_i)] / sum_i cost_offline(y_i)
//
// Two modes:
//  * expected — randomized policies contribute their exact expected cost per
//    stop (no Monte-Carlo noise); this is the mode the figure reproductions
//    use, matching the paper's definition of CR directly.
//  * sampled  — one threshold is drawn per stop, simulating a deployed
//    controller; by the law of large numbers this converges to expected
//    mode (ablation A4 quantifies the gap).
#pragma once

#include <vector>

#include "core/policy.h"

namespace idlered::sim {

struct CostTotals {
  double online = 0.0;
  double offline = 0.0;
  std::size_t num_stops = 0;

  /// Empirical competitive ratio; 1 when there were no stops (vacuous).
  double cr() const;
};

/// Accumulate exact expected costs over a stop sequence.
CostTotals evaluate_expected(const core::Policy& policy,
                             const std::vector<double>& stops);

/// Accumulate sampled costs (one threshold draw per stop).
CostTotals evaluate_sampled(const core::Policy& policy,
                            const std::vector<double>& stops,
                            util::Rng& rng);

/// Offline-only totals (the denominator of eq. 5) for a stop sequence.
double offline_cost_total(const std::vector<double>& stops,
                          double break_even);

}  // namespace idlered::sim
