// Trace-level evaluation of online policies.
//
// The empirical competitive ratio of a policy on a vehicle is the ratio of
// accumulated costs over the vehicle's stops (the empirical form of eq. 5):
//
//   CR = sum_i E_x[cost_online(x, y_i)] / sum_i cost_offline(y_i)
//
// Two modes:
//  * expected — randomized policies contribute their exact expected cost per
//    stop (no Monte-Carlo noise); this is the mode the figure reproductions
//    use, matching the paper's definition of CR directly.
//  * sampled  — one threshold is drawn per stop, simulating a deployed
//    controller; by the law of large numbers this converges to expected
//    mode (ablation A4 quantifies the gap).
//
// The single entry point is evaluate(policy, stops, EvalOptions); the
// legacy evaluate_expected / evaluate_sampled / offline_cost_total trio is
// kept as thin deprecated wrappers (see the deprecation notes below and in
// README.md) so existing call sites keep compiling.
//
// Kernels (EvalOptions::kernel):
//  * scalar — the historical per-stop loop: one virtual expected_cost (or
//    threshold draw) per stop, sequential left-to-right accumulation. The
//    reference semantics every other path is tested against.
//  * batch  — the SIMD kernels of sim/batch_kernels.h: per-element costs
//    bit-identical to scalar, accumulated in the documented lane reduction
//    order. Totals differ from scalar only by summation-order rounding
//    (tested ULP bound, see batch_kernels.h); batch totals themselves are
//    bit-stable across runs, thread counts and vector widths. Per-stop
//    tracing (trace_stops) is a scalar-kernel feature; requesting it with
//    the batch kernel is a contract violation.
#pragma once

#include <span>
#include <vector>

#include "core/policy.h"
#include "sim/stop_batch.h"

namespace idlered::sim {

struct CostTotals {
  double online = 0.0;
  double offline = 0.0;
  std::size_t num_stops = 0;

  /// Empirical competitive ratio; 1 when there were no stops (vacuous).
  double cr() const;

  friend bool operator==(const CostTotals&, const CostTotals&) = default;
};

enum class EvalMode {
  kExpected,  ///< exact expected online cost per stop
  kSampled,   ///< one threshold draw per stop (needs EvalOptions::rng)
};

enum class EvalKernel {
  kScalar,  ///< per-stop loop, sequential accumulation (reference)
  kBatch,   ///< SIMD lane kernels, documented bit-stable reduction order
};

struct EvalOptions {
  EvalMode mode = EvalMode::kExpected;
  /// RNG for sampled mode; not owned, must be non-null iff mode == kSampled
  /// (evaluate throws otherwise). Ignored in expected mode.
  util::Rng* rng = nullptr;
  /// Emit one obs "stop_eval" trace event per stop (policy name, stop
  /// length, drawn threshold, online/offline cost). Only takes effect while
  /// the obs recorder is enabled — and even then it is opt-in per call
  /// because a fleet sweep evaluates millions of stops. Never perturbs the
  /// RNG stream or the returned totals. Scalar kernel only: combining it
  /// with kernel == kBatch is a contract violation (IDLERED_EXPECTS).
  bool trace_stops = false;
  /// Which accumulation kernel runs the stop loop (see the header comment).
  EvalKernel kernel = EvalKernel::kScalar;
};

/// Accumulate online and offline costs of `policy` over a stop sequence.
/// The one evaluator entry point: expected or sampled is an option, and the
/// offline totals (the denominator of eq. 5) always ride along.
CostTotals evaluate(const core::Policy& policy, std::span<const double> stops,
                    const EvalOptions& options = {});

/// Batch-kernel evaluation over a prevalidated StopBatch: skips per-call
/// stop validation and reuses the batch's memoized per-B offline totals —
/// the fast path for a strategy lineup sharing one (vehicle, B) cell.
/// Always runs the batch kernels; options.kernel is ignored, the other
/// options (mode / rng / trace_stops contract) behave as above.
CostTotals evaluate(const core::Policy& policy, const StopBatch& stops,
                    const EvalOptions& options = {});

/// Deprecated: use evaluate(policy, stops) — expected is the default mode.
CostTotals evaluate_expected(const core::Policy& policy,
                             const std::vector<double>& stops);

/// Deprecated: use evaluate(policy, stops, {EvalMode::kSampled, &rng}).
CostTotals evaluate_sampled(const core::Policy& policy,
                            const std::vector<double>& stops,
                            util::Rng& rng);

/// Deprecated: read `.offline` off any evaluate() result for the same
/// stops and break-even instead of recomputing it separately.
double offline_cost_total(const std::vector<double>& stops,
                          double break_even);

}  // namespace idlered::sim
