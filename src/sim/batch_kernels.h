// Batched, SIMD-friendly evaluation kernels for the paper's strategy
// lineup: expected-cost and sampled-cost accumulation over a whole stop
// array per call, replacing the scalar evaluator's one-virtual-call-per-
// stop hot loop. Every closed-form policy of the reproduction — the
// threshold family (TOI / DET / b-DET / NEV), N-Rand, revised MOM-Rand,
// and COA (which delegates to one of those vertices) — has a dedicated
// kernel whose per-element arithmetic is bit-identical to the policy's
// expected_cost; policies outside the closed-form set fall back to a
// batched loop over Policy::expected_cost that still uses the batch
// reduction order.
//
// Reduction order (the batch determinism contract, DESIGN.md §10):
// element i accumulates into lane (i mod kLanes); after the sweep the
// kLanes partial sums combine pairwise in fixed order
//     ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
// This order is a pure function of the element index, so batch totals are
// bit-identical regardless of vector width, thread count, or schedule —
// and differ from the scalar evaluator's sequential sum only by summation-
// order rounding. The documented cross-kernel tolerance is
//     |batch - scalar| <= 8 * n * eps * scalar      (eps = DBL_EPSILON),
// pinned by tests/property/test_batch_vs_scalar.cpp; in practice the gap
// is a few ulps.
//
// The lane loops are written as kLanes independent accumulation chains so
// the compiler can map them onto one vector register at -O3 without any
// reduction-reassociation license (no -ffast-math anywhere in this repo).
#pragma once

#include <cstddef>
#include <span>

#include "core/policy.h"
#include "costmodel/multislope.h"

namespace idlered::sim::batch {

/// Lane count of the documented reduction order. 8 doubles = one AVX-512
/// register or two AVX2 registers; the order is fixed regardless of what
/// the hardware actually vectorizes.
inline constexpr std::size_t kLanes = 8;

/// Throws std::invalid_argument on any stop that is not finite and >= 0.
/// StopBatch construction runs this once; raw-span entry points run it per
/// call (still one predictable pass, not interleaved with the kernels).
void validate_stops(std::span<const double> y, const char* where);

/// sum_i min(y_i, B): the offline total (eq. 5 denominator).
double offline_sum(std::span<const double> y, double break_even);

/// Threshold-policy online total: sum_i (y_i < x ? y_i : x + B).
/// x = 0 is TOI, x = B is DET, x in (0,B) is b-DET; x = +inf (NEV) needs
/// no special case — y_i < inf selects y_i in every lane.
double threshold_online_sum(std::span<const double> y, double threshold,
                            double break_even);

/// N-Rand online total: e/(e-1) * sum_i min(y_i, B) (equalizer property).
double nrand_online_sum(std::span<const double> y, double break_even);

/// Revised MOM-Rand online total (density (e^{x/B}-1)/(B(e-2))):
/// sum_i [ y <= B : y(y/2 - 2B + Be)/(B(e-2)) ; y > B : B(e-3/2)/(e-2) ].
/// Callers must check MomRandPolicy::revised() and use nrand_online_sum
/// for the fallback regime.
double momrand_online_sum(std::span<const double> y, double break_even);

/// Batched fallback for policies without a closed-form kernel: one virtual
/// expected_cost call per stop, accumulated in the batch reduction order.
double generic_online_sum(const core::Policy& policy,
                          std::span<const double> y);

/// MS-DET online total: sum_i envelope_follower_cost(profile, y_i) — the
/// per-element expression is the same function MultislopeEnvelopePolicy::
/// expected_cost evaluates, so only the reduction order differs from
/// scalar. Valid for every k (including k = 2, where it equals the DET
/// kernel bit-for-bit).
double multislope_envelope_online_sum(const costmodel::SlopeProfile& profile,
                                      std::span<const double> y);

/// MS-Rand expected online total: sum_i randomized_envelope_cost(profile,
/// y_i), i.e. r_{k-1} y + e/(e-1) * sum_j min(dr_j y, db_j) per element.
double multislope_rand_online_sum(const costmodel::SlopeProfile& profile,
                                  std::span<const double> y);

/// MS-NEV online total: base_rate * sum-in-lane-order of y_i (per-element
/// cost base_rate() * y_i, matching MultislopeNevPolicy::expected_cost).
double multislope_nev_online_sum(const costmodel::SlopeProfile& profile,
                                 std::span<const double> y);

/// Closed-form dispatch: recognizes ThresholdPolicy, NRandPolicy,
/// MomRandPolicy, ProposedPolicy (via its selected vertex) and the
/// multislope family MS-NEV / MS-DET / MS-Rand (any k). MS-COA has no
/// closed-form kernel — its per-transition delegates are virtual — so it
/// returns false and takes the generic fallback (kernel-parity is pinned
/// by tests/property/test_multislope.cpp). Returns false — leaving
/// *online untouched — for anything else; the caller then uses
/// generic_online_sum.
bool expected_online_sum(const core::Policy& policy,
                         std::span<const double> y, double* online);

/// Sampled-mode online total: draws one threshold per stop from `rng` in
/// stop order (the same draw sequence as the scalar evaluator, so a given
/// seed produces identical thresholds under either kernel), then
/// accumulates cost_online(x_i, y_i) in the batch reduction order.
double sampled_online_sum(const core::Policy& policy,
                          std::span<const double> y, double break_even,
                          util::Rng& rng);

}  // namespace idlered::sim::batch
