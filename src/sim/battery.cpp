#include "sim/battery.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/costs.h"

namespace idlered::sim {

SocConstrainedController::SocConstrainedController(core::PolicyPtr policy,
                                                   const BatteryModel& battery)
    : policy_(std::move(policy)), battery_(battery),
      soc_(battery.initial_soc) {
  if (!policy_)
    throw std::invalid_argument("SocConstrainedController: null policy");
  if (battery_.capacity_wh <= 0.0 || battery_.accessory_draw_w < 0.0 ||
      battery_.recharge_w < 0.0 || battery_.restart_pulse_wh < 0.0)
    throw std::invalid_argument(
        "SocConstrainedController: battery parameters must be nonnegative "
        "with positive capacity");
  if (battery_.min_soc < 0.0 || battery_.min_soc >= 1.0 ||
      battery_.initial_soc < 0.0 || battery_.initial_soc > 1.0)
    throw std::invalid_argument(
        "SocConstrainedController: SOC values must be in [0, 1]");
}

void SocConstrainedController::recharge(double drive_s) {
  if (drive_s < 0.0)
    throw std::invalid_argument("recharge: drive time must be >= 0");
  const double gained = battery_.recharge_w * drive_s / 3600.0;
  soc_ = std::min(1.0, soc_ + gained / battery_.capacity_wh);
}

double SocConstrainedController::process_stop(double stop_length,
                                              double drive_s,
                                              util::Rng& rng) {
  if (stop_length < 0.0)
    throw std::invalid_argument("process_stop: stop length must be >= 0");
  const double b = policy_->break_even();
  ++stops_seen_;

  double cost = 0.0;
  if (soc_ < battery_.min_soc) {
    // Electrical floor: the engine must keep running (and charges a bit —
    // folded into the post-stop drive recharge for simplicity).
    cost = stop_length;
    ++forced_idle_stops_;
  } else {
    const double x = policy_->sample_threshold(rng);
    if (stop_length < x || std::isinf(x)) {
      cost = stop_length;  // the stop ended before the threshold
    } else {
      // Engine off at time x. The accessories may only drain down to the
      // floor; compute how long that allows.
      const double available_wh =
          (soc_ - battery_.min_soc) * battery_.capacity_wh;
      const double max_off_s =
          battery_.accessory_draw_w > 0.0
              ? available_wh * 3600.0 / battery_.accessory_draw_w
              : std::numeric_limits<double>::infinity();
      const double off_s = std::min(stop_length - x, max_off_s);
      const bool aborted = off_s < stop_length - x;

      const double drained_wh =
          battery_.accessory_draw_w * off_s / 3600.0 +
          battery_.restart_pulse_wh;
      soc_ = std::max(0.0, soc_ - drained_wh / battery_.capacity_wh);

      // Idling before the shut-off, the restart cost, and — if the floor
      // was hit — idling again through the rest of the stop.
      cost = x + b;
      if (aborted) {
        cost += stop_length - x - off_s;
        ++aborted_shutoffs_;
      }
    }
  }

  totals_.online += cost;
  totals_.offline += core::offline_cost(stop_length, b);
  ++totals_.num_stops;
  recharge(drive_s);
  return cost;
}

}  // namespace idlered::sim
