#include "traces/area_profiles.h"

#include <memory>
#include <stdexcept>

#include "dist/adaptors.h"
#include "dist/mixture.h"
#include "dist/parametric.h"

namespace idlered::traces {

AreaProfile california() {
  AreaProfile p;
  p.name = "California";
  p.num_vehicles_driving = 217;
  p.num_vehicles_stops_dataset = 291;
  p.mean_stop_s = 63.0;  // long signal waits: near-TOI regime at B = 28
  p.stops_per_day_mean = 9.37;   // Table 1
  p.stops_per_day_std = 7.68;
  return p;
}

AreaProfile chicago() {
  AreaProfile p;
  p.name = "Chicago";
  p.num_vehicles_driving = 312;
  p.num_vehicles_stops_dataset = 408;
  // Stop-and-go downtown traffic: shorter but more frequent stops that
  // straddle the break-even interval — the hardest regime (highest CR).
  p.mean_stop_s = 38.0;
  p.stops_per_day_mean = 12.49;  // Table 1
  p.stops_per_day_std = 9.97;
  return p;
}

AreaProfile atlanta() {
  AreaProfile p;
  p.name = "Atlanta";
  p.num_vehicles_driving = 653;
  p.num_vehicles_stops_dataset = 827;
  p.mean_stop_s = 60.0;
  p.stops_per_day_mean = 10.37;  // Table 1
  p.stops_per_day_std = 8.42;
  return p;
}

std::vector<AreaProfile> all_areas() {
  return {california(), chicago(), atlanta()};
}

namespace {

/// The unscaled mixture shape shared by all areas: brief stops + signal
/// waits (lognormal) + parking tail (Pareto).
dist::DistributionPtr base_shape(const AreaProfile& p) {
  auto brief = std::make_shared<dist::LogNormal>(
      dist::LogNormal::from_mean_median(p.short_mean_s, p.short_median_s));
  auto signal = std::make_shared<dist::LogNormal>(
      dist::LogNormal::from_mean_median(p.signal_mean_s, p.signal_median_s));
  auto tail = std::make_shared<dist::Pareto>(p.tail_scale_s, p.tail_shape);
  std::vector<dist::Mixture::Component> comps;
  comps.push_back({p.short_weight, brief});
  comps.push_back({1.0 - p.short_weight - p.tail_weight, signal});
  comps.push_back({p.tail_weight, tail});
  return std::make_shared<dist::Mixture>(std::move(comps));
}

}  // namespace

dist::DistributionPtr area_stop_distribution(const AreaProfile& profile) {
  return scaled_stop_distribution(profile, profile.mean_stop_s);
}

dist::DistributionPtr scaled_stop_distribution(const AreaProfile& profile,
                                               double target_mean_s) {
  if (target_mean_s <= 0.0)
    throw std::invalid_argument(
        "scaled_stop_distribution: target mean must be > 0");
  return std::make_shared<dist::Scaled>(
      dist::Scaled::with_mean(base_shape(profile), target_mean_s));
}

}  // namespace idlered::traces
