#include "traces/fleet_generator.h"

#include <cmath>
#include <memory>
#include <sstream>

#include "dist/adaptors.h"

namespace idlered::traces {

namespace {

/// Lognormal (mu, sigma) matched to a target (mean, std):
/// sigma^2 = ln(1 + cv^2), mu = ln(mean) - sigma^2 / 2.
struct LogNormalParams {
  double mu;
  double sigma;
};

LogNormalParams match_moments(double mean, double std) {
  const double cv2 = (std / mean) * (std / mean);
  LogNormalParams p{};
  p.sigma = std::sqrt(std::log1p(cv2));
  p.mu = std::log(mean) - 0.5 * p.sigma * p.sigma;
  return p;
}

sim::StopTrace generate_vehicle_from(const AreaProfile& profile,
                                     const dist::DistributionPtr& area_law,
                                     int index, util::Rng& rng) {
  // Per-vehicle congestion factor: unit-mean lognormal.
  const double s = profile.vehicle_sigma;
  const double factor = rng.lognormal(-0.5 * s * s, s);
  const dist::Scaled vehicle_law(area_law, factor);

  sim::StopTrace trace;
  std::ostringstream id;
  id << profile.name << "-" << index;
  trace.vehicle_id = id.str();
  trace.area = profile.name;

  for (int day = 0; day < profile.days_recorded; ++day) {
    const int count = draw_daily_stop_count(profile, rng);
    for (int k = 0; k < count; ++k) {
      trace.stops.push_back(vehicle_law.sample(rng));
    }
  }
  // A week with zero stops would make the trace unusable; give such a
  // vehicle a single stop, matching how sparse NREL vehicles still appear.
  if (trace.stops.empty()) trace.stops.push_back(vehicle_law.sample(rng));
  return trace;
}

}  // namespace

int draw_daily_stop_count(const AreaProfile& profile, util::Rng& rng) {
  const LogNormalParams p =
      match_moments(profile.stops_per_day_mean, profile.stops_per_day_std);
  const double draw = rng.lognormal(p.mu, p.sigma);
  return static_cast<int>(std::lround(draw));
}

std::vector<double> sample_stops_per_day(const AreaProfile& profile, int n,
                                         util::Rng& rng) {
  const LogNormalParams p =
      match_moments(profile.stops_per_day_mean, profile.stops_per_day_std);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(std::round(rng.lognormal(p.mu, p.sigma)));
  }
  return out;
}

sim::StopTrace generate_vehicle(const AreaProfile& profile, int index,
                                util::Rng& rng) {
  return generate_vehicle_from(profile, area_stop_distribution(profile),
                               index, rng);
}

sim::Fleet generate_area_fleet(const AreaProfile& profile, util::Rng& rng) {
  sim::Fleet fleet;
  fleet.reserve(static_cast<std::size_t>(profile.num_vehicles_driving));
  const dist::DistributionPtr law = area_stop_distribution(profile);
  for (int i = 0; i < profile.num_vehicles_driving; ++i) {
    util::Rng vehicle_rng = rng.fork(static_cast<std::uint64_t>(i));
    fleet.push_back(generate_vehicle_from(profile, law, i, vehicle_rng));
  }
  return fleet;
}

sim::Fleet generate_study_fleet(std::uint64_t seed) {
  util::Rng rng(seed);
  sim::Fleet fleet;
  for (const AreaProfile& area : all_areas()) {
    util::Rng area_rng = rng.fork(std::hash<std::string>{}(area.name));
    sim::Fleet area_fleet = generate_area_fleet(area, area_rng);
    fleet.insert(fleet.end(), area_fleet.begin(), area_fleet.end());
  }
  return fleet;
}

sim::Fleet generate_scaled_fleet(const AreaProfile& profile,
                                 double target_mean_s, int n,
                                 util::Rng& rng) {
  sim::Fleet fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  const dist::DistributionPtr law =
      scaled_stop_distribution(profile, target_mean_s);
  for (int i = 0; i < n; ++i) {
    util::Rng vehicle_rng = rng.fork(static_cast<std::uint64_t>(i));
    fleet.push_back(generate_vehicle_from(profile, law, i, vehicle_rng));
  }
  return fleet;
}

}  // namespace idlered::traces
