// Synthetic fleet generation: turns an AreaProfile into per-vehicle stop
// traces shaped like the NREL driving-data release (one week per vehicle).
#pragma once

#include <vector>

#include "sim/trace.h"
#include "traces/area_profiles.h"
#include "util/random.h"

namespace idlered::traces {

/// One vehicle: draws a per-vehicle scale factor, a stops/day count for each
/// recorded day, then samples that many stop lengths from the scaled law.
/// `index` only labels the vehicle id.
sim::StopTrace generate_vehicle(const AreaProfile& profile, int index,
                                util::Rng& rng);

/// The area's Figure-4 fleet (profile.num_vehicles_driving vehicles). Each
/// vehicle gets an independent forked RNG stream, so results do not depend
/// on generation order.
sim::Fleet generate_area_fleet(const AreaProfile& profile, util::Rng& rng);

/// All three areas in one fleet — the paper's full 1182-vehicle study.
sim::Fleet generate_study_fleet(std::uint64_t seed);

/// A fleet of `n` vehicles whose stop law is the profile's shape rescaled
/// to `target_mean_s` — one data point of the Figures 5/6 sweeps.
sim::Fleet generate_scaled_fleet(const AreaProfile& profile,
                                 double target_mean_s, int n,
                                 util::Rng& rng);

/// Stops/day draws for the Table 1 reproduction: one value per vehicle-day,
/// lognormal matched to the profile's (mean, std).
std::vector<double> sample_stops_per_day(const AreaProfile& profile, int n,
                                         util::Rng& rng);

/// Number of stops for one vehicle-day (integer draw used by the trace
/// generator; shares the lognormal model above).
int draw_daily_stop_count(const AreaProfile& profile, util::Rng& rng);

}  // namespace idlered::traces
