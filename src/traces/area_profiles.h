// Synthetic NREL-like area profiles.
//
// The paper's driving data (NREL releases for California / Chicago /
// Atlanta) is not redistributable, so we synthesize statistically equivalent
// fleets (see the substitution table in DESIGN.md):
//
//  * the stop-length law per area is a lognormal body (signal/queue stops)
//    plus a Pareto tail (errand/long-wait stops) — heavy-tailed and
//    non-exponential, matching the paper's Figure 3 observation via the
//    Kolmogorov-Smirnov test;
//  * areas share the distribution *shape* and differ in mean stop length,
//    exactly the property the paper exploits for Figures 5-6;
//  * per-vehicle heterogeneity multiplies the area law by a lognormal
//    factor, so individual vehicles span calm-to-congested conditions;
//  * stops/day follows a lognormal matched to the paper's Table 1 moments
//    (Atlanta 10.37 +- 8.42, Chicago 12.49 +- 9.97, California 9.37 +- 7.68).
#pragma once

#include <string>
#include <vector>

#include "dist/distribution.h"

namespace idlered::traces {

struct AreaProfile {
  std::string name;

  /// Fleet sizes. The paper uses two cohorts: the driving-data fleets of
  /// Figure 4 (217 / 312 / 653 vehicles) and the stops/day dataset of
  /// Table 1 (291 / 408 / 827 vehicles).
  int num_vehicles_driving = 0;
  int num_vehicles_stops_dataset = 0;

  /// Area-level stop-length law: a three-component mixture sharing one
  /// shape across areas (areas differ only in mean, per the paper's
  /// Figure 3 observation):
  ///   - brief stops: stop signs, creeping queues (lognormal, ~5-10 s)
  ///   - signal waits: the dominant mass, tens of seconds around the
  ///     break-even interval (lognormal)
  ///   - parking tail: errands and long waits (Pareto, heavy)
  /// Calibrated so per-vehicle (mu_B-, q_B+) clouds land where the NREL
  /// fleets do: near-TOI at B = 28 s, straddling the regions at B = 47 s.
  double mean_stop_s = 60.0;     ///< target mean stop length (post-scaling)
  double short_weight = 0.12;
  double short_median_s = 6.0;   ///< brief-stop lognormal median (pre-scale)
  double short_mean_s = 7.0;     ///< brief-stop lognormal mean (pre-scale)
  double signal_median_s = 40.0; ///< signal-wait lognormal median (pre-scale)
  double signal_mean_s = 43.5;   ///< signal-wait lognormal mean (pre-scale)
  double tail_weight = 0.06;
  double tail_scale_s = 150.0;   ///< parking Pareto onset (pre-scale)
  double tail_shape = 1.5;       ///< Pareto tail index (heavy: < 2)

  /// Per-vehicle heterogeneity: each vehicle scales the area law by
  /// LogNormal(-sigma^2/2, sigma) (unit mean), spanning calm to congested.
  double vehicle_sigma = 0.35;

  /// Stops-per-day model (Table 1 targets).
  double stops_per_day_mean = 10.0;
  double stops_per_day_std = 8.0;
  int days_recorded = 7;  ///< "driving data were recorded for one week"
};

/// The three NREL areas with paper-calibrated parameters.
AreaProfile california();
AreaProfile chicago();
AreaProfile atlanta();
std::vector<AreaProfile> all_areas();

/// The area-level stop-length distribution (before per-vehicle scaling),
/// rescaled so its mean equals profile.mean_stop_s.
dist::DistributionPtr area_stop_distribution(const AreaProfile& profile);

/// The same law rescaled to an arbitrary mean — the Figures 5/6 methodology
/// ("following the distribution of Chicago, but scaling its mean value").
dist::DistributionPtr scaled_stop_distribution(const AreaProfile& profile,
                                               double target_mean_s);

}  // namespace idlered::traces
