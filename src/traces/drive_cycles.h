// Standard regulatory drive cycles, reduced to their stop/idle phases.
//
// Certification cycles (NYCC, EPA UDDS, NEDC, WLTC) prescribe second-by-
// second speed traces; for idling-reduction studies only the stop phases
// matter. The tables here are *stylized* reductions calibrated to the
// published cycle summaries (total duration, idle fraction, stop count) —
// exact phase-by-phase transcription is not needed because the policies
// only consume stop lengths. They give the repository a deterministic,
// recognizable workload alongside the stochastic fleet generator.
#pragma once

#include <string>
#include <vector>

namespace idlered::traces {

struct DriveCycle {
  std::string name;
  double duration_s = 0.0;            ///< total cycle duration
  std::vector<double> stop_lengths_s; ///< idle phases, in cycle order

  double total_idle_s() const;
  double idle_fraction() const;       ///< total idle / duration
  std::size_t num_stops() const { return stop_lengths_s.size(); }
  double mean_stop_s() const;         ///< throws if the cycle has no stops
};

/// New York City Cycle: low-speed urban crawl, ~35% idle.
DriveCycle nycc();

/// EPA Urban Dynamometer Driving Schedule (FTP-75 urban phases), ~18% idle.
DriveCycle udds();

/// New European Driving Cycle (4x ECE-15 + EUDC), ~24% idle; the ECE-15
/// idle phases are fixed 11/21/21 s blocks by regulation.
DriveCycle nedc();

/// WLTC class 3 (worldwide harmonized), ~13% idle, longer and faster.
DriveCycle wltc3();

std::vector<DriveCycle> standard_cycles();

/// Stop sequence of `repeats` back-to-back cycles (a commute made of the
/// same certification loop).
std::vector<double> repeat_cycle(const DriveCycle& cycle, int repeats);

}  // namespace idlered::traces
