#include "traces/drive_cycles.h"

#include <numeric>
#include <stdexcept>

namespace idlered::traces {

double DriveCycle::total_idle_s() const {
  return std::accumulate(stop_lengths_s.begin(), stop_lengths_s.end(), 0.0);
}

double DriveCycle::idle_fraction() const {
  return duration_s > 0.0 ? total_idle_s() / duration_s : 0.0;
}

double DriveCycle::mean_stop_s() const {
  if (stop_lengths_s.empty())
    throw std::logic_error("DriveCycle::mean_stop_s: cycle has no stops");
  return total_idle_s() / static_cast<double>(stop_lengths_s.size());
}

DriveCycle nycc() {
  // 598 s total; published idle fraction ~35% (~210 s) across ~11 stops of
  // very uneven length — dense Manhattan stop-and-go.
  DriveCycle c;
  c.name = "NYCC";
  c.duration_s = 598.0;
  c.stop_lengths_s = {20.0, 14.0, 32.0, 9.0, 26.0, 17.0,
                      41.0, 12.0, 18.0, 11.0, 10.0};
  return c;
}

DriveCycle udds() {
  // 1369 s total; ~18% idle (~250 s) across 17 stops, mostly brief signal
  // waits with one long opening idle (cold start).
  DriveCycle c;
  c.name = "UDDS";
  c.duration_s = 1369.0;
  c.stop_lengths_s = {20.0, 19.0, 12.0, 24.0, 10.0, 21.0, 15.0, 9.0, 22.0,
                      13.0, 8.0,  17.0, 11.0, 14.0, 12.0, 16.0, 7.0};
  return c;
}

DriveCycle nedc() {
  // 1180 s total; ~24% idle. The urban part repeats the ECE-15 elementary
  // cycle four times; each repetition's idle phases are the regulation's
  // fixed 11 s / 21 s / 21 s / 16 s blocks, then the EUDC opens with 20 s.
  DriveCycle c;
  c.name = "NEDC";
  c.duration_s = 1180.0;
  for (int rep = 0; rep < 4; ++rep) {
    c.stop_lengths_s.insert(c.stop_lengths_s.end(),
                            {11.0, 21.0, 21.0, 16.0});
  }
  c.stop_lengths_s.push_back(20.0);
  return c;
}

DriveCycle wltc3() {
  // 1800 s total; ~13% idle (~226 s) across 9 stops — faster, more
  // transient cycle with fewer but longer waits.
  DriveCycle c;
  c.name = "WLTC-3";
  c.duration_s = 1800.0;
  c.stop_lengths_s = {18.0, 36.0, 22.0, 30.0, 14.0, 39.0, 21.0, 26.0, 20.0};
  return c;
}

std::vector<DriveCycle> standard_cycles() {
  return {nycc(), udds(), nedc(), wltc3()};
}

std::vector<double> repeat_cycle(const DriveCycle& cycle, int repeats) {
  if (repeats < 1)
    throw std::invalid_argument("repeat_cycle: repeats must be >= 1");
  std::vector<double> out;
  out.reserve(cycle.stop_lengths_s.size() * static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    out.insert(out.end(), cycle.stop_lengths_s.begin(),
               cycle.stop_lengths_s.end());
  }
  return out;
}

}  // namespace idlered::traces
