#include "traffic/intersection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace idlered::traffic {

IntersectionSimulator::IntersectionSimulator(const IntersectionConfig& config)
    : config_(config) {
  const SignalTiming& s = config.signal;
  if (!(s.cycle_s > 0.0) || !(s.green_s > 0.0) || s.green_s >= s.cycle_s)
    throw std::invalid_argument(
        "IntersectionSimulator: need 0 < green < cycle");
  if (config.arrival_rate_per_s <= 0.0)
    throw std::invalid_argument(
        "IntersectionSimulator: arrival rate must be > 0");
  if (config.saturation_headway_s <= 0.0)
    throw std::invalid_argument(
        "IntersectionSimulator: saturation headway must be > 0");
  if (config.startup_lost_time_s < 0.0)
    throw std::invalid_argument(
        "IntersectionSimulator: start-up lost time must be >= 0");
}

double IntersectionSimulator::utilization() const {
  const double green_ratio = config_.signal.green_s / config_.signal.cycle_s;
  const double capacity = green_ratio / config_.saturation_headway_s;
  return config_.arrival_rate_per_s / capacity;
}

bool IntersectionSimulator::is_green(double t) const {
  const double phase = std::fmod(t, config_.signal.cycle_s);
  return phase < config_.signal.green_s;
}

double IntersectionSimulator::next_departure_opportunity(double t) const {
  const double cycle = config_.signal.cycle_s;
  const double green = config_.signal.green_s;
  const double phase = std::fmod(t, cycle);
  if (phase < green) return t;  // already green: depart now
  // Red: wait for the start of the next green, plus start-up lost time
  // (this vehicle is at the head of the queue when the light turns).
  const double next_green_start = t - phase + cycle;
  return next_green_start + config_.startup_lost_time_s;
}

std::vector<double> IntersectionSimulator::simulate(double horizon_s,
                                                    util::Rng& rng) const {
  if (horizon_s <= 0.0)
    throw std::invalid_argument("simulate: horizon must be > 0");

  std::vector<double> stops;
  // `server_free_at` is when the last departing vehicle clears the stop
  // line; a following queued vehicle needs one saturation headway more.
  double server_free_at = 0.0;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(1.0 / config_.arrival_rate_per_s);
    if (t >= horizon_s) break;

    if (t >= server_free_at && is_green(t)) {
      // Free-flow passage: no queue ahead, light is green. The vehicle
      // occupies the stop line for one headway but does not stop.
      server_free_at = t + config_.saturation_headway_s;
      continue;
    }

    // The vehicle must queue: behind the previous vehicle's departure
    // (plus one discharge headway) and within a green phase.
    const double after_queue =
        std::max(t, server_free_at) +
        (t < server_free_at ? config_.saturation_headway_s : 0.0);
    double depart = next_departure_opportunity(after_queue);
    // Start-up lost time applies to the queue head at green onset; if the
    // vehicle departs mid-green behind others, next_departure_opportunity
    // already returned the unmodified time.
    depart = std::max(depart, t);
    server_free_at = depart;
    const double wait = depart - t;
    if (wait > 0.0) stops.push_back(wait);
  }
  return stops;
}

std::vector<double> simulate_corridor(const CorridorConfig& corridor,
                                      double horizon_s, util::Rng& rng) {
  if (corridor.intersections.empty())
    throw std::invalid_argument("simulate_corridor: no intersections");
  std::vector<double> pooled;
  for (std::size_t i = 0; i < corridor.intersections.size(); ++i) {
    IntersectionSimulator sim(corridor.intersections[i]);
    util::Rng fork = rng.fork(i);
    std::vector<double> stops = sim.simulate(horizon_s, fork);
    pooled.insert(pooled.end(), stops.begin(), stops.end());
  }
  return pooled;
}

}  // namespace idlered::traffic
