#include "traffic/microsim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

namespace idlered::traffic {

namespace {

struct Vehicle {
  int id = 0;
  double position_m = 0.0;  ///< front bumper
  double speed_mps = 0.0;
  bool stopped = false;     ///< currently inside a stop event
  double stop_start_s = 0.0;
};

double idm_acceleration(const IdmParams& p, double v, double gap,
                        double closing_speed) {
  const double v0 = p.desired_speed_mps;
  const double free_term = 1.0 - std::pow(v / v0, 4.0);
  if (gap == std::numeric_limits<double>::infinity()) {
    return p.max_accel_mps2 * free_term;
  }
  const double s_star =
      p.min_gap_m + v * p.time_headway_s +
      v * closing_speed /
          (2.0 * std::sqrt(p.max_accel_mps2 * p.comfort_decel_mps2));
  const double interaction = std::max(0.0, s_star) / std::max(gap, 0.1);
  return p.max_accel_mps2 * (free_term - interaction * interaction);
}

}  // namespace

MicroSimulator::MicroSimulator(const MicrosimConfig& config)
    : config_(config) {
  const SignalTiming& s = config.signal;
  if (!(s.cycle_s > 0.0) || !(s.green_s > 0.0) || s.green_s >= s.cycle_s)
    throw std::invalid_argument("MicroSimulator: need 0 < green < cycle");
  if (config.signal_position_m <= 0.0 ||
      config.signal_position_m >= config.road_length_m)
    throw std::invalid_argument(
        "MicroSimulator: signal must sit strictly inside the road");
  if (config.arrival_rate_per_s <= 0.0 || config.time_step_s <= 0.0)
    throw std::invalid_argument(
        "MicroSimulator: arrival rate and time step must be > 0");
  if (config.idm.desired_speed_mps <= 0.0 ||
      config.idm.max_accel_mps2 <= 0.0 ||
      config.idm.comfort_decel_mps2 <= 0.0)
    throw std::invalid_argument("MicroSimulator: invalid IDM parameters");
}

bool MicroSimulator::is_green(double t) const {
  return std::fmod(t, config_.signal.cycle_s) < config_.signal.green_s;
}

std::vector<StopEvent> MicroSimulator::run(double horizon_s,
                                           util::Rng& rng) const {
  if (horizon_s <= 0.0)
    throw std::invalid_argument("run: horizon must be > 0");

  std::vector<StopEvent> events;
  std::deque<Vehicle> road;  // front() is the most downstream vehicle
  double next_arrival =
      rng.exponential(1.0 / config_.arrival_rate_per_s);
  int next_id = 0;
  const double dt = config_.time_step_s;
  const IdmParams& idm = config_.idm;

  for (double t = 0.0; t < horizon_s; t += dt) {
    // Inject arrivals (if the entrance is clear).
    while (next_arrival <= t) {
      const bool entrance_clear =
          road.empty() ||
          road.back().position_m - idm.vehicle_length_m > idm.min_gap_m;
      if (entrance_clear) {
        Vehicle v;
        v.id = next_id++;
        v.position_m = 0.0;
        v.speed_mps = idm.desired_speed_mps * 0.8;
        road.push_back(v);
      }
      // If blocked, the arrival is dropped (demand exceeds entry capacity).
      next_arrival += rng.exponential(1.0 / config_.arrival_rate_per_s);
    }

    // Compute accelerations against each vehicle's effective leader.
    const bool green = is_green(t);
    std::vector<double> accel(road.size(), 0.0);
    for (std::size_t i = 0; i < road.size(); ++i) {
      Vehicle& v = road[i];
      double gap = std::numeric_limits<double>::infinity();
      double closing = 0.0;
      if (i > 0) {
        const Vehicle& leader = road[i - 1];
        gap = leader.position_m - idm.vehicle_length_m - v.position_m;
        closing = v.speed_mps - leader.speed_mps;
      }
      // A red signal ahead acts as a standing virtual leader at the line.
      if (!green && v.position_m < config_.signal_position_m) {
        const double signal_gap =
            config_.signal_position_m - v.position_m;
        if (signal_gap < gap) {
          gap = signal_gap;
          closing = v.speed_mps;
        }
      }
      accel[i] = idm_acceleration(idm, v.speed_mps, gap, closing);
    }

    // Integrate (ballistic update, clamped at v >= 0).
    for (std::size_t i = 0; i < road.size(); ++i) {
      Vehicle& v = road[i];
      const double v_new = std::max(0.0, v.speed_mps + accel[i] * dt);
      v.position_m += 0.5 * (v.speed_mps + v_new) * dt;
      v.speed_mps = v_new;

      // Stop-event bookkeeping.
      const bool at_rest = v.speed_mps < config_.stop_speed_mps;
      if (at_rest && !v.stopped) {
        v.stopped = true;
        v.stop_start_s = t;
      } else if (!at_rest && v.stopped) {
        v.stopped = false;
        events.push_back({v.id, v.stop_start_s, t - v.stop_start_s});
      }
    }

    // Retire vehicles that left the road.
    while (!road.empty() && road.front().position_m > config_.road_length_m) {
      if (road.front().stopped) {
        // Close the open stop at exit (cannot happen at positive speed,
        // but guard against the threshold edge).
        events.push_back({road.front().id, road.front().stop_start_s,
                          t - road.front().stop_start_s});
      }
      road.pop_front();
    }
  }
  return events;
}

std::vector<double> MicroSimulator::stop_durations(double horizon_s,
                                                   util::Rng& rng) const {
  std::vector<double> out;
  for (const StopEvent& e : run(horizon_s, rng)) {
    if (e.duration_s > 0.0) out.push_back(e.duration_s);
  }
  return out;
}

}  // namespace idlered::traffic
