// Microscopic single-lane traffic simulation (Intelligent Driver Model).
//
// The most mechanistic stop-length source in the repository: vehicles with
// IDM car-following dynamics drive a single-lane road through a fixed-cycle
// traffic signal; stop events are detected from the simulated trajectories
// (speed below a threshold) rather than prescribed by any distribution.
// Queue build-up, start-up waves, and multi-cycle spillback — the phenomena
// that give real stop-length data its shape — emerge from the dynamics.
//
//   IDM acceleration:
//     dv/dt = a [ 1 - (v/v0)^4 - (s*(v, dv)/s)^2 ]
//     s*(v, dv) = s0 + v T + v dv / (2 sqrt(a b))
//
// with s the bumper-to-bumper gap to the leader and dv the closing speed.
// A red signal is modeled as a standing virtual leader at the stop line.
#pragma once

#include <vector>

#include "traffic/intersection.h"
#include "util/random.h"

namespace idlered::traffic {

struct IdmParams {
  double desired_speed_mps = 13.9;   ///< v0 (~50 km/h urban)
  double time_headway_s = 1.5;       ///< T
  double min_gap_m = 2.0;            ///< s0
  double max_accel_mps2 = 1.5;       ///< a
  double comfort_decel_mps2 = 2.0;   ///< b
  double vehicle_length_m = 5.0;
};

struct MicrosimConfig {
  IdmParams idm;
  SignalTiming signal;                 ///< one signal on the road
  double signal_position_m = 600.0;
  double road_length_m = 1200.0;
  double arrival_rate_per_s = 0.10;    ///< Poisson injections at x = 0
  double time_step_s = 0.5;
  double stop_speed_mps = 0.3;         ///< below this counts as stopped
};

/// One detected stop event.
struct StopEvent {
  int vehicle = 0;        ///< injection index
  double start_s = 0.0;   ///< simulation time the vehicle came to rest
  double duration_s = 0.0;
};

class MicroSimulator {
 public:
  explicit MicroSimulator(const MicrosimConfig& config);

  /// Run `horizon_s` seconds; returns every completed stop event.
  std::vector<StopEvent> run(double horizon_s, util::Rng& rng) const;

  /// Convenience: just the stop durations (the policies' input).
  std::vector<double> stop_durations(double horizon_s, util::Rng& rng) const;

  const MicrosimConfig& config() const { return config_; }

  /// Signal state at absolute time t (cycle starts green at t = 0).
  bool is_green(double t) const;

 private:
  MicrosimConfig config_;
};

}  // namespace idlered::traffic
