#include "traffic/arterial.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace idlered::traffic {

ArterialConfig green_wave(int num_intersections, double cycle_s,
                          double green_s, double link_travel_s) {
  if (num_intersections < 1)
    throw std::invalid_argument("green_wave: need >= 1 intersection");
  ArterialConfig c;
  c.signal.cycle_s = cycle_s;
  c.signal.green_s = green_s;
  c.link_travel_s = link_travel_s;
  c.offsets_s.reserve(static_cast<std::size_t>(num_intersections));
  for (int i = 0; i < num_intersections; ++i) {
    c.offsets_s.push_back(std::fmod(link_travel_s * i, cycle_s));
  }
  return c;
}

ArterialConfig uncoordinated(int num_intersections, double cycle_s,
                             double green_s, double link_travel_s,
                             util::Rng& rng) {
  ArterialConfig c = green_wave(num_intersections, cycle_s, green_s,
                                link_travel_s);
  for (double& offset : c.offsets_s) {
    offset = rng.uniform(0.0, cycle_s);
  }
  return c;
}

ArterialSimulator::ArterialSimulator(const ArterialConfig& config)
    : config_(config) {
  const SignalTiming& s = config.signal;
  if (!(s.cycle_s > 0.0) || !(s.green_s > 0.0) || s.green_s >= s.cycle_s)
    throw std::invalid_argument("ArterialSimulator: need 0 < green < cycle");
  if (config.offsets_s.empty())
    throw std::invalid_argument("ArterialSimulator: need >= 1 intersection");
  if (config.link_travel_s <= 0.0)
    throw std::invalid_argument("ArterialSimulator: link time must be > 0");
  if (config.link_sigma < 0.0 || config.queue_delay_s < 0.0)
    throw std::invalid_argument("ArterialSimulator: noise params must be >= 0");
}

double ArterialSimulator::signal_wait(double t, double offset) const {
  const double cycle = config_.signal.cycle_s;
  const double phase = std::fmod(std::fmod(t - offset, cycle) + cycle, cycle);
  if (phase < config_.signal.green_s) return 0.0;  // green
  return cycle - phase;  // time until the next green onset
}

std::vector<double> ArterialSimulator::simulate_trip(util::Rng& rng) const {
  std::vector<double> stops;
  double t = rng.uniform(0.0, config_.signal.cycle_s);
  for (double offset : config_.offsets_s) {
    double wait = signal_wait(t, offset);
    if (wait > 0.0) {
      // Red arrival: queued vehicles ahead add discharge delay.
      if (config_.queue_delay_s > 0.0) {
        wait += rng.exponential(config_.queue_delay_s);
      }
      stops.push_back(wait);
      t += wait;
    }
    // Drive the link to the next intersection.
    const double sigma = config_.link_sigma;
    const double factor =
        sigma > 0.0 ? rng.lognormal(-0.5 * sigma * sigma, sigma) : 1.0;
    t += config_.link_travel_s * factor;
  }
  return stops;
}

sim::StopTrace ArterialSimulator::simulate_vehicle(
    const std::string& vehicle_id, int num_trips, util::Rng& rng) const {
  if (num_trips < 1)
    throw std::invalid_argument("simulate_vehicle: need >= 1 trip");
  sim::StopTrace trace;
  trace.vehicle_id = vehicle_id;
  trace.area = "Arterial";
  for (int trip = 0; trip < num_trips; ++trip) {
    const auto stops = simulate_trip(rng);
    trace.stops.insert(trace.stops.end(), stops.begin(), stops.end());
  }
  return trace;
}

sim::Fleet ArterialSimulator::simulate_fleet(int num_vehicles, int num_trips,
                                             util::Rng& rng) const {
  if (num_vehicles < 1)
    throw std::invalid_argument("simulate_fleet: need >= 1 vehicle");
  sim::Fleet fleet;
  fleet.reserve(static_cast<std::size_t>(num_vehicles));
  for (int v = 0; v < num_vehicles; ++v) {
    std::ostringstream id;
    id << "arterial-" << v;
    util::Rng vehicle_rng = rng.fork(static_cast<std::uint64_t>(v));
    fleet.push_back(simulate_vehicle(id.str(), num_trips, vehicle_rng));
  }
  return fleet;
}

}  // namespace idlered::traffic
