// Signalized-intersection stop generator — a mechanistic substrate for stop
// lengths, complementing the statistical NREL-like generator in src/traces.
//
// Model: a fixed-cycle traffic signal (green G out of cycle C) with Poisson
// vehicle arrivals. During red, arrivals queue; during green, the queue
// discharges one vehicle per saturation headway after a start-up lost time.
// A vehicle's stop length is the time from joining the queue until it
// departs. Vehicles that sail through on green without queuing produce no
// stop. Under heavy demand the queue spills across cycles, producing the
// multi-cycle waits that give real stop-length data its heavy tail — the
// phenomenon the paper's algorithms exploit.
#pragma once

#include <vector>

#include "util/random.h"

namespace idlered::traffic {

struct SignalTiming {
  double cycle_s = 90.0;  ///< full signal cycle
  double green_s = 45.0;  ///< effective green per cycle (rest is red)
};

struct IntersectionConfig {
  SignalTiming signal;
  double arrival_rate_per_s = 0.10;   ///< Poisson vehicle arrivals
  double saturation_headway_s = 2.0;  ///< per-vehicle discharge headway
  double startup_lost_time_s = 2.0;   ///< first-vehicle start-up delay
};

class IntersectionSimulator {
 public:
  explicit IntersectionSimulator(const IntersectionConfig& config);

  /// Simulate `horizon_s` seconds of operation and return the stop length
  /// of every vehicle that had to stop (strictly positive durations).
  std::vector<double> simulate(double horizon_s, util::Rng& rng) const;

  /// Demand / capacity ratio (rho). Queues are stable for rho < 1; above 1
  /// stops grow without bound over the horizon.
  double utilization() const;

  const IntersectionConfig& config() const { return config_; }

 private:
  /// Is absolute time t inside a green phase? (Cycle starts green at 0.)
  bool is_green(double t) const;

  /// Earliest time >= t at which a queued vehicle may depart, honouring
  /// green phases and start-up lost time.
  double next_departure_opportunity(double t) const;

  IntersectionConfig config_;
};

/// A corridor of independent intersections: a vehicle driving through
/// encounters each intersection's stop process in turn. Returns the pooled
/// stop-length sample (the stop-length *law* of the corridor, not a
/// per-vehicle trajectory).
struct CorridorConfig {
  std::vector<IntersectionConfig> intersections;
};

std::vector<double> simulate_corridor(const CorridorConfig& corridor,
                                      double horizon_s, util::Rng& rng);

}  // namespace idlered::traffic
