// Arterial corridor simulation: per-vehicle trips through a chain of
// coordinated signalized intersections.
//
// Unlike IntersectionSimulator (which yields the pooled stop-length *law*
// of one approach), this model tracks individual vehicles driving the whole
// corridor, so it produces per-vehicle stop *traces* — the same shape as
// the NREL data — from a mechanistic model: signal cycles with per-
// intersection offsets (green waves), travel times between intersections,
// and queue-induced extra delay. It is deliberately mesoscopic: each
// intersection delays a vehicle by its signal phase at arrival plus a
// queueing term, which is the level of detail the idling analysis needs.
#pragma once

#include <vector>

#include "sim/trace.h"
#include "traffic/intersection.h"
#include "util/random.h"

namespace idlered::traffic {

struct ArterialConfig {
  /// Common signal timing (coordinated corridors share one cycle length).
  SignalTiming signal;
  /// Green-phase start offset of each intersection within the cycle,
  /// seconds; size determines the number of intersections.
  std::vector<double> offsets_s;
  /// Mean free-flow travel time between consecutive intersections.
  double link_travel_s = 60.0;
  /// Travel-time noise (lognormal sigma on the link time).
  double link_sigma = 0.25;
  /// Background congestion: mean queue-discharge delay added to a red
  /// arrival (seconds; exponential). Models vehicles already queued.
  double queue_delay_s = 8.0;
};

/// A coordinated "green wave": offsets advance by the link travel time, so
/// a vehicle driving at free flow mostly hits green.
ArterialConfig green_wave(int num_intersections, double cycle_s,
                          double green_s, double link_travel_s);

/// Uncoordinated corridor: independent random offsets.
ArterialConfig uncoordinated(int num_intersections, double cycle_s,
                             double green_s, double link_travel_s,
                             util::Rng& rng);

class ArterialSimulator {
 public:
  explicit ArterialSimulator(const ArterialConfig& config);

  /// Drive one vehicle through the corridor, starting at a uniformly
  /// random time in the cycle; returns its stops (may be empty if every
  /// light was green).
  std::vector<double> simulate_trip(util::Rng& rng) const;

  /// A week of trips for one vehicle (trips_per_day trips each day),
  /// flattened into a StopTrace.
  sim::StopTrace simulate_vehicle(const std::string& vehicle_id,
                                  int num_trips, util::Rng& rng) const;

  /// A fleet of `num_vehicles`, `num_trips` corridor runs each.
  sim::Fleet simulate_fleet(int num_vehicles, int num_trips,
                            util::Rng& rng) const;

  const ArterialConfig& config() const { return config_; }

 private:
  /// Red-phase wait (0 if green) for an arrival at absolute time t at the
  /// intersection with the given offset.
  double signal_wait(double t, double offset) const;

  ArterialConfig config_;
};

}  // namespace idlered::traffic
