#include "robust/fallback.h"

#include <stdexcept>

namespace idlered::robust {

std::string to_string(ControllerMode mode) {
  switch (mode) {
    case ControllerMode::kProposed: return "COA";
    case ControllerMode::kDet: return "DET";
    case ControllerMode::kNRand: return "N-Rand";
    case ControllerMode::kNev: return "NEV";
  }
  return "unknown";
}

ControllerMode select_mode(const LadderInputs& in) {
  if (in.soc_low || in.actuator_suspect) return ControllerMode::kNev;
  switch (in.health) {
    case HealthState::kCritical: return ControllerMode::kNRand;
    case HealthState::kDegraded: return ControllerMode::kDet;
    case HealthState::kHealthy:
      return in.warmed_up ? ControllerMode::kProposed : ControllerMode::kNRand;
  }
  return ControllerMode::kNRand;
}

void RobustConfig::validate() const {
  guard.validate();
  health.validate();
  if (!(soc_resume_margin >= 0.0) || soc_resume_margin > 1.0)
    throw std::invalid_argument(
        "RobustConfig: soc_resume_margin must be in [0, 1]");
}

}  // namespace idlered::robust
