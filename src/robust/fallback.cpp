#include "robust/fallback.h"

#include <stdexcept>
#include <vector>

#include "costmodel/multislope_policy.h"
#include "util/contracts.h"

namespace idlered::robust {

std::string to_string(ControllerMode mode) {
  switch (mode) {
    case ControllerMode::kProposed: return "COA";
    case ControllerMode::kDet: return "DET";
    case ControllerMode::kNRand: return "N-Rand";
    case ControllerMode::kNev: return "NEV";
  }
  return "unknown";
}

ControllerMode select_mode(const LadderInputs& in) {
  if (in.soc_low || in.actuator_suspect) return ControllerMode::kNev;
  switch (in.health) {
    case HealthState::kCritical: return ControllerMode::kNRand;
    case HealthState::kDegraded: return ControllerMode::kDet;
    case HealthState::kHealthy:
      return in.warmed_up ? ControllerMode::kProposed : ControllerMode::kNRand;
  }
  return ControllerMode::kNRand;
}

core::PolicyPtr multislope_policy_for_mode(
    ControllerMode mode, const costmodel::SlopeProfile& profile,
    std::span<const dist::ShortStopStats> transition_stats) {
  switch (mode) {
    case ControllerMode::kProposed: {
      IDLERED_EXPECTS(
          transition_stats.size() == profile.num_transitions(),
          "multislope_policy_for_mode: the COA rung needs one stats entry "
          "per transition");
      return costmodel::make_ms_coa(
          profile, std::vector<dist::ShortStopStats>(transition_stats.begin(),
                                                     transition_stats.end()));
    }
    case ControllerMode::kDet: return costmodel::make_ms_det(profile);
    case ControllerMode::kNRand: return costmodel::make_ms_rand(profile);
    case ControllerMode::kNev: return costmodel::make_ms_nev(profile);
  }
  throw std::invalid_argument("multislope_policy_for_mode: unknown mode");
}

void RobustConfig::validate() const {
  guard.validate();
  health.validate();
  if (!(soc_resume_margin >= 0.0) || soc_resume_margin > 1.0)
    throw std::invalid_argument(
        "RobustConfig: soc_resume_margin must be in [0, 1]");
}

}  // namespace idlered::robust
