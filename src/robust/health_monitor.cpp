#include "robust/health_monitor.h"

#include <cmath>
#include <stdexcept>

#include "core/analytic.h"

namespace idlered::robust {

std::string to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kCritical: return "critical";
  }
  return "unknown";
}

void HealthConfig::validate() const {
  const double rates[] = {ewma_alpha,     degraded_enter, degraded_exit,
                          critical_enter, critical_exit,  actuator_enter,
                          actuator_exit};
  for (double r : rates)
    if (!(r > 0.0) || r > 1.0)
      throw std::invalid_argument("HealthConfig: rates must be in (0, 1]");
  if (degraded_exit >= degraded_enter || critical_exit >= critical_enter ||
      actuator_exit >= actuator_enter)
    throw std::invalid_argument(
        "HealthConfig: each exit threshold must lie below its enter "
        "threshold (hysteresis band)");
  if (degraded_enter >= critical_enter)
    throw std::invalid_argument(
        "HealthConfig: degraded_enter must lie below critical_enter");
  if (!(b_det_margin > 0.0) || b_det_margin > 1.0)
    throw std::invalid_argument("HealthConfig: b_det_margin must be in (0, 1]");
}

HealthMonitor::HealthMonitor(const HealthConfig& config) : config_(config) {
  config_.validate();
}

void HealthMonitor::record_observation(bool anomalous) {
  anomaly_rate_ = (1.0 - config_.ewma_alpha) * anomaly_rate_ +
                  config_.ewma_alpha * (anomalous ? 1.0 : 0.0);
  // Two-threshold state machine; one level of movement per observation so a
  // single outlier never jumps Healthy -> Critical.
  switch (state_) {
    case HealthState::kHealthy:
      if (anomaly_rate_ > config_.degraded_enter)
        state_ = HealthState::kDegraded;
      break;
    case HealthState::kDegraded:
      if (anomaly_rate_ > config_.critical_enter)
        state_ = HealthState::kCritical;
      else if (anomaly_rate_ < config_.degraded_exit)
        state_ = HealthState::kHealthy;
      break;
    case HealthState::kCritical:
      if (anomaly_rate_ < config_.critical_exit)
        state_ = HealthState::kDegraded;
      break;
  }
}

void HealthMonitor::record_restart(bool clean) {
  restart_failure_rate_ = (1.0 - config_.ewma_alpha) * restart_failure_rate_ +
                          config_.ewma_alpha * (clean ? 0.0 : 1.0);
  if (actuator_suspect_) {
    if (restart_failure_rate_ < config_.actuator_exit)
      actuator_suspect_ = false;
  } else if (restart_failure_rate_ > config_.actuator_enter) {
    actuator_suspect_ = true;
  }
}

bool trust_b_det(const dist::ShortStopStats& stats, double break_even,
                 double margin) {
  if (!(margin > 0.0) || margin > 1.0)
    throw std::invalid_argument("trust_b_det: margin must be in (0, 1]");
  const double q = stats.q_b_plus;
  if (q <= 0.0 || q >= 1.0) return false;  // b* undefined at the extremes
  const double lhs = stats.mu_b_minus / break_even;
  const double rhs = margin * (1.0 - q) * (1.0 - q) / q;
  if (!(lhs < rhs)) return false;
  const double b_star = core::b_det_optimal_threshold(stats, break_even);
  return b_star > 0.0 && b_star < break_even;
}

}  // namespace idlered::robust
