#include "robust/health_monitor.h"

#include <cmath>
#include <stdexcept>

#include "core/analytic.h"
#include "obs/obs.h"

namespace idlered::robust {

namespace {

// Trace every state-machine edge at its source, so the event stream stays
// complete no matter which controller (or test harness) drives the
// monitor. The transition history itself is a plain feature and is kept
// even when obs is compiled out.
void trace_transition([[maybe_unused]] const char* kind,
                      [[maybe_unused]] std::uint64_t at,
                      [[maybe_unused]] const std::string& from,
                      [[maybe_unused]] const std::string& to,
                      [[maybe_unused]] double rate) {
  IDLERED_COUNT("robust.health.transitions");
  IDLERED_OBS_ONLY(if (obs::enabled()) {
    util::JsonValue ev = util::JsonValue::object();
    ev.set("type", "health_transition");
    ev.set("kind", kind);
    ev.set("at", static_cast<double>(at));
    ev.set("from", from);
    ev.set("to", to);
    ev.set("rate", rate);
    obs::recorder().emit(std::move(ev));
  })
}

// Bounded-history push: drop the oldest entry once the log is at the cap.
// Hysteresis makes transitions rare, so the O(cap) shift per overflowing
// push is noise; what matters for an always-on service is that the vector
// never grows past the cap.
template <typename T>
void push_bounded(std::vector<T>& log, T entry, std::size_t cap) {
  if (cap > 0 && log.size() >= cap)
    log.erase(log.begin(), log.begin() + static_cast<std::ptrdiff_t>(
                                             log.size() - cap + 1));
  log.push_back(std::move(entry));
}

}  // namespace

std::string to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kCritical: return "critical";
  }
  return "unknown";
}

void HealthConfig::validate() const {
  const double rates[] = {ewma_alpha,     degraded_enter, degraded_exit,
                          critical_enter, critical_exit,  actuator_enter,
                          actuator_exit};
  for (double r : rates)
    if (!(r > 0.0) || r > 1.0)
      throw std::invalid_argument("HealthConfig: rates must be in (0, 1]");
  if (degraded_exit >= degraded_enter || critical_exit >= critical_enter ||
      actuator_exit >= actuator_enter)
    throw std::invalid_argument(
        "HealthConfig: each exit threshold must lie below its enter "
        "threshold (hysteresis band)");
  if (degraded_enter >= critical_enter)
    throw std::invalid_argument(
        "HealthConfig: degraded_enter must lie below critical_enter");
  if (!(b_det_margin > 0.0) || b_det_margin > 1.0)
    throw std::invalid_argument("HealthConfig: b_det_margin must be in (0, 1]");
}

HealthMonitor::HealthMonitor(const HealthConfig& config) : config_(config) {
  config_.validate();
}

void HealthMonitor::record_observation(bool anomalous) {
  ++observations_;
  anomaly_rate_ = (1.0 - config_.ewma_alpha) * anomaly_rate_ +
                  config_.ewma_alpha * (anomalous ? 1.0 : 0.0);
  // Two-threshold state machine; one level of movement per observation so a
  // single outlier never jumps Healthy -> Critical.
  const HealthState before = state_;
  switch (state_) {
    case HealthState::kHealthy:
      if (anomaly_rate_ > config_.degraded_enter)
        state_ = HealthState::kDegraded;
      break;
    case HealthState::kDegraded:
      if (anomaly_rate_ > config_.critical_enter)
        state_ = HealthState::kCritical;
      else if (anomaly_rate_ < config_.degraded_exit)
        state_ = HealthState::kHealthy;
      break;
    case HealthState::kCritical:
      if (anomaly_rate_ < config_.critical_exit)
        state_ = HealthState::kDegraded;
      break;
  }
  if (state_ != before) {
    ++total_transitions_;
    push_bounded(transitions_,
                 Transition{observations_, before, state_, anomaly_rate_},
                 config_.max_history);
    trace_transition("state", observations_, to_string(before),
                     to_string(state_), anomaly_rate_);
  }
}

void HealthMonitor::record_restart(bool clean) {
  ++restarts_;
  restart_failure_rate_ = (1.0 - config_.ewma_alpha) * restart_failure_rate_ +
                          config_.ewma_alpha * (clean ? 0.0 : 1.0);
  const bool before = actuator_suspect_;
  if (actuator_suspect_) {
    if (restart_failure_rate_ < config_.actuator_exit)
      actuator_suspect_ = false;
  } else if (restart_failure_rate_ > config_.actuator_enter) {
    actuator_suspect_ = true;
  }
  if (actuator_suspect_ != before) {
    ++total_actuator_transitions_;
    push_bounded(actuator_transitions_,
                 ActuatorTransition{restarts_, actuator_suspect_,
                                    restart_failure_rate_},
                 config_.max_history);
    trace_transition("actuator", restarts_, before ? "suspect" : "ok",
                     actuator_suspect_ ? "suspect" : "ok",
                     restart_failure_rate_);
  }
}

bool trust_b_det(const dist::ShortStopStats& stats, double break_even,
                 double margin) {
  if (!(margin > 0.0) || margin > 1.0)
    throw std::invalid_argument("trust_b_det: margin must be in (0, 1]");
  const double q = stats.q_b_plus;
  if (q <= 0.0 || q >= 1.0) return false;  // b* undefined at the extremes
  const double lhs = stats.mu_b_minus / break_even;
  const double rhs = margin * (1.0 - q) * (1.0 - q) / q;
  if (!(lhs < rhs)) return false;
  const double b_star = core::b_det_optimal_threshold(stats, break_even);
  return b_star > 0.0 && b_star < break_even;
}

}  // namespace idlered::robust
