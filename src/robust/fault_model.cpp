#include "robust/fault_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace idlered::robust {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kAdditiveNoise: return "additive-noise";
    case FaultKind::kMultiplicativeNoise: return "multiplicative-noise";
    case FaultKind::kQuantization: return "quantization";
    case FaultKind::kStuckAt: return "stuck-at";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kNanGlitch: return "nan-glitch";
    case FaultKind::kNegativeGlitch: return "negative-glitch";
    case FaultKind::kActuationDelay: return "actuation-delay";
    case FaultKind::kRestartFailure: return "restart-failure";
  }
  return "unknown";
}

FaultProfile FaultProfile::scaled(double rate) {
  if (!(rate >= 0.0) || rate > 1.0)
    throw std::invalid_argument("FaultProfile: rate must be in [0, 1]");
  FaultProfile p;
  p.additive_noise_prob = 0.20 * rate;
  p.multiplicative_noise_prob = 0.10 * rate;
  p.quantization_prob = 0.10 * rate;
  p.stuck_prob = 0.10 * rate;
  p.drop_prob = 0.10 * rate;
  p.nan_prob = 0.20 * rate;
  p.negative_prob = 0.20 * rate;
  p.actuation_delay_prob = 0.5 * rate;
  p.restart_failure_prob = 0.25 * rate;
  return p;
}

void FaultProfile::validate() const {
  const double probs[] = {additive_noise_prob, multiplicative_noise_prob,
                          quantization_prob,   stuck_prob,
                          stuck_release_prob,  drop_prob,
                          nan_prob,            negative_prob,
                          actuation_delay_prob, restart_failure_prob};
  for (double p : probs)
    if (!(p >= 0.0) || p > 1.0)
      throw std::invalid_argument(
          "FaultProfile: probabilities must be in [0, 1]");
  const double mass = additive_noise_prob + multiplicative_noise_prob +
                      quantization_prob + stuck_prob + drop_prob + nan_prob +
                      negative_prob;
  if (mass > 1.0 + 1e-12)
    throw std::invalid_argument(
        "FaultProfile: measurement-fault probabilities must sum to <= 1");
  if (!(additive_noise_sd_s >= 0.0) || !(multiplicative_noise_sd >= 0.0) ||
      !(quantization_step_s > 0.0) || !(actuation_delay_s >= 0.0))
    throw std::invalid_argument(
        "FaultProfile: severities must be nonnegative (quantization step "
        "> 0)");
  if (restart_failure_attempts < 1)
    throw std::invalid_argument(
        "FaultProfile: restart_failure_attempts must be >= 1");
}

FaultInjector::FaultInjector(const FaultProfile& profile, std::uint64_t seed)
    : profile_(profile), root_(seed) {
  profile_.validate();
}

SensorReading FaultInjector::corrupt(double true_length) {
  // Per-index child stream: the draws for stop i never depend on how many
  // draws stop i-1 consumed, so schedules are stable under profile edits.
  util::Rng rng = root_.fork(index_);
  ++index_;

  SensorReading r;
  r.value = true_length;

  // Stuck state resolves first: while stuck, the sensor repeats the held
  // value no matter what the vehicle does.
  if (stuck_) {
    if (rng.bernoulli(profile_.stuck_release_prob)) {
      stuck_ = false;
    } else {
      r.value = stuck_value_;
      r.fault = FaultKind::kStuckAt;
    }
  }

  if (r.fault == FaultKind::kNone) {
    // One categorical draw selects at most one measurement fault.
    double u = rng.uniform();
    const auto take = [&u](double p) {
      if (u < p) return true;
      u -= p;
      return false;
    };
    if (take(profile_.additive_noise_prob)) {
      r.fault = FaultKind::kAdditiveNoise;
      r.value = std::max(0.0, true_length +
                                  rng.normal(0.0, profile_.additive_noise_sd_s));
    } else if (take(profile_.multiplicative_noise_prob)) {
      r.fault = FaultKind::kMultiplicativeNoise;
      r.value = true_length *
                std::max(0.0, 1.0 + rng.normal(0.0,
                                               profile_.multiplicative_noise_sd));
    } else if (take(profile_.quantization_prob)) {
      r.fault = FaultKind::kQuantization;
      r.value = std::round(true_length / profile_.quantization_step_s) *
                profile_.quantization_step_s;
    } else if (take(profile_.stuck_prob)) {
      r.fault = FaultKind::kStuckAt;
      stuck_ = true;
      stuck_value_ = true_length;  // the sensor freezes on this reading
    } else if (take(profile_.drop_prob)) {
      r.fault = FaultKind::kDrop;
      r.dropped = true;
    } else if (take(profile_.nan_prob)) {
      r.fault = FaultKind::kNanGlitch;
      r.value = std::numeric_limits<double>::quiet_NaN();
    } else if (take(profile_.negative_prob)) {
      r.fault = FaultKind::kNegativeGlitch;
      r.value = -(1.0 + true_length);
    }
  }

  if (rng.bernoulli(profile_.actuation_delay_prob)) {
    r.actuation_delay_s = profile_.actuation_delay_s;
  }
  if (rng.bernoulli(profile_.restart_failure_prob)) {
    r.restart_attempts = profile_.restart_failure_attempts;
  }

  ++counts_[static_cast<std::size_t>(r.fault)];
  if (r.actuation_delay_s > 0.0)
    ++counts_[static_cast<std::size_t>(FaultKind::kActuationDelay)];
  if (r.restart_attempts > 1)
    ++counts_[static_cast<std::size_t>(FaultKind::kRestartFailure)];
  if (r.fault != FaultKind::kNone || r.actuation_delay_s > 0.0 ||
      r.restart_attempts > 1)
    ++faulted_stops_;
  return r;
}

std::vector<SensorReading> FaultInjector::corrupt_stream(
    const std::vector<double>& stops) {
  std::vector<SensorReading> out;
  out.reserve(stops.size());
  for (double y : stops) out.push_back(corrupt(y));
  return out;
}

}  // namespace idlered::robust
