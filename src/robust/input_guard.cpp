#include "robust/input_guard.h"

#include <cmath>
#include <stdexcept>

namespace idlered::robust {

void GuardConfig::validate() const {
  if (!(min_stop_s >= 0.0) || !std::isfinite(min_stop_s))
    throw std::invalid_argument("GuardConfig: min_stop_s must be >= 0");
  if (!(max_stop_s > min_stop_s))
    throw std::invalid_argument("GuardConfig: max_stop_s must exceed min_stop_s");
}

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccept: return "accept";
    case Verdict::kRejectNonFinite: return "reject-non-finite";
    case Verdict::kRejectNegative: return "reject-negative";
    case Verdict::kRejectOutOfRange: return "reject-out-of-range";
    case Verdict::kRejectStuck: return "reject-stuck";
    case Verdict::kRejectOutOfOrder: return "reject-out-of-order";
  }
  return "unknown";
}

InputGuard::InputGuard(const GuardConfig& config) : config_(config) {
  config_.validate();
}

Verdict InputGuard::check(double reading) const {
  if (!std::isfinite(reading)) return Verdict::kRejectNonFinite;
  if (reading < 0.0) return Verdict::kRejectNegative;
  // Stuck wins over out-of-range: a sensor frozen on an implausible value
  // is still frozen, and "stuck" is the more actionable diagnosis.
  if (config_.stuck_run_limit > 0 && run_length_ >= config_.stuck_run_limit &&
      reading == last_value_)
    return Verdict::kRejectStuck;
  if (reading < config_.min_stop_s || reading > config_.max_stop_s)
    return Verdict::kRejectOutOfRange;
  return Verdict::kAccept;
}

Verdict InputGuard::check(double reading, double timestamp) const {
  const Verdict value_verdict = check(reading);
  if (value_verdict != Verdict::kAccept) return value_verdict;
  if (!std::isfinite(timestamp)) return Verdict::kRejectOutOfOrder;
  if (has_timestamp_ && timestamp <= last_timestamp_)
    return Verdict::kRejectOutOfOrder;
  return Verdict::kAccept;
}

void InputGuard::record(Verdict v, double reading) {
  switch (v) {
    case Verdict::kAccept: ++counts_.accepted; break;
    case Verdict::kRejectNonFinite: ++counts_.non_finite; break;
    case Verdict::kRejectNegative: ++counts_.negative; break;
    case Verdict::kRejectOutOfRange: ++counts_.out_of_range; break;
    case Verdict::kRejectStuck: ++counts_.stuck; break;
    case Verdict::kRejectOutOfOrder: ++counts_.out_of_order; break;
  }
  // The frozen-sensor tracker sees every finite reading, rejected or not:
  // a sensor stuck on an out-of-range value is still stuck.
  if (std::isfinite(reading)) {
    if (run_length_ > 0 && reading == last_value_) {
      ++run_length_;
    } else {
      last_value_ = reading;
      run_length_ = 1;
    }
  } else {
    run_length_ = 0;
  }
}

Verdict InputGuard::admit(double reading) {
  const Verdict v = check(reading);
  record(v, reading);
  return v;
}

Verdict InputGuard::admit(double reading, double timestamp) {
  const Verdict v = check(reading, timestamp);
  record(v, reading);
  if (v == Verdict::kAccept) {
    last_timestamp_ = timestamp;
    has_timestamp_ = true;
  }
  return v;
}

InputGuard::State InputGuard::state() const {
  State s;
  s.counts = counts_;
  s.last_value = last_value_;
  s.run_length = run_length_;
  s.last_timestamp = last_timestamp_;
  s.has_timestamp = has_timestamp_;
  return s;
}

void InputGuard::restore(const State& state) {
  counts_ = state.counts;
  last_value_ = state.last_value;
  run_length_ = state.run_length;
  last_timestamp_ = state.last_timestamp;
  has_timestamp_ = state.has_timestamp;
}

void InputGuard::note_drop() { ++counts_.dropped; }

double InputGuard::anomaly_fraction() const {
  const std::size_t total = counts_.total();
  if (total == 0) return 0.0;
  return static_cast<double>(counts_.anomalies()) / static_cast<double>(total);
}

}  // namespace idlered::robust
