#include "robust/input_guard.h"

#include <cmath>
#include <stdexcept>

namespace idlered::robust {

void GuardConfig::validate() const {
  if (!(min_stop_s >= 0.0) || !std::isfinite(min_stop_s))
    throw std::invalid_argument("GuardConfig: min_stop_s must be >= 0");
  if (!(max_stop_s > min_stop_s))
    throw std::invalid_argument("GuardConfig: max_stop_s must exceed min_stop_s");
}

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kAccept: return "accept";
    case Verdict::kRejectNonFinite: return "reject-non-finite";
    case Verdict::kRejectNegative: return "reject-negative";
    case Verdict::kRejectOutOfRange: return "reject-out-of-range";
    case Verdict::kRejectStuck: return "reject-stuck";
  }
  return "unknown";
}

InputGuard::InputGuard(const GuardConfig& config) : config_(config) {
  config_.validate();
}

Verdict InputGuard::check(double reading) const {
  if (!std::isfinite(reading)) return Verdict::kRejectNonFinite;
  if (reading < 0.0) return Verdict::kRejectNegative;
  // Stuck wins over out-of-range: a sensor frozen on an implausible value
  // is still frozen, and "stuck" is the more actionable diagnosis.
  if (config_.stuck_run_limit > 0 && run_length_ >= config_.stuck_run_limit &&
      reading == last_value_)
    return Verdict::kRejectStuck;
  if (reading < config_.min_stop_s || reading > config_.max_stop_s)
    return Verdict::kRejectOutOfRange;
  return Verdict::kAccept;
}

Verdict InputGuard::admit(double reading) {
  const Verdict v = check(reading);
  switch (v) {
    case Verdict::kAccept: ++counts_.accepted; break;
    case Verdict::kRejectNonFinite: ++counts_.non_finite; break;
    case Verdict::kRejectNegative: ++counts_.negative; break;
    case Verdict::kRejectOutOfRange: ++counts_.out_of_range; break;
    case Verdict::kRejectStuck: ++counts_.stuck; break;
  }
  // The frozen-sensor tracker sees every finite reading, rejected or not:
  // a sensor stuck on an out-of-range value is still stuck.
  if (std::isfinite(reading)) {
    if (run_length_ > 0 && reading == last_value_) {
      ++run_length_;
    } else {
      last_value_ = reading;
      run_length_ = 1;
    }
  } else {
    run_length_ = 0;
  }
  return v;
}

void InputGuard::note_drop() { ++counts_.dropped; }

double InputGuard::anomaly_fraction() const {
  const std::size_t total = counts_.total();
  if (total == 0) return 0.0;
  return static_cast<double>(counts_.anomalies()) / static_cast<double>(total);
}

}  // namespace idlered::robust
