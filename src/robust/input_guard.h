// Validation gate between the stop-length sensor and the estimators.
//
// The estimators in core/estimator.h throw on invalid input — correct for a
// library entry point, fatal for a controller that must survive a glitchy
// sensor. The InputGuard sits in front of them and classifies every raw
// reading: finite-and-in-range readings pass through, everything else is
// rejected and counted. The running anomaly fraction is the raw signal the
// HealthMonitor smooths into a health state.
//
// Detectable corruption (NaN, Inf, negative, absurdly long, frozen sensor)
// is filtered here; undetectable corruption (plausible-but-wrong values
// from noise or quantization) necessarily reaches the estimator — bounding
// its effect is the fallback ladder's job, not the guard's.
#pragma once

#include <cstddef>
#include <string>

namespace idlered::robust {

struct GuardConfig {
  double min_stop_s = 0.0;
  /// Readings above this are rejected as implausible. Default: 4 hours —
  /// far beyond any traffic stop, so only sensor garbage is caught.
  double max_stop_s = 4.0 * 3600.0;
  /// A reading repeated exactly this many times in a row flags a frozen
  /// sensor; the repeats beyond the first are rejected. 0 disables.
  std::size_t stuck_run_limit = 8;

  /// Throws std::invalid_argument on an empty or inverted range.
  void validate() const;
};

enum class Verdict {
  kAccept = 0,
  kRejectNonFinite,
  kRejectNegative,
  kRejectOutOfRange,
  kRejectStuck,
};

std::string to_string(Verdict verdict);

struct GuardCounts {
  std::size_t accepted = 0;
  std::size_t non_finite = 0;
  std::size_t negative = 0;
  std::size_t out_of_range = 0;
  std::size_t stuck = 0;
  std::size_t dropped = 0;  ///< readings that never arrived

  std::size_t total() const {
    return accepted + non_finite + negative + out_of_range + stuck + dropped;
  }
  std::size_t anomalies() const { return total() - accepted; }
};

class InputGuard {
 public:
  explicit InputGuard(const GuardConfig& config = {});

  /// Classify without recording (pure).
  Verdict check(double reading) const;

  /// Classify, record the verdict and update the frozen-sensor tracker.
  Verdict admit(double reading);

  /// Record a reading that never arrived (counted as an anomaly).
  void note_drop();

  const GuardCounts& counts() const { return counts_; }
  const GuardConfig& config() const { return config_; }

  /// Fraction of all seen readings that were anomalous; 0 before any.
  double anomaly_fraction() const;

 private:
  GuardConfig config_;
  GuardCounts counts_;
  double last_value_ = 0.0;
  std::size_t run_length_ = 0;  ///< consecutive repeats of last_value_
};

}  // namespace idlered::robust
