// Validation gate between the stop-length sensor and the estimators.
//
// The estimators in core/estimator.h throw on invalid input — correct for a
// library entry point, fatal for a controller that must survive a glitchy
// sensor. The InputGuard sits in front of them and classifies every raw
// reading: finite-and-in-range readings pass through, everything else is
// rejected and counted. The running anomaly fraction is the raw signal the
// HealthMonitor smooths into a health state.
//
// Detectable corruption (NaN, Inf, negative, absurdly long, frozen sensor)
// is filtered here; undetectable corruption (plausible-but-wrong values
// from noise or quantization) necessarily reaches the estimator — bounding
// its effect is the fallback ladder's job, not the guard's.
#pragma once

#include <cstddef>
#include <string>

namespace idlered::robust {

struct GuardConfig {
  double min_stop_s = 0.0;
  /// Readings above this are rejected as implausible. Default: 4 hours —
  /// far beyond any traffic stop, so only sensor garbage is caught.
  double max_stop_s = 4.0 * 3600.0;
  /// A reading repeated exactly this many times in a row flags a frozen
  /// sensor; the repeats beyond the first are rejected. 0 disables.
  std::size_t stuck_run_limit = 8;

  /// Throws std::invalid_argument on an empty or inverted range.
  void validate() const;
};

enum class Verdict {
  kAccept = 0,
  kRejectNonFinite,
  kRejectNegative,
  kRejectOutOfRange,
  kRejectStuck,
  kRejectOutOfOrder,  ///< timestamp not after the last accepted event
};

std::string to_string(Verdict verdict);

struct GuardCounts {
  std::size_t accepted = 0;
  std::size_t non_finite = 0;
  std::size_t negative = 0;
  std::size_t out_of_range = 0;
  std::size_t stuck = 0;
  std::size_t out_of_order = 0;
  std::size_t dropped = 0;  ///< readings that never arrived

  std::size_t total() const {
    return accepted + non_finite + negative + out_of_range + stuck +
           out_of_order + dropped;
  }
  std::size_t anomalies() const { return total() - accepted; }
};

class InputGuard {
 public:
  /// Full mutable state, exposed so the streaming service can snapshot a
  /// per-vehicle guard and restore it bit-exactly on crash recovery (the
  /// stuck-run tracker and timestamp watermark both influence later
  /// verdicts, so replay determinism needs them round-tripped).
  struct State {
    GuardCounts counts;
    double last_value = 0.0;
    std::size_t run_length = 0;
    double last_timestamp = 0.0;
    bool has_timestamp = false;
  };

  explicit InputGuard(const GuardConfig& config = {});

  /// Classify without recording (pure).
  Verdict check(double reading) const;

  /// Timestamped classification for the streaming path: the value checks
  /// of check(reading) plus event-time monotonicity — a reading whose
  /// timestamp is non-finite or not strictly after the last *accepted*
  /// event is rejected as out-of-order. (The batch path's stop traces are
  /// positionally ordered, so only streamed events carry timestamps.)
  Verdict check(double reading, double timestamp) const;

  /// Classify, record the verdict and update the frozen-sensor tracker.
  Verdict admit(double reading);

  /// Timestamped admit: records the verdict, updates the frozen-sensor
  /// tracker, and advances the timestamp watermark on acceptance.
  Verdict admit(double reading, double timestamp);

  /// Record a reading that never arrived (counted as an anomaly).
  void note_drop();

  const GuardCounts& counts() const { return counts_; }
  const GuardConfig& config() const { return config_; }

  /// Timestamp of the last accepted event; meaningless before the first
  /// timestamped acceptance (check has_timestamp()).
  double last_timestamp() const { return last_timestamp_; }
  bool has_timestamp() const { return has_timestamp_; }

  /// Fraction of all seen readings that were anomalous; 0 before any.
  double anomaly_fraction() const;

  /// Snapshot/restore of the mutable state (configuration excluded).
  State state() const;
  void restore(const State& state);

 private:
  void record(Verdict verdict, double reading);

  GuardConfig config_;
  GuardCounts counts_;
  double last_value_ = 0.0;
  std::size_t run_length_ = 0;  ///< consecutive repeats of last_value_
  double last_timestamp_ = 0.0;
  bool has_timestamp_ = false;
};

}  // namespace idlered::robust
