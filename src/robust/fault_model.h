// Deterministic fault injection for the stop-start sensing/actuation path.
//
// The paper's guarantees assume the controller sees the true stop lengths
// and that engine-off / restart commands execute perfectly. A deployed
// system does not: the stop-length signal is derived from noisy wheel-speed
// and GPS data, CAN frames get dropped or stuck, and the starter can need
// several cranking attempts. This module wraps any stop stream with a
// seed-driven fault schedule so the robustness of the whole online pipeline
// (estimator -> strategy selection -> actuation) can be measured, not
// guessed. The same seed always yields the identical fault sequence, so
// every experiment in bench_robustness_faults is reproducible bit-for-bit.
//
// Fault taxonomy (one measurement fault at most per stop, drawn by a single
// categorical draw; actuation faults are drawn independently):
//
//   measurement: additive noise, multiplicative noise, quantization,
//                stuck-at (held reading with geometric release), dropped
//                reading, NaN glitch, negative glitch
//   actuation:   delayed engine-off (extra idle before shut-off takes
//                effect), restart failure (cranking cost paid k times)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace idlered::robust {

enum class FaultKind {
  kNone = 0,
  kAdditiveNoise,
  kMultiplicativeNoise,
  kQuantization,
  kStuckAt,
  kDrop,
  kNanGlitch,
  kNegativeGlitch,
  kActuationDelay,
  kRestartFailure,
};

inline constexpr std::size_t kNumFaultKinds = 10;

std::string to_string(FaultKind kind);

/// Per-stop fault probabilities and severities. The measurement-fault
/// probabilities are mutually exclusive (their sum must be <= 1); the two
/// actuation faults are drawn independently of the measurement fault.
struct FaultProfile {
  // Measurement faults.
  double additive_noise_prob = 0.0;
  double additive_noise_sd_s = 5.0;  ///< stddev of the added Gaussian, s
  double multiplicative_noise_prob = 0.0;
  double multiplicative_noise_sd = 0.25;  ///< relative scale error stddev
  double quantization_prob = 0.0;
  double quantization_step_s = 10.0;  ///< coarse-sensor rounding grid
  double stuck_prob = 0.0;            ///< per-stop chance of entering stuck
  double stuck_release_prob = 0.25;   ///< per-stop chance of leaving stuck
  double drop_prob = 0.0;             ///< reading lost entirely
  double nan_prob = 0.0;              ///< NaN glitch on the CAN bus
  double negative_prob = 0.0;         ///< sign/underflow glitch

  // Actuation faults.
  double actuation_delay_prob = 0.0;
  double actuation_delay_s = 4.0;    ///< extra idle before engine-off
  double restart_failure_prob = 0.0;
  int restart_failure_attempts = 3;  ///< total cranks when a restart fails

  /// The canonical mixed profile used by the fault-sweep bench: an overall
  /// per-stop measurement-fault rate `rate` split across the taxonomy
  /// (20% additive, 10% multiplicative, 10% quantization, 10% stuck,
  /// 10% drop, 20% NaN, 20% negative) plus actuation faults at rate/2
  /// (delay) and rate/4 (restart failure).
  static FaultProfile scaled(double rate);

  /// Throws std::invalid_argument on negative rates/severities or a
  /// measurement-fault probability mass exceeding 1.
  void validate() const;
};

/// What the injector hands the controller for one stop. `value` is the
/// corrupted measurement (meaningless when `dropped`); the actuation fields
/// apply to this stop's engine-off decision regardless of the measurement.
struct SensorReading {
  double value = 0.0;
  bool dropped = false;
  double actuation_delay_s = 0.0;  ///< 0 when the actuator responded in time
  int restart_attempts = 1;        ///< restart cost is paid this many times
  FaultKind fault = FaultKind::kNone;  ///< the measurement fault applied
};

/// Seed-driven fault schedule over a stop stream. Each stop draws from a
/// per-index forked RNG stream, so the fault hitting stop i is a pure
/// function of (profile, seed, i, true length, stuck state) — independent
/// of how many random numbers earlier faults consumed.
class FaultInjector {
 public:
  FaultInjector(const FaultProfile& profile, std::uint64_t seed);

  /// Corrupt one true stop length into what the sensor reports.
  SensorReading corrupt(double true_length);

  /// Apply the schedule to a whole stream (index-aligned with the input).
  std::vector<SensorReading> corrupt_stream(const std::vector<double>& stops);

  std::size_t stops_processed() const { return index_; }
  std::size_t count(FaultKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  /// Total stops that suffered at least one fault of any kind.
  std::size_t faulted_stops() const { return faulted_stops_; }

  const FaultProfile& profile() const { return profile_; }

 private:
  FaultProfile profile_;
  util::Rng root_;
  std::size_t index_ = 0;
  bool stuck_ = false;
  double stuck_value_ = 0.0;
  std::size_t faulted_stops_ = 0;
  std::array<std::size_t, kNumFaultKinds> counts_{};
};

}  // namespace idlered::robust
