// A DecayingStatsEstimator behind an InputGuard: the never-throwing
// observation path a deployed controller needs.
//
// Raw estimators throw on invalid input and on stats() before the first
// observation; both behaviours are correct for direct library users and
// lethal inside a control loop fed by a real sensor. The GuardedEstimator
// filters every reading through the guard, only forwards accepted ones,
// and exposes a total stats accessor (stats_or) that can never throw —
// closing the pre-observation std::logic_error path that was reachable
// through the controller.
#pragma once

#include <cstddef>

#include "core/estimator.h"
#include "robust/input_guard.h"

namespace idlered::robust {

class GuardedEstimator {
 public:
  /// `lambda` as in DecayingStatsEstimator (1 = full history).
  GuardedEstimator(double break_even, double lambda,
                   const GuardConfig& guard = {});

  /// Filter one raw reading; accepted readings update the estimator.
  /// Never throws on any double value (NaN, Inf, negative, ...).
  Verdict observe(double reading);

  /// Record a reading that never arrived.
  void note_drop() { guard_.note_drop(); }

  /// True once at least one reading has been accepted.
  bool ready() const { return estimator_.has_observations(); }

  /// Number of readings the guard accepted so far.
  std::size_t accepted() const { return guard_.counts().accepted; }

  /// Estimate from the accepted readings; throws std::logic_error before
  /// the first acceptance (mirrors the raw estimator).
  dist::ShortStopStats stats() const { return estimator_.stats(); }

  /// Total variant: `fallback` before the first accepted reading.
  dist::ShortStopStats stats_or(const dist::ShortStopStats& fallback) const;

  const InputGuard& guard() const { return guard_; }
  const core::DecayingStatsEstimator& estimator() const { return estimator_; }
  double break_even() const { return estimator_.break_even(); }

 private:
  InputGuard guard_;
  core::DecayingStatsEstimator estimator_;
};

}  // namespace idlered::robust
