#include "robust/backoff.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace idlered::robust {

void ExponentialBackoff::Config::validate() const {
  if (!(base > 0.0) || !std::isfinite(base))
    throw std::invalid_argument(
        "ExponentialBackoff: base must be finite and > 0");
  if (!(multiplier >= 1.0) || !std::isfinite(multiplier))
    throw std::invalid_argument(
        "ExponentialBackoff: multiplier must be finite and >= 1");
  if (!(max >= base) || !std::isfinite(max))
    throw std::invalid_argument(
        "ExponentialBackoff: max must be finite and >= base");
  if (!(jitter >= 0.0) || jitter >= 1.0)
    throw std::invalid_argument(
        "ExponentialBackoff: jitter must lie in [0, 1)");
}

ExponentialBackoff::ExponentialBackoff(const Config& config,
                                       std::uint64_t seed)
    : config_(config), rng_(util::mix64(seed)) {
  config_.validate();
}

double ExponentialBackoff::peek() const {
  // pow overflows gracefully to +inf for absurd failure counts; the min
  // clamps it back into the configured envelope either way.
  const double raw =
      config_.base *
      std::pow(config_.multiplier, static_cast<double>(failures_));
  return std::min(raw, config_.max);
}

double ExponentialBackoff::next() {
  const double delay = peek();
  ++failures_;
  if (config_.jitter == 0.0) return delay;  // lint: allow(float-compare): exact sentinel for "jitter disabled"
  // Scale into [1 - jitter, 1]: spread without exceeding the envelope, and
  // never below (1 - jitter) * base so a retry always waits something.
  const double scale = 1.0 - config_.jitter * rng_.uniform();
  return delay * scale;
}

}  // namespace idlered::robust
