#include "robust/guarded_estimator.h"

namespace idlered::robust {

GuardedEstimator::GuardedEstimator(double break_even, double lambda,
                                   const GuardConfig& guard)
    : guard_(guard), estimator_(break_even, lambda) {}

Verdict GuardedEstimator::observe(double reading) {
  const Verdict v = guard_.admit(reading);
  if (v == Verdict::kAccept) estimator_.observe(reading);
  return v;
}

dist::ShortStopStats GuardedEstimator::stats_or(
    const dist::ShortStopStats& fallback) const {
  if (!ready()) return fallback;
  return estimator_.stats();
}

}  // namespace idlered::robust
