// The degraded-mode fallback ladder.
//
// Each rung needs strictly less of the system to be trustworthy than the
// one above it, and each keeps a provable guarantee:
//
//   kProposed  COA on the learned (mu_B-, q_B+) — needs trustworthy
//              statistics; best CR when the side information is right.
//   kDet       wait exactly B — needs only the break-even interval;
//              2-competitive on EVERY individual stop, no statistics, no
//              randomness, fully predictable under a suspect sensor.
//   kNRand     Karlin's randomized rule — distribution-free e/(e-1)
//              expected guarantee; the best possible when the sensor is so
//              corrupted that even "statistics look suspicious" can no
//              longer be judged.
//   kNev       never shut the engine off — needs nothing, performs no
//              restarts; the only safe rung when the battery is below its
//              floor or the starter itself is failing.
//
// select_mode is a pure function of the inputs; all hysteresis lives in
// the HealthMonitor and the controller's SOC latch, so the ladder itself
// can be tested exhaustively.
#pragma once

#include <span>
#include <string>

#include "core/policy.h"
#include "costmodel/multislope.h"
#include "dist/distribution.h"
#include "robust/health_monitor.h"
#include "robust/input_guard.h"

namespace idlered::robust {

enum class ControllerMode { kProposed = 0, kDet, kNRand, kNev };

std::string to_string(ControllerMode mode);

/// Everything the ladder looks at, pre-digested (hysteresis applied).
struct LadderInputs {
  HealthState health = HealthState::kHealthy;
  bool actuator_suspect = false;  ///< restart-failure rate above its band
  bool soc_low = false;           ///< battery below floor (latched)
  bool warmed_up = false;         ///< enough *accepted* observations
};

/// The ladder:  soc_low/actuator_suspect -> NEV;  critical -> N-Rand;
/// degraded -> DET;  healthy -> Proposed once warmed up, else N-Rand.
ControllerMode select_mode(const LadderInputs& in);

/// Degraded-rung mapping for a k-slope engine-state profile: each rung's
/// guarantee carries over transition-by-transition via the additive
/// decomposition, so the ladder instantiates the matching multislope
/// policy —
///   kProposed -> MS-COA  (needs one (mu, q) pair per transition, measured
///                         at that transition's breakpoint t_i)
///   kDet      -> MS-DET  (envelope follower; <= 2-competitive per stop)
///   kNRand    -> MS-Rand (e/(e-1) expected, distribution-free)
///   kNev      -> MS-NEV  (stay in the base state; requires base rate 1)
/// `transition_stats` is read only on the kProposed rung, where it must
/// hold exactly profile.num_transitions() entries (contract); the three
/// statistics-free rungs ignore it, mirroring how the two-slope ladder
/// drops the estimator when degraded. On SlopeProfile::two_slope(B) each
/// rung is bit-identical to its two-slope counterpart.
core::PolicyPtr multislope_policy_for_mode(
    ControllerMode mode, const costmodel::SlopeProfile& profile,
    std::span<const dist::ShortStopStats> transition_stats);

/// Knobs of the robust path of sim::AdaptiveController. Disabled by
/// default: an AdaptiveController without robustness enabled behaves
/// exactly as the original (strict estimator, COA after warm-up).
struct RobustConfig {
  bool enabled = false;
  GuardConfig guard;
  HealthConfig health;
  /// SOC must recover to min_soc + resume_margin before leaving NEV
  /// (hysteresis so a battery hovering at the floor does not flap).
  double soc_resume_margin = 0.05;

  /// Throws std::invalid_argument on invalid sub-configs or margin.
  void validate() const;
};

}  // namespace idlered::robust
