// Smoothed sensor/actuator health with hysteresis.
//
// The InputGuard classifies individual readings; this module turns the
// stream of verdicts into a *state* the fallback ladder can act on without
// flapping. Two exponentially-weighted rates are tracked:
//
//   * anomaly rate   — fraction of recent readings the guard rejected
//                      (plus dropped readings);
//   * restart-failure rate — fraction of recent engine restarts that needed
//                      more than one cranking attempt.
//
// Each rate drives a two-threshold (enter high / exit low) hysteresis band,
// so a rate hovering between the thresholds never toggles the state. The
// resulting HealthState feeds robust::select_mode.
//
// The monitor also owns the statistics-trust check: the b-DET vertex is
// only as good as the side statistics behind it, and its feasibility
// condition mu_B-/B < (1 - q_B+)^2 / q_B+ (eq. 36) sits on a boundary where
// estimation error flips the LP vertex. trust_b_det demands the condition
// with a safety margin before the controller may act on that vertex.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/distribution.h"

namespace idlered::robust {

enum class HealthState { kHealthy = 0, kDegraded, kCritical };

std::string to_string(HealthState state);

struct HealthConfig {
  double ewma_alpha = 0.05;  ///< smoothing for both rates

  // Anomaly-rate hysteresis bands (enter > exit for each state).
  double degraded_enter = 0.10;
  double degraded_exit = 0.05;
  double critical_enter = 0.30;
  double critical_exit = 0.15;

  // Restart-failure band: above `actuator_enter` the starter is considered
  // unreliable and the ladder pins the controller to NEV.
  double actuator_enter = 0.30;
  double actuator_exit = 0.10;

  /// b-DET trust margin in (0, 1]: require mu/B < margin * (1-q)^2 / q.
  double b_det_margin = 0.9;

  /// Most recent transition-history entries kept per kind (state machine
  /// and actuator latch each). An always-on service feeds a monitor
  /// indefinitely; unbounded history would be a slow leak. 0 = unlimited
  /// (offline analysis of a finite run).
  std::size_t max_history = 1024;

  /// Throws std::invalid_argument on inverted bands or rates outside [0,1].
  void validate() const;
};

class HealthMonitor {
 public:
  /// One recorded state-machine edge. `at` is the deterministic logical
  /// timestamp: the 1-based count of record_observation calls (state
  /// transitions) or record_restart calls (actuator transitions) at the
  /// moment the edge fired — wall-clock-free, so tests can assert exact
  /// transition points and the obs event layer can replay the history.
  struct Transition {
    std::uint64_t at = 0;
    HealthState from = HealthState::kHealthy;
    HealthState to = HealthState::kHealthy;
    double anomaly_rate = 0.0;  ///< smoothed rate when the edge fired
  };

  /// One actuator-suspect latch flip, timestamped by restart count.
  struct ActuatorTransition {
    std::uint64_t at = 0;
    bool suspect = false;
    double restart_failure_rate = 0.0;
  };

  explicit HealthMonitor(const HealthConfig& config = {});

  /// Fold one guard verdict (or a dropped reading) into the anomaly rate
  /// and update the health state machine.
  void record_observation(bool anomalous);

  /// Fold one restart outcome into the actuator rate. `clean` means the
  /// engine started on the first cranking attempt.
  void record_restart(bool clean);

  HealthState state() const { return state_; }
  bool actuator_suspect() const { return actuator_suspect_; }

  double anomaly_rate() const { return anomaly_rate_; }
  double restart_failure_rate() const { return restart_failure_rate_; }

  /// Recorded state-machine edges in firing order. With the default
  /// bounded config only the most recent max_history edges are retained
  /// (the obs event stream keeps the full history at the trace sink);
  /// total_transitions() still counts every edge ever fired.
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<ActuatorTransition>& actuator_transitions() const {
    return actuator_transitions_;
  }
  std::uint64_t total_transitions() const { return total_transitions_; }
  std::uint64_t total_actuator_transitions() const {
    return total_actuator_transitions_;
  }

  std::uint64_t observations() const { return observations_; }
  std::uint64_t restarts() const { return restarts_; }

  const HealthConfig& config() const { return config_; }

 private:
  HealthConfig config_;
  HealthState state_ = HealthState::kHealthy;
  bool actuator_suspect_ = false;
  double anomaly_rate_ = 0.0;
  double restart_failure_rate_ = 0.0;
  std::uint64_t observations_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t total_transitions_ = 0;
  std::uint64_t total_actuator_transitions_ = 0;
  std::vector<Transition> transitions_;
  std::vector<ActuatorTransition> actuator_transitions_;
};

/// True when the b-DET feasibility condition (eq. 36) holds with the given
/// safety margin AND the optimal threshold b* lies strictly inside (0, B).
bool trust_b_det(const dist::ShortStopStats& stats, double break_even,
                 double margin = 0.9);

}  // namespace idlered::robust
