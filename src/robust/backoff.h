// Jittered exponential backoff, deterministic per seed.
//
// Two consumers in the streaming service share this policy:
//
//   * fallback re-promotion — a shard that stepped down the degraded-mode
//     ladder (robust/fallback.h) under overload must not climb back to COA
//     in lockstep with every other shard: synchronized re-promotion turns
//     one burst into a periodic thundering herd. Each shard seeds its own
//     backoff, so recovery waits decorrelate while staying reproducible.
//
//   * ingestion retry — a source whose submit was refused by a full queue
//     retries after an escalating, jittered delay instead of hammering the
//     admission path at line rate.
//
// Units are the caller's (pump ticks for the shedder, seconds for a
// wall-clock source); the policy only produces numbers. Determinism: all
// jitter comes from a util::Rng owned by the instance, so a (config, seed)
// pair reproduces the exact delay sequence — the property the crash-replay
// and no-lockstep tests pin.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/random.h"

namespace idlered::robust {

class ExponentialBackoff {
 public:
  struct Config {
    double base = 1.0;        ///< delay of the first failure
    double multiplier = 2.0;  ///< growth per consecutive failure
    double max = 64.0;        ///< un-jittered delay ceiling
    /// Jitter fraction in [0, 1): each delay is scaled by a uniform draw
    /// from [1 - jitter, 1], so jitter spreads retries without ever
    /// exceeding the deterministic envelope.
    double jitter = 0.5;

    /// Throws std::invalid_argument on non-positive base/multiplier/max,
    /// max < base, or jitter outside [0, 1).
    void validate() const;
  };

  ExponentialBackoff(const Config& config, std::uint64_t seed);

  /// Delay to wait before the next attempt, then escalate. The k-th call
  /// since the last reset() draws from
  ///   min(base * multiplier^k, max) * U[1 - jitter, 1].
  double next();

  /// Current un-jittered delay (what next() would scale), without
  /// escalating.
  double peek() const;

  /// Number of next() calls since construction or the last reset().
  std::size_t failures() const { return failures_; }

  /// Back to the base delay after sustained success.
  void reset() { failures_ = 0; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  util::Rng rng_;
  std::size_t failures_ = 0;
};

}  // namespace idlered::robust
