#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "util/thread_annotations.h"

namespace idlered::engine {

namespace {

// One worker's slice of the index range. The owner pops chunks from the
// front, thieves pop half of the remainder from the back; both paths hold
// the segment's mutex, so begin/end never cross.
struct Segment {
  util::Mutex m;
  std::size_t begin IDLERED_GUARDED_BY(m) = 0;
  std::size_t end IDLERED_GUARDED_BY(m) = 0;

  std::size_t remaining() IDLERED_EXCLUDES(m) {
    util::LockGuard lock(m);
    return end - begin;
  }

  /// Claim up to `chunk` indices from the front; returns [first, last).
  bool pop_front(std::size_t chunk, std::size_t& first, std::size_t& last)
      IDLERED_EXCLUDES(m) {
    util::LockGuard lock(m);
    if (begin >= end) return false;
    first = begin;
    last = std::min(end, begin + chunk);
    begin = last;
    return true;
  }

  /// Steal the back half of the remainder; returns [first, last).
  bool steal_back(std::size_t& first, std::size_t& last) IDLERED_EXCLUDES(m) {
    util::LockGuard lock(m);
    const std::size_t rem = end - begin;
    if (rem == 0) return false;
    const std::size_t take = (rem + 1) / 2;
    first = end - take;
    last = end;
    end = first;
    return true;
  }
};

struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::vector<Segment> segments;
  std::size_t chunk = 1;
  std::atomic<bool> abort{false};
  std::atomic<int> workers_left{0};
  util::Mutex error_m;
  std::exception_ptr error IDLERED_GUARDED_BY(error_m);

  explicit Job(std::size_t num_segments) : segments(num_segments) {}

  void record_error(std::exception_ptr e) IDLERED_EXCLUDES(error_m) {
    {
      util::LockGuard lock(error_m);
      if (!error) error = std::move(e);
    }
    abort.store(true);
  }

  /// Caller-side: safe once workers_left has reached 0 (all workers done
  /// publishing), which parallel_for waits for before calling this.
  std::exception_ptr take_error() IDLERED_EXCLUDES(error_m) {
    util::LockGuard lock(error_m);
    return error;
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  util::Mutex m;
  util::CondVar cv_work;  // signals workers: job or shutdown
  util::CondVar cv_done;  // signals caller: job finished
  Job* job IDLERED_GUARDED_BY(m) = nullptr;
  std::uint64_t job_ticket IDLERED_GUARDED_BY(m) = 0;  // bumped per job
  bool shutdown IDLERED_GUARDED_BY(m) = false;

  void worker_loop(std::size_t my_index) IDLERED_EXCLUDES(m) {
    std::uint64_t last_ticket = 0;
    for (;;) {
      Job* j = nullptr;
      {
        util::LockGuard lock(m);
        // Inline predicate loop: a wait-with-lambda would move these
        // guarded reads into an unannotated closure (see
        // util/thread_annotations.h on CondVar).
        while (!shutdown && !(job != nullptr && job_ticket != last_ticket))
          cv_work.wait(m);
        if (shutdown) return;
        j = job;
        last_ticket = job_ticket;
      }
      run_job(*j, my_index);
      {
        util::LockGuard lock(m);
        if (j->workers_left.fetch_sub(1) == 1) cv_done.notify_all();
      }
    }
  }

  static void run_job(Job& j, std::size_t my_index) {
    const std::size_t nseg = j.segments.size();
    std::size_t first = 0, last = 0;
    auto execute = [&](std::size_t lo, std::size_t hi) {
      try {
        for (std::size_t i = lo; i < hi && !j.abort.load(); ++i) (*j.fn)(i);
      } catch (...) {
        j.record_error(std::current_exception());
      }
    };

    // Drain my own segment, then steal from the fattest victim until the
    // whole range is dry.
    while (!j.abort.load() &&
           j.segments[my_index].pop_front(j.chunk, first, last)) {
      IDLERED_COUNT("engine.pool.chunks_owned");
      execute(first, last);
    }
    for (;;) {
      if (j.abort.load()) return;
      std::size_t victim = nseg;
      std::size_t best = 0;
      for (std::size_t s = 0; s < nseg; ++s) {
        const std::size_t rem = j.segments[s].remaining();
        if (rem > best) {
          best = rem;
          victim = s;
        }
      }
      if (victim == nseg) return;  // everything consumed
      if (j.segments[victim].steal_back(first, last)) {
        IDLERED_COUNT("engine.pool.steals");
        IDLERED_COUNT_ADD("engine.pool.indices_stolen", last - first);
        // Consume the stolen slice in chunks so it can be re-stolen.
        std::size_t lo = first;
        while (lo < last && !j.abort.load()) {
          const std::size_t hi = std::min(last, lo + j.chunk);
          execute(lo, hi);
          lo = hi;
        }
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(new Impl) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 4 : static_cast<int>(hw);
  }
  threads_ = threads;
  impl_->workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    impl_->workers.emplace_back(
        [this, t] { impl_->worker_loop(static_cast<std::size_t>(t)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::LockGuard lock(impl_->m);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t chunk) {
  if (n == 0) return;
  IDLERED_COUNT("engine.pool.jobs");
  IDLERED_COUNT_ADD("engine.pool.indices", n);
  const auto nthreads = static_cast<std::size_t>(threads_);
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, n / (nthreads * 8));
  }

  Job job(nthreads);
  job.fn = &fn;
  job.chunk = chunk;
  // Contiguous even split; later segments absorb the remainder one by one.
  // The job is not yet visible to any worker, so its segments can be
  // initialized without their locks.
  const std::size_t base = n / nthreads;
  const std::size_t extra = n % nthreads;
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < nthreads; ++s) {
    const std::size_t len = base + (s < extra ? 1 : 0);
    util::LockGuard lock(job.segments[s].m);
    job.segments[s].begin = cursor;
    job.segments[s].end = cursor + len;
    cursor += len;
  }
  job.workers_left.store(static_cast<int>(nthreads));

  {
    util::LockGuard lock(impl_->m);
    impl_->job = &job;
    ++impl_->job_ticket;
  }
  impl_->cv_work.notify_all();
  {
    util::LockGuard lock(impl_->m);
    while (job.workers_left.load() != 0) impl_->cv_done.wait(impl_->m);
    impl_->job = nullptr;
  }
  if (std::exception_ptr e = job.take_error()) std::rethrow_exception(e);
}

}  // namespace idlered::engine
