#include "engine/vehicle_cache.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"

namespace idlered::engine {

VehicleCache::VehicleCache(const sim::StopTrace& trace)
    : trace_(&trace), batch_(trace.stops) {
  sorted_stops_ = trace.stops;
  std::sort(sorted_stops_.begin(), sorted_stops_.end());
  prefix_sum_.resize(sorted_stops_.size() + 1);
  prefix_sum_[0] = 0.0;
  for (std::size_t i = 0; i < sorted_stops_.size(); ++i)
    prefix_sum_[i + 1] = prefix_sum_[i] + sorted_stops_[i];
  // Trace-order sum, matching StopTrace::mean_stop_length bit-for-bit.
  if (!trace.stops.empty()) first_moment_ = trace.mean_stop_length();
}

dist::ShortStopStats VehicleCache::stats_at(double break_even,
                                            std::size_t* hint) const {
  // Stops < B occupy [0, idx) of the sorted order. `hint` carries the
  // boundary of the previous (smaller) break-even during a prewarm sweep,
  // so the search only scans forward from there.
  const auto begin = sorted_stops_.begin() +
                     static_cast<std::ptrdiff_t>(hint != nullptr ? *hint : 0);
  const auto idx = static_cast<std::size_t>(
      std::lower_bound(begin, sorted_stops_.end(), break_even) -
      sorted_stops_.begin());
  if (hint != nullptr) *hint = idx;
  const auto n = static_cast<double>(sorted_stops_.size());
  dist::ShortStopStats s;
  s.mu_b_minus = prefix_sum_[idx] / n;
  s.q_b_plus = static_cast<double>(sorted_stops_.size() - idx) / n;
  return s;
}

dist::ShortStopStats VehicleCache::stats_for(double break_even) const {
  if (sorted_stops_.empty())
    throw std::invalid_argument("VehicleCache::stats_for: empty trace");
  if (break_even <= 0.0)
    throw std::invalid_argument(
        "VehicleCache::stats_for: break_even must be > 0");
  {
    util::LockGuard lock(memo_m_);
    const auto it = memo_.find(break_even);
    if (it != memo_.end()) {
      IDLERED_COUNT("engine.cache.stats_hit");
      return it->second;
    }
  }
  IDLERED_COUNT("engine.cache.stats_miss");
  const dist::ShortStopStats s = stats_at(break_even, nullptr);
  util::LockGuard lock(memo_m_);
  memo_.emplace(break_even, s);
  return s;
}

core::LpStrategySolution VehicleCache::lp_solution(
    double break_even, lp::Workspace& workspace) const {
  return core::solve_constrained_lp(stats_for(break_even), break_even,
                                    workspace);
}

void VehicleCache::prewarm(std::vector<double> break_evens,
                           bool offline_totals) {
  if (sorted_stops_.empty()) return;  // nothing to warm; stats_for throws
  std::sort(break_evens.begin(), break_evens.end());
  break_evens.erase(std::unique(break_evens.begin(), break_evens.end()),
                    break_evens.end());
  std::size_t hint = 0;
  std::vector<std::pair<double, dist::ShortStopStats>> computed;
  computed.reserve(break_evens.size());
  for (double b : break_evens) {
    if (b <= 0.0)
      throw std::invalid_argument(
          "VehicleCache::prewarm: break_even must be > 0");
    computed.emplace_back(b, stats_at(b, &hint));
    if (offline_totals) batch_.offline_total(b);
  }
  util::LockGuard lock(memo_m_);
  for (auto& [b, s] : computed) memo_.emplace(b, s);
}

FleetCache::FleetCache(const sim::Fleet& fleet) {
  vehicles_.reserve(fleet.size());
  for (const sim::StopTrace& t : fleet)
    vehicles_.push_back(std::make_unique<VehicleCache>(t));
}

}  // namespace idlered::engine
