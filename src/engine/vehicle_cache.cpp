#include "engine/vehicle_cache.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace idlered::engine {

VehicleCache::VehicleCache(const sim::StopTrace& trace) : trace_(&trace) {
  sorted_stops_ = trace.stops;
  std::sort(sorted_stops_.begin(), sorted_stops_.end());
  prefix_sum_.resize(sorted_stops_.size() + 1);
  prefix_sum_[0] = 0.0;
  for (std::size_t i = 0; i < sorted_stops_.size(); ++i)
    prefix_sum_[i + 1] = prefix_sum_[i] + sorted_stops_[i];
  // Trace-order sum, matching StopTrace::mean_stop_length bit-for-bit.
  if (!trace.stops.empty()) first_moment_ = trace.mean_stop_length();
}

dist::ShortStopStats VehicleCache::stats_for(double break_even) const {
  if (sorted_stops_.empty())
    throw std::invalid_argument("VehicleCache::stats_for: empty trace");
  if (break_even <= 0.0)
    throw std::invalid_argument(
        "VehicleCache::stats_for: break_even must be > 0");
  {
    std::lock_guard<std::mutex> lock(memo_m_);
    const auto it = memo_.find(break_even);
    if (it != memo_.end()) {
      IDLERED_COUNT("engine.cache.stats_hit");
      return it->second;
    }
  }
  IDLERED_COUNT("engine.cache.stats_miss");
  // Stops < B occupy [0, idx) of the sorted order.
  const auto idx = static_cast<std::size_t>(
      std::lower_bound(sorted_stops_.begin(), sorted_stops_.end(),
                       break_even) -
      sorted_stops_.begin());
  const auto n = static_cast<double>(sorted_stops_.size());
  dist::ShortStopStats s;
  s.mu_b_minus = prefix_sum_[idx] / n;
  s.q_b_plus = static_cast<double>(sorted_stops_.size() - idx) / n;
  std::lock_guard<std::mutex> lock(memo_m_);
  memo_.emplace(break_even, s);
  return s;
}

FleetCache::FleetCache(const sim::Fleet& fleet) {
  vehicles_.reserve(fleet.size());
  for (const sim::StopTrace& t : fleet)
    vehicles_.push_back(std::make_unique<VehicleCache>(t));
}

}  // namespace idlered::engine
