// Per-vehicle side-statistics cache.
//
// Strategy construction consumes three derived quantities of a vehicle's
// stop trace: the first moment (MOM-Rand), and the constrained-ski-rental
// pair (mu_B_minus, q_B_plus) (COA / b-DET selection). Recomputing the pair
// from the raw trace is O(n) per break-even value, which a Figure 5/6-style
// sweep pays at every point; this cache sorts the stops once and keeps
// prefix sums, so stats_for(B) is an O(log n) binary search, with the
// results of distinct B values memoized for reuse across strategies and
// sweep points.
//
// Numerics: mu_B_minus from the sorted prefix sum may differ from
// dist::ShortStopStats::from_sample (which sums in trace order) in the last
// ulp — floating-point addition is not associative. The engine's
// determinism guarantee (bit-identical across thread counts) is unaffected
// because every code path goes through this cache; equivalence against the
// legacy serial path holds to ~1 ulp.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/solver_lp.h"
#include "dist/distribution.h"
#include "lp/arena.h"
#include "sim/stop_batch.h"
#include "sim/trace.h"
#include "util/thread_annotations.h"

namespace idlered::engine {

class VehicleCache {
 public:
  /// Sorts a copy of the trace's stops and builds prefix sums. O(n log n).
  explicit VehicleCache(const sim::StopTrace& trace);

  const std::string& vehicle_id() const { return trace_->vehicle_id; }
  const std::string& area() const { return trace_->area; }
  const sim::StopTrace& trace() const { return *trace_; }
  std::span<const double> stops() const { return trace_->stops; }
  std::size_t num_stops() const { return trace_->stops.size(); }

  /// Full first moment of the stop lengths (== trace.mean_stop_length(),
  /// same summation order, so bit-identical to the legacy path).
  double first_moment() const { return first_moment_; }

  /// The vehicle's stops as a prevalidated batch (trace order), for the
  /// batch evaluation kernel. Built once at cache construction.
  const sim::StopBatch& batch() const { return batch_; }

  /// (mu_B_minus, q_B_plus) at the given break-even. O(log n) on first
  /// request per B, O(log #distinct B) memoized afterwards. Thread-safe.
  dist::ShortStopStats stats_for(double break_even) const
      IDLERED_EXCLUDES(memo_m_);

  /// COA vertex-LP solution (eq. 32-33) at the given break-even, solved
  /// through the caller-owned arena workspace — zero heap allocations past
  /// the memoized stats lookup, bit-for-bit identical to the one-shot
  /// `core::solve_constrained_lp`. Sweeps hold one workspace (or one
  /// `lp::WorkspacePool` slot per worker) and call this per (vehicle, B)
  /// cell. Thread-safe as long as each thread owns its workspace.
  core::LpStrategySolution lp_solution(double break_even,
                                       lp::Workspace& workspace) const;

  /// Prewarm the statistics memo for a whole sweep of break-even values in
  /// one incremental pass: break-evens are processed in ascending order so
  /// the short-stop boundary index only ever advances — O(n + k log n)
  /// total instead of k independent lookups racing on the memo lock from
  /// inside evaluation cells. Also prewarms the batch offline totals when
  /// `offline_totals` is set. Thread-safe, idempotent.
  void prewarm(std::vector<double> break_evens, bool offline_totals)
      IDLERED_EXCLUDES(memo_m_);

 private:
  dist::ShortStopStats stats_at(double break_even, std::size_t* hint) const;

  const sim::StopTrace* trace_;        // not owned; outlives the cache
  std::vector<double> sorted_stops_;
  std::vector<double> prefix_sum_;     // prefix_sum_[i] = sum of first i
  double first_moment_ = 0.0;
  sim::StopBatch batch_;

  mutable util::Mutex memo_m_;
  mutable std::map<double, dist::ShortStopStats> memo_ IDLERED_GUARDED_BY(memo_m_);
};

/// One cache per vehicle of the fleet, index-aligned with the fleet.
/// Construction is embarrassingly parallel; the engine builds these on its
/// pool before evaluation starts.
class FleetCache {
 public:
  explicit FleetCache(const sim::Fleet& fleet);

  std::size_t size() const { return vehicles_.size(); }
  const VehicleCache& vehicle(std::size_t i) const { return *vehicles_[i]; }

 private:
  // unique_ptr because the memo mutex makes VehicleCache immovable.
  std::vector<std::unique_ptr<VehicleCache>> vehicles_;
};

}  // namespace idlered::engine
