#include "engine/eval_session.h"

#include <cmath>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/proposed.h"
#include "engine/thread_pool.h"
#include "engine/vehicle_cache.h"
#include "obs/obs.h"
#include "util/clock.h"
#include "util/contracts.h"
#include "util/random.h"

namespace idlered::engine {

EvalPlan EvalPlan::single(std::shared_ptr<const sim::Fleet> fleet,
                          double break_even,
                          std::vector<StrategyBuilderPtr> strategies) {
  EvalPlan plan;
  plan.points.push_back(PlanPoint{break_even, break_even, std::move(fleet)});
  plan.strategies = std::move(strategies);
  return plan;
}

std::uint64_t cell_seed(std::uint64_t base, std::size_t point,
                        std::size_t vehicle, std::size_t strategy) {
  // Counter-based derivation: three SplitMix64 finalizer rounds fold the
  // cell coordinates into the plan seed. No sequential state — any thread
  // can compute any cell's seed directly, which is what makes sampled-mode
  // results independent of the schedule.
  std::uint64_t h = util::mix64(base ^ 0x9E3779B97F4A7C15ull);
  h = util::mix64(h ^ (static_cast<std::uint64_t>(point) * 0xA24BAED4963EE407ull));
  h = util::mix64(h ^ (static_cast<std::uint64_t>(vehicle) * 0x9FB21C651E98DF25ull));
  h = util::mix64(h ^ (static_cast<std::uint64_t>(strategy) * 0xD6E8FEB86659FD91ull));
  return h;
}

namespace {

// One unit of pool work: all strategies of one vehicle at one sweep point.
// Grouping by vehicle lets every strategy share the same cache lookups.
struct Cell {
  std::size_t point;     // index into plan.points
  std::size_t vehicle;   // index into the point's fleet (seed coordinate)
  std::size_t slot;      // index into the report's vehicle array
};

// Per-cell decision record: which LP vertex COA selected for this vehicle
// at this sweep point (Section 4.4 selection), the worst-case guarantee it
// bought, and the realized cost against the offline optimum. This is the
// strategy-mix visibility the aggregate CR tables discard. Only COA-shaped
// policies (core::ProposedPolicy) carry a StrategyChoice; other strategies
// are fixed rules with nothing to decide.
[[maybe_unused]] void trace_cell_decision(
    [[maybe_unused]] const core::Policy& policy,
    [[maybe_unused]] const std::string& strategy_name,
    [[maybe_unused]] std::size_t point,
    [[maybe_unused]] double axis,
    [[maybe_unused]] double break_even,
    [[maybe_unused]] const std::string& vehicle_id,
    [[maybe_unused]] const sim::CostTotals& totals) {
  IDLERED_OBS_ONLY({
    const auto* coa = dynamic_cast<const core::ProposedPolicy*>(&policy);
    if (coa == nullptr) return;
    const core::StrategyChoice& choice = coa->choice();
    const std::string vertex = core::to_string(choice.strategy);
    // Dynamic metric name (one counter per vertex), so this bypasses the
    // static-handle macro and registers through the registry directly.
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.add(reg.counter("engine.decision." + vertex));
    if (!obs::recorder().enabled()) return;
    util::JsonValue ev = util::JsonValue::object();
    ev.set("type", "decision");
    ev.set("point", point);
    ev.set("axis", axis);
    ev.set("b", break_even);
    ev.set("vehicle", vehicle_id);
    ev.set("strategy", strategy_name);
    ev.set("vertex", vertex);
    ev.set("vertex_b", choice.b);
    ev.set("wc_cr", choice.cr);
    ev.set("realized_cr", totals.cr());
    ev.set("online", totals.online);
    ev.set("offline", totals.offline);
    obs::recorder().emit(std::move(ev));
  })
}

}  // namespace

struct EvalSession::Impl {
  EvalPlan plan;
  ThreadPool pool;
  // Per-vehicle caches, one array per *unique* fleet so that sweep points
  // sharing a fleet (e.g. a break-even sweep) share the cached statistics.
  std::vector<std::unique_ptr<std::vector<std::unique_ptr<VehicleCache>>>>
      cache_store;
  std::vector<const std::vector<std::unique_ptr<VehicleCache>>*> point_caches;

  Impl(EvalPlan p, int threads) : plan(std::move(p)), pool(threads) {}
};

namespace {

// EvalPlan shape contract: the engine's slot layout and counter-based seed
// derivation both assume every point carries a live fleet and a usable
// break-even; a malformed plan must be rejected before any slot is sized.
void validate_plan(const EvalPlan& plan) {
  IDLERED_EXPECTS(!plan.strategies.empty(),
                  "EvalSession: no strategies given");
  for (const StrategyBuilderPtr& s : plan.strategies) {
    IDLERED_EXPECTS(s != nullptr, "EvalSession: null strategy builder");
  }
  for (const PlanPoint& p : plan.points) {
    IDLERED_EXPECTS(p.fleet != nullptr, "EvalSession: null fleet");
    IDLERED_EXPECTS(p.break_even > 0.0 && std::isfinite(p.break_even),
                    "EvalSession: break_even must be finite and > 0");
  }
  IDLERED_EXPECTS(plan.threads >= 0,
                  "EvalSession: threads must be >= 0 (0 = hardware)");
}

}  // namespace

EvalSession::EvalSession(EvalPlan plan) {
  validate_plan(plan);
  const int threads = plan.threads;
  impl_ = std::make_unique<Impl>(std::move(plan), threads);
}

int EvalSession::thread_count() const { return impl_->pool.thread_count(); }

EvalSession::~EvalSession() = default;

EvalReport EvalSession::run() {
  IDLERED_SPAN("session.run");
  const EvalPlan& plan = impl_->plan;

  EvalReport report;
  report.mode = plan.mode;
  report.kernel = plan.kernel;
  report.seed = plan.seed;
  report.threads = impl_->pool.thread_count();
  report.strategy_names.reserve(plan.strategies.size());
  for (const auto& s : plan.strategies)
    report.strategy_names.push_back(s->name());

  // Lay out the report skeleton and the flat cell list. Slots are fixed
  // before any evaluation starts, so workers write disjoint memory.
  std::vector<Cell> cells;
  report.points.reserve(plan.points.size());
  for (std::size_t p = 0; p < plan.points.size(); ++p) {
    const PlanPoint& pp = plan.points[p];
    EvalReport::Point point;
    point.axis = pp.axis;
    point.break_even = pp.break_even;
    point.comparison.strategy_names = report.strategy_names;
    for (std::size_t v = 0; v < pp.fleet->size(); ++v) {
      const sim::StopTrace& t = (*pp.fleet)[v];
      if (t.stops.empty()) continue;  // legacy compare_strategies contract
      cells.push_back(Cell{p, v, point.comparison.vehicles.size()});
      sim::VehicleResult vr;
      vr.vehicle_id = t.vehicle_id;
      vr.area = t.area;
      vr.cr.resize(plan.strategies.size(), 0.0);
      point.comparison.vehicles.push_back(std::move(vr));
    }
    point.totals.resize(
        point.comparison.vehicles.size(),
        std::vector<sim::CostTotals>(plan.strategies.size()));
    report.points.push_back(std::move(point));
  }
  report.cells = cells.size() * plan.strategies.size();

  const double t0 = util::monotonic_seconds();

  // Pass 1: per-vehicle statistics caches, built in parallel, shared by
  // sweep points that reference the same fleet object.
  std::map<const sim::Fleet*, std::size_t> cache_of;
  impl_->cache_store.clear();
  impl_->point_caches.clear();
  for (const PlanPoint& pp : plan.points) {
    const sim::Fleet* key = pp.fleet.get();
    if (cache_of.find(key) == cache_of.end()) {
      cache_of.emplace(key, impl_->cache_store.size());
      auto arr = std::make_unique<std::vector<std::unique_ptr<VehicleCache>>>(
          key->size());
      impl_->cache_store.push_back(std::move(arr));
    }
  }
  for (const PlanPoint& pp : plan.points)
    impl_->point_caches.push_back(
        impl_->cache_store[cache_of[pp.fleet.get()]].get());

  {
    IDLERED_SPAN("session.cache_build");
    // Every break-even the plan evaluates a fleet at, so the statistics
    // (and, in batch mode, the offline totals) are warmed here in one
    // incremental ascending sweep per vehicle instead of recomputed on
    // first touch inside the evaluation cells.
    std::map<const sim::Fleet*, std::vector<double>> fleet_bs;
    for (const PlanPoint& pp : plan.points)
      fleet_bs[pp.fleet.get()].push_back(pp.break_even);

    // Flatten (unique fleet, vehicle) pairs for the parallel build.
    struct BuildItem {
      const sim::Fleet* fleet;
      std::vector<std::unique_ptr<VehicleCache>>* out;
      const std::vector<double>* break_evens;
      std::size_t vehicle;
    };
    std::vector<BuildItem> items;
    for (const auto& [fleet, idx] : cache_of) {
      for (std::size_t v = 0; v < fleet->size(); ++v)
        items.push_back(BuildItem{fleet, impl_->cache_store[idx].get(),
                                  &fleet_bs[fleet], v});
    }
    const bool batch_kernel = plan.kernel == EvalKernel::kBatch;
    impl_->pool.parallel_for(items.size(), [&](std::size_t i) {
      const BuildItem& it = items[i];
      auto cache = std::make_unique<VehicleCache>((*it.fleet)[it.vehicle]);
      if (cache->num_stops() > 0) cache->prewarm(*it.break_evens, batch_kernel);
      (*it.out)[it.vehicle] = std::move(cache);
    });
  }
  report.cache_build_seconds = util::monotonic_seconds() - t0;

  // Pass 2: evaluate every cell. Each task owns disjoint report slots; in
  // sampled mode each (point, vehicle, strategy) triple gets its own
  // counter-derived RNG stream, so the schedule cannot leak into results.
  impl_->pool.parallel_for(cells.size(), [&](std::size_t i) {
    IDLERED_SPAN("eval_cell");
    IDLERED_LOG_TIMER("engine.eval_cell.seconds");
    const Cell& cell = cells[i];
    const PlanPoint& pp = plan.points[cell.point];
    const VehicleCache& cache =
        *(*impl_->point_caches[cell.point])[cell.vehicle];
    EvalReport::Point& out = report.points[cell.point];

    for (std::size_t s = 0; s < plan.strategies.size(); ++s) {
      const StrategyBuilder& builder = *plan.strategies[s];
      const VehicleView view(cache, pp.break_even, builder.needs());
      const core::PolicyPtr policy = builder.build(view);

      sim::EvalOptions opts;
      opts.mode = plan.mode;
      opts.kernel = plan.kernel;
      std::optional<util::Rng> rng;  // seeded only when a draw happens
      if (plan.mode == EvalMode::kSampled) {
        rng.emplace(cell_seed(plan.seed, cell.point, cell.vehicle, s));
        opts.rng = &*rng;
      }

      // The batch overload runs over the cache's prevalidated StopBatch so
      // the per-B offline total is shared across the strategy lineup.
      const sim::CostTotals totals =
          plan.kernel == EvalKernel::kBatch
              ? sim::evaluate(*policy, cache.batch(), opts)
              : sim::evaluate(*policy, cache.stops(), opts);
      out.totals[cell.slot][s] = totals;
      out.comparison.vehicles[cell.slot].cr[s] = totals.cr();
      IDLERED_OBS_ONLY(if (obs::enabled()) {
        trace_cell_decision(*policy, report.strategy_names[s], cell.point,
                            pp.axis, pp.break_even,
                            out.comparison.vehicles[cell.slot].vehicle_id,
                            totals);
      })
    }
  });

  report.wall_seconds = util::monotonic_seconds() - t0;
  report.eval_seconds = report.wall_seconds - report.cache_build_seconds;
  IDLERED_ENSURES(report.points.size() == plan.points.size(),
                  "EvalSession: report must carry one entry per plan point");
  return report;
}

sim::FleetComparison compare_strategies_parallel(
    const sim::Fleet& fleet, double break_even,
    const std::vector<StrategyBuilderPtr>& strategies, int threads) {
  // Non-owning alias: the caller's fleet outlives the session.
  std::shared_ptr<const sim::Fleet> ref(std::shared_ptr<void>(), &fleet);
  EvalPlan plan = EvalPlan::single(std::move(ref), break_even, strategies);
  plan.threads = threads;
  EvalSession session(std::move(plan));
  EvalReport report = session.run();
  return std::move(report.points.front().comparison);
}

}  // namespace idlered::engine
