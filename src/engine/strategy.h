// StrategyBuilder: the engine-native replacement for the bare
// std::function PolicyFactory of sim/fleet_eval.h.
//
// A builder carries a name plus a *declaration* of the side information it
// is entitled to read when instantiating its policy for a vehicle:
//
//   kNone          TOI / NEV / DET / N-Rand — distribution-free
//   kFirstMoment   MOM-Rand — the vehicle's mean stop length
//   kShortStopStats COA — the (mu_B_minus, q_B_plus) pair at the session B
//   kFullTrace     legacy factories wrapped by LegacyStrategyAdaptor, which
//                  received the whole StopTrace and may read anything
//
// The declaration lets the engine (a) validate up front that it can supply
// what every strategy needs, (b) compute and cache exactly that — a
// strategy that declares kNone can never silently start depending on trace
// statistics — and (c) keep the information asymmetry of the paper's
// comparison honest: VehicleView throws if a builder reads beyond its
// declaration.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/policy.h"
#include "costmodel/multislope.h"
#include "engine/vehicle_cache.h"
#include "sim/fleet_eval.h"

namespace idlered::engine {

enum class SideInfo {
  kNone = 0,
  kFirstMoment = 1,
  kShortStopStats = 2,
  kFullTrace = 3,
};

std::string to_string(SideInfo s);

/// What a builder sees of one vehicle: accessors are gated by the builder's
/// declared SideInfo level (each level includes the previous ones).
class VehicleView {
 public:
  VehicleView(const VehicleCache& cache, double break_even, SideInfo granted);

  const std::string& vehicle_id() const { return cache_->vehicle_id(); }
  double break_even() const { return break_even_; }

  /// Requires kFirstMoment or higher.
  double first_moment() const;

  /// (mu_B_minus, q_B_plus) at break_even(). Requires kShortStopStats or
  /// higher. Served from the per-vehicle cache.
  dist::ShortStopStats short_stop_stats() const;

  /// (mu_b-, q_b+) at an arbitrary break-even b — the multislope COA reads
  /// one pair per transition breakpoint t_i. Same kShortStopStats gate and
  /// the same memoized cache as short_stop_stats(); b must be finite and
  /// > 0 (contract).
  dist::ShortStopStats short_stop_stats_at(double b) const;

  /// The raw stop lengths. Requires kFullTrace.
  std::span<const double> stops() const;

  /// The full trace object (legacy adaptor only). Requires kFullTrace.
  const sim::StopTrace& trace() const;

 private:
  void require(SideInfo needed, const char* what) const;

  const VehicleCache* cache_;
  double break_even_;
  SideInfo granted_;
};

class StrategyBuilder {
 public:
  virtual ~StrategyBuilder() = default;

  /// Short identifier used in tables ("TOI", "COA", ...).
  virtual std::string name() const = 0;

  /// The side information this strategy is entitled to.
  virtual SideInfo needs() const = 0;

  /// Instantiate the policy for one vehicle. `view` is gated to needs().
  virtual core::PolicyPtr build(const VehicleView& view) const = 0;
};

using StrategyBuilderPtr = std::shared_ptr<const StrategyBuilder>;

/// Convenience: build a StrategyBuilder from a name, a declared level and a
/// callable (const VehicleView&) -> PolicyPtr.
StrategyBuilderPtr make_strategy(
    std::string name, SideInfo needs,
    std::function<core::PolicyPtr(const VehicleView&)> build);

/// The paper's Figure-4 lineup as builders: TOI, NEV, DET, N-Rand (kNone),
/// MOM-Rand (kFirstMoment), COA (kShortStopStats) — the engine-native
/// migration of sim::standard_strategy_set(), same names, same order, same
/// policies.
std::vector<StrategyBuilderPtr> standard_strategy_set();

/// The multislope strategy family over one k-slope engine-state profile:
/// MS-NEV / MS-DET / MS-Rand (kNone) and MS-COA (kShortStopStats — one
/// (mu, q) pair per transition breakpoint, served by the vehicle cache).
/// On SlopeProfile::two_slope(B) each policy is bit-identical to its
/// two-slope counterpart, so appending this set to standard_strategy_set()
/// yields directly comparable CR columns (every policy reports
/// break_even() = the profile's deepest switch cost).
std::vector<StrategyBuilderPtr> multislope_strategy_set(
    const costmodel::SlopeProfile& profile);

/// Compatibility adaptor: wraps a legacy sim::StrategySpec (bare
/// PolicyFactory over the whole StopTrace) as a builder with
/// needs() == kFullTrace.
StrategyBuilderPtr wrap_legacy(sim::StrategySpec spec);

/// Wrap a whole legacy lineup.
std::vector<StrategyBuilderPtr> wrap_legacy(
    const std::vector<sim::StrategySpec>& specs);

}  // namespace idlered::engine
