// Work-stealing chunked thread pool — the execution substrate of the
// fleet-evaluation engine.
//
// The only primitive the engine needs is a blocking parallel_for over a
// dense index range. The range is pre-split into one contiguous segment per
// worker; each worker consumes its own segment from the front in fixed-size
// chunks and, when its segment runs dry, steals the back half of the
// largest remaining segment. Chunked self-consumption keeps the common case
// cheap (one lock acquisition per chunk on an uncontended mutex); stealing
// bounds the tail latency when per-index costs are skewed (a handful of
// vehicles with 10x the stops of the rest).
//
// Determinism contract: parallel_for guarantees fn(i) is invoked exactly
// once for every i in [0, n), on some thread, in unspecified order. Callers
// that need deterministic output (the whole engine) must write results to
// disjoint, preallocated slots indexed by i and must not accumulate across
// indices inside fn.
#pragma once

#include <cstddef>
#include <functional>

namespace idlered::engine {

class ThreadPool {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  /// Invoke fn(i) exactly once for every i in [0, n) and block until all
  /// invocations return. The first exception thrown by fn (if any) is
  /// rethrown on the calling thread after the range has been abandoned at
  /// chunk granularity. With thread_count() == 1 the loop runs entirely on
  /// the single worker (still off the calling thread), so a 1-thread pool
  /// is the reference serial schedule.
  /// `chunk` is the number of consecutive indices a worker claims at a
  /// time; <= 0 selects a size that targets ~8 chunks per worker.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t chunk = 0);

 private:
  struct Impl;
  Impl* impl_;
  int threads_;
};

}  // namespace idlered::engine
