#include "engine/strategy.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/policies.h"
#include "core/proposed.h"
#include "costmodel/multislope_policy.h"
#include "util/contracts.h"

namespace idlered::engine {

std::string to_string(SideInfo s) {
  switch (s) {
    case SideInfo::kNone: return "none";
    case SideInfo::kFirstMoment: return "first-moment";
    case SideInfo::kShortStopStats: return "(mu_B-, q_B+)";
    case SideInfo::kFullTrace: return "full-trace";
  }
  return "?";
}

VehicleView::VehicleView(const VehicleCache& cache, double break_even,
                         SideInfo granted)
    : cache_(&cache), break_even_(break_even), granted_(granted) {}

void VehicleView::require(SideInfo needed, const char* what) const {
  if (static_cast<int>(granted_) < static_cast<int>(needed)) {
    throw std::logic_error(
        std::string("VehicleView: strategy declared needs() = ") +
        to_string(granted_) + " but read " + what +
        " (requires " + to_string(needed) + ")");
  }
}

double VehicleView::first_moment() const {
  require(SideInfo::kFirstMoment, "first_moment()");
  return cache_->first_moment();
}

dist::ShortStopStats VehicleView::short_stop_stats() const {
  require(SideInfo::kShortStopStats, "short_stop_stats()");
  return cache_->stats_for(break_even_);
}

dist::ShortStopStats VehicleView::short_stop_stats_at(double b) const {
  require(SideInfo::kShortStopStats, "short_stop_stats_at()");
  IDLERED_EXPECTS(std::isfinite(b) && b > 0.0,
                  "VehicleView::short_stop_stats_at: break-even must be "
                  "finite and > 0");
  return cache_->stats_for(b);
}

std::span<const double> VehicleView::stops() const {
  require(SideInfo::kFullTrace, "stops()");
  return cache_->stops();
}

const sim::StopTrace& VehicleView::trace() const {
  require(SideInfo::kFullTrace, "trace()");
  return cache_->trace();
}

namespace {

class LambdaStrategy final : public StrategyBuilder {
 public:
  LambdaStrategy(std::string name, SideInfo needs,
                 std::function<core::PolicyPtr(const VehicleView&)> build)
      : name_(std::move(name)), needs_(needs), build_(std::move(build)) {}

  std::string name() const override { return name_; }
  SideInfo needs() const override { return needs_; }
  core::PolicyPtr build(const VehicleView& view) const override {
    return build_(view);
  }

 private:
  std::string name_;
  SideInfo needs_;
  std::function<core::PolicyPtr(const VehicleView&)> build_;
};

class LegacyStrategyAdaptor final : public StrategyBuilder {
 public:
  explicit LegacyStrategyAdaptor(sim::StrategySpec spec)
      : spec_(std::move(spec)) {
    if (!spec_.factory)
      throw std::invalid_argument("wrap_legacy: spec has no factory");
  }

  std::string name() const override { return spec_.name; }
  SideInfo needs() const override { return SideInfo::kFullTrace; }
  core::PolicyPtr build(const VehicleView& view) const override {
    return spec_.factory(view.trace(), view.break_even());
  }

 private:
  sim::StrategySpec spec_;
};

}  // namespace

StrategyBuilderPtr make_strategy(
    std::string name, SideInfo needs,
    std::function<core::PolicyPtr(const VehicleView&)> build) {
  if (!build) throw std::invalid_argument("make_strategy: empty callable");
  return std::make_shared<LambdaStrategy>(std::move(name), needs,
                                          std::move(build));
}

std::vector<StrategyBuilderPtr> standard_strategy_set() {
  std::vector<StrategyBuilderPtr> set;
  set.push_back(make_strategy("TOI", SideInfo::kNone,
                              [](const VehicleView& v) {
                                return core::make_toi(v.break_even());
                              }));
  set.push_back(make_strategy("NEV", SideInfo::kNone,
                              [](const VehicleView& v) {
                                return core::make_nev(v.break_even());
                              }));
  set.push_back(make_strategy("DET", SideInfo::kNone,
                              [](const VehicleView& v) {
                                return core::make_det(v.break_even());
                              }));
  set.push_back(make_strategy("N-Rand", SideInfo::kNone,
                              [](const VehicleView& v) {
                                return core::make_n_rand(v.break_even());
                              }));
  set.push_back(make_strategy("MOM-Rand", SideInfo::kFirstMoment,
                              [](const VehicleView& v) {
                                return core::make_mom_rand(v.break_even(),
                                                           v.first_moment());
                              }));
  set.push_back(make_strategy(
      "COA", SideInfo::kShortStopStats, [](const VehicleView& v) {
        return core::make_proposed(v.break_even(), v.short_stop_stats());
      }));
  return set;
}

std::vector<StrategyBuilderPtr> multislope_strategy_set(
    const costmodel::SlopeProfile& profile) {
  // One shared canonical profile; builders are copied around freely, so
  // they hold it by shared_ptr rather than re-pruning per vehicle.
  auto shared = std::make_shared<const costmodel::SlopeProfile>(profile);
  std::vector<StrategyBuilderPtr> set;
  set.push_back(make_strategy("MS-NEV", SideInfo::kNone,
                              [shared](const VehicleView&) {
                                return costmodel::make_ms_nev(*shared);
                              }));
  set.push_back(make_strategy("MS-DET", SideInfo::kNone,
                              [shared](const VehicleView&) {
                                return costmodel::make_ms_det(*shared);
                              }));
  set.push_back(make_strategy("MS-Rand", SideInfo::kNone,
                              [shared](const VehicleView&) {
                                return costmodel::make_ms_rand(*shared);
                              }));
  set.push_back(make_strategy(
      "MS-COA", SideInfo::kShortStopStats, [shared](const VehicleView& v) {
        std::vector<dist::ShortStopStats> stats;
        stats.reserve(shared->num_transitions());
        for (double t : shared->breakpoints())
          stats.push_back(v.short_stop_stats_at(t));
        return costmodel::make_ms_coa(*shared, std::move(stats));
      }));
  return set;
}

StrategyBuilderPtr wrap_legacy(sim::StrategySpec spec) {
  return std::make_shared<LegacyStrategyAdaptor>(std::move(spec));
}

std::vector<StrategyBuilderPtr> wrap_legacy(
    const std::vector<sim::StrategySpec>& specs) {
  std::vector<StrategyBuilderPtr> out;
  out.reserve(specs.size());
  for (const sim::StrategySpec& s : specs) out.push_back(wrap_legacy(s));
  return out;
}

}  // namespace idlered::engine
