// The fleet-evaluation engine's single front door.
//
//   EvalPlan     what to evaluate: a sweep of (axis value, break-even,
//                fleet) points x a lineup of StrategyBuilders, in expected
//                or sampled mode.
//   EvalSession  validates the plan, builds the per-vehicle statistics
//                caches, and runs every (point, vehicle, strategy) cell on
//                a work-stealing thread pool.
//   EvalReport   the structured result: per-point FleetComparisons plus
//                aggregates and run metadata (wall time, threads, cells).
//
// Determinism: reports are bit-identical regardless of thread count.
//  * Expected mode is pure arithmetic on preallocated slots — no shared
//    accumulation, no order dependence.
//  * Sampled mode derives one RNG stream per (point, vehicle, strategy)
//    cell from a counter-based seed (SplitMix64 over the cell coordinates
//    mixed with the plan seed), so a cell draws the same thresholds no
//    matter which thread runs it or when.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/strategy.h"
#include "sim/evaluator.h"
#include "sim/fleet_eval.h"
#include "sim/trace.h"

namespace idlered::engine {

using sim::EvalKernel;
using sim::EvalMode;

/// One sweep point: a fleet evaluated at one break-even interval. `axis` is
/// the user-facing sweep coordinate (mean stop length for Figures 5/6, B
/// for a break-even sweep, anything the caller likes); it is carried
/// through to the report untouched.
struct PlanPoint {
  double axis = 0.0;
  double break_even = 0.0;
  std::shared_ptr<const sim::Fleet> fleet;
};

struct EvalPlan {
  std::vector<PlanPoint> points;
  std::vector<StrategyBuilderPtr> strategies;
  EvalMode mode = EvalMode::kExpected;
  /// Which evaluation kernel runs each cell's stop loop. kScalar is the
  /// historical per-stop path; kBatch runs the SIMD kernels over the
  /// vehicle cache's prevalidated StopBatch, with per-B offline totals
  /// shared across the strategy lineup. Both kernels keep the engine's
  /// determinism contract (reports bit-identical across thread counts);
  /// batch totals differ from scalar totals only by summation-order
  /// rounding (sim/batch_kernels.h documents the bound).
  sim::EvalKernel kernel = sim::EvalKernel::kScalar;
  std::uint64_t seed = 0;  ///< base seed for sampled mode
  int threads = 0;         ///< 0 = hardware concurrency

  /// Convenience: single point, expected mode — the Figure-4 shape.
  static EvalPlan single(std::shared_ptr<const sim::Fleet> fleet,
                         double break_even,
                         std::vector<StrategyBuilderPtr> strategies);
};

/// The counter-based per-cell seed (exposed for tests).
std::uint64_t cell_seed(std::uint64_t base, std::size_t point,
                        std::size_t vehicle, std::size_t strategy);

struct EvalReport {
  struct Point {
    double axis = 0.0;
    double break_even = 0.0;
    /// Per-vehicle CRs in strategy order; vehicles with no stops are
    /// skipped, mirroring the legacy compare_strategies contract. Reuses
    /// the legacy aggregate helpers (mean_cr / worst_cr / best_counts /
    /// filter_area).
    sim::FleetComparison comparison;
    /// Per-vehicle, per-strategy cost totals (same vehicle order as
    /// `comparison.vehicles`; totals[v][s]).
    std::vector<std::vector<sim::CostTotals>> totals;
  };

  std::vector<std::string> strategy_names;
  std::vector<Point> points;

  EvalMode mode = EvalMode::kExpected;
  sim::EvalKernel kernel = sim::EvalKernel::kScalar;
  std::uint64_t seed = 0;
  int threads = 0;             ///< pool width the session actually used
  std::size_t cells = 0;       ///< (point, vehicle, strategy) cells evaluated
  double wall_seconds = 0.0;   ///< evaluation wall time (excludes plan setup)
  /// Breakdown of wall_seconds: the per-vehicle cache/prewarm pass vs the
  /// cell-evaluation pass — the denominator of any kernel speedup claim,
  /// since the cache pass is identical work under either kernel.
  double cache_build_seconds = 0.0;
  double eval_seconds = 0.0;
};

class EvalSession {
 public:
  /// Validates the plan up front: at least one strategy, no null fleets or
  /// builders, positive break-evens. Throws std::invalid_argument.
  explicit EvalSession(EvalPlan plan);
  ~EvalSession();

  EvalSession(const EvalSession&) = delete;
  EvalSession& operator=(const EvalSession&) = delete;

  /// Evaluate the whole plan. Repeatable: every run() returns an identical
  /// report (modulo wall_seconds).
  EvalReport run();

  int thread_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-call engine-backed replacement for sim::compare_strategies: expected
/// mode, parallel, same result shape.
sim::FleetComparison compare_strategies_parallel(
    const sim::Fleet& fleet, double break_even,
    const std::vector<StrategyBuilderPtr>& strategies, int threads = 0);

}  // namespace idlered::engine
