// Online estimation of the side statistics (mu_B_minus, q_B_plus).
//
// The paper assumes the statistics are given; a deployed stop-start
// controller must learn them from the vehicle's own stop history. This
// module provides two estimators:
//
//  * StatsEstimator — running sample averages over the full history;
//  * DecayingStatsEstimator — exponentially forgetting averages, so the
//    controller adapts when traffic conditions drift (rush hour vs. night).
//
// Both feed ProposedPolicy; the ablation bench A2 quantifies how estimation
// error affects the achieved CR.
#pragma once

#include <cstddef>

#include "dist/distribution.h"
#include "stats/rolling.h"

namespace idlered::core {

/// Full-history estimator:
///   mu_B_minus ~= (1/n) sum y_i 1{y_i < B},  q_B_plus ~= #{y_i >= B} / n.
/// A thin facade over stats::ShortStopAccumulator (the O(1) incremental
/// sufficient-statistics core shared with the sliding-window estimator).
class StatsEstimator {
 public:
  explicit StatsEstimator(double break_even);

  /// Folds one stop into the estimate; throws std::invalid_argument unless
  /// stop_length is finite and >= 0 (see robust::GuardedEstimator for a
  /// never-throwing front end).
  void observe(double stop_length);

  std::size_t count() const { return acc_.count(); }
  bool has_observations() const { return !acc_.empty(); }

  /// Current estimate; throws std::logic_error before any observation.
  dist::ShortStopStats stats() const;

  double break_even() const { return acc_.break_even(); }

 private:
  stats::ShortStopAccumulator acc_;
};

/// Exponentially weighted estimator with per-observation decay factor
/// `lambda` in (0, 1]: weight of an observation k stops in the past is
/// lambda^k. lambda = 1 reproduces StatsEstimator exactly.
class DecayingStatsEstimator {
 public:
  DecayingStatsEstimator(double break_even, double lambda);

  /// Folds one stop into the estimate; throws std::invalid_argument unless
  /// stop_length is finite and >= 0.
  void observe(double stop_length);

  bool has_observations() const { return weight_ > 0.0; }
  dist::ShortStopStats stats() const;

  double break_even() const { return break_even_; }
  double lambda() const { return lambda_; }

  /// Effective sample size 1/(1-lambda) in steady state (inf for lambda=1).
  double effective_window() const;

 private:
  double break_even_;
  double lambda_;
  double weight_ = 0.0;       ///< sum of weights
  double short_sum_ = 0.0;    ///< weighted sum of short-stop lengths
  double long_weight_ = 0.0;  ///< weighted count of long stops
};

}  // namespace idlered::core
