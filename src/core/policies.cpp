#include "core/policies.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/costs.h"
#include "util/math.h"

namespace idlered::core {

using util::kE;

// ------------------------------------------------------------ ThresholdPolicy

ThresholdPolicy::ThresholdPolicy(double break_even, double threshold,
                                 std::string name)
    : Policy(break_even), threshold_(threshold), name_(std::move(name)) {
  if (threshold < 0.0)
    throw std::invalid_argument("ThresholdPolicy: threshold must be >= 0");
}

double ThresholdPolicy::expected_cost(double y) const {
  if (y < 0.0) throw std::invalid_argument("expected_cost: y must be >= 0");
  if (std::isinf(threshold_)) return y;  // NEV: idle through the whole stop
  return online_cost(threshold_, y, break_even());
}

double ThresholdPolicy::sample_threshold(util::Rng& /*rng*/) const {
  return threshold_;
}

PolicyPtr make_nev(double break_even) {
  return std::make_shared<ThresholdPolicy>(
      break_even, std::numeric_limits<double>::infinity(), "NEV");
}

PolicyPtr make_toi(double break_even) {
  return std::make_shared<ThresholdPolicy>(break_even, 0.0, "TOI");
}

PolicyPtr make_det(double break_even) {
  return std::make_shared<ThresholdPolicy>(break_even, break_even, "DET");
}

PolicyPtr make_b_det(double break_even, double b) {
  if (!(b > 0.0) || b > break_even)
    throw std::invalid_argument("make_b_det: need 0 < b <= B");
  return std::make_shared<ThresholdPolicy>(break_even, b, "b-DET");
}

// ----------------------------------------------------------------- NRandPolicy

NRandPolicy::NRandPolicy(double break_even) : Policy(break_even) {}

double NRandPolicy::pdf(double x) const {
  const double b = break_even();
  if (x < 0.0 || x > b) return 0.0;
  return std::exp(x / b) / (b * (kE - 1.0));
}

double NRandPolicy::cdf(double x) const {
  const double b = break_even();
  if (x <= 0.0) return 0.0;
  if (x >= b) return 1.0;
  return (std::exp(x / b) - 1.0) / (kE - 1.0);
}

double NRandPolicy::expected_cost(double y) const {
  if (y < 0.0) throw std::invalid_argument("expected_cost: y must be >= 0");
  // Equalizing property of the density e^{x/B}/(B(e-1)):
  //   integral_0^y (x+B) P(x) dx + y integral_y^B P(x) dx
  //     = e/(e-1) * y                        for y <= B
  //   integral_0^B (x+B) P(x) dx = e/(e-1)*B for y >= B
  // i.e. exactly e/(e-1) times the offline cost, for every y.
  return util::kEOverEMinus1 * offline_cost(y, break_even());
}

double NRandPolicy::sample_threshold(util::Rng& rng) const {
  // Inverse CDF: u = (e^{x/B} - 1)/(e - 1)  =>  x = B ln(1 + u(e-1)).
  const double u = rng.uniform();
  return break_even() * std::log(1.0 + u * (kE - 1.0));
}

PolicyPtr make_n_rand(double break_even) {
  return std::make_shared<NRandPolicy>(break_even);
}

// --------------------------------------------------------------- MomRandPolicy

double MomRandPolicy::mu_threshold(double break_even) {
  return 2.0 * (kE - 2.0) / (kE - 1.0) * break_even;  // ~= 0.836 B
}

MomRandPolicy::MomRandPolicy(double break_even, double mu)
    : Policy(break_even),
      revised_(mu <= mu_threshold(break_even)),
      fallback_(break_even) {
  if (mu < 0.0) throw std::invalid_argument("MomRandPolicy: mu must be >= 0");
}

double MomRandPolicy::pdf(double x) const {
  if (!revised_) return fallback_.pdf(x);
  const double b = break_even();
  if (x < 0.0 || x > b) return 0.0;
  return (std::exp(x / b) - 1.0) / (b * (kE - 2.0));
}

double MomRandPolicy::cdf(double x) const {
  if (!revised_) return fallback_.cdf(x);
  const double b = break_even();
  if (x <= 0.0) return 0.0;
  if (x >= b) return 1.0;
  return (b * (std::exp(x / b) - 1.0) - x) / (b * (kE - 2.0));
}

double MomRandPolicy::expected_cost(double y) const {
  if (!revised_) return fallback_.expected_cost(y);
  if (y < 0.0) throw std::invalid_argument("expected_cost: y must be >= 0");
  const double b = break_even();
  // For the density (e^{x/B} - 1)/(B(e-2)) and y <= B:
  //   integral_0^y (x+B)(e^{x/B}-1) dx = B y e^{y/B} - y^2/2 - B y
  //   y integral_y^B (e^{x/B}-1) dx   = y (B e - B e^{y/B} - B + y)
  // summing and dividing by B(e-2):
  //   E[cost] = y (y/2 - 2B + B e) / (B (e - 2))
  // For y >= B the first integral alone applies with y = B:
  //   E[cost] = B (e - 3/2) / (e - 2)
  if (y <= b) {
    return y * (0.5 * y - 2.0 * b + b * kE) / (b * (kE - 2.0));
  }
  return b * (kE - 1.5) / (kE - 2.0);
}

double MomRandPolicy::sample_threshold(util::Rng& rng) const {
  if (!revised_) return fallback_.sample_threshold(rng);
  // Numeric inverse of the revised CDF (strictly increasing on [0, B]).
  const double u = rng.uniform();
  const double b = break_even();
  if (u <= 0.0) return 0.0;
  if (u >= 1.0) return b;
  return util::bisect([this, u](double x) { return cdf(x) - u; }, 0.0, b,
                      1e-12 * b);
}

PolicyPtr make_mom_rand(double break_even, double mu) {
  return std::make_shared<MomRandPolicy>(break_even, mu);
}

// ----------------------------------------------------- GenericRandomizedPolicy

GenericRandomizedPolicy::GenericRandomizedPolicy(
    double break_even, std::function<double(double)> pdf_on_0_b,
    std::string name)
    : Policy(break_even), pdf_(std::move(pdf_on_0_b)), name_(std::move(name)) {
  if (!pdf_) throw std::invalid_argument("GenericRandomizedPolicy: null pdf");
  norm_ = util::integrate(pdf_, 0.0, break_even, 1e-10);
  if (!util::approx_equal(norm_, 1.0, 1e-6, 1e-6))
    throw std::invalid_argument(
        "GenericRandomizedPolicy: pdf must integrate to 1 over [0, B]");
}

double GenericRandomizedPolicy::cdf(double x) const {
  const double b = break_even();
  if (x <= 0.0) return 0.0;
  if (x >= b) return 1.0;
  return util::integrate(pdf_, 0.0, x, 1e-10) / norm_;
}

double GenericRandomizedPolicy::expected_cost(double y) const {
  if (y < 0.0) throw std::invalid_argument("expected_cost: y must be >= 0");
  const double b = break_even();
  const double top = std::min(y, b);
  // integral_0^min(y,B) (x+B) P(x) dx: stops where the policy shut off first.
  const double shutoff_part = util::integrate(
      [this, b](double x) { return (x + b) * pdf_(x); }, 0.0, top, 1e-10);
  if (y >= b) return shutoff_part / norm_;
  // integral_y^B P(x) dx: stops where the vehicle moved before the threshold.
  const double survive_mass = util::integrate(pdf_, y, b, 1e-10);
  return (shutoff_part + y * survive_mass) / norm_;
}

double GenericRandomizedPolicy::sample_threshold(util::Rng& rng) const {
  const double u = rng.uniform();
  const double b = break_even();
  if (u <= 0.0) return 0.0;
  if (u >= 1.0) return b;
  return util::bisect([this, u](double x) { return cdf(x) - u; }, 0.0, b,
                      1e-10 * b);
}

}  // namespace idlered::core
