// The paper's generic solution format, eq. (18):
//
//   P(x) = p(x) + alpha delta(x - eps) + beta delta(x - B) + gamma delta(x - b)
//
// a mixed decision distribution over idle-wait thresholds: a continuous
// density p(x) on [0, B] plus point masses at 0+ (TOI), at B (DET), and at
// an interior b (b-DET). This module represents such objects explicitly —
// atoms plus a scaled N-Rand-shaped continuous part — computes their exact
// expected cost C(P, y) (eq. 19-20), samples thresholds, and builds the
// optimal P(x) from a constrained-LP solution. The vertex solutions of
// Section 4.4 are the special cases with all mass in one component; tests
// verify the mixed object degenerates to each of them exactly.
#pragma once

#include <string>
#include <vector>

#include "core/policy.h"
#include "core/solver_lp.h"

namespace idlered::core {

class DecisionDistribution final : public Policy {
 public:
  struct Atom {
    double threshold = 0.0;  ///< x location in [0, B]
    double mass = 0.0;       ///< probability, >= 0
  };

  /// `continuous_mass` rides on the N-Rand-shaped density
  /// e^{x/B} / (B (e-1)), scaled to that mass — the shape eq. (29)-(30)
  /// proves optimal for the continuous part. Masses must sum to 1.
  DecisionDistribution(double break_even, std::vector<Atom> atoms,
                       double continuous_mass);

  std::string name() const override { return "Mixed-P(x)"; }

  /// Exact expected cost, eq. (19)-(20): atoms contribute
  /// online_cost(x_i, y) with weight m_i; the continuous part contributes
  /// its closed-form equalizer value scaled by its mass.
  double expected_cost(double y) const override;

  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override;

  const std::vector<Atom>& atoms() const { return atoms_; }
  double continuous_mass() const { return continuous_mass_; }

  /// Total probability mass at threshold <= x (CDF of P).
  double cdf(double x) const;

  /// Build the optimal mixed distribution from an LP solution: alpha at
  /// 0+, beta at B, gamma at b*, remainder on the continuous part.
  static DecisionDistribution from_lp_solution(
      double break_even, const LpStrategySolution& solution);

  /// Build directly from statistics (solves the LP internally).
  static DecisionDistribution optimal(double break_even,
                                      const dist::ShortStopStats& stats);

 private:
  std::vector<Atom> atoms_;
  double continuous_mass_;
};

}  // namespace idlered::core
