// The paper's proposed online algorithm ("COA" — Cost-efficient Online
// Algorithm). Given the side statistics (mu_B_minus, q_B_plus) it selects
// the minimum-worst-case-cost vertex strategy (Section 4.4, Figure 1a) and
// behaves as that strategy from then on.
#pragma once

#include "core/analytic.h"
#include "core/policy.h"
#include "dist/distribution.h"

namespace idlered::core {

class ProposedPolicy final : public Policy {
 public:
  /// Builds from explicit side statistics.
  ProposedPolicy(double break_even, const dist::ShortStopStats& stats);

  /// Convenience: derive the statistics from a stop-length distribution.
  ProposedPolicy(double break_even, const dist::StopLengthDistribution& q);

  /// Convenience: derive the statistics empirically from a stop sample
  /// (what a deployed controller learns from the vehicle's history).
  ProposedPolicy(double break_even, const std::vector<double>& stop_sample);

  std::string name() const override { return "COA"; }
  double expected_cost(double y) const override;
  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override;

  /// Which vertex strategy was selected and its worst-case guarantees.
  const StrategyChoice& choice() const { return choice_; }
  const dist::ShortStopStats& stats() const { return stats_; }

  /// Worst-case CR guarantee of the selection (eq. 38 when b-DET wins).
  double worst_case_cr() const { return choice_.cr; }

 private:
  dist::ShortStopStats stats_;
  StrategyChoice choice_;
  PolicyPtr delegate_;
};

/// Factory matching the make_* family of policies.h.
PolicyPtr make_proposed(double break_even, const dist::ShortStopStats& stats);

}  // namespace idlered::core
