// The concrete online strategies of the paper (Section 2.2 and Section 4):
//
//   NEV      never turn the engine off (threshold +inf)
//   TOI      turn off immediately (threshold 0)
//   DET      Karlin et al. deterministic: wait exactly B (2-competitive)
//   b-DET    wait exactly b in (0, B) — the new vertex of the paper's LP
//   N-Rand   Karlin et al. randomized, pdf e^{x/B} / (B(e-1)) on [0, B]
//            (e/(e-1)-competitive in expectation, the "equalizer")
//   MOM-Rand Khanafer et al. first-moment randomized,
//            pdf (e^{x/B} - 1) / (B(e-2)) on [0, B] when mu <= 2(e-2)/(e-1) B,
//            else identical to N-Rand
//
// All expected costs are closed-form (derivations in the .cpp); a generic
// quadrature-based randomized policy is provided for arbitrary densities and
// serves as the oracle the closed forms are tested against.
#pragma once

#include <functional>
#include <string>

#include "core/policy.h"

namespace idlered::core {

/// Deterministic policy waiting exactly `threshold` seconds before shutting
/// the engine off. threshold = 0 is TOI, threshold = B is DET, +inf is NEV.
class ThresholdPolicy final : public Policy {
 public:
  ThresholdPolicy(double break_even, double threshold, std::string name);

  std::string name() const override { return name_; }
  double expected_cost(double y) const override;
  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override { return true; }

  double threshold() const { return threshold_; }

 private:
  double threshold_;
  std::string name_;
};

/// "Never turn the engine off" — the behaviour of drivers reluctant to stop
/// the engine. Costs y on every stop; unbounded competitive ratio.
PolicyPtr make_nev(double break_even);

/// "Turn off immediately" — the naive SSV factory strategy. Costs B always.
PolicyPtr make_toi(double break_even);

/// Deterministic ski-rental strategy, wait until B. 2-competitive.
PolicyPtr make_det(double break_even);

/// Deterministic wait-until-b strategy for b in (0, B].
PolicyPtr make_b_det(double break_even, double b);

/// Karlin et al. randomized strategy (eq. 7). Its expected cost equalizes:
/// E[cost] = e/(e-1) * cost_offline(y) for every y.
class NRandPolicy final : public Policy {
 public:
  explicit NRandPolicy(double break_even);

  std::string name() const override { return "N-Rand"; }
  double expected_cost(double y) const override;
  double sample_threshold(util::Rng& rng) const override;  ///< inverse CDF
  bool deterministic() const override { return false; }

  double pdf(double x) const;  ///< e^{x/B} / (B(e-1)) on [0, B]
  double cdf(double x) const;
};

PolicyPtr make_n_rand(double break_even);

/// Khanafer et al. first-moment randomized strategy (eq. 9). Falls back to
/// N-Rand when the first moment mu exceeds 2(e-2)/(e-1) * B ~= 0.836 B.
class MomRandPolicy final : public Policy {
 public:
  /// `mu` is the (full) first moment of the stop-length distribution.
  MomRandPolicy(double break_even, double mu);

  std::string name() const override { return "MOM-Rand"; }
  double expected_cost(double y) const override;
  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override { return false; }

  /// True when mu was small enough for the revised density to apply.
  bool revised() const { return revised_; }

  double pdf(double x) const;
  double cdf(double x) const;

  /// The activation threshold 2(e-2)/(e-1) * B of the revised density.
  static double mu_threshold(double break_even);

 private:
  bool revised_;
  NRandPolicy fallback_;
};

PolicyPtr make_mom_rand(double break_even, double mu);

/// Generic randomized policy over an arbitrary density on [0, B]; expected
/// costs by adaptive quadrature, sampling by numeric inverse CDF. Exists to
/// cross-validate the closed-form policies and to experiment with custom
/// densities.
class GenericRandomizedPolicy final : public Policy {
 public:
  GenericRandomizedPolicy(double break_even,
                          std::function<double(double)> pdf_on_0_b,
                          std::string name);

  std::string name() const override { return name_; }
  double expected_cost(double y) const override;
  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override { return false; }

  double cdf(double x) const;

 private:
  std::function<double(double)> pdf_;
  std::string name_;
  double norm_;  ///< integral of pdf over [0, B]; must be ~1
};

}  // namespace idlered::core
