#include "core/analytic.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/costs.h"
#include "util/contracts.h"
#include "util/math.h"

namespace idlered::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void require_feasible(const dist::ShortStopStats& s, double break_even) {
  require_valid_break_even(break_even);
  IDLERED_EXPECTS(
      s.feasible(break_even),
      "ShortStopStats infeasible: need 0 <= q <= 1 and mu <= B(1-q)");
}

double offline(const dist::ShortStopStats& s, double break_even) {
  return s.expected_offline_cost(break_even);
}

}  // namespace

std::string to_string(Strategy s) {
  switch (s) {
    case Strategy::kToi: return "TOI";
    case Strategy::kDet: return "DET";
    case Strategy::kBDet: return "b-DET";
    case Strategy::kNRand: return "N-Rand";
  }
  return "unknown";
}

double worst_case_cost_nrand(const dist::ShortStopStats& s,
                             double break_even) {
  require_feasible(s, break_even);
  return util::kEOverEMinus1 * offline(s, break_even);
}

double worst_case_cost_toi(const dist::ShortStopStats& s, double break_even) {
  require_feasible(s, break_even);
  return break_even;
}

double worst_case_cost_det(const dist::ShortStopStats& s, double break_even) {
  require_feasible(s, break_even);
  return s.mu_b_minus + 2.0 * s.q_b_plus * break_even;
}

bool b_det_feasible(const dist::ShortStopStats& s, double break_even) {
  require_feasible(s, break_even);
  if (s.q_b_plus <= 0.0 || s.mu_b_minus <= 0.0) return false;
  // Eq. (36): mu/B < (1-q)^2 / q  (ensures b* > mu / (1-q), i.e. the
  // adversary cannot force every stop to reach b*).
  const double lhs = s.mu_b_minus / break_even;
  const double rhs =
      (1.0 - s.q_b_plus) * (1.0 - s.q_b_plus) / s.q_b_plus;
  if (!(lhs < rhs)) return false;
  // b* must also lie strictly inside (0, B); b* >= B degenerates to DET.
  return b_det_optimal_threshold(s, break_even) < break_even;
}

double b_det_optimal_threshold(const dist::ShortStopStats& s,
                               double break_even) {
  require_feasible(s, break_even);
  IDLERED_EXPECTS(s.q_b_plus > 0.0,
                  "b_det_optimal_threshold: q_B_plus must be > 0");
  const double b = std::sqrt(s.mu_b_minus * break_even / s.q_b_plus);
  IDLERED_ENSURES(std::isfinite(b) && b >= 0.0,
                  "b* = sqrt(mu B / q) must be finite and non-negative");
  return b;
}

double worst_case_cost_b_det(const dist::ShortStopStats& s,
                             double break_even) {
  // Eq. (36) gate precedes the b* computation: on an infeasible vertex the
  // sqrt would still evaluate, but the eq. (35) cost below would understate
  // the adversary's power. Returning +inf keeps the vertex out of the min.
  if (!b_det_feasible(s, break_even)) return kInf;
  const double root =
      std::sqrt(s.mu_b_minus) + std::sqrt(s.q_b_plus * break_even);
  const double cost = root * root;  // eq. (35)
  IDLERED_ENSURES(std::isfinite(cost) && cost >= 0.0,
                  "b-DET worst-case cost must be finite and non-negative");
  return cost;
}

double worst_case_cost_b_det_at(const dist::ShortStopStats& s,
                                double break_even, double b) {
  require_feasible(s, break_even);
  if (!(b > 0.0) || b > break_even)
    throw std::invalid_argument("worst_case_cost_b_det_at: need 0 < b <= B");
  // The adversary needs q2 = mu/b <= 1 - q to place the short mass at b;
  // otherwise it can force the policy to pay b + B on (almost) every stop.
  if (s.mu_b_minus / b + s.q_b_plus > 1.0 + 1e-12) return b + break_even;
  return (b + break_even) * (s.mu_b_minus / b + s.q_b_plus);
}

StrategyChoice choose_strategy(const dist::ShortStopStats& s,
                               double break_even) {
  require_feasible(s, break_even);

  StrategyChoice best;
  best.strategy = Strategy::kToi;
  best.expected_cost = worst_case_cost_toi(s, break_even);

  const double det = worst_case_cost_det(s, break_even);
  if (det < best.expected_cost) {
    best.strategy = Strategy::kDet;
    best.expected_cost = det;
  }

  const double bdet = worst_case_cost_b_det(s, break_even);
  if (bdet < best.expected_cost) {
    best.strategy = Strategy::kBDet;
    best.expected_cost = bdet;
    best.b = b_det_optimal_threshold(s, break_even);
  }

  const double nrand = worst_case_cost_nrand(s, break_even);
  if (nrand < best.expected_cost) {
    best.strategy = Strategy::kNRand;
    best.expected_cost = nrand;
    best.b = 0.0;
  }

  const double off = offline(s, break_even);
  best.cr = off > 0.0 ? best.expected_cost / off : 1.0;
  // Every vertex cost is a worst case over a class containing the offline
  // optimum, so the selection can never beat offline (cr >= 1) nor go
  // negative; a violation means a vertex formula regressed.
  IDLERED_ENSURES(std::isfinite(best.expected_cost) &&
                      best.expected_cost >= 0.0,
                  "selected vertex cost must be finite and non-negative");
  IDLERED_ENSURES(best.cr >= 1.0 - 1e-9,
                  "worst-case CR below 1 contradicts eq. (13)");
  return best;
}

namespace {
double cr_of(double cost, const dist::ShortStopStats& s, double break_even) {
  const double off = s.expected_offline_cost(break_even);
  if (off <= 0.0) return cost <= 0.0 ? 1.0 : kInf;
  return cost / off;
}
}  // namespace

double worst_case_cr_nrand(const dist::ShortStopStats& s, double break_even) {
  return cr_of(worst_case_cost_nrand(s, break_even), s, break_even);
}

double worst_case_cr_toi(const dist::ShortStopStats& s, double break_even) {
  return cr_of(worst_case_cost_toi(s, break_even), s, break_even);
}

double worst_case_cr_det(const dist::ShortStopStats& s, double break_even) {
  return cr_of(worst_case_cost_det(s, break_even), s, break_even);
}

double worst_case_cr_b_det(const dist::ShortStopStats& s, double break_even) {
  return cr_of(worst_case_cost_b_det(s, break_even), s, break_even);
}

}  // namespace idlered::core
