// The online-policy interface.
//
// A policy is a (possibly randomized) rule for choosing the idle-wait
// threshold x at the start of each vehicle stop. Two evaluation modes are
// exposed:
//
//  * expected_cost(y): the exact expected online cost E_x[cost_online(x, y)]
//    for a stop of length y — eq. (19)/(20) of the paper. Deterministic
//    policies return cost_online(x0, y). This is how the reproduction
//    experiments evaluate randomized policies (no Monte-Carlo noise).
//
//  * sample_threshold(rng): draw one threshold, for trace-level simulation
//    of a deployed controller (and as a cross-check of expected_cost).
#pragma once

#include <memory>
#include <string>

#include "util/random.h"

namespace idlered::core {

class Policy {
 public:
  virtual ~Policy() = default;

  /// Short identifier used in tables ("TOI", "DET", "N-Rand", ...).
  virtual std::string name() const = 0;

  /// Exact expected online cost for a stop of length y >= 0.
  virtual double expected_cost(double y) const = 0;

  /// Draw a wait threshold for one stop. May be +infinity (NEV never
  /// turns the engine off).
  virtual double sample_threshold(util::Rng& rng) const = 0;

  /// True if sample_threshold is deterministic (same x every stop).
  virtual bool deterministic() const = 0;

  /// The break-even interval this policy was built for.
  double break_even() const { return break_even_; }

 protected:
  explicit Policy(double break_even);

 private:
  double break_even_;
};

using PolicyPtr = std::shared_ptr<const Policy>;

}  // namespace idlered::core
