#include "core/decision_distribution.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/costs.h"
#include "core/policies.h"
#include "util/contracts.h"
#include "util/math.h"

namespace idlered::core {

DecisionDistribution::DecisionDistribution(double break_even,
                                           std::vector<Atom> atoms,
                                           double continuous_mass)
    : Policy(break_even),
      atoms_(std::move(atoms)),
      continuous_mass_(continuous_mass) {
  IDLERED_EXPECTS(continuous_mass_ >= -1e-12,
                  "DecisionDistribution: continuous mass must be >= 0");
  continuous_mass_ = std::max(0.0, continuous_mass_);
  double total = continuous_mass_;
  for (const Atom& a : atoms_) {
    IDLERED_EXPECTS(a.mass >= -1e-12,
                    "DecisionDistribution: negative atom mass");
    IDLERED_EXPECTS(a.threshold >= 0.0 && a.threshold <= break_even,
                    "DecisionDistribution: atoms must lie in [0, B] "
                    "(Appendix A)");
    total += a.mass;
  }
  IDLERED_EXPECTS(util::approx_equal(total, 1.0, 1e-9, 1e-9),
                  "DecisionDistribution: masses must sum to 1");
  std::sort(atoms_.begin(), atoms_.end(),
            [](const Atom& a, const Atom& b) {
              return a.threshold < b.threshold;
            });
  // Normalization contract over the whole mixed object P(x): atoms plus the
  // N-Rand-shaped continuous part must place exactly unit mass on [0, B].
  IDLERED_ASSERT_INVARIANT(
      util::approx_equal(cdf(break_even), 1.0, 1e-9, 1e-9),
      "DecisionDistribution: P(x) does not normalize over [0, B]");
}

double DecisionDistribution::expected_cost(double y) const {
  IDLERED_EXPECTS(y >= 0.0, "expected_cost: y must be >= 0");
  const double b = break_even();
  double cost = 0.0;
  for (const Atom& a : atoms_) {
    if (a.mass > 0.0) cost += a.mass * online_cost(a.threshold, y, b);
  }
  if (continuous_mass_ > 0.0) {
    // The continuous part is N-Rand-shaped, so its conditional expected
    // cost equalizes at e/(e-1) * offline_cost(y).
    cost += continuous_mass_ * util::kEOverEMinus1 * offline_cost(y, b);
  }
  return cost;
}

double DecisionDistribution::sample_threshold(util::Rng& rng) const {
  double u = rng.uniform();
  for (const Atom& a : atoms_) {
    if (u < a.mass) return a.threshold;
    u -= a.mass;
  }
  // Continuous component: N-Rand inverse CDF on the leftover uniform,
  // renormalized to [0, 1).
  const double v =
      continuous_mass_ > 0.0 ? util::clamp(u / continuous_mass_, 0.0, 1.0)
                             : 0.0;
  return break_even() * std::log(1.0 + v * (util::kE - 1.0));
}

bool DecisionDistribution::deterministic() const {
  if (continuous_mass_ > 0.0) return false;
  int live_atoms = 0;
  for (const Atom& a : atoms_) {
    if (a.mass > 0.0) ++live_atoms;
  }
  return live_atoms <= 1;
}

double DecisionDistribution::cdf(double x) const {
  double total = 0.0;
  for (const Atom& a : atoms_) {
    if (a.threshold <= x) total += a.mass;
  }
  if (continuous_mass_ > 0.0) {
    const double b = break_even();
    const double clamped = util::clamp(x, 0.0, b);
    total += continuous_mass_ * (std::exp(clamped / b) - 1.0) /
             (util::kE - 1.0);
  }
  return total;
}

DecisionDistribution DecisionDistribution::from_lp_solution(
    double break_even, const LpStrategySolution& solution) {
  std::vector<Atom> atoms;
  if (solution.alpha > 0.0) atoms.push_back({0.0, solution.alpha});
  if (solution.beta > 0.0) atoms.push_back({break_even, solution.beta});
  if (solution.gamma > 0.0) atoms.push_back({solution.b, solution.gamma});
  const double continuous =
      1.0 - solution.alpha - solution.beta - solution.gamma;
  return DecisionDistribution(break_even, std::move(atoms), continuous);
}

DecisionDistribution DecisionDistribution::optimal(
    double break_even, const dist::ShortStopStats& stats) {
  return from_lp_solution(break_even,
                          solve_constrained_lp(stats, break_even));
}

}  // namespace idlered::core
