// Strategy-region and worst-case-CR maps over the (mu_B_minus, q_B_plus)
// plane — the machinery behind Figure 1 (selection regions + CR surface)
// and Figure 2 (projected views at fixed mu_B_minus).
#pragma once

#include <string>
#include <vector>

#include "core/analytic.h"

namespace idlered::core {

/// One grid cell of the Figure-1 map.
struct RegionCell {
  double mu_fraction = 0.0;  ///< mu_B_minus / B
  double q_b_plus = 0.0;
  bool feasible = false;     ///< mu <= B (1 - q)
  Strategy strategy = Strategy::kNRand;  ///< winner (valid when feasible)
  double cr = 0.0;                       ///< proposed worst-case CR
};

/// Dense map over [0,1] x [0,1]; infeasible cells are flagged.
/// `n_mu` x `n_q` cells, sampled at cell centers.
std::vector<RegionCell> compute_region_map(double break_even, int n_mu,
                                           int n_q);

/// One point of a Figure-2 projection: worst-case CR of every strategy at a
/// fixed mu_B_minus as q_B_plus varies.
struct ProjectionPoint {
  double q_b_plus = 0.0;
  double cr_nrand = 0.0;
  double cr_toi = 0.0;
  double cr_det = 0.0;
  double cr_b_det = 0.0;  ///< +inf when infeasible
  double cr_proposed = 0.0;
  Strategy winner = Strategy::kNRand;
};

/// Sweep q_B_plus over (0, q_max] at fixed mu_fraction = mu_B_minus / B.
/// Points where (mu, q) is infeasible are skipped.
std::vector<ProjectionPoint> compute_projection(double break_even,
                                                double mu_fraction,
                                                int n_points,
                                                double q_max = 1.0);

/// ASCII rendering of the region map (one character per cell:
/// T = TOI, D = DET, b = b-DET, N = N-Rand, '.' = infeasible).
std::string render_region_map(const std::vector<RegionCell>& cells, int n_mu,
                              int n_q);

}  // namespace idlered::core
