#include "core/solver_lp.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "lp/simplex.h"

namespace idlered::core {

LpCoefficients lp_coefficients(const dist::ShortStopStats& stats,
                               double break_even) {
  LpCoefficients k;
  k.constant = worst_case_cost_nrand(stats, break_even);
  k.k_alpha = worst_case_cost_toi(stats, break_even) - k.constant;
  k.k_beta = worst_case_cost_det(stats, break_even) - k.constant;
  const double bdet = worst_case_cost_b_det(stats, break_even);
  k.k_gamma = std::isinf(bdet)
                  ? std::numeric_limits<double>::infinity()
                  : bdet - k.constant;
  return k;
}

LpStrategySolution solve_constrained_lp(const dist::ShortStopStats& stats,
                                        double break_even) {
  const LpCoefficients k = lp_coefficients(stats, break_even);
  const bool gamma_usable = std::isfinite(k.k_gamma);

  lp::Problem problem;
  problem.objective = {k.k_alpha, k.k_beta,
                       gamma_usable ? k.k_gamma : 0.0};
  problem.add_constraint({1.0, 1.0, 1.0}, lp::Sense::kLessEqual, 1.0);
  if (!gamma_usable) {
    // Exclude the b-DET atom entirely when eq. (36) fails.
    problem.add_constraint({0.0, 0.0, 1.0}, lp::Sense::kLessEqual, 0.0);
  }

  const lp::Solution sol = lp::solve(problem);
  if (!sol.optimal())
    throw std::runtime_error("solve_constrained_lp: LP not optimal: " +
                             lp::to_string(sol.status));

  LpStrategySolution out;
  out.alpha = sol.x[0];
  out.beta = sol.x[1];
  out.gamma = sol.x[2];
  out.expected_cost = sol.objective_value + k.constant;
  if (gamma_usable && out.gamma > 0.5) {
    out.strategy = Strategy::kBDet;
    out.b = b_det_optimal_threshold(stats, break_even);
  } else if (out.alpha > 0.5) {
    out.strategy = Strategy::kToi;
  } else if (out.beta > 0.5) {
    out.strategy = Strategy::kDet;
  } else {
    out.strategy = Strategy::kNRand;
  }
  return out;
}

}  // namespace idlered::core
