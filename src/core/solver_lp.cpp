#include "core/solver_lp.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "lp/simplex.h"
#include "util/contracts.h"

namespace idlered::core {

LpCoefficients lp_coefficients(const dist::ShortStopStats& stats,
                               double break_even) {
  LpCoefficients k;
  k.constant = worst_case_cost_nrand(stats, break_even);
  k.k_alpha = worst_case_cost_toi(stats, break_even) - k.constant;
  k.k_beta = worst_case_cost_det(stats, break_even) - k.constant;
  const double bdet = worst_case_cost_b_det(stats, break_even);
  k.k_gamma = std::isinf(bdet)
                  ? std::numeric_limits<double>::infinity()
                  : bdet - k.constant;
  // Vertex-cost contract, eq. (13)/(32): every vertex's absolute cost
  // K_i + constant is a worst case over a class that contains the offline
  // optimum, so it can never be negative. A negative absolute cost means a
  // vertex formula (or the N-Rand baseline) regressed.
  IDLERED_ENSURES(k.constant >= 0.0 && std::isfinite(k.constant),
                  "lp_coefficients: N-Rand baseline cost must be finite "
                  "and non-negative");
  IDLERED_ENSURES(k.k_alpha + k.constant >= 0.0,
                  "lp_coefficients: TOI vertex cost negative");
  IDLERED_ENSURES(k.k_beta + k.constant >= 0.0,
                  "lp_coefficients: DET vertex cost negative");
  IDLERED_ENSURES(k.k_gamma + k.constant >= 0.0,
                  "lp_coefficients: b-DET vertex cost negative");
  return k;
}

LpStrategySolution solve_constrained_lp(const dist::ShortStopStats& stats,
                                        double break_even) {
  // One-shot workspace sized for the vertex LP: <= 2 constraints, 3 vars.
  lp::Workspace workspace(2, 3);
  return solve_constrained_lp(stats, break_even, workspace);
}

namespace {

// Shared primal -> strategy mapping of every solve path (one-shot,
// workspace, per-entry batch), so all three stay bit-for-bit identical by
// construction.
LpStrategySolution map_lp_solution(const dist::ShortStopStats& stats,
                                   double break_even,
                                   const LpCoefficients& k, bool gamma_usable,
                                   std::span<const double> x,
                                   double objective_value) {
  LpStrategySolution out;
  out.alpha = x[0];
  out.beta = x[1];
  out.gamma = x[2];
  out.expected_cost = objective_value + k.constant;
  IDLERED_ENSURES(out.alpha >= -1e-9 && out.beta >= -1e-9 &&
                      out.gamma >= -1e-9 &&
                      out.alpha + out.beta + out.gamma <= 1.0 + 1e-9,
                  "solve_constrained_lp: (alpha, beta, gamma) must be a "
                  "sub-probability vector (eq. 33)");
  IDLERED_ENSURES(std::isfinite(out.expected_cost) &&
                      out.expected_cost >= 0.0,
                  "solve_constrained_lp: optimal cost must be finite and "
                  "non-negative (eq. 32)");
  if (gamma_usable && out.gamma > 0.5) {
    out.strategy = Strategy::kBDet;
    out.b = b_det_optimal_threshold(stats, break_even);
  } else if (out.alpha > 0.5) {
    out.strategy = Strategy::kToi;
  } else if (out.beta > 0.5) {
    out.strategy = Strategy::kDet;
  } else {
    out.strategy = Strategy::kNRand;
  }
  return out;
}

}  // namespace

LpStrategySolution solve_constrained_lp(const dist::ShortStopStats& stats,
                                        double break_even,
                                        lp::Workspace& workspace) {
  const LpCoefficients k = lp_coefficients(stats, break_even);
  const bool gamma_usable = std::isfinite(k.k_gamma);

  // Stage eq. (32)-(33) in place: minimize K'x over a + b + g <= 1 plus,
  // when eq. (36) fails, a row excluding the b-DET atom entirely.
  const std::size_t m = gamma_usable ? 1 : 2;
  lp::ProblemStage stage = workspace.stage(m, 3);
  stage.objective[0] = k.k_alpha;
  stage.objective[1] = k.k_beta;
  stage.objective[2] = gamma_usable ? k.k_gamma : 0.0;
  stage.coeffs[0] = 1.0;
  stage.coeffs[1] = 1.0;
  stage.coeffs[2] = 1.0;
  stage.rhs[0] = 1.0;
  if (!gamma_usable) {
    stage.coeffs[3 + 2] = 1.0;  // row 1: {0, 0, 1} <= 0
    stage.rhs[1] = 0.0;
  }

  const lp::SolutionView sol = lp::solve(workspace, stage.view());
  if (!sol.optimal())
    throw std::runtime_error("solve_constrained_lp: LP not optimal: " +
                             lp::to_string(sol.status));

  return map_lp_solution(stats, break_even, k, gamma_usable, sol.x,
                         sol.objective_value);
}

std::size_t solve_constrained_lp_batch(
    std::span<const dist::ShortStopStats> stats, double break_even,
    lp::WorkspacePool& pool, std::span<LpStrategySolution> out,
    std::size_t slot) {
  IDLERED_EXPECTS(out.size() == stats.size(),
                  "solve_constrained_lp_batch: one output slot per stats "
                  "entry required");
  lp::Workspace& workspace = pool.at(slot);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    out[i] = solve_constrained_lp(stats[i], break_even, workspace);
  }
  return stats.size();
}

std::size_t solve_constrained_lp_batch(
    std::span<const LpBatchProblem> problems, lp::WorkspacePool& pool,
    std::span<LpStrategySolution> out, std::size_t slot) {
  IDLERED_EXPECTS(out.size() == problems.size(),
                  "solve_constrained_lp_batch: one output slot per problem "
                  "required");
  const std::size_t n = problems.size();
  if (n == 0) return 0;

  // Every problem shares the constraint structure of eq. (33): row 0 is
  // a + b + g <= 1 and — when the b-DET vertex is infeasible — row 1 is
  // g <= 0. Only the objective differs per problem, so one shared
  // coefficient/sense/rhs block serves the whole cohort and the staging
  // cost is one objective triple plus one primal triple per problem.
  static constexpr double kCoeffs[6] = {1.0, 1.0, 1.0, 0.0, 0.0, 1.0};
  static constexpr double kRhs[2] = {1.0, 0.0};
  static constexpr lp::Sense kSenses[2] = {lp::Sense::kLessEqual,
                                           lp::Sense::kLessEqual};

  std::vector<LpCoefficients> ks(n);
  std::vector<double> objectives(3 * n);
  std::vector<double> primals(3 * n);
  std::vector<lp::ProblemView> views(n);
  std::vector<lp::BatchResult> results(n);
  for (std::size_t i = 0; i < n; ++i) {
    ks[i] = lp_coefficients(problems[i].stats, problems[i].break_even);
    const bool gamma_usable = std::isfinite(ks[i].k_gamma);
    const std::size_t m = gamma_usable ? 1 : 2;
    objectives[3 * i + 0] = ks[i].k_alpha;
    objectives[3 * i + 1] = ks[i].k_beta;
    objectives[3 * i + 2] = gamma_usable ? ks[i].k_gamma : 0.0;
    views[i].objective = std::span<const double>(&objectives[3 * i], 3);
    views[i].coeffs = std::span<const double>(kCoeffs, 3 * m);
    views[i].senses = std::span<const lp::Sense>(kSenses, m);
    views[i].rhs = std::span<const double>(kRhs, m);
    views[i].x_out = std::span<double>(&primals[3 * i], 3);
  }

  lp::solve_batch(pool, views, results, slot);

  for (std::size_t i = 0; i < n; ++i) {
    if (!results[i].optimal())
      throw std::runtime_error("solve_constrained_lp_batch: LP not optimal: " +
                               lp::to_string(results[i].status));
    out[i] = map_lp_solution(problems[i].stats, problems[i].break_even, ks[i],
                             std::isfinite(ks[i].k_gamma),
                             std::span<const double>(&primals[3 * i], 3),
                             results[i].objective_value);
  }
  return n;
}

}  // namespace idlered::core
