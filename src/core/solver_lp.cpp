#include "core/solver_lp.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "lp/simplex.h"
#include "util/contracts.h"

namespace idlered::core {

LpCoefficients lp_coefficients(const dist::ShortStopStats& stats,
                               double break_even) {
  LpCoefficients k;
  k.constant = worst_case_cost_nrand(stats, break_even);
  k.k_alpha = worst_case_cost_toi(stats, break_even) - k.constant;
  k.k_beta = worst_case_cost_det(stats, break_even) - k.constant;
  const double bdet = worst_case_cost_b_det(stats, break_even);
  k.k_gamma = std::isinf(bdet)
                  ? std::numeric_limits<double>::infinity()
                  : bdet - k.constant;
  // Vertex-cost contract, eq. (13)/(32): every vertex's absolute cost
  // K_i + constant is a worst case over a class that contains the offline
  // optimum, so it can never be negative. A negative absolute cost means a
  // vertex formula (or the N-Rand baseline) regressed.
  IDLERED_ENSURES(k.constant >= 0.0 && std::isfinite(k.constant),
                  "lp_coefficients: N-Rand baseline cost must be finite "
                  "and non-negative");
  IDLERED_ENSURES(k.k_alpha + k.constant >= 0.0,
                  "lp_coefficients: TOI vertex cost negative");
  IDLERED_ENSURES(k.k_beta + k.constant >= 0.0,
                  "lp_coefficients: DET vertex cost negative");
  IDLERED_ENSURES(k.k_gamma + k.constant >= 0.0,
                  "lp_coefficients: b-DET vertex cost negative");
  return k;
}

LpStrategySolution solve_constrained_lp(const dist::ShortStopStats& stats,
                                        double break_even) {
  // One-shot workspace sized for the vertex LP: <= 2 constraints, 3 vars.
  lp::Workspace workspace(2, 3);
  return solve_constrained_lp(stats, break_even, workspace);
}

LpStrategySolution solve_constrained_lp(const dist::ShortStopStats& stats,
                                        double break_even,
                                        lp::Workspace& workspace) {
  const LpCoefficients k = lp_coefficients(stats, break_even);
  const bool gamma_usable = std::isfinite(k.k_gamma);

  // Stage eq. (32)-(33) in place: minimize K'x over a + b + g <= 1 plus,
  // when eq. (36) fails, a row excluding the b-DET atom entirely.
  const std::size_t m = gamma_usable ? 1 : 2;
  lp::ProblemStage stage = workspace.stage(m, 3);
  stage.objective[0] = k.k_alpha;
  stage.objective[1] = k.k_beta;
  stage.objective[2] = gamma_usable ? k.k_gamma : 0.0;
  stage.coeffs[0] = 1.0;
  stage.coeffs[1] = 1.0;
  stage.coeffs[2] = 1.0;
  stage.rhs[0] = 1.0;
  if (!gamma_usable) {
    stage.coeffs[3 + 2] = 1.0;  // row 1: {0, 0, 1} <= 0
    stage.rhs[1] = 0.0;
  }

  const lp::SolutionView sol = lp::solve(workspace, stage.view());
  if (!sol.optimal())
    throw std::runtime_error("solve_constrained_lp: LP not optimal: " +
                             lp::to_string(sol.status));

  LpStrategySolution out;
  out.alpha = sol.x[0];
  out.beta = sol.x[1];
  out.gamma = sol.x[2];
  out.expected_cost = sol.objective_value + k.constant;
  IDLERED_ENSURES(out.alpha >= -1e-9 && out.beta >= -1e-9 &&
                      out.gamma >= -1e-9 &&
                      out.alpha + out.beta + out.gamma <= 1.0 + 1e-9,
                  "solve_constrained_lp: (alpha, beta, gamma) must be a "
                  "sub-probability vector (eq. 33)");
  IDLERED_ENSURES(std::isfinite(out.expected_cost) &&
                      out.expected_cost >= 0.0,
                  "solve_constrained_lp: optimal cost must be finite and "
                  "non-negative (eq. 32)");
  if (gamma_usable && out.gamma > 0.5) {
    out.strategy = Strategy::kBDet;
    out.b = b_det_optimal_threshold(stats, break_even);
  } else if (out.alpha > 0.5) {
    out.strategy = Strategy::kToi;
  } else if (out.beta > 0.5) {
    out.strategy = Strategy::kDet;
  } else {
    out.strategy = Strategy::kNRand;
  }
  return out;
}

std::size_t solve_constrained_lp_batch(
    std::span<const dist::ShortStopStats> stats, double break_even,
    lp::WorkspacePool& pool, std::span<LpStrategySolution> out,
    std::size_t slot) {
  IDLERED_EXPECTS(out.size() == stats.size(),
                  "solve_constrained_lp_batch: one output slot per stats "
                  "entry required");
  lp::Workspace& workspace = pool.at(slot);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    out[i] = solve_constrained_lp(stats[i], break_even, workspace);
  }
  return stats.size();
}

}  // namespace idlered::core
