#include "core/proposed.h"

#include <cmath>
#include <stdexcept>

#include "core/policies.h"
#include "util/contracts.h"

namespace idlered::core {

namespace {

PolicyPtr build_delegate(double break_even, const StrategyChoice& choice) {
  switch (choice.strategy) {
    case Strategy::kToi: return make_toi(break_even);
    case Strategy::kDet: return make_det(break_even);
    case Strategy::kBDet: return make_b_det(break_even, choice.b);
    case Strategy::kNRand: return make_n_rand(break_even);
  }
  throw std::logic_error("ProposedPolicy: unknown strategy");
}

}  // namespace

ProposedPolicy::ProposedPolicy(double break_even,
                               const dist::ShortStopStats& stats)
    : Policy(break_even),
      stats_(stats),
      choice_(choose_strategy(stats, break_even)),
      delegate_(build_delegate(break_even, choice_)) {
  // The selection's guarantees must be usable numbers: a NaN CR here is
  // exactly the "bad CR number three PRs later" failure mode the contract
  // layer exists to catch at the boundary.
  IDLERED_ENSURES(std::isfinite(choice_.expected_cost) &&
                      choice_.expected_cost >= 0.0,
                  "ProposedPolicy: selected vertex cost invalid");
  IDLERED_ENSURES(std::isfinite(choice_.cr) && choice_.cr >= 1.0 - 1e-9,
                  "ProposedPolicy: worst-case CR must be finite and >= 1");
  IDLERED_ENSURES(choice_.strategy != Strategy::kBDet ||
                      (choice_.b > 0.0 && choice_.b < break_even),
                  "ProposedPolicy: b-DET selected with b* outside (0, B)");
}

ProposedPolicy::ProposedPolicy(double break_even,
                               const dist::StopLengthDistribution& q)
    : ProposedPolicy(break_even,
                     dist::ShortStopStats::from_distribution(q, break_even)) {}

ProposedPolicy::ProposedPolicy(double break_even,
                               const std::vector<double>& stop_sample)
    : ProposedPolicy(
          break_even,
          dist::ShortStopStats::from_sample(stop_sample, break_even)) {}

double ProposedPolicy::expected_cost(double y) const {
  return delegate_->expected_cost(y);
}

double ProposedPolicy::sample_threshold(util::Rng& rng) const {
  return delegate_->sample_threshold(rng);
}

bool ProposedPolicy::deterministic() const {
  return delegate_->deterministic();
}

PolicyPtr make_proposed(double break_even,
                        const dist::ShortStopStats& stats) {
  return std::make_shared<ProposedPolicy>(break_even, stats);
}

}  // namespace idlered::core
