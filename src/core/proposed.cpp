#include "core/proposed.h"

#include <stdexcept>

#include "core/policies.h"

namespace idlered::core {

namespace {

PolicyPtr build_delegate(double break_even, const StrategyChoice& choice) {
  switch (choice.strategy) {
    case Strategy::kToi: return make_toi(break_even);
    case Strategy::kDet: return make_det(break_even);
    case Strategy::kBDet: return make_b_det(break_even, choice.b);
    case Strategy::kNRand: return make_n_rand(break_even);
  }
  throw std::logic_error("ProposedPolicy: unknown strategy");
}

}  // namespace

ProposedPolicy::ProposedPolicy(double break_even,
                               const dist::ShortStopStats& stats)
    : Policy(break_even),
      stats_(stats),
      choice_(choose_strategy(stats, break_even)),
      delegate_(build_delegate(break_even, choice_)) {}

ProposedPolicy::ProposedPolicy(double break_even,
                               const dist::StopLengthDistribution& q)
    : ProposedPolicy(break_even,
                     dist::ShortStopStats::from_distribution(q, break_even)) {}

ProposedPolicy::ProposedPolicy(double break_even,
                               const std::vector<double>& stop_sample)
    : ProposedPolicy(
          break_even,
          dist::ShortStopStats::from_sample(stop_sample, break_even)) {}

double ProposedPolicy::expected_cost(double y) const {
  return delegate_->expected_cost(y);
}

double ProposedPolicy::sample_threshold(util::Rng& rng) const {
  return delegate_->sample_threshold(rng);
}

bool ProposedPolicy::deterministic() const {
  return delegate_->deterministic();
}

PolicyPtr make_proposed(double break_even,
                        const dist::ShortStopStats& stats) {
  return std::make_shared<ProposedPolicy>(break_even, stats);
}

}  // namespace idlered::core
