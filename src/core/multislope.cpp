#include "core/multislope.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/math.h"

namespace idlered::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MultislopeInstance::MultislopeInstance(std::vector<SlopeState> states)
    : states_(std::move(states)) {
  if (states_.size() < 2)
    throw std::invalid_argument("MultislopeInstance: need >= 2 states");
  // lint: allow(float-compare): state 0 must be exactly free by definition
  if (states_.front().switch_cost != 0.0)
    throw std::invalid_argument("MultislopeInstance: state 0 must be free");
  if (!(states_.front().rate > 0.0))
    throw std::invalid_argument("MultislopeInstance: state 0 rate must be > 0");
  for (std::size_t i = 1; i < states_.size(); ++i) {
    if (!(states_[i].switch_cost > states_[i - 1].switch_cost))
      throw std::invalid_argument(
          "MultislopeInstance: switch costs must increase");
    if (!(states_[i].rate < states_[i - 1].rate) || states_[i].rate < 0.0)
      throw std::invalid_argument(
          "MultislopeInstance: rates must strictly decrease and stay >= 0");
  }
  breakpoints_.reserve(states_.size() - 1);
  for (std::size_t i = 1; i < states_.size(); ++i) {
    const double num = states_[i].switch_cost - states_[i - 1].switch_cost;
    const double den = states_[i - 1].rate - states_[i].rate;
    breakpoints_.push_back(num / den);
  }
  for (std::size_t i = 1; i < breakpoints_.size(); ++i) {
    if (!(breakpoints_[i] > breakpoints_[i - 1]))
      throw std::invalid_argument(
          "MultislopeInstance: every state must appear on the lower "
          "envelope (breakpoints must increase)");
  }
}

double MultislopeInstance::offline_cost(double y) const {
  if (y < 0.0)
    throw std::invalid_argument("offline_cost: y must be >= 0");
  double best = kInf;
  for (const SlopeState& s : states_) {
    best = std::min(best, s.switch_cost + s.rate * y);
  }
  return best;
}

std::size_t MultislopeInstance::offline_state(double y) const {
  if (y < 0.0)
    throw std::invalid_argument("offline_state: y must be >= 0");
  std::size_t j = 0;
  while (j < breakpoints_.size() && y >= breakpoints_[j]) ++j;
  return j;
}

MultislopeInstance MultislopeInstance::classic(double break_even) {
  return MultislopeInstance({{0.0, 1.0}, {break_even, 0.0}});
}

Schedule::Schedule(const MultislopeInstance& instance,
                   std::vector<double> switch_times, std::string name)
    : instance_(instance),
      switch_times_(std::move(switch_times)),
      name_(std::move(name)) {
  if (switch_times_.size() != instance.num_states())
    throw std::invalid_argument("Schedule: one switch time per state");
  // lint: allow(float-compare): schedules start in state 0 at exactly t=0
  if (switch_times_.front() != 0.0)
    throw std::invalid_argument("Schedule: state 0 starts at time 0");
  for (std::size_t i = 1; i < switch_times_.size(); ++i) {
    if (switch_times_[i] < switch_times_[i - 1])
      throw std::invalid_argument("Schedule: switch times must not decrease");
  }
}

double Schedule::online_cost(double y) const {
  if (y < 0.0)
    throw std::invalid_argument("online_cost: y must be >= 0");
  // Deepest state entered by time y (y == t counts as entered, matching
  // the classic convention cost(x, y) = x + B for y >= x).
  std::size_t j = 0;
  while (j + 1 < switch_times_.size() && switch_times_[j + 1] <= y) ++j;

  double cost = instance_.state(j).switch_cost;
  for (std::size_t i = 0; i < j; ++i) {
    cost += instance_.state(i).rate *
            (switch_times_[i + 1] - switch_times_[i]);
  }
  cost += instance_.state(j).rate * (y - switch_times_[j]);
  return cost;
}

double Schedule::competitive_ratio(double y) const {
  const double off = instance_.offline_cost(y);
  const double on = online_cost(y);
  // lint: allow(float-compare): exact zero sentinel, mirrors core/costs.cpp
  if (off == 0.0) return on == 0.0 ? 1.0 : kInf;
  return on / off;
}

double Schedule::worst_case_cr() const {
  // Any state entered at time 0 with positive switch cost makes cr(0+)
  // infinite (TOI-like schedules).
  for (std::size_t i = 1; i < switch_times_.size(); ++i) {
    // lint: allow(float-compare): entered-at-exactly-0 is the divergence
    // condition; times epsilon-close to 0 give finite (if huge) CR.
    if (switch_times_[i] == 0.0 &&
        instance_.state(i).switch_cost > 0.0) {
      return kInf;
    }
  }
  // cr is piecewise-monotone between events (switch times and offline
  // breakpoints); the supremum is attained at event points or in the limit
  // y -> infinity.
  std::vector<double> candidates;
  for (double t : switch_times_) {
    if (std::isfinite(t) && t > 0.0) {
      candidates.push_back(t);
      candidates.push_back(std::max(0.0, t - 1e-9));
      candidates.push_back(t + 1e-9);
    }
  }
  for (double bp : instance_.breakpoints()) {
    candidates.push_back(bp);
    candidates.push_back(bp * (1.0 + 1e-9));
  }
  candidates.push_back(1e-6);

  double sup = 1.0;
  for (double y : candidates) {
    sup = std::max(sup, competitive_ratio(y));
  }

  // Tail behaviour: in the limit, the schedule sits in its deepest reached
  // state and the offline optimum in the overall deepest state.
  std::size_t deepest = 0;
  for (std::size_t i = 0; i < switch_times_.size(); ++i) {
    if (std::isfinite(switch_times_[i])) deepest = i;
  }
  const double r_mine = instance_.state(deepest).rate;
  const double r_best = instance_.state(instance_.num_states() - 1).rate;
  // lint: allow(float-compare): rate exactly 0 (a true off state) is the
  // NEV-like divergence condition; tiny positive rates stay finite.
  if (r_mine > 0.0 && r_best == 0.0) return kInf;
  if (r_best > 0.0) sup = std::max(sup, r_mine / r_best);
  // Large-but-finite probes to cover slow approaches to the asymptote.
  const double far = 1e6 * (instance_.breakpoints().back() + 1.0);
  sup = std::max(sup, competitive_ratio(far));
  return sup;
}

Schedule envelope_follower(const MultislopeInstance& instance) {
  std::vector<double> times{0.0};
  for (double bp : instance.breakpoints()) times.push_back(bp);
  return Schedule(instance, std::move(times), "envelope-DET");
}

Schedule immediate_deepest(const MultislopeInstance& instance) {
  std::vector<double> times(instance.num_states(), 0.0);
  return Schedule(instance, std::move(times), "immediate-TOI");
}

Schedule never_switch(const MultislopeInstance& instance) {
  std::vector<double> times(instance.num_states(), kInf);
  times[0] = 0.0;
  return Schedule(instance, std::move(times), "never-NEV");
}

namespace {

/// Density e^u / (e - 1) on [0, 1]; inverse CDF u(p) = ln(1 + p(e-1)).
double draw_scale(util::Rng& rng) {
  return std::log(1.0 + rng.uniform() * (util::kE - 1.0));
}

Schedule scaled_schedule(const MultislopeInstance& instance, double u) {
  std::vector<double> times{0.0};
  for (double bp : instance.breakpoints()) times.push_back(u * bp);
  return Schedule(instance, std::move(times), "randomized-envelope");
}

}  // namespace

Schedule randomized_envelope(const MultislopeInstance& instance,
                             util::Rng& rng) {
  return scaled_schedule(instance, draw_scale(rng));
}

double randomized_envelope_expected_cost(const MultislopeInstance& instance,
                                         double y) {
  return util::integrate(
      [&](double u) {
        const double density = std::exp(u) / (util::kE - 1.0);
        return scaled_schedule(instance, u).online_cost(y) * density;
      },
      0.0, 1.0, 1e-9);
}

double randomized_envelope_worst_cr(const MultislopeInstance& instance) {
  double sup = 1.0;
  const auto& bps = instance.breakpoints();
  std::vector<double> candidates{1e-4};
  for (double bp : bps) {
    for (double f : {0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.5, 2.0}) {
      candidates.push_back(bp * f);
    }
  }
  candidates.push_back(bps.back() * 10.0);
  candidates.push_back(bps.back() * 100.0);
  for (double y : candidates) {
    const double off = instance.offline_cost(y);
    if (off <= 0.0) continue;
    sup = std::max(sup, randomized_envelope_expected_cost(instance, y) / off);
  }
  return sup;
}

MultislopeInstance three_state_vehicle(double hvac_rate,
                                       double engine_off_cost,
                                       double deep_off_cost) {
  if (!(hvac_rate > 0.0) || hvac_rate >= 1.0)
    throw std::invalid_argument("three_state_vehicle: hvac rate in (0, 1)");
  return MultislopeInstance({{0.0, 1.0},
                             {engine_off_cost, hvac_rate},
                             {deep_off_cost, 0.0}});
}

}  // namespace idlered::core
