// c-Rand: the truncated-support randomized strategy — a reproduction
// finding of this repository.
//
// The paper's Section 4 ansatz fixes the continuous part of the decision
// distribution to the N-Rand shape over the FULL interval [0, B] (the
// equalizer condition eq. 28b is imposed for every y in (0, B]). Relaxing
// that — equalizing only over the adversary's actual support — admits the
// family
//
//   p_c(x) = e^{x/B} / (B (e^{c/B} - 1))      on [0, c],  0 < c <= B,
//
// whose expected cost is exactly
//
//   E[cost](y) = kappa(c) * min(y, c),   kappa(c) = e^{c/B}/(e^{c/B} - 1),
//
// so its worst case over Q(mu_B-, q_B+) has the closed form
//
//   kappa(c) * ( min(mu, c (1 - q)) + q c ).
//
// The family interpolates TOI (c -> 0) and N-Rand (c = B), and for small
// mu_B- with moderate q_B+ the optimal interior c BEATS all four of the
// paper's vertex strategies — e.g. at mu = 0.02 B, q = 0.3 it achieves
// worst-case cost 11.85 vs b-DET's 13.30 (B = 28). The numeric minimax
// solver (analysis/minimax.h) independently converges to this value.
#pragma once

#include "core/analytic.h"
#include "core/policy.h"
#include "dist/distribution.h"

namespace idlered::core {

class CRandPolicy final : public Policy {
 public:
  /// Truncation point c in (0, B].
  CRandPolicy(double break_even, double c);

  std::string name() const override { return "c-Rand"; }
  double expected_cost(double y) const override;  ///< kappa * min(y, c)
  double sample_threshold(util::Rng& rng) const override;
  bool deterministic() const override { return false; }

  double pdf(double x) const;
  double cdf(double x) const;
  double truncation() const { return c_; }

  /// kappa(c) = e^{c/B} / (e^{c/B} - 1), the equalized cost slope.
  double kappa() const { return kappa_; }

 private:
  double c_;
  double kappa_;
};

PolicyPtr make_c_rand(double break_even, double c);

/// Worst-case expected cost of c-Rand over Q(mu, q):
/// kappa(c) (min(mu, c(1-q)) + q c).
double worst_case_cost_c_rand(const dist::ShortStopStats& stats,
                              double break_even, double c);

/// The optimal truncation c* in (0, B] (golden-section on the closed form;
/// ties resolve toward B, recovering N-Rand when truncation cannot help).
double c_rand_optimal_truncation(const dist::ShortStopStats& stats,
                                 double break_even);

/// Extended strategy selection: the paper's four vertices PLUS the c-Rand
/// family. `improvement` reports how much c-Rand shaves off the paper's
/// choice (0 when a classic vertex remains optimal).
struct ExtendedChoice {
  bool uses_c_rand = false;
  double c = 0.0;              ///< c* when uses_c_rand
  StrategyChoice classic;      ///< the paper's selection
  double expected_cost = 0.0;  ///< best of classic and c-Rand
  double cr = 0.0;
  double improvement = 0.0;    ///< classic cost - extended cost (>= 0)
};

ExtendedChoice choose_strategy_extended(const dist::ShortStopStats& stats,
                                        double break_even);

}  // namespace idlered::core
