// LP-backed solution of the constrained ski-rental problem, Section 4.4.
//
// After the Lagrangian elimination of Sections 4.1-4.3 the design reduces to
// choosing the probability masses (alpha, beta, gamma) on the TOI / DET /
// b-DET atoms of the decision distribution (eq. 18), with the continuous
// N-Rand-shaped part carrying the remaining 1 - alpha - beta - gamma:
//
//   min  K_a a + K_b b + K_g g + e/(e-1) (mu + q B)        (eq. 32)
//   s.t. a + b + g <= 1,   a, b, g >= 0                     (eq. 33)
//
// where each K is (vertex cost - N-Rand cost). The paper argues the optimum
// sits at a simplex vertex; here the LP is fed to the generic simplex solver
// of src/lp/ and the result is mapped back to a strategy. Tests assert this
// path agrees exactly with the closed-form choose_strategy().
#pragma once

#include <cstddef>
#include <span>

#include "core/analytic.h"
#include "dist/distribution.h"
#include "lp/arena.h"

namespace idlered::core {

struct LpStrategySolution {
  double alpha = 0.0;  ///< mass on TOI (atom at 0+)
  double beta = 0.0;   ///< mass on DET (atom at B)
  double gamma = 0.0;  ///< mass on b-DET (atom at b*)
  double expected_cost = 0.0;  ///< optimal worst-case expected online cost
  Strategy strategy = Strategy::kNRand;  ///< vertex the optimum maps to
  double b = 0.0;  ///< b* used for the gamma column (0 when excluded)
};

/// Solve eq. (32)-(33) with the dense simplex. Throws if the statistics are
/// infeasible for the break-even interval. Builds a one-shot workspace per
/// call; hot paths should use the workspace overload below.
LpStrategySolution solve_constrained_lp(const dist::ShortStopStats& stats,
                                        double break_even);

/// Workspace overload: solves the same vertex LP through a caller-owned
/// `lp::Workspace` (capacity at least 2 constraints x 3 vars) with zero
/// heap allocations, bit-for-bit identical to the one-shot overload. This
/// is the entry point for `engine::VehicleCache` and the serve shards,
/// which re-solve on every stats update.
LpStrategySolution solve_constrained_lp(const dist::ShortStopStats& stats,
                                        double break_even,
                                        lp::Workspace& workspace);

/// Batched COA solves: one eq. (32)-(33) LP per stats entry (e.g. one per
/// (vehicle, B) cell) through a single workspace slot, zero per-solve heap
/// traffic. `out` must have one slot per stats entry. Concurrent callers
/// partition `stats` and pass distinct `slot` values into the pool.
/// Returns the number of problems solved.
std::size_t solve_constrained_lp_batch(
    std::span<const dist::ShortStopStats> stats, double break_even,
    lp::WorkspacePool& pool, std::span<LpStrategySolution> out,
    std::size_t slot = 0);

/// One eq. (32)-(33) vertex LP with its own break-even interval — the unit
/// of the per-entry batched overload below. The multislope generalized COA
/// produces one entry per (vehicle, transition), each at the transition's
/// own break-even t_i.
struct LpBatchProblem {
  dist::ShortStopStats stats;
  double break_even = 0.0;
};

/// Per-entry break-even batch: stages every vertex LP into flat storage up
/// front and solves the whole cohort in ONE `lp::solve_batch` pass through
/// the given pool slot (primal outputs land in per-problem spans, so
/// results survive workspace reuse). Solutions are bit-for-bit identical
/// to per-entry `solve_constrained_lp` calls (the arena guarantees batch
/// == N scalar solves; the strategy mapping is shared code). Throws like
/// the scalar path on infeasible statistics or a non-optimal LP. Returns
/// the number of problems solved.
std::size_t solve_constrained_lp_batch(
    std::span<const LpBatchProblem> problems, lp::WorkspacePool& pool,
    std::span<LpStrategySolution> out, std::size_t slot = 0);

/// The K coefficients of eq. (32), exposed for tests/ablations. K_gamma is
/// +infinity when the b-DET vertex is infeasible (eq. 36 violated).
struct LpCoefficients {
  double k_alpha = 0.0;
  double k_beta = 0.0;
  double k_gamma = 0.0;
  double constant = 0.0;  ///< e/(e-1) (mu + q B), the N-Rand baseline
};

LpCoefficients lp_coefficients(const dist::ShortStopStats& stats,
                               double break_even);

}  // namespace idlered::core
