// Cost primitives of the idling-reduction ski-rental problem,
// Section 2.1 of the paper (equations 2-4).
//
// All costs are expressed in idle-second equivalents: idling for one second
// costs 1, restarting the engine costs B (the break-even interval).
#pragma once

namespace idlered::core {

/// Optimal offline cost for a stop of known length y (eq. 2):
/// idle through short stops, shut off immediately for long ones.
///   cost_offline(y) = y      if 0 <= y < B
///                   = B      if y >= B
double offline_cost(double y, double break_even);

/// Online cost when the controller waits until threshold x before shutting
/// the engine off (eq. 3):
///   cost_online(x, y) = y        if y < x   (the stop ended first)
///                     = x + B    if y >= x  (idled x, then paid a restart)
double online_cost(double x, double y, double break_even);

/// Pointwise competitive ratio cr(x, y) = cost_online / cost_offline (eq. 4).
/// For y == 0 the offline cost vanishes; cr is defined as 1 if the online
/// cost is also 0 (x > 0 means the engine never shut off during a
/// zero-length stop) and +infinity otherwise.
double competitive_ratio(double x, double y, double break_even);

/// Validates a break-even interval (must be finite and > 0); throws
/// std::invalid_argument otherwise. Shared by all policy constructors.
void require_valid_break_even(double break_even);

}  // namespace idlered::core
