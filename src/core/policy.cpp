#include "core/policy.h"

#include "core/costs.h"

namespace idlered::core {

Policy::Policy(double break_even) : break_even_(break_even) {
  require_valid_break_even(break_even);
}

}  // namespace idlered::core
