#include "core/region.h"

#include <sstream>

#include "util/math.h"

namespace idlered::core {

std::vector<RegionCell> compute_region_map(double break_even, int n_mu,
                                           int n_q) {
  std::vector<RegionCell> cells;
  cells.reserve(static_cast<std::size_t>(n_mu) * static_cast<std::size_t>(n_q));
  for (int i = 0; i < n_mu; ++i) {
    const double mu_frac = (i + 0.5) / n_mu;
    for (int j = 0; j < n_q; ++j) {
      const double q = (j + 0.5) / n_q;
      RegionCell cell;
      cell.mu_fraction = mu_frac;
      cell.q_b_plus = q;
      dist::ShortStopStats s;
      s.mu_b_minus = mu_frac * break_even;
      s.q_b_plus = q;
      cell.feasible = s.feasible(break_even);
      if (cell.feasible) {
        const StrategyChoice choice = choose_strategy(s, break_even);
        cell.strategy = choice.strategy;
        cell.cr = choice.cr;
      }
      cells.push_back(cell);
    }
  }
  return cells;
}

std::vector<ProjectionPoint> compute_projection(double break_even,
                                                double mu_fraction,
                                                int n_points, double q_max) {
  std::vector<ProjectionPoint> points;
  points.reserve(static_cast<std::size_t>(n_points));
  for (double q : util::linspace(q_max / n_points, q_max, n_points)) {
    dist::ShortStopStats s;
    s.mu_b_minus = mu_fraction * break_even;
    s.q_b_plus = q;
    if (!s.feasible(break_even)) continue;
    ProjectionPoint p;
    p.q_b_plus = q;
    p.cr_nrand = worst_case_cr_nrand(s, break_even);
    p.cr_toi = worst_case_cr_toi(s, break_even);
    p.cr_det = worst_case_cr_det(s, break_even);
    p.cr_b_det = worst_case_cr_b_det(s, break_even);
    const StrategyChoice choice = choose_strategy(s, break_even);
    p.cr_proposed = choice.cr;
    p.winner = choice.strategy;
    points.push_back(p);
  }
  return points;
}

std::string render_region_map(const std::vector<RegionCell>& cells, int n_mu,
                              int n_q) {
  auto symbol = [](const RegionCell& c) -> char {
    if (!c.feasible) return '.';
    switch (c.strategy) {
      case Strategy::kToi: return 'T';
      case Strategy::kDet: return 'D';
      case Strategy::kBDet: return 'b';
      case Strategy::kNRand: return 'N';
    }
    return '?';
  };
  std::ostringstream out;
  out << "rows: q_B+ descending (top ~1), cols: mu_B-/B ascending (left ~0)\n";
  for (int j = n_q - 1; j >= 0; --j) {
    for (int i = 0; i < n_mu; ++i) {
      out << symbol(cells[static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(n_q) +
                          static_cast<std::size_t>(j)]);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace idlered::core
