// Worst-case analysis of the constrained ski-rental problem, Sections 3-4.
//
// Given the side information (mu_B_minus, q_B_plus), the adversary may pick
// any stop-length distribution q(y) consistent with it (the class Q, eq. 12).
// Each candidate strategy then has a *worst-case expected online cost* over
// Q; the paper shows (Section 4.4) the optimal mixture concentrates on one
// of four vertices, and the proposed algorithm simply picks the vertex with
// the smallest worst-case expected cost:
//
//   N-Rand :  e/(e-1) * (mu + q B)
//   TOI    :  B
//   DET    :  mu + 2 q B
//   b-DET  :  (sqrt(mu) + sqrt(q B))^2   at b* = sqrt(mu B / q),
//             feasible iff mu/B < (1 - q)^2 / q and b* < B  (eq. 36)
//
// The worst-case CR divides by the expected offline cost mu + q B (eq. 13).
#pragma once

#include <string>

#include "dist/distribution.h"

namespace idlered::core {

enum class Strategy { kToi, kDet, kBDet, kNRand };

std::string to_string(Strategy s);

/// Worst-case expected online cost of each vertex strategy over the
/// distribution class Q(mu_B_minus, q_B_plus). Throws std::invalid_argument
/// if the statistics are infeasible for the given B.
double worst_case_cost_nrand(const dist::ShortStopStats& s, double break_even);
double worst_case_cost_toi(const dist::ShortStopStats& s, double break_even);
double worst_case_cost_det(const dist::ShortStopStats& s, double break_even);

/// b-DET support. The optimal threshold is b* = sqrt(mu B / q); the vertex
/// is usable only when (36) holds *and* b* lies strictly inside (0, B).
bool b_det_feasible(const dist::ShortStopStats& s, double break_even);
double b_det_optimal_threshold(const dist::ShortStopStats& s,
                               double break_even);
/// Worst-case expected cost at b*; +infinity when infeasible (so the vertex
/// never wins the minimum).
double worst_case_cost_b_det(const dist::ShortStopStats& s, double break_even);

/// Worst-case expected cost of an arbitrary fixed threshold b in (0, B],
/// eq. (34) before optimizing b: (b + B)(mu/b + q), clamped by validity.
/// Exposed for the ablation that sweeps b around b*.
double worst_case_cost_b_det_at(const dist::ShortStopStats& s,
                                double break_even, double b);

/// The proposed algorithm's selection: the vertex with the smallest
/// worst-case expected cost (ties broken TOI < DET < b-DET < N-Rand, i.e.
/// toward simpler deterministic rules).
struct StrategyChoice {
  Strategy strategy = Strategy::kNRand;
  double expected_cost = 0.0;  ///< worst-case expected online cost
  double cr = 0.0;             ///< worst-case CR = cost / (mu + q B)
  double b = 0.0;              ///< b* when strategy == kBDet, else unused
};

StrategyChoice choose_strategy(const dist::ShortStopStats& s,
                               double break_even);

/// Worst-case CR of each fixed strategy (used by Figures 1-2, 5-6):
/// cost / (mu + q B). For TOI this is B / (mu + q B), etc.
double worst_case_cr_nrand(const dist::ShortStopStats& s, double break_even);
double worst_case_cr_toi(const dist::ShortStopStats& s, double break_even);
double worst_case_cr_det(const dist::ShortStopStats& s, double break_even);
double worst_case_cr_b_det(const dist::ShortStopStats& s, double break_even);

}  // namespace idlered::core
