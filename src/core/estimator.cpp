#include "core/estimator.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/costs.h"
#include "util/contracts.h"

namespace idlered::core {

StatsEstimator::StatsEstimator(double break_even) : acc_(break_even) {
  require_valid_break_even(break_even);
}

void StatsEstimator::observe(double stop_length) {
  if (!std::isfinite(stop_length) || stop_length < 0.0)
    throw std::invalid_argument(
        "StatsEstimator: stop length must be finite and >= 0");
  acc_.insert(stop_length);
}

dist::ShortStopStats StatsEstimator::stats() const {
  if (acc_.empty()) throw std::logic_error("StatsEstimator: no observations");
  // The accumulator enforces the boundary contracts (q in [0, 1], mu in
  // [0, B]) that choose_strategy and b-DET feasibility rely on downstream.
  return acc_.stats();
}

DecayingStatsEstimator::DecayingStatsEstimator(double break_even,
                                               double lambda)
    : break_even_(break_even), lambda_(lambda) {
  require_valid_break_even(break_even);
  if (!(lambda > 0.0) || lambda > 1.0)
    throw std::invalid_argument(
        "DecayingStatsEstimator: lambda must be in (0, 1]");
}

void DecayingStatsEstimator::observe(double stop_length) {
  if (!std::isfinite(stop_length) || stop_length < 0.0)
    throw std::invalid_argument(
        "DecayingStatsEstimator: stop length must be finite and >= 0");
  weight_ = lambda_ * weight_ + 1.0;
  short_sum_ *= lambda_;
  long_weight_ *= lambda_;
  if (stop_length >= break_even_) {
    long_weight_ += 1.0;
  } else {
    short_sum_ += stop_length;
  }
}

dist::ShortStopStats DecayingStatsEstimator::stats() const {
  if (weight_ <= 0.0)
    throw std::logic_error("DecayingStatsEstimator: no observations");
  dist::ShortStopStats s;
  s.mu_b_minus = short_sum_ / weight_;
  s.q_b_plus = long_weight_ / weight_;
  IDLERED_ENSURES(s.q_b_plus >= 0.0 && s.q_b_plus <= 1.0,
                  "DecayingStatsEstimator: q_B_plus must lie in [0, 1]");
  IDLERED_ENSURES(s.mu_b_minus >= 0.0 && s.mu_b_minus <= break_even_,
                  "DecayingStatsEstimator: mu_B_minus must lie in [0, B]");
  return s;
}

double DecayingStatsEstimator::effective_window() const {
  if (lambda_ >= 1.0) return std::numeric_limits<double>::infinity();
  return 1.0 / (1.0 - lambda_);
}

}  // namespace idlered::core
