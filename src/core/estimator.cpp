#include "core/estimator.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/costs.h"
#include "util/contracts.h"

namespace idlered::core {

StatsEstimator::StatsEstimator(double break_even) : break_even_(break_even) {
  require_valid_break_even(break_even);
}

void StatsEstimator::observe(double stop_length) {
  if (!std::isfinite(stop_length) || stop_length < 0.0)
    throw std::invalid_argument(
        "StatsEstimator: stop length must be finite and >= 0");
  ++n_;
  if (stop_length >= break_even_) {
    ++long_count_;
  } else {
    short_sum_ += stop_length;
  }
}

dist::ShortStopStats StatsEstimator::stats() const {
  if (n_ == 0) throw std::logic_error("StatsEstimator: no observations");
  dist::ShortStopStats s;
  s.mu_b_minus = short_sum_ / static_cast<double>(n_);
  s.q_b_plus = static_cast<double>(long_count_) / static_cast<double>(n_);
  // Boundary contract for everything downstream (choose_strategy, b-DET
  // feasibility): an estimate outside these ranges would silently produce
  // NaN thresholds via sqrt(mu B / q).
  IDLERED_ENSURES(s.q_b_plus >= 0.0 && s.q_b_plus <= 1.0,
                  "StatsEstimator: q_B_plus must lie in [0, 1]");
  IDLERED_ENSURES(s.mu_b_minus >= 0.0 && s.mu_b_minus <= break_even_,
                  "StatsEstimator: mu_B_minus must lie in [0, B]");
  return s;
}

DecayingStatsEstimator::DecayingStatsEstimator(double break_even,
                                               double lambda)
    : break_even_(break_even), lambda_(lambda) {
  require_valid_break_even(break_even);
  if (!(lambda > 0.0) || lambda > 1.0)
    throw std::invalid_argument(
        "DecayingStatsEstimator: lambda must be in (0, 1]");
}

void DecayingStatsEstimator::observe(double stop_length) {
  if (!std::isfinite(stop_length) || stop_length < 0.0)
    throw std::invalid_argument(
        "DecayingStatsEstimator: stop length must be finite and >= 0");
  weight_ = lambda_ * weight_ + 1.0;
  short_sum_ *= lambda_;
  long_weight_ *= lambda_;
  if (stop_length >= break_even_) {
    long_weight_ += 1.0;
  } else {
    short_sum_ += stop_length;
  }
}

dist::ShortStopStats DecayingStatsEstimator::stats() const {
  if (weight_ <= 0.0)
    throw std::logic_error("DecayingStatsEstimator: no observations");
  dist::ShortStopStats s;
  s.mu_b_minus = short_sum_ / weight_;
  s.q_b_plus = long_weight_ / weight_;
  IDLERED_ENSURES(s.q_b_plus >= 0.0 && s.q_b_plus <= 1.0,
                  "DecayingStatsEstimator: q_B_plus must lie in [0, 1]");
  IDLERED_ENSURES(s.mu_b_minus >= 0.0 && s.mu_b_minus <= break_even_,
                  "DecayingStatsEstimator: mu_B_minus must lie in [0, B]");
  return s;
}

double DecayingStatsEstimator::effective_window() const {
  if (lambda_ >= 1.0) return std::numeric_limits<double>::infinity();
  return 1.0 / (1.0 - lambda_);
}

}  // namespace idlered::core
