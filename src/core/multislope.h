// Multislope ski rental — the rent/lease/buy generalization the paper cites
// (Lotker, Patt-Shamir, Rawitz), applied to vehicles with several shutdown
// depths. A stop-start controller may have more options than on/off:
//
//   state 0: engine idling                (rate 1, no switch cost)
//   state 1: engine off, HVAC on battery  (lower rate, small restart cost)
//   state 2: deep off (all accessories)   (near-zero rate, full restart cost)
//
// Each state i has a cumulative switch-in cost b_i (restart included, in
// idle-second equivalents) and a running rate r_i, with b increasing and r
// decreasing. The offline optimum is the lower envelope min_i (b_i + r_i y).
//
// Strategies are *schedules*: the time at which the controller enters each
// deeper state. Provided:
//   - envelope_follower: enter state i when the offline envelope would —
//     the DET generalization; provably <= 2-competitive (the rent paid
//     along the envelope equals the offline cost, and the unpaid-for switch
//     cost is at most the offline cost).
//   - immediate_deepest: jump straight to the deepest state (TOI).
//   - never_switch: stay idling (NEV).
//   - randomized_envelope: scale the envelope breakpoints by a random
//     factor u ~ e^u/(e-1) on [0,1] — reduces to N-Rand for two slopes;
//     its CR is evaluated numerically (empirically below the deterministic
//     2 on all tested instances).
#pragma once

#include <string>
#include <vector>

#include "util/random.h"

namespace idlered::core {

struct SlopeState {
  double switch_cost = 0.0;  ///< cumulative b_i (idle-second equivalents)
  double rate = 1.0;         ///< running cost per second r_i
};

class MultislopeInstance {
 public:
  /// States must start at (0, r_0) and have strictly increasing switch
  /// costs and strictly decreasing nonnegative rates.
  explicit MultislopeInstance(std::vector<SlopeState> states);

  std::size_t num_states() const { return states_.size(); }
  const SlopeState& state(std::size_t i) const { return states_.at(i); }

  /// Offline optimum: min_i (b_i + r_i y).
  double offline_cost(double y) const;

  /// Offline-optimal state for a stop of known length y (lowest line).
  std::size_t offline_state(double y) const;

  /// Envelope breakpoints: y value at which state i overtakes state i-1 on
  /// the lower envelope (size num_states() - 1, increasing). States that
  /// never appear on the envelope yield collapsed (equal) breakpoints.
  const std::vector<double>& breakpoints() const { return breakpoints_; }

  /// The classic two-state ski-rental instance (idle vs off at cost B).
  static MultislopeInstance classic(double break_even);

 private:
  std::vector<SlopeState> states_;
  std::vector<double> breakpoints_;
};

/// A switching schedule: switch_times[i] is the absolute time the
/// controller enters state i (switch_times[0] == 0; nondecreasing; +inf
/// allowed, meaning the state is never entered).
class Schedule {
 public:
  Schedule(const MultislopeInstance& instance,
           std::vector<double> switch_times, std::string name);

  /// Online cost for a stop of length y: rent accrued in each visited
  /// state plus the cumulative switch cost of the deepest state entered.
  double online_cost(double y) const;

  /// Pointwise competitive ratio online/offline at y > 0.
  double competitive_ratio(double y) const;

  /// sup_y cr(y), evaluated at all switch times (and just before them),
  /// breakpoints, and asymptotically; may be +inf (e.g. TOI near y = 0).
  double worst_case_cr() const;

  const std::vector<double>& switch_times() const { return switch_times_; }
  const std::string& name() const { return name_; }

  const MultislopeInstance& instance() const { return instance_; }

 private:
  MultislopeInstance instance_;  ///< by value: schedules outlive callers'
                                 ///< temporaries (instances are tiny)
  std::vector<double> switch_times_;
  std::string name_;
};

/// DET generalization: enter state i at the envelope breakpoint.
Schedule envelope_follower(const MultislopeInstance& instance);

/// TOI generalization: enter the deepest state immediately.
Schedule immediate_deepest(const MultislopeInstance& instance);

/// NEV: never leave state 0.
Schedule never_switch(const MultislopeInstance& instance);

/// Draw a randomized schedule: breakpoints scaled by u ~ e^u/(e-1), u in
/// [0,1] (inverse-CDF draw). For the classic two-state instance this is
/// exactly N-Rand.
Schedule randomized_envelope(const MultislopeInstance& instance,
                             util::Rng& rng);

/// Expected cost of the randomized envelope strategy for a stop of length
/// y, by quadrature over u (exact to tolerance; no sampling noise).
double randomized_envelope_expected_cost(const MultislopeInstance& instance,
                                         double y);

/// Worst-case expected CR of the randomized envelope strategy, by scanning
/// y over breakpoint neighbourhoods and a tail grid.
double randomized_envelope_worst_cr(const MultislopeInstance& instance);

/// Vehicle-flavoured instance builder: idle + engine-off-with-HVAC +
/// deep-off, parameterized by the two restart costs (idle-second
/// equivalents) and the HVAC battery draw relative to idling.
MultislopeInstance three_state_vehicle(double hvac_rate,
                                       double engine_off_cost,
                                       double deep_off_cost);

}  // namespace idlered::core
