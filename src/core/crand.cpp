#include "core/crand.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/costs.h"
#include "util/contracts.h"
#include "util/math.h"

namespace idlered::core {

CRandPolicy::CRandPolicy(double break_even, double c)
    : Policy(break_even), c_(c), kappa_(0.0) {
  IDLERED_EXPECTS(c > 0.0 && c <= break_even,
                  "CRandPolicy: need 0 < c <= B");
  const double ec = std::exp(c / break_even);
  kappa_ = ec / (ec - 1.0);
  // Normalization and support contract: the truncated density
  // e^{x/B}/(B(e^{c/B}-1)) must integrate to 1 over [0, c] (cdf(c) = 1 in
  // closed form) and its equalizer slope kappa = e^{c/B}/(e^{c/B}-1) must
  // stay finite — for c/B -> 0 the denominator underflows first and would
  // turn every expected cost into inf.
  IDLERED_ENSURES(std::isfinite(kappa_) && kappa_ >= 1.0,
                  "CRandPolicy: kappa = e^{c/B}/(e^{c/B}-1) degenerate");
  IDLERED_ASSERT_INVARIANT(util::approx_equal(cdf(c_), 1.0, 1e-9, 1e-12),
                           "CRandPolicy: pdf does not normalize over [0, c]");
}

double CRandPolicy::pdf(double x) const {
  if (x < 0.0 || x > c_) return 0.0;
  const double b = break_even();
  return std::exp(x / b) / (b * (std::exp(c_ / b) - 1.0));
}

double CRandPolicy::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= c_) return 1.0;
  const double b = break_even();
  return (std::exp(x / b) - 1.0) / (std::exp(c_ / b) - 1.0);
}

double CRandPolicy::expected_cost(double y) const {
  IDLERED_EXPECTS(y >= 0.0, "expected_cost: y must be >= 0");
  // Equalizer over the truncated support: integrating eq. (19) with the
  // density e^{x/B}/(B(e^{c/B}-1)) on [0, c] gives kappa * y for y <= c
  // and the constant kappa * c for y >= c (all thresholds have fired).
  return kappa_ * std::min(y, c_);
}

double CRandPolicy::sample_threshold(util::Rng& rng) const {
  const double b = break_even();
  const double u = rng.uniform();
  return b * std::log(1.0 + u * (std::exp(c_ / b) - 1.0));
}

PolicyPtr make_c_rand(double break_even, double c) {
  return std::make_shared<CRandPolicy>(break_even, c);
}

double worst_case_cost_c_rand(const dist::ShortStopStats& stats,
                              double break_even, double c) {
  require_valid_break_even(break_even);
  if (!stats.feasible(break_even))
    throw std::invalid_argument("worst_case_cost_c_rand: infeasible stats");
  if (!(c > 0.0) || c > break_even)
    throw std::invalid_argument("worst_case_cost_c_rand: need 0 < c <= B");
  const double ec = std::exp(c / break_even);
  const double kappa = ec / (ec - 1.0);
  // Worst adversary maximizes E[min(y, c)]: short mass at c while the
  // budget mu allows (mass mu/c), else all short mass pushed above c.
  const double short_part =
      std::min(stats.mu_b_minus, c * (1.0 - stats.q_b_plus));
  return kappa * (short_part + stats.q_b_plus * c);
}

double c_rand_optimal_truncation(const dist::ShortStopStats& stats,
                                 double break_even) {
  require_valid_break_even(break_even);
  if (!stats.feasible(break_even))
    throw std::invalid_argument("c_rand_optimal_truncation: infeasible");
  // The closed form is piecewise (the short-mass term switches branch at
  // c = mu/(1-q)) and not globally unimodal: scan a grid, then polish the
  // best bracket with golden-section.
  const double lo = 1e-6 * break_even;
  auto f = [&](double c) {
    return worst_case_cost_c_rand(stats, break_even, c);
  };
  const int grid = 400;
  double best_c = break_even;
  double best_f = f(break_even);
  for (double c : util::linspace(lo, break_even, grid)) {
    const double v = f(c);
    if (v < best_f) {
      best_f = v;
      best_c = c;
    }
  }
  const double step = (break_even - lo) / (grid - 1);
  const double c_star = util::minimize_golden(
      f, std::max(lo, best_c - step), std::min(break_even, best_c + step),
      1e-10 * break_even);
  const double winner = f(c_star) <= best_f ? c_star : best_c;
  // Prefer the exact N-Rand endpoint when it is as good (within round-off):
  // keeps the classic regions reporting the classic strategy.
  if (f(break_even) <= f(winner) * (1.0 + 1e-12)) return break_even;
  return winner;
}

ExtendedChoice choose_strategy_extended(const dist::ShortStopStats& stats,
                                        double break_even) {
  ExtendedChoice out;
  out.classic = choose_strategy(stats, break_even);
  out.c = c_rand_optimal_truncation(stats, break_even);
  const double c_rand_cost =
      worst_case_cost_c_rand(stats, break_even, out.c);
  if (c_rand_cost < out.classic.expected_cost - 1e-12) {
    out.uses_c_rand = true;
    out.expected_cost = c_rand_cost;
  } else {
    out.expected_cost = out.classic.expected_cost;
  }
  const double offline = stats.expected_offline_cost(break_even);
  out.cr = offline > 0.0 ? out.expected_cost / offline : 1.0;
  out.improvement = out.classic.expected_cost - out.expected_cost;
  return out;
}

}  // namespace idlered::core
