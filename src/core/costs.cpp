#include "core/costs.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace idlered::core {

double offline_cost(double y, double break_even) {
  if (y < 0.0) throw std::invalid_argument("offline_cost: y must be >= 0");
  return y < break_even ? y : break_even;
}

double online_cost(double x, double y, double break_even) {
  if (y < 0.0) throw std::invalid_argument("online_cost: y must be >= 0");
  if (x < 0.0) throw std::invalid_argument("online_cost: x must be >= 0");
  return y < x ? y : x + break_even;
}

double competitive_ratio(double x, double y, double break_even) {
  const double off = offline_cost(y, break_even);
  const double on = online_cost(x, y, break_even);
  // lint: allow(float-compare): exact zero sentinel — offline cost is 0
  // only for y == 0 exactly; a tolerance would misclassify short stops.
  if (off == 0.0) {
    // lint: allow(float-compare): same exact-zero sentinel for the ratio
    return on == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return on / off;
}

void require_valid_break_even(double break_even) {
  if (!(break_even > 0.0) || !std::isfinite(break_even))
    throw std::invalid_argument("break-even interval must be finite and > 0");
}

}  // namespace idlered::core
