// Deterministic random-number utilities shared by every stochastic component.
//
// All randomized experiments in this repository are seeded explicitly so that
// benchmark output is reproducible run-to-run. `Rng` wraps std::mt19937_64
// with the handful of draw primitives the simulators need, plus `fork()`,
// which derives an independent child stream (used to give every synthetic
// vehicle its own stream so fleet results do not depend on evaluation order).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace idlered::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform draw in [0, 1).
  double uniform();

  /// Uniform draw in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential draw with the given mean (not rate).
  double exponential(double mean);

  /// Normal draw.
  double normal(double mean, double stddev);

  /// Log-normal draw parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Pareto (Type I) draw with scale x_m > 0 and shape alpha > 0.
  double pareto(double scale, double shape);

  /// Weibull draw with shape k and scale lambda.
  double weibull(double shape, double scale);

  /// Poisson draw with the given mean.
  std::int64_t poisson(double mean);

  /// Bernoulli draw.
  bool bernoulli(double p);

  /// Derive an independent child stream. The child is seeded from this
  /// stream's output mixed with `salt`, so fork(i) and fork(j) differ.
  Rng fork(std::uint64_t salt);

  /// Access to the raw engine for std:: distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 finalizer; used to decorrelate fork() seeds.
std::uint64_t mix64(std::uint64_t x);

}  // namespace idlered::util
