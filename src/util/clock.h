// Wall-clock access, quarantined in util/.
//
// The engine's bit-identical-report guarantee depends on nothing in src/
// reading ambient entropy or time except through util/ (the custom lint
// rule `determinism` enforces this). Timing instrumentation is the one
// legitimate consumer of a clock, so it gets a single audited entry point
// here instead of ad-hoc std::chrono calls scattered through the tree.
#pragma once

namespace idlered::util {

/// Seconds on a monotonic clock with an arbitrary epoch. Differences are
/// meaningful (wall-time measurement); absolute values are not, so the
/// result must never feed a seed, a file name, or any reported statistic
/// other than elapsed time.
double monotonic_seconds();

}  // namespace idlered::util
