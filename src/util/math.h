// Small math helpers shared across modules: constants, grids, numeric
// integration, and root finding. Kept dependency-free so every module can use
// them without pulling in heavier components.
#pragma once

#include <functional>
#include <vector>

namespace idlered::util {

/// Euler's number, spelled out because the analytic competitive-ratio
/// formulas of the paper use e/(e-1) and e-2 pervasively.
inline constexpr double kE = 2.718281828459045235360287471352662498;

/// e / (e - 1): the optimal competitive ratio of the unconstrained
/// randomized ski-rental algorithm (N-Rand).
inline constexpr double kEOverEMinus1 = kE / (kE - 1.0);

/// Clamp x into [lo, hi].
double clamp(double x, double lo, double hi);

/// True if |a - b| <= atol + rtol * max(|a|, |b|).
bool approx_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// n evenly spaced values from lo to hi inclusive (n >= 2), or {lo} if n == 1.
std::vector<double> linspace(double lo, double hi, int n);

/// n logarithmically spaced values from lo to hi inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, int n);

/// Adaptive Simpson quadrature of f over [a, b] to absolute tolerance tol.
/// Used for expected-cost integrals of continuous decision densities.
double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol = 1e-10);

/// Fixed-panel composite Simpson rule (n panels, n even); used where the
/// integrand is known to be smooth and a predictable cost matters.
double integrate_simpson(const std::function<double(double)>& f, double a,
                         double b, int n);

/// Bisection root finding for a continuous f with f(a) * f(b) <= 0.
/// Returns the root to absolute tolerance tol.
double bisect(const std::function<double(double)>& f, double a, double b,
              double tol = 1e-12);

/// Golden-section minimization of a unimodal f over [a, b].
double minimize_golden(const std::function<double(double)>& f, double a,
                       double b, double tol = 1e-10);

}  // namespace idlered::util
