// Checked math contracts for the numerical hot spots.
//
// The reproduction's correctness rests on analytic invariants — the b-DET
// feasibility condition mu_B-/B < (1-q_B+)^2/q_B+ (eq. 36), pdf
// normalization of the randomized decision distributions, LP vertex costs
// matching eq. (13) — that used to live in scattered ad-hoc `throw`
// statements or, worse, in nobody's code at all. This header centralizes
// them behind three macros:
//
//   IDLERED_EXPECTS(cond, msg)           precondition at an API boundary
//   IDLERED_ENSURES(cond, msg)           postcondition on a computed result
//   IDLERED_ASSERT_INVARIANT(cond, msg)  internal consistency mid-computation
//
// Behavior on violation is configurable through the build option
// IDLERED_CONTRACT_MODE (CMake cache variable, default `throw`):
//
//   throw  raise ContractViolation (derives from std::invalid_argument, so
//          existing EXPECT_THROW(std::invalid_argument) call sites and
//          catch blocks keep working);
//   abort  print the violation to stderr and std::abort() — the mode for
//          fuzzing and sanitizer runs where unwinding would hide the stack;
//   off    compile the checks out entirely (release-critical inner loops).
//
// Unless compiled out, the mode can also be switched at runtime with
// contracts::set_mode(); tests use this to cover all three behaviors in a
// single binary. The condition expression is NOT evaluated when the runtime
// mode is kOff, so conditions must be side-effect free.
#pragma once

#include <stdexcept>
#include <string>

// Numeric mode encoding shared with CMake: off=0, throw=1, abort=2.
#define IDLERED_CONTRACT_MODE_OFF 0
#define IDLERED_CONTRACT_MODE_THROW 1
#define IDLERED_CONTRACT_MODE_ABORT 2

#ifndef IDLERED_CONTRACT_MODE_DEFAULT
#define IDLERED_CONTRACT_MODE_DEFAULT IDLERED_CONTRACT_MODE_THROW
#endif

namespace idlered::util::contracts {

enum class Mode {
  kOff = IDLERED_CONTRACT_MODE_OFF,
  kThrow = IDLERED_CONTRACT_MODE_THROW,
  kAbort = IDLERED_CONTRACT_MODE_ABORT,
};

/// The active mode. Starts at the compile-time default.
Mode mode() noexcept;

/// Runtime override (mainly for tests covering all modes in one binary).
void set_mode(Mode m) noexcept;

/// RAII mode switch for test scopes.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m) : previous_(mode()) { set_mode(m); }
  ~ScopedMode() { set_mode(previous_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode previous_;
};

/// Thrown in kThrow mode. Derives from std::invalid_argument so the
/// pre-contract `throw std::invalid_argument` call sites it replaces stay
/// compatible with existing handlers and tests.
class ContractViolation : public std::invalid_argument {
 public:
  ContractViolation(const char* kind, const char* condition, const char* file,
                    int line, const std::string& message);

  const std::string& kind() const noexcept { return kind_; }
  const std::string& condition() const noexcept { return condition_; }
  const std::string& file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  std::string kind_;
  std::string condition_;
  std::string file_;
  int line_;
};

/// Reacts to a failed check per the active mode: throws ContractViolation
/// (kThrow) or prints and aborts (kAbort). Never called in kOff mode.
[[noreturn]] void violate(const char* kind, const char* condition,
                          const char* file, int line,
                          const std::string& message);

}  // namespace idlered::util::contracts

#if IDLERED_CONTRACT_MODE_DEFAULT == IDLERED_CONTRACT_MODE_OFF
// Compiled out: the condition is not evaluated and cannot be re-enabled at
// runtime. `sizeof` keeps the expression syntactically checked so an `off`
// build cannot silently rot a contract.
#define IDLERED_CONTRACT_(kind, cond, msg) \
  static_cast<void>(sizeof(static_cast<bool>(cond)))
#else
#define IDLERED_CONTRACT_(kind, cond, msg)                                  \
  do {                                                                      \
    if (::idlered::util::contracts::mode() !=                               \
            ::idlered::util::contracts::Mode::kOff &&                       \
        !(cond))                                                            \
      ::idlered::util::contracts::violate(kind, #cond, __FILE__, __LINE__,  \
                                          msg);                             \
  } while (false)
#endif

#define IDLERED_EXPECTS(cond, msg) IDLERED_CONTRACT_("precondition", cond, msg)
#define IDLERED_ENSURES(cond, msg) IDLERED_CONTRACT_("postcondition", cond, msg)
#define IDLERED_ASSERT_INVARIANT(cond, msg) \
  IDLERED_CONTRACT_("invariant", cond, msg)
