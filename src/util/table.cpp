#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace idlered::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table::add_row: row width mismatch");
  rows_.push_back(std::move(row));
}

void Table::add_numeric_row(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
          << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c ? "  " : "") << std::string(width[c], '-');
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string banner(const std::string& title) {
  std::string line(title.size() + 8, '=');
  return line + "\n==  " + title + "  ==\n" + line + "\n";
}

}  // namespace idlered::util
