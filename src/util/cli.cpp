#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>

namespace idlered::util {

Args::Args(int argc, char** argv) {
  if (argc < 1) throw std::invalid_argument("Args: argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string name = token.substr(2);
      // A following token that is not itself an option becomes the value.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_.emplace_back(name, std::string(argv[i + 1]));
        ++i;
      } else {
        options_.emplace_back(name, std::nullopt);
      }
    } else {
      positional_.push_back(token);
    }
  }
}

bool Args::has(const std::string& name) const {
  for (const auto& [key, _] : options_) {
    if (key == name) return true;
  }
  return false;
}

std::optional<std::string> Args::value(const std::string& name) const {
  for (const auto& [key, val] : options_) {
    if (key == name) return val;
  }
  return std::nullopt;
}

double Args::value_or(const std::string& name, double fallback) const {
  const auto v = value(name);
  return v ? std::atof(v->c_str()) : fallback;
}

int Args::value_or(const std::string& name, int fallback) const {
  const auto v = value(name);
  return v ? std::atoi(v->c_str()) : fallback;
}

std::string Args::value_or(const std::string& name,
                           const std::string& fallback) const {
  const auto v = value(name);
  return v ? *v : fallback;
}

}  // namespace idlered::util
