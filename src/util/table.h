// ASCII table formatting for the benchmark harness. Every reproduction
// binary prints its figure/table as an aligned text table so the paper's
// series can be read (and diffed) straight from the terminal.
#pragma once

#include <string>
#include <vector>

namespace idlered::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row of preformatted cells; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision. (Named
  /// differently from add_row so braced-init rows stay unambiguous.)
  void add_numeric_row(const std::vector<double>& row, int precision = 4);

  /// Render with column alignment and a separator under the header.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for mixed-type rows).
std::string fmt(double v, int precision = 4);

/// Render a section banner used between sub-tables in bench output.
std::string banner(const std::string& title);

}  // namespace idlered::util
