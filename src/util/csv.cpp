#include "util/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace idlered::util {

int CsvDocument::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

CsvDocument parse_csv(const std::string& text, bool has_header) {
  std::vector<CsvRow> records;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    records.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty() || !row.empty()) end_row();
        break;
      default:
        field.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !field.empty() || !row.empty()) end_row();

  CsvDocument doc;
  if (has_header && !records.empty()) {
    doc.header = std::move(records.front());
    records.erase(records.begin());
  }
  doc.rows = std::move(records);
  return doc;
}

CsvDocument read_csv_file(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str(), has_header);
}

void CsvWriter::add_row(const CsvRow& row) { rows_.push_back(row); }

void CsvWriter::add_row(const std::vector<double>& row) {
  CsvRow out;
  out.reserve(row.size());
  for (double v : row) {
    std::ostringstream ss;
    ss.precision(17);
    ss << v;
    out.push_back(ss.str());
  }
  rows_.push_back(std::move(out));
}

std::string CsvWriter::str() const {
  std::ostringstream out;
  for (const CsvRow& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write CSV file: " + path);
  out << str();
  if (!out) throw std::runtime_error("short write to CSV file: " + path);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace idlered::util
