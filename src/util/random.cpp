#include "util/random.h"

#include <cmath>

namespace idlered::util {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::pareto(double scale, double shape) {
  // Inverse CDF: x = x_m * (1 - u)^{-1/alpha}.
  const double u = uniform();
  return scale * std::pow(1.0 - u, -1.0 / shape);
}

double Rng::weibull(double shape, double scale) {
  return std::weibull_distribution<double>(shape, scale)(engine_);
}

std::int64_t Rng::poisson(double mean) {
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::fork(std::uint64_t salt) {
  const std::uint64_t base = engine_();
  return Rng(mix64(base ^ mix64(salt)));
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace idlered::util
