// Minimal command-line argument parsing for the tools and examples:
// positional arguments plus --flag and --key value options. Deliberately
// tiny — no registration, no help generation — because every consumer
// prints its own usage text.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace idlered::util {

class Args {
 public:
  Args(int argc, char** argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  /// Positional arguments (everything not starting with "--" and not
  /// consumed as an option value).
  const std::vector<std::string>& positional() const { return positional_; }

  /// True if --name appeared (with or without a value).
  bool has(const std::string& name) const;

  /// Value of "--name value"; nullopt if absent or used as a bare flag.
  std::optional<std::string> value(const std::string& name) const;

  /// Typed access with defaults.
  double value_or(const std::string& name, double fallback) const;
  int value_or(const std::string& name, int fallback) const;
  std::string value_or(const std::string& name,
                       const std::string& fallback) const;

 private:
  std::string program_;
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::optional<std::string>>> options_;
};

}  // namespace idlered::util
