#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace idlered::util {

double clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

bool approx_equal(double a, double b, double rtol, double atol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 1) throw std::invalid_argument("linspace: n must be >= 1");
  if (n == 1) return {lo};
  std::vector<double> out(static_cast<std::size_t>(n));
  const double step = (hi - lo) / (n - 1);
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = lo + step * i;
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, int n) {
  if (lo <= 0.0 || hi <= 0.0)
    throw std::invalid_argument("logspace: endpoints must be positive");
  auto grid = linspace(std::log(lo), std::log(hi), n);
  for (double& g : grid) g = std::exp(g);
  return grid;
}

namespace {

double simpson_panel(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const std::function<double(double)>& f, double a,
                     double fa, double b, double fb, double m, double fm,
                     double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson_panel(a, fa, m, fm, flm);
  const double right = simpson_panel(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive_step(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive_step(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate(const std::function<double(double)>& f, double a, double b,
                 double tol) {
  if (a == b) return 0.0;
  const double sign = (a < b) ? 1.0 : -1.0;
  if (a > b) std::swap(a, b);
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = simpson_panel(a, fa, b, fb, fm);
  return sign * adaptive_step(f, a, fa, b, fb, m, fm, whole, tol, 50);
}

double integrate_simpson(const std::function<double(double)>& f, double a,
                         double b, int n) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("integrate_simpson: n must be even and >= 2");
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + h * i) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

double bisect(const std::function<double(double)>& f, double a, double b,
              double tol) {
  double fa = f(a);
  double fb = f(b);
  // lint: allow(float-compare): an exact root at an endpoint short-circuits
  // bisection; near-zeros are handled by the tolerance loop below.
  if (fa == 0.0) return a;
  // lint: allow(float-compare): same exact-root short-circuit
  if (fb == 0.0) return b;
  if (fa * fb > 0.0)
    throw std::invalid_argument("bisect: f(a) and f(b) have the same sign");
  while (b - a > tol) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    // lint: allow(float-compare): exact-root short-circuit, as above
    if (fm == 0.0) return m;
    if (fa * fm < 0.0) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  return 0.5 * (a + b);
}

double minimize_golden(const std::function<double(double)>& f, double a,
                       double b, double tol) {
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  while (b - a > tol) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace idlered::util
