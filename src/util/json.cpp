#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace idlered::util {

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray)
    throw std::logic_error("JsonValue::push_back: not an array");
  items_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ != Kind::kObject)
    throw std::logic_error("JsonValue::set: not an object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string format_number(double d) {
  if (!std::isfinite(d)) return "null";
  // Integers within the exactly-representable range print bare.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += format_number(num_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(members_[i].first);
        out += "\": ";
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void JsonValue::write_file(const std::string& path, int indent) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("JsonValue::write_file: cannot open " + path);
  f << dump(indent) << '\n';
  if (!f) throw std::runtime_error("JsonValue::write_file: write failed: " + path);
}

}  // namespace idlered::util
