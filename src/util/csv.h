// Minimal CSV reading/writing used by the trace generators and the benchmark
// harness to persist stop traces and experiment series. Handles quoted fields
// containing commas/quotes/newlines — enough for our own round-trips plus
// externally produced trace files.
#pragma once

#include <string>
#include <vector>

namespace idlered::util {

/// One parsed CSV row (field per column).
using CsvRow = std::vector<std::string>;

/// A parsed CSV document: optional header plus data rows.
struct CsvDocument {
  CsvRow header;
  std::vector<CsvRow> rows;

  /// Index of a named header column, or -1 if absent.
  int column(const std::string& name) const;
};

/// Parse CSV text. If has_header, the first record becomes `header`.
CsvDocument parse_csv(const std::string& text, bool has_header);

/// Read and parse a CSV file. Throws std::runtime_error on I/O failure.
CsvDocument read_csv_file(const std::string& path, bool has_header);

/// Incremental CSV writer.
class CsvWriter {
 public:
  /// Append one row; fields are quoted when needed.
  void add_row(const CsvRow& row);

  /// Convenience: append a row of doubles formatted with max precision.
  void add_row(const std::vector<double>& row);

  /// Serialize all rows added so far.
  std::string str() const;

  /// Write to a file. Throws std::runtime_error on failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<CsvRow> rows_;
};

/// Quote a single CSV field if it contains a comma, quote, or newline.
std::string csv_escape(const std::string& field);

}  // namespace idlered::util
