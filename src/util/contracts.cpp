#include "util/contracts.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace idlered::util::contracts {

namespace {

std::atomic<Mode> g_mode{static_cast<Mode>(IDLERED_CONTRACT_MODE_DEFAULT)};

std::string format_message(const char* kind, const char* condition,
                           const char* file, int line,
                           const std::string& message) {
  std::string out = "contract violation [";
  out += kind;
  out += "] at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ": ";
  out += message;
  out += " (failed: ";
  out += condition;
  out += ')';
  return out;
}

}  // namespace

Mode mode() noexcept { return g_mode.load(std::memory_order_relaxed); }

void set_mode(Mode m) noexcept {
  g_mode.store(m, std::memory_order_relaxed);
}

ContractViolation::ContractViolation(const char* kind, const char* condition,
                                     const char* file, int line,
                                     const std::string& message)
    : std::invalid_argument(
          format_message(kind, condition, file, line, message)),
      kind_(kind),
      condition_(condition),
      file_(file),
      line_(line) {}

void violate(const char* kind, const char* condition, const char* file,
             int line, const std::string& message) {
  if (mode() == Mode::kAbort) {
    std::fputs(
        format_message(kind, condition, file, line, message).c_str(),
        stderr);
    std::fputc('\n', stderr);
    std::abort();
  }
  throw ContractViolation(kind, condition, file, line, message);
}

}  // namespace idlered::util::contracts
