#include "util/clock.h"

#include <chrono>

namespace idlered::util {

double monotonic_seconds() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

}  // namespace idlered::util
