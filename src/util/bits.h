// Audited bit-level helpers: the only place in the tree where object
// representations are reinterpreted.
//
// Everything here is UBSan-clean by construction — util::bit_cast is
// std::bit_cast behind static_asserts that spell out the contract, and the
// little-endian load/store helpers move bytes with arithmetic, never by
// aliasing, so they are endian-explicit and alignment-agnostic on every
// platform. The `raw-union-cast` lint rule bans reinterpret_cast / memcpy
// type punning in src/ outside src/util/, pointing offenders here.
//
// The serve durability layer is the main client: WAL records and
// snapshots store every double as the hex of its IEEE-754 bit pattern
// (bit-identical replay forbids a decimal round-trip) and guard each
// record with an FNV-1a checksum; to_hex64/parse_hex64/fnv1a64 are those
// codecs, shared so the writer and the torn-tail reader cannot drift.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace idlered::util {

/// Reinterpret the object representation of `from` as a `To`. The audited
/// replacement for reinterpret_cast / union / memcpy punning: well-defined
/// for trivially copyable types of equal size, and constexpr.
template <class To, class From>
constexpr To bit_cast(const From& from) noexcept {
  static_assert(sizeof(To) == sizeof(From),
                "util::bit_cast: source and destination sizes must match");
  static_assert(std::is_trivially_copyable_v<From>,
                "util::bit_cast: source must be trivially copyable");
  static_assert(std::is_trivially_copyable_v<To>,
                "util::bit_cast: destination must be trivially copyable");
  return std::bit_cast<To>(from);
}

/// Store `value` little-endian into p[0..7]. Byte-arithmetic, so the
/// on-disk/wire layout is the same on any host endianness and `p` needs
/// no alignment.
constexpr void store_le64(unsigned char* p, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xffU);
}

/// Read a little-endian uint64 from p[0..7].
constexpr std::uint64_t load_le64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr void store_le32(unsigned char* p, std::uint32_t value) noexcept {
  for (int i = 0; i < 4; ++i)
    p[i] = static_cast<unsigned char>((value >> (8 * i)) & 0xffU);
}

constexpr std::uint32_t load_le32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

/// FNV-1a over a byte string. The WAL's per-record checksum: cheap, has no
/// setup state, and a torn tail (truncated record after SIGKILL) fails it
/// with overwhelming probability.
constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// 16 lowercase hex chars, fixed width — the durable text encoding of a
/// uint64 (and, through bit_cast, of a double's IEEE bit pattern).
std::string to_hex64(std::uint64_t bits);

/// Strict inverse of to_hex64 for parsing untrusted durable data: accepts
/// 1..16 lowercase hex chars, rejects everything else (uppercase,
/// prefixes, signs, empty). Returns false without touching `out` on
/// malformed input.
bool parse_hex64(std::string_view text, std::uint64_t& out);

/// Exact double <-> text round-trip via the IEEE-754 bit pattern. The
/// decode throws std::runtime_error unless given exactly 16 valid hex
/// chars (torn or corrupt durable data must fail loudly, not quietly
/// decode to a different stop length).
std::string encode_double_bits(double value);
double decode_double_bits(std::string_view hex);

}  // namespace idlered::util
