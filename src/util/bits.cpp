#include "util/bits.h"

#include <stdexcept>

namespace idlered::util {

std::string to_hex64(std::uint64_t bits) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[bits & 0xfU];
    bits >>= 4;
  }
  return out;
}

bool parse_hex64(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = c - 'a' + 10;
    else
      return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  out = v;
  return true;
}

std::string encode_double_bits(double value) {
  return to_hex64(bit_cast<std::uint64_t>(value));
}

double decode_double_bits(std::string_view hex) {
  std::uint64_t bits = 0;
  if (hex.size() != 16 || !parse_hex64(hex, bits))
    throw std::runtime_error("util: bad double bit pattern '" +
                             std::string(hex) + "'");
  return bit_cast<double>(bits);
}

}  // namespace idlered::util
