// Minimal JSON emitter for the machine-readable bench artifacts
// (BENCH_<name>.json). Build values with JsonValue, render with dump().
// Writer only — nothing in this repository parses JSON.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace idlered::util {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}             // NOLINT
  JsonValue(int i) : JsonValue(static_cast<double>(i)) {}            // NOLINT
  JsonValue(std::size_t n) : JsonValue(static_cast<double>(n)) {}    // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}        // NOLINT
  JsonValue(std::string s)                                           // NOLINT
      : kind_(Kind::kString), str_(std::move(s)) {}

  static JsonValue array();
  static JsonValue object();

  /// Array append; throws std::logic_error if this is not an array.
  JsonValue& push_back(JsonValue v);

  /// Object insert/overwrite; throws std::logic_error if not an object.
  JsonValue& set(const std::string& key, JsonValue v);

  /// Render. Numbers use shortest round-trip formatting; non-finite
  /// doubles are emitted as null (JSON has no Inf/NaN).
  std::string dump(int indent = 2) const;

  /// dump() to a file; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path, int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  // Insertion-ordered object members.
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escape a string per RFC 8259 (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace idlered::util
