// Clang thread-safety annotations + the annotated locking vocabulary of
// this codebase.
//
// The repo's concurrency (MPSC rings, sharded WAL checkpoints, lock-free
// metric shards, the work-stealing pool) was previously guarded only by
// TSan at runtime. These macros move the locking contracts into the type
// system: under Clang with -Wthread-safety (the ENABLE_THREAD_SAFETY_ANALYSIS
// CMake option promotes it to -Werror=thread-safety), a read of a
// IDLERED_GUARDED_BY member without its mutex, a missing IDLERED_REQUIRES
// capability, or an unbalanced acquire/release is a compile error. Under
// GCC (which has no capability analysis) every macro expands to nothing
// and `util::Mutex` is a zero-cost inline wrapper over std::mutex, so the
// annotated code is bit-identical to the raw-std::mutex code it replaced.
//
// Vocabulary:
//   util::Mutex       annotated std::mutex. The `unannotated-mutex` lint
//                     rule requires every mutex member in src/ to use it
//                     (or carry an explicit allow).
//   util::LockGuard   annotated RAII scope lock (std::lock_guard shape).
//   util::CondVar     condition variable waiting on a util::Mutex. wait()
//                     deliberately has NO predicate overload: a predicate
//                     lambda is a separate function to the analysis and
//                     reads of guarded state inside it would need their
//                     own annotations — write the while loop inline in
//                     the annotated function instead.
//   util::ThreadRole  a capability with no runtime state, for contracts
//                     of the form "these members belong to the single
//                     pump thread" where a real lock would be overhead
//                     with no correctness value (the Clang docs call this
//                     the role pattern). Claim it with ScopedAssumeRole;
//                     the claim is a static assertion, not a lock.
//
// Conventions (DESIGN.md §13): declare the mutex before the members it
// guards, annotate every guarded member, and annotate internal helpers
// called under the lock with IDLERED_REQUIRES rather than re-locking.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define IDLERED_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef IDLERED_THREAD_ANNOTATION
#define IDLERED_THREAD_ANNOTATION(x)  // no capability analysis: expand away
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define IDLERED_CAPABILITY(x) IDLERED_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define IDLERED_SCOPED_CAPABILITY IDLERED_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be accessed while holding the given capability.
#define IDLERED_GUARDED_BY(x) IDLERED_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be accessed while holding the given capability.
#define IDLERED_PT_GUARDED_BY(x) IDLERED_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define IDLERED_ACQUIRE(...) \
  IDLERED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define IDLERED_RELEASE(...) \
  IDLERED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define IDLERED_TRY_ACQUIRE(result, ...) \
  IDLERED_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define IDLERED_REQUIRES(...) \
  IDLERED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself;
/// calling with it held would deadlock a non-recursive mutex).
#define IDLERED_EXCLUDES(...) IDLERED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define IDLERED_RETURN_CAPABILITY(x) IDLERED_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable the analysis for one function. Every use needs a
/// comment explaining the out-of-band safety argument.
#define IDLERED_NO_THREAD_SAFETY_ANALYSIS \
  IDLERED_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace idlered::util {

class CondVar;

/// std::mutex with capability annotations. Same size, same codegen; the
/// analysis-visible lock()/unlock() are what let IDLERED_GUARDED_BY
/// members be compiler-checked.
class IDLERED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IDLERED_ACQUIRE() { m_.lock(); }
  void unlock() IDLERED_RELEASE() { m_.unlock(); }
  bool try_lock() IDLERED_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII scope lock over util::Mutex (std::lock_guard shape: held for the
/// full scope, no early unlock).
class IDLERED_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) IDLERED_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() IDLERED_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable over util::Mutex. The caller holds `m` (via
/// LockGuard) across wait(); internally the wait adopts the native mutex
/// for the sleep and releases ownership back before returning, so the
/// guard's invariant — locked for its whole scope — is preserved and the
/// analysis sees an uninterrupted hold.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `m`, sleep until notified, and reacquire `m`.
  /// Spurious wakeups happen; callers loop on their predicate inline.
  void wait(Mutex& m) IDLERED_REQUIRES(m) {
    std::unique_lock<std::mutex> relock(m.m_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();  // ownership returns to the caller's guard
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability with no runtime state: a statically-checked claim that the
/// current thread is playing a named role (e.g. "the shard's single pump
/// thread"). Members annotated IDLERED_GUARDED_BY(role_) and methods
/// annotated IDLERED_REQUIRES(role_) are then compiler-checked to be
/// reached only through a ScopedAssumeRole claim — which is exactly the
/// documentation-only threading contract serve::Shard used to rely on,
/// but enforced.
class IDLERED_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

/// Scoped claim of a ThreadRole. Purely static — constructing one compiles
/// to nothing — so claiming a role you do not actually hold is a lie the
/// compiler cannot catch; the claim marks the audited entry points (the
/// service's pump/recover/checkpoint paths) where single-threadedness is
/// guaranteed by construction.
class IDLERED_SCOPED_CAPABILITY ScopedAssumeRole {
 public:
  explicit ScopedAssumeRole(ThreadRole& role) IDLERED_ACQUIRE(role) {
    static_cast<void>(role);
  }
  ~ScopedAssumeRole() IDLERED_RELEASE() {}

  ScopedAssumeRole(const ScopedAssumeRole&) = delete;
  ScopedAssumeRole& operator=(const ScopedAssumeRole&) = delete;
};

}  // namespace idlered::util
