// Producer-side ingestion hardening: retry-with-backoff on backpressure.
//
// submit() refusing an event is the service working as designed — the
// bounded queue is the backpressure primitive — but a telemetry source
// that simply drops on refusal turns transient overload into data loss.
// The Ingestor wraps submit with a bounded retry loop driven by the same
// jittered exponential backoff the shards use for re-promotion: delays
// grow per consecutive refusal (so a saturated shard is not hammered),
// jitter de-synchronizes competing sources, and the counter resets on the
// first acceptance.
//
// Time is abstract: backoff delays are expressed in "wait ticks" handed
// to the caller's on_wait callback, which decides what a tick means —
// the bench sleeps, tests pump the service, a real deployment would
// sleep on its telemetry clock. That keeps the retry policy itself
// deterministic and clock-free (the determinism lint applies to src/
// serve/ like everywhere else).
#pragma once

#include <cstdint>
#include <functional>

#include "robust/backoff.h"
#include "serve/event.h"
#include "serve/service.h"

namespace idlered::serve {

struct IngestConfig {
  /// Attempts per event before it is counted lost (>= 1). The final
  /// refusal is returned to the caller.
  std::size_t max_attempts = 8;
  /// Backoff across consecutive refusals, in wait ticks.
  robust::ExponentialBackoff::Config backoff;

  IngestConfig();

  /// Throws std::invalid_argument on max_attempts == 0 or a bad backoff.
  void validate() const;
};

class Ingestor {
 public:
  /// `seed` drives the backoff jitter (give each source its own).
  Ingestor(DecisionService& service, const IngestConfig& config,
           std::uint64_t seed);

  /// Submit with retry. Between attempts, on_wait(ticks) runs with the
  /// backoff delay — the caller must let the service make progress there
  /// (pump it, or sleep while a pump thread runs) or the retries are
  /// busy-waiting. Returns the first acceptance or the last refusal.
  Admit feed(const StopEvent& event,
             const std::function<void(double)>& on_wait);

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t lost() const { return lost_; }  ///< attempts exhausted

 private:
  DecisionService& service_;
  IngestConfig config_;
  robust::ExponentialBackoff backoff_;
  std::uint64_t delivered_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace idlered::serve
