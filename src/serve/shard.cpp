#include "serve/shard.h"

#include <cmath>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/analytic.h"
#include "core/policies.h"
#include "core/solver_lp.h"
#include "obs/decision_trace.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "robust/health_monitor.h"
#include "util/contracts.h"
#include "util/random.h"

namespace idlered::serve {

namespace {

int severity(robust::ControllerMode mode) { return static_cast<int>(mode); }

double quiet_nan() { return std::numeric_limits<double>::quiet_NaN(); }

// Throwaway per-decision stream: a pure function of (service seed,
// vehicle, seq), so the same event draws the same threshold on replay, on
// any thread, in any batch.
std::uint64_t decision_seed(std::uint64_t seed, const StopEvent& event) {
  return util::mix64(util::mix64(seed ^ event.vehicle) ^ event.seq);
}

// One drain-batch summary for the obs timeline; lines up with the shed
// transitions and the queue-depth gauge.
void trace_drain([[maybe_unused]] std::size_t shard,
                 [[maybe_unused]] std::uint64_t pump,
                 [[maybe_unused]] std::size_t depth,
                 [[maybe_unused]] std::size_t popped,
                 [[maybe_unused]] robust::ControllerMode ceiling) {
  IDLERED_OBS_ONLY(if (obs::enabled()) {
    util::JsonValue ev = util::JsonValue::object();
    ev.set("type", "serve_drain");
    ev.set("shard", static_cast<double>(shard));
    ev.set("pump", static_cast<double>(pump));
    ev.set("depth", depth);
    ev.set("popped", popped);
    ev.set("ceiling", robust::to_string(ceiling));
    obs::recorder().emit(std::move(ev));
  })
}

// The dspan chain (obs/decision_trace.h): every stage recomputes the
// trace id from (seed, vehicle, seq), so no wire format changes and the
// Decision stream stays bit-identical traced vs untraced.

// Root of the chain, emitted from the producer thread when the queue
// accepts the event. A point event: its timestamp is the admission time.
void trace_ingest([[maybe_unused]] std::uint64_t seed,
                  [[maybe_unused]] std::size_t shard,
                  [[maybe_unused]] const StopEvent& event) {
  IDLERED_OBS_ONLY(if (obs::enabled()) {
    const double t0 = obs::recorder().now();
    util::JsonValue ev = obs::make_dspan(
        obs::decision_trace_id(seed, event.vehicle, event.seq), "ingest",
        nullptr, t0, 0.0);
    ev.set("shard", static_cast<double>(shard));
    ev.set("vehicle", event.vehicle);
    ev.set("seq", event.seq);
    obs::recorder().emit(std::move(ev));
  })
}

// Pricing stage, parented on the durability barrier when there is one.
void trace_solve([[maybe_unused]] std::uint64_t seed,
                 [[maybe_unused]] std::size_t shard,
                 [[maybe_unused]] const StopEvent& event,
                 [[maybe_unused]] robust::ControllerMode rung,
                 [[maybe_unused]] const char* parent,
                 [[maybe_unused]] double t0, [[maybe_unused]] bool replay) {
  IDLERED_OBS_ONLY(if (obs::enabled()) {
    const double dur = obs::recorder().now() - t0;
    util::JsonValue ev = obs::make_dspan(
        obs::decision_trace_id(seed, event.vehicle, event.seq), "solve",
        parent, t0, dur);
    ev.set("shard", static_cast<double>(shard));
    ev.set("rung", robust::to_string(rung));
    if (replay) ev.set("replay", true);
    obs::recorder().emit(std::move(ev));
  })
}

// Terminal stage, emitted for every outcome. The parent names the last
// stage the event actually passed through: solve for priced events, the
// WAL barrier for applied-but-rejected events on durable shards, ingest
// for stale duplicates (which are never WAL-appended) and for
// non-durable shards.
void trace_decision([[maybe_unused]] std::uint64_t seed,
                    [[maybe_unused]] std::size_t shard,
                    [[maybe_unused]] const StopEvent& event,
                    [[maybe_unused]] const Decision& d,
                    [[maybe_unused]] bool durable,
                    [[maybe_unused]] double t0, [[maybe_unused]] bool replay) {
  IDLERED_OBS_ONLY(if (obs::enabled()) {
    const double dur = obs::recorder().now() - t0;
    const char* parent = "ingest";
    if (d.outcome == Outcome::kDecided) {
      parent = "solve";
    } else if (d.outcome != Outcome::kRejectedStale && durable) {
      parent = "wal";
    }
    util::JsonValue ev = obs::make_dspan(
        obs::decision_trace_id(seed, event.vehicle, event.seq), "decision",
        parent, t0, dur);
    ev.set("shard", static_cast<double>(shard));
    ev.set("vehicle", event.vehicle);
    ev.set("seq", event.seq);
    ev.set("outcome", to_string(d.outcome));
    ev.set("rung", robust::to_string(d.rung));
    ev.set("durable", durable);
    if (replay) ev.set("replay", true);
    obs::recorder().emit(std::move(ev));
  })
}

}  // namespace

void ShardParams::validate() const {
  if (!(break_even > 0.0) || !std::isfinite(break_even))
    throw std::invalid_argument("ShardParams: break_even must be finite > 0");
  if (queue_capacity == 0)
    throw std::invalid_argument("ShardParams: queue_capacity must be >= 1");
  if (drain_batch == 0)
    throw std::invalid_argument("ShardParams: drain_batch must be >= 1");
  if (warmup_stops == 0)
    throw std::invalid_argument("ShardParams: warmup_stops must be >= 1");
  if (!(b_det_margin > 0.0) || b_det_margin > 1.0)
    throw std::invalid_argument("ShardParams: b_det_margin must be in (0, 1]");
  guard.validate();
  shed.validate();
}

Shard::Shard(const ShardParams& params)
    : params_(params),
      queue_(params.queue_capacity),
      shedder_(params.shed,
               util::mix64(params.seed ^ (params.index + 0x5e17ULL))) {
  params_.validate();
}

void Shard::attach_durable(const std::string& dir, bool fresh) {
  std::filesystem::create_directories(dir);
  dir_ = dir;
  wal_.open(dir, params_.index, fresh);
}

Admit Shard::submit(const StopEvent& event) {
  if (queue_.try_push(event)) {
    trace_ingest(params_.seed, params_.index, event);
    return Admit::kAccepted;
  }
  IDLERED_COUNT("serve.submit.rejected");
  return Admit::kRejectedQueueFull;
}

std::size_t Shard::drain(std::vector<Decision>& out) {
  IDLERED_LOG_TIMER("serve.drain.seconds");
  const std::size_t depth = queue_.size();
  const robust::ControllerMode ceiling =
      shedder_.observe(depth, queue_.capacity());
  IDLERED_OBS_ONLY({
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    if (!gauge_registered_) {
      gauge_id_ =
          reg.gauge("serve.queue_depth." + std::to_string(params_.index));
      gauge_registered_ = true;
    }
    reg.set(gauge_id_, static_cast<double>(depth));
  })

  batch_.clear();
  queue_.pop_up_to(params_.drain_batch, batch_);
  if (batch_.empty()) return 0;
  trace_drain(params_.index, shedder_.pumps(), depth, batch_.size(), ceiling);

  // Durability barrier: every event that will mutate state goes to the
  // WAL — flushed — *before* any of the batch's decisions are emitted, so
  // a crash can lose only decisions nobody has seen yet. Staleness is the
  // one thing predicted here instead of discovered in apply_event; the
  // prediction tracks in-batch seq advances so it matches apply order
  // exactly.
  if (durable()) {
    IDLERED_OBS_ONLY(
        const bool tracing = obs::enabled();
        const double wal_t0 = tracing ? obs::recorder().now() : 0.0;
        std::vector<const StopEvent*> walled;)
    std::map<std::uint64_t, std::uint64_t> pending;
    std::uint64_t index = apply_index_;
    for (const StopEvent& ev : batch_) {
      std::uint64_t last = 0;
      if (const auto p = pending.find(ev.vehicle); p != pending.end()) {
        last = p->second;
      } else if (const auto s = states_.find(ev.vehicle);
                 s != states_.end()) {
        last = s->second.last_seq;
      }
      if (ev.seq == 0 || ev.seq <= last) continue;  // stale: pure no-op
      pending[ev.vehicle] = ev.seq;
      wal_.append(WalRecord{++index, ev, ceiling});
      IDLERED_OBS_ONLY(if (tracing) walled.push_back(&ev);)
    }
    {
      IDLERED_LOG_TIMER("serve.wal_flush.seconds");
      wal_.flush();
    }
    // One barrier, one dspan per record it covered: every record shares
    // the barrier's t0/dur because none of its decisions may be emitted
    // before the whole flush returns.
    IDLERED_OBS_ONLY(if (tracing) {
      const double wal_dur = obs::recorder().now() - wal_t0;
      for (const StopEvent* ev : walled) {
        util::JsonValue dspan = obs::make_dspan(
            obs::decision_trace_id(params_.seed, ev->vehicle, ev->seq),
            "wal", "ingest", wal_t0, wal_dur);
        dspan.set("shard", static_cast<double>(params_.index));
        obs::recorder().emit(std::move(dspan));
      }
    })
  }

  std::size_t applied = 0;
  for (const StopEvent& ev : batch_) {
    const std::uint64_t before = apply_index_;
    out.push_back(apply_event(ev, ceiling));
    applied += static_cast<std::size_t>(apply_index_ - before);
  }

  if (durable() && params_.snapshot_every > 0 &&
      applied_since_checkpoint_ >= params_.snapshot_every)
    checkpoint();
  return applied;
}

VehicleState& Shard::vehicle(std::uint64_t id) {
  const auto it = states_.find(id);
  if (it != states_.end()) return it->second;
  return states_
      .emplace(id, VehicleState(params_.break_even, params_.guard))
      .first->second;
}

Decision Shard::apply_event(const StopEvent& event,
                            robust::ControllerMode ceiling) {
  double apply_t0 = 0.0;
  IDLERED_OBS_ONLY(if (obs::enabled()) apply_t0 = obs::recorder().now();)
  const Decision d = apply_event_impl(event, ceiling);
  trace_decision(params_.seed, params_.index, event, d, durable(), apply_t0,
                 replaying_);
  return d;
}

Decision Shard::apply_event_impl(const StopEvent& event,
                                 robust::ControllerMode ceiling) {
  Decision d;
  d.vehicle = event.vehicle;
  d.seq = event.seq;
  d.rung = ceiling;
  d.threshold = quiet_nan();

  // Stale check without creating state: a duplicate for an unseen vehicle
  // must stay a pure no-op or replayed shards would track different
  // vehicle sets than the original.
  const auto it = states_.find(event.vehicle);
  const std::uint64_t last = it == states_.end() ? 0 : it->second.last_seq;
  if (event.seq == 0 || event.seq <= last) {
    d.outcome = Outcome::kRejectedStale;
    IDLERED_COUNT("serve.events.stale");
    return d;
  }

  VehicleState& state = it != states_.end() ? it->second : vehicle(event.vehicle);
  state.last_seq = event.seq;
  ++apply_index_;
  ++applied_since_checkpoint_;

  if (state.quarantined) {
    d.outcome = Outcome::kQuarantined;
    IDLERED_COUNT("serve.events.quarantined");
    return d;
  }

  const robust::Verdict verdict =
      state.guard.admit(event.stop_length_s, event.timestamp_s);
  if (verdict != robust::Verdict::kAccept) {
    d.outcome = verdict == robust::Verdict::kRejectOutOfOrder
                    ? Outcome::kRejectedOutOfOrder
                    : Outcome::kRejectedInvalid;
    IDLERED_COUNT("serve.events.rejected");
    ++state.strikes;
    if (params_.poison_strikes > 0 &&
        state.strikes >= params_.poison_strikes) {
      state.quarantined = true;
      IDLERED_COUNT("serve.quarantines");
    }
    return d;
  }

  state.strikes = 0;
  state.acc.insert(event.stop_length_s);
  d.outcome = Outcome::kDecided;
  robust::ControllerMode rung = ceiling;
  double solve_t0 = 0.0;
  IDLERED_OBS_ONLY(if (obs::enabled()) solve_t0 = obs::recorder().now();)
  d.threshold = decide_threshold(event, state, rung);
  d.rung = rung;
  trace_solve(params_.seed, params_.index, event, rung,
              durable() ? "wal" : "ingest", solve_t0, replaying_);
  IDLERED_COUNT("serve.decisions");
  return d;
}

double Shard::decide_threshold(const StopEvent& event, VehicleState& state,
                               robust::ControllerMode& rung) {
  // The effective rung is the worse of the shed ceiling and the vehicle's
  // own warm-up rung: a cold vehicle gets the distribution-free N-Rand
  // guarantee even when the shard itself is healthy.
  const bool warmed = state.acc.count() >= params_.warmup_stops;
  if (!warmed && severity(robust::ControllerMode::kNRand) > severity(rung))
    rung = robust::ControllerMode::kNRand;

  if (rung == robust::ControllerMode::kProposed) {
    // COA re-solve on the arena workspace: the eq. (32)-(33) vertex LP runs
    // allocation-free in lp_ws_, and its selection agrees with the
    // closed-form choose_strategy() (cross-checked in tests), so the
    // decision stream is unchanged from the ProposedPolicy-based path.
    const dist::ShortStopStats stats = state.acc.stats();
    const core::LpStrategySolution sol =
        core::solve_constrained_lp(stats, params_.break_even, lp_ws_);
    if (sol.strategy == core::Strategy::kBDet &&
        !robust::trust_b_det(stats, params_.break_even,
                             params_.b_det_margin)) {
      // Estimation error near the eq. 36 boundary flips the LP vertex;
      // DET keeps 2-competitiveness on this stop regardless.
      rung = robust::ControllerMode::kDet;
    } else {
      switch (sol.strategy) {
        case core::Strategy::kToi:
          return 0.0;
        case core::Strategy::kDet:
          return params_.break_even;
        case core::Strategy::kBDet:
          return sol.b;
        case core::Strategy::kNRand: {
          const core::NRandPolicy n_rand(params_.break_even);
          util::Rng rng(decision_seed(params_.seed, event));
          return n_rand.sample_threshold(rng);
        }
      }
    }
  }
  switch (rung) {
    case robust::ControllerMode::kProposed:
      break;  // unreachable: handled above
    case robust::ControllerMode::kDet:
      return params_.break_even;
    case robust::ControllerMode::kNRand: {
      const core::NRandPolicy n_rand(params_.break_even);
      util::Rng rng(decision_seed(params_.seed, event));
      return n_rand.sample_threshold(rng);
    }
    case robust::ControllerMode::kNev:
      return std::numeric_limits<double>::infinity();
  }
  return params_.break_even;
}

void Shard::checkpoint() {
  if (!durable()) return;
  IDLERED_SPAN("serve.checkpoint");
  ShardSnap snap;
  snap.cursor = apply_index_;
  snap.vehicles.reserve(states_.size());
  for (const auto& [id, state] : states_) {
    VehicleSnap v;
    v.vehicle = id;
    v.last_seq = state.last_seq;
    v.count = state.acc.count();
    v.long_count = state.acc.long_count();
    v.short_sum = state.acc.short_sum();
    v.guard = state.guard.state();
    v.strikes = state.strikes;
    v.quarantined = state.quarantined;
    snap.vehicles.push_back(v);
  }
  write_shard_snapshot(dir_, params_.index, snap);
  wal_.reset();
  applied_since_checkpoint_ = 0;
  IDLERED_COUNT("serve.checkpoints");
}

std::vector<Decision> Shard::recover() {
  if (!durable())
    throw std::logic_error("Shard::recover: no durable storage attached");
  IDLERED_SPAN("serve.recover");
  states_.clear();
  apply_index_ = 0;
  applied_since_checkpoint_ = 0;

  if (const auto snap = read_shard_snapshot(dir_, params_.index)) {
    apply_index_ = snap->cursor;
    for (const VehicleSnap& v : snap->vehicles) {
      VehicleState state(params_.break_even, params_.guard);
      state.acc = stats::ShortStopAccumulator::restore(
          params_.break_even, static_cast<std::size_t>(v.count), v.short_sum,
          static_cast<std::size_t>(v.long_count));
      state.guard.restore(v.guard);
      state.last_seq = v.last_seq;
      state.strikes = v.strikes;
      state.quarantined = v.quarantined;
      states_.emplace(v.vehicle, std::move(state));
    }
  }

  std::vector<Decision> replayed;
  replaying_ = true;
  for (const WalRecord& rec : read_wal(dir_, params_.index)) {
    if (rec.index <= apply_index_) continue;  // already in the snapshot
    replayed.push_back(apply_event(rec.event, rec.ceiling));
    // Every WAL record past the cursor must advance the apply index by
    // exactly one; a mismatch means the log and snapshot disagree.
    IDLERED_ENSURES(apply_index_ == rec.index,
                    "WAL replay index out of step with snapshot cursor");
  }
  replaying_ = false;
  IDLERED_COUNT_ADD("serve.replayed", replayed.size());
  return replayed;
}

std::uint64_t Shard::last_applied_seq(std::uint64_t vehicle_id) const {
  const auto it = states_.find(vehicle_id);
  return it == states_.end() ? 0 : it->second.last_seq;
}

std::uint64_t Shard::quarantined_vehicles() const {
  std::uint64_t n = 0;
  for (const auto& [id, state] : states_)
    if (state.quarantined) ++n;
  return n;
}

}  // namespace idlered::serve
