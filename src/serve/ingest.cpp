#include "serve/ingest.h"

#include <stdexcept>

#include "obs/obs.h"

namespace idlered::serve {

IngestConfig::IngestConfig() {
  // First retry after 1 tick, doubling to a 32-tick cap; half-range
  // jitter so sources retrying into the same burst spread out.
  backoff.base = 1.0;
  backoff.multiplier = 2.0;
  backoff.max = 32.0;
  backoff.jitter = 0.5;
}

void IngestConfig::validate() const {
  if (max_attempts == 0)
    throw std::invalid_argument("IngestConfig: max_attempts must be >= 1");
  backoff.validate();
}

Ingestor::Ingestor(DecisionService& service, const IngestConfig& config,
                   std::uint64_t seed)
    : service_(service), config_(config), backoff_(config.backoff, seed) {
  config_.validate();
}

Admit Ingestor::feed(const StopEvent& event,
                     const std::function<void(double)>& on_wait) {
  Admit admit = Admit::kRejectedQueueFull;
  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    admit = service_.submit(event);
    if (admit == Admit::kAccepted) {
      ++delivered_;
      backoff_.reset();
      return admit;
    }
    if (admit == Admit::kRejectedShutdown) return admit;  // no point retrying
    ++retries_;
    IDLERED_COUNT("serve.ingest.retries");
    if (attempt + 1 < config_.max_attempts && on_wait)
      on_wait(backoff_.next());
  }
  ++lost_;
  IDLERED_COUNT("serve.ingest.lost");
  return admit;
}

}  // namespace idlered::serve
