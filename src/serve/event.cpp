#include "serve/event.h"

#include "util/bits.h"

namespace idlered::serve {

std::string to_string(Admit admit) {
  switch (admit) {
    case Admit::kAccepted: return "accepted";
    case Admit::kRejectedQueueFull: return "rejected-queue-full";
    case Admit::kRejectedShutdown: return "rejected-shutdown";
  }
  return "unknown";
}

std::string to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kDecided: return "decided";
    case Outcome::kRejectedInvalid: return "rejected-invalid";
    case Outcome::kRejectedOutOfOrder: return "rejected-out-of-order";
    case Outcome::kRejectedStale: return "rejected-stale";
    case Outcome::kQuarantined: return "quarantined";
  }
  return "unknown";
}

bool bit_identical(const Decision& a, const Decision& b) {
  return a.vehicle == b.vehicle && a.seq == b.seq && a.outcome == b.outcome &&
         a.rung == b.rung &&
         util::bit_cast<std::uint64_t>(a.threshold) ==
             util::bit_cast<std::uint64_t>(b.threshold);
}

}  // namespace idlered::serve
