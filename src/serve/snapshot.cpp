#include "serve/snapshot.h"

#include "util/bits.h"
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace idlered::serve {

namespace {

namespace fs = std::filesystem;

constexpr char kMetaMagic[] = "idlered-serve-meta v1";
constexpr char kSnapMagic[] = "idlered-serve-snap v1";

std::string shard_file(const std::string& dir, std::size_t shard,
                       const char* ext) {
  std::ostringstream os;
  os << dir << "/shard_" << shard << ext;
  return os.str();
}

// Checksums and hex codecs come from util/bits.h — the audited,
// UBSan-clean home for every bit-level conversion in the tree.
using util::fnv1a64;
using util::parse_hex64;
using util::to_hex64;

// Replace the target atomically: write everything to a sibling temp file,
// flush, then rename over the destination. A kill mid-write leaves the old
// file untouched.
void write_atomically(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("serve: cannot open " + tmp);
    out << body;
    out.flush();
    if (!out) throw std::runtime_error("serve: write failed on " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("serve: rename " + tmp + " -> " + path +
                             " failed: " + ec.message());
}

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  throw std::runtime_error("serve: corrupt file " + path + ": " + why);
}

}  // namespace

std::string meta_path(const std::string& dir) { return dir + "/meta"; }

std::string snapshot_path(const std::string& dir, std::size_t shard) {
  return shard_file(dir, shard, ".snap");
}

std::string wal_path(const std::string& dir, std::size_t shard) {
  return shard_file(dir, shard, ".wal");
}

std::string encode_bits(double value) {
  return util::encode_double_bits(value);
}

double decode_bits(const std::string& hex) {
  std::uint64_t bits = 0;
  if (hex.size() != 16 || !parse_hex64(hex, bits))
    throw std::runtime_error("serve: bad double bit pattern '" + hex + "'");
  return util::bit_cast<double>(bits);
}

void write_meta(const std::string& dir, const ServeMeta& meta) {
  std::ostringstream os;
  os << kMetaMagic << '\n'
     << "shards " << meta.num_shards << '\n'
     << "break_even " << encode_bits(meta.break_even) << '\n'
     << "seed " << to_hex64(meta.seed) << '\n'
     << "warmup " << meta.warmup_stops << '\n'
     << "end\n";
  write_atomically(meta_path(dir), os.str());
}

std::optional<ServeMeta> read_meta(const std::string& dir) {
  const std::string path = meta_path(dir);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  std::string line;
  if (!std::getline(in, line) || line != kMetaMagic)
    corrupt(path, "bad magic");

  ServeMeta meta;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(line);
    std::string key, value;
    if (!(fields >> key >> value)) corrupt(path, "malformed line");
    if (key == "shards") {
      meta.num_shards = static_cast<std::size_t>(std::stoull(value));
    } else if (key == "break_even") {
      meta.break_even = decode_bits(value);
    } else if (key == "seed") {
      if (!parse_hex64(value, meta.seed)) corrupt(path, "bad seed");
    } else if (key == "warmup") {
      meta.warmup_stops = static_cast<std::size_t>(std::stoull(value));
    } else {
      corrupt(path, "unknown key '" + key + "'");
    }
  }
  if (!saw_end) corrupt(path, "missing end marker");
  return meta;
}

void write_shard_snapshot(const std::string& dir, std::size_t shard,
                          const ShardSnap& snap) {
  std::ostringstream os;
  os << kSnapMagic << '\n'
     << "cursor " << snap.cursor << '\n'
     << "vehicles " << snap.vehicles.size() << '\n';
  for (const VehicleSnap& v : snap.vehicles) {
    const robust::GuardCounts& c = v.guard.counts;
    os << "v " << to_hex64(v.vehicle) << ' ' << v.last_seq << ' ' << v.count
       << ' ' << v.long_count << ' ' << encode_bits(v.short_sum) << ' '
       << v.strikes << ' ' << (v.quarantined ? 1 : 0) << " g " << c.accepted
       << ' ' << c.non_finite << ' ' << c.negative << ' ' << c.out_of_range
       << ' ' << c.stuck << ' ' << c.out_of_order << ' ' << c.dropped << ' '
       << encode_bits(v.guard.last_value) << ' ' << v.guard.run_length << ' '
       << encode_bits(v.guard.last_timestamp) << ' '
       << (v.guard.has_timestamp ? 1 : 0) << '\n';
  }
  os << "end\n";
  write_atomically(snapshot_path(dir, shard), os.str());
}

std::optional<ShardSnap> read_shard_snapshot(const std::string& dir,
                                             std::size_t shard) {
  const std::string path = snapshot_path(dir, shard);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  std::string line;
  if (!std::getline(in, line) || line != kSnapMagic) corrupt(path, "bad magic");

  ShardSnap snap;
  std::size_t declared = 0;
  {
    std::string key;
    std::istringstream fields;
    if (!std::getline(in, line)) corrupt(path, "missing cursor");
    fields.str(line);
    if (!(fields >> key >> snap.cursor) || key != "cursor")
      corrupt(path, "bad cursor line");
    if (!std::getline(in, line)) corrupt(path, "missing vehicle count");
    fields.clear();
    fields.str(line);
    if (!(fields >> key >> declared) || key != "vehicles")
      corrupt(path, "bad vehicles line");
  }

  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream fields(line);
    std::string tag, vehicle_hex, short_bits, guard_tag, last_value_bits,
        last_ts_bits;
    VehicleSnap v;
    robust::GuardCounts& c = v.guard.counts;
    int quarantined = 0;
    int has_ts = 0;
    if (!(fields >> tag >> vehicle_hex >> v.last_seq >> v.count >>
          v.long_count >> short_bits >> v.strikes >> quarantined >>
          guard_tag >> c.accepted >> c.non_finite >> c.negative >>
          c.out_of_range >> c.stuck >> c.out_of_order >> c.dropped >>
          last_value_bits >> v.guard.run_length >> last_ts_bits >> has_ts) ||
        tag != "v" || guard_tag != "g")
      corrupt(path, "malformed vehicle line");
    if (!parse_hex64(vehicle_hex, v.vehicle)) corrupt(path, "bad vehicle id");
    v.short_sum = decode_bits(short_bits);
    v.guard.last_value = decode_bits(last_value_bits);
    v.guard.last_timestamp = decode_bits(last_ts_bits);
    v.quarantined = quarantined != 0;
    v.guard.has_timestamp = has_ts != 0;
    snap.vehicles.push_back(v);
  }
  if (!saw_end) corrupt(path, "missing end marker");
  if (snap.vehicles.size() != declared)
    corrupt(path, "vehicle count mismatch");
  return snap;
}

void WalWriter::open(const std::string& dir, std::size_t shard,
                     bool truncate) {
  path_ = wal_path(dir, shard);
  buffer_.clear();
  if (truncate) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("serve: cannot open " + path_);
  }
}

void WalWriter::append(const WalRecord& record) {
  std::ostringstream os;
  os << "e " << record.index << ' ' << to_hex64(record.event.vehicle) << ' '
     << record.event.seq << ' ' << encode_bits(record.event.timestamp_s)
     << ' ' << encode_bits(record.event.stop_length_s) << ' '
     << static_cast<int>(record.ceiling);
  const std::string body = os.str();
  buffer_ += body;
  buffer_ += ' ';
  buffer_ += to_hex64(fnv1a64(body));
  buffer_ += '\n';
  ++appended_;
}

void WalWriter::flush() {
  if (buffer_.empty()) return;
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("serve: cannot open " + path_);
  out << buffer_;
  out.flush();
  if (!out) throw std::runtime_error("serve: WAL flush failed on " + path_);
  buffer_.clear();
}

void WalWriter::reset() {
  buffer_.clear();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("serve: cannot open " + path_);
}

std::vector<WalRecord> read_wal(const std::string& dir, std::size_t shard) {
  std::vector<WalRecord> records;
  std::ifstream in(wal_path(dir, shard), std::ios::binary);
  if (!in) return records;

  std::string line;
  while (std::getline(in, line)) {
    // Everything after the last space is the checksum of everything before
    // it; any mismatch (including a line torn by a crash) ends the replay.
    const std::size_t split = line.rfind(' ');
    if (split == std::string::npos) break;
    const std::string body = line.substr(0, split);
    std::uint64_t stored = 0;
    if (!parse_hex64(line.substr(split + 1), stored) ||
        stored != fnv1a64(body))
      break;

    std::istringstream fields(body);
    std::string tag, vehicle_hex, ts_bits, len_bits;
    WalRecord rec;
    int ceiling = 0;
    if (!(fields >> tag >> rec.index >> vehicle_hex >> rec.event.seq >>
          ts_bits >> len_bits >> ceiling) ||
        tag != "e")
      break;
    if (!parse_hex64(vehicle_hex, rec.event.vehicle)) break;
    if (ceiling < 0 || ceiling > static_cast<int>(robust::ControllerMode::kNev))
      break;
    rec.event.timestamp_s = decode_bits(ts_bits);
    rec.event.stop_length_s = decode_bits(len_bits);
    rec.ceiling = static_cast<robust::ControllerMode>(ceiling);
    records.push_back(rec);
  }
  return records;
}

}  // namespace idlered::serve
