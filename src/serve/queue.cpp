#include "serve/queue.h"

#include <algorithm>
#include <stdexcept>

namespace idlered::serve {

BoundedEventQueue::BoundedEventQueue(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("BoundedEventQueue: capacity must be >= 1");
  ring_.resize(capacity);
}

bool BoundedEventQueue::try_push(const StopEvent& event) {
  util::LockGuard lock(m_);
  if (count_ == capacity_) {
    ++rejected_;
    return false;
  }
  ring_[(head_ + count_) % capacity_] = event;
  ++count_;
  high_water_ = std::max(high_water_, count_);
  return true;
}

std::size_t BoundedEventQueue::pop_up_to(std::size_t max,
                                         std::vector<StopEvent>& out) {
  util::LockGuard lock(m_);
  const std::size_t n = std::min(max, count_);
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
  }
  count_ -= n;
  return n;
}

std::size_t BoundedEventQueue::size() const {
  util::LockGuard lock(m_);
  return count_;
}

std::size_t BoundedEventQueue::high_water() const {
  util::LockGuard lock(m_);
  return high_water_;
}

std::uint64_t BoundedEventQueue::rejected() const {
  util::LockGuard lock(m_);
  return rejected_;
}

}  // namespace idlered::serve
