// Wire types of the streaming decision service.
//
// A StopEvent is one completed vehicle stop reported by a telemetry
// source; the Decision answering it is the idle-wait threshold the vehicle
// should apply from now on (the online ski-rental answer to "idle or shut
// off?"), priced by the fallback-ladder rung that was in force when the
// event was processed. Everything here is plain data: the service's
// determinism and crash-replay guarantees are stated over these structs,
// so they carry no behaviour and no hidden state.
#pragma once

#include <cstdint>
#include <string>

#include "robust/fallback.h"

namespace idlered::serve {

/// One per-vehicle stop observation entering the service.
struct StopEvent {
  std::uint64_t vehicle = 0;  ///< fleet-wide vehicle identifier
  /// Source-assigned, strictly increasing per vehicle. The service
  /// deduplicates on it (at-least-once delivery becomes exactly-once
  /// processing) and exposes the last applied value for crash-resume.
  std::uint64_t seq = 0;
  double timestamp_s = 0.0;    ///< event time at the source
  double stop_length_s = 0.0;  ///< observed stop duration
};

/// Admission verdict returned to the producer at submit time.
enum class Admit {
  kAccepted = 0,       ///< queued for the owning shard
  kRejectedQueueFull,  ///< backpressure: retry after a backoff delay
  kRejectedShutdown,   ///< service is draining for shutdown
};

std::string to_string(Admit admit);

/// What processing an event produced.
enum class Outcome {
  kDecided = 0,        ///< a threshold was issued
  kRejectedInvalid,    ///< InputGuard rejected the stop value
  kRejectedOutOfOrder, ///< event time not after the last accepted one
  kRejectedStale,      ///< seq <= last applied seq (duplicate delivery)
  kQuarantined,        ///< vehicle is in the poison quarantine
};

std::string to_string(Outcome outcome);

/// One decision record. For kDecided, `threshold` is the idle-wait in
/// seconds (+inf means never shut off — the NEV rung); for every other
/// outcome it is quiet NaN. Two decision streams are compared bit-for-bit
/// on (vehicle, seq, outcome, rung, threshold-bits) by the recovery tests.
struct Decision {
  std::uint64_t vehicle = 0;
  std::uint64_t seq = 0;
  Outcome outcome = Outcome::kDecided;
  robust::ControllerMode rung = robust::ControllerMode::kNRand;
  double threshold = 0.0;
};

/// Bitwise equality over the fields the determinism contract covers
/// (threshold compared on its bit pattern so NaN payloads and signed
/// zeros count).
bool bit_identical(const Decision& a, const Decision& b);

}  // namespace idlered::serve
