#include "serve/service.h"

#include <sstream>
#include <stdexcept>

#include "obs/obs.h"
#include "serve/snapshot.h"
#include "util/bits.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace idlered::serve {

namespace {

ShardParams shard_params(const ServeConfig& config, std::size_t index) {
  ShardParams p;
  p.index = index;
  p.break_even = config.break_even;
  p.warmup_stops = config.warmup_stops;
  p.queue_capacity = config.queue_capacity;
  p.drain_batch = config.drain_batch;
  p.poison_strikes = config.poison_strikes;
  p.b_det_margin = config.b_det_margin;
  p.guard = config.guard;
  p.shed = config.shed;
  p.seed = config.seed;
  p.snapshot_every = config.snapshot_every;
  return p;
}

}  // namespace

void ServeConfig::validate() const {
  if (num_shards == 0)
    throw std::invalid_argument("ServeConfig: num_shards must be >= 1");
  shard_params(*this, 0).validate();
}

DecisionService::DecisionService(const ServeConfig& config)
    : DecisionService(config, /*fresh=*/true) {}

DecisionService::DecisionService(const ServeConfig& config, bool fresh)
    : config_(config), pool_(config.threads) {
  config_.validate();
  shards_.reserve(config_.num_shards);
  slots_.resize(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i)
    shards_.push_back(std::make_unique<Shard>(shard_params(config_, i)));
  if (durable()) {
    if (fresh) {
      ServeMeta meta;
      meta.num_shards = config_.num_shards;
      meta.break_even = config_.break_even;
      meta.seed = config_.seed;
      meta.warmup_stops = config_.warmup_stops;
      write_meta(config_.durable_dir, meta);
    }
    for (auto& shard : shards_) {
      // Construction is single-threaded; no pump exists yet.
      util::ScopedAssumeRole role(shard->pump_role());
      shard->attach_durable(config_.durable_dir, fresh);
    }
  }
}

DecisionService::Recovered DecisionService::recover(const ServeConfig& config) {
  if (config.durable_dir.empty())
    throw std::invalid_argument(
        "DecisionService::recover: config.durable_dir is empty");
  const auto meta = read_meta(config.durable_dir);
  if (!meta)
    throw std::runtime_error("DecisionService::recover: no meta file in " +
                             config.durable_dir);
  // Identity check is bitwise on break_even: replaying under a nearby but
  // different break-even would silently produce different decisions.
  if (meta->num_shards != config.num_shards ||
      util::bit_cast<std::uint64_t>(meta->break_even) !=
          util::bit_cast<std::uint64_t>(config.break_even) ||
      meta->seed != config.seed ||
      meta->warmup_stops != config.warmup_stops) {
    std::ostringstream os;
    os << "DecisionService::recover: meta mismatch in " << config.durable_dir
       << " (stored shards=" << meta->num_shards << " seed=" << meta->seed
       << " warmup=" << meta->warmup_stops << ")";
    throw std::runtime_error(os.str());
  }

  Recovered result;
  result.service.reset(new DecisionService(config, /*fresh=*/false));
  for (auto& shard : result.service->shards_) {
    // Recovery runs before any pump; this thread is the sole toucher.
    util::ScopedAssumeRole role(shard->pump_role());
    std::vector<Decision> replayed = shard->recover();
    result.replayed.insert(result.replayed.end(), replayed.begin(),
                           replayed.end());
  }
  // Compact: fold the replayed WAL tails into fresh snapshots so a second
  // crash right after recovery replays nothing twice.
  result.service->checkpoint();
  IDLERED_COUNT("serve.recoveries");
  return result;
}

DecisionService::~DecisionService() = default;

std::size_t DecisionService::shard_of(std::uint64_t vehicle) const {
  // mix64 first: vehicle ids are often sequential, and `id % shards`
  // would then alias whole depots onto one shard.
  return static_cast<std::size_t>(util::mix64(vehicle) % shards_.size());
}

Admit DecisionService::submit(const StopEvent& event) {
  if (!accepting_.load(std::memory_order_acquire))
    return Admit::kRejectedShutdown;
  return shards_[shard_of(event.vehicle)]->submit(event);
}

std::size_t DecisionService::pump(std::vector<Decision>& out) {
  IDLERED_SPAN("serve.pump");
  IDLERED_LOG_TIMER("serve.pump.seconds");
  // One task per shard, chunk = 1: shard drains are coarse and skewed, so
  // work stealing balances them. Slots are disjoint per shard — the
  // pool's determinism contract — and concatenated in shard order below.
  pool_.parallel_for(
      shards_.size(),
      [this](std::size_t i) {
        // The pool runs exactly one task per shard per pump, so this task
        // is the shard's pump thread for the duration of the drain.
        util::ScopedAssumeRole role(shards_[i]->pump_role());
        slots_[i].clear();
        shards_[i]->drain(slots_[i]);
      },
      /*chunk=*/1);
  std::size_t applied = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (const Decision& d : slots_[i]) {
      applied += d.outcome != Outcome::kRejectedStale ? 1 : 0;
      out.push_back(d);
    }
    slots_[i].clear();
  }
  return applied;
}

std::size_t DecisionService::drain_all(std::vector<Decision>& out) {
  std::size_t applied = 0;
  for (;;) {
    const std::size_t before = out.size();
    applied += pump(out);
    if (out.size() == before && queued() == 0) break;
  }
  return applied;
}

void DecisionService::checkpoint() {
  if (!durable()) return;
  pool_.parallel_for(
      shards_.size(),
      [this](std::size_t i) {
        // One task per shard; checkpoint() is never concurrent with pump().
        util::ScopedAssumeRole role(shards_[i]->pump_role());
        shards_[i]->checkpoint();
      },
      /*chunk=*/1);
}

std::vector<Decision> DecisionService::shutdown() {
  accepting_.store(false, std::memory_order_release);
  std::vector<Decision> out;
  drain_all(out);
  if (!checkpointed_on_shutdown_) {
    checkpoint();
    checkpointed_on_shutdown_ = true;
  }
  return out;
}

std::uint64_t DecisionService::last_applied_seq(std::uint64_t vehicle) const {
  const Shard& s = *shards_[shard_of(vehicle)];
  // Documented contract: quiesced callers only, so the caller's thread
  // holds the pump role by exclusion.
  util::ScopedAssumeRole role(s.pump_role());
  return s.last_applied_seq(vehicle);
}

std::size_t DecisionService::queued() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->queue().size();
  return total;
}

}  // namespace idlered::serve
