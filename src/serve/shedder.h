// Per-shard load shedding: queue pressure walks the fallback ladder.
//
// The shard's decision quality degrades gracefully instead of its queue
// growing without bound: as depth rises past the watermark, the shedder
// lowers a *ceiling* on the fallback ladder (robust/fallback.h) that every
// decision in the shard is clamped to —
//
//   Healthy   -> COA     full per-vehicle statistics + LP vertex choice
//   Degraded  -> DET     closed-form wait-B, no statistics consulted
//   Critical  -> N-Rand  closed-form randomized draw, cheapest guarantee
//   Stalled   -> NEV     drop-to-default: never-shut-off, near-zero cost
//
// Each cheaper rung keeps a provable competitive guarantee, so shedding
// trades CR optimality for throughput, never correctness.
//
// Flap control reuses the robust machinery verbatim: a HealthMonitor
// smooths the "depth over watermark" indicator into a two-band hysteresis
// state (the same EWMA + enter/exit bands that keep a glitchy sensor from
// flapping the controller), and *re-promotion* — stepping the ceiling back
// toward COA after the burst — additionally waits out a jittered
// exponential backoff, one rung at a time. The jitter is seeded per shard,
// so a fleet of shards recovering from the same burst de-synchronizes
// instead of re-entering COA in lockstep and immediately re-overloading
// (the thundering-herd failure).
//
// Stall detection is the NEV tripwire: a queue pinned at/near capacity for
// `stall_pumps` consecutive pumps despite draining means the shard cannot
// keep up at any statistical rung; the ceiling drops to NEV (decisions
// become O(1) "keep idling") until depth falls under stall_exit.
//
// Determinism: observe() is called once per pump with the sampled depth;
// every output is a pure function of the observation sequence and the
// seed. No clocks, no ambient entropy — crash replay and the thread-count
// invariance tests depend on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "robust/backoff.h"
#include "robust/fallback.h"
#include "robust/health_monitor.h"

namespace idlered::serve {

struct ShedConfig {
  /// Depth fraction of capacity above which a pump observation counts as
  /// "pressured" for the health EWMA.
  double watermark = 0.5;
  /// Hysteresis machinery for the pressure rate. The defaults differ from
  /// the sensor-health defaults: queue pressure moves faster than sensor
  /// corruption, so the EWMA is quicker and the bands wider.
  robust::HealthConfig health;
  /// Re-promotion backoff (in pump ticks), jittered per shard.
  robust::ExponentialBackoff::Config promote_backoff;
  /// Consecutive pumps at/above stall_enter * capacity that trip the NEV
  /// ceiling.
  std::size_t stall_pumps = 8;
  double stall_enter = 0.95;
  double stall_exit = 0.25;  ///< leave NEV once depth falls under this

  ShedConfig();

  /// Throws std::invalid_argument on fractions outside (0, 1],
  /// stall_exit >= stall_enter, stall_pumps == 0, or invalid sub-configs.
  void validate() const;
};

class LoadShedder {
 public:
  /// One ceiling change, timestamped by pump ordinal (1-based).
  struct Transition {
    std::uint64_t pump = 0;
    robust::ControllerMode from = robust::ControllerMode::kProposed;
    robust::ControllerMode to = robust::ControllerMode::kProposed;
    std::size_t depth = 0;
  };

  LoadShedder(const ShedConfig& config, std::uint64_t seed);

  /// Fold one pump's queue depth in and return the ceiling now in force.
  robust::ControllerMode observe(std::size_t depth, std::size_t capacity);

  robust::ControllerMode ceiling() const { return ceiling_; }
  bool stalled() const { return stalled_; }
  std::uint64_t pumps() const { return pumps_; }

  /// Ceiling changes so far (bounded by health.max_history like the
  /// monitor's own log). deferred_promotions counts pump ticks spent
  /// waiting out the re-promotion backoff.
  const std::vector<Transition>& transitions() const { return transitions_; }
  std::uint64_t deferred_promotions() const { return deferred_; }

  const ShedConfig& config() const { return config_; }

 private:
  /// Severity order of the ladder (kProposed least severe).
  static int severity(robust::ControllerMode mode) {
    return static_cast<int>(mode);
  }

  ShedConfig config_;
  robust::HealthMonitor monitor_;
  robust::ExponentialBackoff backoff_;
  robust::ControllerMode ceiling_ = robust::ControllerMode::kProposed;
  bool stalled_ = false;
  std::size_t stall_run_ = 0;    ///< consecutive pumps above stall_enter
  std::uint64_t promote_wait_ = 0;  ///< pumps left before the next step up
  std::uint64_t calm_run_ = 0;   ///< pumps at target ceiling (backoff reset)
  std::uint64_t pumps_ = 0;
  std::uint64_t deferred_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace idlered::serve
