// The streaming fleet decision service.
//
// Producers submit per-vehicle StopEvents from any thread; submit() hashes
// the vehicle id onto one of `num_shards` shards (mix64, so adversarial id
// patterns still spread) and enqueues on that shard's bounded queue — or
// refuses, which is the backpressure signal the ingest layer retries on.
// pump() runs one drain pass over every shard on the engine's work-stealing
// thread pool and returns the batch of decisions.
//
// Determinism: each pump writes per-shard decision slots (disjoint,
// preallocated — the pool's contract) and concatenates them in shard
// order, so a pump's output is independent of thread count and scheduling.
// Per-vehicle decision order is the vehicle's seq order regardless of
// interleaving, because vehicles are pinned to shards and shards drain
// FIFO.
//
// Durability: constructed with a non-empty `durable_dir`, the service
// writes a meta file naming its identity (shard count, break-even bits,
// seed, warm-up), and each shard maintains snapshot + WAL as described in
// snapshot.h. `DecisionService::recover(config)` rebuilds a crashed
// service from that directory: meta is validated against the config, every
// shard restores its snapshot and re-applies its WAL tail — re-deriving
// bit-identical decisions for events that were durable but whose decisions
// may not have reached anyone — and a fresh checkpoint compacts the logs.
// Producers then resume from last_applied_seq(vehicle) + 1.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/thread_pool.h"
#include "serve/event.h"
#include "serve/shard.h"

namespace idlered::serve {

struct ServeConfig {
  std::size_t num_shards = 4;
  int threads = 1;  ///< engine pool size; <= 0 = hardware concurrency
  double break_even = 60.0;
  std::size_t warmup_stops = 8;
  std::size_t queue_capacity = 256;  ///< per shard
  std::size_t drain_batch = 64;      ///< per shard per pump
  std::size_t poison_strikes = 4;    ///< 0 disables quarantine
  double b_det_margin = 0.9;
  robust::GuardConfig guard;
  ShedConfig shed;
  std::uint64_t seed = 1;
  /// Durable storage directory; empty = in-memory service (no snapshots,
  /// no WAL, no recovery).
  std::string durable_dir;
  /// Per-shard auto-checkpoint period in applied events (durable only;
  /// 0 = checkpoint only on explicit checkpoint() calls).
  std::size_t snapshot_every = 0;

  /// Throws std::invalid_argument on zero shards or invalid per-shard
  /// parameters.
  void validate() const;
};

class DecisionService {
 public:
  /// Fresh service. With a durable_dir this truncates any prior WALs and
  /// writes a new meta file — use recover() to resume instead.
  explicit DecisionService(const ServeConfig& config);

  /// Rebuild from `config.durable_dir` after a crash. Validates the meta
  /// file against `config` (shard count, break-even bits, seed, warm-up
  /// must match — replaying under a different identity would produce
  /// different decisions and corrupt the stream silently). Returns the
  /// service plus the decisions re-derived from the WAL tails.
  struct Recovered {
    std::unique_ptr<DecisionService> service;
    std::vector<Decision> replayed;
  };
  static Recovered recover(const ServeConfig& config);

  ~DecisionService();

  DecisionService(const DecisionService&) = delete;
  DecisionService& operator=(const DecisionService&) = delete;

  /// Route one event to its shard. Thread-safe; returns the admission
  /// verdict (kRejectedQueueFull is the retry-after-backoff signal).
  Admit submit(const StopEvent& event);

  /// Drain every shard once on the thread pool and append this pump's
  /// decisions to `out` (deterministic order: shard 0's batch, then shard
  /// 1's, ...). Returns how many events were applied. Not thread-safe
  /// with itself, checkpoint(), or shutdown().
  std::size_t pump(std::vector<Decision>& out);

  /// Pump until every queue is empty and a final pump applies nothing.
  std::size_t drain_all(std::vector<Decision>& out);

  /// Snapshot every shard and truncate the WALs (durable services).
  void checkpoint();

  /// Stop admitting (submit returns kRejectedShutdown), drain what is
  /// queued, and checkpoint. Idempotent.
  std::vector<Decision> shutdown();

  /// Crash-resume handshake: highest seq processed for the vehicle
  /// (0 = never seen). Quiesced callers only (no concurrent pump).
  std::uint64_t last_applied_seq(std::uint64_t vehicle) const;

  std::size_t shard_of(std::uint64_t vehicle) const;
  const Shard& shard(std::size_t index) const { return *shards_[index]; }
  std::size_t num_shards() const { return shards_.size(); }
  const ServeConfig& config() const { return config_; }
  bool durable() const { return !config_.durable_dir.empty(); }

  /// Sum of queue depths right now (diagnostics; racy under load).
  std::size_t queued() const;

 private:
  DecisionService(const ServeConfig& config, bool fresh);

  ServeConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<Decision>> slots_;  ///< per-shard pump output
  engine::ThreadPool pool_;
  std::atomic<bool> accepting_{true};
  bool checkpointed_on_shutdown_ = false;
};

}  // namespace idlered::serve
