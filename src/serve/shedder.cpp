#include "serve/shedder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace idlered::serve {

namespace {

// Shed transitions are the backpressure ladder in action; the event
// carries the depth that drove the move so a timeline lines up with the
// queue-depth gauges.
void trace_shed([[maybe_unused]] std::uint64_t pump,
                [[maybe_unused]] robust::ControllerMode from,
                [[maybe_unused]] robust::ControllerMode to,
                [[maybe_unused]] std::size_t depth) {
  IDLERED_COUNT("serve.shed.transitions");
  IDLERED_OBS_ONLY(if (obs::enabled()) {
    util::JsonValue ev = util::JsonValue::object();
    ev.set("type", "shed");
    ev.set("pump", static_cast<double>(pump));
    ev.set("from", robust::to_string(from));
    ev.set("to", robust::to_string(to));
    ev.set("depth", depth);
    obs::recorder().emit(std::move(ev));
  })
}

robust::ControllerMode mode_for(robust::HealthState state) {
  switch (state) {
    case robust::HealthState::kHealthy: return robust::ControllerMode::kProposed;
    case robust::HealthState::kDegraded: return robust::ControllerMode::kDet;
    case robust::HealthState::kCritical: return robust::ControllerMode::kNRand;
  }
  return robust::ControllerMode::kNRand;
}

}  // namespace

ShedConfig::ShedConfig() {
  // Queue pressure moves orders of magnitude faster than sensor
  // corruption, so the smoothing is quicker and the bands are wider than
  // the HealthConfig sensor defaults. The bands are over the EWMA'd
  // fraction of pumps that saw depth above the watermark.
  health.ewma_alpha = 0.2;
  health.degraded_enter = 0.50;
  health.degraded_exit = 0.20;
  health.critical_enter = 0.80;
  health.critical_exit = 0.40;
  // Re-promotion: first step after ~4 pumps, doubling per renewed
  // pressure episode, capped at 64, half-range jitter for de-sync.
  promote_backoff.base = 4.0;
  promote_backoff.multiplier = 2.0;
  promote_backoff.max = 64.0;
  promote_backoff.jitter = 0.5;
}

void ShedConfig::validate() const {
  if (!(watermark > 0.0) || watermark > 1.0)
    throw std::invalid_argument("ShedConfig: watermark must be in (0, 1]");
  if (!(stall_enter > 0.0) || stall_enter > 1.0)
    throw std::invalid_argument("ShedConfig: stall_enter must be in (0, 1]");
  if (!(stall_exit > 0.0) || stall_exit >= stall_enter)
    throw std::invalid_argument(
        "ShedConfig: stall_exit must be in (0, stall_enter)");
  if (stall_pumps == 0)
    throw std::invalid_argument("ShedConfig: stall_pumps must be >= 1");
  health.validate();
  promote_backoff.validate();
}

LoadShedder::LoadShedder(const ShedConfig& config, std::uint64_t seed)
    : config_(config),
      monitor_(config.health),
      backoff_(config.promote_backoff, seed) {
  config_.validate();
}

robust::ControllerMode LoadShedder::observe(std::size_t depth,
                                            std::size_t capacity) {
  ++pumps_;
  const double cap = static_cast<double>(capacity);
  const bool pressured = static_cast<double>(depth) >= config_.watermark * cap;
  monitor_.record_observation(pressured);

  // Stall tripwire: pinned at/near capacity for stall_pumps consecutive
  // pumps despite the drain — no statistical rung can keep up.
  if (static_cast<double>(depth) >= config_.stall_enter * cap) {
    ++stall_run_;
  } else {
    stall_run_ = 0;
  }
  if (!stalled_ && stall_run_ >= config_.stall_pumps) {
    stalled_ = true;
    IDLERED_COUNT("serve.shed.stalls");
  }
  if (stalled_ && static_cast<double>(depth) <= config_.stall_exit * cap) {
    stalled_ = false;
    stall_run_ = 0;
  }

  const robust::ControllerMode target =
      stalled_ ? robust::ControllerMode::kNev : mode_for(monitor_.state());

  const robust::ControllerMode before = ceiling_;
  if (severity(target) > severity(ceiling_)) {
    // Demotion applies immediately: shedding late defeats the purpose.
    ceiling_ = target;
    promote_wait_ = 0;
    calm_run_ = 0;
  } else if (severity(target) < severity(ceiling_)) {
    // Promotion is deferred through the jittered backoff, one rung at a
    // time, so recovering shards de-synchronize and a flappy shard waits
    // longer on each episode.
    if (promote_wait_ == 0)
      promote_wait_ = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(backoff_.next())));
    --promote_wait_;
    ++deferred_;
    if (promote_wait_ == 0)
      ceiling_ = static_cast<robust::ControllerMode>(severity(ceiling_) - 1);
  } else {
    promote_wait_ = 0;
    // Sustained calm at full quality earns the backoff a reset, so the
    // *next* burst starts from the base delay again.
    if (ceiling_ == robust::ControllerMode::kProposed && !pressured) {
      if (++calm_run_ >= 4 * static_cast<std::uint64_t>(config_.stall_pumps))
        backoff_.reset();
    } else {
      calm_run_ = 0;
    }
  }

  if (ceiling_ != before) {
    const std::size_t cap_hist = config_.health.max_history;
    if (cap_hist > 0 && transitions_.size() >= cap_hist)
      transitions_.erase(transitions_.begin(),
                         transitions_.begin() +
                             static_cast<std::ptrdiff_t>(
                                 transitions_.size() - cap_hist + 1));
    transitions_.push_back(Transition{pumps_, before, ceiling_, depth});
    trace_shed(pumps_, before, ceiling_, depth);
  }
  return ceiling_;
}

}  // namespace idlered::serve
