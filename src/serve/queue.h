// Bounded multi-producer event queue feeding one shard.
//
// Producers are telemetry sources submitting from arbitrary threads; the
// single consumer is the shard's drain pass on the engine thread pool. A
// mutex-guarded ring keeps the implementation obviously correct under
// TSan; the critical sections are a few dozen instructions, and the
// consumer amortizes its lock by popping whole drain batches.
//
// Boundedness is the backpressure primitive: try_push refuses instead of
// growing, so overload surfaces at the producer (where a retry/backoff
// policy can act) rather than as unbounded memory inside the service. The
// high-water mark and refusal count are the raw signals the load shedder
// and the obs gauges consume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/event.h"
#include "util/thread_annotations.h"

namespace idlered::serve {

class BoundedEventQueue {
 public:
  /// Throws std::invalid_argument unless capacity >= 1.
  explicit BoundedEventQueue(std::size_t capacity);

  /// Enqueue unless full. Thread-safe (any producer).
  bool try_push(const StopEvent& event) IDLERED_EXCLUDES(m_);

  /// Pop up to `max` events in FIFO order, appending to `out`; returns how
  /// many were popped. Thread-safe, but the service guarantees one
  /// consumer per queue (the owning shard's drain pass).
  std::size_t pop_up_to(std::size_t max, std::vector<StopEvent>& out)
      IDLERED_EXCLUDES(m_);

  std::size_t size() const IDLERED_EXCLUDES(m_);
  std::size_t capacity() const { return capacity_; }

  /// Deepest the queue has ever been (diagnostics; monotone).
  std::size_t high_water() const IDLERED_EXCLUDES(m_);

  /// try_push refusals so far.
  std::uint64_t rejected() const IDLERED_EXCLUDES(m_);

 private:
  const std::size_t capacity_;
  mutable util::Mutex m_;
  std::vector<StopEvent> ring_ IDLERED_GUARDED_BY(m_);
  std::size_t head_ IDLERED_GUARDED_BY(m_) = 0;  ///< next pop position
  std::size_t count_ IDLERED_GUARDED_BY(m_) = 0;
  std::size_t high_water_ IDLERED_GUARDED_BY(m_) = 0;
  std::uint64_t rejected_ IDLERED_GUARDED_BY(m_) = 0;
};

}  // namespace idlered::serve
