// Durable state for crash recovery: per-shard snapshots + a bounded
// replay log (WAL).
//
// Recovery contract: load the newest complete snapshot, replay every WAL
// record with index > snapshot cursor, and the shard is bit-identical to
// the pre-crash shard — including the decisions the replay re-derives,
// because each WAL record stores the shed ceiling that was in force when
// the event was first processed (shedding depends on transient queue
// depth, which a replay cannot reproduce; the recorded ceiling makes the
// decision a pure function of durable data).
//
// Crash safety is layered:
//   * snapshots are written to a temp file and renamed into place, so a
//     kill mid-snapshot leaves the previous complete snapshot intact (a
//     snapshot without its `end` marker is rejected as corrupt);
//   * WAL records are one line each with an FNV-1a checksum; a SIGKILL
//     can tear at most the final buffered batch, and read_wal stops at
//     the first torn or checksum-failing line instead of propagating
//     garbage into vehicle state;
//   * the WAL is truncated only after its snapshot is durably renamed,
//     and records carry a per-shard apply index, so a kill between rename
//     and truncate cannot double-apply events on replay.
//
// Encoding: text lines, with every double stored as the hex of its IEEE
// bit pattern — recovery must reproduce *bit-identical* decisions, and a
// decimal round-trip would be off by an ulp exactly often enough to fail
// that contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "robust/fallback.h"
#include "robust/input_guard.h"
#include "serve/event.h"

namespace idlered::serve {

/// Service-level identity, checked on recovery so a snapshot directory is
/// never replayed under an incompatible configuration.
struct ServeMeta {
  std::size_t num_shards = 0;
  double break_even = 0.0;
  std::uint64_t seed = 0;
  std::size_t warmup_stops = 0;
};

/// One vehicle's durable state: the rolling-stats sufficient statistics,
/// the input-guard state (stuck-run tracker + timestamp watermark), and
/// the dedupe/quarantine cursors.
struct VehicleSnap {
  std::uint64_t vehicle = 0;
  std::uint64_t last_seq = 0;  ///< highest processed seq (0 = none yet)
  std::uint64_t count = 0;     ///< accepted stops (accumulator n)
  std::uint64_t long_count = 0;
  double short_sum = 0.0;
  robust::InputGuard::State guard;
  std::uint64_t strikes = 0;  ///< consecutive invalid events
  bool quarantined = false;
};

struct ShardSnap {
  std::uint64_t cursor = 0;  ///< apply index of the last event included
  std::vector<VehicleSnap> vehicles;
};

/// One replay-log record: the event, its per-shard apply index, and the
/// shed ceiling under which it was decided.
struct WalRecord {
  std::uint64_t index = 0;  ///< 1-based per-shard apply ordinal
  StopEvent event;
  robust::ControllerMode ceiling = robust::ControllerMode::kProposed;
};

std::string meta_path(const std::string& dir);
std::string snapshot_path(const std::string& dir, std::size_t shard);
std::string wal_path(const std::string& dir, std::size_t shard);

/// Write/read the service identity file (tmp + rename). read returns
/// nullopt when absent and throws std::runtime_error on a corrupt or
/// version-mismatched file.
void write_meta(const std::string& dir, const ServeMeta& meta);
std::optional<ServeMeta> read_meta(const std::string& dir);

/// Atomic (tmp + rename) snapshot write; throws std::runtime_error on I/O
/// failure.
void write_shard_snapshot(const std::string& dir, std::size_t shard,
                          const ShardSnap& snap);

/// nullopt when no snapshot exists; throws std::runtime_error when one
/// exists but is corrupt (missing end marker / malformed line).
std::optional<ShardSnap> read_shard_snapshot(const std::string& dir,
                                             std::size_t shard);

/// Append-side of the replay log. Records are buffered by append() and
/// made durable by flush() — the shard flushes once per drain batch,
/// *before* emitting that batch's decisions, so every emitted decision is
/// re-derivable after a crash.
class WalWriter {
 public:
  /// Opens (creating or appending) the shard's WAL. Throws
  /// std::runtime_error on I/O failure.
  void open(const std::string& dir, std::size_t shard, bool truncate);

  void append(const WalRecord& record);

  /// Push buffered records to the OS. After flush returns, a process kill
  /// cannot lose them.
  void flush();

  /// Truncate to empty (called right after a snapshot lands).
  void reset();

  bool is_open() const { return !path_.empty(); }
  std::uint64_t appended() const { return appended_; }

 private:
  std::string path_;
  std::string buffer_;
  std::uint64_t appended_ = 0;
};

/// Replay-side: every intact record, in append order. Tolerates a torn
/// tail (stops at the first malformed or checksum-failing line). Returns
/// empty when the file is absent.
std::vector<WalRecord> read_wal(const std::string& dir, std::size_t shard);

/// Exact double <-> text round-trip via the IEEE bit pattern (16 hex
/// chars). Exposed for the snapshot tests.
std::string encode_bits(double value);
double decode_bits(const std::string& hex);

}  // namespace idlered::serve
