// One shard of the streaming decision service: a bounded ingress queue, a
// load shedder, per-vehicle state, and (optionally) a durable snapshot +
// replay log.
//
// Threading contract: submit() is the only method safe to call from
// producer threads — it touches nothing but the queue's mutex-guarded
// ring. Everything else (drain, checkpoint, recover, the accessors over
// vehicle state) belongs to the single pump pass; the service runs pumps
// on the engine thread pool with one task per shard, so shard internals
// never need their own locks. The contract is compiler-checked on clang:
// pump-side methods require the shard's `pump_role()` capability, which
// callers claim with a util::ScopedAssumeRole — see DESIGN.md §13.
//
// Decision core, per event, in apply order:
//   1. dedupe on per-vehicle seq (stale events are pure no-ops);
//   2. quarantine check (a vehicle past `poison_strikes` consecutive
//      invalid events is fenced off — one poisoned source cannot keep
//      burning validation work);
//   3. InputGuard validation (value + event-time monotonicity);
//   4. accepted stops fold into the O(1) ShortStopAccumulator, and the
//      answer is priced at the *effective rung*: the worse of the shed
//      ceiling recorded for the batch and the vehicle's own warm-up rung,
//      with the COA -> DET trust demotion (eq. 36) applied on top.
//
// Determinism: thresholds that need randomness (N-Rand, COA's N-Rand
// vertex) draw from a throwaway Rng seeded by mix64 over (service seed,
// vehicle, seq) — never from a long-lived stream — so a decision depends
// only on durable data plus the WAL-recorded ceiling, never on thread
// interleaving or replay position. That is the whole crash-recovery
// story: recover() restores the snapshot, re-applies WAL records beyond
// the snapshot cursor, and necessarily re-derives bit-identical decisions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lp/arena.h"
#include "robust/fallback.h"
#include "robust/input_guard.h"
#include "serve/event.h"
#include "serve/queue.h"
#include "serve/shedder.h"
#include "serve/snapshot.h"
#include "stats/rolling.h"
#include "util/thread_annotations.h"

namespace idlered::serve {

struct ShardParams {
  std::size_t index = 0;  ///< shard ordinal (names the durable files)
  double break_even = 60.0;
  /// Accepted stops a vehicle needs before COA is offered; below it the
  /// vehicle is priced at N-Rand (distribution-free guarantee).
  std::size_t warmup_stops = 8;
  std::size_t queue_capacity = 256;
  std::size_t drain_batch = 64;
  /// Consecutive invalid events that quarantine a vehicle; 0 disables.
  std::size_t poison_strikes = 4;
  /// COA's b-DET vertex is only trusted when eq. 36 holds with this
  /// margin; otherwise the decision demotes to DET (2-competitive).
  double b_det_margin = 0.9;
  robust::GuardConfig guard;
  ShedConfig shed;
  std::uint64_t seed = 1;
  /// Auto-checkpoint after this many applied events (durable shards only;
  /// 0 = checkpoint only when the service asks).
  std::size_t snapshot_every = 0;

  /// Throws std::invalid_argument on non-positive break_even, zero
  /// capacities, a margin outside (0, 1], or invalid sub-configs.
  void validate() const;
};

/// Mutable per-vehicle state; exactly what VehicleSnap persists.
struct VehicleState {
  stats::ShortStopAccumulator acc;
  robust::InputGuard guard;
  std::uint64_t last_seq = 0;  ///< highest processed seq (0 = none)
  std::uint64_t strikes = 0;   ///< consecutive invalid events
  bool quarantined = false;

  VehicleState(double break_even, const robust::GuardConfig& guard_config)
      : acc(break_even), guard(guard_config) {}
};

class Shard {
 public:
  explicit Shard(const ShardParams& params);

  /// Attach durable storage under `dir`. fresh=true truncates any
  /// existing WAL (new service); fresh=false appends (post-recovery).
  void attach_durable(const std::string& dir, bool fresh)
      IDLERED_REQUIRES(pump_role_);
  bool durable() const IDLERED_REQUIRES(pump_role_) { return !dir_.empty(); }

  /// Producer side; thread-safe. Refuses (kRejectedQueueFull) when the
  /// bounded queue is at capacity — backpressure, not buffering.
  Admit submit(const StopEvent& event);

  /// One pump pass: sample depth into the shedder, pop a drain batch,
  /// make the batch durable (WAL append + flush), then apply it,
  /// appending decisions to `out`. Returns how many events were applied.
  /// Pump-thread only.
  std::size_t drain(std::vector<Decision>& out) IDLERED_REQUIRES(pump_role_);

  /// Write a snapshot (tmp + rename) and truncate the WAL. Pump-thread
  /// only; no-op for non-durable shards.
  void checkpoint() IDLERED_REQUIRES(pump_role_);

  /// Load the snapshot (if any) and re-apply WAL records past its cursor.
  /// Returns the decisions the replay re-derived — bit-identical to what
  /// the pre-crash shard emitted for those events. Call once, before the
  /// first drain, with durable storage attached.
  std::vector<Decision> recover() IDLERED_REQUIRES(pump_role_);

  /// Highest processed seq for a vehicle (0 = never seen). The crash-
  /// resume handshake: producers restart from last_applied_seq + 1.
  std::uint64_t last_applied_seq(std::uint64_t vehicle) const
      IDLERED_REQUIRES(pump_role_);

  const BoundedEventQueue& queue() const { return queue_; }
  const LoadShedder& shedder() const { return shedder_; }
  const ShardParams& params() const { return params_; }
  std::uint64_t applied() const IDLERED_REQUIRES(pump_role_) {
    return apply_index_;
  }
  std::size_t vehicles_tracked() const IDLERED_REQUIRES(pump_role_) {
    return states_.size();
  }
  std::uint64_t quarantined_vehicles() const IDLERED_REQUIRES(pump_role_);

  /// The single-pump-thread capability. A caller that has established it is
  /// on the (sole) pump thread of this shard; claim it with
  /// util::ScopedAssumeRole before calling the pump-side methods.
  util::ThreadRole& pump_role() const IDLERED_RETURN_CAPABILITY(pump_role_) {
    return pump_role_;
  }

 private:
  VehicleState& vehicle(std::uint64_t id) IDLERED_REQUIRES(pump_role_);
  /// Thin tracing wrapper over apply_event_impl: times the apply and
  /// emits the terminal "decision" dspan (obs builds, tracing on).
  Decision apply_event(const StopEvent& event, robust::ControllerMode ceiling)
      IDLERED_REQUIRES(pump_role_);
  Decision apply_event_impl(const StopEvent& event,
                            robust::ControllerMode ceiling)
      IDLERED_REQUIRES(pump_role_);
  double decide_threshold(const StopEvent& event, VehicleState& state,
                          robust::ControllerMode& rung)
      IDLERED_REQUIRES(pump_role_);

  ShardParams params_;
  BoundedEventQueue queue_;
  LoadShedder shedder_;
  /// Ordered map: snapshot files list vehicles in a deterministic order,
  /// so identical state produces byte-identical snapshots.
  std::map<std::uint64_t, VehicleState> states_ IDLERED_GUARDED_BY(pump_role_);
  /// WAL index of the last applied event.
  std::uint64_t apply_index_ IDLERED_GUARDED_BY(pump_role_) = 0;
  std::uint64_t applied_since_checkpoint_ IDLERED_GUARDED_BY(pump_role_) = 0;
  std::string dir_ IDLERED_GUARDED_BY(pump_role_);
  WalWriter wal_ IDLERED_GUARDED_BY(pump_role_);
  /// Drain scratch, reused across pumps.
  std::vector<StopEvent> batch_ IDLERED_GUARDED_BY(pump_role_);
  /// Arena for the COA vertex LP (eq. 32-33: <= 2 constraints, 3 vars),
  /// reused across every decision this shard prices — the re-solve loop
  /// never touches the heap. Pump-thread only, like all decision state.
  lp::Workspace lp_ws_ IDLERED_GUARDED_BY(pump_role_){2, 3};
  /// Lazily registered per-shard queue-depth gauge (obs builds only).
  std::size_t gauge_id_ IDLERED_GUARDED_BY(pump_role_) = 0;
  bool gauge_registered_ IDLERED_GUARDED_BY(pump_role_) = false;
  /// True while recover() replays the WAL: replayed dspans are flagged so
  /// chain checks can exclude re-derived decisions.
  bool replaying_ IDLERED_GUARDED_BY(pump_role_) = false;
  /// Zero-state capability object naming the pump-thread contract.
  mutable util::ThreadRole pump_role_;
};

}  // namespace idlered::serve
