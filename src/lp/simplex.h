// A small, dependency-free dense linear-programming solver.
//
// The constrained ski-rental problem of the paper reduces (Section 4.4) to a
// three-variable LP over the probability masses (alpha, beta, gamma) placed
// on the TOI / DET / b-DET atoms of the decision distribution, eq. (32)-(33).
// The paper solves it by vertex enumeration; we provide a generic two-phase
// simplex so the reduction can be solved mechanically as well, and the two
// paths are cross-checked in tests.
//
// Problems are stated as
//     minimize    c' x
//     subject to  a_i' x  {<=, =, >=}  b_i      for every constraint i
//                 x >= 0
// which is exactly the form the paper's LP takes. Maximization is available
// through `Problem::maximize`.
//
// DEPRECATED (value-type path): `Problem` + `solve(const Problem&)` allocate
// a vector per constraint and a one-shot workspace per call. The pair
// survives only as a compatibility wrapper over the arena kernel in
// lp/arena.h — results are bit-for-bit identical by construction — and is
// acceptable in cold analysis/tooling code and tests. Hot paths (anything
// under src/core, src/engine, src/serve, src/sim) must use the workspace
// API (`lp::Workspace` + `lp::solve(Workspace&, const ProblemView&)` or
// `lp::solve_batch`); the `deprecated-lp` lint rule enforces this with an
// explicit exception list (tools/idlered_lint.py).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace idlered::lp {

enum class Sense { kLessEqual, kEqual, kGreaterEqual };

struct Constraint {
  std::vector<double> coeffs;  ///< a_i; must match Problem::num_vars
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;  ///< b_i
};

struct Problem {
  std::vector<double> objective;  ///< c
  std::vector<Constraint> constraints;
  bool maximize = false;  ///< if true, maximize c'x instead

  std::size_t num_vars() const { return objective.size(); }

  /// Append a constraint; throws std::invalid_argument on width mismatch.
  void add_constraint(std::vector<double> coeffs, Sense sense, double rhs);
};

enum class Status { kOptimal, kInfeasible, kUnbounded };

struct Solution {
  Status status = Status::kInfeasible;
  std::vector<double> x;        ///< primal solution (valid when optimal)
  double objective_value = 0.0; ///< c'x in the problem's own sense

  /// Dual value (shadow price) per constraint, in the problem's own sense:
  /// d(objective) / d(rhs_i). For the constrained ski-rental adversary LP
  /// these are the paper's Lagrange multipliers (Section 4.1).
  std::vector<double> duals;

  bool optimal() const { return status == Status::kOptimal; }
};

/// Solve with a dense two-phase simplex (Dantzig pricing, Bland anti-cycling
/// fallback). Suitable for the small instances that arise here (tens of
/// variables).
///
/// Deprecated for hot paths: this is a compatibility wrapper that builds a
/// one-shot `lp::Workspace` and materializes the solution — one heap
/// round-trip per call. Use the allocation-free workspace API in lp/arena.h
/// anywhere solve throughput matters (enforced by the `deprecated-lp` lint
/// rule outside the exception list).
Solution solve(const Problem& problem);

/// Human-readable status name (for logs and test diagnostics).
std::string to_string(Status status);

}  // namespace idlered::lp
