#include "lp/arena.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace idlered::lp {

namespace {

constexpr double kEps = 1e-9;

// Standard-form bookkeeping over an unmanaged tableau. Identical in
// structure to the pre-arena solver; the only change is that rows live in
// caller-owned strided storage instead of a per-solve std::vector.
struct StandardForm {
  TableauView t;
  std::size_t num_structural = 0;
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  std::size_t rhs_col = 0;
  std::size_t obj_row = 0;
};

// Runs the simplex method on the tableau's objective row. Pricing uses
// Dantzig's rule (most negative reduced cost) for speed, switching to
// Bland's rule after a pivot budget to guarantee termination on degenerate
// problems. Returns false if the problem is unbounded in the current phase.
bool run_simplex(StandardForm& sf, std::size_t usable_cols) {
  TableauView& t = sf.t;
  const std::size_t* basis = t.basis();
  const std::size_t obj = sf.obj_row;
  // Generous anti-cycling budget: cycling in practice needs far fewer
  // pivots than this before Bland takes over and finishes finitely.
  const std::size_t bland_after = 50 * (t.rows() + t.cols());
  std::size_t pivots = 0;
  for (;;) {
    std::size_t pivot_col = usable_cols;
    if (pivots < bland_after) {
      // Dantzig: most negative reduced cost.
      double best = -kEps;
      for (std::size_t c = 0; c < usable_cols; ++c) {
        if (t.at(obj, c) < best) {
          best = t.at(obj, c);
          pivot_col = c;
        }
      }
    } else {
      // Bland: lowest-index negative column (no cycling).
      for (std::size_t c = 0; c < usable_cols; ++c) {
        if (t.at(obj, c) < -kEps) {
          pivot_col = c;
          break;
        }
      }
    }
    if (pivot_col == usable_cols) return true;  // optimal
    ++pivots;

    // Ratio test; ties broken by lowest basis index (Bland).
    std::size_t pivot_row = t.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < obj; ++r) {
      const double a = t.at(r, pivot_col);
      if (a > kEps) {
        const double ratio = t.at(r, sf.rhs_col) / a;
        if (ratio < best_ratio - kEps ||
            (std::abs(ratio - best_ratio) <= kEps && pivot_row < t.rows() &&
             basis[r] < basis[pivot_row])) {
          best_ratio = ratio;
          pivot_row = r;
        }
      }
    }
    if (pivot_row == t.rows()) return false;  // unbounded

    t.pivot(pivot_row, pivot_col);
    t.basis()[pivot_row] = pivot_col;
  }
}

}  // namespace

void TableauView::clear() {
  for (std::size_t r = 0; r < rows_; ++r) {
    double* row = data_ + r * stride_;
    std::fill(row, row + cols_, 0.0);
  }
}

void TableauView::pivot(std::size_t pr, std::size_t pc) {
  const double pivot_value = at(pr, pc);
  for (std::size_t c = 0; c < cols_; ++c) at(pr, c) /= pivot_value;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == pr) continue;
    const double factor = at(r, pc);
    // lint: allow(float-compare): exact-zero skip is a pure optimization;
    // eliminating with factor 0 is a no-op either way.
    if (factor == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) {
      at(r, c) -= factor * at(pr, c);
    }
  }
}

Solution SolutionView::materialize() const {
  Solution out;
  out.status = status;
  out.objective_value = objective_value;
  out.x.assign(x.begin(), x.end());
  out.duals.assign(duals.begin(), duals.end());
  return out;
}

Workspace::Workspace(std::size_t max_constraints, std::size_t max_vars)
    : max_m_(max_constraints),
      max_n_(max_vars),
      col_cap_(max_vars + 2 * max_constraints + 1) {
  const std::size_t tableau = (max_m_ + 1) * col_cap_;
  row_sign_off_ = tableau;
  x_off_ = row_sign_off_ + max_m_;
  duals_off_ = x_off_ + max_n_;
  stage_obj_off_ = duals_off_ + max_m_;
  stage_coeffs_off_ = stage_obj_off_ + max_n_;
  stage_rhs_off_ = stage_coeffs_off_ + max_m_ * max_n_;
  doubles_.assign(stage_rhs_off_ + max_m_, 0.0);
  indices_.assign(2 * max_m_, 0);  // [basis | marker columns]
  senses_.assign(max_m_, Sense::kLessEqual);
}

TableauView Workspace::tableau(std::size_t rows, std::size_t cols) {
  IDLERED_EXPECTS(rows <= max_m_ + 1 && cols <= col_cap_,
                  "Workspace::tableau: shape exceeds the workspace capacity");
  return TableauView(doubles_.data(), indices_.data(), rows, cols, col_cap_);
}

ProblemStage Workspace::stage(std::size_t m, std::size_t n, bool maximize) {
  IDLERED_EXPECTS(m <= max_m_ && n <= max_n_,
                  "Workspace::stage: problem shape exceeds the workspace "
                  "capacity it was constructed with");
  ProblemStage st;
  st.objective = std::span<double>(doubles_.data() + stage_obj_off_, n);
  st.coeffs = std::span<double>(doubles_.data() + stage_coeffs_off_, m * n);
  st.senses = std::span<Sense>(senses_.data(), m);
  st.rhs = std::span<double>(doubles_.data() + stage_rhs_off_, m);
  st.maximize = maximize;
  // Staging is reused across solves: hand the builder a zeroed problem so
  // sparse call sites only write their nonzeros.
  std::fill(st.objective.begin(), st.objective.end(), 0.0);
  std::fill(st.coeffs.begin(), st.coeffs.end(), 0.0);
  std::fill(st.senses.begin(), st.senses.end(), Sense::kLessEqual);
  std::fill(st.rhs.begin(), st.rhs.end(), 0.0);
  return st;
}

SolutionView Workspace::solution() const {
  SolutionView view;
  view.status = status_;
  view.objective_value = objective_value_;
  if (status_ == Status::kOptimal) {
    view.x = std::span<const double>(doubles_.data() + x_off_, last_n_);
    view.duals = std::span<const double>(doubles_.data() + duals_off_, last_m_);
  }
  return view;
}

SolutionView solve(Workspace& ws, const ProblemView& problem) {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.num_constraints();
  IDLERED_EXPECTS(m <= ws.max_m_ && n <= ws.max_n_,
                  "lp::solve: problem shape exceeds the workspace capacity");
  IDLERED_EXPECTS(problem.coeffs.size() == m * n,
                  "lp::solve: constraint matrix must be m x n row-major "
                  "(width must match the objective size)");
  IDLERED_EXPECTS(problem.senses.size() == m,
                  "lp::solve: one sense per constraint required");
  IDLERED_EXPECTS(problem.x_out.empty() || problem.x_out.size() == n,
                  "lp::solve: x_out must be empty or size num_vars");
  IDLERED_EXPECTS(problem.duals_out.empty() || problem.duals_out.size() == m,
                  "lp::solve: duals_out must be empty or size num_constraints");

  // Count slack/surplus and artificial columns.
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (std::size_t r = 0; r < m; ++r) {
    // Normalize to nonnegative RHS first; flipping may change the sense.
    Sense sense = problem.senses[r];
    if (problem.rhs[r] < 0.0) {
      if (sense == Sense::kLessEqual) sense = Sense::kGreaterEqual;
      else if (sense == Sense::kGreaterEqual) sense = Sense::kLessEqual;
    }
    if (sense != Sense::kEqual) ++num_slack;
    if (sense != Sense::kLessEqual) ++num_artificial;
  }

  StandardForm sf;
  sf.num_structural = n;
  sf.num_slack = num_slack;
  sf.num_artificial = num_artificial;
  sf.rhs_col = n + num_slack + num_artificial;
  sf.obj_row = m;
  sf.t = ws.tableau(m + 1, sf.rhs_col + 1);
  TableauView& t = sf.t;
  t.clear();
  std::size_t* basis = t.basis();
  std::fill(basis, basis + m, std::size_t{0});

  // Per-constraint bookkeeping for dual recovery: a "marker" column whose
  // original tableau column is +e_r with zero cost (the slack for <=, the
  // artificial for >= and =), and the sign flip applied to the row.
  std::size_t* marker_col = ws.indices_.data() + ws.max_m_;
  double* row_sign = ws.doubles_.data() + ws.row_sign_off_;

  std::size_t slack_cursor = n;
  std::size_t art_cursor = n + num_slack;
  for (std::size_t r = 0; r < m; ++r) {
    double rhs = problem.rhs[r];
    double sign = 1.0;
    Sense sense = problem.senses[r];
    if (rhs < 0.0) {
      sign = -1.0;
      rhs = -rhs;
      if (sense == Sense::kLessEqual) sense = Sense::kGreaterEqual;
      else if (sense == Sense::kGreaterEqual) sense = Sense::kLessEqual;
    }
    row_sign[r] = sign;
    const double* coeffs = problem.coeffs.data() + r * n;
    for (std::size_t j = 0; j < n; ++j) t.at(r, j) = sign * coeffs[j];
    t.at(r, sf.rhs_col) = rhs;

    if (sense == Sense::kLessEqual) {
      t.at(r, slack_cursor) = 1.0;
      marker_col[r] = slack_cursor;
      basis[r] = slack_cursor++;
    } else if (sense == Sense::kGreaterEqual) {
      t.at(r, slack_cursor) = -1.0;  // surplus
      ++slack_cursor;
      t.at(r, art_cursor) = 1.0;
      marker_col[r] = art_cursor;
      basis[r] = art_cursor++;
    } else {  // equality
      t.at(r, art_cursor) = 1.0;
      marker_col[r] = art_cursor;
      basis[r] = art_cursor++;
    }
  }

  ws.last_m_ = m;
  ws.last_n_ = n;
  ws.objective_value_ = 0.0;

  // Phase 1: minimize the sum of artificial variables.
  if (num_artificial > 0) {
    for (std::size_t c = n + num_slack; c < sf.rhs_col; ++c)
      t.at(sf.obj_row, c) = 1.0;
    // Make the objective row consistent with the basis (artificials basic).
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] >= n + num_slack) {
        for (std::size_t c = 0; c <= sf.rhs_col; ++c)
          t.at(sf.obj_row, c) -= t.at(r, c);
      }
    }
    if (!run_simplex(sf, sf.rhs_col)) {
      ws.status_ = Status::kUnbounded;  // cannot happen in phase 1
      return ws.solution();
    }
    const double phase1 = -t.at(sf.obj_row, sf.rhs_col);
    if (std::abs(phase1) > 1e-7) {
      ws.status_ = Status::kInfeasible;
      return ws.solution();
    }
    // Drive any artificial variables out of the basis (degenerate rows).
    for (std::size_t r = 0; r < m; ++r) {
      if (basis[r] >= n + num_slack) {
        std::size_t replacement = sf.rhs_col;
        for (std::size_t c = 0; c < n + num_slack; ++c) {
          if (std::abs(t.at(r, c)) > kEps) {
            replacement = c;
            break;
          }
        }
        if (replacement != sf.rhs_col) {
          t.pivot(r, replacement);
          basis[r] = replacement;
        }
        // If no replacement exists the row is all-zero (redundant); the
        // artificial stays basic at value zero, which is harmless.
      }
    }
  }

  // Phase 2: restore the real objective (in minimization sense).
  for (std::size_t c = 0; c <= sf.rhs_col; ++c) t.at(sf.obj_row, c) = 0.0;
  const double obj_sign = problem.maximize ? -1.0 : 1.0;
  for (std::size_t j = 0; j < n; ++j)
    t.at(sf.obj_row, j) = obj_sign * problem.objective[j];
  // Forbid artificial columns from re-entering.
  for (std::size_t c = n + num_slack; c < sf.rhs_col; ++c)
    t.at(sf.obj_row, c) = 0.0;
  // Re-express the objective row in terms of the current basis.
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = basis[r];
    const double coeff = t.at(sf.obj_row, b);
    if (std::abs(coeff) > 0.0) {
      for (std::size_t c = 0; c <= sf.rhs_col; ++c)
        t.at(sf.obj_row, c) -= coeff * t.at(r, c);
    }
  }

  // Phase 2 may only pivot on structural + slack columns.
  if (!run_simplex(sf, n + num_slack)) {
    ws.status_ = Status::kUnbounded;
    return ws.solution();
  }

  ws.status_ = Status::kOptimal;
  double* x = ws.doubles_.data() + ws.x_off_;
  std::fill(x, x + n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) x[basis[r]] = t.at(r, sf.rhs_col);
  }
  double value = 0.0;
  for (std::size_t j = 0; j < n; ++j) value += problem.objective[j] * x[j];
  ws.objective_value_ = value;

  // Dual recovery: each marker column started as +e_r with zero cost, so
  // its reduced cost at the optimum is -y_r (internal minimization sense).
  // Undo the row sign flip and the maximization negation to express the
  // shadow price in the user's own sense, d(objective)/d(rhs_r).
  double* duals = ws.doubles_.data() + ws.duals_off_;
  for (std::size_t r = 0; r < m; ++r) {
    const double y_internal = -t.at(sf.obj_row, marker_col[r]);
    duals[r] = row_sign[r] * y_internal * obj_sign;
  }

  if (!problem.x_out.empty())
    std::copy(x, x + n, problem.x_out.data());
  if (!problem.duals_out.empty())
    std::copy(duals, duals + m, problem.duals_out.data());
  return ws.solution();
}

WorkspacePool::WorkspacePool(std::size_t max_constraints, std::size_t max_vars,
                             std::size_t workspaces)
    : max_m_(max_constraints), max_n_(max_vars) {
  IDLERED_EXPECTS(workspaces >= 1,
                  "WorkspacePool: at least one workspace required");
  pool_.reserve(workspaces);
  for (std::size_t i = 0; i < workspaces; ++i)
    pool_.emplace_back(max_constraints, max_vars);
}

Workspace& WorkspacePool::at(std::size_t slot) {
  IDLERED_EXPECTS(slot < pool_.size(),
                  "WorkspacePool::at: slot index out of range");
  return pool_[slot];
}

std::size_t solve_batch(WorkspacePool& pool,
                        std::span<const ProblemView> problems,
                        std::span<BatchResult> results, std::size_t slot) {
  IDLERED_EXPECTS(results.size() == problems.size(),
                  "lp::solve_batch: one result slot per problem required");
  Workspace& ws = pool.at(slot);
  std::size_t optimal = 0;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const SolutionView sol = solve(ws, problems[i]);
    results[i].status = sol.status;
    results[i].objective_value = sol.objective_value;
    if (sol.optimal()) ++optimal;
  }
  return optimal;
}

}  // namespace idlered::lp
