#include "lp/simplex.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace idlered::lp {

namespace {

constexpr double kEps = 1e-9;

// Dense simplex tableau. Rows: one per constraint plus the objective row.
// Columns: structural vars, slack/surplus vars, artificial vars, RHS.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double pivot_value = at(pr, pc);
    for (std::size_t c = 0; c < cols_; ++c) at(pr, c) /= pivot_value;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = at(r, pc);
      // lint: allow(float-compare): exact-zero skip is a pure optimization;
      // eliminating with factor 0 is a no-op either way.
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) {
        at(r, c) -= factor * at(pr, c);
      }
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

struct StandardForm {
  Tableau tableau;
  std::vector<std::size_t> basis;    // basic variable per constraint row
  std::size_t num_structural = 0;
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  std::size_t rhs_col = 0;
  std::size_t obj_row = 0;
};

// Runs the simplex method on the tableau's objective row. Pricing uses
// Dantzig's rule (most negative reduced cost) for speed, switching to
// Bland's rule after a pivot budget to guarantee termination on degenerate
// problems. Returns false if the problem is unbounded in the current phase.
bool run_simplex(StandardForm& sf, std::size_t usable_cols) {
  Tableau& t = sf.tableau;
  const std::size_t obj = sf.obj_row;
  // Generous anti-cycling budget: cycling in practice needs far fewer
  // pivots than this before Bland takes over and finishes finitely.
  const std::size_t bland_after = 50 * (t.rows() + t.cols());
  std::size_t pivots = 0;
  for (;;) {
    std::size_t pivot_col = usable_cols;
    if (pivots < bland_after) {
      // Dantzig: most negative reduced cost.
      double best = -kEps;
      for (std::size_t c = 0; c < usable_cols; ++c) {
        if (t.at(obj, c) < best) {
          best = t.at(obj, c);
          pivot_col = c;
        }
      }
    } else {
      // Bland: lowest-index negative column (no cycling).
      for (std::size_t c = 0; c < usable_cols; ++c) {
        if (t.at(obj, c) < -kEps) {
          pivot_col = c;
          break;
        }
      }
    }
    if (pivot_col == usable_cols) return true;  // optimal
    ++pivots;

    // Ratio test; ties broken by lowest basis index (Bland).
    std::size_t pivot_row = t.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < obj; ++r) {
      const double a = t.at(r, pivot_col);
      if (a > kEps) {
        const double ratio = t.at(r, sf.rhs_col) / a;
        if (ratio < best_ratio - kEps ||
            (std::abs(ratio - best_ratio) <= kEps && pivot_row < t.rows() &&
             sf.basis[r] < sf.basis[pivot_row])) {
          best_ratio = ratio;
          pivot_row = r;
        }
      }
    }
    if (pivot_row == t.rows()) return false;  // unbounded

    t.pivot(pivot_row, pivot_col);
    sf.basis[pivot_row] = pivot_col;
  }
}

}  // namespace

void Problem::add_constraint(std::vector<double> coeffs, Sense sense,
                             double rhs) {
  if (coeffs.size() != num_vars())
    throw std::invalid_argument("Constraint width must match objective size");
  constraints.push_back(Constraint{std::move(coeffs), sense, rhs});
}

Solution solve(const Problem& problem) {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.constraints.size();
  for (const Constraint& c : problem.constraints) {
    if (c.coeffs.size() != n)
      throw std::invalid_argument("Constraint width must match objective");
  }

  // Count slack/surplus and artificial columns.
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (const Constraint& c : problem.constraints) {
    // Normalize to nonnegative RHS first; flipping may change the sense.
    Sense sense = c.sense;
    if (c.rhs < 0.0) {
      if (sense == Sense::kLessEqual) sense = Sense::kGreaterEqual;
      else if (sense == Sense::kGreaterEqual) sense = Sense::kLessEqual;
    }
    if (sense != Sense::kEqual) ++num_slack;
    if (sense != Sense::kLessEqual) ++num_artificial;
  }

  StandardForm sf{
      Tableau(m + 1, n + num_slack + num_artificial + 1),
      std::vector<std::size_t>(m, 0),
      n,
      num_slack,
      num_artificial,
      n + num_slack + num_artificial,  // rhs_col
      m,                               // obj_row
  };
  Tableau& t = sf.tableau;

  // Per-constraint bookkeeping for dual recovery: a "marker" column whose
  // original tableau column is +e_r with zero cost (the slack for <=, the
  // artificial for >= and =), and the sign flip applied to the row.
  std::vector<std::size_t> marker_col(m, 0);
  std::vector<double> row_sign(m, 1.0);

  std::size_t slack_cursor = n;
  std::size_t art_cursor = n + num_slack;
  for (std::size_t r = 0; r < m; ++r) {
    const Constraint& c = problem.constraints[r];
    double rhs = c.rhs;
    double sign = 1.0;
    Sense sense = c.sense;
    if (rhs < 0.0) {
      sign = -1.0;
      rhs = -rhs;
      if (sense == Sense::kLessEqual) sense = Sense::kGreaterEqual;
      else if (sense == Sense::kGreaterEqual) sense = Sense::kLessEqual;
    }
    row_sign[r] = sign;
    for (std::size_t j = 0; j < n; ++j) t.at(r, j) = sign * c.coeffs[j];
    t.at(r, sf.rhs_col) = rhs;

    if (sense == Sense::kLessEqual) {
      t.at(r, slack_cursor) = 1.0;
      marker_col[r] = slack_cursor;
      sf.basis[r] = slack_cursor++;
    } else if (sense == Sense::kGreaterEqual) {
      t.at(r, slack_cursor) = -1.0;  // surplus
      ++slack_cursor;
      t.at(r, art_cursor) = 1.0;
      marker_col[r] = art_cursor;
      sf.basis[r] = art_cursor++;
    } else {  // equality
      t.at(r, art_cursor) = 1.0;
      marker_col[r] = art_cursor;
      sf.basis[r] = art_cursor++;
    }
  }

  Solution solution;

  // Phase 1: minimize the sum of artificial variables.
  if (num_artificial > 0) {
    for (std::size_t c = n + num_slack; c < sf.rhs_col; ++c)
      t.at(sf.obj_row, c) = 1.0;
    // Make the objective row consistent with the basis (artificials basic).
    for (std::size_t r = 0; r < m; ++r) {
      if (sf.basis[r] >= n + num_slack) {
        for (std::size_t c = 0; c <= sf.rhs_col; ++c)
          t.at(sf.obj_row, c) -= t.at(r, c);
      }
    }
    if (!run_simplex(sf, sf.rhs_col)) {
      solution.status = Status::kUnbounded;  // cannot happen in phase 1
      return solution;
    }
    const double phase1 = -t.at(sf.obj_row, sf.rhs_col);
    if (std::abs(phase1) > 1e-7) {
      solution.status = Status::kInfeasible;
      return solution;
    }
    // Drive any artificial variables out of the basis (degenerate rows).
    for (std::size_t r = 0; r < m; ++r) {
      if (sf.basis[r] >= n + num_slack) {
        std::size_t replacement = sf.rhs_col;
        for (std::size_t c = 0; c < n + num_slack; ++c) {
          if (std::abs(t.at(r, c)) > kEps) {
            replacement = c;
            break;
          }
        }
        if (replacement != sf.rhs_col) {
          t.pivot(r, replacement);
          sf.basis[r] = replacement;
        }
        // If no replacement exists the row is all-zero (redundant); the
        // artificial stays basic at value zero, which is harmless.
      }
    }
  }

  // Phase 2: restore the real objective (in minimization sense).
  for (std::size_t c = 0; c <= sf.rhs_col; ++c) t.at(sf.obj_row, c) = 0.0;
  const double obj_sign = problem.maximize ? -1.0 : 1.0;
  for (std::size_t j = 0; j < n; ++j)
    t.at(sf.obj_row, j) = obj_sign * problem.objective[j];
  // Forbid artificial columns from re-entering.
  for (std::size_t c = n + num_slack; c < sf.rhs_col; ++c)
    t.at(sf.obj_row, c) = 0.0;
  // Re-express the objective row in terms of the current basis.
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = sf.basis[r];
    const double coeff = t.at(sf.obj_row, b);
    if (std::abs(coeff) > 0.0) {
      for (std::size_t c = 0; c <= sf.rhs_col; ++c)
        t.at(sf.obj_row, c) -= coeff * t.at(r, c);
    }
  }

  // Phase 2 may only pivot on structural + slack columns.
  if (!run_simplex(sf, n + num_slack)) {
    solution.status = Status::kUnbounded;
    return solution;
  }

  solution.status = Status::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (sf.basis[r] < n) solution.x[sf.basis[r]] = t.at(r, sf.rhs_col);
  }
  double value = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    value += problem.objective[j] * solution.x[j];
  solution.objective_value = value;

  // Dual recovery: each marker column started as +e_r with zero cost, so
  // its reduced cost at the optimum is -y_r (internal minimization sense).
  // Undo the row sign flip and the maximization negation to express the
  // shadow price in the user's own sense, d(objective)/d(rhs_r).
  solution.duals.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double y_internal = -t.at(sf.obj_row, marker_col[r]);
    solution.duals[r] = row_sign[r] * y_internal * obj_sign;
  }
  return solution;
}

std::string to_string(Status status) {
  switch (status) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
  }
  return "unknown";
}

}  // namespace idlered::lp
