#include "lp/simplex.h"

#include <algorithm>
#include <stdexcept>

#include "lp/arena.h"
#include "util/contracts.h"

namespace idlered::lp {

void Problem::add_constraint(std::vector<double> coeffs, Sense sense,
                             double rhs) {
  if (coeffs.size() != num_vars())
    throw std::invalid_argument("Constraint width must match objective size");
  constraints.push_back(Constraint{std::move(coeffs), sense, rhs});
}

Solution solve(const Problem& problem) {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.constraints.size();
  // add_constraint validates widths, but `constraints` is a plain public
  // vector that callers can hand-assemble; re-validate here so a mismatched
  // row is a contract violation instead of out-of-bounds tableau reads.
  for (const Constraint& c : problem.constraints) {
    IDLERED_EXPECTS(c.coeffs.size() == n,
                    "lp::solve: constraint width must match objective size");
  }

  // One-shot workspace: the arena kernel is the single solve path, so the
  // legacy API stays bit-for-bit identical to the workspace API by
  // construction. Hot paths should hold a Workspace instead (lp/arena.h).
  Workspace ws(m, n);
  ProblemStage st = ws.stage(m, n, problem.maximize);
  std::copy(problem.objective.begin(), problem.objective.end(),
            st.objective.begin());
  for (std::size_t r = 0; r < m; ++r) {
    const Constraint& c = problem.constraints[r];
    std::copy(c.coeffs.begin(), c.coeffs.end(), st.coeffs.begin() + r * n);
    st.senses[r] = c.sense;
    st.rhs[r] = c.rhs;
  }
  return solve(ws, st.view()).materialize();
}

std::string to_string(Status status) {
  switch (status) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
  }
  return "unknown";
}

}  // namespace idlered::lp
