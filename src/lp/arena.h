// Arena-backed, zero-allocation LP solving (the workspace API).
//
// The value-type API of lp/simplex.h (`Problem` + `solve`) allocates a
// fresh tableau, basis, and solution vectors on every call. That is fine
// for the cold analysis paths, but the COA strategy re-solves the eq.
// (32)-(33) vertex LP once per (vehicle, B) cell — and, in the streaming
// service, once per accepted stop event — so at fleet scale the solver is
// a hot path that must never touch the heap.
//
// Following the unmanaged/managed tableau idiom (caller-owned flat
// storage, a capacity/dims split so one buffer serves many problem
// shapes, and a managed wrapper demotable to the unmanaged view):
//
//   TableauView   unmanaged: raw pointer + dims + column stride + basis
//                 pointer. The whole pivot loop runs on this type and
//                 performs zero allocations.
//   Workspace     managed: owns ONE flat buffer sized by
//                 (max_constraints, max_vars), reusable across solves,
//                 demotable to a TableauView of any smaller shape. Also
//                 carries a staging area for building a problem in place
//                 and the solution storage a SolutionView points into.
//   ProblemView   unmanaged problem statement: spans over caller-owned
//                 flat storage (row-major constraint matrix), plus
//                 optional output spans filled by the batched path.
//   SolutionView  caller-owned result view over workspace storage, with
//                 an explicit materialize() to the legacy value type.
//   WorkspacePool indexed workspaces for batched / multi-threaded solves.
//
// Determinism: the solve kernel is the SAME code for the legacy value
// API, the workspace API, and solve_batch — identical Dantzig-then-Bland
// pivoting, identical arithmetic order — so all three paths produce
// bit-for-bit identical primals, duals, statuses, and objective values.
// Tests assert this exhaustively (tests/lp/test_arena.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "lp/simplex.h"

namespace idlered::lp {

/// A problem stated over caller-owned flat storage:
///     minimize    c' x      (maximize when `maximize`)
///     subject to  A_i x  {<=, =, >=}  b_i,    x >= 0
/// `coeffs` is the m x n constraint matrix in row-major order. The
/// optional output spans, when non-empty, receive the primal (size n)
/// and the duals (size m) from solve_batch, so a batch of solutions
/// survives workspace reuse without any per-solve allocation.
struct ProblemView {
  std::span<const double> objective;    ///< c, size n
  std::span<const double> coeffs;       ///< A, row-major, size m * n
  std::span<const Sense> senses;        ///< size m
  std::span<const double> rhs;          ///< b, size m
  bool maximize = false;

  std::span<double> x_out;      ///< optional primal out (size n)
  std::span<double> duals_out;  ///< optional duals out (size m)

  std::size_t num_vars() const { return objective.size(); }
  std::size_t num_constraints() const { return rhs.size(); }
};

/// Unmanaged dense tableau: a raw pointer with a dims/stride split plus
/// the basis bookkeeping. Rows: one per constraint and the objective row
/// last. Columns: structural, slack/surplus, artificial, RHS; `stride`
/// (the column capacity of the underlying buffer) may exceed `cols`, so
/// one flat buffer serves every problem shape up to capacity. All methods
/// are allocation-free.
class TableauView {
 public:
  TableauView() = default;
  TableauView(double* data, std::size_t* basis, std::size_t rows,
              std::size_t cols, std::size_t stride)
      : data_(data), basis_(basis), rows_(rows), cols_(cols),
        stride_(stride) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * stride_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * stride_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }

  /// Basic variable per constraint row (size rows() - 1, caller-owned).
  std::size_t* basis() { return basis_; }
  const std::size_t* basis() const { return basis_; }

  /// Zero the logical region (every row, columns [0, cols)). Reused
  /// buffers carry the previous solve's values; the build step requires
  /// a cleared tableau exactly like a freshly allocated one.
  void clear();

  /// Gauss-Jordan pivot on (pr, pc): normalize the pivot row, eliminate
  /// the pivot column from every other row. Allocation-free.
  void pivot(std::size_t pr, std::size_t pc);

 private:
  double* data_ = nullptr;
  std::size_t* basis_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// Mutable staging spans over a workspace's problem area, for building a
/// ProblemView in place when the caller has no flat storage of its own
/// (the compatibility wrapper, the COA vertex LP). The spans alias the
/// workspace; a subsequent stage() call on the same workspace reuses them.
struct ProblemStage {
  std::span<double> objective;  ///< size n
  std::span<double> coeffs;     ///< size m * n, row-major
  std::span<Sense> senses;      ///< size m
  std::span<double> rhs;        ///< size m
  bool maximize = false;

  ProblemView view() const {
    return ProblemView{objective, coeffs, senses, rhs, maximize, {}, {}};
  }
};

/// Read-only result view over workspace storage. Valid until the owning
/// workspace's next solve (or destruction); callers that need the values
/// to outlive the workspace call materialize().
struct SolutionView {
  Status status = Status::kInfeasible;
  double objective_value = 0.0;
  std::span<const double> x;      ///< primal (valid when optimal)
  std::span<const double> duals;  ///< shadow price per constraint

  bool optimal() const { return status == Status::kOptimal; }

  /// Explicit copy-out to the legacy value type (tests, tools, cold
  /// paths). The only allocating operation in this header.
  Solution materialize() const;
};

/// Managed arena: owns one flat buffer sized by (max_constraints,
/// max_vars) and is reusable across solves. After construction, solving
/// any problem with m <= max_constraints and n <= max_vars performs zero
/// heap allocations — the bench gates on that (bench_lp_arena).
///
/// Capacity math: a constraint contributes at most one slack/surplus and
/// one artificial column, so the tableau needs max_vars + 2*max_constraints
/// + 1 (RHS) columns and max_constraints + 1 (objective) rows.
class Workspace {
 public:
  Workspace(std::size_t max_constraints, std::size_t max_vars);

  std::size_t max_constraints() const { return max_m_; }
  std::size_t max_vars() const { return max_n_; }

  /// Column capacity of the flat tableau buffer (the TableauView stride).
  std::size_t col_capacity() const { return col_cap_; }

  /// Demote to an unmanaged tableau of the given logical shape. Throws
  /// (contract) when the shape exceeds capacity.
  TableauView tableau(std::size_t rows, std::size_t cols);

  /// Staging spans for an m x n problem built in place (zeroed coeffs).
  /// Throws (contract) when (m, n) exceeds capacity.
  ProblemStage stage(std::size_t m, std::size_t n, bool maximize = false);

  /// Result view of the most recent solve on this workspace.
  SolutionView solution() const;

 private:
  friend SolutionView solve(Workspace& workspace, const ProblemView& problem);

  std::size_t max_m_ = 0;
  std::size_t max_n_ = 0;
  std::size_t col_cap_ = 0;

  // One flat double buffer: [tableau | row_sign | x | duals | staged
  // objective | staged coeffs | staged rhs]; one flat index buffer:
  // [basis | marker columns]. Offsets are fixed at construction.
  std::vector<double> doubles_;
  std::vector<std::size_t> indices_;
  std::vector<Sense> senses_;

  std::size_t row_sign_off_ = 0;
  std::size_t x_off_ = 0;
  std::size_t duals_off_ = 0;
  std::size_t stage_obj_off_ = 0;
  std::size_t stage_coeffs_off_ = 0;
  std::size_t stage_rhs_off_ = 0;

  // Shape and status of the last solve (what solution() reports).
  Status status_ = Status::kInfeasible;
  double objective_value_ = 0.0;
  std::size_t last_m_ = 0;
  std::size_t last_n_ = 0;
};

/// Solve `problem` in `workspace` with the dense two-phase simplex
/// (Dantzig pricing with a Bland anti-cycling fallback — the same kernel,
/// bit-for-bit, as the legacy lp::solve). Zero heap allocations. The
/// returned view points into the workspace; it is invalidated by the next
/// solve on the same workspace. Contract violations (shape exceeding
/// capacity, mismatched span sizes) throw.
SolutionView solve(Workspace& workspace, const ProblemView& problem);

/// A set of independently usable workspaces for batched and concurrent
/// solving. Slots are plain indices: concurrent callers (e.g. engine
/// ThreadPool workers sweeping disjoint problem ranges) each use their
/// own slot, which keeps the pool lock-free and the results deterministic.
class WorkspacePool {
 public:
  WorkspacePool(std::size_t max_constraints, std::size_t max_vars,
                std::size_t workspaces = 1);

  std::size_t size() const { return pool_.size(); }
  std::size_t max_constraints() const { return max_m_; }
  std::size_t max_vars() const { return max_n_; }

  Workspace& at(std::size_t slot);

 private:
  std::size_t max_m_;
  std::size_t max_n_;
  std::vector<Workspace> pool_;
};

/// Status + objective of one batched solve; primals/duals land in the
/// ProblemView's output spans (when provided).
struct BatchResult {
  Status status = Status::kInfeasible;
  double objective_value = 0.0;

  bool optimal() const { return status == Status::kOptimal; }
};

/// Solve a batch of problems through one workspace slot, writing one
/// BatchResult per problem (and each problem's primal/duals into its
/// output spans). Zero per-solve heap traffic; results are identical to N
/// scalar solve() calls. Concurrent callers partition `problems` and pass
/// distinct `slot` values. Returns the number of optimal solves.
std::size_t solve_batch(WorkspacePool& pool,
                        std::span<const ProblemView> problems,
                        std::span<BatchResult> results, std::size_t slot = 0);

}  // namespace idlered::lp
