// Umbrella header: include everything the public API offers.
//
// Fine-grained headers remain available (and are preferred inside the
// library itself); this is a convenience for downstream applications.
#pragma once

#include "analysis/adversary.h"        // IWYU pragma: export
#include "analysis/average_case.h"     // IWYU pragma: export
#include "analysis/metrics.h"          // IWYU pragma: export
#include "analysis/minimax.h"          // IWYU pragma: export
#include "core/analytic.h"             // IWYU pragma: export
#include "core/costs.h"                // IWYU pragma: export
#include "core/crand.h"                // IWYU pragma: export
#include "core/decision_distribution.h"  // IWYU pragma: export
#include "core/estimator.h"            // IWYU pragma: export
#include "core/multislope.h"           // IWYU pragma: export
#include "core/policies.h"             // IWYU pragma: export
#include "core/policy.h"               // IWYU pragma: export
#include "core/proposed.h"             // IWYU pragma: export
#include "core/region.h"               // IWYU pragma: export
#include "core/solver_lp.h"            // IWYU pragma: export
#include "costmodel/break_even.h"      // IWYU pragma: export
#include "costmodel/emissions.h"       // IWYU pragma: export
#include "costmodel/fleet_economics.h" // IWYU pragma: export
#include "costmodel/fuel.h"            // IWYU pragma: export
#include "costmodel/wear.h"            // IWYU pragma: export
#include "dist/adaptors.h"             // IWYU pragma: export
#include "dist/distribution.h"         // IWYU pragma: export
#include "dist/empirical.h"            // IWYU pragma: export
#include "dist/mixture.h"              // IWYU pragma: export
#include "dist/parametric.h"           // IWYU pragma: export
#include "lp/arena.h"                  // IWYU pragma: export
#include "lp/simplex.h"                // IWYU pragma: export
#include "robust/fallback.h"           // IWYU pragma: export
#include "robust/fault_model.h"        // IWYU pragma: export
#include "robust/guarded_estimator.h"  // IWYU pragma: export
#include "robust/health_monitor.h"     // IWYU pragma: export
#include "robust/input_guard.h"        // IWYU pragma: export
#include "sim/battery.h"               // IWYU pragma: export
#include "sim/controller.h"            // IWYU pragma: export
#include "sim/evaluator.h"             // IWYU pragma: export
#include "sim/fleet_eval.h"            // IWYU pragma: export
#include "sim/savings.h"               // IWYU pragma: export
#include "sim/trace.h"                 // IWYU pragma: export
#include "stats/bootstrap.h"           // IWYU pragma: export
#include "stats/descriptive.h"         // IWYU pragma: export
#include "stats/ecdf.h"                // IWYU pragma: export
#include "stats/histogram.h"           // IWYU pragma: export
#include "stats/kaplan_meier.h"        // IWYU pragma: export
#include "stats/ks_test.h"             // IWYU pragma: export
#include "traces/area_profiles.h"      // IWYU pragma: export
#include "traces/drive_cycles.h"       // IWYU pragma: export
#include "traces/fleet_generator.h"    // IWYU pragma: export
#include "traffic/arterial.h"          // IWYU pragma: export
#include "traffic/intersection.h"      // IWYU pragma: export
#include "traffic/microsim.h"          // IWYU pragma: export
#include "util/bits.h"                 // IWYU pragma: export
#include "util/cli.h"                  // IWYU pragma: export
#include "util/csv.h"                  // IWYU pragma: export
#include "util/math.h"                 // IWYU pragma: export
#include "util/random.h"               // IWYU pragma: export
#include "util/table.h"                // IWYU pragma: export
#include "util/thread_annotations.h"   // IWYU pragma: export
