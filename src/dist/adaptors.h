// Distribution adaptors.
//
// `Scaled` implements the paper's Figures 5-6 methodology verbatim: "we
// generate simulation driving data by following the distribution of Chicago,
// but scaling its mean value". `Truncated` conditions a law on an interval
// (used by the traffic substrate and by worst-case adversary constructions).
#pragma once

#include <string>

#include "dist/distribution.h"

namespace idlered::dist {

/// Y' = scale * Y for a base distribution Y.
class Scaled final : public StopLengthDistribution {
 public:
  Scaled(DistributionPtr base, double scale);

  /// Convenience: rescale `base` so its mean becomes `target_mean`.
  static Scaled with_mean(DistributionPtr base, double target_mean);

  double pdf(double y) const override;
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;
  double mean() const override;
  std::string name() const override;

  double partial_expectation(double b) const override;
  double tail_probability(double b) const override;
  double quantile(double p) const override;  ///< scale * base quantile

  double scale() const { return scale_; }

 private:
  DistributionPtr base_;
  double scale_;
};

/// Y | Y in [lo, hi] for a base distribution Y. Requires P{Y in [lo,hi]} > 0.
class Truncated final : public StopLengthDistribution {
 public:
  Truncated(DistributionPtr base, double lo, double hi);

  double pdf(double y) const override;
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;  ///< rejection sampling
  double mean() const override;                  ///< via quadrature
  std::string name() const override;

 private:
  DistributionPtr base_;
  double lo_;
  double hi_;
  double mass_;  ///< P{Y in [lo, hi]} under the base law
};

/// Point mass at a single stop length (used by adversary constructions in
/// the worst-case analysis tests: "all short stops have length 0 or b").
class PointMass final : public StopLengthDistribution {
 public:
  explicit PointMass(double value);

  double pdf(double y) const override;  ///< 0 a.e.; +inf at the atom
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;
  double mean() const override { return value_; }
  std::string name() const override;

  double partial_expectation(double b) const override;
  double tail_probability(double b) const override;
  double quantile(double p) const override;  ///< the atom itself

 private:
  double value_;
};

}  // namespace idlered::dist
