// Finite mixtures of stop-length distributions.
//
// The synthetic NREL-like stop-length law (DESIGN.md, substitution table) is
// a lognormal body plus a Pareto tail — exactly what this class composes.
#pragma once

#include <string>
#include <vector>

#include "dist/distribution.h"

namespace idlered::dist {

class Mixture final : public StopLengthDistribution {
 public:
  struct Component {
    double weight = 0.0;
    DistributionPtr distribution;
  };

  /// Weights must be nonnegative and are normalized to sum to one.
  explicit Mixture(std::vector<Component> components);

  double pdf(double y) const override;
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;
  double mean() const override;
  std::string name() const override;

  double partial_expectation(double b) const override;
  double tail_probability(double b) const override;

  const std::vector<Component>& components() const { return components_; }

 private:
  std::vector<Component> components_;
};

}  // namespace idlered::dist
