#include "dist/distribution.h"

#include <cmath>
#include <stdexcept>

#include "util/contracts.h"
#include "util/math.h"

namespace idlered::dist {

double StopLengthDistribution::partial_expectation(double b) const {
  if (b <= 0.0) return 0.0;
  // Guard y = 0: densities may be singular there (e.g. Weibull with
  // shape < 1), making 0 * pdf(0) a NaN even though the integral is finite.
  return util::integrate(
      [this](double y) { return y <= 0.0 ? 0.0 : y * pdf(y); }, 0.0, b,
      1e-10);
}

double StopLengthDistribution::tail_probability(double b) const {
  return 1.0 - cdf(b);
}

double StopLengthDistribution::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0))
    throw std::invalid_argument("quantile: p must be in (0, 1)");
  // Bracket the quantile by doubling, then bisect cdf(y) - p.
  double hi = 1.0;
  for (int i = 0; i < 200 && cdf(hi) < p; ++i) hi *= 2.0;
  if (cdf(hi) < p)
    throw std::runtime_error("quantile: failed to bracket (tail too heavy)");
  return util::bisect([this, p](double y) { return cdf(y) - p; }, 0.0, hi,
                      1e-12 * hi);
}

std::vector<double> StopLengthDistribution::sample_many(util::Rng& rng,
                                                        std::size_t n) const {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(rng));
  return out;
}

bool ShortStopStats::feasible(double break_even) const {
  return mu_b_minus >= 0.0 && q_b_plus >= 0.0 && q_b_plus <= 1.0 &&
         mu_b_minus <= break_even * (1.0 - q_b_plus) + 1e-12;
}

double ShortStopStats::expected_offline_cost(double break_even) const {
  return mu_b_minus + q_b_plus * break_even;
}

ShortStopStats ShortStopStats::from_distribution(
    const StopLengthDistribution& q, double break_even) {
  IDLERED_EXPECTS(break_even > 0.0,
                  "ShortStopStats: break_even must be > 0");
  ShortStopStats s;
  s.mu_b_minus = q.partial_expectation(break_even);
  s.q_b_plus = q.tail_probability(break_even);
  // Boundary contract: any (mu, q) pair leaving this constructor feeds
  // sqrt(mu B / q) and the eq. (36) feasibility test downstream, so a
  // mis-normalized pdf or a broken quadrature must be caught here, not
  // three calls later as a NaN strategy. The tolerance absorbs quadrature
  // round-off on heavy-tailed families.
  IDLERED_ENSURES(s.q_b_plus >= -1e-12 && s.q_b_plus <= 1.0 + 1e-12,
                  "ShortStopStats: q_B_plus must lie in [0, 1] — pdf "
                  "normalization or cdf is broken");
  IDLERED_ENSURES(s.mu_b_minus >= -1e-12 &&
                      s.mu_b_minus <= break_even * (1.0 + 1e-9),
                  "ShortStopStats: mu_B_minus must lie in [0, B] — partial "
                  "expectation exceeds the short-stop support");
  return s;
}

ShortStopStats ShortStopStats::from_sample(const std::vector<double>& sample,
                                           double break_even) {
  IDLERED_EXPECTS(!sample.empty(), "ShortStopStats: empty sample");
  IDLERED_EXPECTS(break_even > 0.0,
                  "ShortStopStats: break_even must be > 0");
  double sum_short = 0.0;
  std::size_t num_long = 0;
  for (double y : sample) {
    IDLERED_EXPECTS(std::isfinite(y) && y >= 0.0,
                    "ShortStopStats: stop lengths must be finite and >= 0");
    if (y >= break_even) {
      ++num_long;
    } else {
      sum_short += y;
    }
  }
  ShortStopStats s;
  const auto n = static_cast<double>(sample.size());
  s.mu_b_minus = sum_short / n;
  s.q_b_plus = static_cast<double>(num_long) / n;
  IDLERED_ENSURES(s.feasible(break_even),
                  "ShortStopStats: empirical (mu, q) must satisfy "
                  "mu <= B(1-q) — accumulation overflowed or went negative");
  return s;
}

}  // namespace idlered::dist
