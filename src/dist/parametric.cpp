#include "dist/parametric.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace idlered::dist {

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

// ---------------------------------------------------------------- Exponential

Exponential::Exponential(double mean) : mean_(mean) {
  if (mean <= 0.0)
    throw std::invalid_argument("Exponential: mean must be > 0");
}

double Exponential::pdf(double y) const {
  return y < 0.0 ? 0.0 : std::exp(-y / mean_) / mean_;
}

double Exponential::cdf(double y) const {
  return y <= 0.0 ? 0.0 : 1.0 - std::exp(-y / mean_);
}

double Exponential::sample(util::Rng& rng) const {
  return rng.exponential(mean_);
}

std::string Exponential::name() const {
  std::ostringstream ss;
  ss << "Exponential(mean=" << mean_ << ")";
  return ss.str();
}

double Exponential::partial_expectation(double b) const {
  if (b <= 0.0) return 0.0;
  // integral_0^b (y/m) e^{-y/m} dy = m - (b + m) e^{-b/m}
  return mean_ - (b + mean_) * std::exp(-b / mean_);
}

double Exponential::tail_probability(double b) const {
  return b <= 0.0 ? 1.0 : std::exp(-b / mean_);
}

double Exponential::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0))
    throw std::invalid_argument("quantile: p must be in (0, 1)");
  return -mean_ * std::log1p(-p);
}

// -------------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  if (lo < 0.0 || hi <= lo)
    throw std::invalid_argument("Uniform: need 0 <= lo < hi");
}

double Uniform::pdf(double y) const {
  return (y >= lo_ && y <= hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double Uniform::cdf(double y) const {
  if (y <= lo_) return 0.0;
  if (y >= hi_) return 1.0;
  return (y - lo_) / (hi_ - lo_);
}

double Uniform::sample(util::Rng& rng) const { return rng.uniform(lo_, hi_); }

std::string Uniform::name() const {
  std::ostringstream ss;
  ss << "Uniform[" << lo_ << ", " << hi_ << "]";
  return ss.str();
}

double Uniform::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0))
    throw std::invalid_argument("quantile: p must be in (0, 1)");
  return lo_ + p * (hi_ - lo_);
}

double Uniform::partial_expectation(double b) const {
  if (b <= lo_) return 0.0;
  const double top = std::min(b, hi_);
  return (top * top - lo_ * lo_) / (2.0 * (hi_ - lo_));
}

// ------------------------------------------------------------------ LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("LogNormal: sigma must be > 0");
}

LogNormal LogNormal::from_mean_median(double mean, double median) {
  if (median <= 0.0 || mean <= median)
    throw std::invalid_argument("LogNormal: need mean > median > 0");
  const double mu = std::log(median);
  const double sigma = std::sqrt(2.0 * std::log(mean / median));
  return LogNormal(mu, sigma);
}

double LogNormal::pdf(double y) const {
  if (y <= 0.0) return 0.0;
  const double z = (std::log(y) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) /
         (y * sigma_ * std::sqrt(2.0 * 3.14159265358979323846));
}

double LogNormal::cdf(double y) const {
  if (y <= 0.0) return 0.0;
  return normal_cdf((std::log(y) - mu_) / sigma_);
}

double LogNormal::sample(util::Rng& rng) const {
  return rng.lognormal(mu_, sigma_);
}

double LogNormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::string LogNormal::name() const {
  std::ostringstream ss;
  ss << "LogNormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return ss.str();
}

double LogNormal::partial_expectation(double b) const {
  if (b <= 0.0) return 0.0;
  // E[Y; Y <= b] = E[Y] * Phi((ln b - mu - sigma^2) / sigma)
  return mean() * normal_cdf((std::log(b) - mu_ - sigma_ * sigma_) / sigma_);
}

// --------------------------------------------------------------------- Pareto

Pareto::Pareto(double scale, double shape) : scale_(scale), shape_(shape) {
  if (scale <= 0.0 || shape <= 0.0)
    throw std::invalid_argument("Pareto: scale and shape must be > 0");
}

double Pareto::pdf(double y) const {
  if (y < scale_) return 0.0;
  return shape_ * std::pow(scale_, shape_) / std::pow(y, shape_ + 1.0);
}

double Pareto::cdf(double y) const {
  if (y <= scale_) return 0.0;
  return 1.0 - std::pow(scale_ / y, shape_);
}

double Pareto::sample(util::Rng& rng) const {
  return rng.pareto(scale_, shape_);
}

double Pareto::mean() const {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return shape_ * scale_ / (shape_ - 1.0);
}

std::string Pareto::name() const {
  std::ostringstream ss;
  ss << "Pareto(x_m=" << scale_ << ", alpha=" << shape_ << ")";
  return ss.str();
}

double Pareto::partial_expectation(double b) const {
  if (b <= scale_) return 0.0;
  // lint: allow(float-compare): alpha == 1 is an exact branch cut — the
  // closed form below divides by (alpha - 1).
  if (shape_ == 1.0) return scale_ * std::log(b / scale_);
  // integral_{x_m}^b y pdf(y) dy
  //   = alpha/(alpha-1) * (x_m - x_m^alpha * b^{1-alpha})
  return shape_ / (shape_ - 1.0) *
         (scale_ - std::pow(scale_, shape_) * std::pow(b, 1.0 - shape_));
}

double Pareto::tail_probability(double b) const {
  if (b <= scale_) return 1.0;
  return std::pow(scale_ / b, shape_);
}

double Pareto::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0))
    throw std::invalid_argument("quantile: p must be in (0, 1)");
  return scale_ * std::pow(1.0 - p, -1.0 / shape_);
}

// -------------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  if (shape <= 0.0 || scale <= 0.0)
    throw std::invalid_argument("Weibull: shape and scale must be > 0");
}

double Weibull::pdf(double y) const {
  if (y < 0.0) return 0.0;
  // lint: allow(float-compare): density at exactly y == 0 (and the k == 1
  // exponential special case) are exact branch cuts of the Weibull pdf.
  if (y == 0.0) return shape_ >= 1.0 ? (shape_ == 1.0 ? 1.0 / scale_ : 0.0)
                                     : std::numeric_limits<double>::infinity();
  const double t = y / scale_;
  return shape_ / scale_ * std::pow(t, shape_ - 1.0) *
         std::exp(-std::pow(t, shape_));
}

double Weibull::cdf(double y) const {
  if (y <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(y / scale_, shape_));
}

double Weibull::sample(util::Rng& rng) const {
  return rng.weibull(shape_, scale_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0))
    throw std::invalid_argument("quantile: p must be in (0, 1)");
  return scale_ * std::pow(-std::log1p(-p), 1.0 / shape_);
}

std::string Weibull::name() const {
  std::ostringstream ss;
  ss << "Weibull(k=" << shape_ << ", lambda=" << scale_ << ")";
  return ss.str();
}

// ---------------------------------------------------------------------- Gamma

namespace {

double lower_gamma_series(double k, double x) {
  // P(k, x) by the power series, x < k + 1.
  double term = 1.0 / k;
  double sum = term;
  for (int n = 1; n < 500; ++n) {
    term *= x / (k + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + k * std::log(x) - std::lgamma(k));
}

double upper_gamma_cf(double k, double x) {
  // Q(k, x) by Lentz's continued fraction, x >= k + 1.
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - k;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - k);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + k * std::log(x) - std::lgamma(k));
}

}  // namespace

double regularized_lower_gamma(double k, double x) {
  if (k <= 0.0)
    throw std::invalid_argument("regularized_lower_gamma: k must be > 0");
  if (x <= 0.0) return 0.0;
  if (x < k + 1.0) return lower_gamma_series(k, x);
  return 1.0 - upper_gamma_cf(k, x);
}

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  if (shape <= 0.0 || scale <= 0.0)
    throw std::invalid_argument("Gamma: shape and scale must be > 0");
}

double Gamma::pdf(double y) const {
  if (y < 0.0) return 0.0;
  // lint: allow(float-compare): exact branch cuts of the Gamma density at
  // the origin (y == 0) and the exponential special case (k == 1).
  if (y == 0.0) {
    if (shape_ > 1.0) return 0.0;
    // lint: allow(float-compare): see branch-cut note above
    if (shape_ == 1.0) return 1.0 / scale_;
    return std::numeric_limits<double>::infinity();
  }
  return std::exp((shape_ - 1.0) * std::log(y / scale_) - y / scale_ -
                  std::lgamma(shape_)) /
         scale_;
}

double Gamma::cdf(double y) const {
  if (y <= 0.0) return 0.0;
  return regularized_lower_gamma(shape_, y / scale_);
}

double Gamma::sample(util::Rng& rng) const {
  return std::gamma_distribution<double>(shape_, scale_)(rng.engine());
}

std::string Gamma::name() const {
  std::ostringstream ss;
  ss << "Gamma(k=" << shape_ << ", theta=" << scale_ << ")";
  return ss.str();
}

double Gamma::partial_expectation(double b) const {
  if (b <= 0.0) return 0.0;
  return shape_ * scale_ *
         regularized_lower_gamma(shape_ + 1.0, b / scale_);
}

}  // namespace idlered::dist
