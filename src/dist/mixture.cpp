#include "dist/mixture.h"

#include <sstream>
#include <stdexcept>

namespace idlered::dist {

Mixture::Mixture(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty())
    throw std::invalid_argument("Mixture: need at least one component");
  double total = 0.0;
  for (const Component& c : components_) {
    if (!c.distribution)
      throw std::invalid_argument("Mixture: null component distribution");
    if (c.weight < 0.0)
      throw std::invalid_argument("Mixture: negative component weight");
    total += c.weight;
  }
  if (total <= 0.0)
    throw std::invalid_argument("Mixture: weights must not all be zero");
  for (Component& c : components_) c.weight /= total;
}

double Mixture::pdf(double y) const {
  double acc = 0.0;
  for (const Component& c : components_) acc += c.weight * c.distribution->pdf(y);
  return acc;
}

double Mixture::cdf(double y) const {
  double acc = 0.0;
  for (const Component& c : components_) acc += c.weight * c.distribution->cdf(y);
  return acc;
}

double Mixture::sample(util::Rng& rng) const {
  double u = rng.uniform();
  for (const Component& c : components_) {
    if (u < c.weight) return c.distribution->sample(rng);
    u -= c.weight;
  }
  return components_.back().distribution->sample(rng);
}

double Mixture::mean() const {
  double acc = 0.0;
  for (const Component& c : components_) acc += c.weight * c.distribution->mean();
  return acc;
}

std::string Mixture::name() const {
  std::ostringstream ss;
  ss << "Mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i) ss << " + ";
    ss << components_[i].weight << "*" << components_[i].distribution->name();
  }
  ss << ")";
  return ss.str();
}

double Mixture::partial_expectation(double b) const {
  double acc = 0.0;
  for (const Component& c : components_)
    acc += c.weight * c.distribution->partial_expectation(b);
  return acc;
}

double Mixture::tail_probability(double b) const {
  double acc = 0.0;
  for (const Component& c : components_)
    acc += c.weight * c.distribution->tail_probability(b);
  return acc;
}

}  // namespace idlered::dist
