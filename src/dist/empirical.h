// Empirical stop-length distribution built from an observed (or generated)
// stop sample — the model a deployed stop-start controller would actually
// learn from a vehicle's history, and the bridge between recorded traces and
// the analytic machinery.
#pragma once

#include <string>
#include <vector>

#include "dist/distribution.h"
#include "stats/ecdf.h"

namespace idlered::dist {

class Empirical final : public StopLengthDistribution {
 public:
  /// Builds from a sample of stop lengths (must be non-empty, nonnegative).
  explicit Empirical(std::vector<double> sample);

  /// pdf() is a histogram density estimate (the underlying law is discrete);
  /// bins default to Sturges' rule over [0, max].
  double pdf(double y) const override;
  double cdf(double y) const override;

  /// Samples by bootstrap resampling from the stored sample.
  double sample(util::Rng& rng) const override;

  double mean() const override { return mean_; }
  std::string name() const override;

  /// Exact sample versions (no quadrature).
  double partial_expectation(double b) const override;
  double tail_probability(double b) const override;
  double quantile(double p) const override;  ///< ECDF generalized inverse

  std::size_t size() const { return ecdf_.size(); }
  const std::vector<double>& sorted_sample() const {
    return ecdf_.sorted_sample();
  }

 private:
  stats::Ecdf ecdf_;
  double mean_;
  double bin_width_;
};

}  // namespace idlered::dist
