#include "dist/empirical.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace idlered::dist {

namespace {
std::vector<double> validated(std::vector<double> sample) {
  if (sample.empty()) throw std::invalid_argument("Empirical: empty sample");
  for (double x : sample) {
    if (x < 0.0 || !std::isfinite(x))
      throw std::invalid_argument("Empirical: stop lengths must be >= 0");
  }
  return sample;
}
}  // namespace

Empirical::Empirical(std::vector<double> sample)
    : ecdf_(validated(std::move(sample))), mean_(0.0), bin_width_(1.0) {
  const auto& xs = ecdf_.sorted_sample();
  mean_ = std::accumulate(xs.begin(), xs.end(), 0.0) /
          static_cast<double>(xs.size());
  // Sturges' rule for the histogram density estimate backing pdf().
  const double bins =
      std::max(1.0, std::ceil(std::log2(static_cast<double>(xs.size())) + 1));
  const double top = std::max(xs.back(), 1e-9);
  bin_width_ = top / bins;
}

double Empirical::pdf(double y) const {
  if (y < 0.0) return 0.0;
  const double lo = std::floor(y / bin_width_) * bin_width_;
  const double hi = lo + bin_width_;
  const double mass = cdf(hi) - (lo > 0.0 ? cdf(lo - 1e-12) : 0.0);
  return mass / bin_width_;
}

double Empirical::cdf(double y) const { return ecdf_(y); }

double Empirical::sample(util::Rng& rng) const {
  const auto& xs = ecdf_.sorted_sample();
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1));
  return xs[idx];
}

std::string Empirical::name() const {
  std::ostringstream ss;
  ss << "Empirical(n=" << size() << ", mean=" << mean_ << ")";
  return ss.str();
}

double Empirical::partial_expectation(double b) const {
  const auto& xs = ecdf_.sorted_sample();
  double acc = 0.0;
  for (double x : xs) {
    if (x >= b) break;  // sorted: all later samples are >= b too
    acc += x;
  }
  return acc / static_cast<double>(xs.size());
}

double Empirical::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0))
    throw std::invalid_argument("quantile: p must be in (0, 1)");
  return ecdf_.inverse(p);
}

double Empirical::tail_probability(double b) const {
  const auto& xs = ecdf_.sorted_sample();
  const auto it = std::lower_bound(xs.begin(), xs.end(), b);
  return static_cast<double>(xs.end() - it) / static_cast<double>(xs.size());
}

}  // namespace idlered::dist
