// Parametric stop-length families.
//
// Exponential and Uniform are the assumptions of Fujiwara & Iwama's
// average-case analysis that the paper argues against; LogNormal, Pareto and
// Weibull provide the heavy-tailed behaviour the NREL data exhibits
// (Figure 3). Each family has closed-form pdf/cdf/mean and, where tractable,
// closed-form partial expectations so the analytic experiments do not pay for
// quadrature.
#pragma once

#include <string>

#include "dist/distribution.h"

namespace idlered::dist {

/// Exponential with the given mean (not rate).
class Exponential final : public StopLengthDistribution {
 public:
  explicit Exponential(double mean);

  double pdf(double y) const override;
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;
  double mean() const override { return mean_; }
  std::string name() const override;

  double partial_expectation(double b) const override;
  double tail_probability(double b) const override;
  double quantile(double p) const override;  ///< -m ln(1 - p)

 private:
  double mean_;
};

/// Uniform on [lo, hi], 0 <= lo < hi.
class Uniform final : public StopLengthDistribution {
 public:
  Uniform(double lo, double hi);

  double pdf(double y) const override;
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  std::string name() const override;

  double partial_expectation(double b) const override;
  double quantile(double p) const override;  ///< lo + p (hi - lo)

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
};

/// LogNormal parameterized by the underlying normal's (mu, sigma).
class LogNormal final : public StopLengthDistribution {
 public:
  LogNormal(double mu, double sigma);

  /// Construct from a target mean m and target median (m > median > 0):
  /// sigma^2 = 2 ln(m / median), mu = ln(median).
  static LogNormal from_mean_median(double mean, double median);

  double pdf(double y) const override;
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;
  double mean() const override;
  std::string name() const override;

  double partial_expectation(double b) const override;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
};

/// Pareto Type I with scale x_m > 0 (support [x_m, inf)) and shape alpha > 0.
class Pareto final : public StopLengthDistribution {
 public:
  Pareto(double scale, double shape);

  double pdf(double y) const override;
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;
  double mean() const override;  ///< +inf when shape <= 1
  std::string name() const override;

  double partial_expectation(double b) const override;
  double tail_probability(double b) const override;
  double quantile(double p) const override;  ///< x_m (1-p)^{-1/alpha}

  double scale() const { return scale_; }
  double shape() const { return shape_; }

 private:
  double scale_;
  double shape_;
};

/// Weibull with shape k > 0 and scale lambda > 0.
class Weibull final : public StopLengthDistribution {
 public:
  Weibull(double shape, double scale);

  double pdf(double y) const override;
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;
  double mean() const override;
  std::string name() const override;
  double quantile(double p) const override;  ///< lambda (-ln(1-p))^{1/k}

 private:
  double shape_;
  double scale_;
};

/// Gamma distribution with shape k > 0 and scale theta > 0 — the classic
/// queueing-delay law (sum of k exponential phases); Erlang for integer k.
class Gamma final : public StopLengthDistribution {
 public:
  Gamma(double shape, double scale);

  double pdf(double y) const override;
  double cdf(double y) const override;
  double sample(util::Rng& rng) const override;
  double mean() const override { return shape_ * scale_; }
  std::string name() const override;

  /// integral_0^b y pdf = k theta P(k+1, b/theta) (regularized lower
  /// incomplete gamma) — closed form, no quadrature.
  double partial_expectation(double b) const override;

  double shape() const { return shape_; }
  double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Regularized lower incomplete gamma P(k, x) (series for x < k+1,
/// continued fraction otherwise). Exposed for tests.
double regularized_lower_gamma(double k, double x);

/// Standard normal CDF (shared helper; exposed for tests).
double normal_cdf(double z);

}  // namespace idlered::dist
