#include "dist/adaptors.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/math.h"

namespace idlered::dist {

// --------------------------------------------------------------------- Scaled

Scaled::Scaled(DistributionPtr base, double scale)
    : base_(std::move(base)), scale_(scale) {
  if (!base_) throw std::invalid_argument("Scaled: null base distribution");
  if (scale <= 0.0) throw std::invalid_argument("Scaled: scale must be > 0");
}

Scaled Scaled::with_mean(DistributionPtr base, double target_mean) {
  if (!base) throw std::invalid_argument("Scaled: null base distribution");
  const double m = base->mean();
  if (!(m > 0.0) || !std::isfinite(m))
    throw std::invalid_argument("Scaled: base mean must be finite positive");
  if (target_mean <= 0.0)
    throw std::invalid_argument("Scaled: target mean must be > 0");
  return Scaled(std::move(base), target_mean / m);
}

double Scaled::pdf(double y) const { return base_->pdf(y / scale_) / scale_; }

double Scaled::cdf(double y) const { return base_->cdf(y / scale_); }

double Scaled::sample(util::Rng& rng) const {
  return scale_ * base_->sample(rng);
}

double Scaled::mean() const { return scale_ * base_->mean(); }

std::string Scaled::name() const {
  std::ostringstream ss;
  ss << "Scaled(" << scale_ << " * " << base_->name() << ")";
  return ss.str();
}

double Scaled::partial_expectation(double b) const {
  // integral_0^b y q(y) dy with y = s u: s * integral_0^{b/s} u q_base(u) du
  return scale_ * base_->partial_expectation(b / scale_);
}

double Scaled::tail_probability(double b) const {
  return base_->tail_probability(b / scale_);
}

double Scaled::quantile(double p) const {
  return scale_ * base_->quantile(p);
}

// ------------------------------------------------------------------ Truncated

Truncated::Truncated(DistributionPtr base, double lo, double hi)
    : base_(std::move(base)), lo_(lo), hi_(hi), mass_(0.0) {
  if (!base_) throw std::invalid_argument("Truncated: null base distribution");
  if (!(hi > lo)) throw std::invalid_argument("Truncated: need hi > lo");
  mass_ = base_->cdf(hi_) - base_->cdf(lo_);
  if (mass_ <= 0.0)
    throw std::invalid_argument("Truncated: base has no mass in [lo, hi]");
}

double Truncated::pdf(double y) const {
  if (y < lo_ || y > hi_) return 0.0;
  return base_->pdf(y) / mass_;
}

double Truncated::cdf(double y) const {
  if (y <= lo_) return 0.0;
  if (y >= hi_) return 1.0;
  return (base_->cdf(y) - base_->cdf(lo_)) / mass_;
}

double Truncated::sample(util::Rng& rng) const {
  // Rejection sampling; acceptance probability is mass_, which the
  // constructor guarantees to be positive. Fall back to the midpoint after
  // an implausible number of rejections to keep the call total.
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const double y = base_->sample(rng);
    if (y >= lo_ && y <= hi_) return y;
  }
  return 0.5 * (lo_ + hi_);
}

double Truncated::mean() const {
  return util::integrate([this](double y) { return y * pdf(y); }, lo_, hi_,
                         1e-10);
}

std::string Truncated::name() const {
  std::ostringstream ss;
  ss << "Truncated(" << base_->name() << ", [" << lo_ << ", " << hi_ << "])";
  return ss.str();
}

// ------------------------------------------------------------------ PointMass

PointMass::PointMass(double value) : value_(value) {
  if (value < 0.0) throw std::invalid_argument("PointMass: value must be >= 0");
}

double PointMass::pdf(double y) const {
  return y == value_ ? std::numeric_limits<double>::infinity() : 0.0;
}

double PointMass::cdf(double y) const { return y >= value_ ? 1.0 : 0.0; }

double PointMass::sample(util::Rng& /*rng*/) const { return value_; }

std::string PointMass::name() const {
  std::ostringstream ss;
  ss << "PointMass(" << value_ << ")";
  return ss.str();
}

double PointMass::partial_expectation(double b) const {
  return value_ < b ? value_ : 0.0;
}

double PointMass::tail_probability(double b) const {
  return value_ >= b ? 1.0 : 0.0;
}

double PointMass::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0))
    throw std::invalid_argument("quantile: p must be in (0, 1)");
  return value_;
}

}  // namespace idlered::dist
