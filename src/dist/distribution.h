// Stop-length distribution interface.
//
// Every source of vehicle stop lengths — parametric laws, mixtures, empirical
// traces, the traffic-light simulator — implements this interface, so the
// analytic experiments (Figures 1/2/5/6) and the trace-driven ones (Figures
// 3/4) share all downstream code.
//
// The constrained ski-rental statistics of the paper, Section 3:
//   mu_B_minus = integral_0^B y q(y) dy     (partial expectation, eq. 10)
//   q_B_plus   = P{ y >= B }                (long-stop probability, eq. 11)
// are exposed through ShortStopStats, computable either analytically from a
// distribution or empirically from a stop sample.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/random.h"

namespace idlered::dist {

class StopLengthDistribution {
 public:
  virtual ~StopLengthDistribution() = default;

  /// Probability density at y (stop lengths live on [0, +inf)).
  virtual double pdf(double y) const = 0;

  /// P{ Y <= y }.
  virtual double cdf(double y) const = 0;

  /// Draw one stop length.
  virtual double sample(util::Rng& rng) const = 0;

  /// E[Y]; may be +inf for very heavy tails (Pareto with shape <= 1).
  virtual double mean() const = 0;

  /// Short human-readable identifier used in tables and logs.
  virtual std::string name() const = 0;

  /// Partial expectation  integral_0^b y q(y) dy  (the paper's mu_B_minus
  /// when b = B). Default: adaptive quadrature of y * pdf(y); overridden by
  /// families with closed forms.
  virtual double partial_expectation(double b) const;

  /// Tail probability P{ Y >= b } (the paper's q_B_plus when b = B).
  virtual double tail_probability(double b) const;

  /// Quantile function: smallest y with cdf(y) >= p, p in (0, 1).
  /// Default: bisection on the cdf; overridden where closed forms exist.
  virtual double quantile(double p) const;

  /// Draw n stop lengths.
  std::vector<double> sample_many(util::Rng& rng, std::size_t n) const;
};

using DistributionPtr = std::shared_ptr<const StopLengthDistribution>;

/// The pair of constrained-ski-rental statistics (mu_B_minus, q_B_plus).
struct ShortStopStats {
  double mu_b_minus = 0.0;  ///< expected length contribution of short stops
  double q_b_plus = 0.0;    ///< probability of a long stop (y >= B)

  /// Feasibility: short stops are < B with total probability 1 - q_B_plus,
  /// so mu_B_minus <= B * (1 - q_B_plus) must hold.
  bool feasible(double break_even) const;

  /// Expected offline cost  mu_B_minus + q_B_plus * B  (eq. 13).
  double expected_offline_cost(double break_even) const;

  /// Compute analytically from a distribution.
  static ShortStopStats from_distribution(const StopLengthDistribution& q,
                                          double break_even);

  /// Compute empirically from a stop-length sample:
  ///   mu_B_minus ~= (1/n) sum y_i 1{y_i < B},   q_B_plus ~= #{y_i >= B}/n.
  static ShortStopStats from_sample(const std::vector<double>& sample,
                                    double break_even);
};

}  // namespace idlered::dist
