// Arterial commute study: a fleet of commuters drives a signalized corridor
// twice a day. Compares signal coordination (green wave vs uncoordinated)
// and, on top of each, the stop-start strategies — showing that COA adapts
// its selection to the corridor and that signal retiming and stop-start
// control attack the same idling from two different directions.
//
// Usage: arterial_commute [intersections] [vehicles] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/policies.h"
#include "core/proposed.h"
#include "costmodel/break_even.h"
#include "sim/fleet_eval.h"
#include "sim/savings.h"
#include "stats/descriptive.h"
#include "traffic/arterial.h"
#include "util/random.h"
#include "util/table.h"

namespace {

using namespace idlered;

void study(const char* label, const traffic::ArterialConfig& config,
           double break_even, const costmodel::VehicleConfig& vehicle,
           std::uint64_t seed) {
  traffic::ArterialSimulator sim(config);
  util::Rng rng(seed);
  // 10 round trips a week for each of 120 commuters.
  const auto fleet = sim.simulate_fleet(120, 10, rng);

  std::size_t total_stops = 0;
  double total_wait = 0.0;
  for (const auto& t : fleet) {
    total_stops += t.num_stops();
    total_wait += t.total_stop_time();
  }
  std::printf("%s", util::banner(label).c_str());
  std::printf("%zu stops across the fleet, mean wait %.1f s\n\n", total_stops,
              total_stops ? total_wait / static_cast<double>(total_stops)
                          : 0.0);
  if (total_stops == 0) return;

  const auto cmp = sim::compare_strategies(fleet, break_even,
                                           sim::standard_strategy_set());
  const auto means = cmp.mean_cr();
  const auto best = cmp.best_counts(1e-9);
  util::Table table({"strategy", "average CR", "best on"});
  for (std::size_t s = 0; s < cmp.num_strategies(); ++s) {
    table.add_row({cmp.strategy_names[s], util::fmt(means[s], 3),
                   std::to_string(best[s])});
  }
  std::printf("%s\n", table.str().c_str());

  // Weekly fuel: NEV (the reluctant driver) vs COA, totalled over the fleet.
  double nev_online = 0.0;
  double coa_online = 0.0;
  for (const auto& t : fleet) {
    if (t.stops.empty()) continue;
    nev_online +=
        sim::evaluate(*core::make_nev(break_even), t.stops).online;
    core::ProposedPolicy coa(break_even, t.stops);
    coa_online += sim::evaluate(coa, t.stops).online;
  }
  const auto saved = sim::to_real_cost(nev_online - coa_online, vehicle);
  std::printf("fleet-week saving of COA vs never-off: %.1f L fuel, $%.2f, "
              "%.1f kg CO2\n\n", saved.fuel_liters, saved.usd, saved.co2_kg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace idlered;

  const int intersections = argc > 1 ? std::atoi(argv[1]) : 8;
  const int vehicles = argc > 2 ? std::atoi(argv[2]) : 120;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 11;
  (void)vehicles;  // fleet size fixed inside study() for comparability

  const auto vehicle = costmodel::ssv_vehicle();
  const double b = costmodel::compute_break_even(vehicle).break_even_s;
  std::printf("corridor: %d signals, 90 s cycle, 45 s green, 60 s links | "
              "B = %.1f s\n\n", intersections, b);

  study("green-wave corridor",
        traffic::green_wave(intersections, 90.0, 45.0, 60.0), b, vehicle,
        seed);

  util::Rng cfg_rng(seed + 1);
  traffic::ArterialConfig un =
      traffic::uncoordinated(intersections, 90.0, 45.0, 60.0, cfg_rng);
  study("uncoordinated corridor", un, b, vehicle, seed);
  return 0;
}
