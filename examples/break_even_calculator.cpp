// Break-even calculator: an interactive-grade CLI around the Appendix C
// cost model. Answers "after how many seconds of idling is it worth
// shutting my engine off?" for a configurable vehicle.
//
// Usage:
//   break_even_calculator [--displacement L] [--fuel-price USD]
//                         [--conventional] [--starter-cost USD]
//                         [--starter-labor USD] [--starter-starts N]
//                         [--battery-cost USD] [--battery-warranty YEARS]
//                         [--stops-per-day N]
//
// Defaults reproduce the paper's SSV operating point (B ~ 28 s); pass
// --conventional for the no-SSS vehicle (B ~ 47 s).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "costmodel/break_even.h"

namespace {

double arg_value(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace idlered::costmodel;

  if (has_flag(argc, argv, "--help")) {
    std::printf(
        "usage: break_even_calculator [--displacement L] [--fuel-price USD]\n"
        "                             [--conventional] [--starter-cost USD]\n"
        "                             [--starter-labor USD] [--starter-starts N]\n"
        "                             [--battery-cost USD] [--battery-warranty Y]\n"
        "                             [--stops-per-day N]\n");
    return 0;
  }

  const bool conventional = has_flag(argc, argv, "--conventional");
  VehicleConfig v = conventional ? conventional_vehicle() : ssv_vehicle();

  v.engine.displacement_liters =
      arg_value(argc, argv, "--displacement", v.engine.displacement_liters);
  // A custom displacement implies using the eq. 45 regression rather than
  // the Ford Fusion measurement.
  if (has_flag(argc, argv, "--displacement"))
    v.engine.measured_idle_fuel_cc_per_s = 0.0;
  v.fuel.usd_per_gallon =
      arg_value(argc, argv, "--fuel-price", v.fuel.usd_per_gallon);
  v.starter.replacement_usd =
      arg_value(argc, argv, "--starter-cost", v.starter.replacement_usd);
  v.starter.labor_usd =
      arg_value(argc, argv, "--starter-labor", v.starter.labor_usd);
  v.starter.starts_per_replacement = arg_value(
      argc, argv, "--starter-starts", v.starter.starts_per_replacement);
  v.battery.cost_usd =
      arg_value(argc, argv, "--battery-cost", v.battery.cost_usd);
  v.battery.warranty_years =
      arg_value(argc, argv, "--battery-warranty", v.battery.warranty_years);
  v.battery.stops_per_day =
      arg_value(argc, argv, "--stops-per-day", v.battery.stops_per_day);

  const auto b = compute_break_even(v);
  std::printf("vehicle type       : %s\n",
              conventional ? "conventional (no stop-start system)"
                           : "stop-start vehicle (SSV)");
  std::printf("%s", b.describe().c_str());
  std::printf("\nrule of thumb: if you expect to stand still for more than "
              "%.0f seconds,\nshutting the engine off saves money — fuel, "
              "wear and emissions included.\n",
              b.break_even_s);

  // Annualized saving estimate for a typical usage pattern.
  const double stops_per_year = v.battery.stops_per_day * 365.0;
  const double avoidable_idle_s = 60.0;  // one minute of avoidable idling
  const double saving_per_stop_cents =
      (avoidable_idle_s - b.break_even_s) * b.idling_cost_cents_per_s;
  if (saving_per_stop_cents > 0.0) {
    std::printf("if ~1 in 5 of your %.0f yearly stops idles a minute, "
                "optimal shut-offs save about $%.0f per year.\n",
                stops_per_year,
                saving_per_stop_cents * stops_per_year / 5.0 / 100.0);
  }
  return 0;
}
