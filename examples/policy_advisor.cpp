// Policy advisor: the paper's "driving tip" use case. Reads a vehicle's
// stop history (CSV with a stop_s column, e.g. one produced by
// fleet_study), learns the side statistics, and recommends a concrete
// shut-off rule with its cost guarantee — for SSV and conventional vehicles.
//
// If the CSV also has a `censored` column (1 = the stop's true length was
// not observed, e.g. the driver keyed off and parked), the statistics are
// estimated with the Kaplan-Meier product-limit estimator instead of the
// naive sample averages, removing the censoring bias in q_B+.
//
// Usage: policy_advisor [history.csv]
// Without an argument, a demo history is generated.
#include <cstdio>
#include <string>
#include <vector>

#include "core/policies.h"
#include "core/proposed.h"
#include "costmodel/break_even.h"
#include "sim/evaluator.h"
#include "stats/kaplan_meier.h"
#include "traces/fleet_generator.h"
#include "util/csv.h"
#include "util/random.h"

namespace {

using namespace idlered;

struct History {
  std::vector<double> stops;  ///< observed durations (exact or censored)
  std::vector<stats::CensoredObservation> observations;
  bool has_censoring = false;
};

History load_history(const std::string& path) {
  const auto doc = util::read_csv_file(path, /*has_header=*/true);
  const int col = doc.column("stop_s");
  if (col < 0) throw std::runtime_error("CSV needs a stop_s column");
  const int cens_col = doc.column("censored");
  History h;
  h.stops.reserve(doc.rows.size());
  for (const auto& row : doc.rows) {
    const double y = std::stod(row.at(static_cast<std::size_t>(col)));
    bool censored = false;
    if (cens_col >= 0) {
      censored = row.at(static_cast<std::size_t>(cens_col)) == "1";
      h.has_censoring |= censored;
    }
    h.stops.push_back(y);
    h.observations.push_back({y, !censored});
  }
  return h;
}

std::vector<double> demo_history() {
  util::Rng rng(2014);
  return traces::generate_vehicle(traces::atlanta(), 0, rng).stops;
}

void advise(const History& history, double b, const char* kind) {
  const auto& stops = history.stops;
  // Censored histories (key-off parking events) need the Kaplan-Meier
  // estimator; exact histories use the plain sample statistics.
  const auto stats_est =
      history.has_censoring
          ? stats::censored_short_stop_stats(history.observations, b)
          : dist::ShortStopStats::from_sample(stops, b);
  core::ProposedPolicy coa(b, stats_est);
  std::printf("--- %s (B = %.0f s) ---\n", kind, b);
  std::printf("history: %zu stops%s | mu_B- = %.2f s | q_B+ = %.3f\n",
              stops.size(),
              history.has_censoring ? " (censoring-corrected)" : "",
              coa.stats().mu_b_minus, coa.stats().q_b_plus);
  if (history.has_censoring) {
    const auto naive = dist::ShortStopStats::from_sample(stops, b);
    std::printf("  (naive, biased estimate would be mu_B- = %.2f s, "
                "q_B+ = %.3f)\n", naive.mu_b_minus, naive.q_b_plus);
  }

  const auto& choice = coa.choice();
  switch (choice.strategy) {
    case core::Strategy::kToi:
      std::printf("advice : shut the engine off as soon as you stop.\n");
      break;
    case core::Strategy::kDet:
      std::printf("advice : keep idling; only shut off once you have waited "
                  "%.0f s.\n", b);
      break;
    case core::Strategy::kBDet:
      std::printf("advice : shut the engine off after %.1f s of idling.\n",
                  choice.b);
      break;
    case core::Strategy::kNRand:
      std::printf("advice : randomize the shut-off point over [0, %.0f] s "
                  "(density e^{x/B}); in an SSS this is drawn per stop.\n",
                  b);
      break;
  }
  std::printf("guarantee: expected cost within %.3fx of a clairvoyant "
              "driver, whatever traffic does.\n", choice.cr);

  const double cr_coa = sim::evaluate(coa, stops).cr();
  const double cr_nev =
      sim::evaluate(*core::make_nev(b), stops).cr();
  const double cr_toi =
      sim::evaluate(*core::make_toi(b), stops).cr();
  std::printf("on this history: COA CR %.3f vs never-off %.3f vs "
              "always-off %.3f\n\n", cr_coa, cr_nev, cr_toi);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace idlered;
  try {
    History history;
    if (argc > 1) {
      history = load_history(argv[1]);
      std::printf("loaded %zu stops from %s%s\n\n", history.stops.size(),
                  argv[1],
                  history.has_censoring ? " (with censored parking events)"
                                        : "");
    } else {
      for (double y : demo_history()) {
        history.stops.push_back(y);
        history.observations.push_back({y, true});
      }
      std::printf("no history given; using a synthetic Atlanta week "
                  "(%zu stops)\n\n", history.stops.size());
    }
    if (history.stops.empty()) {
      std::fprintf(stderr, "history contains no stops\n");
      return 1;
    }
    advise(history, costmodel::kPaperBreakEvenSsv, "stop-start vehicle");
    advise(history, costmodel::kPaperBreakEvenConventional,
           "conventional vehicle");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
