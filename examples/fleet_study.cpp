// Fleet study: generate a synthetic NREL-like fleet for one metro area and
// compare all six online strategies on it — a compact version of the
// paper's Figure 4 experiment that you can point at your own parameters.
//
// Usage: fleet_study [area] [vehicles] [break_even_s] [seed]
//   area        California | Chicago | Atlanta   (default Chicago)
//   vehicles    fleet size                       (default 100)
//   break_even  seconds                          (default 28)
//   seed        RNG seed                         (default 1)
//
// Also writes the generated traces to fleet_<area>.csv so the same fleet
// can be re-analyzed or inspected.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "engine/eval_session.h"
#include "sim/trace.h"
#include "stats/descriptive.h"
#include "traces/fleet_generator.h"
#include "util/random.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace idlered;

  const std::string area_name = argc > 1 ? argv[1] : "Chicago";
  const int vehicles = argc > 2 ? std::atoi(argv[2]) : 100;
  const double b = argc > 3 ? std::atof(argv[3]) : 28.0;
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  traces::AreaProfile profile;
  bool found = false;
  for (const auto& a : traces::all_areas()) {
    if (a.name == area_name) {
      profile = a;
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown area '%s' (use California, Chicago, or "
                         "Atlanta)\n",
                 area_name.c_str());
    return 1;
  }
  profile.num_vehicles_driving = vehicles;

  util::Rng rng(seed);
  const auto fleet = traces::generate_area_fleet(profile, rng);
  const std::string csv_path = "fleet_" + area_name + ".csv";
  sim::write_fleet_csv(fleet, csv_path);

  std::size_t total_stops = 0;
  for (const auto& t : fleet) total_stops += t.num_stops();
  std::printf("generated %zu vehicles, %zu stops (one week each); traces "
              "written to %s\n\n",
              fleet.size(), total_stops, csv_path.c_str());

  // Parallel engine evaluation; identical result shape to the old serial
  // sim::compare_strategies call, deterministic regardless of thread count.
  const auto cmp = engine::compare_strategies_parallel(
      fleet, b, engine::standard_strategy_set());
  const auto means = cmp.mean_cr();
  const auto worsts = cmp.worst_cr();
  const auto best = cmp.best_counts(1e-9);

  util::Table table({"strategy", "average CR", "worst CR", "best on"});
  for (std::size_t s = 0; s < cmp.num_strategies(); ++s) {
    table.add_row({cmp.strategy_names[s], util::fmt(means[s], 3),
                   worsts[s] > 100.0 ? ">100" : util::fmt(worsts[s], 3),
                   std::to_string(best[s]) + " vehicles"});
  }
  std::printf("strategy comparison for %s at B = %.0f s:\n%s\n",
              area_name.c_str(), b, table.str().c_str());

  // Per-vehicle CR distribution for COA.
  std::vector<double> coa_crs;
  for (const auto& v : cmp.vehicles) coa_crs.push_back(v.cr.back());
  std::printf("COA per-vehicle CR: median %.3f, p90 %.3f, max %.3f\n",
              stats::median(coa_crs), stats::quantile(coa_crs, 0.9),
              stats::max(coa_crs));
  return 0;
}
