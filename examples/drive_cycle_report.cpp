// Drive-cycle report: evaluate the stop-start strategies on the standard
// certification cycles (NYCC, UDDS, NEDC, WLTC-3) and convert the outcome
// into physical units — fuel, dollars, CO2 — for a commuter repeating the
// cycle twice a day for a year.
//
// Usage: drive_cycle_report [repeats_per_day] [days_per_year]
#include <cstdio>
#include <cstdlib>

#include "core/policies.h"
#include "core/proposed.h"
#include "costmodel/break_even.h"
#include "sim/evaluator.h"
#include "sim/savings.h"
#include "traces/drive_cycles.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace idlered;

  const int repeats_per_day = argc > 1 ? std::atoi(argv[1]) : 2;
  const double days_per_year = argc > 2 ? std::atof(argv[2]) : 250.0;

  const auto vehicle = costmodel::ssv_vehicle();
  const auto breakdown = costmodel::compute_break_even(vehicle);
  const double b = breakdown.break_even_s;
  std::printf("vehicle: stop-start sedan, B = %.1f s | %d cycle runs/day, "
              "%.0f days/year\n\n", b, repeats_per_day, days_per_year);

  for (const auto& cycle : traces::standard_cycles()) {
    std::printf("%s", util::banner(cycle.name + "  (" +
                                   util::fmt(cycle.duration_s, 0) + " s, " +
                                   util::fmt(100.0 * cycle.idle_fraction(), 1) +
                                   "% idle, " +
                                   std::to_string(cycle.num_stops()) +
                                   " stops)").c_str());

    const auto& stops = cycle.stop_lengths_s;
    core::ProposedPolicy coa(b, stops);
    const auto coa_t = sim::evaluate(coa, stops);
    const auto nev_t = sim::evaluate(*core::make_nev(b), stops);
    const auto toi_t = sim::evaluate(*core::make_toi(b), stops);
    const auto det_t = sim::evaluate(*core::make_det(b), stops);

    util::Table table({"strategy", "CR", "cost/cycle (idle-s eq)",
                       "fuel/year (L)", "$/year", "CO2/year (kg)"});
    const double runs_per_year = repeats_per_day * days_per_year;
    auto add = [&](const char* name, const sim::CostTotals& t) {
      const auto yearly =
          sim::to_real_cost(t.online * runs_per_year, vehicle);
      table.add_row({name, util::fmt(t.cr(), 3), util::fmt(t.online, 0),
                     util::fmt(yearly.fuel_liters, 1),
                     util::fmt(yearly.usd, 2),
                     util::fmt(yearly.co2_kg, 1)});
    };
    add(("COA -> " + core::to_string(coa.choice().strategy)).c_str(), coa_t);
    add("TOI", toi_t);
    add("DET", det_t);
    add("NEV", nev_t);
    std::printf("%s", table.str().c_str());

    const auto saved_per_run = sim::savings(coa_t, nev_t, vehicle);
    std::printf("COA vs never-off: %.1f idle-s eq per cycle run -> %.2f L "
                "fuel and %.1f kg CO2 per commuter-year (negative means "
                "never-off was cheaper: this cycle's stops rarely reach "
                "B, and COA's guarantee costs a premium NEV does not "
                "pay)\n\n",
                saved_per_run.idle_second_equivalents,
                saved_per_run.fuel_liters * runs_per_year,
                saved_per_run.co2_kg * runs_per_year);
  }
  return 0;
}
