// Corridor simulation: drive the adaptive stop-start controller with stops
// produced by the mechanistic signalized-intersection substrate, across a
// rush-hour demand ramp. Demonstrates (a) the traffic simulator, (b) online
// statistics estimation with forgetting, and (c) the realized fuel saving
// versus the factory TOI strategy and a reluctant NEV driver.
//
// Usage: corridor_sim [hours_per_phase] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/policies.h"
#include "core/proposed.h"
#include "costmodel/break_even.h"
#include "sim/controller.h"
#include "sim/evaluator.h"
#include "traffic/intersection.h"
#include "util/random.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace idlered;

  const double hours = argc > 1 ? std::atof(argv[1]) : 24.0;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

  // Demand ramp: off-peak -> rush hour -> gridlock at one intersection.
  struct Phase {
    const char* label;
    double arrival_rate;
  };
  const Phase phases[] = {
      {"off-peak (rho 0.3)", 0.075},
      {"rush hour (rho 0.8)", 0.20},
      {"gridlock (rho 0.96)", 0.24},
  };

  util::Rng rng(seed);
  std::vector<double> stops;
  for (const auto& phase : phases) {
    traffic::IntersectionConfig cfg;
    cfg.signal.cycle_s = 90.0;
    cfg.signal.green_s = 45.0;
    cfg.arrival_rate_per_s = phase.arrival_rate;
    traffic::IntersectionSimulator sim(cfg);
    util::Rng phase_rng = rng.fork(std::hash<std::string>{}(phase.label));
    const auto phase_stops = sim.simulate(hours * 3600.0, phase_rng);
    std::printf("%-22s rho = %.2f -> %zu stops\n", phase.label,
                sim.utilization(), phase_stops.size());
    stops.insert(stops.end(), phase_stops.begin(), phase_stops.end());
  }
  std::printf("total: %zu stops across the demand ramp\n\n", stops.size());

  // SSV cost model gives the break-even interval and the cents-per-second
  // scale for the money figures below.
  const auto breakdown =
      costmodel::compute_break_even(costmodel::ssv_vehicle());
  const double b = breakdown.break_even_s;

  // Adaptive controller with forgetting (traffic drifts across phases).
  sim::AdaptiveController::Config cfg;
  cfg.break_even = b;
  cfg.warmup_stops = 20;
  cfg.decay_lambda = 0.995;
  sim::AdaptiveController controller(cfg);
  for (double y : stops) controller.process_stop_expected(y);

  const auto toi = sim::evaluate(*core::make_toi(b), stops);
  const auto nev = sim::evaluate(*core::make_nev(b), stops);
  const auto det = sim::evaluate(*core::make_det(b), stops);
  const auto& adaptive = controller.totals();

  util::Table table({"controller", "online cost (idle-s)", "CR",
                     "cost vs adaptive"});
  auto add = [&](const char* name, const sim::CostTotals& t) {
    table.add_row({name, util::fmt(t.online, 0), util::fmt(t.cr(), 3),
                   util::fmt(100.0 * (t.online / adaptive.online - 1.0), 1) +
                       "%"});
  };
  add("adaptive COA", adaptive);
  add("TOI (factory SSS)", toi);
  add("DET (wait B)", det);
  add("NEV (never off)", nev);
  std::printf("%s\n", table.str().c_str());

  const double cents =
      (toi.online - adaptive.online) * breakdown.idling_cost_cents_per_s;
  std::printf("adaptive COA vs factory TOI over this horizon: %.0f idle-s "
              "equivalents saved (~$%.2f)\n",
              toi.online - adaptive.online, cents / 100.0);
  if (const auto* coa = dynamic_cast<const core::ProposedPolicy*>(
          &controller.current_policy())) {
    std::printf("final learned statistics: mu_B- = %.1f s, q_B+ = %.2f "
                "(current strategy: %s)\n",
                coa->stats().mu_b_minus, coa->stats().q_b_plus,
                core::to_string(coa->choice().strategy).c_str());
  }
  return 0;
}
