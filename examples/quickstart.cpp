// Quickstart: the 60-second tour of the IdleRed public API.
//
//   1. Derive the break-even interval B for your vehicle (Appendix C model).
//   2. Learn the side statistics (mu_B-, q_B+) from observed stops.
//   3. Build the proposed online policy (COA) and query its decision rule.
//   4. Evaluate it against the classic baselines on your stop history.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/policies.h"
#include "core/proposed.h"
#include "costmodel/break_even.h"
#include "sim/evaluator.h"

int main() {
  using namespace idlered;

  // 1. Break-even interval for a stop-start vehicle (2.5 L sedan, $3.50/gal).
  const auto breakdown = costmodel::compute_break_even(costmodel::ssv_vehicle());
  const double b = breakdown.break_even_s;
  std::printf("break-even interval B = %.1f s\n%s\n", b,
              breakdown.describe().c_str());

  // 2. A week of observed stop lengths (seconds) for this vehicle.
  const std::vector<double> history{
      4.0, 12.0, 35.0, 8.0,  90.0, 15.0, 3.0,  41.0, 7.0,  22.0,
      6.0, 55.0, 11.0, 29.0, 5.0,  17.0, 240.0, 9.0,  13.0, 33.0};

  // 3. The proposed policy selects the best vertex strategy for these stats.
  core::ProposedPolicy coa(b, history);
  std::printf("learned statistics: mu_B- = %.2f s, q_B+ = %.3f\n",
              coa.stats().mu_b_minus, coa.stats().q_b_plus);
  std::printf("COA selects %s (worst-case CR guarantee %.3f)\n",
              core::to_string(coa.choice().strategy).c_str(),
              coa.worst_case_cr());
  if (coa.choice().strategy == core::Strategy::kBDet) {
    std::printf("  -> shut the engine off after %.1f s of idling\n",
                coa.choice().b);
  }

  // 4. Compare against the classic strategies on the same history.
  std::printf("\nempirical competitive ratios on this history:\n");
  for (const auto& policy :
       {core::make_toi(b), core::make_nev(b), core::make_det(b),
        core::make_n_rand(b)}) {
    std::printf("  %-8s CR = %.3f\n", policy->name().c_str(),
                sim::evaluate(*policy, history).cr());
  }
  std::printf("  %-8s CR = %.3f\n", "COA",
              sim::evaluate(coa, history).cr());
  return 0;
}
