// Golden-regression suite: pins the headline numbers of the paper
// reproductions — Figure 4 (individual vehicle test), Figures 5/6 (worst-
// case CR vs mean stop length at B = 28 s / 47 s) and Table 1 (stops per
// day) — to the values the bench binaries currently print. Every workload
// here is seeded and engine-evaluated, so the numbers are deterministic;
// the tolerances only absorb the decimal rounding of the pinned constants.
//
// If a change moves one of these numbers, that is a *behavioral* change to
// the reproduction (generator, policy arithmetic, engine schedule, or
// statistics), not noise — update the constant only after explaining the
// shift. The suite reuses the bench workload builders (bench/common) so it
// pins exactly what the BENCH_*.json artifacts record.
#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/sweep.h"
#include "costmodel/break_even.h"
#include "costmodel/multislope.h"
#include "engine/eval_session.h"
#include "engine/thread_pool.h"
#include "stats/descriptive.h"
#include "traces/fleet_generator.h"
#include "util/random.h"

namespace idlered {
namespace {

// Printed-constant tolerances: the pins below are quoted to 3-4 decimals,
// so half an ulp of the last printed digit covers re-runs exactly.
constexpr double k3dp = 5e-4;
constexpr double k2dp = 5e-3;
constexpr double k4dp = 5e-5;

std::size_t strategy_index(const std::vector<std::string>& names,
                           const std::string& name) {
  const auto it = std::find(names.begin(), names.end(), name);
  EXPECT_NE(it, names.end()) << name;
  return static_cast<std::size_t>(it - names.begin());
}

// ------------------------------------------------------------------ Figure 4

class Fig4Golden : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto fleet = std::make_shared<const sim::Fleet>(
        traces::generate_study_fleet(20140601));
    engine::EvalPlan plan;
    plan.strategies = engine::standard_strategy_set();
    for (double b : {costmodel::kPaperBreakEvenSsv,
                     costmodel::kPaperBreakEvenConventional})
      plan.points.push_back(engine::PlanPoint{b, b, fleet});
    engine::EvalSession session(std::move(plan));
    report_ = new engine::EvalReport(session.run());
  }
  static void TearDownTestSuite() {
    delete report_;
    report_ = nullptr;
  }
  static const engine::EvalReport* report_;
};

const engine::EvalReport* Fig4Golden::report_ = nullptr;

TEST_F(Fig4Golden, CohortShape) {
  ASSERT_EQ(report_->points.size(), 2u);
  EXPECT_EQ(report_->points[0].break_even, costmodel::kPaperBreakEvenSsv);
  EXPECT_EQ(report_->points[0].comparison.vehicles.size(), 1182u);
  EXPECT_EQ(report_->strategy_names.back(), "COA");
}

TEST_F(Fig4Golden, CoaBestCountAtB28) {
  // Paper (real NREL data): 1169 of 1182; our synthetic cohort: 1118.
  const auto& cmp = report_->points[0].comparison;
  const auto best = cmp.best_counts(1e-9);
  EXPECT_EQ(best[cmp.num_strategies() - 1], 1118u);
}

TEST_F(Fig4Golden, PerAreaCoaMeansAtB28) {
  const auto& cmp = report_->points[0].comparison;
  const std::size_t coa = cmp.num_strategies() - 1;
  EXPECT_NEAR(cmp.filter_area("California").mean_cr()[coa], 1.171, k3dp);
  EXPECT_NEAR(cmp.filter_area("Chicago").mean_cr()[coa], 1.257, k3dp);
  EXPECT_NEAR(cmp.filter_area("Atlanta").mean_cr()[coa], 1.183, k3dp);
}

TEST_F(Fig4Golden, PerAreaWorstCaseCrAtB28) {
  const auto& cmp = report_->points[0].comparison;
  const std::size_t coa = cmp.num_strategies() - 1;
  const std::size_t det = strategy_index(report_->strategy_names, "DET");
  EXPECT_NEAR(cmp.filter_area("California").worst_cr()[coa], 1.454, k3dp);
  EXPECT_NEAR(cmp.filter_area("Chicago").worst_cr()[coa], 1.485, k3dp);
  EXPECT_NEAR(cmp.filter_area("Atlanta").worst_cr()[coa], 1.539, k3dp);
  // DET's worst case hugs its 2-competitive guarantee from below.
  for (const char* area : {"California", "Chicago", "Atlanta"}) {
    EXPECT_LT(cmp.filter_area(area).worst_cr()[det], 2.0) << area;
  }
}

// ------------------------------------------------------------- Figures 5 / 6

struct SweepGolden {
  double first_det, last_det;   // DET worst CR at the grid endpoints
  double first_toi, last_toi;   // TOI worst CR at the grid endpoints
  std::size_t det_prefix;       // COA picks DET on this many leading points
};

void check_sweep(double break_even, const SweepGolden& g) {
  const bench::SweepConfig config = bench::default_sweep(break_even);
  const bench::SweepRun run = bench::run_traffic_sweep(config);
  const auto& names = run.report.strategy_names;
  const std::size_t toi = strategy_index(names, "TOI");
  const std::size_t det = strategy_index(names, "DET");
  const std::size_t nev = strategy_index(names, "NEV");
  const std::size_t nrand = strategy_index(names, "N-Rand");
  const std::size_t coa = strategy_index(names, "COA");

  ASSERT_EQ(run.points.size(), 17u);
  EXPECT_NEAR(run.points.front().worst_cr[det], g.first_det, k3dp);
  EXPECT_NEAR(run.points.back().worst_cr[det], g.last_det, k3dp);
  EXPECT_NEAR(run.points.front().worst_cr[toi], g.first_toi, k3dp);
  EXPECT_NEAR(run.points.back().worst_cr[toi], g.last_toi, k3dp);

  std::size_t det_prefix = 0;
  for (const auto& p : run.points) {
    // COA is the lower envelope of its vertices at every grid point.
    const double envelope =
        std::min({p.worst_cr[toi], p.worst_cr[nev], p.worst_cr[det],
                  p.worst_cr[nrand]});
    EXPECT_LE(p.worst_cr[coa], envelope + 1e-9)
        << "mean=" << p.mean_stop_s;
    // N-Rand's worst case is the Karlin bound everywhere.
    EXPECT_NEAR(p.worst_cr[nrand], 1.582, k3dp) << "mean=" << p.mean_stop_s;
    if (det_prefix == static_cast<std::size_t>(&p - run.points.data()) &&
        p.coa_choice == "DET")
      ++det_prefix;
  }
  // The paper's qualitative story: COA rides DET for short means, then
  // crosses over to TOI — the crossover location is pinned exactly.
  EXPECT_EQ(det_prefix, g.det_prefix);
  for (std::size_t i = g.det_prefix; i < run.points.size(); ++i)
    EXPECT_EQ(run.points[i].coa_choice, "TOI") << "point " << i;
}

TEST(Fig5Golden, HeadlineNumbersAtB28) {
  check_sweep(28.0, SweepGolden{1.402, 1.995, 24.165, 1.166, 10});
}

TEST(Fig6Golden, HeadlineNumbersAtB47) {
  check_sweep(47.0, SweepGolden{1.322, 1.989, 17.667, 1.138, 10});
}

// ------------------------------------------------------- multislope (k-slope)

TEST(MultislopeGolden, ThreeSlopeSweepEndpoints) {
  // Pins the endpoints of bench_multislope's fig5-style table (3-slope
  // profile: idle / 0.3x-rate HVAC tier at cost 15 / deep off at B = 28,
  // mean CR over the Chicago-shaped fleets at mean 4.7 s and 168.0 s).
  const bench::SweepConfig config = bench::default_sweep(28.0);
  const auto fleets = bench::build_sweep_fleets(config);
  const auto profile3 =
      costmodel::SlopeProfile::three_state(0.3, 15.0, 28.0);

  engine::EvalPlan plan;
  plan.strategies = engine::standard_strategy_set();
  const auto ms = engine::multislope_strategy_set(profile3);
  plan.strategies.insert(plan.strategies.end(), ms.begin(), ms.end());
  plan.points.push_back(engine::PlanPoint{fleets.front().mean_stop_s, 28.0,
                                          fleets.front().fleet});
  plan.points.push_back(engine::PlanPoint{fleets.back().mean_stop_s, 28.0,
                                          fleets.back().fleet});
  engine::EvalSession session(std::move(plan));
  const auto report = session.run();

  const auto& names = report.strategy_names;
  const std::size_t coa = strategy_index(names, "COA");
  const std::size_t ms_coa = strategy_index(names, "MS-COA");
  const std::size_t ms_det = strategy_index(names, "MS-DET");
  const std::size_t ms_rand = strategy_index(names, "MS-Rand");

  const auto first = report.points[0].comparison.mean_cr();
  const auto last = report.points[1].comparison.mean_cr();
  EXPECT_NEAR(first[coa], 1.092, k3dp);
  EXPECT_NEAR(first[ms_coa], 1.090, k3dp);
  EXPECT_NEAR(first[ms_det], 1.090, k3dp);
  EXPECT_NEAR(first[ms_rand], 1.570, k3dp);
  EXPECT_NEAR(last[coa], 1.055, k3dp);
  EXPECT_NEAR(last[ms_coa], 1.055, k3dp);
  EXPECT_NEAR(last[ms_det], 1.920, k3dp);
  EXPECT_NEAR(last[ms_rand], 1.573, k3dp);
  // The short-mean endpoint already shows the third slope paying: the
  // 3-slope generalized COA sits at or below the two-slope COA.
  EXPECT_LE(first[ms_coa], first[coa] + 1e-9);
}

TEST(MultislopeGolden, K2DegeneracyReproducesTwoSlopeColumnsBitwise) {
  // On the classic two-slope profile every MS-* CR column must equal its
  // two-slope counterpart to the bit, per vehicle — no tolerance.
  const bench::SweepConfig config = bench::default_sweep(28.0);
  const auto fleets = bench::build_sweep_fleets(config);

  engine::EvalPlan plan;
  plan.strategies = engine::standard_strategy_set();
  const auto ms = engine::multislope_strategy_set(
      costmodel::SlopeProfile::two_slope(28.0));
  plan.strategies.insert(plan.strategies.end(), ms.begin(), ms.end());
  plan.points.push_back(engine::PlanPoint{fleets[8].mean_stop_s, 28.0,
                                          fleets[8].fleet});
  engine::EvalSession session(std::move(plan));
  const auto report = session.run();

  const auto& names = report.strategy_names;
  const std::pair<const char*, const char*> pairs[] = {
      {"NEV", "MS-NEV"}, {"DET", "MS-DET"}, {"N-Rand", "MS-Rand"},
      {"COA", "MS-COA"}};
  for (const auto& [two_slope, multi] : pairs) {
    const std::size_t a = strategy_index(names, two_slope);
    const std::size_t b = strategy_index(names, multi);
    for (const auto& vehicle : report.points[0].comparison.vehicles)
      EXPECT_EQ(vehicle.cr[a], vehicle.cr[b]) << two_slope;
  }
}

// -------------------------------------------------------------------- Table 1

TEST(Table1Golden, StopsPerDayMoments) {
  // Mirrors bench_table1_stops_per_day's sampling schedule exactly: the
  // per-area streams fork serially from the master seed, then sample one
  // week of days per vehicle in the stops/day dataset.
  struct Golden {
    const char* name;
    double mean, std, tail;
  };
  const Golden golden[] = {
      {"Atlanta", 10.38, 8.62, 0.9566},
      {"Chicago", 12.48, 9.98, 0.9555},
      {"California", 9.42, 7.89, 0.9593},
  };
  util::Rng rng(20140601);
  double pooled = 0.0;
  double weight = 0.0;
  for (const Golden& g : golden) {
    traces::AreaProfile profile;
    for (const auto& a : traces::all_areas())
      if (a.name == g.name) profile = a;
    ASSERT_EQ(profile.name, g.name);
    util::Rng area_rng = rng.fork(std::hash<std::string>{}(profile.name));
    const int n_draws =
        profile.num_vehicles_stops_dataset * profile.days_recorded;
    const auto xs =
        traces::sample_stops_per_day(profile, n_draws, area_rng);
    const double mean = stats::mean(xs);
    const double std = stats::stddev(xs);
    EXPECT_NEAR(mean, g.mean, k2dp) << g.name;
    EXPECT_NEAR(std, g.std, k2dp) << g.name;
    EXPECT_NEAR(stats::fraction_at_most(xs, mean + 2.0 * std), g.tail, k4dp)
        << g.name;
    pooled += profile.num_vehicles_stops_dataset * (mean + 2.0 * std);
    weight += profile.num_vehicles_stops_dataset;
  }
  // The fleet-weighted amortization bound the battery model quotes
  // (paper: 32.43 on the real data).
  EXPECT_NEAR(pooled / weight, 28.44, k2dp);
}

}  // namespace
}  // namespace idlered
