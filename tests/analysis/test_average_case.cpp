#include "analysis/average_case.h"

#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "dist/mixture.h"
#include "dist/parametric.h"
#include "util/math.h"

namespace idlered::analysis {
namespace {

constexpr double kB = 28.0;

TEST(ThresholdCostTest, MatchesManualFormula) {
  dist::Exponential law(20.0);
  // g(x) = m + (B - m) e^{-x/m} for the exponential law.
  for (double x : {0.0, 5.0, 20.0, 50.0}) {
    const double expected = 20.0 + (kB - 20.0) * std::exp(-x / 20.0);
    EXPECT_NEAR(expected_cost_at_threshold(law, x, kB), expected, 1e-9)
        << "x=" << x;
  }
}

TEST(ThresholdCostTest, InfiniteThresholdIsMean) {
  dist::Exponential law(20.0);
  EXPECT_NEAR(expected_cost_at_threshold(
                  law, std::numeric_limits<double>::infinity(), kB),
              20.0, 1e-12);
}

TEST(ThresholdCostTest, NegativeThresholdThrows) {
  dist::Exponential law(20.0);
  EXPECT_THROW(expected_cost_at_threshold(law, -1.0, kB),
               std::invalid_argument);
}

TEST(OptimalThresholdTest, ExponentialMemorylessness) {
  // For exponential stops the optimum is all-or-nothing: NEV when the mean
  // is below B, TOI when above (the hazard rate is constant).
  dist::Exponential calm(10.0);  // mean < B
  const auto nev = optimal_threshold(calm, kB);
  EXPECT_TRUE(std::isinf(nev.threshold));
  EXPECT_NEAR(nev.expected_cost, 10.0, 1e-6);

  dist::Exponential jammed(100.0);  // mean > B
  const auto toi = optimal_threshold(jammed, kB);
  EXPECT_NEAR(toi.threshold, 0.0, 1e-6);
  EXPECT_NEAR(toi.expected_cost, kB, 1e-6);
}

TEST(OptimalThresholdTest, UniformClosedForm) {
  // Uniform[0, u] with u > B: g(x) = -x^2/(2u) + x(1 - B/u) + B on [0, u],
  // maximized... minimized at the endpoints (the parabola opens downward),
  // so the best threshold is x = 0 or x = u (compare g there).
  dist::Uniform law(0.0, 100.0);
  const auto opt = optimal_threshold(law, kB);
  const double g0 = kB;
  // x = u: every stop ends before the threshold except y = u itself:
  // expected cost = E[y] = 50... plus boundary term ~ 0.
  EXPECT_NEAR(opt.expected_cost, std::min(g0, 50.0), 0.05);
}

TEST(OptimalThresholdTest, BeatsAllClassicStrategiesWhenLawIsKnown) {
  // Full knowledge of q(y) can only improve on the two-moment COA.
  dist::Mixture law({{0.8, std::make_shared<dist::Uniform>(0.0, 20.0)},
                     {0.2, std::make_shared<dist::Uniform>(60.0, 300.0)}});
  const auto opt = optimal_threshold(law, kB);
  // Candidates: TOI (B), DET, NEV (mean).
  EXPECT_LE(opt.expected_cost,
            expected_cost_at_threshold(law, 0.0, kB) + 1e-9);
  EXPECT_LE(opt.expected_cost,
            expected_cost_at_threshold(law, kB, kB) + 1e-9);
  EXPECT_LE(opt.expected_cost, law.mean() + 1e-9);
  EXPECT_GE(opt.expected_cr, 1.0 - 1e-9);
}

TEST(OptimalThresholdTest, BimodalPrefersThresholdAtBodyEdge) {
  // Stops are either < 10 s or > 60 s: waiting until the body's edge
  // (x ~ 10) rides out every short stop and pays 10 + B on the long ones;
  // g(10) = 3.5 + 0.3 * 38 = 14.9, clearly below TOI's 28 and NEV's 30.5.
  // The offline optimum pays only B on long stops, so the CR settles at
  // 14.9 / 11.9 ~ 1.25.
  dist::Mixture law({{0.7, std::make_shared<dist::Uniform>(0.0, 10.0)},
                     {0.3, std::make_shared<dist::Uniform>(60.0, 120.0)}});
  const auto opt = optimal_threshold(law, kB);
  EXPECT_GE(opt.threshold, 9.0);
  EXPECT_LE(opt.threshold, 12.0);
  EXPECT_NEAR(opt.expected_cost, 14.9, 0.1);
  EXPECT_NEAR(opt.expected_cr, 14.9 / 11.9, 0.02);
}

TEST(OptimalThresholdTest, OfflineCostHelper) {
  dist::Exponential law(20.0);
  const auto stats = dist::ShortStopStats::from_distribution(law, kB);
  EXPECT_NEAR(expected_offline_cost(law, kB),
              stats.expected_offline_cost(kB), 1e-12);
}

TEST(OptimalThresholdTest, TinyGridRejected) {
  dist::Exponential law(20.0);
  EXPECT_THROW(optimal_threshold(law, kB, 20.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::analysis
