#include "analysis/adversary.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/policies.h"
#include "util/math.h"

namespace idlered::analysis {
namespace {

constexpr double kB = 28.0;

dist::ShortStopStats make_stats(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

TEST(AdversaryTest, ToiWorstCaseIsB) {
  const auto s = make_stats(0.2, 0.3);
  const auto r = worst_case_adversary(*core::make_toi(kB), s);
  // TOI pays B regardless of the adversary.
  EXPECT_NEAR(r.expected_cost, kB, 1e-6);
  EXPECT_NEAR(r.cr, core::worst_case_cr_toi(s, kB), 1e-6);
}

TEST(AdversaryTest, DetWorstCaseMatchesClosedForm) {
  const auto s = make_stats(0.2, 0.3);
  const auto r = worst_case_adversary(*core::make_det(kB), s);
  EXPECT_NEAR(r.expected_cost, core::worst_case_cost_det(s, kB),
              1e-4 * kB);
}

TEST(AdversaryTest, NRandWorstCaseMatchesClosedForm) {
  const auto s = make_stats(0.25, 0.35);
  const auto r = worst_case_adversary(*core::make_n_rand(kB), s);
  // N-Rand equalizes: every feasible distribution costs the same.
  EXPECT_NEAR(r.expected_cost, core::worst_case_cost_nrand(s, kB),
              1e-4 * kB);
}

TEST(AdversaryTest, BDetWorstCaseMatchesEq35) {
  const auto s = make_stats(0.02, 0.3);
  ASSERT_TRUE(core::b_det_feasible(s, kB));
  const double b_star = core::b_det_optimal_threshold(s, kB);
  AdversaryOptions opt;
  opt.grid_short = 1000;  // fine grid so an atom lands close to b*
  const auto r =
      worst_case_adversary(*core::make_b_det(kB, b_star), s, opt);
  // The LP may lose a little to discretization (atom just off b*), but
  // must come within a percent of eq. (35) and never exceed it.
  const double bound = core::worst_case_cost_b_det(s, kB);
  EXPECT_LE(r.expected_cost, bound + 1e-6);
  EXPECT_GT(r.expected_cost, bound * 0.99);
}

TEST(AdversaryTest, AdversaryRespectsConstraints) {
  const auto s = make_stats(0.15, 0.35);
  const auto r = worst_case_adversary(*core::make_det(kB), s);
  double mu = 0.0;
  double q = 0.0;
  double total = 0.0;
  for (const auto& atom : r.atoms) {
    total += atom.probability;
    if (atom.stop_length < kB) {
      mu += atom.stop_length * atom.probability;
    } else {
      q += atom.probability;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-7);
  EXPECT_NEAR(mu, s.mu_b_minus, 1e-6);
  EXPECT_NEAR(q, s.q_b_plus, 1e-7);
}

TEST(AdversaryTest, OptimumConcentratesOnFewAtoms) {
  // The LP optimum is a vertex: at most #constraints = 3 atoms.
  const auto s = make_stats(0.2, 0.3);
  const auto r = worst_case_adversary(*core::make_det(kB), s);
  EXPECT_LE(r.atoms.size(), 3u);
}

TEST(AdversaryTest, BDetAdversaryConcentratesAtZeroAndB) {
  // The paper's Section 4 worst case for b-DET: short stops sit at 0 or at
  // the policy's own threshold b (paying b + B just as it shuts off). The
  // LP must rediscover exactly that structure.
  const auto s = make_stats(0.02, 0.3);
  const double b_star = core::b_det_optimal_threshold(s, kB);
  AdversaryOptions opt;
  opt.grid_short = 1000;
  const auto r = worst_case_adversary(*core::make_b_det(kB, b_star), s, opt);
  bool atom_at_zero = false;
  bool atom_near_b = false;
  for (const auto& atom : r.atoms) {
    if (atom.stop_length == 0.0) atom_at_zero = true;
    if (atom.stop_length < kB && atom.stop_length >= b_star * 0.98 &&
        atom.stop_length <= b_star * 1.1) {
      atom_near_b = true;
    }
  }
  EXPECT_TRUE(atom_at_zero);
  EXPECT_TRUE(atom_near_b);
}

TEST(AdversaryTest, ProposedBeatsEveryFixedStrategyUnderItsOwnAdversary) {
  // For each vertex strategy, the COA selection's worst case is no worse
  // than that strategy's own LP worst case.
  for (auto [mu_frac, q] : {std::pair{0.1, 0.5}, std::pair{0.3, 0.2},
                            std::pair{0.02, 0.3}, std::pair{0.4, 0.3}}) {
    const auto s = make_stats(mu_frac, q);
    const auto choice = core::choose_strategy(s, kB);
    const double det_lp =
        worst_case_adversary(*core::make_det(kB), s).expected_cost;
    const double toi_lp =
        worst_case_adversary(*core::make_toi(kB), s).expected_cost;
    EXPECT_LE(choice.expected_cost, det_lp + 1e-6);
    EXPECT_LE(choice.expected_cost, toi_lp + 1e-6);
  }
}

TEST(AdversaryTest, InfeasibleStatsThrow) {
  EXPECT_THROW(worst_case_adversary(*core::make_det(kB),
                                    make_stats(0.9, 0.5)),
               std::invalid_argument);
}

TEST(AdversaryTest, TinyGridRejected) {
  AdversaryOptions opt;
  opt.grid_short = 1;
  EXPECT_THROW(worst_case_adversary(*core::make_det(kB),
                                    make_stats(0.2, 0.2), opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace idlered::analysis

namespace idlered::analysis {
namespace {

constexpr double kB2 = 28.0;

dist::ShortStopStats stats2(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB2;
  s.q_b_plus = q;
  return s;
}

// The LP duals are the paper's Lagrange multipliers: they must equal the
// gradient of each strategy's closed-form worst-case cost with respect to
// (mu_B-, q_B+).

TEST(AdversaryDualsTest, DetGradient) {
  // cost_DET = mu + 2 q B  ->  (d/dmu, d/dq) = (1, 2B).
  const auto r =
      worst_case_adversary(*core::make_det(kB2), stats2(0.25, 0.3));
  EXPECT_NEAR(r.lambda_mu, 1.0, 1e-6);
  EXPECT_NEAR(r.lambda_q, 2.0 * kB2, 1e-4);
}

TEST(AdversaryDualsTest, NRandGradient) {
  // cost_NRand = e/(e-1) (mu + q B)  ->  (e/(e-1), e/(e-1) B).
  const auto r =
      worst_case_adversary(*core::make_n_rand(kB2), stats2(0.2, 0.35));
  EXPECT_NEAR(r.lambda_mu, util::kEOverEMinus1, 1e-4);
  EXPECT_NEAR(r.lambda_q, util::kEOverEMinus1 * kB2, 1e-3);
}

TEST(AdversaryDualsTest, ToiGradient) {
  // cost_TOI = B regardless: both moment duals vanish and the whole value
  // sits on the normalization constraint.
  const auto r =
      worst_case_adversary(*core::make_toi(kB2), stats2(0.2, 0.35));
  EXPECT_NEAR(r.lambda_mu, 0.0, 1e-6);
  EXPECT_NEAR(r.lambda_q, 0.0, 1e-4);
  EXPECT_NEAR(r.lambda_norm, kB2, 1e-6);
}

TEST(AdversaryDualsTest, StrongDualityDecomposition) {
  // value = lambda_mu * mu + lambda_q * q + lambda_norm * 1.
  const auto s = stats2(0.3, 0.25);
  for (const core::PolicyPtr& policy :
       {core::make_det(kB2), core::make_n_rand(kB2), core::make_toi(kB2)}) {
    const auto r = worst_case_adversary(*policy, s);
    EXPECT_NEAR(r.lambda_mu * s.mu_b_minus + r.lambda_q * s.q_b_plus +
                    r.lambda_norm,
                r.expected_cost, 1e-6)
        << policy->name();
  }
}

}  // namespace
}  // namespace idlered::analysis
