#include "analysis/minimax.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/crand.h"
#include "util/math.h"

namespace idlered::analysis {
namespace {

constexpr double kB = 28.0;

dist::ShortStopStats make_stats(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

// The double-oracle solver must rediscover the paper's closed-form optimum
// in each selection region without knowing the Section 4 analysis.

TEST(MinimaxTest, ToiRegion) {
  const auto s = make_stats(0.01, 0.9);
  const auto r = solve_minimax(s, kB);
  EXPECT_TRUE(r.converged);
  const double closed = core::choose_strategy(s, kB).expected_cost;
  EXPECT_NEAR(r.value, closed, 0.02 * closed);
  // The optimal mix concentrates at threshold ~ 0.
  ASSERT_FALSE(r.strategy.empty());
  double mass_near_zero = 0.0;
  for (const auto& m : r.strategy) {
    if (m.threshold < 0.05 * kB) mass_near_zero += m.probability;
  }
  EXPECT_GT(mass_near_zero, 0.9);
}

TEST(MinimaxTest, DetRegion) {
  const auto s = make_stats(0.5, 0.02);
  const auto r = solve_minimax(s, kB);
  EXPECT_TRUE(r.converged);
  const double closed = core::choose_strategy(s, kB).expected_cost;
  EXPECT_NEAR(r.value, closed, 0.02 * closed);
  double mass_near_b = 0.0;
  for (const auto& m : r.strategy) {
    if (m.threshold > 0.95 * kB) mass_near_b += m.probability;
  }
  EXPECT_GT(mass_near_b, 0.9);
}

TEST(MinimaxTest, BDetRegionRevealsTruncatedRandomization) {
  // The reproduction finding: in the paper's b-DET region the true minimax
  // optimum is NOT the paper's vertex but the truncated randomized c-Rand
  // strategy. The numeric solver must land on the c-Rand value, strictly
  // below the paper's closed form.
  const auto s = make_stats(0.02, 0.3);
  const auto r = solve_minimax(s, kB);
  EXPECT_TRUE(r.converged);
  const auto classic = core::choose_strategy(s, kB);
  ASSERT_EQ(classic.strategy, core::Strategy::kBDet);
  const auto ext = core::choose_strategy_extended(s, kB);
  ASSERT_TRUE(ext.uses_c_rand);
  EXPECT_LT(r.value, classic.expected_cost * 0.95);   // beats the paper
  EXPECT_NEAR(r.value, ext.expected_cost, 0.01 * ext.expected_cost);
  // The designer's mass lives on [0, c*], not at b*.
  const double c_star = ext.c;
  double mass_below_cstar = 0.0;
  for (const auto& m : r.strategy) {
    if (m.threshold <= c_star * 1.05) mass_below_cstar += m.probability;
  }
  EXPECT_GT(mass_below_cstar, 0.95);
}

TEST(MinimaxTest, NRandRegionApproachesContinuousOptimum) {
  // In the randomized region the optimum is a continuous density (c-Rand,
  // which here slightly improves on full-support N-Rand); a finite grid
  // approximates it from above within discretization error.
  const auto s = make_stats(0.15, 0.35);
  MinimaxOptions opt;
  opt.threshold_grid = 160;
  // Cutting planes converge slowly (O(1/k)) against a continuous optimum;
  // give them room and accept a 0.5% duality gap as converged.
  opt.max_iterations = 600;
  opt.tolerance = 5e-3;
  const auto r = solve_minimax(s, kB, opt);
  EXPECT_TRUE(r.converged);
  const double ext = core::choose_strategy_extended(s, kB).expected_cost;
  EXPECT_GE(r.value, ext * 0.995);  // cannot beat the continuous optimum
  EXPECT_LE(r.value, ext * 1.06);   // and gets close from above
  // The optimal mix spreads over many thresholds (a discretized density),
  // unlike the atom-concentrated regions.
  EXPECT_GT(r.strategy.size(), 5u);
}

TEST(MinimaxTest, ValueBracketsExtendedOptimumEverywhere) {
  // The grid-restricted designer can never beat the extended (c-Rand-aware)
  // optimum, and must approach it from above within discretization error.
  for (auto [mu_frac, q] : {std::pair{0.1, 0.5}, std::pair{0.3, 0.3},
                            std::pair{0.05, 0.15}, std::pair{0.6, 0.1}}) {
    const auto s = make_stats(mu_frac, q);
    MinimaxOptions opt;
    opt.max_iterations = 120;
    const auto r = solve_minimax(s, kB, opt);
    const double ext = core::choose_strategy_extended(s, kB).expected_cost;
    EXPECT_GE(r.value, ext * 0.995) << "mu=" << mu_frac << " q=" << q;
    EXPECT_LE(r.value, ext * 1.05) << "mu=" << mu_frac << " q=" << q;
  }
}

TEST(MinimaxTest, StrategyIsADistribution) {
  const auto r = solve_minimax(make_stats(0.2, 0.3), kB);
  double total = 0.0;
  for (const auto& m : r.strategy) {
    EXPECT_GE(m.probability, 0.0);
    EXPECT_GE(m.threshold, 0.0);
    EXPECT_LE(m.threshold, kB);
    total += m.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(MinimaxTest, InvalidInputsThrow) {
  EXPECT_THROW(solve_minimax(make_stats(0.9, 0.5), kB),
               std::invalid_argument);
  MinimaxOptions opt;
  opt.threshold_grid = 2;
  EXPECT_THROW(solve_minimax(make_stats(0.2, 0.2), kB, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace idlered::analysis
