#include "analysis/metrics.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "dist/parametric.h"
#include "util/math.h"

namespace idlered::analysis {
namespace {

constexpr double kB = 28.0;

TEST(ExpectedRatioCrTest, NRandTraceIsExactlyTheBound) {
  // N-Rand equalizes pointwise, so CR' == CR == e/(e-1) on any trace.
  const std::vector<double> stops{1.0, 5.0, 20.0, 30.0, 200.0};
  EXPECT_NEAR(expected_ratio_cr(*core::make_n_rand(kB), stops),
              util::kEOverEMinus1, 1e-9);
}

TEST(ExpectedRatioCrTest, DetTrace) {
  // DET: ratio 1 for y < B, 2 for y >= B.
  const std::vector<double> stops{5.0, 10.0, 30.0, 100.0};
  EXPECT_NEAR(expected_ratio_cr(*core::make_det(kB), stops),
              (1.0 + 1.0 + 2.0 + 2.0) / 4.0, 1e-12);
}

TEST(ExpectedRatioCrTest, SkipsZeroStops) {
  const std::vector<double> stops{0.0, 10.0};
  EXPECT_NEAR(expected_ratio_cr(*core::make_det(kB), stops), 1.0, 1e-12);
}

TEST(ExpectedRatioCrTest, AllZeroThrows) {
  EXPECT_THROW(expected_ratio_cr(*core::make_det(kB), {0.0, 0.0}),
               std::invalid_argument);
}

TEST(ExpectedRatioCrTest, CrPrimeDiffersFromCr) {
  // Expectation-of-ratios penalizes short-stop errors more than
  // ratio-of-expectations: TOI's CR' explodes on short stops while its CR
  // stays moderate.
  const std::vector<double> stops{1.0, 1.0, 1.0, 100.0};
  const auto toi = core::make_toi(kB);
  const double cr_prime = expected_ratio_cr(*toi, stops);
  const double cr = (4.0 * kB) / (3.0 + kB);  // ratio of sums
  EXPECT_GT(cr_prime, 20.0);
  EXPECT_LT(cr, 4.0);
}

TEST(ExpectedRatioCrTest, DistributionVersionMatchesTraceOnLargeSample) {
  dist::Exponential law(20.0);
  util::Rng rng(5);
  const auto stops = law.sample_many(rng, 200000);
  const auto det = core::make_det(kB);
  EXPECT_NEAR(expected_ratio_cr(*det, stops),
              expected_ratio_cr(*det, law), 0.01);
}

TEST(ExpectedRatioCrTest, MomRandBoundHolds) {
  // Khanafer et al.: CR' <= 1 + mu/(2B(e-2)) for the revised density,
  // against any distribution with that first moment. Check a few laws.
  for (double mean : {5.0, 10.0, 20.0}) {
    dist::Exponential law(mean);
    const double mu = law.mean();
    const auto mom = core::make_mom_rand(kB, mu);
    const double bound = mom_rand_cr_prime_bound(mu, kB);
    EXPECT_LE(expected_ratio_cr(*mom, law), bound + 1e-6)
        << "mean=" << mean;
  }
}

TEST(MomRandBoundTest, FormulaValues) {
  EXPECT_NEAR(mom_rand_cr_prime_bound(0.0, kB), 1.0, 1e-12);
  EXPECT_NEAR(mom_rand_cr_prime_bound(kB, kB),
              1.0 + 1.0 / (2.0 * (util::kE - 2.0)), 1e-12);
}

TEST(MomRandBoundTest, InvalidInputsThrow) {
  EXPECT_THROW(mom_rand_cr_prime_bound(-1.0, kB), std::invalid_argument);
  EXPECT_THROW(mom_rand_cr_prime_bound(1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::analysis
