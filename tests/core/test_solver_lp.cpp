#include "core/solver_lp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/math.h"

namespace idlered::core {
namespace {

constexpr double kB = 28.0;

dist::ShortStopStats make_stats(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

TEST(LpCoefficientsTest, KValuesAreVertexCostDeltas) {
  const auto s = make_stats(0.2, 0.3);
  const auto k = lp_coefficients(s, kB);
  EXPECT_NEAR(k.constant, worst_case_cost_nrand(s, kB), 1e-12);
  EXPECT_NEAR(k.k_alpha, worst_case_cost_toi(s, kB) - k.constant, 1e-12);
  EXPECT_NEAR(k.k_beta, worst_case_cost_det(s, kB) - k.constant, 1e-12);
  EXPECT_NEAR(k.k_gamma, worst_case_cost_b_det(s, kB) - k.constant, 1e-9);
}

TEST(LpCoefficientsTest, KGammaInfiniteWhenBDetInfeasible) {
  const auto k = lp_coefficients(make_stats(0.5, 0.02), kB);
  EXPECT_TRUE(std::isinf(k.k_gamma));
}

TEST(LpSolverTest, MassesFormADistribution) {
  const auto sol = solve_constrained_lp(make_stats(0.3, 0.4), kB);
  EXPECT_GE(sol.alpha, -1e-9);
  EXPECT_GE(sol.beta, -1e-9);
  EXPECT_GE(sol.gamma, -1e-9);
  EXPECT_LE(sol.alpha + sol.beta + sol.gamma, 1.0 + 1e-9);
}

TEST(LpSolverTest, ToiRegion) {
  const auto sol = solve_constrained_lp(make_stats(0.01, 0.95), kB);
  EXPECT_EQ(sol.strategy, Strategy::kToi);
  EXPECT_NEAR(sol.alpha, 1.0, 1e-9);
}

TEST(LpSolverTest, DetRegion) {
  const auto sol = solve_constrained_lp(make_stats(0.5, 0.02), kB);
  EXPECT_EQ(sol.strategy, Strategy::kDet);
  EXPECT_NEAR(sol.beta, 1.0, 1e-9);
}

TEST(LpSolverTest, BDetRegion) {
  const auto sol = solve_constrained_lp(make_stats(0.02, 0.3), kB);
  EXPECT_EQ(sol.strategy, Strategy::kBDet);
  EXPECT_NEAR(sol.gamma, 1.0, 1e-9);
  EXPECT_GT(sol.b, 0.0);
}

TEST(LpSolverTest, NRandRegion) {
  const auto sol = solve_constrained_lp(make_stats(0.15, 0.35), kB);
  EXPECT_EQ(sol.strategy, Strategy::kNRand);
  EXPECT_NEAR(sol.alpha + sol.beta + sol.gamma, 0.0, 1e-9);
}

// Property: the LP path and the closed-form vertex enumeration must agree on
// the optimal cost everywhere, and on the winning vertex wherever the
// optimum is unique.
class LpAgreementSweep : public ::testing::TestWithParam<double> {};

TEST_P(LpAgreementSweep, MatchesClosedForm) {
  const double q = GetParam();
  for (double mu_frac : util::linspace(0.01, 0.95, 40)) {
    const auto s = make_stats(mu_frac, q);
    if (!s.feasible(kB)) continue;
    const auto lp_sol = solve_constrained_lp(s, kB);
    const auto closed = choose_strategy(s, kB);
    EXPECT_NEAR(lp_sol.expected_cost, closed.expected_cost,
                1e-8 * (1.0 + closed.expected_cost))
        << "mu_frac=" << mu_frac << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(QSweep, LpAgreementSweep,
                         ::testing::Values(0.02, 0.1, 0.2, 0.3, 0.4, 0.5,
                                           0.7, 0.9));

TEST(LpSolverTest, InfeasibleStatsThrow) {
  EXPECT_THROW(solve_constrained_lp(make_stats(0.9, 0.5), kB),
               std::invalid_argument);
}

}  // namespace
}  // namespace idlered::core
