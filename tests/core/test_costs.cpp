#include "core/costs.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace idlered::core {
namespace {

constexpr double kB = 28.0;

TEST(OfflineCostTest, ShortStopCostsItsLength) {
  EXPECT_DOUBLE_EQ(offline_cost(10.0, kB), 10.0);
  EXPECT_DOUBLE_EQ(offline_cost(0.0, kB), 0.0);
}

TEST(OfflineCostTest, LongStopCostsB) {
  EXPECT_DOUBLE_EQ(offline_cost(28.0, kB), kB);
  EXPECT_DOUBLE_EQ(offline_cost(1000.0, kB), kB);
}

TEST(OfflineCostTest, NegativeStopThrows) {
  EXPECT_THROW(offline_cost(-1.0, kB), std::invalid_argument);
}

TEST(OnlineCostTest, StopEndsBeforeThreshold) {
  EXPECT_DOUBLE_EQ(online_cost(20.0, 10.0, kB), 10.0);
}

TEST(OnlineCostTest, ThresholdReachedPaysRestart) {
  EXPECT_DOUBLE_EQ(online_cost(10.0, 20.0, kB), 10.0 + kB);
}

TEST(OnlineCostTest, BoundaryYEqualsXPaysRestart) {
  // Eq. (3): y >= x -> x + B.
  EXPECT_DOUBLE_EQ(online_cost(10.0, 10.0, kB), 10.0 + kB);
}

TEST(OnlineCostTest, ToiAlwaysPaysB) {
  EXPECT_DOUBLE_EQ(online_cost(0.0, 0.5, kB), kB);
  EXPECT_DOUBLE_EQ(online_cost(0.0, 500.0, kB), kB);
}

TEST(OnlineCostTest, InvalidArgumentsThrow) {
  EXPECT_THROW(online_cost(-1.0, 5.0, kB), std::invalid_argument);
  EXPECT_THROW(online_cost(5.0, -1.0, kB), std::invalid_argument);
}

TEST(CompetitiveRatioTest, DetWorstCaseIsTwo) {
  // DET (x = B) against y = B: online pays 2B, offline pays B.
  EXPECT_DOUBLE_EQ(competitive_ratio(kB, kB, kB), 2.0);
}

TEST(CompetitiveRatioTest, DetNeverExceedsTwo) {
  for (double y : {0.1, 1.0, 10.0, 27.9, 28.0, 29.0, 100.0, 1e6}) {
    EXPECT_LE(competitive_ratio(kB, y, kB), 2.0 + 1e-12) << "y=" << y;
  }
}

TEST(CompetitiveRatioTest, PerfectForShortStopsUnderDet) {
  EXPECT_DOUBLE_EQ(competitive_ratio(kB, 5.0, kB), 1.0);
}

TEST(CompetitiveRatioTest, ToiUnboundedNearZero) {
  EXPECT_GT(competitive_ratio(0.0, 0.001, kB), 1000.0);
}

TEST(CompetitiveRatioTest, ZeroStopConventions) {
  // x > 0 with y = 0: both costs zero -> ratio 1.
  EXPECT_DOUBLE_EQ(competitive_ratio(5.0, 0.0, kB), 1.0);
  // x = 0 with y = 0: online pays B, offline 0 -> infinite ratio.
  EXPECT_TRUE(std::isinf(competitive_ratio(0.0, 0.0, kB)));
}

TEST(RequireValidBreakEvenTest, RejectsBadValues) {
  EXPECT_THROW(require_valid_break_even(0.0), std::invalid_argument);
  EXPECT_THROW(require_valid_break_even(-3.0), std::invalid_argument);
  EXPECT_THROW(require_valid_break_even(
                   std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_NO_THROW(require_valid_break_even(28.0));
}

}  // namespace
}  // namespace idlered::core
