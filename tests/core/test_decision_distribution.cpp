#include "core/decision_distribution.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/policies.h"
#include "core/proposed.h"
#include "stats/ks_test.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered::core {
namespace {

constexpr double kB = 28.0;

dist::ShortStopStats make_stats(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

TEST(DecisionDistributionTest, PureToiAtom) {
  DecisionDistribution p(kB, {{0.0, 1.0}}, 0.0);
  EXPECT_DOUBLE_EQ(p.expected_cost(100.0), kB);
  EXPECT_DOUBLE_EQ(p.expected_cost(0.5), kB);
  EXPECT_TRUE(p.deterministic());
}

TEST(DecisionDistributionTest, PureDetAtom) {
  DecisionDistribution p(kB, {{kB, 1.0}}, 0.0);
  const auto det = make_det(kB);
  for (double y : {1.0, 20.0, 28.0, 90.0}) {
    EXPECT_DOUBLE_EQ(p.expected_cost(y), det->expected_cost(y));
  }
}

TEST(DecisionDistributionTest, PureContinuousIsNRand) {
  DecisionDistribution p(kB, {}, 1.0);
  const auto nrand = make_n_rand(kB);
  for (double y : {1.0, 14.0, 27.0, 28.0, 200.0}) {
    EXPECT_NEAR(p.expected_cost(y), nrand->expected_cost(y), 1e-12);
  }
  EXPECT_FALSE(p.deterministic());
}

TEST(DecisionDistributionTest, MixedCostIsWeightedSum) {
  DecisionDistribution p(kB, {{0.0, 0.3}, {kB, 0.2}}, 0.5);
  const double y = 15.0;
  const double expected = 0.3 * kB + 0.2 * y +
                          0.5 * util::kEOverEMinus1 * y;
  EXPECT_NEAR(p.expected_cost(y), expected, 1e-12);
}

TEST(DecisionDistributionTest, MassValidation) {
  EXPECT_THROW(DecisionDistribution(kB, {{0.0, 0.5}}, 0.0),
               std::invalid_argument);  // doesn't sum to 1
  EXPECT_THROW(DecisionDistribution(kB, {{0.0, -0.1}}, 1.1),
               std::invalid_argument);  // negative atom
  EXPECT_THROW(DecisionDistribution(kB, {{kB + 1.0, 1.0}}, 0.0),
               std::invalid_argument);  // atom beyond B (Appendix A)
}

TEST(DecisionDistributionTest, CdfSteps) {
  DecisionDistribution p(kB, {{0.0, 0.25}, {10.0, 0.25}}, 0.5);
  EXPECT_NEAR(p.cdf(0.0), 0.25 + 0.5 * 0.0, 1e-12);
  EXPECT_GT(p.cdf(10.0), 0.5);  // both atoms + some continuous mass
  EXPECT_NEAR(p.cdf(kB), 1.0, 1e-12);
}

TEST(DecisionDistributionTest, SamplingMatchesCdf) {
  DecisionDistribution p(kB, {{0.0, 0.2}, {kB, 0.3}}, 0.5);
  util::Rng rng(5);
  int at_zero = 0;
  int at_b = 0;
  std::vector<double> continuous_draws;
  for (int i = 0; i < 20000; ++i) {
    const double x = p.sample_threshold(rng);
    if (x == 0.0) ++at_zero;
    else if (x == kB) ++at_b;
    else continuous_draws.push_back(x);
  }
  EXPECT_NEAR(at_zero / 20000.0, 0.2, 0.01);
  // N-Rand's inverse CDF can also return exactly B only at u == 1; the
  // atom dominates the count at B.
  EXPECT_NEAR(at_b / 20000.0, 0.3, 0.01);
  // The continuous residue follows the N-Rand law.
  NRandPolicy nrand(kB);
  const auto ks = stats::ks_test(
      continuous_draws, [&nrand](double x) { return nrand.cdf(x); });
  EXPECT_FALSE(ks.reject_at(0.01));
}

TEST(DecisionDistributionTest, FromLpSolutionMatchesProposedPolicy) {
  // For every statistics point, the mixed distribution built from the LP
  // must behave exactly like the vertex the proposed policy selects.
  for (auto [mu_frac, q] : {std::pair{0.01, 0.95}, std::pair{0.5, 0.02},
                            std::pair{0.02, 0.3}, std::pair{0.15, 0.35}}) {
    const auto s = make_stats(mu_frac, q);
    const auto mixed = DecisionDistribution::optimal(kB, s);
    ProposedPolicy vertex(kB, s);
    for (double y : {0.5, 5.0, 15.0, 27.0, 28.0, 100.0}) {
      EXPECT_NEAR(mixed.expected_cost(y), vertex.expected_cost(y), 1e-9)
          << "mu=" << mu_frac << " q=" << q << " y=" << y;
    }
  }
}

TEST(DecisionDistributionTest, OptimalIsVertexConcentrated) {
  // Section 4.4: the LP optimum sits at a simplex vertex, so the optimal
  // P(x) has all mass in exactly one component.
  const auto toi_like = DecisionDistribution::optimal(kB, make_stats(0.01,
                                                                     0.95));
  EXPECT_EQ(toi_like.atoms().size(), 1u);
  EXPECT_NEAR(toi_like.atoms()[0].mass, 1.0, 1e-9);
  EXPECT_NEAR(toi_like.continuous_mass(), 0.0, 1e-9);

  const auto nrand_like =
      DecisionDistribution::optimal(kB, make_stats(0.15, 0.35));
  EXPECT_TRUE(nrand_like.atoms().empty());
  EXPECT_NEAR(nrand_like.continuous_mass(), 1.0, 1e-9);
}

TEST(DecisionDistributionTest, AtomsSortedByThreshold) {
  DecisionDistribution p(kB, {{kB, 0.5}, {0.0, 0.5}}, 0.0);
  ASSERT_EQ(p.atoms().size(), 2u);
  EXPECT_LT(p.atoms()[0].threshold, p.atoms()[1].threshold);
}

}  // namespace
}  // namespace idlered::core
