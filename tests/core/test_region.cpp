#include "core/region.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "util/math.h"

namespace idlered::core {
namespace {

constexpr double kB = 28.0;

TEST(RegionMapTest, GridDimensions) {
  const auto cells = compute_region_map(kB, 10, 8);
  EXPECT_EQ(cells.size(), 80u);
}

TEST(RegionMapTest, FeasibilityDiagonal) {
  // Cells with mu_frac + q > 1 are infeasible (mu <= B(1-q)).
  for (const auto& c : compute_region_map(kB, 20, 20)) {
    const bool expected = c.mu_fraction <= (1.0 - c.q_b_plus) + 1e-12;
    EXPECT_EQ(c.feasible, expected)
        << "mu_frac=" << c.mu_fraction << " q=" << c.q_b_plus;
  }
}

TEST(RegionMapTest, AllFourStrategiesAppear) {
  // Figure 1(a) shows all four regions; a reasonably fine grid must hit each.
  std::set<Strategy> seen;
  for (const auto& c : compute_region_map(kB, 60, 60)) {
    if (c.feasible) seen.insert(c.strategy);
  }
  EXPECT_TRUE(seen.count(Strategy::kToi));
  EXPECT_TRUE(seen.count(Strategy::kDet));
  EXPECT_TRUE(seen.count(Strategy::kBDet));
  EXPECT_TRUE(seen.count(Strategy::kNRand));
}

TEST(RegionMapTest, CrBounds) {
  for (const auto& c : compute_region_map(kB, 30, 30)) {
    if (!c.feasible) continue;
    EXPECT_GE(c.cr, 1.0 - 1e-9);
    EXPECT_LE(c.cr, util::kEOverEMinus1 + 1e-9);
  }
}

TEST(RegionMapTest, RenderUsesExpectedSymbols) {
  const auto cells = compute_region_map(kB, 30, 30);
  const std::string art = render_region_map(cells, 30, 30);
  EXPECT_NE(art.find('T'), std::string::npos);
  EXPECT_NE(art.find('D'), std::string::npos);
  EXPECT_NE(art.find('N'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);  // infeasible corner
}

TEST(ProjectionTest, ProposedIsLowerEnvelope) {
  for (double mu_frac : {0.02, 0.05, 0.3, 0.6}) {
    for (const auto& p : compute_projection(kB, mu_frac, 50)) {
      const double min_other =
          std::min(std::min(p.cr_nrand, p.cr_toi),
                   std::min(p.cr_det, p.cr_b_det));
      EXPECT_NEAR(p.cr_proposed, min_other, 1e-9)
          << "mu_frac=" << mu_frac << " q=" << p.q_b_plus;
    }
  }
}

TEST(ProjectionTest, SkipsInfeasiblePoints) {
  // At mu_frac = 0.6, q > 0.4 is infeasible.
  const auto pts = compute_projection(kB, 0.6, 100);
  for (const auto& p : pts) EXPECT_LE(p.q_b_plus, 0.4 + 1e-9);
  EXPECT_FALSE(pts.empty());
}

TEST(ProjectionTest, BDetImprovementVisibleAtTinyMu) {
  // Figure 2(c): at mu = 0.02 B there must exist q where b-DET strictly
  // beats both N-Rand and DET and TOI.
  bool improvement = false;
  for (const auto& p : compute_projection(kB, 0.02, 200)) {
    if (p.winner == Strategy::kBDet &&
        p.cr_b_det < p.cr_nrand - 1e-9 && p.cr_b_det < p.cr_det - 1e-9 &&
        p.cr_b_det < p.cr_toi - 1e-9) {
      improvement = true;
      break;
    }
  }
  EXPECT_TRUE(improvement);
}

TEST(ProjectionTest, ToiWinsAsQApproachesOne) {
  const auto pts = compute_projection(kB, 0.001, 200);
  ASSERT_FALSE(pts.empty());
  EXPECT_EQ(pts.back().winner, Strategy::kToi);
}

TEST(ProjectionTest, DetWinsAsQApproachesZero) {
  const auto pts = compute_projection(kB, 0.3, 400);
  ASSERT_FALSE(pts.empty());
  EXPECT_EQ(pts.front().winner, Strategy::kDet);
}

}  // namespace
}  // namespace idlered::core
