#include "core/crand.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/adversary.h"
#include "core/policies.h"
#include "stats/ks_test.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered::core {
namespace {

constexpr double kB = 28.0;

dist::ShortStopStats make_stats(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

// ------------------------------------------------------------ policy basics

TEST(CRandTest, PdfIntegratesToOne) {
  CRandPolicy p(kB, 10.0);
  const double total =
      util::integrate([&p](double x) { return p.pdf(x); }, 0.0, 10.0, 1e-11);
  EXPECT_NEAR(total, 1.0, 1e-8);
  EXPECT_DOUBLE_EQ(p.pdf(10.5), 0.0);  // no mass beyond c
}

TEST(CRandTest, EqualizerWithTruncatedSlope) {
  // E[cost](y) = kappa min(y, c); cross-check against the quadrature oracle.
  CRandPolicy p(kB, 10.0);
  GenericRandomizedPolicy oracle(kB, [&p](double x) { return p.pdf(x); },
                                 "oracle");
  for (double y : {1.0, 5.0, 9.9, 10.0, 20.0, 100.0}) {
    EXPECT_NEAR(p.expected_cost(y), oracle.expected_cost(y), 1e-6)
        << "y=" << y;
    EXPECT_NEAR(p.expected_cost(y), p.kappa() * std::min(y, 10.0), 1e-12);
  }
}

TEST(CRandTest, FullTruncationIsNRand) {
  CRandPolicy p(kB, kB);
  NRandPolicy nrand(kB);
  for (double y : {2.0, 14.0, 27.0, 28.0, 200.0}) {
    EXPECT_NEAR(p.expected_cost(y), nrand.expected_cost(y), 1e-12);
    EXPECT_NEAR(p.pdf(y < kB ? y : 20.0), nrand.pdf(y < kB ? y : 20.0),
                1e-12);
  }
}

TEST(CRandTest, TinyTruncationApproachesToi) {
  // c -> 0: pays ~B on every stop (the TOI limit).
  CRandPolicy p(kB, 0.01);
  EXPECT_NEAR(p.expected_cost(100.0), kB, 0.1);
}

TEST(CRandTest, SampledThresholdsFollowCdf) {
  CRandPolicy p(kB, 12.0);
  util::Rng rng(7);
  std::vector<double> draws;
  for (int i = 0; i < 5000; ++i) {
    const double x = p.sample_threshold(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 12.0);
    draws.push_back(x);
  }
  const auto ks = stats::ks_test(draws, [&p](double x) { return p.cdf(x); });
  EXPECT_FALSE(ks.reject_at(0.01));
}

TEST(CRandTest, InvalidTruncationThrows) {
  EXPECT_THROW(CRandPolicy(kB, 0.0), std::invalid_argument);
  EXPECT_THROW(CRandPolicy(kB, kB + 1.0), std::invalid_argument);
}

// ------------------------------------------------------- worst-case formula

TEST(CRandWorstCaseTest, MatchesAdversaryLp) {
  for (auto [mu_frac, q, c] :
       {std::tuple{0.02, 0.3, 9.7}, std::tuple{0.1, 0.4, 15.0},
        std::tuple{0.3, 0.2, 20.0}, std::tuple{0.05, 0.6, 8.0}}) {
    const auto s = make_stats(mu_frac, q);
    const double closed = worst_case_cost_c_rand(s, kB, c);
    analysis::AdversaryOptions opt;
    opt.grid_short = 1200;
    opt.extra_short_points = {c, c * (1.0 - 1e-9)};
    const auto lp =
        analysis::worst_case_adversary(*make_c_rand(kB, c), s, opt);
    EXPECT_NEAR(lp.expected_cost, closed, 1e-3 * closed)
        << "mu=" << mu_frac << " q=" << q << " c=" << c;
  }
}

TEST(CRandWorstCaseTest, EndpointsRecoverClassics) {
  const auto s = make_stats(0.2, 0.3);
  EXPECT_NEAR(worst_case_cost_c_rand(s, kB, kB),
              worst_case_cost_nrand(s, kB), 1e-9);
  // c -> 0 approaches TOI's B.
  EXPECT_NEAR(worst_case_cost_c_rand(s, kB, 1e-7), kB, 1e-3);
}

TEST(CRandWorstCaseTest, ShortMassBranch) {
  // When mu > c (1 - q) the adversary cannot park all its short budget at
  // c; the formula switches branch.
  const auto s = make_stats(0.5, 0.3);  // mu = 14
  const double c = 10.0;                // c (1-q) = 7 < 14
  const double ec = std::exp(c / kB);
  EXPECT_NEAR(worst_case_cost_c_rand(s, kB, c),
              ec / (ec - 1.0) * (7.0 + 0.3 * 10.0), 1e-12);
}

// ----------------------------------------------- the reproduction finding

TEST(CRandFindingTest, BeatsAllPaperVerticesAtTinyMu) {
  // The headline counterexample: at mu = 0.02 B, q = 0.3 the optimal
  // truncation beats the paper's best vertex (b-DET at 13.2977) by ~11%.
  const auto s = make_stats(0.02, 0.3);
  const auto ext = choose_strategy_extended(s, kB);
  EXPECT_TRUE(ext.uses_c_rand);
  EXPECT_LT(ext.expected_cost, ext.classic.expected_cost - 1.0);
  EXPECT_NEAR(ext.expected_cost, 11.85, 0.05);
  EXPECT_NEAR(ext.c, 9.7, 0.3);
  EXPECT_GT(ext.improvement, 1.0);
}

TEST(CRandFindingTest, OptimalTruncationStationarity) {
  // Interior optima satisfy e^t - t = 1 + mu/(q B), t = c*/B (derivative
  // of kappa(c)(mu + q c) in the mu < c(1-q) branch).
  const auto s = make_stats(0.02, 0.3);
  const double c_star = c_rand_optimal_truncation(s, kB);
  const double t = c_star / kB;
  EXPECT_NEAR(std::exp(t) - t,
              1.0 + s.mu_b_minus / (s.q_b_plus * kB), 1e-5);
}

TEST(CRandFindingTest, NeverWorseThanClassicAnywhere) {
  // Extended choice <= classic choice across the feasible plane, and the
  // improvement region is nonempty.
  int improved = 0;
  for (double mu_frac : util::linspace(0.01, 0.9, 25)) {
    for (double q : util::linspace(0.01, 0.9, 25)) {
      const auto s = make_stats(mu_frac, q);
      if (!s.feasible(kB)) continue;
      const auto ext = choose_strategy_extended(s, kB);
      EXPECT_LE(ext.expected_cost,
                ext.classic.expected_cost + 1e-9)
          << "mu=" << mu_frac << " q=" << q;
      if (ext.uses_c_rand) ++improved;
    }
  }
  EXPECT_GT(improved, 10);
}

TEST(CRandFindingTest, ClassicRegionsSurvive) {
  // Where DET or TOI is truly optimal, the extension changes nothing.
  const auto det_region = choose_strategy_extended(make_stats(0.5, 0.02), kB);
  EXPECT_FALSE(det_region.uses_c_rand);
  EXPECT_DOUBLE_EQ(det_region.improvement, 0.0);

  const auto toi_region = choose_strategy_extended(make_stats(0.01, 0.95), kB);
  // TOI is the c->0 limit of c-Rand; any interior c is at best equal.
  EXPECT_LE(toi_region.expected_cost,
            toi_region.classic.expected_cost + 1e-9);
}

TEST(CRandFindingTest, ExtendedCrBounded) {
  for (double mu_frac : {0.02, 0.1, 0.3}) {
    for (double q : {0.1, 0.3, 0.6}) {
      const auto s = make_stats(mu_frac, q);
      if (!s.feasible(kB)) continue;
      const auto ext = choose_strategy_extended(s, kB);
      EXPECT_GE(ext.cr, 1.0 - 1e-9);
      EXPECT_LE(ext.cr, util::kEOverEMinus1 + 1e-9);
    }
  }
}

}  // namespace
}  // namespace idlered::core
