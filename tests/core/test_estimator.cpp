#include "core/estimator.h"

#include <gtest/gtest.h>

#include "dist/parametric.h"
#include "util/random.h"

namespace idlered::core {
namespace {

constexpr double kB = 28.0;

TEST(StatsEstimatorTest, ExactOnKnownStream) {
  StatsEstimator e(kB);
  e.observe(5.0);
  e.observe(10.0);
  e.observe(30.0);
  e.observe(50.0);
  const auto s = e.stats();
  EXPECT_DOUBLE_EQ(s.mu_b_minus, 15.0 / 4.0);
  EXPECT_DOUBLE_EQ(s.q_b_plus, 0.5);
  EXPECT_EQ(e.count(), 4u);
}

TEST(StatsEstimatorTest, BoundaryCountsAsLong) {
  StatsEstimator e(kB);
  e.observe(kB);
  EXPECT_DOUBLE_EQ(e.stats().q_b_plus, 1.0);
  EXPECT_DOUBLE_EQ(e.stats().mu_b_minus, 0.0);
}

TEST(StatsEstimatorTest, EmptyThrows) {
  StatsEstimator e(kB);
  EXPECT_FALSE(e.has_observations());
  EXPECT_THROW(e.stats(), std::logic_error);
}

TEST(StatsEstimatorTest, NegativeStopThrows) {
  StatsEstimator e(kB);
  EXPECT_THROW(e.observe(-1.0), std::invalid_argument);
}

TEST(StatsEstimatorTest, ConvergesToTrueStatistics) {
  dist::Exponential law(20.0);
  const auto truth = dist::ShortStopStats::from_distribution(law, kB);
  util::Rng rng(31);
  StatsEstimator e(kB);
  for (int i = 0; i < 100000; ++i) e.observe(law.sample(rng));
  EXPECT_NEAR(e.stats().mu_b_minus, truth.mu_b_minus, 0.15);
  EXPECT_NEAR(e.stats().q_b_plus, truth.q_b_plus, 0.01);
}

TEST(StatsEstimatorTest, EstimateAlwaysFeasible) {
  util::Rng rng(32);
  StatsEstimator e(kB);
  dist::Pareto law(5.0, 1.3);
  for (int i = 0; i < 1000; ++i) {
    e.observe(law.sample(rng));
    EXPECT_TRUE(e.stats().feasible(kB)) << "after " << i + 1 << " stops";
  }
}

TEST(DecayingEstimatorTest, LambdaOneMatchesFullHistory) {
  util::Rng rng(33);
  StatsEstimator full(kB);
  DecayingStatsEstimator decaying(kB, 1.0);
  dist::Exponential law(25.0);
  for (int i = 0; i < 5000; ++i) {
    const double y = law.sample(rng);
    full.observe(y);
    decaying.observe(y);
  }
  EXPECT_NEAR(decaying.stats().mu_b_minus, full.stats().mu_b_minus, 1e-9);
  EXPECT_NEAR(decaying.stats().q_b_plus, full.stats().q_b_plus, 1e-9);
}

TEST(DecayingEstimatorTest, TracksRegimeShift) {
  // Traffic shifts from short stops to long stops; a forgetting estimator
  // must follow while the full-history one lags.
  util::Rng rng(34);
  DecayingStatsEstimator decaying(kB, 0.95);
  StatsEstimator full(kB);
  dist::Exponential calm(8.0);
  dist::Exponential jammed(120.0);
  for (int i = 0; i < 2000; ++i) {
    const double y = calm.sample(rng);
    decaying.observe(y);
    full.observe(y);
  }
  for (int i = 0; i < 200; ++i) {
    const double y = jammed.sample(rng);
    decaying.observe(y);
    full.observe(y);
  }
  const auto truth = dist::ShortStopStats::from_distribution(jammed, kB);
  EXPECT_NEAR(decaying.stats().q_b_plus, truth.q_b_plus, 0.1);
  EXPECT_LT(full.stats().q_b_plus, decaying.stats().q_b_plus);
}

TEST(DecayingEstimatorTest, EffectiveWindow) {
  EXPECT_NEAR(DecayingStatsEstimator(kB, 0.99).effective_window(), 100.0,
              1e-9);
  EXPECT_TRUE(std::isinf(
      DecayingStatsEstimator(kB, 1.0).effective_window()));
}

TEST(DecayingEstimatorTest, InvalidLambdaThrows) {
  EXPECT_THROW(DecayingStatsEstimator(kB, 0.0), std::invalid_argument);
  EXPECT_THROW(DecayingStatsEstimator(kB, 1.5), std::invalid_argument);
}

TEST(DecayingEstimatorTest, EmptyThrows) {
  DecayingStatsEstimator e(kB, 0.9);
  EXPECT_FALSE(e.has_observations());
  EXPECT_THROW(e.stats(), std::logic_error);
}

TEST(DecayingEstimatorTest, EstimateAlwaysFeasible) {
  util::Rng rng(36);
  DecayingStatsEstimator e(kB, 0.9);
  dist::LogNormal law(3.0, 1.2);
  for (int i = 0; i < 500; ++i) {
    e.observe(law.sample(rng));
    EXPECT_TRUE(e.stats().feasible(kB));
  }
}

}  // namespace
}  // namespace idlered::core
