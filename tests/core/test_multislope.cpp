#include "core/multislope.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/random.h"

namespace idlered::core {
namespace {

constexpr double kB = 28.0;

MultislopeInstance vehicle3() {
  // idle (rate 1) / engine off + HVAC (rate 0.3, cost 15) / deep off
  // (rate 0, cost 35). Breakpoints: 15/0.7 = 21.43, 20/0.3 = 66.67.
  return three_state_vehicle(0.3, 15.0, 35.0);
}

// ------------------------------------------------------------------ instance

TEST(MultislopeInstanceTest, ClassicReducesToSkiRental) {
  const auto inst = MultislopeInstance::classic(kB);
  EXPECT_EQ(inst.num_states(), 2u);
  EXPECT_DOUBLE_EQ(inst.offline_cost(10.0), 10.0);
  EXPECT_DOUBLE_EQ(inst.offline_cost(100.0), kB);
  ASSERT_EQ(inst.breakpoints().size(), 1u);
  EXPECT_DOUBLE_EQ(inst.breakpoints()[0], kB);
}

TEST(MultislopeInstanceTest, OfflineEnvelope) {
  const auto inst = vehicle3();
  // y = 10: idling is cheapest (10 < 15 + 3 < 35).
  EXPECT_DOUBLE_EQ(inst.offline_cost(10.0), 10.0);
  EXPECT_EQ(inst.offline_state(10.0), 0u);
  // y = 40: HVAC state: 15 + 12 = 27 < min(40, 35).
  EXPECT_DOUBLE_EQ(inst.offline_cost(40.0), 27.0);
  EXPECT_EQ(inst.offline_state(40.0), 1u);
  // y = 100: deep off: 35 < 15 + 30 = 45 < 100.
  EXPECT_DOUBLE_EQ(inst.offline_cost(100.0), 35.0);
  EXPECT_EQ(inst.offline_state(100.0), 2u);
}

TEST(MultislopeInstanceTest, BreakpointValues) {
  const auto inst = vehicle3();
  ASSERT_EQ(inst.breakpoints().size(), 2u);
  EXPECT_NEAR(inst.breakpoints()[0], 15.0 / 0.7, 1e-12);
  EXPECT_NEAR(inst.breakpoints()[1], 20.0 / 0.3, 1e-12);
}

TEST(MultislopeInstanceTest, InvalidInstancesRejected) {
  // Nonzero initial cost.
  EXPECT_THROW(MultislopeInstance({{1.0, 1.0}, {5.0, 0.0}}),
               std::invalid_argument);
  // Rates not decreasing.
  EXPECT_THROW(MultislopeInstance({{0.0, 1.0}, {5.0, 1.0}}),
               std::invalid_argument);
  // Costs not increasing.
  EXPECT_THROW(MultislopeInstance({{0.0, 1.0}, {5.0, 0.5}, {4.0, 0.1}}),
               std::invalid_argument);
  // Single state.
  EXPECT_THROW(MultislopeInstance({{0.0, 1.0}}), std::invalid_argument);
  // Middle state never on the envelope (breakpoints collapse).
  EXPECT_THROW(MultislopeInstance({{0.0, 1.0}, {100.0, 0.5}, {101.0, 0.4}}),
               std::invalid_argument);
}

// ------------------------------------------------------------------ schedule

TEST(ScheduleTest, ClassicEnvelopeFollowerIsDet) {
  const auto inst = MultislopeInstance::classic(kB);
  const auto det = envelope_follower(inst);
  EXPECT_DOUBLE_EQ(det.online_cost(10.0), 10.0);
  EXPECT_DOUBLE_EQ(det.online_cost(kB), 2.0 * kB);  // y >= t: pays switch
  EXPECT_DOUBLE_EQ(det.online_cost(100.0), 2.0 * kB);
  EXPECT_NEAR(det.worst_case_cr(), 2.0, 1e-6);
}

TEST(ScheduleTest, ClassicImmediateIsToi) {
  const auto inst = MultislopeInstance::classic(kB);
  const auto toi = immediate_deepest(inst);
  EXPECT_DOUBLE_EQ(toi.online_cost(0.5), kB);
  EXPECT_DOUBLE_EQ(toi.online_cost(500.0), kB);
  EXPECT_TRUE(std::isinf(toi.worst_case_cr()));
}

TEST(ScheduleTest, ClassicNeverIsNev) {
  const auto inst = MultislopeInstance::classic(kB);
  const auto nev = never_switch(inst);
  EXPECT_DOUBLE_EQ(nev.online_cost(500.0), 500.0);
  EXPECT_TRUE(std::isinf(nev.worst_case_cr()));
}

TEST(ScheduleTest, ThreeStateEnvelopeCostAccounting) {
  const auto inst = vehicle3();
  const auto det = envelope_follower(inst);
  const double bp1 = inst.breakpoints()[0];  // 21.43
  const double bp2 = inst.breakpoints()[1];  // 66.67
  // Stop ends while still idling.
  EXPECT_DOUBLE_EQ(det.online_cost(10.0), 10.0);
  // Stop ends in the HVAC state: idle rent to bp1, switch cost 15, HVAC
  // rent afterwards.
  const double y = 40.0;
  EXPECT_NEAR(det.online_cost(y), 15.0 + bp1 + 0.3 * (y - bp1), 1e-12);
  // Deep state: full switch cost + all rents.
  const double z = 100.0;
  EXPECT_NEAR(det.online_cost(z), 35.0 + bp1 + 0.3 * (bp2 - bp1), 1e-12);
}

TEST(ScheduleTest, EnvelopeFollowerIsTwoCompetitiveOnRandomInstances) {
  // The rent paid along the envelope equals the offline cost, so
  // cr <= 2 always; verify across random valid instances.
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    // Build a random 3-4 state instance with increasing costs and
    // decreasing rates, retrying until the envelope is proper.
    std::vector<SlopeState> states{{0.0, 1.0}};
    double cost = 0.0;
    double rate = 1.0;
    const int extra = 2 + static_cast<int>(rng.uniform_int(0, 1));
    for (int i = 0; i < extra; ++i) {
      cost += rng.uniform(5.0, 40.0);
      rate *= rng.uniform(0.1, 0.7);
      if (i == extra - 1) rate = 0.0;
      states.push_back({cost, rate});
    }
    try {
      MultislopeInstance inst(states);
      const auto det = envelope_follower(inst);
      EXPECT_LE(det.worst_case_cr(), 2.0 + 1e-6) << "trial " << trial;
    } catch (const std::invalid_argument&) {
      continue;  // envelope degenerate; not a valid instance
    }
  }
}

TEST(ScheduleTest, InvalidSchedulesRejected) {
  const auto inst = vehicle3();
  EXPECT_THROW(Schedule(inst, {0.0, 5.0}, "short"), std::invalid_argument);
  EXPECT_THROW(Schedule(inst, {1.0, 2.0, 3.0}, "late-start"),
               std::invalid_argument);
  EXPECT_THROW(Schedule(inst, {0.0, 5.0, 4.0}, "decreasing"),
               std::invalid_argument);
}

// ---------------------------------------------------------------- randomized

TEST(RandomizedEnvelopeTest, ClassicMatchesNRandExpectedCost) {
  const auto inst = MultislopeInstance::classic(kB);
  // u ~ e^u/(e-1) scaled onto [0, B] is exactly N-Rand's threshold law, so
  // the expected cost must equalize at e/(e-1) * offline.
  for (double y : {5.0, 15.0, 27.0, 28.0, 80.0}) {
    EXPECT_NEAR(randomized_envelope_expected_cost(inst, y),
                util::kEOverEMinus1 * inst.offline_cost(y), 1e-5)
        << "y=" << y;
  }
}

TEST(RandomizedEnvelopeTest, BeatsDeterministicOnThreeStates) {
  const auto inst = vehicle3();
  const double randomized = randomized_envelope_worst_cr(inst);
  const double deterministic = envelope_follower(inst).worst_case_cr();
  EXPECT_LT(randomized, deterministic);
  EXPECT_LT(randomized, 2.0);
  // The scaled-envelope randomization equalizes at e/(e-1) (observed to
  // numerical precision); it can never beat that floor.
  EXPECT_NEAR(randomized, util::kEOverEMinus1, 1e-3);
}

TEST(RandomizedEnvelopeTest, DrawsAreScaledBreakpoints) {
  const auto inst = vehicle3();
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto sched = randomized_envelope(inst, rng);
    const auto& t = sched.switch_times();
    ASSERT_EQ(t.size(), 3u);
    const double u1 = t[1] / inst.breakpoints()[0];
    const double u2 = t[2] / inst.breakpoints()[1];
    EXPECT_NEAR(u1, u2, 1e-12);  // one scale factor for the whole schedule
    EXPECT_GE(u1, 0.0);
    EXPECT_LE(u1, 1.0);
  }
}

// ----------------------------------------------------------- vehicle builder

TEST(ThreeStateVehicleTest, DeeperStatesPayOffForLongerStops) {
  const auto inst = vehicle3();
  const auto det = envelope_follower(inst);
  const auto classic_det = envelope_follower(
      MultislopeInstance::classic(35.0));  // same deep-off cost, no HVAC tier
  // For stops in the HVAC sweet spot the 3-state controller is cheaper.
  const double y = 50.0;
  EXPECT_LT(det.online_cost(y), classic_det.online_cost(y));
}

TEST(ThreeStateVehicleTest, InvalidHvacRateRejected) {
  EXPECT_THROW(three_state_vehicle(0.0, 15.0, 35.0), std::invalid_argument);
  EXPECT_THROW(three_state_vehicle(1.0, 15.0, 35.0), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::core
