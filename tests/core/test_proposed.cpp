#include "core/proposed.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/policies.h"
#include "dist/adaptors.h"
#include "dist/mixture.h"
#include "dist/parametric.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered::core {
namespace {

constexpr double kB = 28.0;

dist::ShortStopStats make_stats(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

TEST(ProposedTest, DelegatesToChosenStrategy) {
  ProposedPolicy toi_like(kB, make_stats(0.01, 0.95));
  ASSERT_EQ(toi_like.choice().strategy, Strategy::kToi);
  EXPECT_DOUBLE_EQ(toi_like.expected_cost(100.0), kB);  // TOI behaviour
  EXPECT_TRUE(toi_like.deterministic());

  ProposedPolicy nrand_like(kB, make_stats(0.15, 0.35));
  ASSERT_EQ(nrand_like.choice().strategy, Strategy::kNRand);
  EXPECT_FALSE(nrand_like.deterministic());
  NRandPolicy nrand(kB);
  EXPECT_NEAR(nrand_like.expected_cost(10.0), nrand.expected_cost(10.0),
              1e-12);
}

TEST(ProposedTest, BDetDelegateUsesOptimalThreshold) {
  ProposedPolicy p(kB, make_stats(0.02, 0.3));
  ASSERT_EQ(p.choice().strategy, Strategy::kBDet);
  const double b = p.choice().b;
  // Just below b: cost y. At/above b: cost b + B.
  EXPECT_DOUBLE_EQ(p.expected_cost(b * 0.9), b * 0.9);
  EXPECT_DOUBLE_EQ(p.expected_cost(b + 1.0), b + kB);
}

TEST(ProposedTest, FromDistributionConstructor) {
  dist::Exponential q(20.0);
  ProposedPolicy p(kB, q);
  const auto expected = dist::ShortStopStats::from_distribution(q, kB);
  EXPECT_NEAR(p.stats().mu_b_minus, expected.mu_b_minus, 1e-12);
  EXPECT_NEAR(p.stats().q_b_plus, expected.q_b_plus, 1e-12);
}

TEST(ProposedTest, FromSampleConstructor) {
  const std::vector<double> sample{5.0, 10.0, 40.0, 80.0};
  ProposedPolicy p(kB, sample);
  EXPECT_DOUBLE_EQ(p.stats().mu_b_minus, 15.0 / 4.0);
  EXPECT_DOUBLE_EQ(p.stats().q_b_plus, 0.5);
}

TEST(ProposedTest, WorstCaseCrNeverAboveNRandBound) {
  for (double mu_frac : util::linspace(0.0, 0.95, 25)) {
    for (double q : util::linspace(0.0, 0.95, 25)) {
      const auto s = make_stats(mu_frac, q);
      if (!s.feasible(kB)) continue;
      ProposedPolicy p(kB, s);
      EXPECT_LE(p.worst_case_cr(), util::kEOverEMinus1 + 1e-9);
    }
  }
}

// The central guarantee: against *any* adversarial distribution consistent
// with the side statistics, the realized expected CR stays within the
// declared worst-case bound. Adversaries are two-point mixtures (short mass
// at a point s < B, long mass at L > B), which include the paper's
// worst-case constructions.
class AdversarialGuarantee
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(AdversarialGuarantee, RealizedCrWithinBound) {
  const double mu_frac = GetParam().first;
  const double q = GetParam().second;
  const auto s = make_stats(mu_frac, q);
  if (!s.feasible(kB)) GTEST_SKIP();
  ProposedPolicy p(kB, s);
  const double bound = p.worst_case_cr();

  // Sweep two-point adversaries consistent with (mu, q): the short stop sits
  // at s_pos with probability 1-q (so s_pos (1-q) = mu), except s_pos must
  // be < B; skip if not representable.
  if (q < 1.0) {
    const double s_pos = s.mu_b_minus / (1.0 - q);
    if (s_pos < kB) {
      for (double long_len : {kB, 2.0 * kB, 10.0 * kB}) {
        const double online =
            (1.0 - q) * p.expected_cost(s_pos) + q * p.expected_cost(long_len);
        const double offline = s.mu_b_minus + q * kB;
        if (offline > 0.0) {
          EXPECT_LE(online / offline, bound + 1e-9)
              << "adversary: short=" << s_pos << " long=" << long_len;
        }
      }
    }
  }

  // The paper's b-DET adversary: short stops at 0 or at the policy's own b.
  if (p.choice().strategy == Strategy::kBDet && q < 1.0) {
    const double b = p.choice().b;
    const double p_at_b = s.mu_b_minus / b;  // q2 in the paper
    if (p_at_b <= 1.0 - q + 1e-12) {
      const double p_at_0 = 1.0 - q - p_at_b;
      const double online = p_at_0 * p.expected_cost(0.0) +
                            p_at_b * p.expected_cost(b) +
                            q * p.expected_cost(3.0 * kB);
      const double offline = s.mu_b_minus + q * kB;
      EXPECT_LE(online / offline, bound + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdversarialGuarantee,
    ::testing::Values(std::make_pair(0.02, 0.3), std::make_pair(0.05, 0.2),
                      std::make_pair(0.15, 0.35), std::make_pair(0.3, 0.4),
                      std::make_pair(0.5, 0.05), std::make_pair(0.01, 0.9),
                      std::make_pair(0.4, 0.25), std::make_pair(0.1, 0.6)));

TEST(ProposedTest, FactoryMatchesClass) {
  const auto s = make_stats(0.3, 0.4);
  const auto p = make_proposed(kB, s);
  ProposedPolicy direct(kB, s);
  EXPECT_EQ(p->name(), "COA");
  EXPECT_NEAR(p->expected_cost(10.0), direct.expected_cost(10.0), 1e-12);
}

TEST(ProposedTest, SampleThresholdWithinSupport) {
  ProposedPolicy p(kB, make_stats(0.15, 0.35));  // N-Rand delegate
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double x = p.sample_threshold(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, kB);
  }
}

TEST(ProposedTest, RealDistributionEndToEnd) {
  // From a heavy-tailed stop law, the whole pipeline (stats -> choice ->
  // policy) must produce a CR within the worst-case bound when evaluated
  // against that very distribution.
  dist::Mixture law({{0.8, std::make_shared<dist::LogNormal>(
                               dist::LogNormal::from_mean_median(25.0, 15.0))},
                     {0.2, std::make_shared<dist::Pareto>(50.0, 1.7)}});
  ProposedPolicy p(kB, law);
  // Expected online and offline costs against the true law by quadrature +
  // analytic tail handling.
  const double online_body = util::integrate(
      [&](double y) { return p.expected_cost(y) * law.pdf(y); }, 1e-9, kB,
      1e-9);
  // For y >= B every policy's expected cost is constant in y.
  const double online_tail =
      law.tail_probability(kB) * p.expected_cost(2.0 * kB);
  const double offline =
      law.partial_expectation(kB) + law.tail_probability(kB) * kB;
  const double cr = (online_body + online_tail) / offline;
  EXPECT_LE(cr, p.worst_case_cr() + 1e-6);
  EXPECT_GE(cr, 1.0 - 1e-9);
}

}  // namespace
}  // namespace idlered::core
