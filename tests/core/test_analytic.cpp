#include "core/analytic.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/math.h"

namespace idlered::core {
namespace {

constexpr double kB = 28.0;
using util::kEOverEMinus1;

dist::ShortStopStats make_stats(double mu_frac, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu_frac * kB;
  s.q_b_plus = q;
  return s;
}

// ------------------------------------------------------- vertex cost formulas

TEST(VertexCostTest, NRandFormula) {
  const auto s = make_stats(0.3, 0.4);
  EXPECT_NEAR(worst_case_cost_nrand(s, kB),
              kEOverEMinus1 * (0.3 * kB + 0.4 * kB), 1e-12);
}

TEST(VertexCostTest, ToiIsAlwaysB) {
  EXPECT_DOUBLE_EQ(worst_case_cost_toi(make_stats(0.1, 0.1), kB), kB);
  EXPECT_DOUBLE_EQ(worst_case_cost_toi(make_stats(0.0, 1.0), kB), kB);
}

TEST(VertexCostTest, DetFormula) {
  const auto s = make_stats(0.3, 0.4);
  EXPECT_NEAR(worst_case_cost_det(s, kB), 0.3 * kB + 2.0 * 0.4 * kB, 1e-12);
}

TEST(VertexCostTest, BDetFormulaAtOptimum) {
  const auto s = make_stats(0.05, 0.1);
  ASSERT_TRUE(b_det_feasible(s, kB));
  const double root = std::sqrt(0.05 * kB) + std::sqrt(0.1 * kB);
  EXPECT_NEAR(worst_case_cost_b_det(s, kB), root * root, 1e-12);
}

TEST(VertexCostTest, BDetOptimalThresholdFormula) {
  const auto s = make_stats(0.05, 0.1);
  EXPECT_NEAR(b_det_optimal_threshold(s, kB),
              std::sqrt(0.05 * kB * kB / 0.1), 1e-12);
}

TEST(VertexCostTest, BDetOptimumMinimizesSweep) {
  // The closed-form b* must beat every other b on the eq. (34) objective.
  const auto s = make_stats(0.05, 0.1);
  const double best = worst_case_cost_b_det(s, kB);
  for (double b : util::linspace(0.5, kB, 100)) {
    EXPECT_GE(worst_case_cost_b_det_at(s, kB, b), best - 1e-9) << "b=" << b;
  }
}

TEST(VertexCostTest, InfeasibleStatsThrow) {
  EXPECT_THROW(worst_case_cost_det(make_stats(0.9, 0.5), kB),
               std::invalid_argument);
}

// ---------------------------------------------------------- b-DET feasibility

TEST(BDetFeasibilityTest, Equation36Boundary) {
  // mu/B < (1-q)^2/q. At q = 0.6 the boundary is 0.4^2/0.6 ~= 0.2667,
  // inside the stats-feasible region mu/B <= 0.4.
  EXPECT_TRUE(b_det_feasible(make_stats(0.25, 0.6), kB));
  EXPECT_FALSE(b_det_feasible(make_stats(0.28, 0.6), kB));
}

TEST(BDetFeasibilityTest, NeedsPositiveQAndMu) {
  EXPECT_FALSE(b_det_feasible(make_stats(0.3, 0.0), kB));
  EXPECT_FALSE(b_det_feasible(make_stats(0.0, 0.3), kB));
}

TEST(BDetFeasibilityTest, BStarMustBeInsideInterval) {
  // mu = 0.3, q = 0.2: eq. 36 gives 0.3 < 3.2 (ok) but
  // b* = sqrt(0.3/0.2) B = 1.22 B > B -> infeasible.
  EXPECT_FALSE(b_det_feasible(make_stats(0.3, 0.2), kB));
  EXPECT_TRUE(std::isinf(worst_case_cost_b_det(make_stats(0.3, 0.2), kB)));
}

TEST(BDetFeasibilityTest, CostInfiniteWhenInfeasible) {
  EXPECT_TRUE(std::isinf(worst_case_cost_b_det(make_stats(0.3, 0.0), kB)));
}

// ------------------------------------------------------------ choose_strategy

TEST(ChooseStrategyTest, PicksMinimumVertex) {
  for (double mu_frac : util::linspace(0.01, 0.95, 20)) {
    for (double q : util::linspace(0.01, 0.95, 20)) {
      const auto s = make_stats(mu_frac, q);
      if (!s.feasible(kB)) continue;
      const auto choice = choose_strategy(s, kB);
      const double expected_min = std::min(
          std::min(worst_case_cost_nrand(s, kB), worst_case_cost_toi(s, kB)),
          std::min(worst_case_cost_det(s, kB),
                   worst_case_cost_b_det(s, kB)));
      EXPECT_NEAR(choice.expected_cost, expected_min, 1e-9)
          << "mu=" << mu_frac << " q=" << q;
    }
  }
}

TEST(ChooseStrategyTest, HighQFavorsToi) {
  // Long stops almost certain: turning off immediately is optimal.
  const auto c = choose_strategy(make_stats(0.01, 0.95), kB);
  EXPECT_EQ(c.strategy, Strategy::kToi);
  EXPECT_NEAR(c.expected_cost, kB, 1e-12);
}

TEST(ChooseStrategyTest, LowQFavorsDet) {
  // Long stops rare: waiting until B is near-offline-optimal.
  const auto c = choose_strategy(make_stats(0.5, 0.02), kB);
  EXPECT_EQ(c.strategy, Strategy::kDet);
}

TEST(ChooseStrategyTest, TinyMuSmallQFavorsBDet) {
  // Figure 2(c)-(d) territory: mu_B- = 0.02 B. At q = 0.3 the b-DET cost
  // (sqrt(mu) + sqrt(qB))^2 = 0.475 B beats N-Rand's e/(e-1)(mu+qB) = 0.506 B.
  const auto c = choose_strategy(make_stats(0.02, 0.3), kB);
  EXPECT_EQ(c.strategy, Strategy::kBDet);
  EXPECT_GT(c.b, 0.0);
  EXPECT_LT(c.b, kB);
}

TEST(ChooseStrategyTest, MiddleGroundFavorsNRand) {
  // Moderate mu and q: randomization wins (mu+qB < 0.632B keeps N-Rand
  // below TOI; q > 1.392 mu keeps it below DET; mu/q ~ 0.43 rules out b-DET).
  const auto c = choose_strategy(make_stats(0.15, 0.35), kB);
  EXPECT_EQ(c.strategy, Strategy::kNRand);
}

TEST(ChooseStrategyTest, CrNeverExceedsNRandGuarantee) {
  // The proposed algorithm can never be worse than N-Rand's e/(e-1).
  for (double mu_frac : util::linspace(0.0, 1.0, 30)) {
    for (double q : util::linspace(0.0, 1.0, 30)) {
      const auto s = make_stats(mu_frac, q);
      if (!s.feasible(kB)) continue;
      const auto c = choose_strategy(s, kB);
      EXPECT_LE(c.cr, kEOverEMinus1 + 1e-9)
          << "mu=" << mu_frac << " q=" << q;
    }
  }
}

TEST(ChooseStrategyTest, CrAtLeastOne) {
  for (double mu_frac : util::linspace(0.01, 0.9, 15)) {
    for (double q : util::linspace(0.01, 0.9, 15)) {
      const auto s = make_stats(mu_frac, q);
      if (!s.feasible(kB)) continue;
      EXPECT_GE(choose_strategy(s, kB).cr, 1.0 - 1e-9);
    }
  }
}

TEST(ChooseStrategyTest, Eq38WhenBDetWins) {
  const auto s = make_stats(0.02, 0.3);
  const auto c = choose_strategy(s, kB);
  ASSERT_EQ(c.strategy, Strategy::kBDet);
  const double num =
      std::pow(std::sqrt(s.mu_b_minus) + std::sqrt(s.q_b_plus * kB), 2);
  EXPECT_NEAR(c.cr, num / (s.mu_b_minus + s.q_b_plus * kB), 1e-12);
}

TEST(ChooseStrategyTest, DegenerateNoStopsIsTrivial) {
  const auto c = choose_strategy(make_stats(0.0, 0.0), kB);
  EXPECT_NEAR(c.expected_cost, 0.0, 1e-12);  // N-Rand on a zero-cost world
  EXPECT_DOUBLE_EQ(c.cr, 1.0);
}

// ------------------------------------------------------------- CR projections

TEST(WorstCaseCrTest, ToiCrFormula) {
  const auto s = make_stats(0.2, 0.3);
  EXPECT_NEAR(worst_case_cr_toi(s, kB), kB / (0.2 * kB + 0.3 * kB), 1e-12);
}

TEST(WorstCaseCrTest, DetCrBoundedByTwo) {
  for (double mu_frac : util::linspace(0.01, 0.9, 10)) {
    for (double q : util::linspace(0.01, 0.9, 10)) {
      const auto s = make_stats(mu_frac, q);
      if (!s.feasible(kB)) continue;
      EXPECT_LE(worst_case_cr_det(s, kB), 2.0 + 1e-12);
    }
  }
}

TEST(WorstCaseCrTest, NRandCrIsConstant) {
  for (double q : {0.1, 0.4, 0.8}) {
    const auto s = make_stats(0.05, q);
    EXPECT_NEAR(worst_case_cr_nrand(s, kB), kEOverEMinus1, 1e-12);
  }
}

TEST(WorstCaseCrTest, ProposedIsMinOfAllStrategies) {
  for (double mu_frac : util::linspace(0.02, 0.9, 15)) {
    for (double q : util::linspace(0.02, 0.9, 15)) {
      const auto s = make_stats(mu_frac, q);
      if (!s.feasible(kB)) continue;
      const double proposed = choose_strategy(s, kB).cr;
      EXPECT_LE(proposed, worst_case_cr_nrand(s, kB) + 1e-9);
      EXPECT_LE(proposed, worst_case_cr_toi(s, kB) + 1e-9);
      EXPECT_LE(proposed, worst_case_cr_det(s, kB) + 1e-9);
      EXPECT_LE(proposed, worst_case_cr_b_det(s, kB) + 1e-9);
    }
  }
}

// Strategy names for tables.
TEST(StrategyNameTest, AllNamed) {
  EXPECT_EQ(to_string(Strategy::kToi), "TOI");
  EXPECT_EQ(to_string(Strategy::kDet), "DET");
  EXPECT_EQ(to_string(Strategy::kBDet), "b-DET");
  EXPECT_EQ(to_string(Strategy::kNRand), "N-Rand");
}

}  // namespace
}  // namespace idlered::core
