#include "core/policies.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/costs.h"
#include "stats/ks_test.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered::core {
namespace {

constexpr double kB = 28.0;
using util::kE;

// ------------------------------------------------------- deterministic family

TEST(ThresholdPolicyTest, ToiAlwaysCostsB) {
  const auto toi = make_toi(kB);
  EXPECT_DOUBLE_EQ(toi->expected_cost(0.0), kB);
  EXPECT_DOUBLE_EQ(toi->expected_cost(5.0), kB);
  EXPECT_DOUBLE_EQ(toi->expected_cost(1000.0), kB);
  EXPECT_TRUE(toi->deterministic());
}

TEST(ThresholdPolicyTest, NevCostsStopLength) {
  const auto nev = make_nev(kB);
  EXPECT_DOUBLE_EQ(nev->expected_cost(5.0), 5.0);
  EXPECT_DOUBLE_EQ(nev->expected_cost(500.0), 500.0);
  util::Rng rng(1);
  EXPECT_TRUE(std::isinf(nev->sample_threshold(rng)));
}

TEST(ThresholdPolicyTest, DetMatchesOfflineForShortStops) {
  const auto det = make_det(kB);
  for (double y : {0.0, 1.0, 15.0, 27.99}) {
    EXPECT_DOUBLE_EQ(det->expected_cost(y), y);
  }
  EXPECT_DOUBLE_EQ(det->expected_cost(28.0), 2.0 * kB);
  EXPECT_DOUBLE_EQ(det->expected_cost(1e6), 2.0 * kB);
}

TEST(ThresholdPolicyTest, BDetSwitchesAtB) {
  const auto bdet = make_b_det(kB, 10.0);
  EXPECT_DOUBLE_EQ(bdet->expected_cost(9.0), 9.0);
  EXPECT_DOUBLE_EQ(bdet->expected_cost(10.0), 10.0 + kB);
  EXPECT_DOUBLE_EQ(bdet->expected_cost(100.0), 10.0 + kB);
}

TEST(ThresholdPolicyTest, BDetRejectsOutOfRange) {
  EXPECT_THROW(make_b_det(kB, 0.0), std::invalid_argument);
  EXPECT_THROW(make_b_det(kB, kB + 1.0), std::invalid_argument);
}

TEST(ThresholdPolicyTest, SampleThresholdIsConstant) {
  const auto det = make_det(kB);
  util::Rng rng(2);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(det->sample_threshold(rng), kB);
}

TEST(ThresholdPolicyTest, InvalidBreakEvenThrows) {
  EXPECT_THROW(ThresholdPolicy(0.0, 1.0, "x"), std::invalid_argument);
}

// ---------------------------------------------------------------------- NRand

TEST(NRandTest, PdfIntegratesToOne) {
  NRandPolicy p(kB);
  const double total =
      util::integrate([&p](double x) { return p.pdf(x); }, 0.0, kB, 1e-11);
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(NRandTest, PdfMatchesEq7) {
  NRandPolicy p(kB);
  EXPECT_NEAR(p.pdf(0.0), 1.0 / (kB * (kE - 1.0)), 1e-12);
  EXPECT_NEAR(p.pdf(kB), kE / (kB * (kE - 1.0)), 1e-12);
  EXPECT_DOUBLE_EQ(p.pdf(kB + 0.01), 0.0);
  EXPECT_DOUBLE_EQ(p.pdf(-0.01), 0.0);
}

TEST(NRandTest, EqualizerProperty) {
  // E[cost] = e/(e-1) * cost_offline(y) for every y — the defining property.
  NRandPolicy p(kB);
  for (double y : {0.5, 3.0, 14.0, 27.0, 28.0, 50.0, 1e4}) {
    EXPECT_NEAR(p.expected_cost(y),
                util::kEOverEMinus1 * offline_cost(y, kB), 1e-9)
        << "y=" << y;
  }
}

TEST(NRandTest, ExpectedCostMatchesQuadratureOracle) {
  NRandPolicy p(kB);
  GenericRandomizedPolicy oracle(
      kB, [&p](double x) { return p.pdf(x); }, "oracle");
  for (double y : {1.0, 10.0, 20.0, 27.0, 35.0}) {
    EXPECT_NEAR(p.expected_cost(y), oracle.expected_cost(y), 1e-6);
  }
}

TEST(NRandTest, SampledThresholdsFollowCdf) {
  NRandPolicy p(kB);
  util::Rng rng(42);
  std::vector<double> draws;
  for (int i = 0; i < 5000; ++i) draws.push_back(p.sample_threshold(rng));
  const auto ks =
      stats::ks_test(draws, [&p](double x) { return p.cdf(x); });
  EXPECT_FALSE(ks.reject_at(0.01));
}

TEST(NRandTest, ThresholdsWithinSupport) {
  NRandPolicy p(kB);
  util::Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    const double x = p.sample_threshold(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, kB);
  }
}

// -------------------------------------------------------------------- MOMRand

TEST(MomRandTest, RevisedWhenMuSmall) {
  MomRandPolicy p(kB, 0.5 * kB);
  EXPECT_TRUE(p.revised());
}

TEST(MomRandTest, FallsBackToNRandWhenMuLarge) {
  MomRandPolicy p(kB, 0.9 * kB);  // above 2(e-2)/(e-1) B ~= 0.836 B
  EXPECT_FALSE(p.revised());
  NRandPolicy n(kB);
  for (double y : {5.0, 20.0, 40.0}) {
    EXPECT_DOUBLE_EQ(p.expected_cost(y), n.expected_cost(y));
  }
}

TEST(MomRandTest, ActivationThresholdValue) {
  EXPECT_NEAR(MomRandPolicy::mu_threshold(kB) / kB,
              2.0 * (kE - 2.0) / (kE - 1.0), 1e-12);
  EXPECT_NEAR(MomRandPolicy::mu_threshold(kB) / kB, 0.8357, 1e-3);
}

TEST(MomRandTest, RevisedPdfIntegratesToOne) {
  MomRandPolicy p(kB, 0.2 * kB);
  const double total =
      util::integrate([&p](double x) { return p.pdf(x); }, 0.0, kB, 1e-11);
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(MomRandTest, RevisedPdfMatchesEq9) {
  MomRandPolicy p(kB, 0.2 * kB);
  EXPECT_NEAR(p.pdf(0.0), 0.0, 1e-12);  // (e^0 - 1) = 0
  EXPECT_NEAR(p.pdf(kB), (kE - 1.0) / (kB * (kE - 2.0)), 1e-12);
}

TEST(MomRandTest, ExpectedCostMatchesQuadratureOracle) {
  MomRandPolicy p(kB, 0.2 * kB);
  GenericRandomizedPolicy oracle(
      kB, [&p](double x) { return p.pdf(x); }, "oracle");
  for (double y : {0.5, 5.0, 14.0, 27.5, 28.0, 100.0}) {
    EXPECT_NEAR(p.expected_cost(y), oracle.expected_cost(y), 1e-6)
        << "y=" << y;
  }
}

TEST(MomRandTest, ExpectedCostContinuousAtB) {
  MomRandPolicy p(kB, 0.2 * kB);
  EXPECT_NEAR(p.expected_cost(kB - 1e-9), p.expected_cost(kB + 1e-9), 1e-6);
}

TEST(MomRandTest, SampledThresholdsFollowCdf) {
  MomRandPolicy p(kB, 0.3 * kB);
  util::Rng rng(44);
  std::vector<double> draws;
  for (int i = 0; i < 5000; ++i) draws.push_back(p.sample_threshold(rng));
  const auto ks =
      stats::ks_test(draws, [&p](double x) { return p.cdf(x); });
  EXPECT_FALSE(ks.reject_at(0.01));
}

TEST(MomRandTest, CheaperThanNRandOnShortStops) {
  // The revised density shifts mass toward larger thresholds, so short
  // stops (y << B) cost less than under N-Rand.
  MomRandPolicy mom(kB, 0.2 * kB);
  NRandPolicy n(kB);
  EXPECT_LT(mom.expected_cost(2.0), n.expected_cost(2.0));
}

TEST(MomRandTest, NegativeMuThrows) {
  EXPECT_THROW(MomRandPolicy(kB, -1.0), std::invalid_argument);
}

// ---------------------------------------------------- GenericRandomizedPolicy

TEST(GenericPolicyTest, RejectsUnnormalizedPdf) {
  EXPECT_THROW(GenericRandomizedPolicy(kB, [](double) { return 10.0; }, "bad"),
               std::invalid_argument);
}

TEST(GenericPolicyTest, UniformDensityExpectedCost) {
  // P(x) = 1/B on [0, B]. For y <= B:
  //   E = integral_0^y (x+B)/B dx + y (B - y)/B = y^2/(2B) + y + y - y^2/B
  //     = 2y - y^2/(2B)
  GenericRandomizedPolicy p(kB, [](double) { return 1.0 / kB; }, "uniform");
  for (double y : {1.0, 10.0, 20.0, 28.0}) {
    EXPECT_NEAR(p.expected_cost(y), 2.0 * y - y * y / (2.0 * kB), 1e-6);
  }
  // For y >= B: integral_0^B (x+B)/B dx = 3B/2.
  EXPECT_NEAR(p.expected_cost(100.0), 1.5 * kB, 1e-6);
}

TEST(GenericPolicyTest, SamplesFollowUniformCdf) {
  GenericRandomizedPolicy p(kB, [](double) { return 1.0 / kB; }, "uniform");
  util::Rng rng(45);
  std::vector<double> draws;
  for (int i = 0; i < 3000; ++i) draws.push_back(p.sample_threshold(rng));
  const auto ks = stats::ks_test(
      draws, [](double x) { return util::clamp(x / kB, 0.0, 1.0); });
  EXPECT_FALSE(ks.reject_at(0.01));
}

// ------------------------------------------------- parameterized sanity sweep

struct PolicyCase {
  std::string label;
  PolicyPtr policy;
};

class AllPolicies : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(AllPolicies, ExpectedCostNonNegativeAndBounded) {
  const auto& p = *GetParam().policy;
  for (double y : util::linspace(0.0, 4.0 * kB, 50)) {
    const double c = p.expected_cost(y);
    EXPECT_GE(c, 0.0);
    // No policy in [0, B] pays more than max(y, 2B) in expectation.
    EXPECT_LE(c, std::max(y, 2.0 * kB) + 1e-9);
  }
}

TEST_P(AllPolicies, ExpectedCostNondecreasingInY) {
  const auto& p = *GetParam().policy;
  double prev = 0.0;
  for (double y : util::linspace(0.0, 4.0 * kB, 200)) {
    const double c = p.expected_cost(y);
    EXPECT_GE(c, prev - 1e-9) << "at y=" << y;
    prev = c;
  }
}

TEST_P(AllPolicies, NegativeStopThrows) {
  EXPECT_THROW(GetParam().policy->expected_cost(-1.0), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Lineup, AllPolicies,
    ::testing::Values(PolicyCase{"toi", make_toi(kB)},
                      PolicyCase{"nev", make_nev(kB)},
                      PolicyCase{"det", make_det(kB)},
                      PolicyCase{"bdet", make_b_det(kB, 10.0)},
                      PolicyCase{"nrand", make_n_rand(kB)},
                      PolicyCase{"momrand", make_mom_rand(kB, 14.0)}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace idlered::core
