// Property suite: the O(1) incremental accumulators of stats/rolling.h
// agree with a from-scratch recomputation (dist::ShortStopStats::from_sample)
// after arbitrary insert/evict sequences — the correctness contract that
// lets the engine maintain per-vehicle statistics incrementally instead of
// re-scanning the trace.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "dist/distribution.h"
#include "stats/rolling.h"
#include "util/random.h"

namespace idlered::stats {
namespace {

constexpr double kB = 28.0;

// The accumulator's documented numeric drift: the short-stop sum is a
// running double, so it can differ from a fresh left-to-right sum by a few
// ulps per operation. 1e-9 absolute on mu (values of order B) is orders of
// magnitude above any observed drift while still catching logic errors.
constexpr double kDriftTol = 1e-9;

void expect_stats_match(const ShortStopAccumulator& acc,
                        const std::vector<double>& live, int step) {
  const auto incremental = acc.stats();
  const auto scratch = dist::ShortStopStats::from_sample(live, kB);
  EXPECT_NEAR(incremental.mu_b_minus, scratch.mu_b_minus, kDriftTol)
      << "step " << step;
  // q is a ratio of exact integer counts: no drift allowed at all.
  EXPECT_EQ(incremental.q_b_plus, scratch.q_b_plus) << "step " << step;
}

TEST(IncrementalStatsProperty, RandomInsertEvictMatchesFromScratch) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    util::Rng rng(seed);
    ShortStopAccumulator acc(kB);
    std::vector<double> live;
    for (int step = 0; step < 3000; ++step) {
      const bool evict = !live.empty() && rng.uniform() < 0.4;
      if (evict) {
        const auto idx =
            static_cast<std::size_t>(rng.uniform(0.0, 1.0) * live.size());
        const auto it = live.begin() + std::min(idx, live.size() - 1);
        acc.evict(*it);
        live.erase(it);
      } else {
        const double y = rng.uniform(0.0, 3.0 * kB);
        acc.insert(y);
        live.push_back(y);
      }
      EXPECT_EQ(acc.count(), live.size());
      if (!live.empty() && step % 10 == 0) expect_stats_match(acc, live, step);
    }
  }
}

TEST(IncrementalStatsProperty, DrainToEmptyAndRefill) {
  util::Rng rng(9);
  ShortStopAccumulator acc(kB);
  std::vector<double> live;
  for (int i = 0; i < 200; ++i) {
    const double y = rng.uniform(0.0, 2.0 * kB);
    acc.insert(y);
    live.push_back(y);
  }
  // Evict everything in a scrambled order.
  while (!live.empty()) {
    const auto idx =
        static_cast<std::size_t>(rng.uniform(0.0, 1.0) * live.size());
    const auto it = live.begin() + std::min(idx, live.size() - 1);
    acc.evict(*it);
    live.erase(it);
  }
  EXPECT_TRUE(acc.empty());
  // A drained accumulator must behave like a fresh one.
  for (int i = 0; i < 50; ++i) {
    const double y = rng.uniform(0.0, 2.0 * kB);
    acc.insert(y);
    live.push_back(y);
  }
  expect_stats_match(acc, live, -1);
}

TEST(IncrementalStatsProperty, IntegerStopLengthsAreExact) {
  // Integer-valued stops sum exactly in doubles (far below 2^53), so the
  // incremental mu must equal the from-scratch mu bit-for-bit, whatever
  // the insert/evict order.
  util::Rng rng(17);
  ShortStopAccumulator acc(kB);
  std::vector<double> live;
  for (int step = 0; step < 2000; ++step) {
    if (!live.empty() && rng.uniform() < 0.45) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform(0.0, 1.0) * live.size());
      const auto it = live.begin() + std::min(idx, live.size() - 1);
      acc.evict(*it);
      live.erase(it);
    } else {
      const double y = std::floor(rng.uniform(0.0, 80.0));
      acc.insert(y);
      live.push_back(y);
    }
    if (!live.empty()) {
      const auto scratch = dist::ShortStopStats::from_sample(live, kB);
      EXPECT_EQ(acc.stats().mu_b_minus, scratch.mu_b_minus);
      EXPECT_EQ(acc.stats().q_b_plus, scratch.q_b_plus);
    }
  }
}

TEST(IncrementalStatsProperty, BoundaryStopAtBreakEvenCountsAsLong) {
  // from_sample counts y >= B as long; the accumulator must use the same
  // closed boundary or the two drift apart by whole stops.
  ShortStopAccumulator acc(kB);
  acc.insert(kB);
  EXPECT_EQ(acc.stats().q_b_plus, 1.0);
  EXPECT_EQ(acc.stats().mu_b_minus, 0.0);
  const auto scratch = dist::ShortStopStats::from_sample({kB}, kB);
  EXPECT_EQ(acc.stats().q_b_plus, scratch.q_b_plus);
  acc.evict(kB);  // must be accepted as a long-stop evict
  EXPECT_TRUE(acc.empty());
}

TEST(IncrementalStatsProperty, SlidingWindowMatchesNaiveRecompute) {
  for (std::size_t capacity : {std::size_t{1}, std::size_t{7},
                               std::size_t{64}, std::size_t{500}}) {
    util::Rng rng(100 + capacity);
    SlidingShortStopWindow window(kB, capacity);
    std::deque<double> naive;
    for (int step = 0; step < 1500; ++step) {
      const double y = rng.uniform(0.0, 3.0 * kB);
      window.push(y);
      naive.push_back(y);
      if (naive.size() > capacity) naive.pop_front();
      ASSERT_EQ(window.size(), naive.size());
      EXPECT_EQ(window.full(), naive.size() == capacity);
      const std::vector<double> live(naive.begin(), naive.end());
      const auto scratch = dist::ShortStopStats::from_sample(live, kB);
      EXPECT_NEAR(window.stats().mu_b_minus, scratch.mu_b_minus, kDriftTol)
          << "capacity " << capacity << " step " << step;
      EXPECT_EQ(window.stats().q_b_plus, scratch.q_b_plus)
          << "capacity " << capacity << " step " << step;
    }
  }
}

TEST(IncrementalStatsProperty, WindowOfCapacityOneTracksLastStop) {
  SlidingShortStopWindow window(kB, 1);
  for (double y : {3.0, 50.0, 0.0, kB, 12.5}) {
    window.push(y);
    EXPECT_EQ(window.size(), 1u);
    const auto s = window.stats();
    if (y >= kB) {
      EXPECT_EQ(s.q_b_plus, 1.0);
      EXPECT_EQ(s.mu_b_minus, 0.0);
    } else {
      EXPECT_EQ(s.q_b_plus, 0.0);
      EXPECT_EQ(s.mu_b_minus, y);
    }
  }
}

TEST(IncrementalStatsProperty, StatsEstimatorFacadeMatchesAccumulator) {
  // core::StatsEstimator is now a facade over ShortStopAccumulator; the
  // two must stay in lockstep on identical observation streams.
  util::Rng rng(23);
  core::StatsEstimator est(kB);
  ShortStopAccumulator acc(kB);
  for (int i = 0; i < 1000; ++i) {
    const double y = rng.uniform(0.0, 4.0 * kB);
    est.observe(y);
    acc.insert(y);
    EXPECT_EQ(est.stats().mu_b_minus, acc.stats().mu_b_minus);
    EXPECT_EQ(est.stats().q_b_plus, acc.stats().q_b_plus);
  }
}

TEST(IncrementalStatsProperty, StatsAlwaysFeasibleUnderChurn) {
  // Whatever the churn, the reported pair must stay inside the feasible
  // region (q in [0, 1], mu in [0, B(1 - q)]) that choose_strategy
  // requires.
  util::Rng rng(29);
  ShortStopAccumulator acc(kB);
  std::vector<double> live;
  for (int step = 0; step < 2000; ++step) {
    if (!live.empty() && rng.uniform() < 0.48) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform(0.0, 1.0) * live.size());
      const auto it = live.begin() + std::min(idx, live.size() - 1);
      acc.evict(*it);
      live.erase(it);
    } else {
      // Adversarial mix: values at 0, just below/at B, and huge.
      const double pick = rng.uniform();
      const double y = pick < 0.25   ? 0.0
                       : pick < 0.5  ? kB - 1e-12
                       : pick < 0.75 ? kB
                                     : rng.uniform(kB, 50.0 * kB);
      acc.insert(y);
      live.push_back(y);
    }
    if (!live.empty()) {
      const auto s = acc.stats();
      EXPECT_GE(s.q_b_plus, 0.0);
      EXPECT_LE(s.q_b_plus, 1.0);
      EXPECT_GE(s.mu_b_minus, 0.0);
      EXPECT_TRUE(s.feasible(kB)) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace idlered::stats
