// Property and differential battery for the multislope (k-slope)
// engine-state framework:
//
//  * SlopeProfile canonicalization: dominance pruning and convexification
//    preserve the offline lower envelope exactly; construction contracts
//    reject garbage (IDLERED_EXPECTS).
//  * k = 2 degeneracy: on SlopeProfile::two_slope(B), every MS-* policy is
//    bit-identical to its two-slope counterpart — expected costs AND the
//    sampled-mode RNG stream.
//  * The randomized envelope strategy's pointwise e/(e-1) bound on
//    adversarial stop lengths, cross-checked against the quadrature oracle
//    of core/multislope.h and against a Monte-Carlo average of realized
//    scaled-schedule costs.
//  * Differential: the per-entry-break-even LP batch
//    (core::solve_constrained_lp_batch over LpBatchProblem) is bit-for-bit
//    the scalar solve; the generalized COA through the arena LP matches
//    the closed-form selection with zero mismatches on Figure-5-style
//    cohorts.
//  * Batch kernels: MS-NEV / MS-DET / MS-Rand kernels vs the scalar sum
//    within the documented ULP bound (bit-identical to the two-slope
//    kernels at k = 2); MS-COA takes the generic fallback.
//  * Engine / controller / robust wiring: multislope_strategy_set at k = 2
//    reproduces the standard lineup's CRs bitwise; the fallback-ladder
//    rung mapping; the AdaptiveController with a two-slope profile is
//    bit-identical to the profile-free controller.
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/multislope.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "core/solver_lp.h"
#include "costmodel/multislope.h"
#include "costmodel/multislope_policy.h"
#include "engine/eval_session.h"
#include "engine/strategy.h"
#include "engine/vehicle_cache.h"
#include "robust/fallback.h"
#include "sim/batch_kernels.h"
#include "sim/controller.h"
#include "traces/area_profiles.h"
#include "traces/fleet_generator.h"
#include "util/contracts.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered::costmodel {
namespace {

constexpr double kB = 28.0;
constexpr double kEps = std::numeric_limits<double>::epsilon();

double ulp_bound(std::size_t n, double reference) {
  return 8.0 * static_cast<double>(n) * kEps * std::fabs(reference);
}

dist::ShortStopStats stats_point(double mu, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu;
  s.q_b_plus = q;
  return s;
}

SlopeProfile three_state_profile() {
  return SlopeProfile::three_state(0.3, 15.0, kB);
}

/// Adversarial stop lengths for a profile: every breakpoint, just below
/// and just above it, zero, tiny, and a far tail.
std::vector<double> adversarial_stops(const SlopeProfile& profile) {
  std::vector<double> ys{0.0, 1e-9, 0.5};
  for (double t : profile.breakpoints()) {
    ys.push_back(std::nextafter(t, 0.0));
    ys.push_back(t);
    ys.push_back(std::nextafter(t, 1e30));
    ys.push_back(0.5 * t);
    ys.push_back(2.0 * t);
  }
  ys.push_back(100.0 * profile.deepest_switch_cost());
  return ys;
}

// ------------------------------------------------------------ canonicalization

TEST(SlopeProfileProperty, TwoSlopeIsTheClassicInstance) {
  const SlopeProfile p = SlopeProfile::two_slope(kB);
  EXPECT_TRUE(p.classic());
  EXPECT_EQ(p.num_states(), 2u);
  EXPECT_EQ(p.num_transitions(), 1u);
  EXPECT_EQ(p.breakpoint(0), kB);  // (B - 0) / (1 - 0) == B exactly
  EXPECT_EQ(p.base_rate(), 1.0);
  EXPECT_EQ(p.terminal_rate(), 0.0);
  EXPECT_EQ(p.deepest_switch_cost(), kB);
  EXPECT_EQ(p.pruned(), 0u);
}

TEST(SlopeProfileProperty, DominatedAndNonConvexSlopesArePruned) {
  // (0.9, 20) is dominated by (0.3, 15): slower AND more expensive.
  const SlopeProfile dominated(
      {{1.0, 0.0}, {0.3, 15.0}, {0.9, 20.0}, {0.0, kB}});
  EXPECT_EQ(dominated.num_states(), 3u);
  EXPECT_EQ(dominated.pruned(), 1u);

  // three_state with the envelope condition violated: the mid state never
  // touches the lower envelope, so it convexifies away to k = 2.
  //   mid_cost / (1 - mid_rate) = 25 / 0.5 = 50
  //   (deep - mid) / mid_rate  =  3 / 0.5 =  6   -> 50 >= 6, pruned.
  const SlopeProfile flat = SlopeProfile::three_state(0.5, 25.0, kB);
  EXPECT_EQ(flat.num_states(), 2u);
  EXPECT_EQ(flat.pruned(), 1u);
  EXPECT_TRUE(flat.classic());

  // The guaranteed-k-3 parameterization survives.
  const SlopeProfile p3 = three_state_profile();
  EXPECT_EQ(p3.num_states(), 3u);
  EXPECT_EQ(p3.pruned(), 0u);
  EXPECT_FALSE(p3.classic());
}

TEST(SlopeProfileProperty, PruningPreservesTheLowerEnvelopeExactly) {
  // Random slope soups: the canonical profile's OPT(y) must equal the
  // brute-force min over ALL raw inputs — pruning may only drop slopes
  // that never strictly win.
  util::Rng rng(7001);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Slope> raw{{1.0, 0.0}};
    const int extra = 1 + static_cast<int>(rng.uniform() * 6.0);
    for (int i = 0; i < extra; ++i)
      raw.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 60.0)});
    const SlopeProfile p(raw);

    // Canonical invariants: strictly decreasing rates, strictly increasing
    // costs and breakpoints.
    for (std::size_t i = 0; i + 1 < p.num_states(); ++i) {
      EXPECT_LT(p.state(i + 1).rate, p.state(i).rate);
      EXPECT_GT(p.state(i + 1).switch_cost, p.state(i).switch_cost);
    }
    for (std::size_t i = 0; i + 1 < p.num_transitions(); ++i)
      EXPECT_LT(p.breakpoint(i), p.breakpoint(i + 1));
    EXPECT_EQ(p.num_states() + p.pruned(), raw.size());

    for (double y : adversarial_stops(p)) {
      double brute = std::numeric_limits<double>::infinity();
      for (const Slope& s : raw)
        brute = std::min(brute, s.switch_cost + s.rate * y);
      EXPECT_EQ(p.offline_cost(y), brute) << "trial " << trial << " y=" << y;
    }
  }
}

TEST(SlopeProfileProperty, ConstructionContractsReject) {
  util::contracts::ScopedMode scope(util::contracts::Mode::kThrow);
  using util::contracts::ContractViolation;
  EXPECT_THROW(SlopeProfile({}), ContractViolation);
  EXPECT_THROW(SlopeProfile({{1.0, 0.0}, {-0.1, 5.0}}), ContractViolation);
  EXPECT_THROW(SlopeProfile({{1.0, 0.0}, {0.0, std::nan("")}}),
               ContractViolation);
  // No free starting state: the cheapest slope must have switch cost 0.
  EXPECT_THROW(SlopeProfile({{1.0, 1.0}, {0.0, kB}}), ContractViolation);
  EXPECT_THROW(SlopeProfile::two_slope(0.0), ContractViolation);
  EXPECT_THROW(SlopeProfile::three_state(1.5, 15.0, kB), ContractViolation);
  // Queries validate their stop length.
  const SlopeProfile p = SlopeProfile::two_slope(kB);
  EXPECT_THROW(p.offline_cost(-1.0), ContractViolation);
  EXPECT_THROW(
      p.offline_cost(std::numeric_limits<double>::infinity()),
      ContractViolation);
}

// ----------------------------------------------------------- k = 2 degeneracy

TEST(MultislopeK2Property, ExpectedCostsBitIdenticalToTwoSlope) {
  const SlopeProfile p = SlopeProfile::two_slope(kB);
  const MultislopeNevPolicy ms_nev(p);
  const MultislopeEnvelopePolicy ms_det(p);
  const MultislopeRandPolicy ms_rand(p);
  const auto nev = core::make_nev(kB);
  const auto det = core::make_det(kB);
  const auto nrand = core::make_n_rand(kB);

  // Stats points driving COA into each of its four vertices.
  const std::vector<dist::ShortStopStats> regimes{
      stats_point(0.5, 0.9),        // long stops dominate -> TOI
      stats_point(0.9 * kB, 0.02),  // short stops dominate -> DET
      stats_point(0.2 * kB, 0.3),   // mixed
      stats_point(0.05 * kB, 0.5),  // mixed
  };

  util::Rng rng(7002);
  std::vector<double> ys = adversarial_stops(p);
  for (int i = 0; i < 200; ++i) ys.push_back(rng.uniform(0.0, 5.0 * kB));

  for (double y : ys) {
    EXPECT_EQ(ms_nev.expected_cost(y), nev->expected_cost(y)) << y;
    EXPECT_EQ(ms_det.expected_cost(y), det->expected_cost(y)) << y;
    EXPECT_EQ(ms_rand.expected_cost(y), nrand->expected_cost(y)) << y;
  }
  for (const auto& stats : regimes) {
    const MultislopeCoaPolicy ms_coa(p, {stats});
    const core::ProposedPolicy coa(kB, stats);
    ASSERT_EQ(ms_coa.choices().size(), 1u);
    EXPECT_EQ(ms_coa.choices()[0].strategy, coa.choice().strategy);
    EXPECT_EQ(ms_coa.choices()[0].b, coa.choice().b);
    EXPECT_EQ(ms_coa.worst_case_cr(), std::max(1.0, coa.choice().cr));
    EXPECT_EQ(ms_coa.deterministic(), coa.deterministic());
    for (double y : ys)
      EXPECT_EQ(ms_coa.expected_cost(y), coa.expected_cost(y))
          << core::to_string(coa.choice().strategy) << " y=" << y;
  }
}

TEST(MultislopeK2Property, SampledDrawsBitIdenticalToTwoSlope) {
  const SlopeProfile p = SlopeProfile::two_slope(kB);
  const MultislopeEnvelopePolicy ms_det(p);
  const MultislopeRandPolicy ms_rand(p);
  const MultislopeNevPolicy ms_nev(p);
  const auto det = core::make_det(kB);
  const auto nrand = core::make_n_rand(kB);

  // Same seed => same draw sequence, to the bit, at the same RNG position
  // (each draw consumes exactly one uniform on both sides).
  util::Rng a(20140601), b(20140601);
  for (int i = 0; i < 256; ++i)
    EXPECT_EQ(ms_rand.sample_threshold(a), nrand->sample_threshold(b));
  EXPECT_EQ(ms_det.sample_threshold(a), det->sample_threshold(b));
  EXPECT_TRUE(std::isinf(ms_nev.sample_threshold(a)));

  // MS-COA delegates to the same vertex policy; check a randomized vertex
  // (N-Rand regime) so the delegate draw actually consumes randomness.
  const auto stats = stats_point(0.05 * kB, 0.5);
  const MultislopeCoaPolicy ms_coa(p, {stats});
  const core::ProposedPolicy coa(kB, stats);
  util::Rng c(99), d(99);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(ms_coa.sample_threshold(c), coa.sample_threshold(d));
}

// ----------------------------------------------- randomized envelope strategy

TEST(MultislopeRandomizedProperty, PointwiseEOverEMinus1BoundOnAdversaries) {
  const std::vector<SlopeProfile> profiles{
      SlopeProfile::two_slope(kB), three_state_profile(),
      SlopeProfile({{1.0, 0.0}, {0.55, 6.0}, {0.25, 16.0}, {0.0, 40.0}})};
  for (const SlopeProfile& p : profiles) {
    for (double y : adversarial_stops(p)) {
      const double opt = p.offline_cost(y);
      const double expected = randomized_envelope_cost(p, y);
      // E[cost] never beats OPT and never exceeds e/(e-1) OPT, pointwise.
      EXPECT_GE(expected, opt * (1.0 - 1e-12)) << p.describe() << " y=" << y;
      EXPECT_LE(expected, util::kEOverEMinus1 * opt * (1.0 + 1e-12))
          << p.describe() << " y=" << y;
    }
  }
}

TEST(MultislopeRandomizedProperty, ClosedFormMatchesQuadratureOracle) {
  // core/multislope.h computes the same expectation by quadrature over the
  // scale law; the closed form must agree on the 3-state vehicle.
  const SlopeProfile p = three_state_profile();
  const core::MultislopeInstance oracle =
      core::three_state_vehicle(0.3, 15.0, kB);
  for (double y : adversarial_stops(p)) {
    if (y <= 0.0) continue;
    const double closed = randomized_envelope_cost(p, y);
    const double quad = core::randomized_envelope_expected_cost(oracle, y);
    EXPECT_NEAR(closed, quad, 1e-4 * std::max(1.0, quad))
        << "y=" << y;
  }
}

TEST(MultislopeRandomizedProperty, MonteCarloOverScaledSchedulesConverges) {
  const SlopeProfile p = three_state_profile();
  const MultislopeRandPolicy rand_policy(p);
  util::Rng rng(20140601);
  for (double y : {10.0, 25.0, 35.0, 60.0}) {
    const int kDraws = 200000;
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i)
      sum += scaled_schedule_cost(p, rand_policy.sample_scale(rng), y);
    const double mc = sum / kDraws;
    const double expected = rand_policy.expected_cost(y);
    EXPECT_NEAR(mc, expected, 0.01 * expected) << "y=" << y;
  }
}

TEST(MultislopeEnvelopeProperty, FollowerMatchesScheduleOracle) {
  const SlopeProfile p = three_state_profile();
  const core::Schedule oracle =
      core::envelope_follower(core::three_state_vehicle(0.3, 15.0, kB));
  for (double y : adversarial_stops(p)) {
    EXPECT_NEAR(envelope_follower_cost(p, y), oracle.online_cost(y),
                1e-9 * std::max(1.0, oracle.online_cost(y)))
        << "y=" << y;
  }
}

// ----------------------------------------------------------- policy contracts

TEST(MultislopePolicyContracts, SampledModeAndShapeViolations) {
  util::contracts::ScopedMode scope(util::contracts::Mode::kThrow);
  using util::contracts::ContractViolation;
  const SlopeProfile p3 = three_state_profile();
  util::Rng rng(1);

  // A single threshold cannot encode a k > 2 schedule.
  EXPECT_THROW(MultislopeEnvelopePolicy(p3).sample_threshold(rng),
               ContractViolation);
  EXPECT_THROW(MultislopeRandPolicy(p3).sample_threshold(rng),
               ContractViolation);
  EXPECT_THROW(MultislopeCoaPolicy(p3, transition_stats_from_sample(
                                           p3, {5.0, 20.0, 50.0}))
                   .sample_threshold(rng),
               ContractViolation);

  // MS-NEV samples at any k, but only with base rate 1.
  const SlopeProfile discounted({{0.8, 0.0}, {0.0, kB}});
  EXPECT_THROW(MultislopeNevPolicy(discounted).sample_threshold(rng),
               ContractViolation);

  // Shape contracts: a transitionless profile has no policy; MS-COA needs
  // one stats entry per transition.
  const SlopeProfile single({{1.0, 0.0}});
  EXPECT_THROW(MultislopeNevPolicy{single}, ContractViolation);
  EXPECT_THROW(MultislopeCoaPolicy(p3, {stats_point(1.0, 0.5)}),
               ContractViolation);

  // Stop-length contracts.
  const MultislopeNevPolicy nev{SlopeProfile::two_slope(kB)};
  EXPECT_THROW(nev.expected_cost(-1.0), ContractViolation);
  EXPECT_THROW(scaled_schedule_cost(p3, -0.5, 1.0), ContractViolation);
}

// ------------------------------------------------------------ LP differential

TEST(MultislopeLpDifferential, BatchOverloadBitIdenticalToScalarSolves) {
  util::Rng rng(7003);
  std::vector<core::LpBatchProblem> problems;
  for (int i = 0; i < 64; ++i) {
    const double t = rng.uniform(2.0, 60.0);
    const double q = rng.uniform();
    const double mu = rng.uniform() * t * (1.0 - q);
    problems.push_back({stats_point(mu, q), t});
  }
  std::vector<core::LpStrategySolution> batch(problems.size());
  lp::WorkspacePool pool(2, 3);
  EXPECT_EQ(core::solve_constrained_lp_batch(problems, pool, batch),
            problems.size());

  for (std::size_t i = 0; i < problems.size(); ++i) {
    const auto scalar = core::solve_constrained_lp(problems[i].stats,
                                                   problems[i].break_even);
    EXPECT_EQ(batch[i].alpha, scalar.alpha) << i;
    EXPECT_EQ(batch[i].beta, scalar.beta) << i;
    EXPECT_EQ(batch[i].gamma, scalar.gamma) << i;
    EXPECT_EQ(batch[i].expected_cost, scalar.expected_cost) << i;
    EXPECT_EQ(batch[i].strategy, scalar.strategy) << i;
    EXPECT_EQ(batch[i].b, scalar.b) << i;
  }
}

TEST(MultislopeLpDifferential, GeneralizedCoaMatchesClosedFormOnCohorts) {
  // Figure-5-style cohorts: Chicago-shaped law rescaled to three means
  // straddling B, 40 vehicles each. For every (vehicle, transition) the
  // arena-LP vertex must equal the closed-form choose_strategy vertex —
  // zero mismatches — for both the classic profile (where this IS the
  // two-slope COA differential) and the 3-slope profile.
  const auto chicago = traces::chicago();
  lp::WorkspacePool pool(2, 3);
  for (const SlopeProfile& profile :
       {SlopeProfile::two_slope(kB), three_state_profile()}) {
    for (double mean : {10.0, 28.0, 60.0}) {
      util::Rng rng(20140601 + static_cast<std::uint64_t>(mean));
      const sim::Fleet fleet =
          traces::generate_scaled_fleet(chicago, mean, 40, rng);
      const engine::FleetCache cache(fleet);

      std::vector<core::LpBatchProblem> problems;
      for (std::size_t v = 0; v < cache.size(); ++v)
        for (double t : profile.breakpoints())
          problems.push_back({cache.vehicle(v).stats_for(t), t});
      std::vector<core::LpStrategySolution> out(problems.size());
      core::solve_constrained_lp_batch(problems, pool, out);

      std::size_t mismatches = 0;
      for (std::size_t i = 0; i < problems.size(); ++i) {
        const auto closed = core::choose_strategy(problems[i].stats,
                                                  problems[i].break_even);
        if (out[i].strategy != closed.strategy) ++mismatches;
      }
      EXPECT_EQ(mismatches, 0u)
          << profile.describe() << " mean=" << mean;

      // The precomputed-choices MS-COA (the batched construction path)
      // prices every stop exactly like the closed-form construction.
      const std::size_t kT = profile.num_transitions();
      for (std::size_t v = 0; v < std::min<std::size_t>(cache.size(), 5);
           ++v) {
        std::vector<dist::ShortStopStats> stats;
        std::vector<core::StrategyChoice> choices;
        for (std::size_t t = 0; t < kT; ++t) {
          stats.push_back(problems[v * kT + t].stats);
          core::StrategyChoice c;
          c.strategy = out[v * kT + t].strategy;
          c.b = out[v * kT + t].b;
          choices.push_back(c);
        }
        const MultislopeCoaPolicy from_lp(profile, stats, choices);
        const MultislopeCoaPolicy from_closed(profile, stats);
        for (double y : adversarial_stops(profile))
          EXPECT_EQ(from_lp.expected_cost(y), from_closed.expected_cost(y));
      }
    }
  }
}

// -------------------------------------------------------- batch kernel parity

TEST(MultislopeKernelParity, KernelsMatchScalarWithinUlpBound) {
  util::Rng rng(7004);
  for (const SlopeProfile& profile :
       {SlopeProfile::two_slope(kB), three_state_profile()}) {
    std::vector<core::PolicyPtr> policies{
        make_ms_nev(profile), make_ms_det(profile), make_ms_rand(profile),
        make_ms_coa(profile, transition_stats_from_sample(
                                 profile, {3.0, 12.0, 30.0, 80.0}))};
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{9}, std::size_t{63},
                          std::size_t{257}}) {
      std::vector<double> ys(n);
      for (double& y : ys) y = rng.uniform(0.0, 4.0 * kB);
      for (const auto& policy : policies) {
        double scalar = 0.0;
        for (double y : ys) scalar += policy->expected_cost(y);
        double online = 0.0;
        const bool handled =
            sim::batch::expected_online_sum(*policy, ys, &online);
        if (policy->name() == "MS-COA") {
          // No closed-form kernel: the dispatch must decline and the
          // generic fallback must still satisfy the reduction bound.
          EXPECT_FALSE(handled);
          online = sim::batch::generic_online_sum(*policy, ys);
        } else {
          EXPECT_TRUE(handled) << policy->name();
        }
        EXPECT_NEAR(online, scalar, ulp_bound(n, scalar))
            << policy->name() << " k=" << profile.num_states()
            << " n=" << n;
      }
    }
  }
}

TEST(MultislopeKernelParity, K2KernelsBitIdenticalToTwoSlopeKernels) {
  const SlopeProfile p = SlopeProfile::two_slope(kB);
  util::Rng rng(7005);
  std::vector<double> ys(512);
  for (double& y : ys) y = rng.uniform(0.0, 4.0 * kB);
  EXPECT_EQ(sim::batch::multislope_envelope_online_sum(p, ys),
            sim::batch::threshold_online_sum(ys, kB, kB));
  EXPECT_EQ(sim::batch::multislope_rand_online_sum(p, ys),
            sim::batch::nrand_online_sum(ys, kB));
  EXPECT_EQ(sim::batch::multislope_nev_online_sum(p, ys),
            sim::batch::threshold_online_sum(
                ys, std::numeric_limits<double>::infinity(), kB));
}

// ------------------------------------------------- engine / robust / controller

TEST(MultislopeEngine, StrategySetAtK2ReproducesStandardLineupBitwise) {
  const auto chicago = traces::chicago();
  util::Rng rng(20140601);
  auto fleet = std::make_shared<sim::Fleet>(
      traces::generate_scaled_fleet(chicago, 30.0, 25, rng));

  engine::EvalPlan plan = engine::EvalPlan::single(
      fleet, kB, engine::standard_strategy_set());
  const auto ms =
      engine::multislope_strategy_set(SlopeProfile::two_slope(kB));
  plan.strategies.insert(plan.strategies.end(), ms.begin(), ms.end());
  engine::EvalSession session(std::move(plan));
  const auto report = session.run();

  const auto index_of = [&](const char* name) {
    for (std::size_t s = 0; s < report.strategy_names.size(); ++s)
      if (report.strategy_names[s] == name) return s;
    ADD_FAILURE() << "strategy missing: " << name;
    return std::size_t{0};
  };
  const std::pair<const char*, const char*> pairs[] = {
      {"NEV", "MS-NEV"}, {"DET", "MS-DET"}, {"N-Rand", "MS-Rand"},
      {"COA", "MS-COA"}};
  for (const auto& [two_slope, multi] : pairs) {
    const std::size_t a = index_of(two_slope);
    const std::size_t b = index_of(multi);
    for (const auto& vehicle : report.points[0].comparison.vehicles)
      EXPECT_EQ(vehicle.cr[a], vehicle.cr[b]) << two_slope;
  }
}

TEST(MultislopeRobust, LadderRungMapping) {
  const SlopeProfile p3 = three_state_profile();
  const auto stats = transition_stats_from_sample(p3, {5.0, 25.0, 60.0});
  EXPECT_EQ(robust::multislope_policy_for_mode(
                robust::ControllerMode::kProposed, p3, stats)
                ->name(),
            "MS-COA");
  EXPECT_EQ(robust::multislope_policy_for_mode(robust::ControllerMode::kDet,
                                               p3, {})
                ->name(),
            "MS-DET");
  EXPECT_EQ(robust::multislope_policy_for_mode(
                robust::ControllerMode::kNRand, p3, {})
                ->name(),
            "MS-Rand");
  EXPECT_EQ(robust::multislope_policy_for_mode(robust::ControllerMode::kNev,
                                               p3, {})
                ->name(),
            "MS-NEV");

  util::contracts::ScopedMode scope(util::contracts::Mode::kThrow);
  EXPECT_THROW(robust::multislope_policy_for_mode(
                   robust::ControllerMode::kProposed, p3, {}),
               util::contracts::ContractViolation);
}

TEST(MultislopeController, K2ProfileBitIdenticalToProfileFreeController) {
  sim::AdaptiveController::Config plain;
  plain.break_even = kB;
  sim::AdaptiveController::Config with_profile = plain;
  with_profile.profile = SlopeProfile::two_slope(kB);

  sim::AdaptiveController a(plain), b(with_profile);
  util::Rng rng(20140601);
  for (int i = 0; i < 200; ++i) {
    const double y = rng.uniform(0.0, 4.0 * kB);
    EXPECT_EQ(a.process_stop_expected(y), b.process_stop_expected(y)) << i;
    EXPECT_EQ(a.mode(), b.mode());
  }
  EXPECT_EQ(a.totals().online, b.totals().online);
  EXPECT_EQ(a.totals().offline, b.totals().offline);
}

TEST(MultislopeController, ThreeSlopeLearnsAndActsThroughTheFamily) {
  sim::AdaptiveController::Config config;
  config.break_even = kB;
  config.warmup_stops = 10;
  config.profile = three_state_profile();

  sim::AdaptiveController c(config);
  EXPECT_EQ(c.current_policy().name(), "MS-Rand");
  EXPECT_EQ(c.mode(), robust::ControllerMode::kNRand);

  util::Rng rng(20140601);
  for (int i = 0; i < 50; ++i)
    c.process_stop_expected(rng.uniform(0.0, 3.0 * kB));
  EXPECT_EQ(c.current_policy().name(), "MS-COA");
  EXPECT_EQ(c.mode(), robust::ControllerMode::kProposed);
  EXPECT_GT(c.totals().online, 0.0);

  // A profile whose deepest switch cost disagrees with break_even is a
  // configuration error, not a contract violation.
  sim::AdaptiveController::Config bad = config;
  bad.profile = SlopeProfile::two_slope(kB + 1.0);
  EXPECT_THROW(sim::AdaptiveController{bad}, std::invalid_argument);
}

TEST(MultislopeController, RobustLadderUsesMultislopeRungs) {
  sim::AdaptiveController::Config config;
  config.break_even = kB;
  config.warmup_stops = 5;
  config.profile = three_state_profile();
  config.robust.enabled = true;

  sim::AdaptiveController c(config);
  EXPECT_EQ(c.current_policy().name(), "MS-Rand");
  util::Rng rng(20140601);
  for (int i = 0; i < 40; ++i)
    c.process_stop_expected(rng.uniform(0.0, 3.0 * kB));
  EXPECT_EQ(c.mode(), robust::ControllerMode::kProposed);
  EXPECT_EQ(c.current_policy().name(), "MS-COA");
}

}  // namespace
}  // namespace idlered::costmodel
