// Property suite: the evaluator's totals line up with the paper's
// worst-case analysis (Sections 3-4).
//
// Three layers of properties:
//  1. Exact identities — for TOI, DET and N-Rand the per-stop expected cost
//     is a linear functional of the *sample's own* statistics, so for any
//     stop sample the evaluator's expected-mode total equals n times the
//     worst-case formula evaluated at the sample's (mu_hat, q_hat).
//  2. Worst-case dominance — for b-DET the formula (b + B)(mu/b + q) is an
//     upper bound on the sample mean cost, achieved by the adversarial
//     sample that piles all short mass at exactly y = b.
//  3. Monte-Carlo convergence — sampled mode converges to expected mode by
//     the law of large numbers, on both kernels, with deterministic seeds.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "dist/distribution.h"
#include "sim/evaluator.h"
#include "util/math.h"
#include "util/random.h"

namespace idlered::sim {
namespace {

constexpr double kB = 28.0;

std::vector<double> random_stops(std::size_t n, std::uint64_t seed,
                                 double scale) {
  util::Rng rng(seed);
  std::vector<double> stops(n);
  for (double& y : stops) y = rng.exponential(scale);
  return stops;
}

double mean_online(const core::Policy& p, const std::vector<double>& stops) {
  return evaluate(p, stops).online / static_cast<double>(stops.size());
}

// ---------------------------------------------------------- exact identities

TEST(AnalyticIdentityProperty, ToiMeanCostIsExactlyB) {
  // TOI turns off immediately: every stop costs B, so the sample mean cost
  // is worst_case_cost_toi = B identically.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto stops = random_stops(400, seed, 20.0);
    const auto s = dist::ShortStopStats::from_sample(stops, kB);
    EXPECT_NEAR(mean_online(*core::make_toi(kB), stops),
                core::worst_case_cost_toi(s, kB), 1e-9 * kB);
  }
}

TEST(AnalyticIdentityProperty, DetMeanCostEqualsMuPlus2qB) {
  // DET's cost is y for short stops and 2B for long ones, so the sample
  // mean is mu_hat + 2 q_hat B — the worst-case formula is tight on every
  // sample, not just the adversarial one.
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    for (double scale : {8.0, 28.0, 90.0}) {
      const auto stops = random_stops(500, seed, scale);
      const auto s = dist::ShortStopStats::from_sample(stops, kB);
      EXPECT_NEAR(mean_online(*core::make_det(kB), stops),
                  core::worst_case_cost_det(s, kB),
                  1e-9 * core::worst_case_cost_det(s, kB))
          << "scale=" << scale;
    }
  }
}

TEST(AnalyticIdentityProperty, NRandMeanCostEqualsEqualizerFormula) {
  // N-Rand equalizes: E[cost | y] = e/(e-1) min(y, B), so the sample mean
  // is e/(e-1)(mu_hat + q_hat B) exactly.
  for (std::uint64_t seed : {11u, 12u}) {
    for (double scale : {10.0, 40.0}) {
      const auto stops = random_stops(600, seed, scale);
      const auto s = dist::ShortStopStats::from_sample(stops, kB);
      EXPECT_NEAR(mean_online(*core::make_n_rand(kB), stops),
                  core::worst_case_cost_nrand(s, kB),
                  1e-9 * core::worst_case_cost_nrand(s, kB));
    }
  }
}

TEST(AnalyticIdentityProperty, NRandTraceCrIsTheKarlinBound) {
  // The equalizer property in CR form: online/offline = e/(e-1) on any
  // trace whatsoever.
  const auto stops = random_stops(1000, 13, 33.0);
  const auto t = evaluate(*core::make_n_rand(kB), stops);
  EXPECT_NEAR(t.cr(), util::kEOverEMinus1, 1e-12);
}

// ------------------------------------------------------ worst-case dominance

TEST(WorstCaseBoundProperty, BDetAdversarialSampleAchievesTheBound) {
  // The adversary's extremal distribution against a wait-until-b strategy:
  // all short mass at exactly y = b (pays b + B, contributes b to mu) and
  // long mass at 2B (pays b + B, offline B). The sample version achieves
  // the worst-case formula (b + B)(mu/b + q) exactly.
  const dist::ShortStopStats target{0.2 * kB, 0.25};
  ASSERT_TRUE(core::b_det_feasible(target, kB));
  const double b = core::b_det_optimal_threshold(target, kB);
  ASSERT_GT(b, 0.0);
  ASSERT_LT(b, kB);

  const std::size_t n = 2000;
  const auto n_long = static_cast<std::size_t>(target.q_b_plus * n);
  const auto n_at_b =
      static_cast<std::size_t>(target.mu_b_minus * n / b);
  ASSERT_GE(n, n_long + n_at_b);
  std::vector<double> stops;
  stops.insert(stops.end(), n_at_b, b);
  stops.insert(stops.end(), n_long, 2.0 * kB);
  stops.insert(stops.end(), n - n_at_b - n_long, 0.0);

  // Rounding n * mu / b to an integer shifts the sample stats slightly;
  // evaluate the formula at the sample's own statistics.
  const auto s_hat = dist::ShortStopStats::from_sample(stops, kB);
  const double bound = core::worst_case_cost_b_det_at(s_hat, kB, b);
  EXPECT_NEAR(mean_online(*core::make_b_det(kB, b), stops), bound,
              1e-9 * bound);
}

TEST(WorstCaseBoundProperty, BDetRandomSamplesNeverExceedTheBound) {
  // Any sample consistent with (mu_hat, q_hat) costs at most the
  // worst-case formula: short stops below b pay y < b + B, short stops in
  // [b, B) pay b + B but contribute >= b to mu.
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const auto stops = random_stops(800, seed, 25.0);
    const auto s_hat = dist::ShortStopStats::from_sample(stops, kB);
    for (double b : {0.25 * kB, 0.5 * kB, 0.75 * kB, kB}) {
      const double bound = core::worst_case_cost_b_det_at(s_hat, kB, b);
      EXPECT_LE(mean_online(*core::make_b_det(kB, b), stops),
                bound * (1.0 + 1e-12))
          << "b=" << b << " seed=" << seed;
    }
  }
}

TEST(WorstCaseBoundProperty, EveryVertexRespectsItsWorstCaseFormula) {
  // The umbrella property behind COA: on any sample, each vertex's mean
  // cost is bounded by its worst-case formula at the sample statistics.
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    for (double scale : {9.0, 28.0, 70.0}) {
      const auto stops = random_stops(600, seed, scale);
      const auto s = dist::ShortStopStats::from_sample(stops, kB);
      const double slack = 1.0 + 1e-12;
      EXPECT_LE(mean_online(*core::make_toi(kB), stops),
                core::worst_case_cost_toi(s, kB) * slack);
      EXPECT_LE(mean_online(*core::make_det(kB), stops),
                core::worst_case_cost_det(s, kB) * slack);
      EXPECT_LE(mean_online(*core::make_n_rand(kB), stops),
                core::worst_case_cost_nrand(s, kB) * slack);
      if (core::b_det_feasible(s, kB)) {
        const double b = core::b_det_optimal_threshold(s, kB);
        EXPECT_LE(mean_online(*core::make_b_det(kB, b), stops),
                  core::worst_case_cost_b_det(s, kB) * slack);
      }
    }
  }
}

TEST(WorstCaseBoundProperty, CoaNeverBeatenByItsOwnVertices) {
  // COA picks the vertex minimizing the worst-case cost, so its worst-case
  // guarantee is the minimum of the four formulas.
  for (double mu_frac : {0.1, 0.3, 0.6}) {
    for (double q : {0.05, 0.2, 0.5}) {
      dist::ShortStopStats s;
      s.mu_b_minus = mu_frac * kB;
      s.q_b_plus = q;
      if (!s.feasible(kB)) continue;
      const auto choice = core::choose_strategy(s, kB);
      EXPECT_LE(choice.expected_cost,
                core::worst_case_cost_toi(s, kB) + 1e-12);
      EXPECT_LE(choice.expected_cost,
                core::worst_case_cost_det(s, kB) + 1e-12);
      EXPECT_LE(choice.expected_cost,
                core::worst_case_cost_nrand(s, kB) + 1e-12);
      EXPECT_LE(choice.expected_cost,
                core::worst_case_cost_b_det(s, kB) + 1e-12);
    }
  }
}

// ------------------------------------------------- Monte-Carlo convergence

void expect_sampled_converges(const core::Policy& p, EvalKernel kernel,
                              double rel_tol) {
  // One draw per stop over a long trace; the sample mean of the online
  // total concentrates around the expected-mode total (LLN). Deterministic
  // seed, so this is a regression test, not a flaky statistical one.
  const auto stops = random_stops(200000, 97, 24.0);
  EvalOptions expected_opts;
  expected_opts.kernel = kernel;
  const auto expected = evaluate(p, stops, expected_opts);
  util::Rng rng(4242);
  EvalOptions sampled_opts{EvalMode::kSampled, &rng};
  sampled_opts.kernel = kernel;
  const auto sampled = evaluate(p, stops, sampled_opts);
  EXPECT_NEAR(sampled.online, expected.online, rel_tol * expected.online)
      << p.name();
  EXPECT_EQ(sampled.offline, expected.offline) << p.name();
}

TEST(SampledConvergenceProperty, NRandConvergesOnBothKernels) {
  expect_sampled_converges(*core::make_n_rand(kB), EvalKernel::kScalar, 0.01);
  expect_sampled_converges(*core::make_n_rand(kB), EvalKernel::kBatch, 0.01);
}

TEST(SampledConvergenceProperty, MomRandConvergesOnBothKernels) {
  const core::MomRandPolicy p(kB, 0.3 * kB);
  ASSERT_TRUE(p.revised());
  expect_sampled_converges(p, EvalKernel::kScalar, 0.01);
  expect_sampled_converges(p, EvalKernel::kBatch, 0.01);
}

TEST(SampledConvergenceProperty, CoaConvergesOnBothKernels) {
  const core::ProposedPolicy p(kB, dist::ShortStopStats{0.2 * kB, 0.3});
  expect_sampled_converges(p, EvalKernel::kScalar, 0.01);
  expect_sampled_converges(p, EvalKernel::kBatch, 0.01);
}

TEST(SampledConvergenceProperty, DeterministicPoliciesSampleExactly) {
  // Deterministic policies have a degenerate threshold distribution, so
  // sampled mode equals expected mode bit-for-bit, per stop, on both
  // kernels.
  const auto stops = random_stops(3000, 55, 30.0);
  for (const auto& p : {core::make_toi(kB), core::make_det(kB),
                        core::make_nev(kB), core::make_b_det(kB, 0.5 * kB)}) {
    for (EvalKernel kernel : {EvalKernel::kScalar, EvalKernel::kBatch}) {
      util::Rng rng(777);
      EvalOptions expected_opts;
      expected_opts.kernel = kernel;
      EvalOptions sampled_opts{EvalMode::kSampled, &rng};
      sampled_opts.kernel = kernel;
      const auto e = evaluate(*p, stops, expected_opts);
      const auto s = evaluate(*p, stops, sampled_opts);
      EXPECT_EQ(e, s) << p->name();
    }
  }
}

}  // namespace
}  // namespace idlered::sim
