// Edge-case and contract tests for the batch evaluation layer: degenerate
// batches (empty / single / all-short / all-long / q = 0), the documented
// contract violations (sampled without an RNG, per-stop tracing on the
// batch kernel, invalid stop values, accumulator misuse), and the b-DET
// infeasibility boundary. Contract checks run under contracts::ScopedMode
// so the suite exercises the throw path deterministically.
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "sim/batch_kernels.h"
#include "sim/evaluator.h"
#include "sim/stop_batch.h"
#include "stats/rolling.h"
#include "util/contracts.h"
#include "util/random.h"

namespace idlered::sim {
namespace {

namespace contracts = util::contracts;

constexpr double kB = 28.0;
constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------- degenerate batches

TEST(KernelEdgeCase, EmptyStopsAreVacuous) {
  const std::vector<double> none;
  for (EvalKernel kernel : {EvalKernel::kScalar, EvalKernel::kBatch}) {
    EvalOptions opts;
    opts.kernel = kernel;
    const auto t = evaluate(*core::make_det(kB), none, opts);
    EXPECT_EQ(t.online, 0.0);
    EXPECT_EQ(t.offline, 0.0);
    EXPECT_EQ(t.num_stops, 0u);
    EXPECT_EQ(t.cr(), 1.0);
  }
  const StopBatch batch(none);
  EXPECT_TRUE(batch.empty());
  const auto t = evaluate(*core::make_det(kB), batch);
  EXPECT_EQ(t.num_stops, 0u);
  EXPECT_EQ(t.cr(), 1.0);
}

TEST(KernelEdgeCase, SingleStopMatchesClosedForm) {
  struct Case {
    double y;
    double online;   // DET: y if y < B else 2B
    double offline;  // min(y, B)
  };
  for (const Case& c : {Case{10.0, 10.0, 10.0}, Case{kB, 2.0 * kB, kB},
                        Case{100.0, 2.0 * kB, kB}}) {
    EvalOptions opts;
    opts.kernel = EvalKernel::kBatch;
    const auto t = evaluate(*core::make_det(kB), {&c.y, 1}, opts);
    EXPECT_EQ(t.online, c.online) << "y=" << c.y;
    EXPECT_EQ(t.offline, c.offline) << "y=" << c.y;
  }
}

TEST(KernelEdgeCase, ZeroLengthStopsAreFreeForWaiters) {
  // y = 0: a waiter (threshold > 0) pays nothing, TOI (threshold 0) pays
  // the full restart B on every stop — the classic TOI pathology.
  const std::vector<double> zeros(100, 0.0);
  EvalOptions opts;
  opts.kernel = EvalKernel::kBatch;
  EXPECT_EQ(evaluate(*core::make_det(kB), zeros, opts).online, 0.0);
  EXPECT_EQ(evaluate(*core::make_nev(kB), zeros, opts).online, 0.0);
  EXPECT_EQ(evaluate(*core::make_toi(kB), zeros, opts).online, 100.0 * kB);
  EXPECT_EQ(evaluate(*core::make_toi(kB), zeros, opts).offline, 0.0);
}

TEST(KernelEdgeCase, AllShortTraceHasNoLongCostTerms) {
  util::Rng rng(5);
  std::vector<double> stops(400);
  double sum = 0.0;
  for (double& y : stops) {
    y = rng.uniform(0.0, 0.9 * kB);
    sum += y;
  }
  EvalOptions opts;
  opts.kernel = EvalKernel::kBatch;
  // DET never restarts on an all-short trace: online == offline == sum(y).
  const auto det = evaluate(*core::make_det(kB), stops, opts);
  EXPECT_NEAR(det.online, sum, 1e-9);
  EXPECT_NEAR(det.offline, sum, 1e-9);
  EXPECT_NEAR(det.cr(), 1.0, 1e-12);
}

TEST(KernelEdgeCase, AllLongTraceCostsAreExactMultiples) {
  const std::vector<double> stops(321, 5.0 * kB);
  EvalOptions opts;
  opts.kernel = EvalKernel::kBatch;
  const auto det = evaluate(*core::make_det(kB), stops, opts);
  EXPECT_NEAR(det.online, 321.0 * 2.0 * kB, 1e-9);
  const auto toi = evaluate(*core::make_toi(kB), stops, opts);
  EXPECT_NEAR(toi.online, 321.0 * kB, 1e-9);
  EXPECT_NEAR(toi.cr(), 1.0, 1e-12);  // TOI is offline-optimal here
}

TEST(KernelEdgeCase, QZeroStatsMakeBDetInfeasibleButCoaStillEvaluates) {
  // q = 0 sends b* = sqrt(mu B / q) to infinity: the b-DET vertex is
  // infeasible and must never be chosen, but COA itself stays well-defined
  // and its batch evaluation matches scalar.
  const dist::ShortStopStats s{0.3 * kB, 0.0};
  EXPECT_FALSE(core::b_det_feasible(s, kB));
  EXPECT_EQ(core::worst_case_cost_b_det(s, kB), kInf);
  const core::ProposedPolicy coa(kB, s);
  EXPECT_NE(coa.choice().strategy, core::Strategy::kBDet);

  util::Rng rng(3);
  std::vector<double> stops(200);
  for (double& y : stops) y = rng.uniform(0.0, 0.9 * kB);
  EvalOptions opts;
  opts.kernel = EvalKernel::kBatch;
  const auto scalar = evaluate(coa, stops);
  const auto batch = evaluate(coa, stops, opts);
  EXPECT_NEAR(batch.online, scalar.online, 1e-9);
}

// ------------------------------------------------------ contract violations

TEST(KernelContract, SampledModeWithoutRngThrowsOnBothKernels) {
  const std::vector<double> stops{1.0, 2.0};
  for (EvalKernel kernel : {EvalKernel::kScalar, EvalKernel::kBatch}) {
    EvalOptions opts;
    opts.mode = EvalMode::kSampled;
    opts.kernel = kernel;
    EXPECT_THROW(evaluate(*core::make_det(kB), stops, opts),
                 std::invalid_argument);
  }
}

TEST(KernelContract, TraceStopsOnBatchKernelIsAContractViolation) {
  contracts::ScopedMode guard(contracts::Mode::kThrow);
  const std::vector<double> stops{1.0, 2.0};
  EvalOptions opts;
  opts.kernel = EvalKernel::kBatch;
  opts.trace_stops = true;
  EXPECT_THROW(evaluate(*core::make_det(kB), stops, opts),
               std::invalid_argument);
  const StopBatch batch(stops);
  EXPECT_THROW(evaluate(*core::make_det(kB), batch, opts),
               std::invalid_argument);
  // The scalar kernel accepts the same options.
  opts.kernel = EvalKernel::kScalar;
  EXPECT_NO_THROW(evaluate(*core::make_det(kB), stops, opts));
}

TEST(KernelContract, InvalidStopValuesAreRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const std::vector<double>& bad :
       {std::vector<double>{1.0, -2.0}, std::vector<double>{nan},
        std::vector<double>{3.0, kInf}}) {
    EXPECT_THROW(StopBatch{bad}, std::invalid_argument);
    EvalOptions opts;
    opts.kernel = EvalKernel::kBatch;
    EXPECT_THROW(evaluate(*core::make_det(kB), bad, opts),
                 std::invalid_argument);
  }
}

TEST(KernelContract, StopBatchRejectsInvalidBreakEven) {
  const StopBatch batch(std::vector<double>{1.0, 2.0});
  EXPECT_THROW(batch.offline_total(0.0), std::invalid_argument);
  EXPECT_THROW(batch.offline_total(-1.0), std::invalid_argument);
  EXPECT_THROW(batch.offline_total(std::nan("")), std::invalid_argument);
}

TEST(KernelContract, OfflineTotalMemoizationIsBitStable) {
  util::Rng rng(8);
  std::vector<double> stops(1000);
  for (double& y : stops) y = rng.uniform(0.0, 3.0 * kB);
  const StopBatch batch(stops);
  const double first = batch.offline_total(kB);
  EXPECT_EQ(first, batch.offline_total(kB));  // memo hit, same bits
  EXPECT_EQ(first, batch::offline_sum(stops, kB));
}

TEST(KernelContract, AccumulatorEvictContractsFire) {
  contracts::ScopedMode guard(contracts::Mode::kThrow);
  stats::ShortStopAccumulator acc(kB);
  // Evicting from an empty accumulator is a contract violation.
  EXPECT_THROW(acc.evict(1.0), contracts::ContractViolation);
  // Evicting a long stop when none was inserted corrupts q silently —
  // also a contract violation.
  acc.insert(1.0);
  EXPECT_THROW(acc.evict(2.0 * kB), contracts::ContractViolation);
  // Legitimate evict still works.
  EXPECT_NO_THROW(acc.evict(1.0));
}

TEST(KernelContract, AccumulatorStatsOnEmptyIsAContractViolation) {
  contracts::ScopedMode guard(contracts::Mode::kThrow);
  stats::ShortStopAccumulator acc(kB);
  EXPECT_THROW(acc.stats(), std::invalid_argument);
  acc.insert(3.0);
  acc.evict(3.0);
  EXPECT_THROW(acc.stats(), std::invalid_argument);
}

TEST(KernelContract, AccumulatorConstructionValidates) {
  EXPECT_THROW(stats::ShortStopAccumulator{0.0}, std::invalid_argument);
  EXPECT_THROW(stats::ShortStopAccumulator{-kB}, std::invalid_argument);
  EXPECT_THROW(stats::ShortStopAccumulator{kInf}, std::invalid_argument);
  EXPECT_THROW(stats::ShortStopAccumulator(kB).insert(-1.0),
               std::invalid_argument);
  EXPECT_THROW(stats::ShortStopAccumulator(kB).insert(kInf),
               std::invalid_argument);
  EXPECT_THROW(stats::SlidingShortStopWindow(kB, 0), std::invalid_argument);
  EXPECT_THROW(stats::SlidingShortStopWindow(0.0, 4), std::invalid_argument);
}

TEST(KernelContract, BDetInfeasibleStatsThrowInAnalyticLayer) {
  // Statistics outside the feasible region (mu > B(1 - q)) are rejected by
  // the analytic layer the kernels sit on — the batch path never sees them.
  const dist::ShortStopStats infeasible{0.9 * kB, 0.5};
  EXPECT_FALSE(infeasible.feasible(kB));
  EXPECT_THROW(core::choose_strategy(infeasible, kB), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::sim
