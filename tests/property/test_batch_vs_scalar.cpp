// Property suite: the batch kernels agree with the scalar evaluator within
// the documented summation-order bound, on every policy of the lineup and
// across awkward sizes (empty, sub-lane, lane-straddling, block-straddling).
//
// The bound under test is the one sim/batch_kernels.h documents:
//     |batch - scalar| <= 8 * n * eps * |scalar|     (eps = DBL_EPSILON)
// Per-element costs are bit-identical between the kernels; only the
// accumulation order differs, so the gap is pure reassociation rounding.
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/analytic.h"
#include "core/policies.h"
#include "core/proposed.h"
#include "sim/batch_kernels.h"
#include "sim/evaluator.h"
#include "sim/stop_batch.h"
#include "util/random.h"

namespace idlered::sim {
namespace {

constexpr double kB = 28.0;
constexpr double kEps = std::numeric_limits<double>::epsilon();

/// The documented cross-kernel tolerance for an n-element total.
double ulp_bound(std::size_t n, double reference) {
  return 8.0 * static_cast<double>(n) * kEps * std::fabs(reference);
}

std::vector<double> random_stops(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> stops(n);
  for (double& y : stops) y = rng.uniform(0.0, 4.0 * kB);
  return stops;
}

dist::ShortStopStats stats_point(double mu, double q) {
  dist::ShortStopStats s;
  s.mu_b_minus = mu;
  s.q_b_plus = q;
  return s;
}

/// The full policy lineup the kernels claim to cover, plus the generic
/// fallback path (a policy with no closed-form kernel).
std::vector<core::PolicyPtr> policy_lineup() {
  std::vector<core::PolicyPtr> ps;
  ps.push_back(core::make_toi(kB));
  ps.push_back(core::make_det(kB));
  ps.push_back(core::make_nev(kB));
  ps.push_back(core::make_b_det(kB, 0.4 * kB));
  ps.push_back(core::make_n_rand(kB));
  ps.push_back(core::make_mom_rand(kB, 0.3 * kB));  // revised density
  ps.push_back(core::make_mom_rand(kB, 0.9 * kB));  // N-Rand fallback regime
  ps.push_back(std::make_unique<core::ProposedPolicy>(
      kB, stats_point(0.2 * kB, 0.3)));
  return ps;
}

void expect_within_ulp_bound(const CostTotals& scalar,
                             const CostTotals& batch, std::size_t n,
                             const std::string& label) {
  EXPECT_EQ(scalar.num_stops, batch.num_stops) << label;
  EXPECT_NEAR(batch.online, scalar.online, ulp_bound(n, scalar.online))
      << label;
  EXPECT_NEAR(batch.offline, scalar.offline, ulp_bound(n, scalar.offline))
      << label;
}

TEST(BatchVsScalarProperty, ExpectedModeAgreesAcrossSizesAndPolicies) {
  const auto lineup = policy_lineup();
  // Sizes chosen to straddle the lane width (8) and catch tail handling.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{8}, std::size_t{9}, std::size_t{63},
                        std::size_t{64}, std::size_t{65}, std::size_t{1000},
                        std::size_t{4097}}) {
    const auto stops = random_stops(n, 100 + n);
    for (const auto& p : lineup) {
      EvalOptions scalar_opts;
      EvalOptions batch_opts;
      batch_opts.kernel = EvalKernel::kBatch;
      const auto s = evaluate(*p, stops, scalar_opts);
      const auto b = evaluate(*p, stops, batch_opts);
      expect_within_ulp_bound(s, b, n,
                              p->name() + " n=" + std::to_string(n));
    }
  }
}

TEST(BatchVsScalarProperty, SampledModeAgreesWithSameSeed) {
  const auto lineup = policy_lineup();
  for (std::size_t n : {std::size_t{9}, std::size_t{256}, std::size_t{1023},
                        std::size_t{1024}, std::size_t{1025},
                        std::size_t{2065}}) {
    const auto stops = random_stops(n, 200 + n);
    for (const auto& p : lineup) {
      util::Rng rng_scalar(42);
      util::Rng rng_batch(42);
      EvalOptions so{EvalMode::kSampled, &rng_scalar};
      EvalOptions bo{EvalMode::kSampled, &rng_batch};
      bo.kernel = EvalKernel::kBatch;
      const auto s = evaluate(*p, stops, so);
      const auto b = evaluate(*p, stops, bo);
      expect_within_ulp_bound(s, b, n,
                              p->name() + " sampled n=" + std::to_string(n));
    }
  }
}

TEST(BatchVsScalarProperty, SampledModeConsumesIdenticalDrawSequence) {
  // The batch kernel draws thresholds serially in stop order — the exact
  // sequence the scalar loop draws — so after evaluation both RNGs must sit
  // at the same stream position.
  const auto stops = random_stops(777, 7);
  const auto p = core::make_n_rand(kB);
  util::Rng rng_scalar(9001);
  util::Rng rng_batch(9001);
  EvalOptions so{EvalMode::kSampled, &rng_scalar};
  EvalOptions bo{EvalMode::kSampled, &rng_batch};
  bo.kernel = EvalKernel::kBatch;
  evaluate(*p, stops, so);
  evaluate(*p, stops, bo);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(rng_scalar.uniform(), rng_batch.uniform()) << "draw " << i;
}

TEST(BatchVsScalarProperty, BatchTotalsAreBitStableAcrossRepeats) {
  const auto stops = random_stops(4097, 3);
  for (const auto& p : policy_lineup()) {
    EvalOptions opts;
    opts.kernel = EvalKernel::kBatch;
    const auto a = evaluate(*p, stops, opts);
    const auto b = evaluate(*p, stops, opts);
    EXPECT_EQ(a, b) << p->name();  // bitwise: CostTotals operator==
  }
}

TEST(BatchVsScalarProperty, StopBatchOverloadIsBitIdenticalToSpanBatch) {
  const auto stops = random_stops(513, 11);
  const StopBatch batch(stops);
  for (const auto& p : policy_lineup()) {
    EvalOptions opts;
    opts.kernel = EvalKernel::kBatch;
    const auto via_span = evaluate(*p, stops, opts);
    const auto via_batch = evaluate(*p, batch, opts);
    EXPECT_EQ(via_span, via_batch) << p->name();
  }
}

TEST(BatchVsScalarProperty, OfflineSumMatchesScalarWithinBound) {
  for (std::size_t n :
       {std::size_t{1}, std::size_t{17}, std::size_t{4096}}) {
    const auto stops = random_stops(n, 31 + n);
    double scalar = 0.0;
    for (double y : stops) scalar += std::min(y, kB);
    const double batch = batch::offline_sum(stops, kB);
    EXPECT_NEAR(batch, scalar, ulp_bound(n, scalar)) << "n=" << n;
  }
}

TEST(BatchVsScalarProperty, GenericFallbackCoversNonClosedFormPolicies) {
  // GenericRandomizedPolicy has no closed-form kernel: the batch path must
  // fall back to generic_online_sum and still agree with scalar.
  const core::NRandPolicy reference(kB);
  core::GenericRandomizedPolicy p(
      kB, [&](double x) { return reference.pdf(x); }, "generic-nrand");
  const auto stops = random_stops(300, 13);
  EvalOptions opts;
  opts.kernel = EvalKernel::kBatch;
  const auto s = evaluate(p, stops);
  const auto b = evaluate(p, stops, opts);
  // Quadrature costs are identical per element; only summation differs —
  // but quadrature noise dwarfs ulp, so allow a proportionally loose bound.
  EXPECT_NEAR(b.online, s.online, 1e-9 * s.online);
}

TEST(BatchVsScalarProperty, CoaDispatchCoversEveryVertex) {
  // Sweep (mu, q) until COA has selected each of the four vertices at
  // least once, checking batch-vs-scalar agreement at every point. This
  // pins the ProposedPolicy vertex dispatch inside the batch kernel.
  const auto stops = random_stops(512, 17);
  bool seen[4] = {false, false, false, false};
  for (double mu_frac : {0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    for (double q : {0.01, 0.05, 0.1, 0.3, 0.6, 0.9}) {
      const auto s = stats_point(mu_frac * kB, q);
      if (!s.feasible(kB)) continue;
      const core::ProposedPolicy p(kB, s);
      seen[static_cast<int>(p.choice().strategy)] = true;
      EvalOptions opts;
      opts.kernel = EvalKernel::kBatch;
      const auto sc = evaluate(p, stops);
      const auto ba = evaluate(p, stops, opts);
      expect_within_ulp_bound(sc, ba, stops.size(),
                              "COA(" + core::to_string(p.choice().strategy) +
                                  ") mu=" + std::to_string(mu_frac) +
                                  " q=" + std::to_string(q));
    }
  }
  EXPECT_TRUE(seen[static_cast<int>(core::Strategy::kToi)]);
  EXPECT_TRUE(seen[static_cast<int>(core::Strategy::kDet)]);
  EXPECT_TRUE(seen[static_cast<int>(core::Strategy::kBDet)]);
  EXPECT_TRUE(seen[static_cast<int>(core::Strategy::kNRand)]);
}

TEST(BatchVsScalarProperty, NevThresholdNeedsNoSpecialLane) {
  // NEV is threshold = +inf: every lane select picks y. The batch total
  // must equal the plain sum of stop lengths within the bound.
  const auto stops = random_stops(1000, 23);
  double plain = 0.0;
  for (double y : stops) plain += y;
  const double batch = batch::threshold_online_sum(
      stops, std::numeric_limits<double>::infinity(), kB);
  EXPECT_NEAR(batch, plain, ulp_bound(stops.size(), plain));
}

TEST(BatchVsScalarProperty, MomRandKernelRespectsFallbackRegime) {
  // Above the activation threshold MOM-Rand *is* N-Rand; the dispatcher
  // must route to the N-Rand kernel, not the revised-density kernel.
  const core::MomRandPolicy p(kB,
                              core::MomRandPolicy::mu_threshold(kB) + 1.0);
  ASSERT_FALSE(p.revised());
  const auto stops = random_stops(333, 29);
  EvalOptions opts;
  opts.kernel = EvalKernel::kBatch;
  const auto s = evaluate(p, stops);
  const auto b = evaluate(p, stops, opts);
  expect_within_ulp_bound(s, b, stops.size(), "MOM-Rand fallback");
}

TEST(BatchVsScalarProperty, PerElementCostsAreBitIdenticalToPolicies) {
  // Stronger than the total bound: a single-element batch has only one
  // summand, so batch == scalar *bitwise* — the kernels mirror each
  // policy's expected_cost arithmetic exactly.
  util::Rng rng(37);
  for (const auto& p : policy_lineup()) {
    for (int i = 0; i < 50; ++i) {
      const std::vector<double> one{rng.uniform(0.0, 4.0 * kB)};
      EvalOptions opts;
      opts.kernel = EvalKernel::kBatch;
      const auto s = evaluate(*p, one);
      const auto b = evaluate(*p, one, opts);
      EXPECT_EQ(s.online, b.online) << p->name() << " y=" << one[0];
      EXPECT_EQ(s.offline, b.offline) << p->name() << " y=" << one[0];
    }
  }
}

}  // namespace
}  // namespace idlered::sim
