// Tests for the arena-backed LP workspace API (lp/arena.h).
//
// The load-bearing property is determinism under reuse: a long-lived
// Workspace (and solve_batch over a WorkspacePool) must produce results
// bit-for-bit identical to the legacy value-type path, which builds a
// fresh one-shot workspace per call — any stale state leaking between
// solves shows up as an exact-equality failure here.
#include "lp/arena.h"

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/solver_lp.h"
#include "engine/thread_pool.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace idlered::lp {
namespace {

// ---------------------------------------------------------------------------
// Random instance generation (feasible, infeasible, and unbounded mix).

struct FlatProblem {
  std::vector<double> objective;
  std::vector<double> coeffs;  // row-major m x n
  std::vector<Sense> senses;
  std::vector<double> rhs;
  bool maximize = false;

  ProblemView view() const {
    return ProblemView{objective, coeffs, senses, rhs, maximize, {}, {}};
  }

  Problem value_type() const {
    Problem p;
    p.objective = objective;
    p.maximize = maximize;
    const std::size_t n = objective.size();
    for (std::size_t r = 0; r < rhs.size(); ++r) {
      p.add_constraint(
          std::vector<double>(coeffs.begin() + static_cast<long>(r * n),
                              coeffs.begin() + static_cast<long>((r + 1) * n)),
          senses[r], rhs[r]);
    }
    return p;
  }
};

// Draws a random LP whose population spans all three outcomes: mostly
// bounded-feasible, with deliberate infeasible (contradictory bounds) and
// unbounded (maximize with an unconstrained improving ray) instances.
FlatProblem random_problem(util::Rng& rng) {
  const auto n = static_cast<std::size_t>(rng.uniform(1.0, 5.999));
  const auto m = static_cast<std::size_t>(rng.uniform(1.0, 6.999));
  FlatProblem p;
  p.maximize = rng.uniform() < 0.5;
  p.objective.resize(n);
  for (double& c : p.objective) c = rng.uniform(-5.0, 5.0);
  p.coeffs.assign(m * n, 0.0);
  p.senses.resize(m);
  p.rhs.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j)
      p.coeffs[r * n + j] = rng.uniform(-3.0, 3.0);
    const double pick = rng.uniform();
    p.senses[r] = pick < 0.5   ? Sense::kLessEqual
                  : pick < 0.8 ? Sense::kGreaterEqual
                               : Sense::kEqual;
    p.rhs[r] = rng.uniform(-4.0, 8.0);
  }
  const double shape = rng.uniform();
  if (shape < 0.15) {
    // Contradictory box on x_0: x_0 <= 1 and x_0 >= 2 (infeasible).
    for (std::size_t j = 0; j < n; ++j) {
      p.coeffs[0 * n + j] = j == 0 ? 1.0 : 0.0;
      if (m > 1) p.coeffs[1 * n + j] = j == 0 ? 1.0 : 0.0;
    }
    p.senses[0] = Sense::kLessEqual;
    p.rhs[0] = 1.0;
    if (m > 1) {
      p.senses[1] = Sense::kGreaterEqual;
      p.rhs[1] = 2.0;
    }
  } else if (shape < 0.3) {
    // Unbounded shape: maximize a positive objective subject only to >=
    // floors, so every improving ray is feasible.
    p.maximize = true;
    for (std::size_t j = 0; j < n; ++j)
      p.objective[j] = rng.uniform(0.5, 3.0);
    for (std::size_t r = 0; r < m; ++r) {
      p.senses[r] = Sense::kGreaterEqual;
      p.rhs[r] = rng.uniform(0.0, 2.0);
      for (std::size_t j = 0; j < n; ++j)
        p.coeffs[r * n + j] = rng.uniform(0.0, 2.0);
    }
  }
  return p;
}

// Exact (bit-for-bit) agreement between a legacy Solution and a view.
void expect_identical(const Solution& legacy, const SolutionView& arena) {
  ASSERT_EQ(legacy.status, arena.status);
  EXPECT_EQ(legacy.objective_value, arena.objective_value);
  ASSERT_EQ(legacy.x.size(), arena.x.size());
  for (std::size_t i = 0; i < legacy.x.size(); ++i)
    EXPECT_EQ(legacy.x[i], arena.x[i]) << "x[" << i << "]";
  ASSERT_EQ(legacy.duals.size(), arena.duals.size());
  for (std::size_t i = 0; i < legacy.duals.size(); ++i)
    EXPECT_EQ(legacy.duals[i], arena.duals[i]) << "duals[" << i << "]";
}

// ---------------------------------------------------------------------------
// TableauView mechanics.

TEST(TableauViewTest, StridedAccessKeepsRowsApart) {
  std::vector<double> buf(3 * 7, -1.0);
  std::vector<std::size_t> basis(2, 0);
  TableauView t(buf.data(), basis.data(), 3, 4, 7);
  t.clear();
  // Only the logical 3x4 region is cleared; the stride padding is untouched.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(t.at(r, c), 0.0);
    for (std::size_t c = 4; c < 7; ++c) EXPECT_EQ(buf[r * 7 + c], -1.0);
  }
  t.at(1, 2) = 5.0;
  EXPECT_EQ(buf[1 * 7 + 2], 5.0);
}

TEST(TableauViewTest, PivotNormalizesAndEliminates) {
  std::vector<double> buf(2 * 8, 0.0);
  std::vector<std::size_t> basis(1, 0);
  TableauView t(buf.data(), basis.data(), 2, 3, 8);
  // Row 0: 2x + 4y = 6;  row 1: x + y = 2. Pivot on (0, 0).
  t.at(0, 0) = 2.0; t.at(0, 1) = 4.0; t.at(0, 2) = 6.0;
  t.at(1, 0) = 1.0; t.at(1, 1) = 1.0; t.at(1, 2) = 2.0;
  t.pivot(0, 0);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t.at(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.at(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(t.at(1, 2), -1.0);
}

// ---------------------------------------------------------------------------
// Workspace basics and contracts.

TEST(WorkspaceTest, CapacityMath) {
  Workspace ws(4, 3);
  EXPECT_EQ(ws.max_constraints(), 4u);
  EXPECT_EQ(ws.max_vars(), 3u);
  // n + 2m + 1: each constraint adds at most one slack and one artificial.
  EXPECT_EQ(ws.col_capacity(), 3u + 2u * 4u + 1u);
}

TEST(WorkspaceTest, ShapeContractsThrow) {
  Workspace ws(2, 3);
  EXPECT_THROW(ws.stage(3, 3), std::invalid_argument);
  EXPECT_THROW(ws.stage(2, 4), std::invalid_argument);
  EXPECT_THROW(ws.tableau(4, 2), std::invalid_argument);
  EXPECT_THROW(ws.tableau(2, ws.col_capacity() + 1), std::invalid_argument);
  EXPECT_NO_THROW(ws.stage(2, 3));
}

TEST(WorkspaceTest, MismatchedSpanWidthsThrow) {
  Workspace ws(2, 3);
  const std::vector<double> objective{1.0, 1.0, 1.0};
  const std::vector<double> coeffs{1.0, 1.0, 1.0, 1.0, 1.0};  // 5 != 2 * 3
  const std::vector<Sense> senses{Sense::kLessEqual, Sense::kLessEqual};
  const std::vector<double> rhs{1.0, 1.0};
  const ProblemView bad{objective, coeffs, senses, rhs, false, {}, {}};
  EXPECT_THROW(solve(ws, bad), std::invalid_argument);
}

// Regression for the hand-assembled `constraints` vector: add_constraint
// validates widths, but nothing used to stop a caller from pushing a
// mismatched row directly and crashing the solver on out-of-bounds reads.
TEST(WorkspaceTest, HandAssembledMismatchedWidthThrows) {
  Problem p;
  p.objective = {1.0, 2.0};
  p.constraints.push_back(
      Constraint{{1.0, 2.0, 3.0}, Sense::kLessEqual, 4.0});  // width 3 != 2
  EXPECT_THROW(lp::solve(p), std::invalid_argument);
}

TEST(WorkspaceTest, SolutionViewMaterializeCopiesEverything) {
  Workspace ws(2, 2);
  ProblemStage stage = ws.stage(1, 2, /*maximize=*/true);
  stage.objective[0] = 3.0;
  stage.objective[1] = 2.0;
  stage.coeffs[0] = 1.0;
  stage.coeffs[1] = 1.0;
  stage.rhs[0] = 4.0;
  const SolutionView view = solve(ws, stage.view());
  ASSERT_TRUE(view.optimal());
  const Solution copy = view.materialize();
  EXPECT_EQ(copy.status, view.status);
  EXPECT_EQ(copy.objective_value, view.objective_value);
  ASSERT_EQ(copy.x.size(), 2u);
  EXPECT_EQ(copy.x[0], view.x[0]);
  EXPECT_EQ(copy.x[1], view.x[1]);
  ASSERT_EQ(copy.duals.size(), 1u);
  EXPECT_EQ(copy.duals[0], view.duals[0]);
}

TEST(WorkspaceTest, SmallSolveAfterLargeSolveIsClean) {
  // A big messy solve followed by a tiny one: stale tableau/basis state
  // from the large problem must not leak into the small one.
  Workspace ws(6, 6);
  util::Rng rng(2024);
  for (int i = 0; i < 50; ++i) {
    const FlatProblem big = random_problem(rng);
    ws.stage(big.rhs.size(), big.objective.size());
    (void)solve(ws, big.view());

    Problem tiny;
    tiny.objective = {3.0, 2.0};
    tiny.maximize = true;
    tiny.add_constraint({1.0, 1.0}, Sense::kLessEqual, 4.0);
    tiny.add_constraint({1.0, 3.0}, Sense::kLessEqual, 6.0);
    const Solution fresh = lp::solve(tiny);

    const FlatProblem flat_tiny{
        tiny.objective,
        {1.0, 1.0, 1.0, 3.0},
        {Sense::kLessEqual, Sense::kLessEqual},
        {4.0, 6.0},
        true};
    expect_identical(fresh, solve(ws, flat_tiny.view()));
  }
}

// ---------------------------------------------------------------------------
// Property: bit-for-bit equality across all three solve paths.

TEST(ArenaPropertyTest, ReusedWorkspaceMatchesLegacyBitForBit) {
  util::Rng rng(7);
  Workspace reused(8, 8);
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int i = 0; i < 500; ++i) {
    const FlatProblem p = random_problem(rng);
    const Solution legacy = lp::solve(p.value_type());
    const SolutionView arena = solve(reused, p.view());
    expect_identical(legacy, arena);
    switch (legacy.status) {
      case Status::kOptimal: ++optimal; break;
      case Status::kInfeasible: ++infeasible; break;
      case Status::kUnbounded: ++unbounded; break;
    }
  }
  // The generator must actually exercise all three outcomes.
  EXPECT_GT(optimal, 50);
  EXPECT_GT(infeasible, 20);
  EXPECT_GT(unbounded, 20);
}

TEST(ArenaPropertyTest, SolveBatchEqualsScalarSolves) {
  util::Rng rng(99);
  constexpr std::size_t kBatch = 64;
  std::vector<FlatProblem> problems;
  problems.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i)
    problems.push_back(random_problem(rng));

  // Output storage so the batch's primals/duals survive workspace reuse.
  std::vector<std::vector<double>> x_out(kBatch), duals_out(kBatch);
  std::vector<ProblemView> views;
  views.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    x_out[i].assign(problems[i].objective.size(), 0.0);
    duals_out[i].assign(problems[i].rhs.size(), 0.0);
    ProblemView v = problems[i].view();
    v.x_out = x_out[i];
    v.duals_out = duals_out[i];
    views.push_back(v);
  }

  WorkspacePool pool(8, 8);
  std::vector<BatchResult> results(kBatch);
  const std::size_t n_optimal = solve_batch(pool, views, results);

  std::size_t expected_optimal = 0;
  for (std::size_t i = 0; i < kBatch; ++i) {
    const Solution scalar = lp::solve(problems[i].value_type());
    ASSERT_EQ(scalar.status, results[i].status) << "problem " << i;
    EXPECT_EQ(scalar.objective_value, results[i].objective_value);
    if (scalar.optimal()) {
      ++expected_optimal;
      for (std::size_t j = 0; j < scalar.x.size(); ++j)
        EXPECT_EQ(scalar.x[j], x_out[i][j]);
      for (std::size_t j = 0; j < scalar.duals.size(); ++j)
        EXPECT_EQ(scalar.duals[j], duals_out[i][j]);
    }
  }
  EXPECT_EQ(n_optimal, expected_optimal);
}

TEST(ArenaPropertyTest, BatchResultCountMismatchThrows) {
  WorkspacePool pool(2, 2);
  const std::vector<double> objective{1.0};
  const std::vector<double> coeffs{1.0};
  const std::vector<Sense> senses{Sense::kLessEqual};
  const std::vector<double> rhs{1.0};
  const ProblemView v{objective, coeffs, senses, rhs, false, {}, {}};
  std::vector<ProblemView> problems{v, v};
  std::vector<BatchResult> too_few(1);
  EXPECT_THROW(solve_batch(pool, problems, too_few), std::invalid_argument);
  EXPECT_THROW(pool.at(1), std::invalid_argument);
}

// Threaded determinism: partition a problem list into chunks, one pool
// slot per chunk, and check the merged results never depend on the thread
// count. (The LP layer itself spawns no threads; concurrency is the
// caller's, via the engine pool.)
TEST(ArenaPropertyTest, ThreadedPartitionsMatchSerialReference) {
  util::Rng rng(1234);
  constexpr std::size_t kProblems = 64;
  std::vector<FlatProblem> problems;
  problems.reserve(kProblems);
  for (std::size_t i = 0; i < kProblems; ++i)
    problems.push_back(random_problem(rng));

  std::vector<Solution> reference;
  reference.reserve(kProblems);
  for (const FlatProblem& p : problems)
    reference.push_back(lp::solve(p.value_type()));

  for (const int threads : {1, 2, 8}) {
    constexpr std::size_t kChunks = 8;
    constexpr std::size_t kPerChunk = kProblems / kChunks;
    WorkspacePool pool(8, 8, kChunks);
    std::vector<BatchResult> results(kProblems);
    std::vector<std::vector<double>> x_out(kProblems);
    std::vector<std::vector<double>> duals_out(kProblems);
    std::vector<ProblemView> views(kProblems);
    for (std::size_t i = 0; i < kProblems; ++i) {
      x_out[i].assign(problems[i].objective.size(), 0.0);
      duals_out[i].assign(problems[i].rhs.size(), 0.0);
      views[i] = problems[i].view();
      views[i].x_out = x_out[i];
      views[i].duals_out = duals_out[i];
    }

    engine::ThreadPool tp(threads);
    tp.parallel_for(kChunks, [&](std::size_t chunk) {
      const std::span<ProblemView> span(views.data() + chunk * kPerChunk,
                                        kPerChunk);
      const std::span<BatchResult> out(results.data() + chunk * kPerChunk,
                                       kPerChunk);
      solve_batch(pool, span, out, chunk);
    });

    for (std::size_t i = 0; i < kProblems; ++i) {
      ASSERT_EQ(reference[i].status, results[i].status)
          << "threads=" << threads << " problem " << i;
      EXPECT_EQ(reference[i].objective_value, results[i].objective_value);
      if (reference[i].optimal()) {
        for (std::size_t j = 0; j < reference[i].x.size(); ++j)
          EXPECT_EQ(reference[i].x[j], x_out[i][j]);
        for (std::size_t j = 0; j < reference[i].duals.size(); ++j)
          EXPECT_EQ(reference[i].duals[j], duals_out[i][j]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// COA integration: the workspace overload and the batched COA helper.

TEST(CoaWorkspaceTest, WorkspaceOverloadMatchesOneShot) {
  constexpr double kB = 28.0;
  Workspace ws(2, 3);
  for (double mu_frac : {0.05, 0.2, 0.4, 0.6, 0.8}) {
    for (double q : {0.0, 0.05, 0.2, 0.5, 0.9}) {
      dist::ShortStopStats stats;
      stats.q_b_plus = q;
      stats.mu_b_minus = mu_frac * kB * (1.0 - q);
      const core::LpStrategySolution one_shot =
          core::solve_constrained_lp(stats, kB);
      const core::LpStrategySolution reused =
          core::solve_constrained_lp(stats, kB, ws);
      EXPECT_EQ(one_shot.alpha, reused.alpha);
      EXPECT_EQ(one_shot.beta, reused.beta);
      EXPECT_EQ(one_shot.gamma, reused.gamma);
      EXPECT_EQ(one_shot.expected_cost, reused.expected_cost);
      EXPECT_EQ(one_shot.strategy, reused.strategy);
      EXPECT_EQ(one_shot.b, reused.b);
    }
  }
}

TEST(CoaWorkspaceTest, BatchHelperMatchesScalarLoop) {
  constexpr double kB = 28.0;
  std::vector<dist::ShortStopStats> stats;
  util::Rng rng(5150);
  for (int i = 0; i < 40; ++i) {
    dist::ShortStopStats s;
    s.q_b_plus = rng.uniform(0.0, 0.95);
    s.mu_b_minus = rng.uniform(0.01, 0.99) * kB * (1.0 - s.q_b_plus);
    stats.push_back(s);
  }
  lp::WorkspacePool pool(2, 3);
  std::vector<core::LpStrategySolution> batched(stats.size());
  const std::size_t solved =
      core::solve_constrained_lp_batch(stats, kB, pool, batched);
  EXPECT_EQ(solved, stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const core::LpStrategySolution scalar =
        core::solve_constrained_lp(stats[i], kB);
    EXPECT_EQ(scalar.alpha, batched[i].alpha);
    EXPECT_EQ(scalar.beta, batched[i].beta);
    EXPECT_EQ(scalar.gamma, batched[i].gamma);
    EXPECT_EQ(scalar.expected_cost, batched[i].expected_cost);
    EXPECT_EQ(scalar.strategy, batched[i].strategy);
    EXPECT_EQ(scalar.b, batched[i].b);
  }
  std::vector<core::LpStrategySolution> short_out(stats.size() - 1);
  EXPECT_THROW(
      core::solve_constrained_lp_batch(stats, kB, pool, short_out),
      std::invalid_argument);
}

}  // namespace
}  // namespace idlered::lp
