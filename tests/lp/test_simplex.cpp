#include "lp/simplex.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace idlered::lp {
namespace {

TEST(SimplexTest, BasicMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  ->  x=4, y=0, obj=12
  Problem p;
  p.objective = {3.0, 2.0};
  p.maximize = true;
  p.add_constraint({1.0, 1.0}, Sense::kLessEqual, 4.0);
  p.add_constraint({1.0, 3.0}, Sense::kLessEqual, 6.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 12.0, 1e-9);
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(SimplexTest, BasicMinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x <= 8  ->  x=8, y=2, obj=22
  Problem p;
  p.objective = {2.0, 3.0};
  p.add_constraint({1.0, 1.0}, Sense::kGreaterEqual, 10.0);
  p.add_constraint({1.0, 0.0}, Sense::kLessEqual, 8.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 22.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + y s.t. x + 2y = 4, x >= 0, y >= 0  ->  y=2, x=0, obj=2
  Problem p;
  p.objective = {1.0, 1.0};
  p.add_constraint({1.0, 2.0}, Sense::kEqual, 4.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  Problem p;
  p.objective = {1.0};
  p.add_constraint({1.0}, Sense::kLessEqual, 1.0);
  p.add_constraint({1.0}, Sense::kGreaterEqual, 2.0);
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x with only x >= 1: objective decreases without bound.
  Problem p;
  p.objective = {-1.0};
  p.add_constraint({1.0}, Sense::kGreaterEqual, 1.0);
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // x >= 2 expressed as -x <= -2; min x -> 2.
  Problem p;
  p.objective = {1.0};
  p.add_constraint({-1.0}, Sense::kLessEqual, -2.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple constraints meeting at one vertex (degeneracy); Bland's rule
  // must still terminate.
  Problem p;
  p.objective = {-1.0, -1.0};
  p.add_constraint({1.0, 0.0}, Sense::kLessEqual, 1.0);
  p.add_constraint({0.0, 1.0}, Sense::kLessEqual, 1.0);
  p.add_constraint({1.0, 1.0}, Sense::kLessEqual, 2.0);
  p.add_constraint({2.0, 2.0}, Sense::kLessEqual, 4.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, -2.0, 1e-9);
}

TEST(SimplexTest, ZeroObjectiveFindsFeasiblePoint) {
  Problem p;
  p.objective = {0.0, 0.0};
  p.add_constraint({1.0, 1.0}, Sense::kEqual, 3.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0] + s.x[1], 3.0, 1e-9);
}

TEST(SimplexTest, RedundantEqualityHandled) {
  // Second equality is a duplicate of the first (redundant row).
  Problem p;
  p.objective = {1.0, 2.0};
  p.add_constraint({1.0, 1.0}, Sense::kEqual, 5.0);
  p.add_constraint({2.0, 2.0}, Sense::kEqual, 10.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 5.0, 1e-9);  // x=5, y=0
}

TEST(SimplexTest, ConstraintWidthMismatchThrows) {
  Problem p;
  p.objective = {1.0, 2.0};
  EXPECT_THROW(p.add_constraint({1.0}, Sense::kLessEqual, 1.0),
               std::invalid_argument);
}

TEST(SimplexTest, StatusNames) {
  EXPECT_EQ(to_string(Status::kOptimal), "optimal");
  EXPECT_EQ(to_string(Status::kInfeasible), "infeasible");
  EXPECT_EQ(to_string(Status::kUnbounded), "unbounded");
}

// ---------------------------------------------------------------------------
// Property: for LPs over the probability simplex (the form the constrained
// ski-rental problem takes), the optimum is min(0, min_i c_i) — either the
// origin or the best vertex. Swept over random objectives.
class SimplexSimplexProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexSimplexProperty, SimplexVertexOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    Problem p;
    p.objective = {rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0),
                   rng.uniform(-5.0, 5.0)};
    p.add_constraint({1.0, 1.0, 1.0}, Sense::kLessEqual, 1.0);
    const Solution s = solve(p);
    ASSERT_TRUE(s.optimal());
    const double expected = std::min(
        0.0, *std::min_element(p.objective.begin(), p.objective.end()));
    EXPECT_NEAR(s.objective_value, expected, 1e-9);
    // Solution must be primal feasible.
    EXPECT_GE(s.x[0], -1e-9);
    EXPECT_GE(s.x[1], -1e-9);
    EXPECT_GE(s.x[2], -1e-9);
    EXPECT_LE(s.x[0] + s.x[1] + s.x[2], 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexSimplexProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// Property: random bounded 2-variable LPs cross-checked against a dense
// grid scan of the feasible region.
class SimplexGridCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(SimplexGridCrossCheck, MatchesGridSearch) {
  util::Rng rng(1000u + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    Problem p;
    p.objective = {rng.uniform(0.1, 5.0), rng.uniform(0.1, 5.0)};
    p.maximize = true;  // bounded: maximize positive costs over a box-ish set
    const double r1 = rng.uniform(1.0, 10.0);
    const double r2 = rng.uniform(1.0, 10.0);
    const double a = rng.uniform(0.1, 2.0);
    const double b = rng.uniform(0.1, 2.0);
    p.add_constraint({1.0, 0.0}, Sense::kLessEqual, r1);
    p.add_constraint({0.0, 1.0}, Sense::kLessEqual, r2);
    p.add_constraint({a, b}, Sense::kLessEqual, rng.uniform(1.0, 10.0));

    const Solution s = solve(p);
    ASSERT_TRUE(s.optimal());

    double grid_best = 0.0;
    const int n = 300;
    for (int i = 0; i <= n; ++i) {
      for (int j = 0; j <= n; ++j) {
        const double x = r1 * i / n;
        const double y = r2 * j / n;
        if (a * x + b * y <= p.constraints[2].rhs) {
          grid_best =
              std::max(grid_best, p.objective[0] * x + p.objective[1] * y);
        }
      }
    }
    // LP optimum must dominate the grid and not exceed it by more than the
    // grid resolution allows.
    EXPECT_GE(s.objective_value, grid_best - 1e-9);
    EXPECT_LE(s.objective_value, grid_best + 0.2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexGridCrossCheck,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace idlered::lp

namespace idlered::lp {
namespace {

// --------------------------------------------------------------------- duals

TEST(SimplexDualsTest, KnownMaximizationShadowPrices) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6. Optimum at (4, 0): the
  // second constraint is slack (dual 0); relaxing the first by 1 adds 3.
  Problem p;
  p.objective = {3.0, 2.0};
  p.maximize = true;
  p.add_constraint({1.0, 1.0}, Sense::kLessEqual, 4.0);
  p.add_constraint({1.0, 3.0}, Sense::kLessEqual, 6.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  ASSERT_EQ(s.duals.size(), 2u);
  EXPECT_NEAR(s.duals[0], 3.0, 1e-9);
  EXPECT_NEAR(s.duals[1], 0.0, 1e-9);
}

TEST(SimplexDualsTest, EqualityConstraintDual) {
  // min x + y s.t. x + 2y = 4 -> optimum y = 2, value 2; relaxing the rhs
  // by 1 increases the optimum by 1/2.
  Problem p;
  p.objective = {1.0, 1.0};
  p.add_constraint({1.0, 2.0}, Sense::kEqual, 4.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.duals[0], 0.5, 1e-9);
}

TEST(SimplexDualsTest, GreaterEqualDual) {
  // min 2x + 3y s.t. x + y >= 10, x <= 8 -> x=8, y=2; d(obj)/d(10) = 3
  // (extra demand is met by y), d(obj)/d(8) = -1 (more x displaces y).
  Problem p;
  p.objective = {2.0, 3.0};
  p.add_constraint({1.0, 1.0}, Sense::kGreaterEqual, 10.0);
  p.add_constraint({1.0, 0.0}, Sense::kLessEqual, 8.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.duals[0], 3.0, 1e-9);
  EXPECT_NEAR(s.duals[1], -1.0, 1e-9);
}

TEST(SimplexDualsTest, DualsMatchFiniteDifferences) {
  // Property check on a 3-constraint LP: perturb each rhs and compare the
  // optimum's change against the reported shadow price.
  Problem base;
  base.objective = {4.0, 3.0, 5.0};
  base.maximize = true;
  base.add_constraint({2.0, 1.0, 1.0}, Sense::kLessEqual, 10.0);
  base.add_constraint({1.0, 3.0, 2.0}, Sense::kLessEqual, 15.0);
  base.add_constraint({0.0, 1.0, 4.0}, Sense::kLessEqual, 12.0);
  const Solution s0 = solve(base);
  ASSERT_TRUE(s0.optimal());
  const double h = 1e-5;
  for (std::size_t i = 0; i < base.constraints.size(); ++i) {
    Problem perturbed = base;
    perturbed.constraints[i].rhs += h;
    const Solution s1 = solve(perturbed);
    ASSERT_TRUE(s1.optimal());
    EXPECT_NEAR((s1.objective_value - s0.objective_value) / h, s0.duals[i],
                1e-5)
        << "constraint " << i;
  }
}

TEST(SimplexDualsTest, StrongDualityHolds) {
  // b'y == c'x at the optimum (all constraints in <= form, max sense).
  Problem p;
  p.objective = {5.0, 4.0};
  p.maximize = true;
  p.add_constraint({6.0, 4.0}, Sense::kLessEqual, 24.0);
  p.add_constraint({1.0, 2.0}, Sense::kLessEqual, 6.0);
  const Solution s = solve(p);
  ASSERT_TRUE(s.optimal());
  const double dual_value = 24.0 * s.duals[0] + 6.0 * s.duals[1];
  EXPECT_NEAR(dual_value, s.objective_value, 1e-9);
}

}  // namespace
}  // namespace idlered::lp
