#include "serve/shedder.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace idlered::serve {
namespace {

using robust::ControllerMode;

constexpr std::size_t kCap = 100;

ShedConfig fast_config() {
  ShedConfig c;
  // Small stall window so tests stay short; everything else default.
  c.stall_pumps = 4;
  return c;
}

// Feed `n` pumps at a fixed depth and return the final ceiling.
ControllerMode run_depth(LoadShedder& s, std::size_t depth, int n) {
  ControllerMode mode = s.ceiling();
  for (int i = 0; i < n; ++i) mode = s.observe(depth, kCap);
  return mode;
}

TEST(ShedConfigTest, ValidateRejectsBadKnobs) {
  ShedConfig c;
  c.watermark = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ShedConfig{};
  c.stall_exit = c.stall_enter;  // must be strictly below
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = ShedConfig{};
  c.stall_pumps = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(LoadShedderTest, StaysAtProposedWhenIdle) {
  LoadShedder s(fast_config(), 1);
  EXPECT_EQ(run_depth(s, 0, 200), ControllerMode::kProposed);
  EXPECT_TRUE(s.transitions().empty());
  EXPECT_FALSE(s.stalled());
}

TEST(LoadShedderTest, SustainedPressureStepsDownTheLadder) {
  LoadShedder s(fast_config(), 1);
  // Depth well over the watermark but under the stall band: the health
  // EWMA must escalate Healthy -> Degraded (DET) -> Critical (N-Rand).
  const ControllerMode mode = run_depth(s, 90, 200);
  EXPECT_EQ(mode, ControllerMode::kNRand);
  EXPECT_FALSE(s.stalled());
  ASSERT_GE(s.transitions().size(), 2u);
  // Demotions are single rungs, immediately applied.
  EXPECT_EQ(s.transitions()[0].from, ControllerMode::kProposed);
  EXPECT_EQ(s.transitions()[0].to, ControllerMode::kDet);
  EXPECT_EQ(s.transitions()[1].from, ControllerMode::kDet);
  EXPECT_EQ(s.transitions()[1].to, ControllerMode::kNRand);
}

TEST(LoadShedderTest, PinnedQueueTripsTheStallCeiling) {
  LoadShedder s(fast_config(), 1);
  run_depth(s, kCap, 32);
  EXPECT_TRUE(s.stalled());
  EXPECT_EQ(s.ceiling(), ControllerMode::kNev);
  // Stall clears only when depth falls under stall_exit, and the ceiling
  // then re-promotes gradually rather than snapping back.
  run_depth(s, 30, 4);  // above stall_exit (25): still stalled
  EXPECT_TRUE(s.stalled());
  s.observe(10, kCap);
  EXPECT_FALSE(s.stalled());
}

TEST(LoadShedderTest, RecoveryIsDeferredAndStepwise) {
  LoadShedder s(fast_config(), 1);
  run_depth(s, 90, 200);
  ASSERT_EQ(s.ceiling(), ControllerMode::kNRand);

  // Calm traffic: the shedder must wait out the backoff before each
  // single-rung promotion — never jump straight back to COA.
  int promotions_seen = 0;
  ControllerMode prev = s.ceiling();
  for (int i = 0; i < 2000 && s.ceiling() != ControllerMode::kProposed; ++i) {
    const ControllerMode now = s.observe(0, kCap);
    if (now != prev) {
      ++promotions_seen;
      EXPECT_EQ(static_cast<int>(now), static_cast<int>(prev) - 1)
          << "promotion must move exactly one rung";
      prev = now;
    }
  }
  EXPECT_EQ(s.ceiling(), ControllerMode::kProposed);
  EXPECT_EQ(promotions_seen, 2);
  EXPECT_GT(s.deferred_promotions(), 0u);
}

TEST(LoadShedderTest, HysteresisDoesNotFlapOnBorderlineDepth) {
  LoadShedder s(fast_config(), 1);
  // Alternate just under / just over the watermark. The EWMA'd pressure
  // rate hovers near 0.5 — inside the hysteresis dead band — so the
  // ceiling may demote, but it must not oscillate per-pump.
  for (int i = 0; i < 400; ++i) s.observe(i % 2 == 0 ? 45 : 55, kCap);
  EXPECT_LE(s.transitions().size(), 3u);
}

TEST(LoadShedderTest, TransitionLogIsBounded) {
  ShedConfig c = fast_config();
  c.health.max_history = 3;
  LoadShedder s(c, 1);
  // Repeated burst/calm cycles generate many transitions.
  for (int cycle = 0; cycle < 20; ++cycle) {
    run_depth(s, 90, 120);
    run_depth(s, 0, 400);
  }
  EXPECT_LE(s.transitions().size(), 3u);
}

TEST(LoadShedderTest, SeedsDesynchronizeRecovery) {
  // A fleet of shards shedding identically must not all re-promote on the
  // identical pump ticks — that is the thundering herd the jitter exists
  // to break. The backoff tick grid is coarse, so any two seeds may
  // collide; across a handful of seeds the recovery timelines must
  // nevertheless spread out.
  std::set<std::vector<int>> timelines;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    ShedConfig c = fast_config();
    LoadShedder s(c, seed);
    run_depth(s, 90, 200);
    std::vector<int> promotion_ticks;
    for (int i = 0; i < 2000 && s.ceiling() != ControllerMode::kProposed;
         ++i) {
      const ControllerMode before = s.ceiling();
      if (s.observe(0, kCap) != before) promotion_ticks.push_back(i);
    }
    ASSERT_EQ(s.ceiling(), ControllerMode::kProposed);
    timelines.insert(promotion_ticks);
  }
  EXPECT_GT(timelines.size(), 1u)
      << "all seeds re-promoted on identical pump ticks";
}

TEST(LoadShedderTest, SameSeedIsDeterministic) {
  LoadShedder a(fast_config(), 9);
  LoadShedder b(fast_config(), 9);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t depth = static_cast<std::size_t>((i * 37) % 101);
    EXPECT_EQ(a.observe(depth, kCap), b.observe(depth, kCap));
  }
  EXPECT_EQ(a.transitions().size(), b.transitions().size());
}

}  // namespace
}  // namespace idlered::serve
