// Crash-recovery contract tests.
//
// The property under test, stated once: for ANY kill point and ANY thread
// count, snapshot + WAL-replay recovery yields a decision stream that is
// bit-identical — per (vehicle, seq) — to the stream an uninterrupted
// service would have produced. Decisions may be observed more than once
// across the crash (emitted pre-crash AND re-derived by replay); every
// observation of the same (vehicle, seq) must agree bit for bit.
//
// Two layers:
//   * an in-process kill-point sweep (destroying the service object is
//     byte-equivalent to a crash at a batch boundary: the WAL is flushed
//     per drain batch and nothing is written at destruction), and
//   * a genuine fork + SIGKILL test that kills a child mid-stream — no
//     destructor runs, file buffers tear where they tear — then recovers
//     in the parent and resumes via the last_applied_seq handshake.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/service.h"
#include "serve/snapshot.h"

namespace idlered::serve {
namespace {

namespace fs = std::filesystem;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "idlered_recover_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ServeConfig durable_config(const std::string& dir, int threads) {
  ServeConfig c;
  c.num_shards = 3;
  c.threads = threads;
  c.break_even = 60.0;
  c.warmup_stops = 4;
  c.queue_capacity = 256;
  c.drain_batch = 32;
  c.seed = 11;
  c.durable_dir = dir;
  c.snapshot_every = 16;
  return c;
}

// Deterministic fleet schedule over `vehicles` vehicles, round-robin, with
// hostile events mixed in: every 13th stop length is NaN (guard + strike
// machinery) and every 17th timestamp steps backwards (out-of-order path).
// Both must survive snapshot + replay, which is exactly why the guard
// state is part of the snapshot.
std::vector<StopEvent> fleet_schedule(std::size_t n, std::uint64_t vehicles) {
  std::vector<StopEvent> events;
  events.reserve(n);
  std::vector<std::uint64_t> next_seq(vehicles + 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = (i % vehicles) + 1;
    const std::uint64_t seq = next_seq[v]++;
    StopEvent e;
    e.vehicle = v;
    e.seq = seq;
    e.timestamp_s = static_cast<double>(seq);
    e.stop_length_s =
        15.0 + static_cast<double>((seq * 13 + v * 7) % 97);
    if (i % 13 == 5) e.stop_length_s = kNan;
    if (i % 17 == 9) e.timestamp_s = static_cast<double>(seq) - 1.5;
    events.push_back(e);
  }
  return events;
}

using DecisionMap = std::map<std::pair<std::uint64_t, std::uint64_t>, Decision>;

// Fold decisions into the map; any re-observation of a key must be
// bit-identical.
void merge(DecisionMap& map, const std::vector<Decision>& decisions) {
  for (const Decision& d : decisions) {
    const auto key = std::make_pair(d.vehicle, d.seq);
    const auto it = map.find(key);
    if (it == map.end()) {
      map.emplace(key, d);
    } else {
      ASSERT_TRUE(bit_identical(it->second, d))
          << "divergent re-observation of vehicle " << d.vehicle << " seq "
          << d.seq;
    }
  }
}

// The uninterrupted reference: same schedule through an in-memory service.
DecisionMap reference_stream(const std::vector<StopEvent>& events) {
  ServeConfig cfg = durable_config("", 1);
  cfg.durable_dir.clear();
  DecisionService svc(cfg);
  std::vector<Decision> out;
  std::size_t i = 0;
  for (const StopEvent& e : events) {
    EXPECT_EQ(svc.submit(e), Admit::kAccepted);
    if (++i % 4 == 0) svc.pump(out);
  }
  svc.drain_all(out);
  DecisionMap map;
  merge(map, out);
  EXPECT_EQ(map.size(), events.size());
  return map;
}

void expect_equal(const DecisionMap& got, const DecisionMap& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [key, d] : want) {
    const auto it = got.find(key);
    ASSERT_NE(it, got.end())
        << "missing vehicle " << key.first << " seq " << key.second;
    EXPECT_TRUE(bit_identical(it->second, d))
        << "vehicle " << key.first << " seq " << key.second;
  }
}

// ---- in-process kill-point sweep ------------------------------------------

TEST(RecoveryPropertyTest, AnyKillPointAnyThreadCountReplaysBitIdentical) {
  constexpr std::size_t kEvents = 120;
  const std::vector<StopEvent> events = fleet_schedule(kEvents, 7);
  const DecisionMap want = reference_stream(events);

  for (const int threads : {1, 2, 8}) {
    for (const std::size_t kill : {std::size_t{0}, std::size_t{5},
                                   std::size_t{23}, std::size_t{57},
                                   std::size_t{99}, kEvents}) {
      std::ostringstream tag;
      tag << "t" << threads << "_k" << kill;
      const std::string dir = fresh_dir(tag.str());
      DecisionMap got;

      {
        // Phase 1: run until the kill point, then "crash" — the service
        // is destroyed without shutdown or checkpoint; only what the WAL
        // flushed per batch survives, like a SIGKILL at a batch boundary.
        DecisionService svc(durable_config(dir, threads));
        std::vector<Decision> out;
        for (std::size_t i = 0; i < kill; ++i) {
          ASSERT_EQ(svc.submit(events[i]), Admit::kAccepted);
          if ((i + 1) % 4 == 0) svc.pump(out);
        }
        merge(got, out);
        if (HasFatalFailure()) return;
      }

      // Phase 2: recover. Replayed decisions re-derive whatever was
      // durable but possibly unseen; they must agree with phase 1 where
      // they overlap.
      auto recovered = DecisionService::recover(durable_config(dir, threads));
      merge(got, recovered.replayed);
      if (HasFatalFailure()) return;

      // Phase 3: the resume handshake — feed everything the recovered
      // service reports as not yet applied.
      std::vector<Decision> out;
      std::size_t i = 0;
      for (const StopEvent& e : events) {
        if (e.seq <= recovered.service->last_applied_seq(e.vehicle)) continue;
        ASSERT_EQ(recovered.service->submit(e), Admit::kAccepted);
        if (++i % 4 == 0) recovered.service->pump(out);
      }
      recovered.service->drain_all(out);
      merge(got, out);
      if (HasFatalFailure()) return;

      expect_equal(got, want);
      if (HasFatalFailure()) return;
    }
  }
}

// ---- fork + SIGKILL -------------------------------------------------------

std::string decisions_log_path(const std::string& dir) {
  return dir + "/decisions.log";
}

void append_decisions(const std::string& path,
                      const std::vector<Decision>& decisions) {
  std::ofstream out(path, std::ios::app);
  for (const Decision& d : decisions)
    out << d.vehicle << ' ' << d.seq << ' ' << static_cast<int>(d.outcome)
        << ' ' << static_cast<int>(d.rung) << ' ' << encode_bits(d.threshold)
        << '\n';
  out.flush();
}

// Parse the child's decision log, skipping a torn final line.
std::vector<Decision> read_decisions_log(const std::string& path) {
  std::vector<Decision> decisions;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    Decision d;
    int outcome = 0;
    int rung = 0;
    std::string bits;
    if (!(fields >> d.vehicle >> d.seq >> outcome >> rung >> bits) ||
        bits.size() != 16)
      break;
    d.outcome = static_cast<Outcome>(outcome);
    d.rung = static_cast<robust::ControllerMode>(rung);
    try {
      d.threshold = decode_bits(bits);
    } catch (const std::runtime_error&) {
      break;  // torn inside the hex field
    }
    decisions.push_back(d);
  }
  return decisions;
}

// Child body: stream the schedule with pacing so the parent can land a
// SIGKILL mid-stream. Every decision reaching `out` is appended (and
// flushed) to the log — the "emitted to a consumer" boundary the
// durability contract is stated over.
[[noreturn]] void run_child(const std::string& dir,
                            const std::vector<StopEvent>& events,
                            int threads) {
  DecisionService svc(durable_config(dir, threads));
  std::vector<Decision> out;
  std::size_t i = 0;
  for (const StopEvent& e : events) {
    svc.submit(e);
    if (++i % 3 == 0) {
      out.clear();
      svc.pump(out);
      append_decisions(decisions_log_path(dir), out);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  out.clear();
  svc.drain_all(out);
  append_decisions(decisions_log_path(dir), out);
  _exit(0);
}

TEST(CrashKillTest, SigkillMidStreamThenRecoverEmitsBitIdenticalDecisions) {
  constexpr std::size_t kEvents = 3000;
  const std::vector<StopEvent> events = fleet_schedule(kEvents, 11);
  const DecisionMap want = reference_stream(events);

  for (const int threads : {1, 2, 8}) {
    const std::string dir =
        fresh_dir("sigkill_t" + std::to_string(threads));

    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) run_child(dir, events, threads);  // never returns

    // Let the child make real progress, then kill it dead — no handlers,
    // no destructors, no flushes beyond what already hit the OS.
    const std::string log = decisions_log_path(dir);
    for (int spin = 0; spin < 5000; ++spin) {
      std::error_code ec;
      if (fs::exists(log, ec) && fs::file_size(log, ec) > 2048) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child finished before the kill landed; nothing was tested";

    DecisionMap got;
    merge(got, read_decisions_log(log));
    if (HasFatalFailure()) return;

    auto recovered = DecisionService::recover(durable_config(dir, threads));
    merge(got, recovered.replayed);
    if (HasFatalFailure()) return;

    std::vector<Decision> out;
    std::size_t i = 0;
    for (const StopEvent& e : events) {
      if (e.seq <= recovered.service->last_applied_seq(e.vehicle)) continue;
      ASSERT_EQ(recovered.service->submit(e), Admit::kAccepted);
      if (++i % 4 == 0) recovered.service->pump(out);
    }
    recovered.service->drain_all(out);
    merge(got, out);
    if (HasFatalFailure()) return;

    expect_equal(got, want);
    if (HasFatalFailure()) return;
  }
}

// A second crash immediately after recovery must also be harmless: the
// post-recovery checkpoint compacted the WAL, so a recover-recover chain
// replays nothing twice.
TEST(RecoveryPropertyTest, DoubleRecoveryIsIdempotent) {
  const std::vector<StopEvent> events = fleet_schedule(60, 5);
  const DecisionMap want = reference_stream(events);
  const std::string dir = fresh_dir("double");

  DecisionMap got;
  {
    DecisionService svc(durable_config(dir, 2));
    std::vector<Decision> out;
    std::size_t i = 0;
    for (const StopEvent& e : events) {
      svc.submit(e);
      if (++i % 4 == 0) svc.pump(out);
    }
    merge(got, out);  // crash before the final drain
    if (HasFatalFailure()) return;
  }

  auto first = DecisionService::recover(durable_config(dir, 2));
  merge(got, first.replayed);
  first.service.reset();  // crash again, right after recovery

  auto second = DecisionService::recover(durable_config(dir, 2));
  EXPECT_TRUE(second.replayed.empty())
      << "post-recovery checkpoint should have compacted the WAL";

  std::vector<Decision> out;
  for (const StopEvent& e : events) {
    if (e.seq <= second.service->last_applied_seq(e.vehicle)) continue;
    ASSERT_EQ(second.service->submit(e), Admit::kAccepted);
  }
  second.service->drain_all(out);
  merge(got, out);
  if (HasFatalFailure()) return;
  expect_equal(got, want);
}

TEST(RecoveryTest, MetaMismatchIsRefused) {
  const std::string dir = fresh_dir("meta_mismatch");
  {
    DecisionService svc(durable_config(dir, 1));
    std::vector<Decision> out;
    svc.submit(fleet_schedule(1, 1)[0]);
    svc.drain_all(out);
  }
  ServeConfig other = durable_config(dir, 1);
  other.seed = 999;  // different identity: decisions would diverge
  EXPECT_THROW(DecisionService::recover(other), std::runtime_error);
  ServeConfig missing = durable_config(fresh_dir("no_meta"), 1);
  EXPECT_THROW(DecisionService::recover(missing), std::runtime_error);
}

}  // namespace
}  // namespace idlered::serve
