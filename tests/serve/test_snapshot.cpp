#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

namespace idlered::serve {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "idlered_snap_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(BitEncodingTest, RoundTripsExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           0.1,
                           1e-308,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min()};
  for (const double v : values) {
    const double back = decode_bits(encode_bits(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(v))
        << "value " << v;
  }
}

TEST(BitEncodingTest, RejectsMalformedPatterns) {
  EXPECT_THROW(decode_bits(""), std::runtime_error);
  EXPECT_THROW(decode_bits("xyz"), std::runtime_error);
  EXPECT_THROW(decode_bits("0123"), std::runtime_error);  // wrong length
}

TEST(MetaTest, RoundTripAndAbsence) {
  const std::string dir = fresh_dir("meta");
  EXPECT_FALSE(read_meta(dir).has_value());
  ServeMeta meta;
  meta.num_shards = 7;
  meta.break_even = 61.25;
  meta.seed = 0xdeadbeefULL;
  meta.warmup_stops = 12;
  write_meta(dir, meta);
  const auto back = read_meta(dir);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_shards, 7u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back->break_even),
            std::bit_cast<std::uint64_t>(61.25));
  EXPECT_EQ(back->seed, 0xdeadbeefULL);
  EXPECT_EQ(back->warmup_stops, 12u);
}

TEST(MetaTest, CorruptFileThrows) {
  const std::string dir = fresh_dir("meta_bad");
  std::ofstream(meta_path(dir)) << "not a meta file\n";
  EXPECT_THROW(read_meta(dir), std::runtime_error);
}

ShardSnap sample_snap() {
  ShardSnap snap;
  snap.cursor = 41;
  VehicleSnap v;
  v.vehicle = 0x12345678ULL;
  v.last_seq = 9;
  v.count = 5;
  v.long_count = 2;
  v.short_sum = 123.456789;
  v.guard.counts.accepted = 5;
  v.guard.counts.non_finite = 1;
  v.guard.counts.out_of_order = 2;
  v.guard.last_value = 17.25;
  v.guard.run_length = 3;
  v.guard.last_timestamp = 99.5;
  v.guard.has_timestamp = true;
  v.strikes = 1;
  v.quarantined = false;
  snap.vehicles.push_back(v);
  v.vehicle = 2;
  v.quarantined = true;
  snap.vehicles.push_back(v);
  return snap;
}

TEST(ShardSnapshotTest, RoundTripsEveryField) {
  const std::string dir = fresh_dir("snap");
  EXPECT_FALSE(read_shard_snapshot(dir, 0).has_value());
  write_shard_snapshot(dir, 0, sample_snap());
  const auto back = read_shard_snapshot(dir, 0);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cursor, 41u);
  ASSERT_EQ(back->vehicles.size(), 2u);
  const VehicleSnap& v = back->vehicles[0];
  EXPECT_EQ(v.vehicle, 0x12345678ULL);
  EXPECT_EQ(v.last_seq, 9u);
  EXPECT_EQ(v.count, 5u);
  EXPECT_EQ(v.long_count, 2u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(v.short_sum),
            std::bit_cast<std::uint64_t>(123.456789));
  EXPECT_EQ(v.guard.counts.accepted, 5u);
  EXPECT_EQ(v.guard.counts.non_finite, 1u);
  EXPECT_EQ(v.guard.counts.out_of_order, 2u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(v.guard.last_value),
            std::bit_cast<std::uint64_t>(17.25));
  EXPECT_EQ(v.guard.run_length, 3u);
  EXPECT_TRUE(v.guard.has_timestamp);
  EXPECT_EQ(v.strikes, 1u);
  EXPECT_FALSE(v.quarantined);
  EXPECT_TRUE(back->vehicles[1].quarantined);
}

TEST(ShardSnapshotTest, TruncatedSnapshotIsRejectedNotMisread) {
  const std::string dir = fresh_dir("snap_torn");
  write_shard_snapshot(dir, 0, sample_snap());
  // Chop the end marker off — the situation after a kill mid-write if the
  // write were not atomic. The reader must refuse rather than return a
  // half-loaded shard.
  const std::string path = snapshot_path(dir, 0);
  std::string body;
  {
    std::ifstream in(path, std::ios::binary);
    body.assign(std::istreambuf_iterator<char>(in), {});
  }
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << body.substr(0, body.size() - 5);
  EXPECT_THROW(read_shard_snapshot(dir, 0), std::runtime_error);
}

WalRecord rec(std::uint64_t index, std::uint64_t seq) {
  WalRecord r;
  r.index = index;
  r.event.vehicle = 3;
  r.event.seq = seq;
  r.event.timestamp_s = static_cast<double>(seq) + 0.5;
  r.event.stop_length_s = 42.125;
  r.ceiling = robust::ControllerMode::kDet;
  return r;
}

TEST(WalTest, AppendFlushReadRoundTrip) {
  const std::string dir = fresh_dir("wal");
  WalWriter w;
  w.open(dir, 0, /*truncate=*/true);
  for (std::uint64_t i = 1; i <= 5; ++i) w.append(rec(i, i));
  w.flush();
  const auto records = read_wal(dir, 0);
  ASSERT_EQ(records.size(), 5u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(records[i - 1].index, i);
    EXPECT_EQ(records[i - 1].event.seq, i);
    EXPECT_EQ(records[i - 1].ceiling, robust::ControllerMode::kDet);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(records[i - 1].event.stop_length_s),
              std::bit_cast<std::uint64_t>(42.125));
  }
}

TEST(WalTest, UnflushedRecordsAreNotDurable) {
  const std::string dir = fresh_dir("wal_buf");
  WalWriter w;
  w.open(dir, 0, /*truncate=*/true);
  w.append(rec(1, 1));
  EXPECT_TRUE(read_wal(dir, 0).empty());  // still buffered
  w.flush();
  EXPECT_EQ(read_wal(dir, 0).size(), 1u);
}

TEST(WalTest, TornTailIsDroppedEarlierRecordsSurvive) {
  const std::string dir = fresh_dir("wal_torn");
  WalWriter w;
  w.open(dir, 0, /*truncate=*/true);
  for (std::uint64_t i = 1; i <= 3; ++i) w.append(rec(i, i));
  w.flush();
  // Simulate a SIGKILL mid-write: truncate the file inside the last line.
  const std::string path = wal_path(dir, 0);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 7);
  const auto records = read_wal(dir, 0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].index, 2u);
}

TEST(WalTest, ChecksumFailureStopsTheReplay) {
  const std::string dir = fresh_dir("wal_bitrot");
  WalWriter w;
  w.open(dir, 0, /*truncate=*/true);
  for (std::uint64_t i = 1; i <= 3; ++i) w.append(rec(i, i));
  w.flush();
  // Flip one byte in the middle record's body.
  const std::string path = wal_path(dir, 0);
  std::string body;
  {
    std::ifstream in(path, std::ios::binary);
    body.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::size_t first_nl = body.find('\n');
  body[first_nl + 3] = body[first_nl + 3] == '0' ? '1' : '0';
  std::ofstream(path, std::ios::binary | std::ios::trunc) << body;
  // Only the intact prefix is replayed; nothing after the corrupt line.
  EXPECT_EQ(read_wal(dir, 0).size(), 1u);
}

TEST(WalTest, ResetTruncates) {
  const std::string dir = fresh_dir("wal_reset");
  WalWriter w;
  w.open(dir, 0, /*truncate=*/true);
  w.append(rec(1, 1));
  w.flush();
  w.reset();
  EXPECT_TRUE(read_wal(dir, 0).empty());
}

}  // namespace
}  // namespace idlered::serve
