// Decision tracing contract tests.
//
// Two properties, stated once:
//   * Tracing is WRITE-ONLY: a traced service produces a Decision stream
//     bit-identical to an untraced one (same config, same events). The
//     dspans cross-reference the decision stream; they never feed it.
//   * The emitted dspans form complete parent-linked chains: every
//     non-replay decision has an ingest root, a solve span iff it was
//     priced, and a WAL span iff the shard was durable and the event was
//     not a stale duplicate. Replayed decisions are flagged so offline
//     completeness audits (tools/obs_report.py --chains) can exclude
//     them.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/decision_trace.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/service.h"

namespace idlered::serve {
namespace {

namespace fs = std::filesystem;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

[[maybe_unused]] std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "idlered_dtrace_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ServeConfig base_config() {
  ServeConfig c;
  c.num_shards = 2;
  c.threads = 2;
  c.break_even = 60.0;
  c.warmup_stops = 4;
  c.queue_capacity = 256;
  c.drain_batch = 32;
  c.seed = 11;
  return c;
}

// Deterministic schedule with the hostile paths mixed in: NaN stops
// (rejected-invalid), backwards timestamps (rejected-out-of-order), and
// duplicate seqs (rejected-stale) so every decision parent shows up.
std::vector<StopEvent> schedule(std::size_t n, std::uint64_t vehicles) {
  std::vector<StopEvent> events;
  events.reserve(n);
  std::vector<std::uint64_t> next_seq(vehicles + 1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = (i % vehicles) + 1;
    StopEvent e;
    e.vehicle = v;
    e.seq = next_seq[v]++;
    e.timestamp_s = static_cast<double>(e.seq);
    e.stop_length_s = 15.0 + static_cast<double>((e.seq * 13 + v * 7) % 97);
    if (i % 13 == 5) e.stop_length_s = kNan;
    if (i % 17 == 9) e.timestamp_s = static_cast<double>(e.seq) - 1.5;
    if (i % 11 == 7 && e.seq > 1) e.seq -= 1;  // stale duplicate
    events.push_back(e);
  }
  return events;
}

std::vector<Decision> run_service(const ServeConfig& config,
                                  const std::vector<StopEvent>& events) {
  DecisionService svc(config);
  std::vector<Decision> out;
  std::size_t i = 0;
  for (const StopEvent& e : events) {
    EXPECT_EQ(svc.submit(e), Admit::kAccepted);
    if (++i % 8 == 0) svc.pump(out);
  }
  svc.drain_all(out);
  return out;
}

TEST(DecisionTraceIdTest, DeterministicAndHexStable) {
  const std::uint64_t id = obs::decision_trace_id(11, 1002, 7);
  EXPECT_EQ(id, obs::decision_trace_id(11, 1002, 7));
  EXPECT_NE(id, obs::decision_trace_id(11, 1002, 8));
  EXPECT_NE(id, obs::decision_trace_id(12, 1002, 7));

  const std::string hex = obs::trace_id_hex(id);
  ASSERT_EQ(hex.size(), 16u);
  for (const char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
        << "non-hex digit " << c;
  EXPECT_EQ(obs::trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(obs::trace_id_hex(0xdeadbeefcafef00dULL), "deadbeefcafef00d");
}

// The write-only contract. Runs in every build config: with obs compiled
// out this degenerates to determinism across two identical runs, which
// is exactly what the OFF-config CI leg should still assert.
TEST(DecisionTraceTest, TracedStreamIsBitIdenticalToUntraced) {
  const std::vector<StopEvent> events = schedule(600, 7);
  const std::vector<Decision> untraced = run_service(base_config(), events);

#if IDLERED_OBS_ENABLED
  const std::string sink = fresh_dir("bitident") + "/trace.jsonl";
  obs::recorder().start(sink);
  const std::vector<Decision> traced = run_service(base_config(), events);
  obs::recorder().stop();
  obs::recorder().flush();
#else
  const std::vector<Decision> traced = run_service(base_config(), events);
#endif

  ASSERT_EQ(traced.size(), untraced.size());
  for (std::size_t i = 0; i < traced.size(); ++i)
    ASSERT_TRUE(bit_identical(traced[i], untraced[i]))
        << "decision " << i << " diverged under tracing";
}

#if IDLERED_OBS_ENABLED

/// Minimal dspan view scraped from the JSONL sink. The emitter writes one
/// flat object per line, so field extraction by key substring is exact
/// enough for these assertions (no string field contains '",').
struct DspanLine {
  std::string trace;
  std::string stage;
  std::string parent;
  std::string outcome;
  bool replay = false;
  bool durable = false;
};

std::string str_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

std::vector<DspanLine> read_dspans(const std::string& path) {
  std::vector<DspanLine> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"type\": \"dspan\"") == std::string::npos) continue;
    DspanLine d;
    d.trace = str_field(line, "trace");
    d.stage = str_field(line, "stage");
    d.parent = str_field(line, "parent");
    d.outcome = str_field(line, "outcome");
    d.replay = line.find("\"replay\": true") != std::string::npos;
    d.durable = line.find("\"durable\": true") != std::string::npos;
    out.push_back(d);
  }
  return out;
}

std::map<std::string, std::vector<DspanLine>> by_trace(
    const std::vector<DspanLine>& spans) {
  std::map<std::string, std::vector<DspanLine>> chains;
  for (const DspanLine& d : spans) chains[d.trace].push_back(d);
  return chains;
}

void check_chains(const std::vector<DspanLine>& spans, bool durable) {
  std::set<std::string> outcomes_seen;
  std::size_t decisions = 0;
  for (const auto& [trace, chain] : by_trace(spans)) {
    std::set<std::string> stages;
    for (const DspanLine& d : chain)
      if (!d.replay) stages.insert(d.stage);
    for (const DspanLine& d : chain) {
      if (d.stage != "decision" || d.replay) continue;
      ++decisions;
      outcomes_seen.insert(d.outcome);
      EXPECT_EQ(d.durable, durable) << "trace " << trace;
      EXPECT_TRUE(stages.count("ingest")) << "trace " << trace;
      if (d.outcome == "decided") {
        EXPECT_TRUE(stages.count("solve")) << "trace " << trace;
        EXPECT_EQ(d.parent, "solve") << "trace " << trace;
      }
      if (durable && d.outcome != "rejected-stale") {
        EXPECT_TRUE(stages.count("wal")) << "trace " << trace;
        if (d.outcome != "decided") {
          EXPECT_EQ(d.parent, "wal") << "trace " << trace;
        }
      }
      if (d.outcome == "rejected-stale") {
        EXPECT_EQ(d.parent, "ingest") << "trace " << trace;
      }
      if (!durable && d.outcome != "decided") {
        EXPECT_EQ(d.parent, "ingest") << "trace " << trace;
      }
    }
  }
  EXPECT_GT(decisions, 0u);
  // The hostile schedule must have exercised the full outcome spread —
  // otherwise the parent assertions above were vacuous.
  EXPECT_TRUE(outcomes_seen.count("decided"));
  EXPECT_TRUE(outcomes_seen.count("rejected-invalid"));
  EXPECT_TRUE(outcomes_seen.count("rejected-out-of-order"));
  EXPECT_TRUE(outcomes_seen.count("rejected-stale"));
}

TEST(DecisionTraceTest, InMemoryChainsAreCompleteAndParentLinked) {
  const std::string sink = fresh_dir("mem") + "/trace.jsonl";
  obs::recorder().start(sink);
  run_service(base_config(), schedule(600, 7));
  obs::recorder().stop();
  obs::recorder().flush();
  const std::vector<DspanLine> spans = read_dspans(sink);
  EXPECT_FALSE(spans.empty());
  check_chains(spans, /*durable=*/false);
  for (const DspanLine& d : spans)
    EXPECT_FALSE(d.replay) << "no replay spans without recovery";
}

TEST(DecisionTraceTest, DurableChainsIncludeTheWalBarrier) {
  const std::string dir = fresh_dir("wal");
  ServeConfig config = base_config();
  config.durable_dir = dir;
  const std::string sink = dir + "/trace.jsonl";
  obs::recorder().start(sink);
  run_service(config, schedule(600, 7));
  obs::recorder().stop();
  obs::recorder().flush();
  check_chains(read_dspans(sink), /*durable=*/true);
}

TEST(DecisionTraceTest, ReplayedDecisionsAreFlagged) {
  const std::string dir = fresh_dir("replay");
  ServeConfig config = base_config();
  config.durable_dir = dir;
  const std::vector<StopEvent> events = schedule(200, 5);

  // Crash mid-stream: feed and pump, then drop the service without
  // shutdown. The WAL tail past the last checkpoint replays on recover.
  {
    DecisionService svc(config);
    std::vector<Decision> out;
    std::size_t i = 0;
    for (const StopEvent& e : events) {
      ASSERT_EQ(svc.submit(e), Admit::kAccepted);
      if (++i % 32 == 0) svc.pump(out);
    }
    svc.drain_all(out);
  }

  const std::string sink = dir + "/trace.jsonl";
  obs::recorder().start(sink);
  const DecisionService::Recovered recovered =
      DecisionService::recover(config);
  obs::recorder().stop();
  obs::recorder().flush();

  ASSERT_FALSE(recovered.replayed.empty())
      << "schedule must leave a WAL tail for this test to bite";
  const std::vector<DspanLine> spans = read_dspans(sink);
  std::size_t replay_decisions = 0;
  for (const DspanLine& d : spans) {
    // Recovery emits only replayed solve/decision spans: no ingest (the
    // events do not pass through the queue again) and no WAL barrier.
    EXPECT_TRUE(d.replay) << "stage " << d.stage;
    EXPECT_NE(d.stage, "ingest");
    EXPECT_NE(d.stage, "wal");
    if (d.stage == "decision") ++replay_decisions;
  }
  EXPECT_EQ(replay_decisions, recovered.replayed.size());
}

#endif  // IDLERED_OBS_ENABLED

}  // namespace
}  // namespace idlered::serve
