#include "serve/queue.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace idlered::serve {
namespace {

StopEvent ev(std::uint64_t seq) {
  StopEvent e;
  e.vehicle = 1;
  e.seq = seq;
  e.timestamp_s = static_cast<double>(seq);
  e.stop_length_s = 10.0;
  return e;
}

TEST(BoundedEventQueueTest, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedEventQueue(0), std::invalid_argument);
}

TEST(BoundedEventQueueTest, FifoOrderAcrossWrap) {
  BoundedEventQueue q(4);
  std::vector<StopEvent> out;
  // Fill, half-drain, refill: exercises the ring wrap.
  for (std::uint64_t s = 1; s <= 4; ++s) ASSERT_TRUE(q.try_push(ev(s)));
  ASSERT_EQ(q.pop_up_to(2, out), 2u);
  for (std::uint64_t s = 5; s <= 6; ++s) ASSERT_TRUE(q.try_push(ev(s)));
  ASSERT_EQ(q.pop_up_to(10, out), 4u);
  ASSERT_EQ(out.size(), 6u);
  for (std::uint64_t s = 1; s <= 6; ++s) EXPECT_EQ(out[s - 1].seq, s);
}

TEST(BoundedEventQueueTest, RefusesWhenFullAndCounts) {
  BoundedEventQueue q(2);
  EXPECT_TRUE(q.try_push(ev(1)));
  EXPECT_TRUE(q.try_push(ev(2)));
  EXPECT_FALSE(q.try_push(ev(3)));
  EXPECT_FALSE(q.try_push(ev(4)));
  EXPECT_EQ(q.rejected(), 2u);
  EXPECT_EQ(q.size(), 2u);
  // Refusal does not corrupt the ring: contents are still 1, 2.
  std::vector<StopEvent> out;
  q.pop_up_to(10, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
}

TEST(BoundedEventQueueTest, HighWaterIsMonotone) {
  BoundedEventQueue q(8);
  std::vector<StopEvent> out;
  for (std::uint64_t s = 1; s <= 5; ++s) q.try_push(ev(s));
  EXPECT_EQ(q.high_water(), 5u);
  q.pop_up_to(10, out);
  EXPECT_EQ(q.high_water(), 5u);  // draining does not lower it
  q.try_push(ev(6));
  EXPECT_EQ(q.high_water(), 5u);
}

TEST(BoundedEventQueueTest, ConcurrentProducersLoseNothingUnderCapacity) {
  BoundedEventQueue q(1024);
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t s = 1; s <= kPerProducer; ++s) {
        StopEvent e = ev(s);
        e.vehicle = static_cast<std::uint64_t>(p) + 1;
        ASSERT_TRUE(q.try_push(e));
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.size(), kProducers * kPerProducer);
  // Per-producer FIFO survives interleaving.
  std::vector<StopEvent> out;
  q.pop_up_to(q.size(), out);
  std::vector<std::uint64_t> last(kProducers + 1, 0);
  for (const StopEvent& e : out) {
    EXPECT_EQ(e.seq, last[e.vehicle] + 1);
    last[e.vehicle] = e.seq;
  }
}

}  // namespace
}  // namespace idlered::serve
