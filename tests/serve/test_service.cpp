#include "serve/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "serve/ingest.h"

namespace idlered::serve {
namespace {

using robust::ControllerMode;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

ServeConfig base_config() {
  ServeConfig c;
  c.num_shards = 2;
  c.threads = 1;
  c.break_even = 60.0;
  c.warmup_stops = 4;
  c.queue_capacity = 64;
  c.drain_batch = 32;
  c.seed = 7;
  return c;
}

// Valid, varied stop lengths (variation keeps the frozen-sensor tracker
// quiet); timestamp = seq keeps event time strictly increasing.
StopEvent make_event(std::uint64_t vehicle, std::uint64_t seq,
                     double length = -1.0) {
  StopEvent e;
  e.vehicle = vehicle;
  e.seq = seq;
  e.timestamp_s = static_cast<double>(seq);
  e.stop_length_s =
      length >= 0.0 || std::isnan(length)
          ? length
          : 20.0 + static_cast<double>((seq * 13 + vehicle * 7) % 90);
  return e;
}

TEST(ServeConfigTest, ValidateRejectsBadShape) {
  ServeConfig c = base_config();
  c.num_shards = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = base_config();
  c.break_even = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = base_config();
  c.queue_capacity = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(DecisionServiceTest, WarmupRungThenProposed) {
  ServeConfig cfg = base_config();
  DecisionService svc(cfg);
  std::vector<Decision> out;
  for (std::uint64_t s = 1; s <= 10; ++s) {
    ASSERT_EQ(svc.submit(make_event(1, s)), Admit::kAccepted);
    svc.pump(out);
  }
  ASSERT_EQ(out.size(), 10u);
  for (std::uint64_t s = 0; s < 10; ++s) {
    const Decision& d = out[s];
    EXPECT_EQ(d.vehicle, 1u);
    EXPECT_EQ(d.seq, s + 1);
    EXPECT_EQ(d.outcome, Outcome::kDecided);
    EXPECT_TRUE(std::isfinite(d.threshold));
    EXPECT_GE(d.threshold, 0.0);
    if (s + 1 < cfg.warmup_stops) {
      // Cold vehicle: distribution-free N-Rand, threshold inside [0, B].
      EXPECT_EQ(d.rung, ControllerMode::kNRand);
      EXPECT_LE(d.threshold, cfg.break_even);
    } else {
      // Warmed up, shard healthy: COA (or its DET trust demotion).
      EXPECT_TRUE(d.rung == ControllerMode::kProposed ||
                  d.rung == ControllerMode::kDet)
          << to_string(d.rung);
    }
  }
}

TEST(DecisionServiceTest, DuplicateDeliveryBecomesExactlyOnceProcessing) {
  DecisionService svc(base_config());
  std::vector<Decision> out;
  for (std::uint64_t s = 1; s <= 3; ++s) svc.submit(make_event(1, s));
  svc.drain_all(out);
  ASSERT_EQ(out.size(), 3u);
  const std::size_t count_after_first = out.size();

  // Redeliver seq 2 (at-least-once delivery) plus the reserved seq 0.
  svc.submit(make_event(1, 2));
  svc.submit(make_event(1, 0));
  svc.drain_all(out);
  ASSERT_EQ(out.size(), count_after_first + 2);
  EXPECT_EQ(out[3].outcome, Outcome::kRejectedStale);
  EXPECT_EQ(out[4].outcome, Outcome::kRejectedStale);
  EXPECT_TRUE(std::isnan(out[3].threshold));
  EXPECT_EQ(svc.last_applied_seq(1), 3u);
}

TEST(DecisionServiceTest, OutOfOrderTimestampsAreRejected) {
  DecisionService svc(base_config());
  std::vector<Decision> out;
  svc.submit(make_event(1, 1));  // ts = 1
  StopEvent backwards = make_event(1, 2);
  backwards.timestamp_s = 0.5;  // earlier than the accepted ts
  svc.submit(backwards);
  svc.submit(make_event(1, 3));  // ts = 3: fine again
  svc.drain_all(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].outcome, Outcome::kDecided);
  EXPECT_EQ(out[1].outcome, Outcome::kRejectedOutOfOrder);
  EXPECT_EQ(out[2].outcome, Outcome::kDecided);
  // The rejected event still advanced the dedupe cursor.
  EXPECT_EQ(svc.last_applied_seq(1), 3u);
}

TEST(DecisionServiceTest, PoisonSourceIsQuarantined) {
  ServeConfig cfg = base_config();
  cfg.poison_strikes = 3;
  DecisionService svc(cfg);
  std::vector<Decision> out;
  for (std::uint64_t s = 1; s <= 3; ++s)
    svc.submit(make_event(1, s, kNan));  // poison
  svc.submit(make_event(1, 4));  // valid, but the vehicle is now fenced
  svc.submit(make_event(2, 1));  // other vehicles are unaffected
  svc.drain_all(out);
  ASSERT_EQ(out.size(), 5u);
  std::map<std::uint64_t, std::vector<Decision>> by_vehicle;
  for (const Decision& d : out) by_vehicle[d.vehicle].push_back(d);
  ASSERT_EQ(by_vehicle[1].size(), 4u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(by_vehicle[1][i].outcome, Outcome::kRejectedInvalid);
  EXPECT_EQ(by_vehicle[1][3].outcome, Outcome::kQuarantined);
  EXPECT_EQ(by_vehicle[2][0].outcome, Outcome::kDecided);
  const std::size_t shard = svc.shard_of(1);
  EXPECT_EQ(svc.shard(shard).quarantined_vehicles(), 1u);
}

TEST(DecisionServiceTest, BackpressureRefusesInsteadOfGrowing) {
  ServeConfig cfg = base_config();
  cfg.num_shards = 1;
  cfg.queue_capacity = 4;
  DecisionService svc(cfg);
  for (std::uint64_t s = 1; s <= 4; ++s)
    EXPECT_EQ(svc.submit(make_event(1, s)), Admit::kAccepted);
  EXPECT_EQ(svc.submit(make_event(1, 5)), Admit::kRejectedQueueFull);
  EXPECT_EQ(svc.queued(), 4u);
  // A pump frees space and admission resumes.
  std::vector<Decision> out;
  svc.pump(out);
  EXPECT_EQ(svc.submit(make_event(1, 5)), Admit::kAccepted);
}

TEST(DecisionServiceTest, IngestorRetriesThroughBackpressure) {
  ServeConfig cfg = base_config();
  cfg.num_shards = 1;
  cfg.queue_capacity = 2;
  cfg.drain_batch = 2;
  DecisionService svc(cfg);
  IngestConfig icfg;
  icfg.max_attempts = 4;
  Ingestor ingest(svc, icfg, 3);
  std::vector<Decision> out;
  // The on_wait hook pumps, so every retry finds space: nothing is lost
  // even though the queue only holds 2 events.
  for (std::uint64_t s = 1; s <= 20; ++s) {
    const Admit a =
        ingest.feed(make_event(1, s), [&](double) { svc.pump(out); });
    EXPECT_EQ(a, Admit::kAccepted);
  }
  svc.drain_all(out);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_EQ(ingest.delivered(), 20u);
  EXPECT_EQ(ingest.lost(), 0u);
  EXPECT_GT(ingest.retries(), 0u);
}

TEST(DecisionServiceTest, ShutdownDrainsAndRefusesNewWork) {
  DecisionService svc(base_config());
  for (std::uint64_t s = 1; s <= 5; ++s) svc.submit(make_event(1, s));
  const std::vector<Decision> tail = svc.shutdown();
  EXPECT_EQ(tail.size(), 5u);
  EXPECT_EQ(svc.submit(make_event(1, 6)), Admit::kRejectedShutdown);
}

TEST(DecisionServiceTest, PerVehicleOrderSurvivesInterleaving) {
  ServeConfig cfg = base_config();
  cfg.num_shards = 4;
  DecisionService svc(cfg);
  std::vector<Decision> out;
  for (std::uint64_t s = 1; s <= 30; ++s) {
    for (std::uint64_t v = 1; v <= 9; ++v) svc.submit(make_event(v, s));
    if (s % 3 == 0) svc.pump(out);
  }
  svc.drain_all(out);
  ASSERT_EQ(out.size(), 30u * 9u);
  std::map<std::uint64_t, std::uint64_t> last_seq;
  for (const Decision& d : out) {
    EXPECT_GT(d.seq, last_seq[d.vehicle]) << "vehicle " << d.vehicle;
    last_seq[d.vehicle] = d.seq;
  }
}

// The decision stream is a pure function of the submission schedule — the
// thread count executing the pumps must be invisible, bit for bit.
TEST(DecisionServiceTest, DecisionStreamIsThreadCountInvariant) {
  std::vector<std::vector<Decision>> streams;
  for (const int threads : {1, 2, 8}) {
    ServeConfig cfg = base_config();
    cfg.num_shards = 4;
    cfg.threads = threads;
    DecisionService svc(cfg);
    std::vector<Decision> out;
    for (std::uint64_t s = 1; s <= 40; ++s) {
      for (std::uint64_t v = 1; v <= 16; ++v) {
        StopEvent e = make_event(v, s);
        if ((s + v) % 11 == 0) e.stop_length_s = kNan;  // sprinkle poison
        svc.submit(e);
      }
      svc.pump(out);
    }
    svc.drain_all(out);
    streams.push_back(std::move(out));
  }
  ASSERT_EQ(streams[0].size(), streams[1].size());
  ASSERT_EQ(streams[0].size(), streams[2].size());
  for (std::size_t i = 0; i < streams[0].size(); ++i) {
    EXPECT_TRUE(bit_identical(streams[0][i], streams[1][i])) << "index " << i;
    EXPECT_TRUE(bit_identical(streams[0][i], streams[2][i])) << "index " << i;
  }
}

// Acceptance scenario: a 10x overload burst must shed down the ladder
// (bounded queue, cheaper rungs) and afterwards re-promote to COA
// gradually — with hysteresis and backoff, not a snap-back.
TEST(DecisionServiceTest, OverloadShedsThenRecoversWithHysteresis) {
  ServeConfig cfg = base_config();
  cfg.num_shards = 1;
  cfg.queue_capacity = 50;
  cfg.drain_batch = 4;
  cfg.shed.stall_pumps = 4;
  DecisionService svc(cfg);
  std::vector<Decision> out;

  // Warm the vehicle up under light load first.
  for (std::uint64_t s = 1; s <= 8; ++s) {
    svc.submit(make_event(1, s));
    svc.pump(out);
  }
  ASSERT_EQ(svc.shard(0).shedder().ceiling(), ControllerMode::kProposed);

  // Burst: offer ~10x the drain rate. Admission refusals are expected —
  // that is the backpressure contract — and the queue must never exceed
  // its bound.
  std::uint64_t seq = 8;
  bool saw_nev = false;
  for (int round = 0; round < 60; ++round) {
    for (int k = 0; k < 40; ++k) svc.submit(make_event(1, ++seq));
    svc.pump(out);
    ASSERT_LE(svc.queued(), cfg.queue_capacity);
    saw_nev = saw_nev || svc.shard(0).shedder().ceiling() == ControllerMode::kNev;
  }
  EXPECT_TRUE(saw_nev) << "sustained 10x overload should reach the NEV rung";
  EXPECT_GT(svc.shard(0).queue().rejected(), 0u);

  // Some decisions in the burst must carry the shed rungs, including
  // NEV's +inf "keep idling".
  bool saw_inf_threshold = false;
  for (const Decision& d : out)
    if (d.outcome == Outcome::kDecided && d.rung == ControllerMode::kNev) {
      EXPECT_TRUE(std::isinf(d.threshold));
      saw_inf_threshold = true;
    }
  EXPECT_TRUE(saw_inf_threshold);

  // Calm: pump with no new load. Recovery must be stepwise (every
  // transition one rung) and deferred (backoff ticks burned waiting).
  const std::size_t transitions_before =
      svc.shard(0).shedder().transitions().size();
  int pumps_to_recover = -1;
  for (int i = 0; i < 4000; ++i) {
    svc.pump(out);
    if (svc.shard(0).shedder().ceiling() == ControllerMode::kProposed) {
      pumps_to_recover = i + 1;
      break;
    }
  }
  ASSERT_GT(pumps_to_recover, 0) << "never re-promoted to COA";
  EXPECT_GT(pumps_to_recover, 3) << "re-promotion must not be instant";
  EXPECT_GT(svc.shard(0).shedder().deferred_promotions(), 0u);
  const auto& transitions = svc.shard(0).shedder().transitions();
  for (std::size_t i = transitions_before; i < transitions.size(); ++i) {
    const int jump = std::abs(static_cast<int>(transitions[i].to) -
                              static_cast<int>(transitions[i].from));
    EXPECT_EQ(jump, 1) << "ladder moves one rung at a time";
  }
}

}  // namespace
}  // namespace idlered::serve
