#include "traces/fleet_generator.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "stats/ks_test.h"
#include "util/random.h"

namespace idlered::traces {
namespace {

TEST(AreaProfilesTest, PaperFleetSizes) {
  EXPECT_EQ(california().num_vehicles_driving, 217);
  EXPECT_EQ(chicago().num_vehicles_driving, 312);
  EXPECT_EQ(atlanta().num_vehicles_driving, 653);
  EXPECT_EQ(california().num_vehicles_stops_dataset, 291);
  EXPECT_EQ(chicago().num_vehicles_stops_dataset, 408);
  EXPECT_EQ(atlanta().num_vehicles_stops_dataset, 827);
}

TEST(AreaProfilesTest, Table1Moments) {
  EXPECT_NEAR(atlanta().stops_per_day_mean, 10.37, 1e-9);
  EXPECT_NEAR(chicago().stops_per_day_std, 9.97, 1e-9);
  EXPECT_NEAR(california().stops_per_day_mean, 9.37, 1e-9);
}

TEST(AreaDistributionTest, MeanMatchesTarget) {
  for (const auto& area : all_areas()) {
    const auto d = area_stop_distribution(area);
    EXPECT_NEAR(d->mean(), area.mean_stop_s, 1e-6) << area.name;
  }
}

TEST(AreaDistributionTest, ScalingHitsArbitraryMean) {
  const auto d = scaled_stop_distribution(chicago(), 90.0);
  EXPECT_NEAR(d->mean(), 90.0, 1e-6);
}

TEST(AreaDistributionTest, SharedShapeAcrossAreas) {
  // Areas differ only in mean: rescaling California to Chicago's mean must
  // give the same law (paper: "their shapes ... are quite similar").
  const auto ca = scaled_stop_distribution(california(), chicago().mean_stop_s);
  const auto chi = area_stop_distribution(chicago());
  for (double y : {5.0, 20.0, 50.0, 120.0, 400.0}) {
    EXPECT_NEAR(ca->cdf(y), chi->cdf(y), 1e-9);
  }
}

TEST(AreaDistributionTest, HeavyTailedNotExponential) {
  // The paper's Figure-3 claim: stop lengths fail a KS test against the
  // exponential law, mostly due to heavy tails.
  util::Rng rng(21);
  const auto d = area_stop_distribution(chicago());
  const auto sample = d->sample_many(rng, 20000);
  EXPECT_TRUE(stats::ks_test_exponential(sample).reject_at(0.001));
}

TEST(GenerateVehicleTest, BasicShape) {
  util::Rng rng(22);
  const auto trace = generate_vehicle(chicago(), 3, rng);
  EXPECT_EQ(trace.area, "Chicago");
  EXPECT_EQ(trace.vehicle_id, "Chicago-3");
  EXPECT_GE(trace.num_stops(), 1u);
  for (double y : trace.stops) EXPECT_GT(y, 0.0);
}

TEST(GenerateVehicleTest, WeekOfStopsPlausibleCount) {
  util::Rng rng(23);
  stats::RunningStats counts;
  for (int i = 0; i < 200; ++i) {
    util::Rng fork = rng.fork(static_cast<std::uint64_t>(i));
    counts.add(static_cast<double>(
        generate_vehicle(chicago(), i, fork).num_stops()));
  }
  // ~12.49 stops/day * 7 days ~= 87 on average.
  EXPECT_NEAR(counts.mean(), 12.49 * 7.0, 20.0);
}

TEST(GenerateAreaFleetTest, FleetSizeAndDeterminism) {
  util::Rng rng_a(24);
  util::Rng rng_b(24);
  const auto fleet_a = generate_area_fleet(california(), rng_a);
  const auto fleet_b = generate_area_fleet(california(), rng_b);
  ASSERT_EQ(fleet_a.size(), 217u);
  ASSERT_EQ(fleet_b.size(), 217u);
  for (std::size_t i = 0; i < fleet_a.size(); ++i) {
    ASSERT_EQ(fleet_a[i].stops.size(), fleet_b[i].stops.size());
    for (std::size_t j = 0; j < fleet_a[i].stops.size(); ++j) {
      EXPECT_DOUBLE_EQ(fleet_a[i].stops[j], fleet_b[i].stops[j]);
    }
  }
}

TEST(GenerateStudyFleetTest, FullPaperCohort) {
  const auto fleet = generate_study_fleet(12345);
  EXPECT_EQ(fleet.size(), 1182u);  // 217 + 312 + 653
  std::size_t chicago_count = 0;
  for (const auto& t : fleet) {
    if (t.area == "Chicago") ++chicago_count;
  }
  EXPECT_EQ(chicago_count, 312u);
}

TEST(GenerateStudyFleetTest, VehicleHeterogeneityPresent) {
  const auto fleet = generate_study_fleet(99);
  std::vector<double> means;
  for (std::size_t i = 0; i < 100; ++i) {
    if (fleet[i].num_stops() >= 10) {
      means.push_back(fleet[i].mean_stop_length());
    }
  }
  ASSERT_GT(means.size(), 30u);
  // Per-vehicle mean stop lengths must vary noticeably (sigma = 0.35 scale
  // factor): coefficient of variation above ~15%.
  EXPECT_GT(stats::stddev(means) / stats::mean(means), 0.15);
}

TEST(ScaledFleetTest, MeanTracksTarget) {
  util::Rng rng(25);
  const auto fleet = generate_scaled_fleet(chicago(), 100.0, 100, rng);
  ASSERT_EQ(fleet.size(), 100u);
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& t : fleet) {
    total += t.total_stop_time();
    n += t.num_stops();
  }
  // Pooled mean should be near the 100 s target (heavy tail -> wide band).
  EXPECT_NEAR(total / static_cast<double>(n), 100.0, 15.0);
}

TEST(StopsPerDayTest, MomentsNearTable1) {
  util::Rng rng(26);
  for (const auto& area : all_areas()) {
    const auto xs = sample_stops_per_day(area, 20000, rng);
    EXPECT_NEAR(stats::mean(xs), area.stops_per_day_mean,
                0.12 * area.stops_per_day_mean)
        << area.name;
    EXPECT_NEAR(stats::stddev(xs), area.stops_per_day_std,
                0.25 * area.stops_per_day_std)
        << area.name;
  }
}

TEST(StopsPerDayTest, TailProbabilityNearPaper) {
  // Table 1: P{X <= mu + 2 sigma} between ~0.91 and ~0.96.
  util::Rng rng(27);
  for (const auto& area : all_areas()) {
    const auto xs = sample_stops_per_day(area, 20000, rng);
    const double p = stats::fraction_at_most(
        xs, area.stops_per_day_mean + 2.0 * area.stops_per_day_std);
    EXPECT_GT(p, 0.88) << area.name;
    EXPECT_LT(p, 0.99) << area.name;
  }
}

TEST(ScaledDistributionTest, RejectsNonPositiveMean) {
  EXPECT_THROW(scaled_stop_distribution(chicago(), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace idlered::traces
