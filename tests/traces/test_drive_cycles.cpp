#include "traces/drive_cycles.h"

#include <gtest/gtest.h>

#include "core/policies.h"
#include "core/proposed.h"
#include "sim/evaluator.h"

namespace idlered::traces {
namespace {

TEST(DriveCycleTest, PublishedSummariesRespected) {
  // Stylized cycles must land near the published idle fractions.
  const auto ny = nycc();
  EXPECT_NEAR(ny.idle_fraction(), 0.35, 0.05);
  EXPECT_EQ(ny.num_stops(), 11u);

  const auto epa = udds();
  EXPECT_NEAR(epa.idle_fraction(), 0.18, 0.04);
  EXPECT_EQ(epa.num_stops(), 17u);

  const auto eu = nedc();
  EXPECT_NEAR(eu.idle_fraction(), 0.24, 0.04);
  EXPECT_EQ(eu.num_stops(), 17u);  // 4 x 4 ECE idles + 1 EUDC

  const auto wltp = wltc3();
  EXPECT_NEAR(wltp.idle_fraction(), 0.13, 0.03);
}

TEST(DriveCycleTest, NedcUsesRegulationIdleBlocks) {
  const auto eu = nedc();
  int count_21 = 0;
  for (double s : eu.stop_lengths_s) {
    if (s == 21.0) ++count_21;
  }
  EXPECT_EQ(count_21, 8);  // two 21 s idles per ECE-15 repetition
}

TEST(DriveCycleTest, AllStopsPositive) {
  for (const auto& c : standard_cycles()) {
    EXPECT_GT(c.num_stops(), 0u) << c.name;
    for (double s : c.stop_lengths_s) EXPECT_GT(s, 0.0) << c.name;
    EXPECT_GT(c.duration_s, c.total_idle_s()) << c.name;
  }
}

TEST(DriveCycleTest, MeanStop) {
  const auto eu = nedc();
  EXPECT_NEAR(eu.mean_stop_s(), eu.total_idle_s() / 17.0, 1e-12);
  DriveCycle empty;
  EXPECT_THROW(empty.mean_stop_s(), std::logic_error);
}

TEST(DriveCycleTest, RepeatCycleConcatenates) {
  const auto eu = nedc();
  const auto stops = repeat_cycle(eu, 3);
  EXPECT_EQ(stops.size(), 3u * eu.num_stops());
  EXPECT_DOUBLE_EQ(stops[eu.num_stops()], eu.stop_lengths_s[0]);
  EXPECT_THROW(repeat_cycle(eu, 0), std::invalid_argument);
}

TEST(DriveCycleTest, PoliciesOnCertificationCycles) {
  // All cycle stops are below B = 28 except a few NYCC/WLTC waits; DET
  // should therefore be near-offline-optimal on UDDS/NEDC, while TOI
  // overpays heavily.
  for (const auto& cycle : {udds(), nedc()}) {
    const auto det = sim::evaluate(*core::make_det(28.0),
                                            cycle.stop_lengths_s);
    const auto toi = sim::evaluate(*core::make_toi(28.0),
                                            cycle.stop_lengths_s);
    EXPECT_LT(det.cr(), 1.1) << cycle.name;
    EXPECT_GT(toi.cr(), 1.5) << cycle.name;
  }
}

TEST(DriveCycleTest, CoaAdaptsPerCycle) {
  // COA trained on a cycle's own stops must match or beat both TOI and DET
  // on every certification cycle at both break-even settings.
  for (const auto& cycle : standard_cycles()) {
    for (double b : {28.0, 47.0}) {
      core::ProposedPolicy coa(b, cycle.stop_lengths_s);
      const double coa_cr =
          sim::evaluate(coa, cycle.stop_lengths_s).cr();
      const double det_cr = sim::evaluate(*core::make_det(b),
                                                   cycle.stop_lengths_s)
                                .cr();
      const double toi_cr = sim::evaluate(*core::make_toi(b),
                                                   cycle.stop_lengths_s)
                                .cr();
      EXPECT_LE(coa_cr, det_cr + 1e-9) << cycle.name << " B=" << b;
      EXPECT_LE(coa_cr, toi_cr + 1e-9) << cycle.name << " B=" << b;
    }
  }
}

}  // namespace
}  // namespace idlered::traces
