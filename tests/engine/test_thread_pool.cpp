#include "engine/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace idlered::engine {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCoversRange) {
  ThreadPool pool(1);
  constexpr std::size_t kN = 257;  // not a multiple of any chunk size
  std::vector<int> hits(kN, 0);
  pool.parallel_for(kN, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SkewedWorkGetsStolen) {
  // One pathological index does ~1000x the work of the rest; the pool must
  // still complete (stealing redistributes the tail) and cover everything.
  ThreadPool pool(4);
  constexpr std::size_t kN = 1024;
  std::vector<std::atomic<long>> out(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    long acc = 0;
    const long reps = i == 0 ? 1000000 : 1000;
    for (long r = 0; r < reps; ++r) acc += r % 7;
    out[i].store(acc + 1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_GT(out[i].load(), 0) << i;
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(100, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::size_t i) {
                          if (i == 537) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, DefaultsToPositiveThreadCount) {
  ThreadPool pool;
  EXPECT_GT(pool.thread_count(), 0);
}

}  // namespace
}  // namespace idlered::engine
