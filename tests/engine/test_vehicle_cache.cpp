#include "engine/vehicle_cache.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace idlered::engine {
namespace {

sim::StopTrace random_trace(std::size_t n, std::uint64_t seed,
                            std::string id = "veh") {
  util::Rng rng(seed);
  sim::StopTrace t{std::move(id), "Chicago", {}};
  for (std::size_t i = 0; i < n; ++i)
    t.stops.push_back(rng.exponential(30.0));
  return t;
}

TEST(VehicleCacheTest, StatsMatchFromSampleAcrossBs) {
  const auto trace = random_trace(500, 11);
  const VehicleCache cache(trace);
  for (double b : {1.0, 5.0, 28.0, 47.0, 200.0, 1e4}) {
    const auto expected = dist::ShortStopStats::from_sample(trace.stops, b);
    const auto got = cache.stats_for(b);
    EXPECT_NEAR(got.mu_b_minus, expected.mu_b_minus,
                1e-12 * (1.0 + expected.mu_b_minus))
        << "B=" << b;
    EXPECT_DOUBLE_EQ(got.q_b_plus, expected.q_b_plus) << "B=" << b;
  }
}

TEST(VehicleCacheTest, TiesAtBCountAsLongStops) {
  // from_sample counts y >= B as long; the sorted path must agree on ties.
  const sim::StopTrace t{"veh", "A", {10.0, 28.0, 28.0, 30.0, 5.0}};
  const VehicleCache cache(t);
  const auto got = cache.stats_for(28.0);
  const auto expected = dist::ShortStopStats::from_sample(t.stops, 28.0);
  EXPECT_DOUBLE_EQ(got.q_b_plus, expected.q_b_plus);
  EXPECT_DOUBLE_EQ(got.q_b_plus, 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(got.mu_b_minus, expected.mu_b_minus);
}

TEST(VehicleCacheTest, FirstMomentIsBitIdenticalToTraceMean) {
  const auto trace = random_trace(333, 7);
  const VehicleCache cache(trace);
  EXPECT_EQ(cache.first_moment(), trace.mean_stop_length());
}

TEST(VehicleCacheTest, MemoizedStatsAreStable) {
  const auto trace = random_trace(100, 3);
  const VehicleCache cache(trace);
  const auto first = cache.stats_for(28.0);
  const auto second = cache.stats_for(28.0);
  EXPECT_EQ(first.mu_b_minus, second.mu_b_minus);
  EXPECT_EQ(first.q_b_plus, second.q_b_plus);
}

TEST(VehicleCacheTest, EmptyTraceThrowsOnStats) {
  const sim::StopTrace t{"veh", "A", {}};
  const VehicleCache cache(t);
  EXPECT_THROW(cache.stats_for(28.0), std::invalid_argument);
}

TEST(VehicleCacheTest, NonPositiveBreakEvenThrows) {
  const auto trace = random_trace(10, 1);
  const VehicleCache cache(trace);
  EXPECT_THROW(cache.stats_for(0.0), std::invalid_argument);
  EXPECT_THROW(cache.stats_for(-5.0), std::invalid_argument);
}

TEST(FleetCacheTest, IndexAlignedWithFleet) {
  sim::Fleet fleet{random_trace(10, 1, "a"), random_trace(20, 2, "b"),
                   random_trace(0, 3, "c")};
  const FleetCache cache(fleet);
  ASSERT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.vehicle(0).vehicle_id(), "a");
  EXPECT_EQ(cache.vehicle(1).vehicle_id(), "b");
  EXPECT_EQ(cache.vehicle(1).num_stops(), 20u);
  EXPECT_EQ(cache.vehicle(2).num_stops(), 0u);
}

}  // namespace
}  // namespace idlered::engine
