#include "engine/strategy.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/policies.h"
#include "sim/evaluator.h"

namespace idlered::engine {
namespace {

constexpr double kB = 28.0;

sim::StopTrace sample_trace() {
  return sim::StopTrace{"veh-1", "Chicago",
                        {5.0, 8.0, 30.0, 100.0, 12.0, 45.0}};
}

TEST(StandardStrategySetTest, MatchesLegacyLineup) {
  const auto builders = standard_strategy_set();
  const auto legacy = sim::standard_strategy_set();
  ASSERT_EQ(builders.size(), legacy.size());
  for (std::size_t s = 0; s < builders.size(); ++s)
    EXPECT_EQ(builders[s]->name(), legacy[s].name);
}

TEST(StandardStrategySetTest, DeclaredNeedsAreMinimal) {
  const auto builders = standard_strategy_set();
  EXPECT_EQ(builders[0]->needs(), SideInfo::kNone);            // TOI
  EXPECT_EQ(builders[1]->needs(), SideInfo::kNone);            // NEV
  EXPECT_EQ(builders[2]->needs(), SideInfo::kNone);            // DET
  EXPECT_EQ(builders[3]->needs(), SideInfo::kNone);            // N-Rand
  EXPECT_EQ(builders[4]->needs(), SideInfo::kFirstMoment);     // MOM-Rand
  EXPECT_EQ(builders[5]->needs(), SideInfo::kShortStopStats);  // COA
}

TEST(StandardStrategySetTest, BuildersMatchLegacyPolicies) {
  // Policies built through the view must price stops identically to the
  // legacy factories (COA to ~1 ulp; see vehicle_cache.h on summation
  // order).
  const auto trace = sample_trace();
  const VehicleCache cache(trace);
  const auto builders = standard_strategy_set();
  const auto legacy = sim::standard_strategy_set();
  for (std::size_t s = 0; s < builders.size(); ++s) {
    const VehicleView view(cache, kB, builders[s]->needs());
    const auto mine = builders[s]->build(view);
    const auto ref = legacy[s].factory(trace, kB);
    const auto a = sim::evaluate(*mine, trace.stops);
    const auto b = sim::evaluate(*ref, trace.stops);
    EXPECT_DOUBLE_EQ(a.online, b.online) << builders[s]->name();
    EXPECT_DOUBLE_EQ(a.offline, b.offline) << builders[s]->name();
  }
}

TEST(VehicleViewTest, GatesAccessByDeclaredNeeds) {
  const auto trace = sample_trace();
  const VehicleCache cache(trace);

  const VehicleView none(cache, kB, SideInfo::kNone);
  EXPECT_EQ(none.break_even(), kB);
  EXPECT_EQ(none.vehicle_id(), "veh-1");
  EXPECT_THROW(none.first_moment(), std::logic_error);
  EXPECT_THROW(none.short_stop_stats(), std::logic_error);
  EXPECT_THROW(none.stops(), std::logic_error);
  EXPECT_THROW(none.trace(), std::logic_error);

  const VehicleView moment(cache, kB, SideInfo::kFirstMoment);
  EXPECT_EQ(moment.first_moment(), trace.mean_stop_length());
  EXPECT_THROW(moment.short_stop_stats(), std::logic_error);

  const VehicleView stats(cache, kB, SideInfo::kShortStopStats);
  EXPECT_NO_THROW(stats.short_stop_stats());
  EXPECT_NO_THROW(stats.first_moment());  // levels are cumulative
  EXPECT_THROW(stats.stops(), std::logic_error);

  const VehicleView full(cache, kB, SideInfo::kFullTrace);
  EXPECT_EQ(full.stops().size(), trace.stops.size());
  EXPECT_EQ(&full.trace(), &trace);
}

TEST(MakeStrategyTest, RejectsEmptyCallable) {
  EXPECT_THROW(make_strategy("x", SideInfo::kNone, nullptr),
               std::invalid_argument);
}

TEST(MakeStrategyTest, OvereachingStrategyIsCaught) {
  // A strategy that declares kNone but reads the first moment must throw
  // when built — the information asymmetry of the comparison is enforced,
  // not advisory.
  const auto cheat =
      make_strategy("cheater", SideInfo::kNone, [](const VehicleView& v) {
        return core::make_mom_rand(v.break_even(), v.first_moment());
      });
  const auto trace = sample_trace();
  const VehicleCache cache(trace);
  const VehicleView view(cache, kB, cheat->needs());
  EXPECT_THROW(cheat->build(view), std::logic_error);
}

TEST(WrapLegacyTest, AdaptorPreservesNameAndBehaviour) {
  sim::StrategySpec spec{"DET", [](const sim::StopTrace&, double b) {
                           return core::make_det(b);
                         }};
  const auto builder = wrap_legacy(spec);
  EXPECT_EQ(builder->name(), "DET");
  EXPECT_EQ(builder->needs(), SideInfo::kFullTrace);

  const auto trace = sample_trace();
  const VehicleCache cache(trace);
  const VehicleView view(cache, kB, builder->needs());
  const auto policy = builder->build(view);
  const auto ref = core::make_det(kB);
  const auto a = sim::evaluate(*policy, trace.stops);
  const auto b = sim::evaluate(*ref, trace.stops);
  EXPECT_DOUBLE_EQ(a.online, b.online);
}

TEST(WrapLegacyTest, NullFactoryThrows) {
  EXPECT_THROW(wrap_legacy(sim::StrategySpec{"bad", nullptr}),
               std::invalid_argument);
}

TEST(WrapLegacyTest, WrapsWholeLineup) {
  const auto builders = wrap_legacy(sim::standard_strategy_set());
  ASSERT_EQ(builders.size(), 6u);
  EXPECT_EQ(builders.front()->name(), "TOI");
  EXPECT_EQ(builders.back()->name(), "COA");
  for (const auto& b : builders)
    EXPECT_EQ(b->needs(), SideInfo::kFullTrace);
}

}  // namespace
}  // namespace idlered::engine
