// The determinism suite of ISSUE 2: EvalReports must be bit-identical for
// thread counts {1, 2, 8} in both expected and sampled mode, and the
// engine's expected-mode results must agree with the pre-existing serial
// compare_strategies path.
#include "engine/eval_session.h"

#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "traces/area_profiles.h"
#include "traces/fleet_generator.h"
#include "util/random.h"

namespace idlered::engine {
namespace {

constexpr double kB = 28.0;

std::shared_ptr<const sim::Fleet> small_fleet(int vehicles = 12,
                                              std::uint64_t seed = 99) {
  traces::AreaProfile profile = traces::chicago();
  profile.num_vehicles_driving = vehicles;
  util::Rng rng(seed);
  return std::make_shared<const sim::Fleet>(
      traces::generate_area_fleet(profile, rng));
}

EvalPlan base_plan(std::shared_ptr<const sim::Fleet> fleet, EvalMode mode,
                   int threads) {
  EvalPlan plan;
  plan.points.push_back(PlanPoint{kB, kB, std::move(fleet)});
  plan.points.push_back(PlanPoint{47.0, 47.0, plan.points.front().fleet});
  plan.strategies = standard_strategy_set();
  plan.mode = mode;
  plan.seed = 20140601;
  plan.threads = threads;
  return plan;
}

void expect_reports_bit_identical(const EvalReport& a, const EvalReport& b) {
  ASSERT_EQ(a.strategy_names, b.strategy_names);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.cells, b.cells);
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const auto& pa = a.points[p];
    const auto& pb = b.points[p];
    EXPECT_EQ(pa.axis, pb.axis);
    EXPECT_EQ(pa.break_even, pb.break_even);
    ASSERT_EQ(pa.comparison.vehicles.size(), pb.comparison.vehicles.size());
    for (std::size_t v = 0; v < pa.comparison.vehicles.size(); ++v) {
      const auto& va = pa.comparison.vehicles[v];
      const auto& vb = pb.comparison.vehicles[v];
      EXPECT_EQ(va.vehicle_id, vb.vehicle_id);
      ASSERT_EQ(va.cr.size(), vb.cr.size());
      for (std::size_t s = 0; s < va.cr.size(); ++s) {
        // EXPECT_EQ on doubles: exact bitwise agreement, no tolerance.
        EXPECT_EQ(va.cr[s], vb.cr[s])
            << "point " << p << " vehicle " << va.vehicle_id << " strategy "
            << a.strategy_names[s];
        EXPECT_EQ(pa.totals[v][s], pb.totals[v][s]);
      }
    }
  }
}

TEST(EvalSessionDeterminismTest, ExpectedModeBitIdenticalAcrossThreads) {
  const auto fleet = small_fleet();
  EvalSession s1(base_plan(fleet, EvalMode::kExpected, 1));
  const auto r1 = s1.run();
  for (int threads : {2, 8}) {
    EvalSession st(base_plan(fleet, EvalMode::kExpected, threads));
    const auto rt = st.run();
    expect_reports_bit_identical(r1, rt);
  }
}

TEST(EvalSessionDeterminismTest, SampledModeBitIdenticalAcrossThreads) {
  const auto fleet = small_fleet();
  EvalSession s1(base_plan(fleet, EvalMode::kSampled, 1));
  const auto r1 = s1.run();
  for (int threads : {2, 8}) {
    EvalSession st(base_plan(fleet, EvalMode::kSampled, threads));
    const auto rt = st.run();
    expect_reports_bit_identical(r1, rt);
  }
}

TEST(EvalSessionDeterminismTest, RunIsRepeatable) {
  const auto fleet = small_fleet();
  EvalSession session(base_plan(fleet, EvalMode::kSampled, 4));
  const auto first = session.run();
  const auto second = session.run();
  expect_reports_bit_identical(first, second);
}

TEST(EvalSessionDeterminismTest, SampledSeedMatters) {
  const auto fleet = small_fleet();
  EvalPlan plan = base_plan(fleet, EvalMode::kSampled, 2);
  plan.seed = 7;
  EvalSession a(plan);
  plan.seed = 8;
  EvalSession b(plan);
  const auto ra = a.run();
  const auto rb = b.run();
  // Different base seeds must produce different sampled draws somewhere.
  bool any_diff = false;
  for (std::size_t p = 0; p < ra.points.size(); ++p)
    for (std::size_t v = 0; v < ra.points[p].comparison.vehicles.size(); ++v)
      for (std::size_t s = 0;
           s < ra.points[p].comparison.vehicles[v].cr.size(); ++s)
        if (ra.points[p].comparison.vehicles[v].cr[s] !=
            rb.points[p].comparison.vehicles[v].cr[s])
          any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(EvalSessionEquivalenceTest, ExpectedModeMatchesSerialCompareStrategies) {
  const auto fleet = small_fleet();
  const auto serial =
      sim::compare_strategies(*fleet, kB, sim::standard_strategy_set());

  const auto parallel =
      compare_strategies_parallel(*fleet, kB, standard_strategy_set(), 8);

  ASSERT_EQ(parallel.strategy_names, serial.strategy_names);
  ASSERT_EQ(parallel.vehicles.size(), serial.vehicles.size());
  for (std::size_t v = 0; v < serial.vehicles.size(); ++v) {
    EXPECT_EQ(parallel.vehicles[v].vehicle_id, serial.vehicles[v].vehicle_id);
    EXPECT_EQ(parallel.vehicles[v].area, serial.vehicles[v].area);
    for (std::size_t s = 0; s < serial.vehicles[v].cr.size(); ++s) {
      // Identical arithmetic for the distribution-free strategies; COA's
      // (mu_B-, q_B+) come off the sorted cache, so allow ~ulp slack.
      EXPECT_DOUBLE_EQ(parallel.vehicles[v].cr[s], serial.vehicles[v].cr[s])
          << serial.vehicles[v].vehicle_id << " strategy "
          << serial.strategy_names[s];
    }
  }
}

TEST(EvalSessionEquivalenceTest, LegacyAdaptorReproducesSerialExactly) {
  // Through wrap_legacy the engine runs the *identical* factories on the
  // identical trace-order statistics, so even COA agrees to the last bit.
  const auto fleet = small_fleet();
  const auto serial =
      sim::compare_strategies(*fleet, kB, sim::standard_strategy_set());
  const auto parallel = compare_strategies_parallel(
      *fleet, kB, wrap_legacy(sim::standard_strategy_set()), 8);
  ASSERT_EQ(parallel.vehicles.size(), serial.vehicles.size());
  for (std::size_t v = 0; v < serial.vehicles.size(); ++v)
    for (std::size_t s = 0; s < serial.vehicles[v].cr.size(); ++s)
      EXPECT_EQ(parallel.vehicles[v].cr[s], serial.vehicles[v].cr[s]);
}

TEST(EvalSessionTest, SkipsEmptyVehicles) {
  auto fleet = std::make_shared<sim::Fleet>();
  fleet->push_back(sim::StopTrace{"a", "X", {5.0, 40.0}});
  fleet->push_back(sim::StopTrace{"empty", "X", {}});
  fleet->push_back(sim::StopTrace{"b", "X", {100.0}});
  EvalSession session(
      EvalPlan::single(fleet, kB, standard_strategy_set()));
  const auto report = session.run();
  ASSERT_EQ(report.points.size(), 1u);
  ASSERT_EQ(report.points[0].comparison.vehicles.size(), 2u);
  EXPECT_EQ(report.points[0].comparison.vehicles[0].vehicle_id, "a");
  EXPECT_EQ(report.points[0].comparison.vehicles[1].vehicle_id, "b");
}

TEST(EvalSessionTest, ReportMetadata) {
  const auto fleet = small_fleet(5);
  EvalSession session(base_plan(fleet, EvalMode::kExpected, 3));
  EXPECT_EQ(session.thread_count(), 3);
  const auto report = session.run();
  EXPECT_EQ(report.threads, 3);
  EXPECT_EQ(report.mode, EvalMode::kExpected);
  ASSERT_EQ(report.points.size(), 2u);
  EXPECT_EQ(report.cells, report.points[0].comparison.vehicles.size() *
                              report.strategy_names.size() +
                          report.points[1].comparison.vehicles.size() *
                              report.strategy_names.size());
  EXPECT_GE(report.wall_seconds, 0.0);
}

TEST(EvalSessionTest, ValidationRejectsBadPlans) {
  const auto fleet = small_fleet(3);

  EvalPlan no_strategies;
  no_strategies.points.push_back(PlanPoint{kB, kB, fleet});
  EXPECT_THROW(EvalSession{no_strategies}, std::invalid_argument);

  EvalPlan null_builder = EvalPlan::single(fleet, kB, {nullptr});
  EXPECT_THROW(EvalSession{null_builder}, std::invalid_argument);

  EvalPlan null_fleet = EvalPlan::single(nullptr, kB, standard_strategy_set());
  EXPECT_THROW(EvalSession{null_fleet}, std::invalid_argument);

  EvalPlan bad_b = EvalPlan::single(fleet, -1.0, standard_strategy_set());
  EXPECT_THROW(EvalSession{bad_b}, std::invalid_argument);
}

TEST(CellSeedTest, DistinctCoordinatesDistinctSeeds) {
  // Counter-based seeding: any coordinate change must change the stream.
  const std::uint64_t base = 42;
  const std::uint64_t s000 = cell_seed(base, 0, 0, 0);
  EXPECT_NE(s000, cell_seed(base, 1, 0, 0));
  EXPECT_NE(s000, cell_seed(base, 0, 1, 0));
  EXPECT_NE(s000, cell_seed(base, 0, 0, 1));
  EXPECT_NE(s000, cell_seed(43, 0, 0, 0));
  // And it is a pure function of its inputs.
  EXPECT_EQ(s000, cell_seed(base, 0, 0, 0));
}

TEST(EvalSessionTest, SampledConvergesTowardExpected) {
  // Sanity: sampled mode is a noisy estimate of expected mode, not a
  // different quantity (mirrors ablation A4).
  const auto fleet = small_fleet(6, 1234);
  EvalPlan expected_plan = EvalPlan::single(fleet, kB, standard_strategy_set());
  EvalPlan sampled_plan = expected_plan;
  sampled_plan.mode = EvalMode::kSampled;
  sampled_plan.seed = 5;
  EvalSession se(expected_plan);
  EvalSession ss(sampled_plan);
  const auto re = se.run();
  const auto rs = ss.run();
  const auto me = re.points[0].comparison.mean_cr();
  const auto ms = rs.points[0].comparison.mean_cr();
  for (std::size_t s = 0; s < me.size(); ++s)
    EXPECT_NEAR(ms[s], me[s], 0.25) << re.strategy_names[s];
}

}  // namespace
}  // namespace idlered::engine
