// Exporter: Prometheus text rendering (types, cumulative buckets,
// summary quantiles, name sanitization), the injectable-clock tick
// cadence, atomic tmp+rename writes, and the flush-on-destruction
// contract BenchRun relies on.
#include "obs/export.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace idlered::obs {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Unique scratch paths per test, cleaned up on scope exit.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : dir_(fs::temp_directory_path() /
             ("idlered_export_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  const fs::path& dir() const { return dir_; }

 private:
  fs::path dir_;
};

TEST(ExporterConfigTest, ValidationRejectsDegenerateConfigs) {
  ExporterConfig c;
  EXPECT_THROW(c.validate(), std::invalid_argument);  // no paths at all
  c.prometheus_path = "x.prom";
  c.period_s = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.period_s = 1.0;
  EXPECT_NO_THROW(c.validate());
}

TEST(PrometheusNameTest, SanitizesToLegalCharset) {
  EXPECT_EQ(prometheus_name("serve.pump.seconds"), "serve_pump_seconds");
  EXPECT_EQ(prometheus_name("a-b c"), "a_b_c");
  EXPECT_EQ(prometheus_name("ok_name:sub"), "ok_name:sub");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
}

TEST(PrometheusTextTest, RendersEveryMetricKind) {
  MetricsRegistry reg;
  reg.add(reg.counter("serve.decisions"), 42);
  reg.set(reg.gauge("queue.depth"), 7.5);
  const auto h = reg.histogram("batch.sizes", {1.0, 10.0});
  reg.observe(h, 0.5);   // below first edge
  reg.observe(h, 5.0);   // middle
  reg.observe(h, 50.0);  // overflow
  const auto lh = reg.log_histogram("lat.seconds");
  reg.observe_log(lh, 0.002);
  reg.observe_log(lh, 0.004);

  const std::string text = to_prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE serve_decisions counter\n"
                      "serve_decisions 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\nqueue_depth 7.5\n"),
            std::string::npos);
  // Fixed histograms export *cumulative* le-buckets plus the +Inf bucket
  // equal to _count — the Prometheus histogram contract.
  EXPECT_NE(text.find("batch_sizes_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("batch_sizes_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("batch_sizes_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("batch_sizes_count 3\n"), std::string::npos);
  // Log histograms export as summaries with quantile labels.
  EXPECT_NE(text.find("# TYPE lat_seconds summary\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(text.find("lat_seconds{quantile=\"0.999\"} "),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2\n"), std::string::npos);
}

TEST(ExporterTest, TickHonoursThePeriodWithAnInjectedClock) {
  ScratchDir scratch("tick");
  MetricsRegistry reg;
  reg.add(reg.counter("ticks"), 1);
  ExporterConfig config;
  config.prometheus_path = scratch.path("m.prom");
  config.json_path = scratch.path("m.json");
  config.period_s = 1.0;
  Exporter exporter(reg, config);

  EXPECT_TRUE(exporter.tick(100.0));   // first tick always writes
  EXPECT_FALSE(exporter.tick(100.5));  // inside the period: suppressed
  EXPECT_FALSE(exporter.tick(100.9));
  EXPECT_TRUE(exporter.tick(101.0));   // period elapsed
  EXPECT_EQ(exporter.writes(), 2u);
  EXPECT_TRUE(fs::exists(config.prometheus_path));
  EXPECT_TRUE(fs::exists(config.json_path));
  // Atomic writes: no .tmp litter once tick returns.
  EXPECT_FALSE(fs::exists(config.prometheus_path + ".tmp"));
  EXPECT_FALSE(fs::exists(config.json_path + ".tmp"));

  const std::string json = read_file(config.json_path);
  EXPECT_NE(json.find("\"schema\": \"idlered-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ticks\": 1"), std::string::npos);
}

TEST(ExporterTest, FlushWritesUnconditionally) {
  ScratchDir scratch("flush");
  MetricsRegistry reg;
  const auto c = reg.counter("events");
  reg.add(c, 5);
  ExporterConfig config;
  config.prometheus_path = scratch.path("m.prom");
  Exporter exporter(reg, config);
  ASSERT_TRUE(exporter.tick(0.0));
  reg.add(c, 5);
  exporter.flush();  // no tick needed: picks up the new value
  EXPECT_EQ(exporter.writes(), 2u);
  EXPECT_NE(read_file(config.prometheus_path).find("events 10\n"),
            std::string::npos);
}

TEST(ExporterTest, DestructorFlushesFinalState) {
  ScratchDir scratch("dtor");
  MetricsRegistry reg;
  const auto c = reg.counter("events");
  ExporterConfig config;
  config.prometheus_path = scratch.path("m.prom");
  {
    Exporter exporter(reg, config);
    reg.add(c, 3);
    // No tick at all: the destructor alone must leave a current file.
  }
  EXPECT_NE(read_file(config.prometheus_path).find("events 3\n"),
            std::string::npos);
}

TEST(ExporterTest, TickThrowsWhenTheTargetIsUnwritable) {
  ScratchDir scratch("err");
  MetricsRegistry reg;
  ExporterConfig config;
  config.prometheus_path =
      (scratch.dir() / "missing_subdir" / "m.prom").string();
  Exporter exporter(reg, config);
  EXPECT_THROW(exporter.tick(0.0), std::runtime_error);
}

}  // namespace
}  // namespace idlered::obs
