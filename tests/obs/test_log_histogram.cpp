// LogHistogram: bucket-layout algebra, the quantile relative-error bound
// against an exact sort (the property the log spacing is designed to
// guarantee), exact merge across concurrent writer threads, and the
// registry integration (re-registration layout checks, snapshot, reset).
#include "obs/log_histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "util/random.h"

namespace idlered::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Exact order statistic with the same rank convention as
/// LogHistogramSnapshot::quantile: rank = round(p * (count - 1)).
double exact_quantile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::llround(p * static_cast<double>(values.size() - 1)));
  return values[rank];
}

TEST(LogHistogramConfigTest, ValidationRejectsDegenerateLayouts) {
  EXPECT_NO_THROW(LogHistogramConfig{}.validate());
  LogHistogramConfig c;
  c.min_value = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.max_value = c.min_value;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.rel_error = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.rel_error = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = {};
  c.max_value = kInf;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  EXPECT_THROW({ LogHistogram rejected(c); }, std::invalid_argument);
}

TEST(LogHistogramConfigTest, BucketIndexPartitionsTheRange) {
  const LogHistogramConfig c;
  const std::size_t n = c.interior_buckets();
  EXPECT_EQ(c.total_buckets(), n + 2);
  // The defaults cover 18 decades at ~5% error in a few hundred buckets —
  // the "bounded memory" half of the design contract.
  EXPECT_GT(n, 400u);
  EXPECT_LT(n, 500u);

  EXPECT_EQ(c.bucket_index(kNaN), 0u);
  EXPECT_EQ(c.bucket_index(-1.0), 0u);
  EXPECT_EQ(c.bucket_index(0.0), 0u);
  EXPECT_EQ(c.bucket_index(c.min_value / 2), 0u);
  EXPECT_EQ(c.bucket_index(c.min_value), 1u);
  EXPECT_EQ(c.bucket_index(kInf), n + 1);
  EXPECT_EQ(c.bucket_index(c.max_value * 10), n + 1);

  // Edges are strictly increasing (gamma > 1); a bucket's geometric
  // midpoint maps back to that bucket exactly. The edge itself may land
  // one bucket down under floating-point jitter — harmless, because a
  // value that close to an edge is within the error bound from either
  // side's estimate.
  const double root_gamma = std::sqrt(c.gamma());
  for (std::size_t b = 1; b + 1 <= n; ++b) {
    EXPECT_LT(c.bucket_lower(b), c.bucket_lower(b + 1));
    EXPECT_EQ(c.bucket_index(c.bucket_lower(b) * root_gamma), b)
        << "bucket " << b;
    const std::size_t at_edge = c.bucket_index(c.bucket_lower(b));
    EXPECT_TRUE(at_edge == b || at_edge == b - 1)
        << "bucket " << b << " edge mapped to " << at_edge;
  }
}

TEST(LogHistogramConfigTest, SameLayoutIsExactFieldEquality) {
  const LogHistogramConfig a;
  LogHistogramConfig b;
  EXPECT_TRUE(a.same_layout(b));
  b.rel_error = 0.01;
  EXPECT_FALSE(a.same_layout(b));
}

TEST(LogHistogramTest, EmptySnapshotIsAllZero) {
  const LogHistogram h;
  const LogHistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
  EXPECT_EQ(h.shard_count(), 0u);
}

TEST(LogHistogramTest, TracksExactSumMinMaxAndCount) {
  LogHistogram h;
  for (const double v : {0.25, 4.0, 1.0}) h.observe(v);
  const LogHistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 5.25);
  EXPECT_DOUBLE_EQ(snap.min, 0.25);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
  // Quantiles at the extremes are exact: the estimate is clamped to the
  // observed min/max, not the bucket midpoint.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 4.0);
}

TEST(LogHistogramTest, NanAndOutOfRangeLandInEdgeBuckets) {
  LogHistogram h;
  h.observe(kNaN);        // underflow bucket, no sum/min/max
  h.observe(0.0);         // underflow bucket (below min_value), finite
  h.observe(kInf);        // overflow bucket, no sum
  h.observe(2e9);         // overflow bucket, finite: sum/min/max update
  const LogHistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.counts.front(), 2u);
  EXPECT_EQ(snap.counts.back(), 2u);
  EXPECT_DOUBLE_EQ(snap.sum, 2e9);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 2e9);
}

// The headline property: every quantile of a lognormal latency stream —
// the bench's actual shape — estimated to within rel_error of the exact
// order statistic, at several error settings.
TEST(LogHistogramTest, QuantilesWithinRelativeErrorOfExactSort) {
  for (const double rel_error : {0.05, 0.01}) {
    LogHistogramConfig config;
    config.rel_error = rel_error;
    LogHistogram h(config);
    util::Rng rng(0xC0FFEE);
    std::vector<double> values;
    values.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      const double v = rng.lognormal(-6.0, 1.5);  // ~2.5 ms median
      values.push_back(v);
      h.observe(v);
    }
    const LogHistogramSnapshot snap = h.snapshot();
    ASSERT_EQ(snap.count, values.size());
    for (const double p : {0.10, 0.50, 0.90, 0.99, 0.999}) {
      const double exact = exact_quantile(values, p);
      const double est = snap.quantile(p);
      EXPECT_LE(std::abs(est - exact), rel_error * exact)
          << "p=" << p << " rel_error=" << rel_error << " exact=" << exact
          << " est=" << est;
    }
  }
}

// Concurrent writers must merge exactly: the shard design may not drop or
// double-count a single observation.
TEST(LogHistogramTest, ConcurrentObserveMergesExactly) {
  LogHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i)
        h.observe(rng.uniform(1e-6, 1e-3));
    });
  }
  for (std::thread& t : threads) t.join();
  const LogHistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_GE(snap.min, 1e-6);
  EXPECT_LE(snap.max, 1e-3);
  EXPECT_EQ(h.shard_count(), static_cast<std::size_t>(kThreads));
}

TEST(LogHistogramTest, ResetZerosEveryShard) {
  LogHistogram h;
  h.observe(1.0);
  h.observe(2.0);
  h.reset();
  const LogHistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
}

TEST(LogHistogramTest, ToJsonCarriesQuantilesAndSparseBuckets) {
  LogHistogram h;
  for (int i = 1; i <= 100; ++i) h.observe(1e-3 * i);
  const util::JsonValue json = h.snapshot().to_json();
  const std::string text = json.dump();
  EXPECT_NE(text.find("\"count\": 100"), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
  EXPECT_NE(text.find("\"rel_error\""), std::string::npos);
  EXPECT_NE(text.find("\"buckets\""), std::string::npos);
}

TEST(LogHistogramRegistryTest, RegisterObserveSnapshotRoundTrip) {
  MetricsRegistry reg;
  const auto id = reg.log_histogram("latency.seconds");
  EXPECT_EQ(id, reg.log_histogram("latency.seconds"));
  reg.observe_log(id, 0.002);
  reg.observe_log(id, 0.004);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.log_histograms.size(), 1u);
  EXPECT_EQ(snap.log_histograms[0].name, "latency.seconds");
  EXPECT_EQ(snap.log_histograms[0].hist.count, 2u);
  EXPECT_DOUBLE_EQ(snap.log_histograms[0].hist.sum, 0.006);

  reg.reset();
  EXPECT_EQ(reg.snapshot().log_histograms[0].hist.count, 0u);
}

TEST(LogHistogramRegistryTest, ReRegistrationLayoutMismatchThrows) {
  MetricsRegistry reg;
  reg.log_histogram("latency.seconds");
  LogHistogramConfig other;
  other.rel_error = 0.01;
  EXPECT_THROW(reg.log_histogram("latency.seconds", other),
               std::invalid_argument);
  // Kind collisions are rejected like every other metric kind.
  reg.counter("calls");
  EXPECT_THROW(reg.log_histogram("calls"), std::invalid_argument);
  EXPECT_THROW(reg.counter("latency.seconds"), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::obs
