// Metrics registry: find-or-register semantics, histogram bucket edges,
// and — the property the whole sharded design exists for — exact merge
// of per-thread shards written concurrently from the work-stealing pool.
#include "obs/metrics.h"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "engine/thread_pool.h"

namespace idlered::obs {
namespace {

const MetricsSnapshot::Counter* find_counter(const MetricsSnapshot& snap,
                                             const std::string& name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return &c;
  return nullptr;
}

const MetricsSnapshot::Histogram* find_histogram(const MetricsSnapshot& snap,
                                                 const std::string& name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

TEST(MetricsRegistryTest, FindOrRegisterReturnsStableIds) {
  MetricsRegistry reg;
  const auto a = reg.counter("calls");
  const auto b = reg.counter("calls");
  EXPECT_EQ(a, b);
  const auto g = reg.gauge("level");
  EXPECT_NE(g, a);
  const auto h = reg.histogram("sizes", {1.0, 2.0});
  EXPECT_EQ(h, reg.histogram("sizes", {1.0, 2.0}));
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("calls");
  EXPECT_THROW(reg.gauge("calls"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("calls", {1.0}), std::invalid_argument);
  reg.histogram("sizes", {1.0, 2.0});
  // Same name, different edges: a silent second histogram would split the
  // counts, so it must be rejected loudly.
  EXPECT_THROW(reg.histogram("sizes", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricsRegistryTest, HistogramEdgeValidation) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("unsorted", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("dup", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(
      reg.histogram("inf",
                    {1.0, std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
}

TEST(MetricsRegistryTest, HistogramBucketSemantics) {
  // Bucket 0 holds everything below edges[0]; bucket i is
  // [edges[i-1], edges[i]); the last bucket is the overflow
  // [edges.back(), +inf).
  MetricsRegistry reg;
  const auto h = reg.histogram("sizes", {1.0, 2.0, 4.0});
  reg.observe(h, 0.5);   // below range -> bucket 0
  reg.observe(h, 1.0);   // left-closed  -> bucket 1
  reg.observe(h, 1.99);  // right-open   -> bucket 1
  reg.observe(h, 2.0);   // -> bucket 2
  reg.observe(h, 4.0);   // edge of overflow -> bucket 3
  reg.observe(h, 100.0);  // overflow -> bucket 3
  const auto snap = reg.snapshot();
  const auto* hist = find_histogram(snap, "sizes");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->counts.size(), 4u);
  EXPECT_EQ(hist->counts[0], 1u);
  EXPECT_EQ(hist->counts[1], 2u);
  EXPECT_EQ(hist->counts[2], 1u);
  EXPECT_EQ(hist->counts[3], 2u);
  EXPECT_EQ(hist->total(), 6u);
  EXPECT_DOUBLE_EQ(hist->sum, 0.5 + 1.0 + 1.99 + 2.0 + 4.0 + 100.0);
}

TEST(MetricsRegistryTest, CountersAndGaugesSnapshot) {
  MetricsRegistry reg;
  const auto c = reg.counter("calls");
  reg.add(c);
  reg.add(c, 41);
  const auto g = reg.gauge("level");
  reg.set(g, 2.5);
  reg.set(g, 7.25);  // last write wins
  const auto snap = reg.snapshot();
  const auto* counter = find_counter(snap, "calls");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 42u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "level");
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 7.25);
}

TEST(MetricsRegistryTest, ResetZeroesValuesKeepsRegistrations) {
  MetricsRegistry reg;
  const auto c = reg.counter("calls");
  const auto h = reg.histogram("sizes", {1.0});
  reg.add(c, 10);
  reg.observe(h, 5.0);
  reg.reset();
  auto snap = reg.snapshot();
  EXPECT_EQ(find_counter(snap, "calls")->value, 0u);
  EXPECT_EQ(find_histogram(snap, "sizes")->total(), 0u);
  // Old ids stay valid after reset.
  reg.add(c, 3);
  snap = reg.snapshot();
  EXPECT_EQ(find_counter(snap, "calls")->value, 3u);
}

// The load-bearing property: concurrent writers from the work-stealing
// pool, merged exactly. Any lost update or double count shows up as an
// exact-total mismatch.
class MetricsMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricsMergeTest, ExactTotalsUnderConcurrentWriters) {
  const int threads = GetParam();
  MetricsRegistry reg;
  const auto c = reg.counter("iterations");
  const auto h = reg.histogram("values", {10.0, 20.0, 30.0, 40.0});
  constexpr std::size_t kN = 20000;

  engine::ThreadPool pool(threads);
  pool.parallel_for(kN, [&](std::size_t i) {
    reg.add(c);
    reg.add(c, 2);
    reg.observe(h, static_cast<double>(i % 50));
  });

  std::uint64_t expected_sum = 0;
  std::vector<std::uint64_t> expected_buckets(5, 0);
  for (std::size_t i = 0; i < kN; ++i) {
    const auto v = i % 50;
    expected_sum += v;
    expected_buckets[v < 10 ? 0 : v < 20 ? 1 : v < 30 ? 2 : v < 40 ? 3 : 4]++;
  }

  const auto snap = reg.snapshot();
  const auto* counter = find_counter(snap, "iterations");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 3 * kN);
  const auto* hist = find_histogram(snap, "values");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total(), kN);
  for (std::size_t b = 0; b < expected_buckets.size(); ++b)
    EXPECT_EQ(hist->counts[b], expected_buckets[b]) << "bucket " << b;
  EXPECT_DOUBLE_EQ(hist->sum, static_cast<double>(expected_sum));
  EXPECT_GE(reg.shard_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Threads, MetricsMergeTest,
                         ::testing::Values(1, 2, 8));

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace idlered::obs
