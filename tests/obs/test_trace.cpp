// Recorder/Span behavior: exact span timing on an injected clock, runtime
// gating, buffer lifecycle, and the JSON-lines flush path.
#include "obs/trace.h"

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace idlered::obs {
namespace {

// Non-advancing settable clock: tests move time explicitly between span
// open/close, so durations are exact doubles, not "roughly zero".
double g_fake_time = 0.0;
double fake_clock() { return g_fake_time; }

// Spans bind to Recorder::global(), so these tests drive the global
// instance and must leave it stopped with the real clock restored.
class GlobalRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fake_time = 0.0;
    recorder().set_clock(&fake_clock);
  }
  void TearDown() override {
    recorder().stop();
    recorder().set_clock(nullptr);
  }
};

TEST_F(GlobalRecorderTest, NestedSpanTimingIsExact) {
  recorder().start("");  // memory-only sink

  g_fake_time = 10.0;
  {
    Span outer("outer");
    g_fake_time = 13.0;
    {
      Span inner("inner");
      g_fake_time = 15.0;
    }  // inner: dur = 2, no children -> self = 2
    g_fake_time = 20.0;
  }  // outer: dur = 10, child total = 2 -> self = 8

  const auto stats = recorder().span_stats();
  ASSERT_EQ(stats.count("outer"), 1u);
  ASSERT_EQ(stats.count("inner"), 1u);
  EXPECT_EQ(stats.at("outer").count, 1u);
  EXPECT_EQ(stats.at("outer").total, 10.0);
  EXPECT_EQ(stats.at("outer").self, 8.0);
  EXPECT_EQ(stats.at("inner").count, 1u);
  EXPECT_EQ(stats.at("inner").total, 2.0);
  EXPECT_EQ(stats.at("inner").self, 2.0);

  // One "span" event per close, inner first.
  const auto lines = recorder().lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\": \"span\""), std::string::npos);
}

TEST_F(GlobalRecorderTest, SiblingSpansAccumulateAggregates) {
  recorder().start("");
  for (int i = 0; i < 3; ++i) {
    g_fake_time = 100.0 * i;
    Span s("work");
    g_fake_time = 100.0 * i + 4.0;
  }
  const auto stats = recorder().span_stats();
  EXPECT_EQ(stats.at("work").count, 3u);
  EXPECT_EQ(stats.at("work").total, 12.0);
  EXPECT_EQ(stats.at("work").self, 12.0);
}

TEST_F(GlobalRecorderTest, DisabledRecorderIgnoresSpansAndEvents) {
  // The buffer survives stop() by design, so clear any leftovers from
  // earlier tests in this binary before asserting nothing accrues.
  recorder().start("");
  recorder().stop();
  ASSERT_FALSE(enabled());
  {
    Span s("ghost");
    g_fake_time = 99.0;
  }
  util::JsonValue ev = util::JsonValue::object();
  ev.set("type", "decision");
  recorder().emit(std::move(ev));
  EXPECT_EQ(recorder().event_count(), 0u);
  EXPECT_TRUE(recorder().span_stats().empty());
}

TEST_F(GlobalRecorderTest, SpanInactiveIfRecorderDisabledAtConstruction) {
  // The enabled check happens at construction: a span opened before
  // start() must stay inert even if recording begins mid-scope.
  Span s("early");
  recorder().start("");
  g_fake_time = 50.0;
  {
    // Destroy `s` semantics can't be forced here, so instead assert a
    // span opened while enabled still records correctly alongside it.
    Span live("live");
    g_fake_time = 51.0;
  }
  const auto stats = recorder().span_stats();
  EXPECT_EQ(stats.count("early"), 0u);
  EXPECT_EQ(stats.at("live").total, 1.0);
}

TEST_F(GlobalRecorderTest, StartClearsPreviousBufferAndStats) {
  recorder().start("");
  g_fake_time = 1.0;
  { Span s("first"); g_fake_time = 2.0; }
  ASSERT_EQ(recorder().event_count(), 1u);
  recorder().stop();
  // Buffer survives stop() so exporters can flush after the run...
  EXPECT_EQ(recorder().event_count(), 1u);
  // ...but a new start() begins from a clean slate.
  recorder().start("");
  EXPECT_EQ(recorder().event_count(), 0u);
  EXPECT_TRUE(recorder().span_stats().empty());
}

TEST_F(GlobalRecorderTest, EmitStampsTimestampFromInjectedClock) {
  recorder().start("");
  g_fake_time = 42.5;
  util::JsonValue ev = util::JsonValue::object();
  ev.set("type", "fault");
  recorder().emit(std::move(ev));
  const auto lines = recorder().lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\": \"fault\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"t\": 42.5"), std::string::npos);
}

TEST(RecorderTest, FlushWritesJsonLinesFile) {
  Recorder rec;
  const std::string path = ::testing::TempDir() + "idlered_trace_test.jsonl";
  rec.start(path);
  EXPECT_EQ(rec.sink_path(), path);
  for (int i = 0; i < 2; ++i) {
    util::JsonValue ev = util::JsonValue::object();
    ev.set("type", "rung");
    ev.set("stop", i);
    rec.emit(std::move(ev));
  }
  rec.stop();
  EXPECT_EQ(rec.flush(), 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> file_lines;
  for (std::string line; std::getline(in, line);) file_lines.push_back(line);
  ASSERT_EQ(file_lines.size(), 2u);
  EXPECT_NE(file_lines[0].find("\"type\": \"rung\""), std::string::npos);
  EXPECT_NE(file_lines[1].find("\"stop\": 1"), std::string::npos);
}

TEST(RecorderTest, FlushWithoutSinkPathThrows) {
  Recorder rec;
  rec.start("");
  util::JsonValue ev = util::JsonValue::object();
  ev.set("type", "fault");
  rec.emit(std::move(ev));
  EXPECT_THROW(rec.flush(), std::logic_error);
}

TEST(ThreadOrdinalTest, StableForCallingThread) {
  const int first = thread_ordinal();
  EXPECT_GE(first, 0);
  EXPECT_EQ(thread_ordinal(), first);
}

}  // namespace
}  // namespace idlered::obs
