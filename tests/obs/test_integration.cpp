// The observability determinism contract, end to end: enabling the
// recorder (spans, decision events, metrics) must not change a single bit
// of the EvalReport at any thread count, in either eval mode. The obs
// layer is write-only — it reads the clock, never the RNG streams.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "engine/eval_session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "traces/area_profiles.h"
#include "traces/fleet_generator.h"
#include "util/random.h"

namespace idlered::engine {
namespace {

constexpr double kB = 28.0;

std::shared_ptr<const sim::Fleet> small_fleet(int vehicles = 10,
                                              std::uint64_t seed = 77) {
  traces::AreaProfile profile = traces::chicago();
  profile.num_vehicles_driving = vehicles;
  util::Rng rng(seed);
  return std::make_shared<const sim::Fleet>(
      traces::generate_area_fleet(profile, rng));
}

EvalPlan base_plan(std::shared_ptr<const sim::Fleet> fleet, EvalMode mode,
                   int threads) {
  EvalPlan plan;
  plan.points.push_back(PlanPoint{kB, kB, std::move(fleet)});
  plan.points.push_back(PlanPoint{47.0, 47.0, plan.points.front().fleet});
  plan.strategies = standard_strategy_set();
  plan.mode = mode;
  plan.seed = 20140601;
  plan.threads = threads;
  return plan;
}

void expect_reports_bit_identical(const EvalReport& a, const EvalReport& b) {
  ASSERT_EQ(a.strategy_names, b.strategy_names);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.cells, b.cells);
  for (std::size_t p = 0; p < a.points.size(); ++p) {
    const auto& pa = a.points[p];
    const auto& pb = b.points[p];
    ASSERT_EQ(pa.comparison.vehicles.size(), pb.comparison.vehicles.size());
    for (std::size_t v = 0; v < pa.comparison.vehicles.size(); ++v) {
      const auto& va = pa.comparison.vehicles[v];
      const auto& vb = pb.comparison.vehicles[v];
      EXPECT_EQ(va.vehicle_id, vb.vehicle_id);
      ASSERT_EQ(va.cr.size(), vb.cr.size());
      for (std::size_t s = 0; s < va.cr.size(); ++s) {
        // EXPECT_EQ on doubles: exact bitwise agreement, no tolerance.
        EXPECT_EQ(va.cr[s], vb.cr[s])
            << "point " << p << " vehicle " << va.vehicle_id << " strategy "
            << a.strategy_names[s];
        EXPECT_EQ(pa.totals[v][s], pb.totals[v][s]);
      }
    }
  }
}

class TracedEvalTest : public ::testing::TestWithParam<EvalMode> {
 protected:
  void TearDown() override { obs::recorder().stop(); }
};

TEST_P(TracedEvalTest, ReportBitIdenticalWithTracingOnVsOff) {
  const EvalMode mode = GetParam();
  const auto fleet = small_fleet();

  ASSERT_FALSE(obs::enabled());
  EvalSession untraced(base_plan(fleet, mode, 1));
  const auto baseline = untraced.run();

  for (int threads : {1, 2, 8}) {
    obs::recorder().start("");  // memory-only: full instrumentation active
    EvalSession traced(base_plan(fleet, mode, threads));
    const auto report = traced.run();
    obs::recorder().stop();
    expect_reports_bit_identical(baseline, report);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, TracedEvalTest,
                         ::testing::Values(EvalMode::kExpected,
                                           EvalMode::kSampled));

std::uint64_t decision_counter_total() {
  const auto snap = obs::MetricsRegistry::global().snapshot();
  std::uint64_t total = 0;
  for (const auto& c : snap.counters)
    if (c.name.rfind("engine.decision.", 0) == 0) total += c.value;
  return total;
}

TEST(TracedEvalEventsTest, SessionEmitsSpansAndDecisionEvents) {
  const auto fleet = small_fleet();
  // The global registry persists across tests in this binary, so count
  // decision increments as a delta around this run.
  const std::uint64_t counts_before = decision_counter_total();
  obs::recorder().start("");
  EvalSession session(base_plan(fleet, EvalMode::kExpected, 2));
  session.run();
  obs::recorder().stop();

  // The standard strategy set includes COA, so per-cell decision events
  // must appear alongside the session/cell spans.
  std::size_t decisions = 0;
  std::size_t spans = 0;
  for (const auto& line : obs::recorder().lines()) {
    if (line.find("\"type\": \"decision\"") != std::string::npos) ++decisions;
    if (line.find("\"type\": \"span\"") != std::string::npos) ++spans;
  }
  EXPECT_GE(decisions, 1u);
  EXPECT_GE(spans, 1u);

  const auto stats = obs::recorder().span_stats();
  EXPECT_EQ(stats.count("session.run"), 1u);
  EXPECT_GE(stats.count("eval_cell"), 1u);

  // And the per-vertex decision counters accrued in the global registry,
  // one increment per emitted decision event.
  EXPECT_EQ(decision_counter_total() - counts_before, decisions);
}

}  // namespace
}  // namespace idlered::engine
