#include "stats/kaplan_meier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dist/parametric.h"
#include "util/random.h"

namespace idlered::stats {
namespace {

std::vector<CensoredObservation> exact(std::initializer_list<double> times) {
  std::vector<CensoredObservation> out;
  for (double t : times) out.push_back({t, true});
  return out;
}

TEST(KaplanMeierTest, NoCensoringIsEmpiricalSurvival) {
  KaplanMeier km(exact({1.0, 2.0, 3.0, 4.0}));
  EXPECT_DOUBLE_EQ(km.survival(0.5), 1.0);
  EXPECT_DOUBLE_EQ(km.survival(1.0), 0.75);
  EXPECT_DOUBLE_EQ(km.survival(2.5), 0.5);
  EXPECT_DOUBLE_EQ(km.survival(4.0), 0.0);
  EXPECT_EQ(km.num_events(), 4u);
  EXPECT_EQ(km.num_censored(), 0u);
}

TEST(KaplanMeierTest, TextbookCensoredExample) {
  // Times: 1 (event), 2 (censored), 3 (event), 4 (censored), 5 (event).
  // S(1) = 4/5; S(3) = 4/5 * (1 - 1/3) = 8/15; S(5) = 0.
  std::vector<CensoredObservation> obs = {
      {1.0, true}, {2.0, false}, {3.0, true}, {4.0, false}, {5.0, true}};
  KaplanMeier km(obs);
  EXPECT_NEAR(km.survival(1.0), 0.8, 1e-12);
  EXPECT_NEAR(km.survival(3.0), 8.0 / 15.0, 1e-12);
  EXPECT_NEAR(km.survival(5.0), 0.0, 1e-12);
  EXPECT_EQ(km.num_censored(), 2u);
}

TEST(KaplanMeierTest, TiesEventBeforeCensor) {
  // An event and a censoring at the same time: the censored subject counts
  // as at-risk for the event.
  std::vector<CensoredObservation> obs = {
      {2.0, true}, {2.0, false}, {3.0, true}};
  KaplanMeier km(obs);
  EXPECT_NEAR(km.survival(2.0), 2.0 / 3.0, 1e-12);
}

TEST(KaplanMeierTest, StatsMatchUncensoredSampleStats) {
  // With no censoring the KM statistics equal the plain sample statistics.
  util::Rng rng(9);
  dist::Exponential law(20.0);
  std::vector<double> sample;
  std::vector<CensoredObservation> obs;
  for (int i = 0; i < 20000; ++i) {
    const double y = law.sample(rng);
    sample.push_back(y);
    obs.push_back({y, true});
  }
  const auto plain = dist::ShortStopStats::from_sample(sample, 28.0);
  const auto km = censored_short_stop_stats(obs, 28.0);
  EXPECT_NEAR(km.mu_b_minus, plain.mu_b_minus, 0.02);
  EXPECT_NEAR(km.q_b_plus, plain.q_b_plus, 1e-9);
}

TEST(KaplanMeierTest, CorrectsCensoringBiasInQbPlus) {
  // Stops censored at a random observation cutoff: treating censored
  // durations as exact underestimates q_B+; Kaplan-Meier recovers it.
  util::Rng rng(10);
  dist::Exponential law(30.0);
  const double b = 28.0;
  std::vector<CensoredObservation> obs;
  std::vector<double> naive;
  for (int i = 0; i < 40000; ++i) {
    const double y = law.sample(rng);
    const double cutoff = rng.exponential(60.0);
    if (y <= cutoff) {
      obs.push_back({y, true});
      naive.push_back(y);
    } else {
      obs.push_back({cutoff, false});
      naive.push_back(cutoff);  // the biased treatment
    }
  }
  const double truth = law.tail_probability(b);
  const auto km = censored_short_stop_stats(obs, b);
  const auto biased = dist::ShortStopStats::from_sample(naive, b);
  EXPECT_NEAR(km.q_b_plus, truth, 0.02);
  EXPECT_LT(biased.q_b_plus, truth - 0.05);  // the bias KM removes
  EXPECT_LT(std::abs(km.q_b_plus - truth),
            std::abs(biased.q_b_plus - truth));
}

TEST(KaplanMeierTest, StatsAreFeasible) {
  util::Rng rng(11);
  dist::LogNormal law(3.0, 1.0);
  std::vector<CensoredObservation> obs;
  for (int i = 0; i < 3000; ++i) {
    const double y = law.sample(rng);
    const bool censored = rng.bernoulli(0.3);
    obs.push_back({censored ? y * rng.uniform() : y, !censored});
  }
  const auto s = censored_short_stop_stats(obs, 28.0);
  EXPECT_TRUE(s.feasible(28.0));
}

TEST(KaplanMeierTest, InvalidInputsThrow) {
  EXPECT_THROW(KaplanMeier({}), std::invalid_argument);
  EXPECT_THROW(KaplanMeier({{-1.0, true}}), std::invalid_argument);
  EXPECT_THROW(KaplanMeier({{1.0, false}}), std::invalid_argument);
  KaplanMeier ok(exact({1.0}));
  EXPECT_THROW(ok.short_stop_stats(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace idlered::stats
