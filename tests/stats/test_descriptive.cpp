#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace idlered::stats {
namespace {

TEST(DescriptiveTest, MeanOfKnownSample) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(DescriptiveTest, MeanRejectsEmpty) {
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(DescriptiveTest, VarianceUnbiased) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sum sq dev 32, var 32/7.
  EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(DescriptiveTest, VarianceNeedsTwoSamples) {
  EXPECT_THROW(variance({1.0}), std::invalid_argument);
}

TEST(DescriptiveTest, StddevIsSqrtVariance) {
  const std::vector<double> xs{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(variance(xs)));
}

TEST(DescriptiveTest, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(DescriptiveTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(DescriptiveTest, QuantileEndpoints) {
  const std::vector<double> xs{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 20.0);
}

TEST(DescriptiveTest, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(DescriptiveTest, QuantileRejectsOutOfRangeP) {
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(DescriptiveTest, FractionAtMost) {
  // Table 1's P{X <= mu + 2 sigma} building block.
  const std::vector<double> xs{1, 2, 3, 4, 5, 100};
  EXPECT_NEAR(fraction_at_most(xs, 5.0), 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(fraction_at_most(xs, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(fraction_at_most(xs, 1000.0), 1.0, 1e-12);
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
  util::Rng rng(3);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-8);
  EXPECT_DOUBLE_EQ(rs.min(), min(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max(xs));
}

TEST(RunningStatsTest, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), std::logic_error);
  EXPECT_THROW(rs.min(), std::logic_error);
}

TEST(RunningStatsTest, MergeEqualsSingleStream) {
  util::Rng rng(9);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.exponential(3.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(SummaryTest, FieldsPopulated) {
  const Summary s = summarize({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(SummaryTest, EmptySampleIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace idlered::stats
